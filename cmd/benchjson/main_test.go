package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args []string, stdin string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// TestBenchjsonTable pins exit code and the exact JSON bytes for a
// synthetic test2json stream: benchmark result lines are extracted,
// everything else skipped, output sorted by package then name.
func TestBenchjsonTable(t *testing.T) {
	stream := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkZeta-4   \t     100\t      2500 ns/op\n"}
not json at all
{"Action":"output","Package":"repro/internal/a","Output":"BenchmarkAlpha/sub=1   \t       7\t 123456.5 ns/op\t    64 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t0.5s\n"}
{"Action":"pass","Package":"repro"}
`
	want := `[
  {
    "package": "repro",
    "name": "BenchmarkZeta",
    "procs": 4,
    "iterations": 100,
    "ns_per_op": 2500,
    "bytes_per_op": -1,
    "allocs_per_op": -1
  },
  {
    "package": "repro/internal/a",
    "name": "BenchmarkAlpha/sub=1",
    "procs": 1,
    "iterations": 7,
    "ns_per_op": 123456.5,
    "bytes_per_op": 64,
    "allocs_per_op": 3
  }
]
`
	code, stdout, stderr := runCLI(nil, stream)
	if code != 0 {
		t.Fatalf("exit %d (stderr: %s)", code, stderr)
	}
	if stdout != want {
		t.Fatalf("stdout:\n%s\nwant:\n%s", stdout, want)
	}
}

// TestBenchjsonEmpty: a stream with no benchmark lines yields an empty
// array, not null.
func TestBenchjsonEmpty(t *testing.T) {
	code, stdout, _ := runCLI(nil, `{"Action":"pass","Package":"p"}`+"\n")
	if code != 0 || stdout != "[]\n" {
		t.Fatalf("exit %d, stdout %q", code, stdout)
	}
}

// TestBenchjsonUsage: arguments are a usage error (exit 2).
func TestBenchjsonUsage(t *testing.T) {
	code, stdout, stderr := runCLI([]string{"file.json"}, "")
	if code != 2 || stdout != "" || stderr == "" {
		t.Fatalf("exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
}

// TestBenchjsonSplitResultLine: test2json flushes a slow benchmark's
// result line in pieces (name now, measurements after the run); the
// reassembly must stitch them back together — and keep streams from
// different tests apart.
func TestBenchjsonSplitResultLine(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Test":"BenchmarkSlow/seq","Output":"BenchmarkSlow/seq         \t"}
{"Action":"output","Package":"p","Test":"BenchmarkOther","Output":"BenchmarkOther \t       2\t 50 ns/op\n"}
{"Action":"output","Package":"p","Test":"BenchmarkSlow/seq","Output":"       1\t1476729987 ns/op\n"}
`
	code, stdout, _ := runCLI(nil, stream)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		`"name": "BenchmarkSlow/seq"`, `"ns_per_op": 1476729987`,
		`"name": "BenchmarkOther"`, `"ns_per_op": 50`,
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("output misses %s:\n%s", want, stdout)
		}
	}
}

// TestBenchjsonSubBenchmarkNames: the -N suffix strips only the final
// GOMAXPROCS component, never part of a sub-benchmark path.
func TestBenchjsonSubBenchmarkNames(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkX/n=128-16   \t       1\t 5 ns/op\n"}` + "\n"
	code, stdout, _ := runCLI(nil, stream)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, `"name": "BenchmarkX/n=128"`) || !strings.Contains(stdout, `"procs": 16`) {
		t.Fatalf("name/procs split wrong:\n%s", stdout)
	}
}
