// Command benchjson converts a `go test -json -bench` event stream
// (stdin) into a machine-readable benchmark summary (stdout): a JSON
// array with one entry per benchmark result line, sorted by package
// then name, so `make bench-json` can record the perf trajectory
// (BENCH_pr4.json) without scraping free-form text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -json ./... | benchjson
//
// Exit status: 0 = summary written (possibly empty), 1 = read error on
// stdin, 2 = usage error (benchjson takes no arguments). Non-JSON lines
// and JSON events that are not benchmark results are skipped — the
// stream interleaves build output and test chatter by design.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// event is the subset of the test2json schema benchjson consumes.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	Package string `json:"package"`
	// Name is the benchmark as printed, including sub-benchmark path;
	// the -N GOMAXPROCS suffix is split off into Procs.
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the benchmark did not report
	// allocation figures.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// benchLine matches a benchmark result in a test output line, e.g.
//
//	BenchmarkFoo/sub-8   	     123	      4567 ns/op	     89 B/op	       2 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseLine(pkg, line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	res := Result{Package: pkg, Name: m[1], Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	if m[2] != "" {
		res.Procs, _ = strconv.Atoi(m[2])
	}
	res.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
	res.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
	if m[5] != "" {
		res.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
	}
	if m[6] != "" {
		res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
	}
	return res, true
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) != 0 {
		fmt.Fprintln(stderr, "usage: go test -json -bench . ./... | benchjson")
		return 2
	}
	results := []Result{} // empty array, not null, when nothing matched
	// test2json flushes long-running benchmarks' result lines in pieces
	// ("BenchmarkX \t" now, "1\t12345 ns/op\n" after the run), so output
	// is reassembled into whole lines per (package, test) stream before
	// matching.
	partial := make(map[string]string)
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // build noise and non-JSON lines are expected
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := partial[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if res, ok := parseLine(ev.Package, buf[:nl]); ok {
				results = append(results, res)
			}
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(partial, key)
		} else {
			partial[key] = buf
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}
