package main

import (
	"bytes"
	"testing"
)

func runCLI(args []string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestClprobeTable pins exit code and the exact stdout verdict table
// for small probe selections (the stderr timing lines are
// nondeterministic and left unpinned).
func TestClprobeTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
		out  string
	}{
		{"k2-two-bases", []string{"-k", "2", "-bases", "P2,C3"},
			"k=2 P2     sat=true  want=true \n" +
				"k=2 C3     sat=false want=false\n" +
				"clprobe: 2/2 probes match\n"},
		{"k3-k4", []string{"-k", "3", "-bases", "K4"},
			"k=2 K4     sat=false want=false\n" +
				"k=3 K4     sat=false want=false\n" +
				"clprobe: 2/2 probes match\n"},
		// -workers threads into the engine; verdicts are engine-invariant.
		{"workers-seq", []string{"-workers", "1", "-k", "2", "-bases", "C5"},
			"k=2 C5     sat=false want=false\n" + "clprobe: 1/1 probes match\n"},
		{"workers-par", []string{"-workers", "4", "-k", "2", "-bases", "C5"},
			"k=2 C5     sat=false want=false\n" + "clprobe: 1/1 probes match\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(tc.args)
			if code != 0 {
				t.Fatalf("exit %d (stderr: %s)", code, stderr)
			}
			if stdout != tc.out {
				t.Fatalf("stdout:\n%q\nwant:\n%q", stdout, tc.out)
			}
		})
	}
}

// TestClprobeErrors pins exit code 2 for usage errors.
func TestClprobeErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-k", "1"},
		{"-bogus"},
		{"stray"},
		{"-bases", "nope"},
		{"-bases", "P2,nope"},
	} {
		code, stdout, stderr := runCLI(args)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
		if stdout != "" {
			t.Fatalf("%v: usage error wrote stdout %q", args, stdout)
		}
		if stderr == "" {
			t.Fatalf("%v: usage error left stderr empty", args)
		}
	}
}
