// Command clprobe times the Cook–Levin τ-translation plus joint DPLL
// satisfiability per topology; a development aid for the Theorem 22
// experiment.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/reduce"
)

func main() {
	bases := []struct {
		name string
		g    *graph.Graph
	}{
		{"P2", graph.Path(2)}, {"P3", graph.Path(3)}, {"C3", graph.Cycle(3)},
		{"C4", graph.Cycle(4)}, {"C5", graph.Cycle(5)},
		{"Star4", graph.Star(4)}, {"K4", graph.Complete(4)},
	}
	for k := 2; k <= 3; k++ {
		for _, b := range bases {
			start := time.Now()
			bg, err := reduce.FormulaToBooleanGraph(b.g, logic.KColorable(k))
			if err != nil {
				fmt.Fprintln(os.Stderr, b.name, err)
				continue
			}
			sat := bg.Satisfiable()
			fmt.Fprintf(os.Stderr, "k=%d %-6s sat=%-5v want=%-5v %v\n",
				k, b.name, sat, props.KColorable(b.g, k), time.Since(start).Round(time.Millisecond))
		}
	}
}
