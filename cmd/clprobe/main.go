// Command clprobe cross-checks the Cook–Levin τ-translation plus joint
// DPLL satisfiability per topology against ground-truth k-colorability;
// a development aid for the Theorem 22 experiment. The (k, topology)
// table fans out across the shared search engine's worker pool.
//
// Usage:
//
//	clprobe [-workers N] [-k MAX] [-bases name,name,...]
//
//	-workers worker-pool size (0 = all CPUs, 1 = sequential)
//	-k       probe k = 2 .. MAX (default 3)
//	-bases   comma-separated topology names (default: all of
//	         P2,P3,C3,C4,C5,Star4,K4)
//
// Stdout carries the deterministic verdict table ("k=2 P2 sat=true
// want=true") plus the summary line; timing lines go to stderr. Exit
// status: 0 = every probe matches ground truth, 1 = a mismatch or
// translation error, 2 = usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// baseCatalog lists the probe topologies in canonical order.
func baseCatalog() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"P2", graph.Path(2)}, {"P3", graph.Path(3)}, {"C3", graph.Cycle(3)},
		{"C4", graph.Cycle(4)}, {"C5", graph.Cycle(5)},
		{"Star4", graph.Star(4)}, {"K4", graph.Complete(4)},
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clprobe", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workers := fs.Int("workers", 0, "worker-pool size (0 = all CPUs, 1 = sequential)")
	maxK := fs.Int("k", 3, "probe k = 2 .. MAX")
	basesFlag := fs.String("bases", "", "comma-separated topology names (default: all)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 || *workers < 0 || *maxK < 2 {
		fmt.Fprintln(stderr, "usage: clprobe [-workers N] [-k MAX] [-bases name,name,...]")
		return 2
	}
	catalog := baseCatalog()
	bases := catalog
	if *basesFlag != "" {
		bases = bases[:0:0]
		for _, name := range strings.Split(*basesFlag, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, b := range catalog {
				if b.name == name {
					bases = append(bases, b)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(stderr, "clprobe: unknown topology %q\n", name)
				return 2
			}
		}
	}

	type probe struct {
		k    int
		name string
		g    *graph.Graph
	}
	var probes []probe
	for k := 2; k <= *maxK; k++ {
		for _, b := range bases {
			probes = append(probes, probe{k: k, name: b.name, g: b.g})
		}
	}
	type outcome struct {
		sat, want bool
		err       error
		dur       time.Duration
	}
	engine := search.Parallel(*workers)
	results := search.Map(engine, len(probes), func(i int) outcome {
		p := probes[i]
		start := time.Now()
		bg, err := reduce.FormulaToBooleanGraph(p.g, logic.KColorable(p.k))
		if err != nil {
			return outcome{err: err, dur: time.Since(start)}
		}
		return outcome{sat: bg.Satisfiable(), want: props.KColorable(p.g, p.k), dur: time.Since(start)}
	})
	mismatches := 0
	for i, res := range results {
		p := probes[i]
		if res.err != nil {
			mismatches++
			fmt.Fprintf(stdout, "k=%d %-6s error\n", p.k, p.name)
			fmt.Fprintf(stderr, "k=%d %-6s %v\n", p.k, p.name, res.err)
			continue
		}
		if res.sat != res.want {
			mismatches++
		}
		fmt.Fprintf(stdout, "k=%d %-6s sat=%-5v want=%-5v\n", p.k, p.name, res.sat, res.want)
		fmt.Fprintf(stderr, "k=%d %-6s %v\n", p.k, p.name, res.dur.Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "clprobe: %d/%d probes match\n", len(probes)-mismatches, len(probes))
	if mismatches > 0 {
		return 1
	}
	return 0
}
