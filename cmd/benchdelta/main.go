// Command benchdelta gates one recorded benchmark file against another:
// it loads two BENCH_*.json files (the cmd/benchjson format), pairs the
// engine benchmarks — entries whose name ends in /sequential or
// /parallel — present in both, and fails when any pair's ns/op regressed
// by more than the tolerance. `make bench-delta` runs it with the
// previous PR's file as -old, so a perf PR cannot silently give back
// what an earlier one won.
//
// Usage:
//
//	benchdelta -old BENCH_pr7.json -new BENCH_pr8.json [-tolerance 0.10]
//
// Only the engine pairs are gated: the figure-regeneration benchmarks
// measure workloads that legitimately grow as the reproduction gains
// coverage, while the /sequential-vs-/parallel pairs are the contract
// the search and game engines must keep. A benchmark present in only
// one file is reported but never fails the gate (benchmarks come and
// go across PRs); a regression within tolerance is reported as noise.
//
// Exit status: 0 = no engine pair regressed beyond tolerance, 1 = at
// least one did (or a file failed to load), 2 = usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Result mirrors the cmd/benchjson entry schema.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// enginePair reports whether the benchmark is one side of a
// sequential/parallel engine pair — the entries the gate covers.
func enginePair(name string) bool {
	return strings.HasSuffix(name, "/sequential") || strings.HasSuffix(name, "/parallel")
}

func load(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]Result, len(results))
	for _, r := range results {
		out[r.Package+"/"+r.Name] = r
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline BENCH_*.json (cmd/benchjson format)")
	newPath := fs.String("new", "", "candidate BENCH_*.json to gate")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional ns/op regression per engine pair")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 || *oldPath == "" || *newPath == "" || *tolerance < 0 {
		fmt.Fprintln(stderr, "usage: benchdelta -old BENCH_prN.json -new BENCH_prM.json [-tolerance 0.10]")
		return 2
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdelta:", err)
		return 1
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdelta:", err)
		return 1
	}
	keys := make([]string, 0, len(oldRes))
	for k, r := range oldRes {
		if enginePair(r.Name) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	failed := 0
	compared := 0
	for _, k := range keys {
		o := oldRes[k]
		n, ok := newRes[k]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: absent from %s\n", k, *newPath)
			continue
		}
		compared++
		// delta > 0 is a slowdown; gate on the fractional regression.
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		switch {
		case delta > *tolerance:
			failed++
			fmt.Fprintf(stdout, "FAIL %s: %.0f -> %.0f ns/op (%+.1f%% > %.0f%% tolerance)\n",
				k, o.NsPerOp, n.NsPerOp, 100*delta, 100**tolerance)
		default:
			fmt.Fprintf(stdout, "ok   %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
				k, o.NsPerOp, n.NsPerOp, 100*delta)
		}
	}
	fmt.Fprintf(stdout, "benchdelta: %d engine pairs compared, %d regressed beyond %.0f%%\n",
		compared, failed, 100**tolerance)
	if failed > 0 {
		return 1
	}
	return 0
}
