// Command benchdelta gates one recorded benchmark file against another:
// it loads two BENCH_*.json files (the cmd/benchjson format), pairs the
// engine benchmarks — entries whose name ends in /sequential or
// /parallel — present in both, and fails when any pair's ns/op regressed
// by more than the tolerance. `make bench-delta` runs it with the
// previous PR's file as -old, so a perf PR cannot silently give back
// what an earlier one won.
//
// Usage:
//
//	benchdelta -old BENCH_pr7.json -new BENCH_pr8.json [-tolerance 0.10] [-overhead 0.10] [-hop 2.0]
//
// Only the engine pairs are gated cross-file: the figure-regeneration
// benchmarks measure workloads that legitimately grow as the
// reproduction gains coverage, while the /sequential-vs-/parallel
// pairs are the contract the search and game engines must keep. A
// benchmark present in only one file is reported but never fails the
// gate (benchmarks come and go across PRs); a regression within
// tolerance is reported as noise.
//
// A second, in-file gate covers instrumentation cost: every /untraced
// entry in -new with a /traced sibling under the same benchmark must
// not be exceeded by it by more than the -overhead fraction (the
// tracing-overhead budget; see BenchmarkTracedVerify).
//
// A third, in-file gate covers the pool front door the same way: every
// /direct entry with a /routed sibling must not be exceeded by more
// than the -hop fraction (see BenchmarkRouterHop). A routed request is
// a full second HTTP round trip plus the affinity hash, so its budget
// is a multiple of the direct request, not a percentage — the default
// 2.0 allows routed up to 3x direct, and the gate exists to catch the
// router becoming accidentally quadratic, not to pretend a proxy hop
// is free.
//
// When a file holds several records for one name (a `-count N` run),
// the two gates aggregate differently, each matching its noise model.
// The cross-file engine gate compares per-arm minima: the two files
// were recorded on different days of a shared box, so best-case vs
// best-case cancels host drift. The in-file overhead gate compares
// per-arm medians (benchstat's estimator): both arms ran interleaved
// under identical conditions, and a minimum would let one arm's lucky
// scheduling window bias the ratio.
//
// Exit status: 0 = no gate tripped, 1 = a pair regressed or overhead
// exceeded its budget (or a file failed to load), 2 = usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Result mirrors the cmd/benchjson entry schema.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// enginePair reports whether the benchmark is one side of a
// sequential/parallel engine pair — the entries the gate covers.
func enginePair(name string) bool {
	return strings.HasSuffix(name, "/sequential") || strings.HasSuffix(name, "/parallel")
}

// samples is every ns/op recorded for one benchmark key — one entry
// per -count repetition.
type samples []float64

func (s samples) min() float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s samples) median() float64 {
	sorted := append(samples(nil), s...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func load(path string) (map[string]samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]samples, len(results))
	for _, r := range results {
		key := r.Package + "/" + r.Name
		out[key] = append(out[key], r.NsPerOp)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline BENCH_*.json (cmd/benchjson format)")
	newPath := fs.String("new", "", "candidate BENCH_*.json to gate")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional ns/op regression per engine pair")
	overhead := fs.Float64("overhead", 0.10, "allowed fractional tracing overhead per /untraced-vs-/traced pair in -new")
	hop := fs.Float64("hop", 2.0, "allowed fractional router-hop overhead per /direct-vs-/routed pair in -new")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 || *oldPath == "" || *newPath == "" || *tolerance < 0 || *overhead < 0 || *hop < 0 {
		fmt.Fprintln(stderr, "usage: benchdelta -old BENCH_prN.json -new BENCH_prM.json [-tolerance 0.10] [-overhead 0.10] [-hop 2.0]")
		return 2
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdelta:", err)
		return 1
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdelta:", err)
		return 1
	}
	keys := make([]string, 0, len(oldRes))
	for k := range oldRes {
		if enginePair(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	failed := 0
	compared := 0
	for _, k := range keys {
		o := oldRes[k].min()
		n, ok := newRes[k]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: absent from %s\n", k, *newPath)
			continue
		}
		compared++
		// delta > 0 is a slowdown; gate on the fractional regression.
		delta := (n.min() - o) / o
		switch {
		case delta > *tolerance:
			failed++
			fmt.Fprintf(stdout, "FAIL %s: %.0f -> %.0f ns/op (%+.1f%% > %.0f%% tolerance)\n",
				k, o, n.min(), 100*delta, 100**tolerance)
		default:
			fmt.Fprintf(stdout, "ok   %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
				k, o, n.min(), 100*delta)
		}
	}
	fmt.Fprintf(stdout, "benchdelta: %d engine pairs compared, %d regressed beyond %.0f%%\n",
		compared, failed, 100**tolerance)

	// In-file gates: both arms of each pair come from the same recorded
	// run, so drift between files cannot fake or mask a verdict.
	_, overheadFailed := inFileGate(stdout, newRes, *newPath, "untraced", "traced", "tracing", *overhead)
	_, hopFailed := inFileGate(stdout, newRes, *newPath, "direct", "routed", "router-hop", *hop)
	if failed > 0 || overheadFailed > 0 || hopFailed > 0 {
		return 1
	}
	return 0
}

// inFileGate runs one baseline-vs-variant pair gate within the -new
// file: for every "/<baseSuffix>" entry with a "/<variantSuffix>"
// sibling under the same benchmark, the variant's median may exceed
// the baseline's by at most the budget fraction.
func inFileGate(stdout io.Writer, newRes map[string]samples, newPath,
	baseSuffix, variantSuffix, label string, budget float64) (pairs, failed int) {
	keys := make([]string, 0, 1)
	for k := range newRes {
		if strings.HasSuffix(k, "/"+baseSuffix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		base := newRes[k].median()
		name := strings.TrimSuffix(k, "/"+baseSuffix)
		variantS, ok := newRes[name+"/"+variantSuffix]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: no /%s sibling in %s\n", k, variantSuffix, newPath)
			continue
		}
		variant := variantS.median()
		pairs++
		delta := (variant - base) / base
		switch {
		case delta > budget:
			failed++
			fmt.Fprintf(stdout, "FAIL %s: %s overhead %.0f -> %.0f ns/op (%+.1f%% > %.0f%% budget)\n",
				name, label, base, variant, 100*delta, 100*budget)
		default:
			fmt.Fprintf(stdout, "ok   %s: %s overhead %.0f -> %.0f ns/op (%+.1f%%)\n",
				name, label, base, variant, 100*delta)
		}
	}
	fmt.Fprintf(stdout, "benchdelta: %d %s pairs compared, %d over the %.0f%% overhead budget\n",
		pairs, label, failed, 100*budget)
	return pairs, failed
}
