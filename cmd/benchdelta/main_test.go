package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `[
  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1},
  {"package":"repro","name":"BenchmarkFig1ThreeRoundColoring","procs":1,"iterations":100,"ns_per_op":1000,"bytes_per_op":-1,"allocs_per_op":-1},
  {"package":"repro","name":"BenchmarkGoneEngines/sequential","procs":1,"iterations":100,"ns_per_op":5000,"bytes_per_op":-1,"allocs_per_op":-1}
]`

func runWith(t *testing.T, newJSON string, tolerance string) (int, string) {
	t.Helper()
	oldPath := writeFile(t, "old.json", oldJSON)
	newPath := writeFile(t, "new.json", newJSON)
	var out, errb bytes.Buffer
	args := []string{"-old", oldPath, "-new", newPath}
	if tolerance != "" {
		args = append(args, "-tolerance", tolerance)
	}
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestWithinTolerancePasses(t *testing.T) {
	// parallel improved hugely, sequential regressed 5% — under the 10%
	// default; the non-engine benchmark regressing 100x is not gated.
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10500000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":5000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkFig1ThreeRoundColoring","procs":1,"iterations":100,"ns_per_op":100000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	code, out := runWith(t, newJSON, "")
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "2 engine pairs compared, 0 regressed") {
		t.Errorf("summary line missing:\n%s", out)
	}
	if !strings.Contains(out, "SKIP repro/BenchmarkGoneEngines/sequential") {
		t.Errorf("vanished benchmark must be reported as SKIP, not failed:\n%s", out)
	}
}

func TestRegressionBeyondToleranceFails(t *testing.T) {
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":11000000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	code, out := runWith(t, newJSON, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL repro/BenchmarkCoreGameEngines/parallel") {
		t.Errorf("regressed pair not reported as FAIL:\n%s", out)
	}
	if strings.Contains(out, "FAIL repro/BenchmarkCoreGameEngines/sequential") {
		t.Errorf("unchanged pair wrongly failed:\n%s", out)
	}
}

func TestToleranceFlag(t *testing.T) {
	// +5% regression: fails at 1% tolerance, passes at 10%.
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10500000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	if code, out := runWith(t, newJSON, "0.01"); code != 1 {
		t.Fatalf("5%% regression at 1%% tolerance: exit %d, want 1; output:\n%s", code, out)
	}
	if code, out := runWith(t, newJSON, "0.10"); code != 0 {
		t.Fatalf("5%% regression at 10%% tolerance: exit %d, want 0; output:\n%s", code, out)
	}
}

func TestOverheadGate(t *testing.T) {
	// The traced/untraced pair is gated within -new only; -old has no
	// such entries and that must not matter.
	pair := func(untraced, traced float64) string {
		return `[
		  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
		  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1},
		  {"package":"repro","name":"BenchmarkTracedVerify/untraced","procs":1,"iterations":100,"ns_per_op":` + fmt.Sprint(untraced) + `,"bytes_per_op":-1,"allocs_per_op":-1},
		  {"package":"repro","name":"BenchmarkTracedVerify/traced","procs":1,"iterations":100,"ns_per_op":` + fmt.Sprint(traced) + `,"bytes_per_op":-1,"allocs_per_op":-1}
		]`
	}
	if code, out := runWith(t, pair(50000, 54000), ""); code != 0 {
		t.Fatalf("8%% overhead at 10%% budget: exit %d, want 0; output:\n%s", code, out)
	} else if !strings.Contains(out, "1 tracing pairs compared, 0 over") {
		t.Errorf("overhead summary missing:\n%s", out)
	}
	if code, out := runWith(t, pair(50000, 60000), ""); code != 1 {
		t.Fatalf("20%% overhead at 10%% budget: exit %d, want 1; output:\n%s", code, out)
	} else if !strings.Contains(out, "FAIL repro/BenchmarkTracedVerify: tracing overhead") {
		t.Errorf("overhead FAIL line missing:\n%s", out)
	}
}

func TestRouterHopGate(t *testing.T) {
	// The direct/routed pair is gated within -new with its own budget: a
	// routed request is a second full HTTP round trip, so the default
	// allows up to 3x direct (delta 200%) before failing.
	pair := func(direct, routed float64) string {
		return `[
		  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
		  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1},
		  {"package":"repro","name":"BenchmarkRouterHop/direct","procs":1,"iterations":100,"ns_per_op":` + fmt.Sprint(direct) + `,"bytes_per_op":-1,"allocs_per_op":-1},
		  {"package":"repro","name":"BenchmarkRouterHop/routed","procs":1,"iterations":100,"ns_per_op":` + fmt.Sprint(routed) + `,"bytes_per_op":-1,"allocs_per_op":-1}
		]`
	}
	if code, out := runWith(t, pair(100000, 250000), ""); code != 0 {
		t.Fatalf("2.5x routed at 3x budget: exit %d, want 0; output:\n%s", code, out)
	} else if !strings.Contains(out, "1 router-hop pairs compared, 0 over") {
		t.Errorf("hop summary missing:\n%s", out)
	}
	if code, out := runWith(t, pair(100000, 400000), ""); code != 1 {
		t.Fatalf("4x routed at 3x budget: exit %d, want 1; output:\n%s", code, out)
	} else if !strings.Contains(out, "FAIL repro/BenchmarkRouterHop: router-hop overhead") {
		t.Errorf("hop FAIL line missing:\n%s", out)
	}
	// A tighter -hop flag turns the passing pair into a failure.
	oldPath := writeFile(t, "old2.json", oldJSON)
	newPath := writeFile(t, "new2.json", pair(100000, 250000))
	var out, errb bytes.Buffer
	if code := run([]string{"-old", oldPath, "-new", newPath, "-hop", "1.0"}, &out, &errb); code != 1 {
		t.Fatalf("2.5x routed at 2x budget: exit %d, want 1; output:\n%s", code, out.String())
	}
}

func TestCountRunsAggregatePerGate(t *testing.T) {
	// A -count N file holds several records per name. The engine gate
	// compares per-arm minima (one noisy sample of an unchanged engine
	// cannot trip it), while the overhead gate compares per-arm medians
	// (one wild traced sample cannot trip it, but neither can one lucky
	// untraced dip mask a real regression).
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":13000000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkTracedVerify/untraced","procs":1,"iterations":100,"ns_per_op":50000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkTracedVerify/untraced","procs":1,"iterations":100,"ns_per_op":44000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkTracedVerify/untraced","procs":1,"iterations":100,"ns_per_op":56000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkTracedVerify/traced","procs":1,"iterations":100,"ns_per_op":53000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkTracedVerify/traced","procs":1,"iterations":100,"ns_per_op":90000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkTracedVerify/traced","procs":1,"iterations":100,"ns_per_op":52000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	code, out := runWith(t, newJSON, "")
	if code != 0 {
		t.Fatalf("aggregated -count run: exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ok   repro/BenchmarkCoreGameEngines/parallel: 9000000 -> 9000000") {
		t.Errorf("engine gate must compare per-arm minima:\n%s", out)
	}
	// Medians 50000 and 53000: the 44000 dip and the 90000 spike are
	// both ignored (minima would report 44000 -> 52000 = +18%).
	if !strings.Contains(out, "50000 -> 53000") {
		t.Errorf("overhead gate must compare per-arm medians:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no flags: exit %d, want 2", code)
	}
	if code := run([]string{"-old", "x.json"}, &out, &errb); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
}

func TestMissingFileFails(t *testing.T) {
	oldPath := writeFile(t, "old.json", oldJSON)
	var out, errb bytes.Buffer
	if code := run([]string{"-old", oldPath, "-new", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Errorf("missing new file: exit %d, want 1", code)
	}
}
