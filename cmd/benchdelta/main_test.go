package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `[
  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1},
  {"package":"repro","name":"BenchmarkFig1ThreeRoundColoring","procs":1,"iterations":100,"ns_per_op":1000,"bytes_per_op":-1,"allocs_per_op":-1},
  {"package":"repro","name":"BenchmarkGoneEngines/sequential","procs":1,"iterations":100,"ns_per_op":5000,"bytes_per_op":-1,"allocs_per_op":-1}
]`

func runWith(t *testing.T, newJSON string, tolerance string) (int, string) {
	t.Helper()
	oldPath := writeFile(t, "old.json", oldJSON)
	newPath := writeFile(t, "new.json", newJSON)
	var out, errb bytes.Buffer
	args := []string{"-old", oldPath, "-new", newPath}
	if tolerance != "" {
		args = append(args, "-tolerance", tolerance)
	}
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestWithinTolerancePasses(t *testing.T) {
	// parallel improved hugely, sequential regressed 5% — under the 10%
	// default; the non-engine benchmark regressing 100x is not gated.
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10500000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":5000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkFig1ThreeRoundColoring","procs":1,"iterations":100,"ns_per_op":100000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	code, out := runWith(t, newJSON, "")
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "2 engine pairs compared, 0 regressed") {
		t.Errorf("summary line missing:\n%s", out)
	}
	if !strings.Contains(out, "SKIP repro/BenchmarkGoneEngines/sequential") {
		t.Errorf("vanished benchmark must be reported as SKIP, not failed:\n%s", out)
	}
}

func TestRegressionBeyondToleranceFails(t *testing.T) {
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10000000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":11000000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	code, out := runWith(t, newJSON, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL repro/BenchmarkCoreGameEngines/parallel") {
		t.Errorf("regressed pair not reported as FAIL:\n%s", out)
	}
	if strings.Contains(out, "FAIL repro/BenchmarkCoreGameEngines/sequential") {
		t.Errorf("unchanged pair wrongly failed:\n%s", out)
	}
}

func TestToleranceFlag(t *testing.T) {
	// +5% regression: fails at 1% tolerance, passes at 10%.
	newJSON := `[
	  {"package":"repro","name":"BenchmarkCoreGameEngines/sequential","procs":1,"iterations":100,"ns_per_op":10500000,"bytes_per_op":-1,"allocs_per_op":-1},
	  {"package":"repro","name":"BenchmarkCoreGameEngines/parallel","procs":1,"iterations":100,"ns_per_op":9000000,"bytes_per_op":-1,"allocs_per_op":-1}
	]`
	if code, out := runWith(t, newJSON, "0.01"); code != 1 {
		t.Fatalf("5%% regression at 1%% tolerance: exit %d, want 1; output:\n%s", code, out)
	}
	if code, out := runWith(t, newJSON, "0.10"); code != 0 {
		t.Fatalf("5%% regression at 10%% tolerance: exit %d, want 0; output:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no flags: exit %d, want 2", code)
	}
	if code := run([]string{"-old", "x.json"}, &out, &errb); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
}

func TestMissingFileFails(t *testing.T) {
	oldPath := writeFile(t, "old.json", oldJSON)
	var out, errb bytes.Buffer
	if code := run([]string{"-old", oldPath, "-new", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Errorf("missing new file: exit %d, want 1", code)
	}
}
