package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/search"
)

// runCLI invokes run with captured streams.
func runCLI(args []string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// reportGolden renders the experiment's report exactly as the binary
// prints it (report + blank line).
func reportGolden(t *testing.T, id string) string {
	t.Helper()
	spec, ok := experiments.FindSpec(id)
	if !ok {
		t.Fatalf("unknown spec %q", id)
	}
	return spec.Run(search.Sequential()).String() + "\n"
}

// TestFiguresTable pins exit code and stdout bytes for selected-suite
// invocations, mirroring cmd/lph/main_test.go.
func TestFiguresTable(t *testing.T) {
	tail := "all experiments reproduce the paper's claims\n"
	cases := []struct {
		name string
		args []string
		out  func(t *testing.T) string
	}{
		{"only-figure5", []string{"-only", "figure5"},
			func(t *testing.T) string { return reportGolden(t, "figure5") + tail }},
		{"only-two", []string{"-only", "figure5,figure9"},
			func(t *testing.T) string { return reportGolden(t, "figure5") + reportGolden(t, "figure9") + tail }},
		// -workers threads into the engine; reports are engine-invariant.
		{"workers-seq", []string{"-workers", "1", "-only", "figure9"},
			func(t *testing.T) string { return reportGolden(t, "figure9") + tail }},
		{"workers-par", []string{"-workers", "4", "-only", "figure9"},
			func(t *testing.T) string { return reportGolden(t, "figure9") + tail }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(tc.args)
			if code != 0 {
				t.Fatalf("exit %d (stderr: %s)", code, stderr)
			}
			if want := tc.out(t); stdout != want {
				t.Fatalf("stdout:\n%q\nwant:\n%q", stdout, want)
			}
			if stderr != "" {
				t.Fatalf("unexpected stderr: %q", stderr)
			}
		})
	}
}

// TestFiguresErrors pins exit code 2 for usage errors with empty stdout
// and a diagnostic on stderr.
func TestFiguresErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-bogus"},
		{"extra-arg"},
		{"-only", "nope"},
		{"-only", "figure5,nope"},
	} {
		code, stdout, stderr := runCLI(args)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
		if stdout != "" {
			t.Fatalf("%v: usage error wrote stdout %q", args, stdout)
		}
		if stderr == "" {
			t.Fatalf("%v: usage error left stderr empty", args)
		}
	}
}

// TestFiguresFullSuite runs the whole suite once through the binary —
// the end-to-end proof that every experiment reproduces under the
// sharded engine — and checks the trailer line and exit code.
func TestFiguresFullSuite(t *testing.T) {
	code, stdout, stderr := runCLI([]string{"-workers", "2"})
	if code != 0 {
		t.Fatalf("exit %d (stderr: %s)", code, stderr)
	}
	if !strings.HasSuffix(stdout, "all experiments reproduce the paper's claims\n") {
		t.Fatalf("missing trailer:\n%s", stdout[max(0, len(stdout)-400):])
	}
	for _, id := range []string{"Figure 1", "Figure 7", "edge-gatherer"} {
		if !strings.Contains(stdout, id) {
			t.Fatalf("suite output misses %q", id)
		}
	}
}
