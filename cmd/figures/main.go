// Command figures regenerates every figure/example experiment of the
// paper (see DESIGN.md for the index) and prints one report per artifact.
// It exits nonzero if any experiment fails to reproduce the paper's claim.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	failed := 0
	for _, rep := range experiments.All() {
		fmt.Print(rep)
		if !rep.OK() {
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	fmt.Println("all experiments reproduce the paper's claims")
	return 0
}
