// Command figures regenerates the figure/example experiments of the
// paper (see DESIGN.md for the index) and prints one report per
// artifact. The suite runs on the sharded sweep engine: experiments
// run in index order and each one's instance sweeps shard across the
// -workers pool.
//
// Usage:
//
//	figures [-workers N] [-only id,id,...]
//
//	-workers worker-pool size (0 = all CPUs, 1 = sequential)
//	-only    comma-separated experiment ids (default: the whole suite);
//	         ids are the Index slugs: figure1 … figure9, figure11,
//	         examples, fagin, cook-levin, lemma13
//
// Exit status: 0 = every selected experiment reproduces the paper's
// claim, 1 = at least one failed, 2 = usage error.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	workers, only, ok := cliutil.ParseSuiteFlags("figures", args, stderr,
		"usage: figures [-workers N] [-only id,id,...]")
	if !ok {
		return 2
	}
	specs, ok := cliutil.SelectSpecs("figures", only, stderr)
	if !ok {
		return 2
	}
	engine := search.Parallel(workers)
	failed := 0
	for _, spec := range specs {
		rep := spec.Run(engine)
		fmt.Fprint(stdout, rep)
		if !rep.OK() {
			failed++
		}
		fmt.Fprintln(stdout)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	fmt.Fprintln(stdout, "all experiments reproduce the paper's claims")
	return 0
}
