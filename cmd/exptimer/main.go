// Command exptimer runs the experiment suite and prints wall-clock
// timings to stderr; a development aid for keeping the suite fast. The
// experiments run one at a time (so each timing is unpolluted by its
// neighbors) but each experiment's internal sweeps shard across the
// -workers pool, making the sequential-vs-sharded cost visible per
// experiment.
//
// Usage:
//
//	exptimer [-workers N] [-only id,id,...]
//
// Stdout carries the deterministic summary ("exptimer: K/N experiments
// ok"); the per-experiment timing lines go to stderr. Exit status: 0 =
// all selected experiments ok, 1 = at least one failed, 2 = usage
// error.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	workers, only, ok := cliutil.ParseSuiteFlags("exptimer", args, stderr,
		"usage: exptimer [-workers N] [-only id,id,...]")
	if !ok {
		return 2
	}
	specs, ok := cliutil.SelectSpecs("exptimer", only, stderr)
	if !ok {
		return 2
	}
	engine := search.Parallel(workers)
	okCount := 0
	for _, spec := range specs {
		start := time.Now()
		rep := spec.Run(engine)
		if rep.OK() {
			okCount++
		}
		fmt.Fprintf(stderr, "%-12s %8v ok=%v\n", spec.ID, time.Since(start).Round(time.Millisecond), rep.OK())
	}
	fmt.Fprintf(stdout, "exptimer: %d/%d experiments ok\n", okCount, len(specs))
	if okCount != len(specs) {
		return 1
	}
	return 0
}
