// Command exptimer runs every experiment sequentially and prints wall-clock
// timings to stderr; a development aid for keeping the experiment suite
// fast.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fns := []struct {
		name string
		fn   func() *experiments.Report
	}{
		{"Fig1", experiments.Figure1},
		{"Fig5", experiments.Figure5Structure},
		{"Fig9", experiments.Figure9Eulerian},
		{"Fig3", experiments.Figure3Hamiltonian},
		{"Fig11", experiments.Figure11CoHamiltonian},
		{"Fig4", experiments.Figure4Colorability},
		{"Fig6", experiments.Figure6Pictures},
		{"Fig8", experiments.Figure8TuringMachine},
		{"L13", experiments.Lemma13Envelope},
		{"Fagin", experiments.FaginCrossValidation},
		{"CL", experiments.CookLevin},
		{"Fig2", experiments.Figure2Separations},
		{"Ex", experiments.ExampleFormulas},
		{"Fig7", experiments.Figure7Ladder},
	}
	for _, e := range fns {
		start := time.Now()
		rep := e.fn()
		fmt.Fprintf(os.Stderr, "%-6s %8v ok=%v\n", e.name, time.Since(start).Round(time.Millisecond), rep.OK())
	}
}
