package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args []string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExptimerTable pins the deterministic stdout summary and exit code
// for selected-suite invocations; the timing lines on stderr are
// nondeterministic, so only their ids are checked.
func TestExptimerTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		out     string
		timings []string
	}{
		{"two-experiments", []string{"-only", "figure5,figure1"},
			"exptimer: 2/2 experiments ok\n", []string{"figure5", "figure1"}},
		{"workers-seq", []string{"-workers", "1", "-only", "figure9"},
			"exptimer: 1/1 experiments ok\n", []string{"figure9"}},
		{"workers-par", []string{"-workers", "4", "-only", "figure9"},
			"exptimer: 1/1 experiments ok\n", []string{"figure9"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(tc.args)
			if code != 0 {
				t.Fatalf("exit %d (stderr: %s)", code, stderr)
			}
			if stdout != tc.out {
				t.Fatalf("stdout %q, want %q", stdout, tc.out)
			}
			for _, id := range tc.timings {
				if !strings.Contains(stderr, id) {
					t.Fatalf("stderr %q misses timing line for %s", stderr, id)
				}
			}
		})
	}
}

// TestExptimerErrors pins exit code 2 for usage errors.
func TestExptimerErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-bogus"},
		{"stray"},
		{"-only", "nope"},
	} {
		code, stdout, stderr := runCLI(args)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
		if stdout != "" {
			t.Fatalf("%v: usage error wrote stdout %q", args, stdout)
		}
		if stderr == "" {
			t.Fatalf("%v: usage error left stderr empty", args)
		}
	}
}
