// Command lph is the command-line interface to the locally polynomial
// hierarchy library: it decides and verifies graph properties on graphs
// read from JSON, runs the paper's reductions, and plays the Eve/Adam
// certificate games.
//
// Usage:
//
//	lph [-workers N] decide <property>  < graph.json
//	    property: all-selected | eulerian | all-equal
//	lph [-workers N] verify <property>  < graph.json
//	    property: 2-colorable | 3-colorable | 4-colorable | sat-graph |
//	              hamiltonian | not-all-selected | one-selected
//	    (plays the certificate game with Eve's strategy from the paper)
//	lph [-workers N] reduce <reduction> < graph.json   (prints the output graph JSON)
//	    reduction: eulerian | hamiltonian | co-hamiltonian | 3color
//	lph [-workers N] game figure1       (plays the 3-round 3-colorability game)
//	lph [-workers N] sweep [id ...]     (runs experiments on the sharded sweep engine)
//	    id: figure1 … figure9, figure11, examples, fagin, cook-levin, lemma13
//	    (no ids = the whole suite; each experiment's instance sweeps
//	    shard across the worker pool)
//
// Every subcommand body lives in internal/service — the same operation
// layer the lphd HTTP server routes to — so the CLI and the service run
// identical code paths.
//
// -workers N sets the worker-pool size for exhaustive game evaluation
// (0, the default, uses every CPU; 1 forces the sequential engine). It
// is threaded through every subcommand: the game subcommand and the
// certificate games behind verify fan out across the pool
// (core.StrategyGameValuePrepared: Adam's universal levels split), and
// decide runs its machine on the sequential node schedule when N is 1.
// Note the engine skips the pool on spaces too small to be worth
// splitting — the Figure 1 instances are in that regime, so both
// engines cost the same there.
//
// Exit status: 0 = property holds / reduction succeeded, 1 = property does
// not hold, 2 = usage or input error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simulate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run executes one CLI invocation against explicit streams, so the test
// suite asserts exit codes and output bytes without touching the
// process's real stdin/stdout.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lph", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // usage() prints our own message
	workers := fs.Int("workers", 0,
		"worker-pool size for exhaustive game evaluation (0 = all CPUs, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		usage(stderr)
		return 2
	}
	args = fs.Args()
	if len(args) < 1 || *workers < 0 {
		usage(stderr)
		return 2
	}
	engine := search.Parallel(*workers)
	switch args[0] {
	case "decide":
		return verdict(args[1:], engine, "LP property", service.HasDecide, service.Decide,
			stdin, stdout, stderr)
	case "verify":
		return verdict(args[1:], engine, "verifiable property", service.HasVerify, service.Verify,
			stdin, stdout, stderr)
	case "reduce":
		return reduction(args[1:], engine, stdin, stdout, stderr)
	case "game":
		return game(args[1:], engine, stdout, stderr)
	case "sweep":
		return sweep(args[1:], engine, stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: lph [-workers N] {decide|verify|reduce|game|sweep} <name> < graph.json")
}

func readGraph(stdin io.Reader, stderr io.Writer) (*graph.Graph, bool) {
	g, err := graphio.Decode(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "lph:", err)
		return nil, false
	}
	return g, true
}

// fail prints an operation error and maps it to the exit code: catalog
// misses are usage errors (2), everything else is an input/engine error
// (also 2 — the 0/1 codes are reserved for verdicts).
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "lph:", err)
	return 2
}

// verdict runs decide or verify — the two verdict-shaped operations —
// through the shared service ops against a freshly prepared instance.
// The catalog is consulted before stdin is touched, so an unknown name
// fails immediately instead of waiting for graph JSON at a terminal.
func verdict(args []string, engine search.Options, noun string,
	has func(name string) bool,
	eval func(prep *simulate.Prepared, name string, o search.Options) (bool, error),
	stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		usage(stderr)
		return 2
	}
	if !has(args[0]) {
		fmt.Fprintf(stderr, "lph: unknown %s %q\n", noun, args[0])
		return 2
	}
	g, ok := readGraph(stdin, stderr)
	if !ok {
		return 2
	}
	prep, err := service.Prepare(g)
	if err != nil {
		return fail(stderr, err)
	}
	holds, err := eval(prep, args[0], engine)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "%s: %v\n", args[0], holds)
	if holds {
		return 0
	}
	return 1
}

func reduction(args []string, engine search.Options, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		usage(stderr)
		return 2
	}
	if !service.HasReduce(args[0]) {
		fmt.Fprintf(stderr, "lph: unknown reduction %q\n", args[0])
		return 2
	}
	g, ok := readGraph(stdin, stderr)
	if !ok {
		return 2
	}
	res, err := service.Reduce(g, args[0], engine)
	if err != nil {
		return fail(stderr, err)
	}
	if err := graphio.Encode(stdout, res.Out); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func game(args []string, engine search.Options, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		usage(stderr)
		return 2
	}
	results, err := service.Game(args[0], engine)
	if err != nil {
		if errors.Is(err, service.ErrUnknownName) {
			usage(stderr)
			return 2
		}
		return fail(stderr, err)
	}
	for _, r := range results {
		fmt.Fprintf(stdout, "%s: 3-colorable=%v, 3-round 3-colorable=%v\n",
			r.Graph, r.ThreeColorable, r.ThreeRoundColorable)
	}
	return 0
}

// sweep runs the named experiments (all of them with no arguments) on
// the sharded sweep engine: experiments run in selection order and
// each one's instance sweeps shard across the worker pool (one fan-out
// level, so the pool stays inside the -workers budget). One summary
// line per experiment goes to stdout; failing reports are printed in
// full on stderr.
func sweep(args []string, engine search.Options, stdout, stderr io.Writer) int {
	specs := experiments.Index()
	if len(args) > 0 {
		specs = specs[:0:0]
		for _, id := range args {
			s, ok := experiments.FindSpec(id)
			if !ok {
				fmt.Fprintf(stderr, "lph: unknown experiment %q\n", id)
				return 2
			}
			specs = append(specs, s)
		}
	}
	failed := 0
	for _, spec := range specs {
		rep := spec.Run(engine)
		if rep.OK() {
			fmt.Fprintf(stdout, "%s: ok\n", spec.ID)
		} else {
			failed++
			fmt.Fprintf(stdout, "%s: FAILED\n", spec.ID)
			fmt.Fprint(stderr, rep)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
