// Command lph is the command-line interface to the locally polynomial
// hierarchy library: it decides and verifies graph properties on graphs
// read from JSON, runs the paper's reductions, and plays the Eve/Adam
// certificate games.
//
// Usage:
//
//	lph [-workers N] decide <property>  < graph.json
//	    property: all-selected | eulerian | all-equal
//	lph [-workers N] verify <property>  < graph.json
//	    property: 2-colorable | 3-colorable | 4-colorable | sat-graph |
//	              hamiltonian | not-all-selected | one-selected
//	    (plays the certificate game with Eve's strategy from the paper)
//	lph [-workers N] reduce <reduction> < graph.json   (prints the output graph JSON)
//	    reduction: eulerian | hamiltonian | co-hamiltonian | 3color
//	lph [-workers N] game figure1       (plays the 3-round 3-colorability game)
//
// -workers N sets the worker-pool size for exhaustive game evaluation
// (0, the default, uses every CPU; 1 forces the sequential engine). It
// drives the game subcommand and the certificate games behind verify
// (core.StrategyGameValueOpt: Adam's universal levels fan out across the
// pool). Note the engine skips the pool on spaces too small to be worth
// splitting — the Figure 1 instances are in that regime, so both
// engines cost the same there.
//
// Exit status: 0 = property holds / reduction succeeded, 1 = property does
// not hold, 2 = usage or input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/search"
	"repro/internal/simulate"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lph", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // usage() prints our own message
	workers := fs.Int("workers", 0,
		"worker-pool size for exhaustive game evaluation (0 = all CPUs, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		usage()
		return 2
	}
	args = fs.Args()
	if len(args) < 1 || *workers < 0 {
		usage()
		return 2
	}
	engine := search.Parallel(*workers)
	switch args[0] {
	case "decide":
		return decide(args[1:])
	case "verify":
		return verify(args[1:], engine)
	case "reduce":
		return reduction(args[1:])
	case "game":
		return game(args[1:], engine)
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lph [-workers N] {decide|verify|reduce|game} <name> < graph.json")
}

func readGraph() (*graph.Graph, bool) {
	g, err := graphio.Decode(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lph:", err)
		return nil, false
	}
	return g, true
}

func decide(args []string) int {
	if len(args) != 1 {
		usage()
		return 2
	}
	machines := map[string]*simulate.Machine{
		"all-selected": arbiters.AllSelected(),
		"eulerian":     arbiters.Eulerian(),
		"all-equal":    arbiters.AllEqual(),
	}
	m, ok := machines[args[0]]
	if !ok {
		fmt.Fprintf(os.Stderr, "lph: unknown LP property %q\n", args[0])
		return 2
	}
	g, ok := readGraph()
	if !ok {
		return 2
	}
	accepted, err := simulate.Decide(m, g, graph.SmallLocallyUnique(g, 1), simulate.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lph:", err)
		return 2
	}
	fmt.Printf("%s: %v\n", args[0], accepted)
	if accepted {
		return 0
	}
	return 1
}

func verify(args []string, engine search.Options) int {
	if len(args) != 1 {
		usage()
		return 2
	}
	g, ok := readGraph()
	if !ok {
		return 2
	}
	id := graph.SmallLocallyUnique(g, 1)
	var (
		accepted bool
		err      error
	)
	switch args[0] {
	case "2-colorable", "3-colorable", "4-colorable":
		k := int(args[0][0] - '0')
		arb := &core.Arbiter{Machine: arbiters.KColorable(k), Level: core.Sigma(1),
			RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 2}}}
		accepted, err = arb.StrategyGameValueOpt(g, id,
			[]core.Strategy{arbiters.ColoringStrategy(k)}, []cert.Domain{{}}, engine)
	case "sat-graph":
		arb := &core.Arbiter{Machine: arbiters.SatGraph(), Level: core.Sigma(1),
			RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 4}}}
		accepted, err = arb.StrategyGameValueOpt(g, id,
			[]core.Strategy{arbiters.SatGraphStrategy()}, []cert.Domain{{}}, engine)
	case "hamiltonian":
		accepted, err = games.HamiltonianArbiter().StrategyGameValueOpt(g, id,
			[]core.Strategy{games.HamiltonianStrategy(), nil, games.RootChargeStrategy()},
			[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}}, engine)
	case "not-all-selected":
		accepted, err = games.NotAllSelectedArbiter().StrategyGameValueOpt(g, id,
			[]core.Strategy{games.ForestStrategy(games.IsUnselected), nil, games.ChargeStrategy(nil)},
			[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}}, engine)
	case "one-selected":
		accepted, err = games.OneSelectedArbiter().StrategyGameValueOpt(g, id,
			[]core.Strategy{games.ForestStrategy(games.IsSelected), nil, games.ChargeStrategy(games.IsSelected)},
			[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}}, engine)
	default:
		fmt.Fprintf(os.Stderr, "lph: unknown verifiable property %q\n", args[0])
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lph:", err)
		return 2
	}
	fmt.Printf("%s: %v\n", args[0], accepted)
	if accepted {
		return 0
	}
	return 1
}

func reduction(args []string) int {
	if len(args) != 1 {
		usage()
		return 2
	}
	reductions := map[string]reduce.Reduction{
		"eulerian":       reduce.AllSelectedToEulerian(),
		"hamiltonian":    reduce.AllSelectedToHamiltonian(),
		"co-hamiltonian": reduce.NotAllSelectedToHamiltonian(),
		"3color": reduce.Compose(
			reduce.SatGraphTo3SatGraph(), reduce.ThreeSatGraphToThreeColorable()),
	}
	r, ok := reductions[args[0]]
	if !ok {
		fmt.Fprintf(os.Stderr, "lph: unknown reduction %q\n", args[0])
		return 2
	}
	g, ok := readGraph()
	if !ok {
		return 2
	}
	var id graph.IDAssignment
	if r.RadiusID > 0 {
		id = graph.SmallLocallyUnique(g, r.RadiusID)
	}
	res, err := r.Apply(g, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lph:", err)
		return 2
	}
	if err := res.Validate(g); err != nil {
		fmt.Fprintln(os.Stderr, "lph: cluster map invalid:", err)
		return 2
	}
	if err := graphio.Encode(os.Stdout, res.Out); err != nil {
		fmt.Fprintln(os.Stderr, "lph:", err)
		return 2
	}
	return 0
}

func game(args []string, engine search.Options) int {
	if len(args) != 1 || args[0] != "figure1" {
		usage()
		return 2
	}
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"Figure 1a", graph.Figure1NoInstance()},
		{"Figure 1b", graph.Figure1YesInstance()},
	} {
		fmt.Printf("%s: 3-colorable=%v, 3-round 3-colorable=%v\n",
			tt.name, props.ThreeColorable(tt.g), props.ThreeRoundThreeColorableOpt(tt.g, engine))
	}
	return 0
}
