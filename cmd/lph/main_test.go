package main

import (
	"os"
	"testing"
)

// withStdin redirects os.Stdin to the given content for one run call.
func withStdin(t *testing.T, content string, f func()) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	if _, err := w.WriteString(content); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f()
}

func TestRunUsage(t *testing.T) {
	if run(nil) != 2 || run([]string{"bogus"}) != 2 {
		t.Fatal("usage errors must exit 2")
	}
	if run([]string{"decide", "nope"}) != 2 {
		t.Fatal("unknown property must exit 2")
	}
}

func TestDecideCommand(t *testing.T) {
	withStdin(t, `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]}`, func() {
		if code := run([]string{"decide", "all-selected"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
	withStdin(t, `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","0","1"]}`, func() {
		if code := run([]string{"decide", "all-selected"}); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}

func TestVerifyCommand(t *testing.T) {
	// C5 is 3-colorable but not 2-colorable.
	c5 := `{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[4,0]]}`
	withStdin(t, c5, func() {
		if code := run([]string{"verify", "3-colorable"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
	withStdin(t, c5, func() {
		if code := run([]string{"verify", "2-colorable"}); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
	withStdin(t, c5, func() {
		if code := run([]string{"verify", "hamiltonian"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
}

func TestReduceCommand(t *testing.T) {
	withStdin(t, `{"n":2,"edges":[[0,1]],"labels":["1","0"]}`, func() {
		if code := run([]string{"reduce", "hamiltonian"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
}

func TestGameCommand(t *testing.T) {
	if code := run([]string{"game", "figure1"}); code != 0 {
		t.Fatal("figure1 game failed")
	}
	if code := run([]string{"game", "bogus"}); code != 2 {
		t.Fatal("unknown game must exit 2")
	}
}

// TestBadInput pins the doc-comment promise that malformed graph JSON
// exits with status 2 (not 0 or 1) on every graph-reading subcommand,
// including JSON whose first object parses but is followed by garbage.
func TestBadInput(t *testing.T) {
	malformed := []string{
		`not json`,
		`{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]} trailing`,
		`{"n":3,"edges":[[0,1],[1,2],[2,0]]}{"n":1}`,
	}
	commands := [][]string{
		{"decide", "all-selected"},
		{"verify", "3-colorable"},
		{"reduce", "hamiltonian"},
	}
	for _, in := range malformed {
		for _, cmd := range commands {
			withStdin(t, in, func() {
				if code := run(cmd); code != 2 {
					t.Fatalf("%v on %q: exit %d, want 2", cmd, in, code)
				}
			})
		}
	}
}

// TestWorkersFlag covers the -workers engine selector: both engines must
// run the figure1 game successfully, and a negative pool is a usage
// error.
func TestWorkersFlag(t *testing.T) {
	if code := run([]string{"-workers", "1", "game", "figure1"}); code != 0 {
		t.Fatal("sequential figure1 game failed")
	}
	if code := run([]string{"-workers", "4", "game", "figure1"}); code != 0 {
		t.Fatal("parallel figure1 game failed")
	}
	if code := run([]string{"-workers", "-3", "game", "figure1"}); code != 2 {
		t.Fatal("negative workers must exit 2")
	}
	withStdin(t, `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]}`, func() {
		// decide does not use the search engine yet; the flag must still
		// parse cleanly in front of it.
		if code := run([]string{"-workers", "2", "decide", "all-selected"}); code != 0 {
			t.Fatal("-workers must parse in front of decide")
		}
	})
}
