package main

import (
	"os"
	"testing"
)

// withStdin redirects os.Stdin to the given content for one run call.
func withStdin(t *testing.T, content string, f func()) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	if _, err := w.WriteString(content); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f()
}

func TestRunUsage(t *testing.T) {
	if run(nil) != 2 || run([]string{"bogus"}) != 2 {
		t.Fatal("usage errors must exit 2")
	}
	if run([]string{"decide", "nope"}) != 2 {
		t.Fatal("unknown property must exit 2")
	}
}

func TestDecideCommand(t *testing.T) {
	withStdin(t, `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]}`, func() {
		if code := run([]string{"decide", "all-selected"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
	withStdin(t, `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","0","1"]}`, func() {
		if code := run([]string{"decide", "all-selected"}); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}

func TestVerifyCommand(t *testing.T) {
	// C5 is 3-colorable but not 2-colorable.
	c5 := `{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[4,0]]}`
	withStdin(t, c5, func() {
		if code := run([]string{"verify", "3-colorable"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
	withStdin(t, c5, func() {
		if code := run([]string{"verify", "2-colorable"}); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
	withStdin(t, c5, func() {
		if code := run([]string{"verify", "hamiltonian"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
}

func TestReduceCommand(t *testing.T) {
	withStdin(t, `{"n":2,"edges":[[0,1]],"labels":["1","0"]}`, func() {
		if code := run([]string{"reduce", "hamiltonian"}); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})
}

func TestGameCommand(t *testing.T) {
	if code := run([]string{"game", "figure1"}); code != 0 {
		t.Fatal("figure1 game failed")
	}
	if code := run([]string{"game", "bogus"}); code != 2 {
		t.Fatal("unknown game must exit 2")
	}
}

func TestBadInput(t *testing.T) {
	withStdin(t, `not json`, func() {
		if code := run([]string{"decide", "all-selected"}); code != 2 {
			t.Fatal("bad input must exit 2")
		}
	})
}
