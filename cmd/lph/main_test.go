package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graphio"
	"repro/internal/search"
	"repro/internal/service"
)

// example reads one of the committed example graphs the CLI table runs
// against.
func example(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "graphs", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runCLI invokes run with captured streams.
func runCLI(args []string, stdin string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// reduceGolden computes the exact bytes `lph reduce` must print for the
// given input: the graphio encoding of the shared ops-layer reduction.
// The reductions' semantics are pinned in internal/reduce; here the
// contract is that the CLI is a faithful shell over internal/service.
func reduceGolden(t *testing.T, input, name string) string {
	t.Helper()
	g, err := graphio.Decode(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	res, err := service.Reduce(g, name, search.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphio.Encode(&buf, res.Out); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCLITable pins exit code and stdout bytes for every decide /
// verify / reduce / game subcommand against the examples/graphs corpus.
func TestCLITable(t *testing.T) {
	figure1Out := "Figure 1a: 3-colorable=true, 3-round 3-colorable=false\n" +
		"Figure 1b: 3-colorable=true, 3-round 3-colorable=true\n"
	cases := []struct {
		name  string
		args  []string
		input string // example file; "" = no stdin content
		code  int
		out   string // exact stdout; "@reduce" = reduceGolden of args[1]
	}{
		// decide: all three LP properties, both verdicts.
		{"decide/all-selected/yes", []string{"decide", "all-selected"}, "triangle-selected.json", 0, "all-selected: true\n"},
		{"decide/all-selected/no", []string{"decide", "all-selected"}, "triangle-mixed.json", 1, "all-selected: false\n"},
		{"decide/all-equal/yes", []string{"decide", "all-equal"}, "triangle-selected.json", 0, "all-equal: true\n"},
		{"decide/all-equal/no", []string{"decide", "all-equal"}, "triangle-mixed.json", 1, "all-equal: false\n"},
		{"decide/eulerian/yes", []string{"decide", "eulerian"}, "c5.json", 0, "eulerian: true\n"},
		{"decide/eulerian/no", []string{"decide", "eulerian"}, "path4.json", 1, "eulerian: false\n"},
		// verify: every property in the catalog, both verdicts where an
		// example provides one.
		{"verify/2-colorable/yes", []string{"verify", "2-colorable"}, "path4.json", 0, "2-colorable: true\n"},
		{"verify/2-colorable/no", []string{"verify", "2-colorable"}, "c5.json", 1, "2-colorable: false\n"},
		{"verify/3-colorable/yes", []string{"verify", "3-colorable"}, "c5.json", 0, "3-colorable: true\n"},
		{"verify/3-colorable/no", []string{"verify", "3-colorable"}, "k4.json", 1, "3-colorable: false\n"},
		{"verify/4-colorable/yes", []string{"verify", "4-colorable"}, "k4.json", 0, "4-colorable: true\n"},
		{"verify/sat-graph/yes", []string{"verify", "sat-graph"}, "satgraph.json", 0, "sat-graph: true\n"},
		{"verify/hamiltonian/yes", []string{"verify", "hamiltonian"}, "c5.json", 0, "hamiltonian: true\n"},
		{"verify/hamiltonian/no", []string{"verify", "hamiltonian"}, "star4.json", 1, "hamiltonian: false\n"},
		{"verify/not-all-selected/yes", []string{"verify", "not-all-selected"}, "triangle-mixed.json", 0, "not-all-selected: true\n"},
		{"verify/not-all-selected/no", []string{"verify", "not-all-selected"}, "triangle-selected.json", 1, "not-all-selected: false\n"},
		{"verify/one-selected/yes", []string{"verify", "one-selected"}, "star4.json", 0, "one-selected: true\n"},
		{"verify/one-selected/no", []string{"verify", "one-selected"}, "triangle-selected.json", 1, "one-selected: false\n"},
		// reduce: all four reductions; stdout must be byte-identical to
		// the ops-layer result.
		{"reduce/eulerian", []string{"reduce", "eulerian"}, "triangle-selected.json", 0, "@reduce"},
		{"reduce/hamiltonian", []string{"reduce", "hamiltonian"}, "triangle-selected.json", 0, "@reduce"},
		{"reduce/co-hamiltonian", []string{"reduce", "co-hamiltonian"}, "triangle-mixed.json", 0, "@reduce"},
		{"reduce/3color", []string{"reduce", "3color"}, "satgraph.json", 0, "@reduce"},
		// game.
		{"game/figure1", []string{"game", "figure1"}, "", 0, figure1Out},
		// sweep: named experiments through the sharded engine, summary
		// lines in selection order.
		{"sweep/one", []string{"sweep", "figure5"}, "", 0, "figure5: ok\n"},
		{"sweep/two", []string{"sweep", "figure9", "figure3"}, "", 0, "figure9: ok\nfigure3: ok\n"},
		{"sweep/workers-seq", []string{"-workers", "1", "sweep", "figure7"}, "", 0, "figure7: ok\n"},
		{"sweep/workers-par", []string{"-workers", "4", "sweep", "figure7"}, "", 0, "figure7: ok\n"},
		// -workers threads through every subcommand (the decide/reduce
		// paths used to drop it): verdicts and bytes are engine-invariant.
		{"workers/decide-seq", []string{"-workers", "1", "decide", "all-selected"}, "triangle-selected.json", 0, "all-selected: true\n"},
		{"workers/decide-par", []string{"-workers", "4", "decide", "all-selected"}, "triangle-selected.json", 0, "all-selected: true\n"},
		{"workers/verify-seq", []string{"-workers", "1", "verify", "hamiltonian"}, "c5.json", 0, "hamiltonian: true\n"},
		{"workers/verify-par", []string{"-workers", "4", "verify", "hamiltonian"}, "c5.json", 0, "hamiltonian: true\n"},
		{"workers/reduce", []string{"-workers", "2", "reduce", "eulerian"}, "triangle-selected.json", 0, "@reduce"},
		{"workers/game-seq", []string{"-workers", "1", "game", "figure1"}, "", 0, figure1Out},
		{"workers/game-par", []string{"-workers", "4", "game", "figure1"}, "", 0, figure1Out},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdin string
			if tc.input != "" {
				stdin = example(t, tc.input)
			}
			want := tc.out
			if want == "@reduce" {
				want = reduceGolden(t, stdin, tc.args[len(tc.args)-1])
			}
			code, stdout, stderr := runCLI(tc.args, stdin)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			if stdout != want {
				t.Fatalf("stdout:\n%q\nwant:\n%q", stdout, want)
			}
			if stderr != "" {
				t.Fatalf("unexpected stderr: %q", stderr)
			}
		})
	}
}

// TestCLIErrors pins exit code 2 (with empty stdout and a diagnostic on
// stderr) for usage errors, unknown names, and malformed input.
func TestCLIErrors(t *testing.T) {
	valid := `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]}`
	cases := []struct {
		name  string
		args  []string
		input string
	}{
		{"no-args", nil, ""},
		{"bogus-subcommand", []string{"bogus"}, ""},
		{"decide/no-name", []string{"decide"}, valid},
		{"decide/extra-args", []string{"decide", "all-selected", "extra"}, valid},
		{"decide/unknown", []string{"decide", "nope"}, valid},
		{"verify/unknown", []string{"verify", "nope"}, valid},
		{"reduce/unknown", []string{"reduce", "nope"}, valid},
		{"game/unknown", []string{"game", "bogus"}, ""},
		{"sweep/unknown", []string{"sweep", "nope"}, ""},
		{"sweep/mixed-unknown", []string{"sweep", "figure5", "nope"}, ""},
		{"workers/negative", []string{"-workers", "-3", "game", "figure1"}, ""},
		{"flag/unknown", []string{"-bogus", "decide", "all-selected"}, valid},
		{"decide/not-json", []string{"decide", "all-selected"}, "not json"},
		{"decide/trailing", []string{"decide", "all-selected"}, valid + " trailing"},
		{"decide/second-object", []string{"decide", "all-selected"}, valid + `{"n":1}`},
		{"verify/not-json", []string{"verify", "3-colorable"}, "not json"},
		{"verify/trailing", []string{"verify", "3-colorable"}, valid + " trailing"},
		{"reduce/not-json", []string{"reduce", "hamiltonian"}, "not json"},
		{"reduce/trailing", []string{"reduce", "hamiltonian"}, valid + `{"n":1}`},
		{"decide/disconnected", []string{"decide", "all-selected"}, `{"n":2,"edges":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(tc.args, tc.input)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stdout: %q, stderr: %q)", code, stdout, stderr)
			}
			if stdout != "" {
				t.Fatalf("usage error wrote to stdout: %q", stdout)
			}
			if stderr == "" {
				t.Fatal("usage error left stderr empty")
			}
		})
	}
}

// sentinelReader fails the test if anything reads from it.
type sentinelReader struct{ t *testing.T }

func (s sentinelReader) Read([]byte) (int, error) {
	s.t.Fatal("stdin was read before the name was validated")
	return 0, io.EOF
}

// TestCLINameCheckBeforeStdin: an unknown catalog name must fail
// without touching stdin — at a terminal the old flow would otherwise
// sit waiting for graph JSON before reporting the typo.
func TestCLINameCheckBeforeStdin(t *testing.T) {
	for _, args := range [][]string{
		{"decide", "nope"},
		{"verify", "nope"},
		{"reduce", "nope"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, sentinelReader{t}, &out, &errb); code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
		if !strings.Contains(errb.String(), `"nope"`) {
			t.Fatalf("%v: stderr %q does not name the typo", args, errb.String())
		}
	}
}

// TestCLIMatchesOps spot-checks that CLI verdicts agree with direct
// ops-layer calls on the same graphs — the "identical code path"
// guarantee made by the refactor onto internal/service.
func TestCLIMatchesOps(t *testing.T) {
	for _, file := range []string{"triangle-selected.json", "c5.json", "star4.json"} {
		input := example(t, file)
		g, err := graphio.Decode(strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		prep, err := service.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, prop := range service.VerifyNames() {
			want, err := service.Verify(prep, prop, search.Sequential())
			if err != nil {
				t.Fatalf("%s %s: %v", file, prop, err)
			}
			code, stdout, _ := runCLI([]string{"verify", prop}, input)
			wantCode := 1
			if want {
				wantCode = 0
			}
			if code != wantCode {
				t.Fatalf("%s verify %s: CLI exit %d, ops verdict %v", file, prop, code, want)
			}
			if !strings.Contains(stdout, prop+":") {
				t.Fatalf("%s verify %s: stdout %q", file, prop, stdout)
			}
		}
	}
}
