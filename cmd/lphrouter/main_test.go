package main

import (
	"encoding/json"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/journaltest"
	"repro/internal/routertest"
)

// TestMain doubles as the lphrouter binary for the boot test below:
// re-exec'd with the child marker, the test binary runs the real main
// loop, so the boot/shutdown cycle runs under -race with no `go build`
// step (the same trick as cmd/lphd's crash harness). Deferring to
// routertest.Main makes the same binary answer routertest's own child
// marker too, so StartNode can boot a real lphd node from here.
func TestMain(m *testing.M) {
	if os.Getenv("LPHROUTER_CHILD") == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(routertest.Main(m))
}

// TestRunUsageErrors pins the exit codes: usage errors exit 2 before
// the listener comes up, an unusable listen address exits 1.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{},                                     // -nodes is required
		{"-nodes", "a:1", "-miss-budget", "0"}, // budgets must be positive
		{"-nodes", "a:1", "-probe-interval", "-1s"},
		{"-nodes", "a:1", "-log-level", "nope"},
	} {
		if code := run(args); code != 2 {
			t.Errorf("run(%q): exit %d, want 2", args, code)
		}
	}
	if code := run([]string{"-nodes", "a:1", "-addr", "256.0.0.1:0"}); code != 1 {
		t.Errorf("bad listen address: exit %d, want 1", code)
	}
}

// TestBootAgainstRealNode boots a real lphd and a real lphrouter over
// it (both re-exec'd from test binaries), walks a proxied request and
// the router-owned routes through the front door, and shuts the router
// down with SIGTERM, which must exit 0.
func TestBootAgainstRealNode(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real processes; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	node := routertest.StartNode(t, "127.0.0.1:0", t.TempDir()+"/journal")
	rp := journaltest.Start(t, exe, []string{"LPHROUTER_CHILD=1"},
		"-addr", "127.0.0.1:0", "-nodes", node.Addr, "-probe-interval", "50ms")

	if code, body := rp.Do(http.MethodGet, "/v1/router/healthz", ""); code != http.StatusOK {
		t.Fatalf("router healthz: %d %s", code, body)
	} else {
		var hz struct {
			OK     bool `json:"ok"`
			Active int  `json:"active"`
		}
		if err := json.Unmarshal(body, &hz); err != nil || !hz.OK || hz.Active != 1 {
			t.Fatalf("router healthz body %s (%v)", body, err)
		}
	}
	// A node route through the front door: proxied, JSON, 200.
	if code, body := rp.Do(http.MethodGet, "/v1/healthz", ""); code != http.StatusOK || string(body) != "{\"ok\":true}\n" {
		t.Fatalf("proxied healthz: %d %q", code, body)
	}
	rp.Signal(syscall.SIGTERM)
	if code := rp.WaitExit(10 * time.Second); code != 0 {
		t.Fatalf("SIGTERM exit %d, want 0", code)
	}
}
