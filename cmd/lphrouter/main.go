// Command lphrouter is the pool front door: a reverse proxy that
// consistent-hashes requests across a fleet of lphd instances for
// Prepared-cache affinity, health-checks the pool, retries shed and
// drained hops on the next ring candidate, and drives rolling
// restarts. See internal/router for the routing, membership, retry,
// and tracing contracts.
//
//	lphrouter -addr :8090 -nodes 10.0.0.1:8080,10.0.0.2:8080,10.0.0.3:8080
//
// Flags:
//
//	-addr           listen address (":0" picks a free port)
//	-nodes          comma-separated lphd addresses (required)
//	-probe-interval reconciler cadence (default 500ms)
//	-probe-timeout  per-probe bound (default 2s)
//	-miss-budget    consecutive failed probes before a node is evicted (default 3)
//	-roll-timeout   per-node recovery budget of POST /v1/admin/roll (default 60s)
//	-trace-ring     completed traces kept in the debug ring (0 = 128, negative disables)
//	-log-level      minimum slog level of the JSON log on stderr
//
// Router-owned routes are GET /v1/router/healthz, GET /v1/router/pool,
// and POST /v1/admin/roll; every other request proxies to the pool.
// SIGTERM/SIGINT shut the listener down gracefully (in-flight proxied
// requests finish) and exit 0 — draining lphd nodes is the nodes' own
// business, reachable through the router at POST /v1/admin/roll.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("lphrouter", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8090", "listen address (\":0\" picks a free port)")
	nodes := fs.String("nodes", "", "comma-separated lphd instance addresses (required)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "membership reconciler cadence")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-probe health-check bound")
	missBudget := fs.Int("miss-budget", 3, "consecutive failed probes before a node is evicted as a ghost")
	rollTimeout := fs.Duration("roll-timeout", 60*time.Second, "per-node recovery budget during a rolling restart")
	traceRing := fs.Int("trace-ring", 0, "completed traces kept for the debug ring (0 = 128, negative disables tracing)")
	logLevel := fs.String("log-level", "info", "minimum slog level for the JSON log (debug, info, warn, error)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var level slog.Level
	if fs.NArg() != 0 || *nodes == "" || *probeInterval <= 0 || *probeTimeout <= 0 ||
		*missBudget <= 0 || *rollTimeout <= 0 || level.UnmarshalText([]byte(*logLevel)) != nil {
		fmt.Fprintln(os.Stderr,
			"usage: lphrouter -nodes HOST:PORT,... [-addr :8090] [-probe-interval D] [-probe-timeout D] [-miss-budget N] [-roll-timeout D] [-trace-ring N] [-log-level L]")
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lphrouter:", err)
		return 1
	}
	// The router smoke test and the pool harnesses start us on ":0" and
	// scrape this line for the resolved port (internal/journaltest's
	// listen-line regexp matches it); keep its shape stable.
	fmt.Printf("lphrouter: listening on http://%s\n", ln.Addr())
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	rt := router.New(router.Config{
		Nodes:         strings.Split(*nodes, ","),
		Client:        &http.Client{Timeout: 60 * time.Second},
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		MissBudget:    *missBudget,
		RollTimeout:   *rollTimeout,
		TraceRing:     *traceRing,
		Logger:        logger,
	})
	defer rt.Close()
	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	//lint:detached the goroutine ends when Serve returns — on listener error or on the Shutdown below — and errc is always drained
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "lphrouter:", err)
			return 1
		}
		return 0
	case <-sigc:
	}
	// Graceful exit: stop accepting, let in-flight proxied requests
	// finish, then stop the reconciler (the deferred Close). The pool
	// keeps serving — the router holds no state a restart cannot
	// rebuild from its -nodes list and the nodes' health checks.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	<-errc
	return 0
}
