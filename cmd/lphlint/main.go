// Command lphlint runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns, vet-style:
//
//	go run ./cmd/lphlint ./...
//
// Each analyzer is applied only to the packages its invariant is stated
// over (lint.Suite's scopes). Diagnostics print as
// file:line:col: message (analyzer); the exit status is 0 when clean,
// 1 when there are findings, and 2 when loading or analysis itself
// failed. make lint wires this into the make check gate.
package main

import (
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(driver.Config{}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lphlint:", err)
		os.Exit(2)
	}
	suite := lint.Suite()
	findings := 0
	for _, pkg := range pkgs {
		var analyzers []*analysis.Analyzer
		for _, rule := range suite {
			if rule.InScope(pkg.PkgPath) {
				analyzers = append(analyzers, rule.Analyzer)
			}
		}
		if len(analyzers) == 0 {
			continue
		}
		diags, err := driver.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lphlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lphlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
