// Command lphd serves the lph operations over HTTP/JSON: the same
// decide / verify / reduce / game catalog as cmd/lph (both run the
// operation layer of internal/service), fronted by a Prepared-instance
// LRU cache keyed by canonical graph hash and a server-wide worker
// budget that clamps each request's pool.
//
// Usage:
//
//	lphd [-addr :8080] [-workers N] [-cache N] [-memo N] [-timeout D]
//	     [-job-workers N] [-queue N] [-ttl D] [-journal DIR]
//	     [-drain-timeout D] [-shed-wait D] [-log-level L] [-slow-request D]
//	     [-trace-ring N] [-debug-addr ADDR]
//
//	-addr          listen address; use ":0" for a random free port (the
//	               chosen address is printed on startup)
//	-workers       server-wide worker budget per request (0 = all CPUs)
//	-cache         Prepared-cache capacity in graphs (0 disables caching)
//	-memo          game-verdict transposition table capacity in entries
//	               (0 disables memoization)
//	-timeout       per-request evaluation deadline (0 = none), e.g. 30s
//	-job-workers   async job engine worker pool (0 = 1)
//	-queue         job admission-queue depth; overflow answers 429 (0 = 16)
//	-ttl           job result retention after completion (0 = 15m)
//	-journal       directory for the durable job journal (empty = jobs
//	               are in-memory only and a restart discards them)
//	-drain-timeout how long a graceful drain (SIGTERM/SIGINT or
//	               POST /v1/admin/drain) waits for running jobs before
//	               cancelling the stragglers (default 30s)
//	-shed-wait     how long a synchronous request waits for worker
//	               budget before being shed with 429 (default 1s)
//	-log-level     minimum slog level for the JSON request log on stderr
//	               (debug, info, warn, error; default info)
//	-slow-request  requests slower than this are logged at WARN with
//	               their full span breakdown (0 = never promote)
//	-trace-ring    completed traces retained for /v1/debug/traces
//	               (0 = 128; negative disables tracing entirely)
//	-debug-addr    separate listener for net/http/pprof (empty =
//	               disabled; never share this with -addr — the debug
//	               listener bypasses the shed gate and drain handling)
//
// Routes:
//
//	POST   /v1/decide   {"graph":…, "property":…, "workers":N}
//	POST   /v1/verify   {"graph":…, "property":…, "workers":N}
//	POST   /v1/reduce   {"graph":…, "reduction":…}
//	POST   /v1/game     {"game":"figure1", "workers":N}
//	POST   /v1/batch    {"op":"decide|verify", "property":…, "graphs":[…]}
//	POST   /v1/jobs     {"job":"sweep|experiment|game", "name":…, "game":…}
//	GET    /v1/jobs     ?cursor=…&limit=N&state=…  (paginated listing)
//	GET    /v1/jobs/{id}
//	DELETE /v1/jobs/{id}
//	POST   /v1/admin/drain   (start a graceful drain; 202)
//	GET    /v1/healthz
//	GET    /v1/stats
//	GET    /v1/debug/traces  ?limit=N&route=PATTERN  (completed traces)
//	GET    /metrics     (Prometheus text exposition)
//
// Every request carries a W3C trace: an inbound traceparent header is
// adopted (same trace id, fresh root span), otherwise a fresh id is
// generated; the id is echoed in the X-Lph-Trace response header and in
// every JSON error body, one slog JSON line per request lands on
// stderr, and the completed trace — route, status, per-phase spans —
// is retained in a bounded ring served by GET /v1/debug/traces.
//
// Client disconnects and the -timeout deadline cancel synchronous
// evaluations mid-game via context propagation into the search engine;
// asynchronous jobs are cancelled through DELETE /v1/jobs/{id}.
//
// With -journal, every job lifecycle transition is fsynced to an
// append-only journal before it is acknowledged, and startup replays
// the journal: finished results come back byte-identical (until their
// original TTL), jobs that were queued or running when the process
// died re-run from scratch, and cancelled or expired jobs stay dead.
//
// SIGTERM, SIGINT, and POST /v1/admin/drain all trigger the same
// zero-downtime drain: the write routes immediately answer 503 +
// Retry-After (health checks and reads stay live), running jobs get up
// to -drain-timeout to finish — their verdicts are journaled and a
// restart serves them byte-identical — queued jobs stay journaled as
// queued and re-admit on the next start, stragglers are cancelled and
// re-run exactly as after a crash, and the process exits 0 after
// printing a "lphd: drained" summary. Retried submissions carrying an
// Idempotency-Key answer with their original job id on the restarted
// instance instead of double-running.
//
// The implementation lives in internal/lphdmain so test harnesses
// (internal/routertest) can re-exec a genuine lphd from a test binary;
// this package is a thin wrapper.
package main

import (
	"os"

	"repro/internal/lphdmain"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int { return lphdmain.Run(args) }
