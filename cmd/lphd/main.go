// Command lphd serves the lph operations over HTTP/JSON: the same
// decide / verify / reduce / game catalog as cmd/lph (both run the
// operation layer of internal/service), fronted by a Prepared-instance
// LRU cache keyed by canonical graph hash and a server-wide worker
// budget that clamps each request's pool.
//
// Usage:
//
//	lphd [-addr :8080] [-workers N] [-cache N] [-timeout D]
//
//	-addr    listen address; use ":0" for a random free port (the
//	         chosen address is printed on startup)
//	-workers server-wide worker budget per request (0 = all CPUs)
//	-cache   Prepared-cache capacity in graphs (0 disables caching)
//	-timeout per-request evaluation deadline (0 = none), e.g. 30s
//
// Routes:
//
//	POST /v1/decide   {"graph":…, "property":…, "workers":N}
//	POST /v1/verify   {"graph":…, "property":…, "workers":N}
//	POST /v1/reduce   {"graph":…, "reduction":…}
//	POST /v1/game     {"game":"figure1", "workers":N}
//	GET  /v1/healthz
//	GET  /v1/stats
//
// Client disconnects and the -timeout deadline cancel evaluations
// mid-game via context propagation into the search engine.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lphd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	workers := fs.Int("workers", 0, "server-wide worker budget per request (0 = all CPUs)")
	cache := fs.Int("cache", 128, "Prepared-cache capacity in graphs (0 disables)")
	timeout := fs.Duration("timeout", 0, "per-request evaluation deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 || *workers < 0 || *cache < 0 || *timeout < 0 {
		fmt.Fprintln(os.Stderr, "usage: lphd [-addr :8080] [-workers N] [-cache N] [-timeout D]")
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lphd:", err)
		return 1
	}
	// The smoke test (make serve-smoke) starts us on ":0" and scrapes
	// this line for the port, so keep its shape stable.
	fmt.Printf("lphd: listening on http://%s\n", ln.Addr())
	srv := &http.Server{
		Handler:           service.New(service.Config{Workers: *workers, CacheSize: *cache, Timeout: *timeout}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "lphd:", err)
		return 1
	}
	return 0
}
