package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/journaltest"
)

// TestMain doubles as the lphd binary for the crash-recovery harness:
// re-exec'd with the child marker, the test binary runs lphd's real
// main loop (so the whole SIGKILL/restart cycle runs under -race with
// no separate `go build`). Normal runs are wrapped in the
// tmpdir-hygiene guard — tests must confine their files to t.TempDir().
func TestMain(m *testing.M) {
	if os.Getenv("LPHD_CRASH_CHILD") == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(journaltest.GuardTempDirs(m))
}

// startLphd boots this test binary as an lphd process over the given
// journal directory: one job worker, so a second job reliably waits in
// the queue behind a running one.
func startLphd(t *testing.T, journalDir string) *journaltest.Proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return journaltest.Start(t, exe, []string{"LPHD_CRASH_CHILD=1"},
		"-addr", "127.0.0.1:0", "-workers", "2", "-cache", "4",
		"-job-workers", "1", "-journal", journalDir)
}

// TestCrashRecoverySIGKILL is the fast in-`go test` variant of the
// crash-recovery harness (make serve-smoke runs the shell variant
// against the installed binary):
//
//  1. a real lphd finishes job j1 (done result journaled),
//  2. j2 (the whole experiment sweep) is mid-run and j3 queued behind
//     it when the process takes SIGKILL — no shutdown path runs,
//  3. a second lphd on the same -journal dir must serve j1
//     byte-identically, re-run j2 and j3 to done, and report the
//     replay in its stats, metrics, and startup line.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness boots real processes; skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "journal")

	p1 := startLphd(t, dir)
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`); code != http.StatusAccepted {
		t.Fatalf("submit j1: %d %s", code, body)
	}
	doneBody := p1.WaitJob("j1", "done", 60*time.Second)

	// j2 is the flagship long job — the full sweep — so it is reliably
	// still running the instant after we observe "running".
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"sweep"}`); code != http.StatusAccepted {
		t.Fatalf("submit j2: %d %s", code, body)
	}
	p1.WaitJob("j2", "running", 60*time.Second)
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure4"}`); code != http.StatusAccepted {
		t.Fatalf("submit j3: %d %s", code, body)
	}
	p1.Kill() // SIGKILL: nothing survives but what the journal fsynced

	p2 := startLphd(t, dir)
	// The finished result survives byte-for-byte.
	code, restored := p2.Do(http.MethodGet, "/v1/jobs/j1", "")
	if code != http.StatusOK {
		t.Fatalf("GET j1 after restart: %d %s", code, restored)
	}
	if !bytes.Equal(restored, doneBody) {
		t.Fatalf("j1 not byte-identical across the crash:\nbefore %s\nafter  %s", doneBody, restored)
	}
	// The interrupted and the queued job both re-run to completion.
	p2.WaitJob("j2", "done", 10*time.Minute)
	p2.WaitJob("j3", "done", 2*time.Minute)

	// The paginated listing walks all three in admission order.
	code, list := p2.Do(http.MethodGet, "/v1/jobs?limit=500", "")
	if code != http.StatusOK {
		t.Fatalf("list after restart: %d %s", code, list)
	}
	for _, want := range []string{`"id":"j1"`, `"id":"j2"`, `"id":"j3"`} {
		if !strings.Contains(string(list), want) {
			t.Fatalf("listing misses %s: %s", want, list)
		}
	}
	if j1 := strings.Index(string(list), `"id":"j1"`); j1 > strings.Index(string(list), `"id":"j2"`) {
		t.Fatalf("listing out of admission order: %s", list)
	}
	// The startup line reported the replay (checked after the waits, so
	// the line is certainly flushed by now).
	if !strings.Contains(p2.Log(), "replayed=1 restarted=2") {
		t.Fatalf("startup line does not report the replay:\n%s", p2.Log())
	}
	// Replay counters surface identically on the metrics scrape.
	if _, metrics := p2.Do(http.MethodGet, "/metrics", ""); !strings.Contains(string(metrics), "lphd_journal_replayed_total 1") ||
		!strings.Contains(string(metrics), "lphd_journal_restarted_total 2") {
		t.Fatalf("metrics miss the replay counters:\n%s", metrics)
	}
}

// TestCrashRecoveryColdStore is the contrast case: without -journal, a
// SIGKILL forgets everything — pinning that the journal, not luck, is
// what TestCrashRecoverySIGKILL observes.
func TestCrashRecoveryColdStore(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness boots real processes; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-addr", "127.0.0.1:0", "-workers", "2", "-job-workers", "1"}
	p1 := journaltest.Start(t, exe, []string{"LPHD_CRASH_CHILD=1"}, args...)
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	p1.WaitJob("j1", "done", 60*time.Second)
	p1.Kill()
	p2 := journaltest.Start(t, exe, []string{"LPHD_CRASH_CHILD=1"}, args...)
	if code, body := p2.Do(http.MethodGet, "/v1/jobs/j1", ""); code != http.StatusNotFound {
		t.Fatalf("in-memory job survived a SIGKILL without a journal: %d %s", code, body)
	}
}

// TestRunFlagAndJournalErrors pins lphd's exit codes around the new
// flag: usage errors exit 2, an unopenable journal path exits 1 before
// the listener ever comes up.
func TestRunFlagAndJournalErrors(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-addr", "127.0.0.1:0", "-journal", file}); code != 1 {
		t.Fatalf("journal path is a file: exit %d, want 1", code)
	}
}
