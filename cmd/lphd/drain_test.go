package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/journaltest"
)

// This file is the graceful half of the fault-injection harness: where
// crash_test.go SIGKILLs lphd and asserts recovery, these tests
// SIGTERM it and assert the zero-downtime drain contract — running
// jobs finish and survive the restart byte-identically, queued jobs
// replay as queued work, retried idempotency keys return the original
// job on the restarted instance, and nothing ever executes twice.

// startLphdArgs boots this test binary as an lphd process with extra
// flags appended to the crash harness's baseline (one job worker, so a
// second job reliably queues behind a running one).
func startLphdArgs(t *testing.T, journalDir string, extra ...string) *journaltest.Proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-addr", "127.0.0.1:0", "-workers", "2", "-cache", "4",
		"-job-workers", "1", "-journal", journalDir}
	return journaltest.Start(t, exe, []string{"LPHD_CRASH_CHILD=1"}, append(args, extra...)...)
}

// replayLine extracts the startup replay counters from a restarted
// process's log.
var replayLine = regexp.MustCompile(`replayed=(\d+) restarted=(\d+)`)

func replayCounts(t *testing.T, p *journaltest.Proc) (replayed, restarted int) {
	t.Helper()
	m := replayLine.FindStringSubmatch(p.Log())
	if m == nil {
		t.Fatalf("no replay line in log:\n%s", p.Log())
	}
	replayed, _ = strconv.Atoi(m[1])
	restarted, _ = strconv.Atoi(m[2])
	return replayed, restarted
}

// TestDrainSIGTERM is the headline zero-downtime test:
//
//  1. j1 finishes before the drain (its body is captured),
//  2. j2 is running and j3 queued behind it when SIGTERM lands,
//  3. the process must exit 0 after printing the drained summary —
//     j2 got to finish, j3 was never started,
//  4. the restarted instance serves j1 byte-identically, serves j2 as
//     done at boot (its graceful verdict was journaled — the SIGKILL
//     harness re-runs it instead), replays j3 to completion, and its
//     done counter proves nothing executed twice.
func TestDrainSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("drain harness boots real processes; skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "journal")

	p1 := startLphdArgs(t, dir, "-drain-timeout", "15m")
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`); code != http.StatusAccepted {
		t.Fatalf("submit j1: %d %s", code, body)
	}
	doneBody := p1.WaitJob("j1", "done", 60*time.Second)
	// j2 is the full sweep — long enough that it is reliably still
	// running when the signal lands (a single experiment can finish
	// between the submit and the poll).
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"sweep"}`); code != http.StatusAccepted {
		t.Fatalf("submit j2: %d %s", code, body)
	}
	p1.WaitJob("j2", "running", 60*time.Second)
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure4"}`); code != http.StatusAccepted {
		t.Fatalf("submit j3: %d %s", code, body)
	}
	p1.Signal(syscall.SIGTERM)
	// The drain waits for the running sweep; give it the same allowance
	// the SIGKILL harness gives a full re-run.
	if code := p1.WaitExit(10 * time.Minute); code != 0 {
		t.Fatalf("drain exit code %d, want 0:\n%s", code, p1.Log())
	}
	if !strings.Contains(p1.Log(), "lphd: drained ") {
		t.Fatalf("no drained summary in log:\n%s", p1.Log())
	}

	p2 := startLphdArgs(t, dir, "-drain-timeout", "15m")
	// The pre-drain result survives byte-for-byte.
	code, restored := p2.Do(http.MethodGet, "/v1/jobs/j1", "")
	if code != http.StatusOK {
		t.Fatalf("GET j1 after restart: %d %s", code, restored)
	}
	if !bytes.Equal(restored, doneBody) {
		t.Fatalf("j1 not byte-identical across the drain:\nbefore %s\nafter  %s", doneBody, restored)
	}
	// j2 finished during the drain, so it is done at boot — no re-run,
	// no waiting. (Under SIGKILL it would be restarted instead; that
	// contrast is the drain's whole point.)
	code, j2body := p2.Do(http.MethodGet, "/v1/jobs/j2", "")
	if code != http.StatusOK || !strings.Contains(string(j2body), `"state":"done"`) {
		t.Fatalf("j2 should be done at boot after a graceful drain: %d %s\nlog:\n%s", code, j2body, p2.Log())
	}
	// j3 replays — as already-done if it slipped in before the signal,
	// as queued work otherwise — and reaches done either way.
	p2.WaitJob("j3", "done", 2*time.Minute)

	// Account for every job exactly once: the three jobs divide into
	// replayed verdicts and restarted work, and only the restarted ones
	// executed in this incarnation.
	replayed, restarted := replayCounts(t, p2)
	if replayed+restarted != 3 {
		t.Fatalf("replayed=%d restarted=%d, want them to cover all 3 jobs:\n%s", replayed, restarted, p2.Log())
	}
	if replayed < 2 {
		t.Fatalf("j1 and j2 must replay as finished (replayed=%d):\n%s", replayed, p2.Log())
	}
	_, metrics := p2.Do(http.MethodGet, "/metrics", "")
	want := fmt.Sprintf("lphd_jobs_done_total %d", restarted)
	if !strings.Contains(string(metrics), want) {
		t.Fatalf("want %q (nothing beyond the restarted jobs may execute); metrics:\n%s", want, metrics)
	}
}

// TestDrainTimeoutInterrupts pins the deadline half of the contract: a
// job that cannot finish within -drain-timeout is cancelled, the
// process still exits 0, and — exactly like a crash — the restarted
// instance re-admits the job instead of losing it.
func TestDrainTimeoutInterrupts(t *testing.T) {
	if testing.Short() {
		t.Skip("drain harness boots real processes; skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "journal")

	p1 := startLphdArgs(t, dir, "-drain-timeout", "200ms")
	// The full sweep takes far longer than 200ms, so it is reliably
	// still running when the deadline fires.
	if code, body := p1.Do(http.MethodPost, "/v1/jobs", `{"job":"sweep"}`); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	p1.WaitJob("j1", "running", 60*time.Second)
	p1.Signal(syscall.SIGTERM)
	if code := p1.WaitExit(time.Minute); code != 0 {
		t.Fatalf("drain exit code %d, want 0:\n%s", code, p1.Log())
	}
	if !strings.Contains(p1.Log(), "drained finished=0 interrupted=1 queued=0") {
		t.Fatalf("drained summary should report the interruption:\n%s", p1.Log())
	}

	p2 := startLphdArgs(t, dir, "-drain-timeout", "200ms")
	if _, restarted := replayCounts(t, p2); restarted != 1 {
		t.Fatalf("interrupted job must be re-admitted (restarted=%d):\n%s", restarted, p2.Log())
	}
	// The re-admitted sweep is live again (queued or already running);
	// no need to sit through its completion here — the SIGKILL harness
	// already proves re-runs finish.
	code, body := p2.Do(http.MethodGet, "/v1/jobs/j1", "")
	if code != http.StatusOK ||
		(!strings.Contains(string(body), `"state":"queued"`) && !strings.Contains(string(body), `"state":"running"`)) {
		t.Fatalf("j1 should be live after restart: %d %s", code, body)
	}
}

// TestRetryStormIdempotency drives the idempotency contract end to
// end: a storm of concurrent duplicate submits yields one job id, a
// drain/restart later the same key still answers with the original
// job's byte-identical result, and the engine's counters prove the
// work executed exactly once — in the first incarnation.
func TestRetryStormIdempotency(t *testing.T) {
	if testing.Short() {
		t.Skip("drain harness boots real processes; skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "journal")
	const body = `{"job":"experiment","name":"figure4"}`
	hdr := map[string]string{"Idempotency-Key": "storm-1"}

	p1 := startLphdArgs(t, dir, "-drain-timeout", "2m")
	if code, resp := p1.DoHeader(http.MethodPost, "/v1/jobs", body, hdr); code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, resp)
	}
	// The retry storm: concurrent duplicates while the job is live must
	// all answer 200 with the original id.
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp := p1.DoHeader(http.MethodPost, "/v1/jobs", body, hdr)
			if code != http.StatusOK || !strings.Contains(string(resp), `"id":"j1"`) {
				errs <- fmt.Sprintf("duplicate submit: %d %s", code, resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	doneBody := p1.WaitJob("j1", "done", 2*time.Minute)

	p1.Signal(syscall.SIGTERM)
	if code := p1.WaitExit(time.Minute); code != 0 {
		t.Fatalf("drain exit code %d, want 0:\n%s", code, p1.Log())
	}

	p2 := startLphdArgs(t, dir, "-drain-timeout", "2m")
	// The key survives the restart: the retry answers 200 with the
	// original job, already done.
	code, resp := p2.DoHeader(http.MethodPost, "/v1/jobs", body, hdr)
	if code != http.StatusOK || !strings.Contains(string(resp), `"id":"j1"`) ||
		!strings.Contains(string(resp), `"state":"done"`) {
		t.Fatalf("post-restart retry: %d %s", code, resp)
	}
	code, restored := p2.Do(http.MethodGet, "/v1/jobs/j1", "")
	if code != http.StatusOK || !bytes.Equal(restored, doneBody) {
		t.Fatalf("j1 not byte-identical across the drain (%d):\nbefore %s\nafter  %s", code, doneBody, restored)
	}
	// Exactly-once: this incarnation replayed the result and executed
	// nothing, and the retry was answered from the idempotency binding.
	_, metrics := p2.Do(http.MethodGet, "/metrics", "")
	for _, want := range []string{"lphd_jobs_done_total 0", "lphd_jobs_idempotent_hits_total 1", "lphd_journal_restarted_total 0"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics miss %q:\n%s", want, metrics)
		}
	}
}
