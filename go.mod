module repro

go 1.24

// The lint suite (internal/lint, cmd/lphlint) builds on the go/analysis
// API. The build is hermetic/offline, so the x/tools subset is vendored
// under third_party/ (copied from the Go toolchain's own vendor tree)
// and wired in by the replace below instead of a proxy download.
require golang.org/x/tools v0.28.1

replace golang.org/x/tools => ./third_party/golang.org/x/tools
