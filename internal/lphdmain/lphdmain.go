// Package lphdmain is the real main loop of cmd/lphd, extracted so
// test harnesses can run a genuine lphd node without a separate
// `go build` step: cmd/lphd is a thin wrapper over Run, and
// internal/routertest re-execs the test binary through Run to boot
// whole pools of race-instrumented nodes on random ports. Everything
// documented on cmd/lphd — flags, routes, the drain lifecycle, the
// journal replay — is implemented here.
package lphdmain

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	// Registers the profiling handlers on http.DefaultServeMux, which is
	// only ever served on the separate -debug-addr listener — the main
	// listener runs the service's own mux and never exposes them.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

// Run parses lphd's flags, boots the service, and serves until a
// listener error or a drain (SIGTERM/SIGINT/POST /v1/admin/drain)
// winds it down. The return value is the process exit code.
func Run(args []string) int {
	fs := flag.NewFlagSet("lphd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	workers := fs.Int("workers", 0, "server-wide worker budget per request (0 = all CPUs)")
	cache := fs.Int("cache", 128, "Prepared-cache capacity in graphs (0 disables)")
	memo := fs.Int("memo", 4096, "game-verdict memo table capacity in entries (0 disables)")
	timeout := fs.Duration("timeout", 0, "per-request evaluation deadline (0 = none)")
	jobWorkers := fs.Int("job-workers", 0, "async job engine worker pool (0 = 1)")
	queue := fs.Int("queue", 0, "job admission-queue depth, 429 beyond it (0 = 16)")
	ttl := fs.Duration("ttl", 0, "job result retention after completion (0 = 15m)")
	journalDir := fs.String("journal", "", "durable job journal directory (empty = in-memory jobs)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain wait for running jobs before cancelling them")
	shedWait := fs.Duration("shed-wait", 0, "bounded wait for sync worker budget before 429 (0 = 1s)")
	logLevel := fs.String("log-level", "info", "minimum slog level for the JSON request log (debug, info, warn, error)")
	slowRequest := fs.Duration("slow-request", 0, "log requests slower than this at WARN with full spans (0 = never)")
	traceRing := fs.Int("trace-ring", 0, "completed traces kept for /v1/debug/traces (0 = 128, negative disables tracing)")
	debugAddr := fs.String("debug-addr", "", "separate net/http/pprof listener address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var level slog.Level
	if fs.NArg() != 0 || *workers < 0 || *cache < 0 || *memo < 0 || *timeout < 0 ||
		*jobWorkers < 0 || *queue < 0 || *ttl < 0 || *drainTimeout < 0 || *shedWait < 0 ||
		*slowRequest < 0 || level.UnmarshalText([]byte(*logLevel)) != nil {
		fmt.Fprintln(os.Stderr,
			"usage: lphd [-addr :8080] [-workers N] [-cache N] [-memo N] [-timeout D] [-job-workers N] [-queue N] [-ttl D] [-journal DIR] [-drain-timeout D] [-shed-wait D] [-log-level L] [-slow-request D] [-trace-ring N] [-debug-addr ADDR]")
		return 2
	}
	var jnl *journal.Journal
	if *journalDir != "" {
		var err error
		if jnl, err = journal.Open(*journalDir, journal.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "lphd:", err)
			return 1
		}
		defer jnl.Close()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lphd:", err)
		return 1
	}
	// The smoke test (make serve-smoke) and the pool harnesses
	// (internal/journaltest, internal/routertest) start us on ":0" and
	// scrape this line for the resolved port, so keep its shape stable.
	fmt.Printf("lphd: listening on http://%s\n", ln.Addr())
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	svc := service.New(service.Config{
		Workers: *workers, CacheSize: *cache, MemoSize: *memo, Timeout: *timeout,
		JobWorkers: *jobWorkers, JobQueue: *queue, JobTTL: *ttl,
		Journal: jnl, ShedWait: *shedWait, DrainTimeout: *drainTimeout,
		TraceRing: *traceRing, Logger: logger, SlowRequest: *slowRequest,
	})
	defer svc.Close()
	if *debugAddr != "" {
		// The pprof listener is deliberately separate from -addr: it
		// serves http.DefaultServeMux (where net/http/pprof registered),
		// stays out of the shed gate and the drain path, and dies with
		// the process rather than shutting down gracefully.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lphd:", err)
			return 1
		}
		fmt.Printf("lphd: debug listening on http://%s\n", dln.Addr())
		dbg := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
		defer dbg.Close()
		//lint:detached best-effort profiling listener; Close above unblocks Serve at exit and its error is irrelevant
		go func() { _ = dbg.Serve(dln) }()
	}
	if jnl != nil {
		// The crash-recovery harness scrapes this line; keep its shape.
		if js := svc.Jobs().Stats().Journal; js != nil {
			fmt.Printf("lphd: journal %s replayed=%d restarted=%d expired=%d\n",
				*journalDir, js.Replay.Replayed, js.Replay.Restarted, js.Replay.Expired)
		}
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	//lint:detached the goroutine ends when Serve returns — on listener error or on the Shutdown below — and errc is always drained
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "lphd:", err)
			return 1
		}
		return 0
	case <-sigc:
	case <-svc.DrainRequested():
	}
	// Zero-downtime drain: stop admitting (the write routes answer 503 +
	// Retry-After), give running jobs up to -drain-timeout to finish —
	// their journaled verdicts survive the restart — then cancel the
	// stragglers (replay re-runs them, exactly as after a crash) while
	// queued jobs stay journaled as queued. In-flight HTTP responses
	// finish before the listener closes.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	res := svc.Drain(drainCtx)
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	_ = srv.Shutdown(shutCtx)
	<-errc
	// The drain harness (cmd/lphd tests, make serve-smoke) scrapes this
	// line; keep its shape stable.
	fmt.Printf("lphd: drained finished=%d interrupted=%d queued=%d\n",
		res.Finished, res.Interrupted, res.Queued)
	return 0
}
