// Package pictures implements the two-dimensional machinery of Section 9.2
// of the paper: t-bit pictures (matrices of fixed-length bit strings),
// their structural representations (Figures 6 and 14), tiling systems —
// the automaton model of Giammarresi and Restivo that characterizes
// existential monadic second-order logic on pictures (Theorem 32) — and
// the encoding of pictures as bounded-degree labeled graphs used to
// transfer the infiniteness of the monadic hierarchy from pictures to
// graphs (Section 9.2.2).
package pictures

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/structure"
)

// Picture is a t-bit picture of size (m, n): an m×n matrix of bit strings
// of uniform length t (t may be 0).
type Picture struct {
	T    int
	Rows int
	Cols int
	// Cells[i][j] is the entry at pixel (i, j).
	Cells [][]string
}

// ErrBadPicture reports malformed picture data.
var ErrBadPicture = errors.New("pictures: malformed picture")

// New validates and wraps picture data.
func New(t int, cells [][]string) (*Picture, error) {
	if len(cells) == 0 || len(cells[0]) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadPicture)
	}
	cols := len(cells[0])
	cp := make([][]string, len(cells))
	for i, row := range cells {
		if len(row) != cols {
			return nil, fmt.Errorf("%w: ragged rows", ErrBadPicture)
		}
		for _, cell := range row {
			if len(cell) != t || !graph.IsBitString(cell) {
				return nil, fmt.Errorf("%w: cell %q is not a %d-bit string", ErrBadPicture, cell, t)
			}
		}
		cp[i] = append([]string(nil), row...)
	}
	return &Picture{T: t, Rows: len(cells), Cols: cols, Cells: cp}, nil
}

// MustNew is New for fixtures.
func MustNew(t int, cells [][]string) *Picture {
	p, err := New(t, cells)
	if err != nil {
		panic(err)
	}
	return p
}

// Uniform returns an m×n picture with every cell equal to value.
func Uniform(t, m, n int, value string) *Picture {
	cells := make([][]string, m)
	for i := range cells {
		cells[i] = make([]string, n)
		for j := range cells[i] {
			cells[i][j] = value
		}
	}
	return MustNew(t, cells)
}

// At returns the cell at pixel (i, j).
func (p *Picture) At(i, j int) string { return p.Cells[i][j] }

// String renders the picture row by row.
func (p *Picture) String() string {
	var b strings.Builder
	for i, row := range p.Cells {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(strings.Join(row, " "))
	}
	return b.String()
}

// Rep builds the structural representation $P of Figure 14: one element
// per pixel, t unary relations for the bit values, and the vertical (⇀1)
// and horizontal (⇀2) successor relations.
func (p *Picture) Rep() *structure.Structure {
	b := structure.NewBuilder(p.Rows*p.Cols, p.T, 2)
	idx := func(i, j int) int { return i*p.Cols + j }
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			for k := 0; k < p.T; k++ {
				if p.Cells[i][j][k] == '1' {
					b.AddUnary(k+1, idx(i, j))
				}
			}
			if i+1 < p.Rows {
				b.AddBinary(1, idx(i, j), idx(i+1, j))
			}
			if j+1 < p.Cols {
				b.AddBinary(2, idx(i, j), idx(i, j+1))
			}
		}
	}
	return b.Build()
}

// ForEachPicture enumerates all t-bit pictures of size (m, n), invoking
// yield for each; it stops early when yield returns false.
func ForEachPicture(t, m, n int, yield func(*Picture) bool) bool {
	values := allBitStrings(t)
	cells := make([][]string, m)
	for i := range cells {
		cells[i] = make([]string, n)
	}
	total := m * n
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == total {
			return yield(MustNew(t, cells))
		}
		i, j := pos/n, pos%n
		for _, v := range values {
			cells[i][j] = v
			if !rec(pos + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

func allBitStrings(t int) []string {
	if t == 0 {
		return []string{""}
	}
	out := make([]string, 0, 1<<uint(t))
	for x := 0; x < 1<<uint(t); x++ {
		s := make([]byte, t)
		for i := 0; i < t; i++ {
			if x&(1<<uint(t-1-i)) != 0 {
				s[i] = '1'
			} else {
				s[i] = '0'
			}
		}
		out = append(out, string(s))
	}
	return out
}

// ToGraph encodes the picture as a connected labeled graph of bounded
// structural degree, in the spirit of Section 9.2.2: the pixels become
// nodes of a grid graph, and each node's label packs its cell value
// together with two orientation bits marking whether the node lies on the
// last row/column (so that the grid's vertical/horizontal structure is
// locally reconstructible without global coordinates).
//
// Label layout: cell bits, then "1" if last row else "0", then "1" if
// last column else "0".
func (p *Picture) ToGraph() *graph.Graph {
	g := graph.Grid(p.Rows, p.Cols)
	labels := make([]string, p.Rows*p.Cols)
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			lastRow := "0"
			if i == p.Rows-1 {
				lastRow = "1"
			}
			lastCol := "0"
			if j == p.Cols-1 {
				lastCol = "1"
			}
			labels[i*p.Cols+j] = p.Cells[i][j] + lastRow + lastCol
		}
	}
	return g.MustWithLabels(labels)
}
