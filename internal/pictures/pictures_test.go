package pictures

import (
	"testing"

	"repro/internal/props"
)

// figure14Picture is the 2-bit 3×4 picture of Figures 6/14.
func figure14Picture() *Picture {
	return MustNew(2, [][]string{
		{"00", "01", "00", "01"},
		{"10", "11", "10", "11"},
		{"00", "01", "00", "01"},
	})
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(1, nil); err == nil {
		t.Fatal("empty picture accepted")
	}
	if _, err := New(1, [][]string{{"1"}, {"1", "0"}}); err == nil {
		t.Fatal("ragged picture accepted")
	}
	if _, err := New(2, [][]string{{"1"}}); err == nil {
		t.Fatal("wrong cell width accepted")
	}
	if _, err := New(1, [][]string{{"x"}}); err == nil {
		t.Fatal("non-bit cell accepted")
	}
}

func TestFigure14Rep(t *testing.T) {
	t.Parallel()
	p := figure14Picture()
	s := p.Rep()
	if s.Card() != 12 {
		t.Fatalf("card = %d, want 12", s.Card())
	}
	m, n := s.Signature()
	if m != 2 || n != 2 {
		t.Fatalf("signature = (%d,%d), want (2,2)", m, n)
	}
	// Pixel (1,1) = "11": in both unary relations.
	idx := func(i, j int) int { return i*p.Cols + j }
	if !s.InUnary(1, idx(1, 1)) || !s.InUnary(2, idx(1, 1)) {
		t.Fatal("bit relations of pixel (1,1) wrong")
	}
	if s.InUnary(1, idx(0, 0)) || s.InUnary(2, idx(0, 0)) {
		t.Fatal("pixel (0,0) = 00 should be in no unary relation")
	}
	// Vertical successor ⇀1: (0,0) → (1,0); horizontal ⇀2: (0,0) → (0,1).
	if !s.InBinary(1, idx(0, 0), idx(1, 0)) || s.InBinary(1, idx(1, 0), idx(0, 0)) {
		t.Fatal("vertical successor wrong")
	}
	if !s.InBinary(2, idx(0, 0), idx(0, 1)) || s.InBinary(2, idx(0, 1), idx(0, 0)) {
		t.Fatal("horizontal successor wrong")
	}
	// Last row/column pixels have no successors.
	if len(s.Successors(1, idx(2, 0))) != 0 || len(s.Successors(2, idx(0, 3))) != 0 {
		t.Fatal("border successors wrong")
	}
}

func TestForEachPicture(t *testing.T) {
	t.Parallel()
	count := 0
	ForEachPicture(1, 2, 2, func(p *Picture) bool {
		count++
		return true
	})
	if count != 16 {
		t.Fatalf("enumerated %d 1-bit 2×2 pictures, want 16", count)
	}
	// Early stop.
	count = 0
	complete := ForEachPicture(1, 2, 2, func(*Picture) bool {
		count++
		return count < 3
	})
	if complete || count != 3 {
		t.Fatal("early stop failed")
	}
}

func TestConstantSystem(t *testing.T) {
	t.Parallel()
	ts := ConstantSystem(1, "1")
	for m := 1; m <= 4; m++ {
		for n := 1; n <= 4; n++ {
			ForEachPicture(1, m, n, func(p *Picture) bool {
				want := true
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						if p.At(i, j) != "1" {
							want = false
						}
					}
				}
				got, err := ts.Accepts(p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("constant system on\n%v\n= %v, want %v", p, got, want)
				}
				return m*n <= 9 // keep the big sizes to a spot check
			})
		}
	}
}

// TestSquaresSystem: the diagonal system accepts exactly the square
// pictures, including sizes beyond those its tiles were collected from.
func TestSquaresSystem(t *testing.T) {
	t.Parallel()
	ts := SquaresSystem()
	for m := 1; m <= 6; m++ {
		for n := 1; n <= 6; n++ {
			p := Uniform(0, m, n, "")
			got, err := ts.Accepts(p)
			if err != nil {
				t.Fatal(err)
			}
			if got != (m == n) {
				t.Fatalf("squares system on %dx%d = %v", m, n, got)
			}
		}
	}
}

func TestTopRowOnesSystem(t *testing.T) {
	t.Parallel()
	ts := TopRowOnesSystem()
	for m := 1; m <= 3; m++ {
		for n := 1; n <= 3; n++ {
			ForEachPicture(1, m, n, func(p *Picture) bool {
				want := true
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						wantBit := "0"
						if i == 0 {
							wantBit = "1"
						}
						if p.At(i, j) != wantBit {
							want = false
						}
					}
				}
				got, err := ts.Accepts(p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("top-row system on\n%v\n= %v, want %v", p, got, want)
				}
				return true
			})
		}
	}
}

func TestAcceptsWidthMismatch(t *testing.T) {
	t.Parallel()
	ts := ConstantSystem(1, "1")
	if _, err := ts.Accepts(Uniform(2, 2, 2, "11")); err == nil {
		t.Fatal("bit-width mismatch accepted")
	}
}

func TestLanguage(t *testing.T) {
	t.Parallel()
	lang, err := SquaresSystem().Language(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0-bit pictures: one per size; squares of sizes 1,2,3 → 3 members.
	if len(lang) != 3 {
		t.Fatalf("language size = %d, want 3", len(lang))
	}
}

// TestToGraph: the picture-to-graph encoding of Section 9.2.2 produces a
// connected, bounded-structural-degree labeled grid whose labels let the
// orientation be reconstructed locally.
func TestToGraph(t *testing.T) {
	t.Parallel()
	p := figure14Picture()
	g := p.ToGraph()
	if g.N() != 12 {
		t.Fatalf("graph nodes = %d", g.N())
	}
	// Structural degree bound: grid degree ≤ 4 plus label length 4.
	if props.Acyclic(g) {
		t.Fatal("grids with both dimensions > 1 contain cycles")
	}
	// Corner pixel (2,3) is last row and last column: label suffix "11".
	label := g.Label(2*p.Cols + 3)
	if label[len(label)-2:] != "11" {
		t.Fatalf("corner label = %q", label)
	}
	inner := g.Label(0)
	if inner[len(inner)-2:] != "00" {
		t.Fatalf("top-left label = %q", inner)
	}
	// Cell bits are the label prefix.
	if label[:2] != "01" {
		t.Fatalf("corner cell bits = %q", label[:2])
	}
}

// TestToGraphDistinguishesTransposes: pictures and their transposes give
// non-isomorphic labeled graphs when the content is asymmetric.
func TestToGraphDistinguishesOrientation(t *testing.T) {
	t.Parallel()
	p := MustNew(1, [][]string{{"1", "0"}})   // 1×2
	q := MustNew(1, [][]string{{"1"}, {"0"}}) // 2×1
	gp, gq := p.ToGraph(), q.ToGraph()
	// Same underlying path topology, but labels differ (last-row/last-col
	// bits), so the labeled graphs are distinguishable.
	same := gp.N() == gq.N()
	if !same {
		t.Fatal("sizes should match")
	}
	labelsEqual := true
	for u := 0; u < gp.N(); u++ {
		if gp.Label(u) != gq.Label(u) {
			labelsEqual = false
		}
	}
	if labelsEqual {
		t.Fatal("orientation lost in encoding")
	}
}
