package pictures

import (
	"fmt"
)

// This file implements the tiling systems of Section 9.2.1: the automaton
// model of Giammarresi and Restivo that recognizes exactly the picture
// languages definable in existential monadic second-order logic
// (Theorem 32).

// Boundary is the # symbol framing every picture.
const Boundary = "#"

// TileEntry is one quadrant of a 2×2 tile: either the boundary symbol, or
// a t-bit value paired with a state.
type TileEntry struct {
	Value string // Boundary, or a t-bit string
	State int    // ignored when Value == Boundary
}

// B is the boundary tile entry.
func B() TileEntry { return TileEntry{Value: Boundary} }

// E is a value/state tile entry.
func E(value string, state int) TileEntry {
	return TileEntry{Value: value, State: state}
}

// Tile is a 2×2 block: [0][0] top-left, [0][1] top-right, [1][0]
// bottom-left, [1][1] bottom-right.
type Tile [2][2]TileEntry

// TilingSystem is T = (Q, Θ): states 0..States-1 and a set of admissible
// 2×2 tiles over ({0,1}^t × Q) ∪ {#}.
type TilingSystem struct {
	T      int
	States int
	Tiles  map[Tile]bool
}

// NewTilingSystem creates an empty system.
func NewTilingSystem(t, states int) *TilingSystem {
	return &TilingSystem{T: t, States: states, Tiles: make(map[Tile]bool)}
}

// Add registers a tile.
func (ts *TilingSystem) Add(tl Tile) *TilingSystem {
	ts.Tiles[tl] = true
	return ts
}

// Accepts reports whether the picture is accepted: some assignment of
// states to pixels makes every 2×2 sub-block of the #-framed picture match
// a tile of Θ. The search proceeds pixel by pixel in row-major order,
// checking each 2×2 block as soon as its bottom-right entry is fixed —
// plain backtracking, exact, intended for small pictures.
func (ts *TilingSystem) Accepts(p *Picture) (bool, error) {
	if p.T != ts.T {
		return false, fmt.Errorf("pictures: %d-bit system on %d-bit picture", ts.T, p.T)
	}
	m, n := p.Rows, p.Cols
	states := make([][]int, m)
	for i := range states {
		states[i] = make([]int, n)
	}
	// entry gives the framed entry at framed coordinates (i, j) in
	// [-1, m] × [-1, n].
	entry := func(i, j int) TileEntry {
		if i < 0 || j < 0 || i >= m || j >= n {
			return B()
		}
		return E(p.At(i, j), states[i][j])
	}
	// blockOK checks the 2×2 block whose top-left framed coordinate is
	// (i, j); it may only be called when all four entries are determined.
	blockOK := func(i, j int) bool {
		return ts.Tiles[Tile{
			{entry(i, j), entry(i, j+1)},
			{entry(i+1, j), entry(i+1, j+1)},
		}]
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == m*n {
			// Remaining blocks: those whose bottom-right corner is in the
			// frame (right column, bottom row and corner beyond the last
			// pixel) were already checked incrementally except the ones
			// on the bottom/right frame line.
			for j := -1; j <= n-1; j++ {
				if !blockOK(m-1, j) {
					return false
				}
			}
			for i := -1; i <= m-2; i++ {
				if !blockOK(i, n-1) {
					return false
				}
			}
			return true
		}
		i, j := pos/n, pos%n
		for q := 0; q < ts.States; q++ {
			states[i][j] = q
			// The block with bottom-right corner (i, j) is now fully
			// determined; blocks on the top/left frame get checked when
			// their bottom-right pixel is set.
			if blockOK(i-1, j-1) && rec(pos+1) {
				return true
			}
		}
		return false
	}
	return rec(0), nil
}

// Language collects the accepted pictures among all t-bit pictures of
// sizes up to (maxRows, maxCols), keyed by String(). Used to compare
// tiling systems against reference predicates in tests.
func (ts *TilingSystem) Language(maxRows, maxCols int) (map[string]bool, error) {
	out := make(map[string]bool)
	var err error
	for m := 1; m <= maxRows; m++ {
		for n := 1; n <= maxCols; n++ {
			ForEachPicture(ts.T, m, n, func(p *Picture) bool {
				ok, aerr := ts.Accepts(p)
				if aerr != nil {
					err = aerr
					return false
				}
				if ok {
					out[p.String()] = true
				}
				return true
			})
		}
	}
	return out, err
}

// --- Example tiling systems ---------------------------------------------

// CollectTiles adds to ts every framed 2×2 block of the picture p under
// the given canonical state assignment. Building a tiling system by
// collecting the blocks of canonical accepting runs on a generating family
// of pictures is the standard way to specify Θ; the tests then verify that
// the collected set recognizes exactly the intended language on larger
// instances.
func (ts *TilingSystem) CollectTiles(p *Picture, states [][]int) {
	m, n := p.Rows, p.Cols
	entry := func(i, j int) TileEntry {
		if i < 0 || j < 0 || i >= m || j >= n {
			return B()
		}
		return E(p.At(i, j), states[i][j])
	}
	for i := -1; i <= m-1; i++ {
		for j := -1; j <= n-1; j++ {
			ts.Add(Tile{
				{entry(i, j), entry(i, j+1)},
				{entry(i+1, j), entry(i+1, j+1)},
			})
		}
	}
}

// SquaresSystem recognizes the square 0-bit pictures (m = n), the classic
// example of a tiling-system-recognizable language that is not definable
// without second-order quantification: state 1 marks the main diagonal,
// which must run from the top-left to the bottom-right corner. The tile
// set is collected from the canonical diagonal runs on squares up to 4×4.
func SquaresSystem() *TilingSystem {
	ts := NewTilingSystem(0, 2)
	for size := 1; size <= 4; size++ {
		p := Uniform(0, size, size, "")
		states := make([][]int, size)
		for i := range states {
			states[i] = make([]int, size)
			states[i][i] = 1
		}
		ts.CollectTiles(p, states)
	}
	return ts
}

// ConstantSystem recognizes the t-bit pictures all of whose cells equal
// value: a one-state system collected from constant pictures up to 3×3.
func ConstantSystem(t int, value string) *TilingSystem {
	ts := NewTilingSystem(t, 1)
	for m := 1; m <= 3; m++ {
		for n := 1; n <= 3; n++ {
			p := Uniform(t, m, n, value)
			states := make([][]int, m)
			for i := range states {
				states[i] = make([]int, n)
			}
			ts.CollectTiles(p, states)
		}
	}
	return ts
}

// TopRowOnesSystem recognizes 1-bit pictures whose first row is all ones
// and all other rows all zeros — a locally checkable picture property
// exercising the frame tiles. One state; tiles collected from the valid
// pictures up to 3×3.
func TopRowOnesSystem() *TilingSystem {
	ts := NewTilingSystem(1, 1)
	for m := 1; m <= 3; m++ {
		for n := 1; n <= 3; n++ {
			cells := make([][]string, m)
			states := make([][]int, m)
			for i := range cells {
				cells[i] = make([]string, n)
				states[i] = make([]int, n)
				for j := range cells[i] {
					if i == 0 {
						cells[i][j] = "1"
					} else {
						cells[i][j] = "0"
					}
				}
			}
			ts.CollectTiles(MustNew(1, cells), states)
		}
	}
	return ts
}
