package reduce

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sat"
)

// SatGraphTo3SatGraph is the first reduction in the proof of Theorem 23:
// every node's Boolean formula is replaced by an equisatisfiable 3-CNF
// formula via the Tseytin transformation. The auxiliary variables are
// prefixed with the node's locally unique identifier so that adjacent
// nodes never share them (the paper requires an (r+1)-locally unique
// assignment; radius 1 suffices here because formulas only ever constrain
// adjacent nodes).
func SatGraphTo3SatGraph() Reduction {
	return Reduction{
		Name:     "sat-graph ≤lp 3-sat-graph",
		RadiusID: 1,
		Apply: func(g *graph.Graph, id graph.IDAssignment) (*Result, error) {
			if id == nil || !id.IsLocallyUnique(g, 1) {
				return nil, ErrNeedIdentifiers
			}
			bg, err := sat.DecodeBooleanGraph(g)
			if err != nil {
				return nil, fmt.Errorf("reduce: input is not a Boolean graph: %w", err)
			}
			labels := make([]string, g.N())
			for u, f := range bg.Formulas {
				prefix := fmt.Sprintf("t%s_", id[u])
				cnf := sat.To3CNF(sat.Tseytin(f, prefix), prefix+"w")
				labels[u] = sat.EncodeLabel(cnf.Formula())
			}
			out, err := g.WithLabels(labels)
			if err != nil {
				return nil, err
			}
			clusterOf := make([]int, g.N())
			for u := range clusterOf {
				clusterOf[u] = u
			}
			return &Result{Out: out, ClusterOf: clusterOf}, nil
		},
	}
}

// ThreeSatGraphToThreeColorable is the second reduction in the proof of
// Theorem 23 (Figures 4 and 12): each node's 3-CNF formula becomes a
// formula gadget (the classical 3-SAT → 3-colorability construction), and
// connector gadgets across each input edge force the special false/ground
// nodes and all shared literal nodes of adjacent clusters to the same
// color. The output graph is 3-colorable iff the Boolean graph is
// satisfiable.
//
// Gadget conventions (colors are a posteriori: 0 = false, 1 = true,
// 2 = ground):
//
//   - per cluster: an edge false—ground;
//   - per variable P of the cluster's formula: a triangle P, ¬P, ground,
//     so that P and ¬P take complementary truth colors;
//   - per clause (l1 ∨ l2 ∨ l3): two chained OR-gadgets whose output is
//     wired to false and ground, forcing the clause to evaluate true. An
//     OR-gadget or(a,b) ↦ o consists of fresh x, y with edges a—x, b—y,
//     x—y, x—o, y—o: if a and b are both false, o is forced false;
//     otherwise o can be true.
//   - connector(w_u, w_v): fresh m1 (in u's cluster) and m2 (in v's
//     cluster) with edges m1—m2, w_u—m1, w_u—m2, w_v—m1, w_v—m2: any
//     proper 3-coloring gives w_u and w_v the same color.
func ThreeSatGraphToThreeColorable() Reduction {
	return Reduction{
		Name: "3-sat-graph ≤lp 3-colorable",
		Apply: func(g *graph.Graph, _ graph.IDAssignment) (*Result, error) {
			bg, err := sat.DecodeBooleanGraph(g)
			if err != nil {
				return nil, fmt.Errorf("reduce: input is not a Boolean graph: %w", err)
			}
			b := &builder{}
			falseNode := make([]int, g.N())
			groundNode := make([]int, g.N())
			// litNode[u][literal string] = node index.
			litNode := make([]map[string]int, g.N())

			for u := 0; u < g.N(); u++ {
				falseNode[u] = b.node(u, "")
				groundNode[u] = b.node(u, "")
				b.edge(falseNode[u], groundNode[u])
				litNode[u] = make(map[string]int)
				addVar := func(v string) {
					if _, ok := litNode[u][v]; ok {
						return
					}
					pos := b.node(u, "")
					neg := b.node(u, "")
					litNode[u][v] = pos
					litNode[u]["~"+v] = neg
					b.edge(pos, neg)
					b.edge(pos, groundNode[u])
					b.edge(neg, groundNode[u])
				}
				for _, v := range sat.Vars(bg.Formulas[u]) {
					addVar(v)
				}
				// Clause gadgets. The formulas arriving here are CNFs
				// (possibly produced by SatGraphTo3SatGraph); clause
				// structure is recovered syntactically.
				clauses, cerr := cnfClauses(bg.Formulas[u])
				if cerr != nil {
					return nil, fmt.Errorf("reduce: node %d: %w", u, cerr)
				}
				orGadget := func(a, c int) int {
					x := b.node(u, "")
					y := b.node(u, "")
					o := b.node(u, "")
					b.edge(a, x)
					b.edge(c, y)
					b.edge(x, y)
					b.edge(x, o)
					b.edge(y, o)
					return o
				}
				for _, cl := range clauses {
					if len(cl) == 0 {
						cl = sat.Clause{{Name: "_false"}} // empty clause: unsatisfiable
					}
					lits := make([]int, 0, 3)
					for _, l := range cl {
						addVar(l.Name) // covers gadget-private variables like _false
						name := l.Name
						if l.Neg {
							name = "~" + name
						}
						lits = append(lits, litNode[u][name])
					}
					for len(lits) < 3 {
						lits = append(lits, lits[len(lits)-1]) // pad by repetition
					}
					o1 := orGadget(lits[0], lits[1])
					o2 := orGadget(o1, lits[2])
					b.edge(o2, falseNode[u])
					b.edge(o2, groundNode[u])
				}
			}

			connector := func(u, v, wu, wv int) {
				m1 := b.node(u, "")
				m2 := b.node(v, "")
				b.edge(m1, m2)
				b.edge(wu, m1)
				b.edge(wu, m2)
				b.edge(wv, m1)
				b.edge(wv, m2)
			}
			for _, e := range g.Edges() {
				connector(e.U, e.V, falseNode[e.U], falseNode[e.V])
				connector(e.U, e.V, groundNode[e.U], groundNode[e.V])
				for _, v := range sat.Vars(bg.Formulas[e.U]) {
					if _, shared := litNode[e.V][v]; shared {
						connector(e.U, e.V, litNode[e.U][v], litNode[e.V][v])
					}
				}
			}
			return b.result()
		},
	}
}

// cnfClauses extracts the clause structure from a CNF-shaped formula:
// a conjunction of disjunctions of literals (single literals and single
// clauses are accepted at any level).
func cnfClauses(f sat.Formula) ([]sat.Clause, error) {
	switch g := f.(type) {
	case sat.And:
		var out []sat.Clause
		for _, sub := range g {
			cls, err := cnfClauses(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, cls...)
		}
		return out, nil
	case sat.Or, sat.Var, sat.Not:
		cl, err := clauseLits(f)
		if err != nil {
			return nil, err
		}
		return []sat.Clause{cl}, nil
	case sat.Const:
		if bool(g) {
			return nil, nil // ⊤ contributes no clause
		}
		// ⊥: an unsatisfiable clause gadget — encode as (P ∧ ¬P) clauses
		// over a fresh private variable name.
		return []sat.Clause{
			{sat.Literal{Name: "_false"}},
			{sat.Literal{Name: "_false", Neg: true}},
		}, nil
	default:
		return nil, fmt.Errorf("formula %v is not in CNF", f)
	}
}

func clauseLits(f sat.Formula) (sat.Clause, error) {
	switch g := f.(type) {
	case sat.Or:
		var out sat.Clause
		for _, sub := range g {
			lits, err := clauseLits(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, lits...)
		}
		return out, nil
	case sat.Var:
		return sat.Clause{{Name: string(g)}}, nil
	case sat.Not:
		v, ok := g.F.(sat.Var)
		if !ok {
			return nil, fmt.Errorf("negation of non-variable in clause: %v", f)
		}
		return sat.Clause{{Name: string(v), Neg: true}}, nil
	default:
		return nil, fmt.Errorf("non-literal %v in clause", f)
	}
}

// RunMachineToAllSelected is the reduction of Remark 17: executing any
// LP-decider M relabels each node with its verdict, reducing the property
// decided by M to all-selected while preserving the topology.
func RunMachineToAllSelected(name string, decide func(g *graph.Graph, id graph.IDAssignment) ([]string, error), radiusID int) Reduction {
	return Reduction{
		Name:     name + " ≤lp all-selected",
		RadiusID: radiusID,
		Apply: func(g *graph.Graph, id graph.IDAssignment) (*Result, error) {
			verdicts, err := decide(g, id)
			if err != nil {
				return nil, err
			}
			out, err := g.WithLabels(verdicts)
			if err != nil {
				return nil, err
			}
			clusterOf := make([]int, g.N())
			for u := range clusterOf {
				clusterOf[u] = u
			}
			return &Result{Out: out, ClusterOf: clusterOf}, nil
		},
	}
}
