// Package reduce implements the locally polynomial reductions of Section 8
// of the paper: graph transformations computable by a locally polynomial
// machine in which every node of the input graph emits a cluster of the
// output graph, with inter-cluster edges only between clusters of adjacent
// nodes.
//
// Each reduction here is written so that node u's cluster depends only on
// u's 1-neighborhood (its own label/identifier, its degree, and its
// neighbors' labels/identifiers) — exactly the information a constant-round
// machine gathers — which makes local computability manifest even though
// the driver loop is sequential.
package reduce

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Result is the output of a reduction: the new graph together with the
// cluster map assigning each output node to the input node whose cluster
// it belongs to (Section 8, "clusters and implementable functions").
type Result struct {
	Out *graph.Graph
	// ClusterOf[v] is the input node represented by output node v.
	ClusterOf []int
}

// Validate checks the cluster-map conditions: every output node belongs to
// a cluster of an input node, and edges run within a cluster or between
// clusters of adjacent input nodes.
func (r *Result) Validate(in *graph.Graph) error {
	if len(r.ClusterOf) != r.Out.N() {
		return fmt.Errorf("reduce: cluster map covers %d of %d nodes", len(r.ClusterOf), r.Out.N())
	}
	for _, c := range r.ClusterOf {
		if c < 0 || c >= in.N() {
			return fmt.Errorf("reduce: cluster target %d out of range", c)
		}
	}
	for _, e := range r.Out.Edges() {
		cu, cv := r.ClusterOf[e.U], r.ClusterOf[e.V]
		if cu != cv && !in.HasEdge(cu, cv) {
			return fmt.Errorf("reduce: edge {%d,%d} crosses non-adjacent clusters %d,%d", e.U, e.V, cu, cv)
		}
	}
	return nil
}

// ClusterSizes returns the number of output nodes per input node.
func (r *Result) ClusterSizes(in *graph.Graph) []int {
	sizes := make([]int, in.N())
	for _, c := range r.ClusterOf {
		sizes[c]++
	}
	return sizes
}

// Reduction is a locally polynomial reduction from one graph property to
// another.
type Reduction struct {
	Name string
	// Apply transforms the input graph. The identifier assignment must be
	// RadiusID-locally unique; reductions that do not use identifiers
	// accept nil.
	Apply func(g *graph.Graph, id graph.IDAssignment) (*Result, error)
	// RadiusID is the identifier locality the reduction requires (0 when
	// identifiers are unused).
	RadiusID int
}

// ErrNeedIdentifiers is returned when a reduction requiring identifiers is
// invoked without them.
var ErrNeedIdentifiers = errors.New("reduce: reduction requires a locally unique identifier assignment")

// builder incrementally constructs an output graph with a cluster map.
type builder struct {
	edges     []graph.Edge
	labels    []string
	clusterOf []int
}

// node adds a node to the given cluster and returns its index.
func (b *builder) node(cluster int, label string) int {
	id := len(b.labels)
	b.labels = append(b.labels, label)
	b.clusterOf = append(b.clusterOf, cluster)
	return id
}

func (b *builder) edge(u, v int) {
	b.edges = append(b.edges, graph.Edge{U: u, V: v})
}

func (b *builder) result() (*Result, error) {
	out, err := graph.New(len(b.labels), b.edges, b.labels)
	if err != nil {
		return nil, fmt.Errorf("reduce: output graph invalid: %w", err)
	}
	return &Result{Out: out, ClusterOf: b.clusterOf}, nil
}

// AllSelectedToEulerian is the reduction of Proposition 18 (Figure 9):
// the output graph has all degrees even — and is hence Eulerian — exactly
// when every input label is "1". Each input node is represented by two
// copies joined to the four copies of each incident edge; unselected nodes
// get an extra edge between their two copies, making both degrees odd.
//
// Single-node graphs are treated as the special case the proof mentions: a
// selected singleton maps to a (trivially Eulerian) singleton, an
// unselected one to a two-node path (both degrees odd).
func AllSelectedToEulerian() Reduction {
	return Reduction{
		Name: "all-selected ≤lp eulerian",
		Apply: func(g *graph.Graph, _ graph.IDAssignment) (*Result, error) {
			b := &builder{}
			if g.N() == 1 {
				if g.Label(0) == "1" {
					b.node(0, "")
				} else {
					a := b.node(0, "")
					c := b.node(0, "")
					b.edge(a, c)
				}
				return b.result()
			}
			copy0 := make([]int, g.N())
			copy1 := make([]int, g.N())
			for u := 0; u < g.N(); u++ {
				copy0[u] = b.node(u, "")
				copy1[u] = b.node(u, "")
				if g.Label(u) != "1" {
					b.edge(copy0[u], copy1[u])
				}
			}
			for _, e := range g.Edges() {
				b.edge(copy0[e.U], copy0[e.V])
				b.edge(copy0[e.U], copy1[e.V])
				b.edge(copy1[e.U], copy0[e.V])
				b.edge(copy1[e.U], copy1[e.V])
			}
			return b.result()
		},
	}
}

// portIndex returns, for each node u, the cluster-local port pair indices
// used by the Hamiltonian constructions: ports 2i ("go to v_i") and 2i+1
// ("come from v_i") for the i-th neighbor in ascending index order.
func neighborRank(g *graph.Graph, u, v int) int {
	for i, w := range g.Neighbors(u) {
		if w == v {
			return i
		}
	}
	return -1
}

// AllSelectedToHamiltonian is the reduction of Proposition 19 (Figures 3
// and 10): each input node becomes a cycle of ports (two per incident
// edge, padded to length ≥ 3 with dummies); the four port edges per input
// edge let a Hamiltonian cycle of the output simulate an Euler tour of a
// spanning tree of the input. Unselected nodes grow a pendant node that no
// Hamiltonian cycle can visit.
func AllSelectedToHamiltonian() Reduction {
	return Reduction{
		Name: "all-selected ≤lp hamiltonian",
		Apply: func(g *graph.Graph, _ graph.IDAssignment) (*Result, error) {
			b := &builder{}
			// goPort[u][i], comePort[u][i] for the i-th neighbor of u.
			goPort := make([][]int, g.N())
			comePort := make([][]int, g.N())
			for u := 0; u < g.N(); u++ {
				d := g.Degree(u)
				var cycle []int
				goPort[u] = make([]int, d)
				comePort[u] = make([]int, d)
				for i := 0; i < d; i++ {
					goPort[u][i] = b.node(u, "")
					comePort[u][i] = b.node(u, "")
					cycle = append(cycle, goPort[u][i], comePort[u][i])
				}
				// Pad with dummies to reach cycle length >= 3.
				for len(cycle) < 3 {
					cycle = append(cycle, b.node(u, ""))
				}
				for i := range cycle {
					b.edge(cycle[i], cycle[(i+1)%len(cycle)])
				}
				if g.Label(u) != "1" {
					bad := b.node(u, "")
					b.edge(bad, cycle[0])
				}
			}
			for _, e := range g.Edges() {
				i := neighborRank(g, e.U, e.V)
				j := neighborRank(g, e.V, e.U)
				// {u→v, v←u} and {u←v, v→u}.
				b.edge(goPort[e.U][i], comePort[e.V][j])
				b.edge(comePort[e.U][i], goPort[e.V][j])
			}
			return b.result()
		},
	}
}

// NotAllSelectedToHamiltonian is the reduction of Proposition 20
// (Figure 11): two stacked copies of the Proposition 19 construction (a
// "top" and a "bottom" cycle per node, each padded with three extra
// nodes), connected by a "middle rung" at every node and an extra rung at
// unselected nodes. The output is Hamiltonian iff some input node is
// unselected.
func NotAllSelectedToHamiltonian() Reduction {
	return Reduction{
		Name: "not-all-selected ≤lp hamiltonian",
		Apply: func(g *graph.Graph, _ graph.IDAssignment) (*Result, error) {
			b := &builder{}
			type layer struct {
				goPort, comePort []int
				extra            [3]int
			}
			mk := func(u int) layer {
				d := g.Degree(u)
				var l layer
				var cycle []int
				l.goPort = make([]int, d)
				l.comePort = make([]int, d)
				for i := 0; i < d; i++ {
					l.goPort[i] = b.node(u, "")
					l.comePort[i] = b.node(u, "")
					cycle = append(cycle, l.goPort[i], l.comePort[i])
				}
				for i := range l.extra {
					l.extra[i] = b.node(u, "")
					cycle = append(cycle, l.extra[i])
				}
				for i := range cycle {
					b.edge(cycle[i], cycle[(i+1)%len(cycle)])
				}
				return l
			}
			top := make([]layer, g.N())
			bot := make([]layer, g.N())
			for u := 0; u < g.N(); u++ {
				top[u] = mk(u)
				bot[u] = mk(u)
				// The middle rung keeps the output connected.
				b.edge(top[u].extra[1], bot[u].extra[1])
				if g.Label(u) != "1" {
					// The unselected rung lets a Hamiltonian cycle switch
					// between the two layers.
					b.edge(top[u].extra[0], bot[u].extra[0])
				}
			}
			for _, e := range g.Edges() {
				i := neighborRank(g, e.U, e.V)
				j := neighborRank(g, e.V, e.U)
				for _, l := range []struct{ a, b []layer }{{top, top}, {bot, bot}} {
					b.edge(l.a[e.U].goPort[i], l.b[e.V].comePort[j])
					b.edge(l.a[e.U].comePort[i], l.b[e.V].goPort[j])
				}
			}
			return b.result()
		},
	}
}

// Compose chains two reductions (the identifier assignment is forwarded
// only to the first; the second receives fresh globally unique identifiers
// of the intermediate graph, which are in particular locally unique).
func Compose(r1, r2 Reduction) Reduction {
	return Reduction{
		Name:     r1.Name + " ∘ " + r2.Name,
		RadiusID: r1.RadiusID,
		Apply: func(g *graph.Graph, id graph.IDAssignment) (*Result, error) {
			mid, err := r1.Apply(g, id)
			if err != nil {
				return nil, err
			}
			midID := graph.GloballyUnique(mid.Out)
			out, err := r2.Apply(mid.Out, midID)
			if err != nil {
				return nil, err
			}
			composed := make([]int, out.Out.N())
			for v, c := range out.ClusterOf {
				composed[v] = mid.ClusterOf[c]
			}
			return &Result{Out: out.Out, ClusterOf: composed}, nil
		},
	}
}
