package reduce

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/sat"
)

// TestSingleNodePipelineGroundTruth runs the Theorem 22 pipeline on a
// single-node source through each stage: the τ Boolean graph must be
// satisfiable, the 3-CNF stage must preserve that, and the final gadget
// graph must be 3-colorable.
func TestSingleNodePipelineGroundTruth(t *testing.T) {
	t.Parallel()
	g := graph.Single("1")
	bg, err := FormulaToBooleanGraph(g, logic.KColorable(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bg.Satisfiable() {
		t.Fatalf("tau Boolean graph unsatisfiable: %v", bg.Formulas[0])
	}
	mid, err := SatGraphTo3SatGraph().Apply(bg.G, graph.IDAssignment{"0"})
	if err != nil {
		t.Fatal(err)
	}
	mbg, err := sat.DecodeBooleanGraph(mid.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !mbg.Satisfiable() {
		t.Fatalf("3-CNF stage lost satisfiability: %v", mbg.Formulas[0])
	}
	res, err := ThreeSatGraphToThreeColorable().Apply(mid.Out, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gadget: %d nodes %d edges", res.Out.N(), res.Out.NumEdges())
	if !props.ThreeColorable(res.Out) {
		t.Fatal("gadget graph is not 3-colorable although the source is satisfiable")
	}
}
