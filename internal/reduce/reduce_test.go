package reduce

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/sat"
)

func apply(t *testing.T, r Reduction, g *graph.Graph, id graph.IDAssignment) *Result {
	t.Helper()
	res, err := r.Apply(g, id)
	if err != nil {
		t.Fatalf("%s on %v: %v", r.Name, g, err)
	}
	if err := res.Validate(g); err != nil {
		t.Fatalf("%s: invalid cluster map: %v", r.Name, err)
	}
	return res
}

func forEachLabeling(g *graph.Graph, f func(*graph.Graph)) {
	for mask := uint(0); mask < 1<<uint(g.N()); mask++ {
		f(g.MustWithLabels(graph.BitLabels(g.N(), mask)))
	}
}

// TestEulerianReduction: Proposition 18 / Figure 9 — G ∈ all-selected iff
// G′ ∈ eulerian, on exhaustive labelings of several topologies including
// the single-node special case.
func TestEulerianReduction(t *testing.T) {
	t.Parallel()
	r := AllSelectedToEulerian()
	bases := []*graph.Graph{
		graph.Single(""), graph.Path(2), graph.Path(4),
		graph.Cycle(4), graph.Star(4), graph.Complete(4),
	}
	for _, base := range bases {
		forEachLabeling(base, func(g *graph.Graph) {
			res := apply(t, r, g, nil)
			want := props.AllSelected(g)
			if got := props.Eulerian(res.Out); got != want {
				t.Fatalf("%v: eulerian(G') = %v, want %v", g, got, want)
			}
		})
	}
}

// TestEulerianReductionClusterSizes: every input node owns exactly two
// output nodes (multi-node case).
func TestEulerianReductionClusterSizes(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4).MustWithLabels([]string{"1", "0", "1", "1"})
	res := apply(t, AllSelectedToEulerian(), g, nil)
	for u, sz := range res.ClusterSizes(g) {
		if sz != 2 {
			t.Fatalf("cluster of %d has %d nodes", u, sz)
		}
	}
}

// TestHamiltonianReduction: Proposition 19 / Figures 3, 10.
func TestHamiltonianReduction(t *testing.T) {
	t.Parallel()
	r := AllSelectedToHamiltonian()
	bases := []*graph.Graph{
		graph.Single(""), graph.Path(2), graph.Path(3),
		graph.Cycle(3), graph.Cycle(4), graph.Star(4),
	}
	for _, base := range bases {
		forEachLabeling(base, func(g *graph.Graph) {
			res := apply(t, r, g, nil)
			want := props.AllSelected(g)
			if got := props.Hamiltonian(res.Out); got != want {
				t.Fatalf("%v: hamiltonian(G') = %v, want %v", g, got, want)
			}
		})
	}
}

// TestHamiltonianReductionFigure3: the concrete 4-node example of
// Figure 3: u2 is unselected, so G' is not Hamiltonian; flipping u2's
// label makes it Hamiltonian.
func TestHamiltonianReductionFigure3(t *testing.T) {
	t.Parallel()
	// The Figure 3 graph: u1-u2, u1-u3, u2-u4, u3-u4 (a 4-cycle).
	base := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}, nil)
	r := AllSelectedToHamiltonian()

	no := apply(t, r, base.MustWithLabels([]string{"1", "0", "1", "1"}), nil)
	if props.Hamiltonian(no.Out) {
		t.Fatal("Figure 3 no-instance should not be Hamiltonian")
	}
	yes := apply(t, r, base.MustWithLabels([]string{"1", "1", "1", "1"}), nil)
	if !props.Hamiltonian(yes.Out) {
		t.Fatal("Figure 3 yes-instance should be Hamiltonian")
	}
}

// TestCoHamiltonianReduction: Proposition 20 / Figure 11 — G has an
// unselected node iff G′ is Hamiltonian. Instances are kept tiny because
// the negative case explores a 2-regular-ish graph exhaustively.
func TestCoHamiltonianReduction(t *testing.T) {
	t.Parallel()
	r := NotAllSelectedToHamiltonian()
	bases := []*graph.Graph{graph.Single(""), graph.Path(2)}
	for _, base := range bases {
		forEachLabeling(base, func(g *graph.Graph) {
			res := apply(t, r, g, nil)
			want := props.NotAllSelected(g)
			if got := props.Hamiltonian(res.Out); got != want {
				t.Fatalf("%v: hamiltonian(G') = %v, want %v", g, got, want)
			}
		})
	}
	// A slightly larger positive instance.
	g := graph.Path(3).MustWithLabels([]string{"1", "0", "1"})
	res := apply(t, r, g, nil)
	if !props.Hamiltonian(res.Out) {
		t.Fatal("unselected middle node should make G' Hamiltonian")
	}
}

func mkBoolGraph(t *testing.T, topo *graph.Graph, formulas ...string) *graph.Graph {
	t.Helper()
	fs := make([]sat.Formula, len(formulas))
	for i, s := range formulas {
		fs[i] = sat.MustParse(s)
	}
	bg, err := sat.NewBooleanGraph(topo, fs)
	if err != nil {
		t.Fatal(err)
	}
	return bg.G
}

// TestSatGraphTo3SatGraph: Tseytin per node preserves graph
// satisfiability; output formulas are 3-CNF.
func TestSatGraphTo3SatGraph(t *testing.T) {
	t.Parallel()
	r := SatGraphTo3SatGraph()
	cases := []*graph.Graph{
		mkBoolGraph(t, graph.Path(2), "P1|~P2|~P3", "P3|P4|~P5"),
		mkBoolGraph(t, graph.Path(2), "P", "~P"),
		mkBoolGraph(t, graph.Cycle(3), "A&(B|C)", "~B|A", "C&A"),
		mkBoolGraph(t, graph.Single(""), "(A|B)&(~A|B)&(A|~B)&(~A|~B)"),
	}
	for _, g := range cases {
		id := graph.SmallLocallyUnique(g, 1)
		res := apply(t, r, g, id)
		if got, want := props.SatGraph(res.Out), props.SatGraph(g); got != want {
			t.Fatalf("%v: satisfiability changed: got %v, want %v", g, got, want)
		}
		// Every output formula must be 3-CNF.
		bg, err := sat.DecodeBooleanGraph(res.Out)
		if err != nil {
			t.Fatal(err)
		}
		for u, f := range bg.Formulas {
			clauses, err := cnfClauses(f)
			if err != nil {
				t.Fatalf("node %d: output not CNF: %v", u, err)
			}
			for _, cl := range clauses {
				if len(cl) > 3 {
					t.Fatalf("node %d: clause of width %d", u, len(cl))
				}
			}
		}
	}
}

// TestSatGraphTo3SatRequiresIDs: the reduction must reject missing or
// non-locally-unique identifier assignments.
func TestSatGraphTo3SatRequiresIDs(t *testing.T) {
	t.Parallel()
	g := mkBoolGraph(t, graph.Path(2), "P", "P")
	if _, err := SatGraphTo3SatGraph().Apply(g, nil); err == nil {
		t.Fatal("nil identifiers accepted")
	}
	if _, err := SatGraphTo3SatGraph().Apply(g, graph.IDAssignment{"0", "0"}); err == nil {
		t.Fatal("clashing identifiers accepted")
	}
}

// TestThreeSatTo3Colorable: Theorem 23 / Figures 4, 12 — equisatisfiability
// with 3-colorability on a spread of Boolean graphs.
func TestThreeSatTo3Colorable(t *testing.T) {
	t.Parallel()
	r := ThreeSatGraphToThreeColorable()
	cases := []struct {
		g    *graph.Graph
		want bool
	}{
		{mkBoolGraph(t, graph.Path(2), "P1|~P2|~P3", "P3|P4|~P5"), true},
		{mkBoolGraph(t, graph.Path(2), "P", "~P"), false},
		{mkBoolGraph(t, graph.Single(""), "(A|B)&(~A|B)&(A|~B)&(~A|~B)"), false},
		{mkBoolGraph(t, graph.Single(""), "(A|B)&(~A|B)"), true},
		{mkBoolGraph(t, graph.Cycle(3), "A", "A&B", "~B"), false},
		{mkBoolGraph(t, graph.Cycle(3), "A", "A&B", "B"), true},
	}
	for _, tt := range cases {
		res := apply(t, r, tt.g, nil)
		if got := props.ThreeColorable(res.Out); got != tt.want {
			t.Fatalf("%v: 3-colorable(G') = %v, want %v", tt.g, got, tt.want)
		}
		if got := props.SatGraph(tt.g); got != tt.want {
			t.Fatal("test case ground truth is off")
		}
	}
}

// TestFullCookLevinChain: the composed reduction sat-graph → 3-sat-graph →
// 3-colorable on random Boolean graphs, validated against ground truth.
func TestFullCookLevinChain(t *testing.T) {
	t.Parallel()
	chain := Compose(SatGraphTo3SatGraph(), ThreeSatGraphToThreeColorable())
	rng := rand.New(rand.NewSource(99))
	vars := []string{"A", "B"}
	// Single short clauses keep the gadget graphs small enough for the
	// exponential ground-truth oracles below; shared-variable conflicts
	// still produce unsatisfiable instances.
	randFormula := func() sat.Formula {
		var or sat.Or
		for j := 0; j <= rng.Intn(2); j++ {
			var lit sat.Formula = sat.Var(vars[rng.Intn(len(vars))])
			if rng.Intn(2) == 0 {
				lit = sat.Not{F: lit}
			}
			or = append(or, lit)
		}
		return or
	}
	for trial := 0; trial < 8; trial++ {
		n := 2
		topo := graph.RandomConnected(n, 0.6, rng)
		fs := make([]sat.Formula, n)
		for i := range fs {
			fs[i] = randFormula()
		}
		bg, err := sat.NewBooleanGraph(topo, fs)
		if err != nil {
			t.Fatal(err)
		}
		id := graph.SmallLocallyUnique(bg.G, 1)
		res := apply(t, chain, bg.G, id)
		want := props.SatGraph(bg.G)
		// Pick the oracle by polarity: the backtracking colorer finds
		// witnesses on satisfiable gadget graphs quickly, while the DPLL
		// encoding refutes the (small) unsatisfiable ones quickly; each
		// is exponential in the opposite direction.
		var got bool
		if want {
			got = props.ThreeColorable(res.Out)
		} else {
			got = props.KColorableSAT(res.Out, 3)
		}
		if got != want {
			t.Fatalf("trial %d: 3-colorable = %v, want %v", trial, got, want)
		}
	}
}

// TestRunMachineToAllSelected: Remark 17 — executing a decider reduces its
// property to all-selected, preserving topology.
func TestRunMachineToAllSelected(t *testing.T) {
	t.Parallel()
	evenDegree := func(g *graph.Graph, _ graph.IDAssignment) ([]string, error) {
		out := make([]string, g.N())
		for u := range out {
			if g.Degree(u)%2 == 0 {
				out[u] = "1"
			} else {
				out[u] = "0"
			}
		}
		return out, nil
	}
	r := RunMachineToAllSelected("eulerian", evenDegree, 1)
	for _, g := range []*graph.Graph{graph.Cycle(4), graph.Path(3), graph.Star(4)} {
		res := apply(t, r, g, graph.SmallLocallyUnique(g, 1))
		if res.Out.N() != g.N() || res.Out.NumEdges() != g.NumEdges() {
			t.Fatal("topology not preserved")
		}
		if props.AllSelected(res.Out) != props.Eulerian(g) {
			t.Fatalf("%v: reduction incorrect", g)
		}
	}
}

func TestValidateRejectsCrossClusterEdges(t *testing.T) {
	t.Parallel()
	in := graph.Path(3) // nodes 0 and 2 are not adjacent
	out := graph.Path(2)
	bad := &Result{Out: out, ClusterOf: []int{0, 2}}
	if err := bad.Validate(in); err == nil {
		t.Fatal("edge between clusters of non-adjacent nodes accepted")
	}
	ok := &Result{Out: out, ClusterOf: []int{0, 1}}
	if err := ok.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestCnfClauses(t *testing.T) {
	t.Parallel()
	f := sat.MustParse("(A|~B|C)&(~A|B)&C")
	clauses, err := cnfClauses(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 3 {
		t.Fatalf("got %d clauses", len(clauses))
	}
	if _, err := cnfClauses(sat.MustParse("~(A&B)")); err == nil {
		t.Fatal("non-CNF accepted")
	}
	// Constants.
	if cls, err := cnfClauses(sat.Const(true)); err != nil || len(cls) != 0 {
		t.Fatal("⊤ should contribute no clauses")
	}
	cls, err := cnfClauses(sat.Const(false))
	if err != nil || len(cls) != 2 {
		t.Fatal("⊥ should contribute an unsatisfiable pair")
	}
}
