package reduce

import (
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/structure"
)

// This file implements the heart of the distributed Cook–Levin theorem
// (Theorem 22): the translation τ of the proof, which converts a
// Σ^lfo_1-sentence ∃R1…∃Rn ∀x φ(x) over structural representations into a
// Boolean graph. Node u's Boolean formula φ^G_u asserts φ at the element
// representing u and at all elements representing u's labeling bits, with
// atoms R(a1,…,ak) replaced by propositional variables P_R(a1,…,ak).
// The resulting Boolean graph is satisfiable iff $G satisfies the
// sentence — which is how sat-graph is shown NLP-hard.

// FormulaToBooleanGraph applies the τ-translation to graph g for the
// Σ^lfo_1-sentence whose second-order prefix binds soVars (names only; the
// translation works for any arities) and whose first-order core is
// ∀x body with body ∈ BF.
//
// Propositional variables are named R_a1_a2...; the paper derives such
// names from locally unique identifiers (its G″ construction), while we
// use element indices directly — the difference is immaterial for
// equisatisfiability and keeps the output readable.
func FormulaToBooleanGraph(g *graph.Graph, sentence logic.Formula) (*sat.BooleanGraph, error) {
	// Strip the second-order prefix.
	core := sentence
	soVars := make(map[string]bool)
	for {
		so, ok := core.(logic.SO)
		if !ok {
			break
		}
		if !so.Existential {
			return nil, fmt.Errorf("reduce: sentence is not Σ^lfo_1 (universal second-order quantifier %s)", so.R)
		}
		soVars[so.R] = true
		core = so.F
	}
	fa, ok := core.(logic.Forall)
	if !ok {
		return nil, fmt.Errorf("reduce: first-order core must be ∀x φ")
	}
	if !logic.IsBF(fa.F) {
		return nil, fmt.Errorf("reduce: core body is not in the bounded fragment")
	}

	rep := structure.NewRep(g)
	tr := &tau{rep: rep, soVars: soVars}
	formulas := make([]sat.Formula, g.N())
	for u := 0; u < g.N(); u++ {
		conj := sat.And{}
		elems := append([]int{rep.NodeElem(u)}, rep.BitElems(u)...)
		for _, a := range elems {
			f, err := tr.translate(fa.F, map[logic.Var]int{fa.X: a})
			if err != nil {
				return nil, err
			}
			conj = append(conj, f)
		}
		// Fold the truth constants produced by evaluating the
		// first-order part on the concrete structure; without this the
		// downstream Tseytin and gadget constructions blow up.
		formulas[u] = sat.Simplify(conj)
	}
	return sat.NewBooleanGraph(g, formulas)
}

type tau struct {
	rep    *structure.Rep
	soVars map[string]bool
}

func boolConst(b bool) sat.Formula { return sat.Const(b) }

func (t *tau) translate(f logic.Formula, sigma map[logic.Var]int) (sat.Formula, error) {
	s := t.rep.Structure
	lookup := func(v logic.Var) (int, error) {
		a, ok := sigma[v]
		if !ok {
			return 0, fmt.Errorf("reduce: unbound variable %s in τ-translation", v)
		}
		return a, nil
	}
	switch g := f.(type) {
	case logic.Truth:
		return boolConst(bool(g)), nil
	case logic.Unary:
		a, err := lookup(g.X)
		if err != nil {
			return nil, err
		}
		return boolConst(s.InUnary(g.I, a)), nil
	case logic.Edge:
		a, err := lookup(g.X)
		if err != nil {
			return nil, err
		}
		b, err := lookup(g.Y)
		if err != nil {
			return nil, err
		}
		return boolConst(s.InBinary(g.I, a, b)), nil
	case logic.Eq:
		a, err := lookup(g.X)
		if err != nil {
			return nil, err
		}
		b, err := lookup(g.Y)
		if err != nil {
			return nil, err
		}
		return boolConst(a == b), nil
	case logic.Atom:
		if !t.soVars[g.R] {
			return nil, fmt.Errorf("reduce: atom %s is not an existentially quantified relation", g.R)
		}
		name := g.R
		for _, v := range g.Args {
			a, err := lookup(v)
			if err != nil {
				return nil, err
			}
			name += "_" + strconv.Itoa(a)
		}
		return sat.Var(name), nil
	case logic.Not:
		sub, err := t.translate(g.F, sigma)
		if err != nil {
			return nil, err
		}
		return sat.Not{F: sub}, nil
	case logic.Or:
		l, err := t.translate(g.L, sigma)
		if err != nil {
			return nil, err
		}
		r, err := t.translate(g.R, sigma)
		if err != nil {
			return nil, err
		}
		return sat.Or{l, r}, nil
	case logic.And:
		l, err := t.translate(g.L, sigma)
		if err != nil {
			return nil, err
		}
		r, err := t.translate(g.R, sigma)
		if err != nil {
			return nil, err
		}
		return sat.And{l, r}, nil
	case logic.ExistsB:
		y, err := lookup(g.Y)
		if err != nil {
			return nil, err
		}
		out := sat.Or{}
		for _, a := range s.Connected(y) {
			sigma[g.X] = a
			sub, err := t.translate(g.F, sigma)
			delete(sigma, g.X)
			if err != nil {
				return nil, err
			}
			out = append(out, sub)
		}
		return out, nil
	case logic.ForallB:
		y, err := lookup(g.Y)
		if err != nil {
			return nil, err
		}
		out := sat.And{}
		for _, a := range s.Connected(y) {
			sigma[g.X] = a
			sub, err := t.translate(g.F, sigma)
			delete(sigma, g.X)
			if err != nil {
				return nil, err
			}
			out = append(out, sub)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("reduce: %T is not a BF construct", f)
	}
}
