package cert

import "math/bits"

// Packed is an Enum compiled to a single machine word: node u's choice
// index is stored as a fixed-width digit field inside a uint64, with
// node Len()-1 in the least-significant bits. Advancing the counter is
// a mixed-radix increment — add one to the lowest field and ripple the
// carry upward — so enumeration visits exactly the assignments of
// Domain.ForEach in the same lexicographic order (position 0 most
// significant), which the cert test suite pins against the slice-based
// enumerator.
//
// The point of the packing is the innermost quantifier level of a game
// evaluation: there the engine burns through the whole domain once per
// enclosing prefix, and the carry tells it precisely which suffix of
// the assignment changed, so each step rewrites O(1) amortized string
// slots instead of decoding all N from a []int choice vector. Domains
// whose digit fields do not fit in 64 bits are not packable; Pack
// reports that and callers fall back to the search.ForEach path.
//
// A Packed is immutable after construction and safe for concurrent use;
// iteration state lives entirely in the caller's frame.
type Packed struct {
	e     *Enum
	shift []uint   // bit offset of node u's digit field
	mask  []uint64 // (1<<width)-1 for node u, pre-shifted to bit 0
	radix []int    // number of options of node u
}

// Pack compiles the enum into packed-word form. The second result is
// false when the per-node digit fields exceed 64 bits in total; the
// returned Packed is nil in that case.
func (e *Enum) Pack() (*Packed, bool) {
	n := len(e.options)
	p := &Packed{
		e:     e,
		shift: make([]uint, n),
		mask:  make([]uint64, n),
		radix: make([]int, n),
	}
	total := uint(0)
	for u := n - 1; u >= 0; u-- {
		r := len(e.options[u])
		p.radix[u] = r
		// A single-option node contributes a zero-width digit: the
		// field is constant zero and the increment carries straight
		// through it.
		w := uint(bits.Len(uint(r - 1)))
		p.shift[u] = total
		p.mask[u] = 1<<w - 1
		total += w
		if total > 64 {
			return nil, false
		}
	}
	return p, true
}

// Len returns the number of node positions.
func (p *Packed) Len() int { return len(p.radix) }

// ForEach enumerates every assignment of the packed domain in
// lexicographic order, reusing into (len must equal Len) as the decode
// buffer handed to yield. Between calls only the digits touched by the
// mixed-radix carry are rewritten. Enumeration stops early if yield
// returns false; ForEach reports whether it ran to completion. Callers
// owning a cancellation port poll it inside yield (the packed loop
// itself is allocation- and branch-minimal by design).
func (p *Packed) ForEach(into Assignment, yield func(Assignment) bool) bool {
	n := len(p.radix)
	for u := 0; u < n; u++ {
		into[u] = p.e.options[u][0]
	}
	var w uint64
	for {
		if !yield(into) {
			return false
		}
		u := n - 1
		for ; u >= 0; u-- {
			d := int((w >> p.shift[u]) & p.mask[u])
			if d+1 < p.radix[u] {
				w += 1 << p.shift[u]
				into[u] = p.e.options[u][d+1]
				break
			}
			w &^= p.mask[u] << p.shift[u]
			into[u] = p.e.options[u][0]
		}
		if u < 0 {
			return true
		}
	}
}

// Size returns the number of assignments in the packed domain.
func (p *Packed) Size() int {
	total := 1
	for _, r := range p.radix {
		total *= r
	}
	return total
}
