// Package cert implements the certificate assignments of Sections 3 and 4:
// the per-node bit strings chosen by the players Eve and Adam, the
// (r,p)-boundedness condition on their sizes, certificate lists, and finite
// enumeration of bounded certificate spaces for exhaustive game search on
// small graphs.
package cert

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/search"
)

// Assignment is a certificate assignment κ: one bit string per node.
type Assignment []string

// Polynomial is a univariate polynomial with nonnegative integer
// coefficients, p(n) = C[0] + C[1]·n + C[2]·n² + …
type Polynomial []int

// Eval evaluates the polynomial at n.
func (p Polynomial) Eval(n int) int {
	out := 0
	pow := 1
	for _, c := range p {
		out += c * pow
		pow *= n
	}
	return out
}

// String renders the polynomial, e.g. "2 + 3n + n^2".
func (p Polynomial) String() string {
	if len(p) == 0 {
		return "0"
	}
	var parts []string
	for i, c := range p {
		if c == 0 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, fmt.Sprintf("%d", c))
		case 1:
			parts = append(parts, fmt.Sprintf("%dn", c))
		default:
			if c == 1 {
				parts = append(parts, fmt.Sprintf("n^%d", i))
			} else {
				parts = append(parts, fmt.Sprintf("%dn^%d", c, i))
			}
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// Bound is the (r,p) certificate-size bound of Section 3: the length of
// node u's certificate may not exceed p applied to the total size of u's
// r-neighborhood, Σ_{v ∈ N^G_r(u)} (1 + len(label(v)) + len(id(v))).
type Bound struct {
	R int
	P Polynomial
}

// NeighborhoodSize computes the argument of p for node u.
func (b Bound) NeighborhoodSize(g *graph.Graph, id graph.IDAssignment, u int) int {
	total := 0
	for _, v := range g.Ball(u, b.R) {
		total += 1 + len(g.Label(v)) + len(id[v])
	}
	return total
}

// MaxLen returns the maximum allowed certificate length of node u.
func (b Bound) MaxLen(g *graph.Graph, id graph.IDAssignment, u int) int {
	return b.P.Eval(b.NeighborhoodSize(g, id, u))
}

// Check reports whether κ is (r,p)-bounded on (g, id).
func (b Bound) Check(g *graph.Graph, id graph.IDAssignment, k Assignment) bool {
	if len(k) != g.N() {
		return false
	}
	for u := 0; u < g.N(); u++ {
		if !graph.IsBitString(k[u]) || len(k[u]) > b.MaxLen(g, id, u) {
			return false
		}
	}
	return true
}

// Empty returns the trivial assignment giving every node the empty string.
func Empty(n int) Assignment { return make(Assignment, n) }

// NodeLists converts a sequence of certificate assignments κ1, …, κℓ into
// per-node certificate lists: out[u] = [κ1(u), …, κℓ(u)], the form consumed
// by the execution engines (the TM model concatenates them with '#').
func NodeLists(assigns ...Assignment) [][]string {
	if len(assigns) == 0 {
		return nil
	}
	n := len(assigns[0])
	out := make([][]string, n)
	for u := 0; u < n; u++ {
		out[u] = make([]string, len(assigns))
		for i, a := range assigns {
			out[u][i] = a[u]
		}
	}
	return out
}

// Domain is a finite set of certificate assignments to quantify over, given
// as per-node maximal certificate lengths: node u ranges over all bit
// strings of length 0..MaxLen[u]. Exhaustive game search enumerates the
// full product space, so keep the lengths tiny.
type Domain struct {
	MaxLen []int
}

// UniformDomain gives every node the same maximal certificate length.
func UniformDomain(n, maxLen int) Domain {
	ml := make([]int, n)
	for i := range ml {
		ml[i] = maxLen
	}
	return Domain{MaxLen: ml}
}

// BoundedDomain derives a domain from an (r,p) bound on (g, id), capped at
// cap bits per node to keep enumeration feasible.
func BoundedDomain(g *graph.Graph, id graph.IDAssignment, b Bound, cap int) Domain {
	ml := make([]int, g.N())
	for u := range ml {
		ml[u] = b.MaxLen(g, id, u)
		if ml[u] > cap {
			ml[u] = cap
		}
	}
	return Domain{MaxLen: ml}
}

// Size returns the number of assignments in the domain (the product over
// nodes of the number of bit strings of length ≤ MaxLen[u], which is
// 2^(L+1) − 1).
func (d Domain) Size() int {
	total := 1
	for _, l := range d.MaxLen {
		total *= (1 << uint(l+1)) - 1
	}
	return total
}

// strings0 lists all bit strings of length 0..maxLen in a fixed order.
func stringsUpTo(maxLen int) []string {
	out := []string{""}
	for l := 1; l <= maxLen; l++ {
		for x := 0; x < 1<<uint(l); x++ {
			s := make([]byte, l)
			for i := 0; i < l; i++ {
				if x&(1<<uint(l-1-i)) != 0 {
					s[i] = '1'
				} else {
					s[i] = '0'
				}
			}
			out = append(out, string(s))
		}
	}
	return out
}

// ForEach enumerates every assignment in the domain, invoking yield for
// each. Enumeration stops early if yield returns false; ForEach reports
// whether enumeration ran to completion.
//
// The assignment passed to yield is reused between calls; copy it if it
// must be retained.
func (d Domain) ForEach(yield func(Assignment) bool) bool {
	e := d.Enum()
	cur := make(Assignment, len(d.MaxLen))
	return search.ForEach(e.Space(), func(choices []int) bool {
		e.Decode(choices, cur)
		return yield(cur)
	})
}

// Enum is a Domain compiled for the search engine: the per-node option
// tables are materialized once, so enumeration and decoding share them
// across the exponentially many assignments of a game evaluation. An Enum
// is immutable after construction and safe for concurrent use.
type Enum struct {
	options [][]string
}

// Enum compiles the domain.
func (d Domain) Enum() *Enum {
	e := &Enum{options: make([][]string, len(d.MaxLen))}
	for u, l := range d.MaxLen {
		e.options[u] = stringsUpTo(l)
	}
	return e
}

// Len returns the number of node positions.
func (e *Enum) Len() int { return len(e.options) }

// NumOptions returns the number of bit strings node u ranges over (the
// radix of position u in Space). The game engine's memo keys and
// symmetry reduction fingerprint domains through it.
func (e *Enum) NumOptions(u int) int { return len(e.options[u]) }

// Space exposes the compiled domain as a search.Space: one position per
// node, node u offering its bit strings of length 0..MaxLen[u] in
// stringsUpTo order (choice 0 is ""). Enumerating the space in
// lexicographic order and decoding each assignment visits exactly the
// assignments of Domain.ForEach in the same order, which the cert test
// suite pins.
func (e *Enum) Space() search.Space {
	return search.Space{
		Len:  len(e.options),
		Size: func(u int) int { return len(e.options[u]) },
	}
}

// Decode writes the assignment selected by choices into the reusable
// buffer into; len(choices) and len(into) must both equal Len. Every
// position is overwritten, so buffers pooled through search.Scratch can
// be reused without clearing.
func (e *Enum) Decode(choices []int, into Assignment) {
	for u, c := range choices {
		into[u] = e.options[u][c]
	}
}

// Space is shorthand for Enum().Space(); callers that also decode should
// compile the Enum once instead.
func (d Domain) Space() search.Space { return d.Enum().Space() }
