package cert

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/search"
)

// referenceEnumerate lists the domain's assignments by the definitional
// nested loops — node 0 outermost, each node walking its bit strings in
// stringsUpTo order — independent of both Domain.ForEach and Enum.Space,
// so the property tests pin the semantics rather than the implementation.
func referenceEnumerate(d Domain) []string {
	n := len(d.MaxLen)
	options := make([][]string, n)
	for u := 0; u < n; u++ {
		options[u] = stringsUpTo(d.MaxLen[u])
	}
	var out []string
	cur := make([]string, n)
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			out = append(out, strings.Join(cur, "|"))
			return
		}
		for _, s := range options[u] {
			cur[u] = s
			rec(u + 1)
		}
	}
	rec(0)
	return out
}

// enumerateVia walks the domain through the given enumeration style and
// returns the joined assignments in visitation order.
func enumerateViaForEach(d Domain) []string {
	var out []string
	d.ForEach(func(a Assignment) bool {
		out = append(out, strings.Join(a, "|"))
		return true
	})
	return out
}

func enumerateViaSpace(d Domain) []string {
	e := d.Enum()
	buf := make(Assignment, e.Len())
	var out []string
	search.ForEach(e.Space(), func(choices []int) bool {
		e.Decode(choices, buf)
		out = append(out, strings.Join(buf, "|"))
		return true
	})
	return out
}

func assertSameEnumeration(t *testing.T, name string, d Domain) {
	t.Helper()
	want := referenceEnumerate(d)
	if got := enumerateViaForEach(d); !equalStrings(got, want) {
		t.Fatalf("%s: ForEach order diverges from reference\n got %v\nwant %v", name, got, want)
	}
	if got := enumerateViaSpace(d); !equalStrings(got, want) {
		t.Fatalf("%s: Space order diverges from reference\n got %v\nwant %v", name, got, want)
	}
	if d.Size() != len(want) {
		t.Fatalf("%s: Size() = %d, enumerated %d", name, d.Size(), len(want))
	}
	seen := make(map[string]bool, len(want))
	for _, a := range want {
		if seen[a] {
			t.Fatalf("%s: duplicate assignment %q", name, a)
		}
		seen[a] = true
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpaceMatchesForEachRandom: for random (n, per-node maxLen) domains,
// the search-space view enumerates exactly the ForEach assignments — same
// element set, same lexicographic order.
func TestSpaceMatchesForEachRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(20240726))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		ml := make([]int, n)
		for u := range ml {
			ml[u] = rng.Intn(3)
		}
		assertSameEnumeration(t, "random domain", Domain{MaxLen: ml})
	}
}

// TestSpaceMatchesForEachBounded covers domains derived from (r,p) bounds
// on labeled graphs, the form game evaluations actually quantify over.
func TestSpaceMatchesForEachBounded(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	bases := []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Star(3)}
	for trial := 0; trial < 20; trial++ {
		base := bases[rng.Intn(len(bases))]
		labels := make([]string, base.N())
		for u := range labels {
			labels[u] = []string{"", "0", "1"}[rng.Intn(3)]
		}
		g := base.MustWithLabels(labels)
		id := graph.SmallLocallyUnique(g, 1)
		b := Bound{R: 1, P: Polynomial{0, 1}}
		cap := 1 + rng.Intn(2)
		assertSameEnumeration(t, "bounded domain", BoundedDomain(g, id, b, cap))
	}
}

// TestSpaceDegenerate pins the edge cases: the empty domain (one empty
// assignment) and a zero-length node option list.
func TestSpaceDegenerate(t *testing.T) {
	t.Parallel()
	assertSameEnumeration(t, "empty domain", Domain{})
	assertSameEnumeration(t, "all-zero maxlen", UniformDomain(3, 0))
}
