package cert

import (
	"strings"
	"testing"
)

// TestPackedMatchesDomainForEach pins the packed enumerator against the
// slice-based one: same assignments, same lexicographic order, for
// uniform and mixed-radix domains including zero-width (MaxLen 0)
// digits. The game engine's bitset leaf path is only correct because
// this order identity holds.
func TestPackedMatchesDomainForEach(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		d    Domain
	}{
		{"uniform 4x1", UniformDomain(4, 1)},
		{"uniform 3x2", UniformDomain(3, 2)},
		{"single node", UniformDomain(1, 3)},
		{"mixed radix", Domain{MaxLen: []int{2, 0, 1, 0, 3}}},
		{"all zero-width", Domain{MaxLen: []int{0, 0, 0}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var want []string
			tt.d.ForEach(func(a Assignment) bool {
				want = append(want, strings.Join(a, "\x00"))
				return true
			})
			p, ok := tt.d.Enum().Pack()
			if !ok {
				t.Fatalf("Pack() failed for a %d-assignment domain", tt.d.Size())
			}
			if p.Size() != tt.d.Size() {
				t.Fatalf("Packed.Size() = %d, Domain.Size() = %d", p.Size(), tt.d.Size())
			}
			var got []string
			into := make(Assignment, p.Len())
			complete := p.ForEach(into, func(a Assignment) bool {
				got = append(got, strings.Join(a, "\x00"))
				return true
			})
			if !complete {
				t.Fatal("ForEach reported early stop without a false yield")
			}
			if len(got) != len(want) {
				t.Fatalf("packed enumerated %d assignments, slice enumerator %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("assignment %d: packed %q, slice %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestPackedEarlyStop checks that a false yield stops the enumeration
// and is reported as incomplete.
func TestPackedEarlyStop(t *testing.T) {
	t.Parallel()
	p, ok := UniformDomain(3, 1).Enum().Pack()
	if !ok {
		t.Fatal("Pack() failed")
	}
	seen := 0
	into := make(Assignment, p.Len())
	complete := p.ForEach(into, func(Assignment) bool {
		seen++
		return seen < 5
	})
	if complete || seen != 5 {
		t.Fatalf("early stop: complete=%v after %d yields, want false after 5", complete, seen)
	}
}

// TestPackOverflowFallsBack: a domain whose digit fields exceed one
// machine word must refuse to pack (the engine then falls back to the
// choice-vector walk).
func TestPackOverflowFallsBack(t *testing.T) {
	t.Parallel()
	// 22 nodes with MaxLen 2 → radix 7 → 3 bits each = 66 bits > 64.
	if p, ok := UniformDomain(22, 2).Enum().Pack(); ok || p != nil {
		t.Fatalf("Pack() = (%v, %v), want (nil, false) past 64 bits", p, ok)
	}
	// 21 nodes at 63 bits still fits.
	if _, ok := UniformDomain(21, 2).Enum().Pack(); !ok {
		t.Fatal("Pack() failed at 63 bits, want success")
	}
}
