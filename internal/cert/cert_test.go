package cert

import (
	"testing"

	"repro/internal/graph"
)

func TestPolynomial(t *testing.T) {
	t.Parallel()
	p := Polynomial{2, 3, 1} // 2 + 3n + n²
	if got := p.Eval(0); got != 2 {
		t.Fatalf("p(0) = %d", got)
	}
	if got := p.Eval(4); got != 2+12+16 {
		t.Fatalf("p(4) = %d", got)
	}
	if s := p.String(); s != "2 + 3n + n^2" {
		t.Fatalf("String = %q", s)
	}
	if Polynomial(nil).Eval(10) != 0 {
		t.Fatal("empty polynomial should be 0")
	}
}

func TestBound(t *testing.T) {
	t.Parallel()
	g := graph.Path(3).MustWithLabels([]string{"11", "0", ""})
	id := graph.IDAssignment{"0", "1", "00"}
	b := Bound{R: 1, P: Polynomial{0, 1}} // p(n) = n
	// Node 1's 1-neighborhood holds all three nodes:
	// sizes (1+2+1) + (1+1+1) + (1+0+2) = 4+3+3 = 10.
	if got := b.NeighborhoodSize(g, id, 1); got != 10 {
		t.Fatalf("NeighborhoodSize = %d, want 10", got)
	}
	if got := b.MaxLen(g, id, 1); got != 10 {
		t.Fatalf("MaxLen = %d", got)
	}
	ok := Assignment{"0000", "1111111111", ""}
	if !b.Check(g, id, ok) {
		t.Fatal("valid assignment rejected")
	}
	tooLong := Assignment{"0000", "11111111111", ""} // 11 > 10
	if b.Check(g, id, tooLong) {
		t.Fatal("overlong certificate accepted")
	}
	notBits := Assignment{"0x", "", ""}
	if b.Check(g, id, notBits) {
		t.Fatal("non-bit-string certificate accepted")
	}
	if b.Check(g, id, Assignment{"0"}) {
		t.Fatal("wrong-length assignment accepted")
	}
}

func TestNodeLists(t *testing.T) {
	t.Parallel()
	k1 := Assignment{"0", "1"}
	k2 := Assignment{"00", "11"}
	lists := NodeLists(k1, k2)
	if lists[0][0] != "0" || lists[0][1] != "00" || lists[1][1] != "11" {
		t.Fatalf("NodeLists = %v", lists)
	}
	if NodeLists() != nil {
		t.Fatal("no assignments should give nil")
	}
}

func TestDomainEnumeration(t *testing.T) {
	t.Parallel()
	d := UniformDomain(2, 1)
	// Per node: "", "0", "1" → 3 options; 9 assignments total.
	if d.Size() != 9 {
		t.Fatalf("Size = %d, want 9", d.Size())
	}
	seen := make(map[string]bool)
	complete := d.ForEach(func(a Assignment) bool {
		seen[a[0]+"|"+a[1]] = true
		return true
	})
	if !complete || len(seen) != 9 {
		t.Fatalf("enumerated %d distinct assignments, complete=%v", len(seen), complete)
	}
	// Early stop.
	count := 0
	complete = d.ForEach(func(a Assignment) bool {
		count++
		return count < 3
	})
	if complete || count != 3 {
		t.Fatalf("early stop failed: count=%d complete=%v", count, complete)
	}
}

func TestStringsUpTo(t *testing.T) {
	t.Parallel()
	got := stringsUpTo(2)
	want := []string{"", "0", "1", "00", "01", "10", "11"}
	if len(got) != len(want) {
		t.Fatalf("stringsUpTo(2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stringsUpTo(2) = %v, want %v", got, want)
		}
	}
}

func TestBoundedDomain(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"1", "1"})
	id := graph.IDAssignment{"0", "1"}
	b := Bound{R: 1, P: Polynomial{0, 1}}
	d := BoundedDomain(g, id, b, 2)
	for _, l := range d.MaxLen {
		if l != 2 {
			t.Fatalf("cap not applied: %v", d.MaxLen)
		}
	}
}

func TestEmpty(t *testing.T) {
	t.Parallel()
	e := Empty(3)
	if len(e) != 3 || e[0] != "" {
		t.Fatal("Empty wrong")
	}
}
