package obs

import (
	"strings"
	"testing"
	"time"
)

// FuzzTraceparent pins the header parser's two contracts: malformed
// input never panics, and whatever the parser accepts round-trips
// into a well-formed trace (invalid input yields a fresh one).
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add("")
	f.Add("garbage")
	f.Add("00-" + strings.Repeat("g", 32) + "-00f067aa0ba902b7-01")
	f.Add(strings.Repeat("-", 60))

	clk := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tc := NewTracer(TracerConfig{Now: func() time.Time { return clk }, RingSize: 2})

	f.Fuzz(func(t *testing.T, s string) {
		tp, ok := ParseTraceparent(s)
		if ok {
			// Accepted headers carry structurally valid ids.
			if len(tp.TraceID) != 32 || !isLowerHex(tp.TraceID) || allZero(tp.TraceID) {
				t.Fatalf("accepted bad trace id %q from %q", tp.TraceID, s)
			}
			if len(tp.SpanID) != 16 || !isLowerHex(tp.SpanID) || allZero(tp.SpanID) {
				t.Fatalf("accepted bad span id %q from %q", tp.SpanID, s)
			}
			if _, ok := ParseTraceparent(FormatTraceparent(tp.TraceID, tp.SpanID)); !ok {
				t.Fatalf("re-formatted header does not re-parse: %q", s)
			}
		}
		// Arbitrary input must always produce a usable trace: adopted
		// when valid, fresh when not — never a panic, never a bad id.
		tr := tc.Start(s)
		if len(tr.ID()) != 32 || !isLowerHex(tr.ID()) || allZero(tr.ID()) {
			t.Fatalf("trace id malformed for input %q: %q", s, tr.ID())
		}
		if ok && tr.ID() != tp.TraceID {
			t.Fatalf("valid header not adopted: %q", s)
		}
		if !ok && strings.Contains(s, tr.ID()) && len(s) >= 32 {
			// A fresh id colliding with 32 chars of the rejected input is
			// astronomically unlikely; flag it as a parser confusion.
			t.Fatalf("fresh trace id %q taken from invalid input %q", tr.ID(), s)
		}
	})
}
