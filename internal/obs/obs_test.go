package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"log/slog"
)

// fakeClock is a hand-advanced clock: deterministic span timings.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid header rejected: %s", valid)
	}
	if tp.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tp.SpanID != "00f067aa0ba902b7" ||
		tp.Version != "00" || tp.Flags != "01" {
		t.Fatalf("parsed fields wrong: %+v", tp)
	}

	invalid := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // version 00 with trailing junk
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // all-zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
	}
	for _, s := range invalid {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("invalid header accepted: %q", s)
		}
	}

	// Future versions: exact 55 chars parse, "-"-suffixed extra data
	// parses, glued extra data does not.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future version rejected: %q", future)
	}
	if _, ok := ParseTraceparent(future + "-extra"); !ok {
		t.Errorf("future version with suffix rejected")
	}
	if _, ok := ParseTraceparent(future + "extra"); ok {
		t.Errorf("future version with glued junk accepted")
	}

	if got := FormatTraceparent(tp.TraceID, tp.SpanID); got != valid {
		t.Fatalf("FormatTraceparent round-trip: got %q want %q", got, valid)
	}
}

func TestTraceAdoptsInboundContext(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(TracerConfig{Now: clk.now}).Start("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if tr.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("inbound trace id not adopted: %s", tr.ID())
	}
	out, ok := ParseTraceparent(tr.Traceparent())
	if !ok || out.TraceID != tr.ID() {
		t.Fatalf("outbound traceparent broken: %q", tr.Traceparent())
	}
	if out.SpanID == "00f067aa0ba902b7" {
		t.Fatalf("outbound parent must be our root span, not the inbound one")
	}
}

func TestTraceFreshOnInvalidHeader(t *testing.T) {
	clk := newFakeClock()
	tc := NewTracer(TracerConfig{Now: clk.now})
	a, b := tc.Start("garbage"), tc.Start("")
	for _, tr := range []*Trace{a, b} {
		if len(tr.ID()) != 32 || !isLowerHex(tr.ID()) || allZero(tr.ID()) {
			t.Fatalf("fresh trace id malformed: %q", tr.ID())
		}
	}
	if a.ID() == b.ID() {
		t.Fatalf("two fresh traces share an id")
	}
}

func TestSpansFeedRingAndHistograms(t *testing.T) {
	clk := newFakeClock()
	tc := NewTracer(TracerConfig{Now: clk.now, RingSize: 4})
	tr := tc.Start("")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatalf("context round-trip lost the trace")
	}

	sp := StartSpan(ctx, PhaseEngine)
	clk.advance(30 * time.Millisecond)
	sp.End()
	clk.advance(10 * time.Millisecond)
	tr.Finish("POST /v1/verify", 200)

	recs := tc.Traces(0, "")
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Route != "POST /v1/verify" || rec.Status != 200 || rec.Trace != tr.ID() {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if rec.DurationMS != 40 {
		t.Fatalf("trace duration = %v ms, want 40", rec.DurationMS)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Phase != PhaseEngine ||
		rec.Spans[0].StartMS != 0 || rec.Spans[0].DurationMS != 30 {
		t.Fatalf("span record wrong: %+v", rec.Spans)
	}

	// The span must have landed in the engine phase histogram.
	var engine *PhaseStats
	for _, ps := range tc.PhaseStats() {
		if ps.Phase == PhaseEngine {
			engine = &ps
			break
		}
	}
	if engine == nil || engine.Count != 1 || engine.SumSeconds != 0.03 {
		t.Fatalf("engine histogram wrong: %+v", engine)
	}
	if p50, ok := tc.P50(PhaseEngine); !ok || p50 != 0.1 {
		// 30ms falls in the (0.025, 0.1] bucket; P50 reports its bound.
		t.Fatalf("P50 = %v/%v, want 0.1/true", p50, ok)
	}
	if _, ok := tc.P50(PhaseCache); ok {
		t.Fatalf("P50 on empty phase must report !ok")
	}
}

func TestAllCanonicalPhasesPreRegistered(t *testing.T) {
	tc := NewTracer(TracerConfig{Now: newFakeClock().now})
	have := map[string]bool{}
	for _, ps := range tc.PhaseStats() {
		have[ps.Phase] = true
		if len(ps.Buckets) != len(PhaseBuckets)+1 {
			t.Fatalf("phase %s has %d buckets", ps.Phase, len(ps.Buckets))
		}
		if ps.Buckets[len(ps.Buckets)-1].LE != "+Inf" {
			t.Fatalf("phase %s last bucket LE = %q", ps.Phase, ps.Buckets[len(ps.Buckets)-1].LE)
		}
	}
	for _, want := range Phases() {
		if !have[want] {
			t.Fatalf("phase %s not pre-registered", want)
		}
	}
}

func TestRingBoundAndFilters(t *testing.T) {
	clk := newFakeClock()
	tc := NewTracer(TracerConfig{Now: clk.now, RingSize: 3})
	routes := []string{"a", "b", "a", "c", "a"}
	ids := make([]string, len(routes))
	for i, route := range routes {
		tr := tc.Start("")
		ids[i] = tr.ID()
		tr.Finish(route, 200)
	}
	recs := tc.Traces(0, "")
	if len(recs) != 3 {
		t.Fatalf("ring retained %d, want 3", len(recs))
	}
	// Newest first: the last three finishes, reversed.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if recs[i].Trace != want {
			t.Fatalf("ring order wrong at %d: %+v", i, recs)
		}
	}
	if recs := tc.Traces(1, ""); len(recs) != 1 || recs[0].Trace != ids[4] {
		t.Fatalf("limit=1 wrong: %+v", recs)
	}
	if recs := tc.Traces(0, "a"); len(recs) != 2 || recs[0].Trace != ids[4] || recs[1].Trace != ids[2] {
		t.Fatalf("route filter wrong: %+v", recs)
	}
}

func TestSpanCapCountsDropped(t *testing.T) {
	clk := newFakeClock()
	tc := NewTracer(TracerConfig{Now: clk.now})
	tr := tc.Start("")
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < maxSpans+7; i++ {
		sp := StartSpan(ctx, PhaseCache)
		sp.End()
	}
	tr.Finish("b", 200)
	rec := tc.Traces(1, "")[0]
	if len(rec.Spans) != maxSpans || rec.DroppedSpans != 7 {
		t.Fatalf("spans=%d dropped=%d, want %d/7", len(rec.Spans), rec.DroppedSpans, maxSpans)
	}
	// Dropped spans still count in the histogram.
	for _, ps := range tc.PhaseStats() {
		if ps.Phase == PhaseCache && ps.Count != uint64(maxSpans+7) {
			t.Fatalf("cache histogram count = %d, want %d", ps.Count, maxSpans+7)
		}
	}
}

func TestRequestLogLineAndSlowPromotion(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tc := NewTracer(TracerConfig{Now: clk.now, Logger: logger, SlowRequest: 100 * time.Millisecond})

	// Fast request: one INFO line, no span dump.
	tr := tc.Start("")
	ctx := NewContext(context.Background(), tr)
	sp := StartSpan(ctx, PhaseEngine)
	clk.advance(20 * time.Millisecond)
	sp.End()
	tr.Finish("POST /v1/verify", 200)

	line := buf.String()
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one log line, got: %q", line)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if entry["level"] != "INFO" || entry["trace"] != tr.ID() ||
		entry["route"] != "POST /v1/verify" || entry["status"] != float64(200) {
		t.Fatalf("log fields wrong: %v", entry)
	}
	if ph, _ := entry["phases"].(string); !strings.Contains(ph, "engine=20.000ms") {
		t.Fatalf("phase breakdown wrong: %v", entry["phases"])
	}
	if _, hasSpans := entry["spans"]; hasSpans {
		t.Fatalf("fast request must not dump spans")
	}

	// Slow request: WARN with the span dump.
	buf.Reset()
	tr = tc.Start("")
	clk.advance(250 * time.Millisecond)
	tr.Finish("POST /v1/verify", 200)
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v", err)
	}
	if entry["level"] != "WARN" || entry["msg"] != "slow request" {
		t.Fatalf("slow request not promoted: %v", entry)
	}
	if _, hasSpans := entry["spans"]; !hasSpans {
		t.Fatalf("slow request must dump spans")
	}
}

func TestNilSafety(t *testing.T) {
	var tc *Tracer
	if tr := tc.Start("whatever"); tr != nil {
		t.Fatalf("nil tracer must start nil traces")
	}
	var tr *Trace
	if tr.ID() != "" || tr.Traceparent() != "" {
		t.Fatalf("nil trace ids must be empty")
	}
	tr.Finish("r", 200) // must not panic
	sp := StartSpan(context.Background(), PhaseEngine)
	if sp != (Span{}) {
		t.Fatalf("span without a trace must be the inert zero Span")
	}
	sp.End() // must not panic
	tc.Observe(PhaseEngine, time.Second)
	if tc.PhaseStats() != nil || tc.Traces(0, "") != nil {
		t.Fatalf("nil tracer snapshots must be nil")
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatalf("nil trace must not be stored in the context")
	}
}
