package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds how many spans one trace retains; beyond it spans
// still feed the phase histograms but are counted as dropped instead
// of stored (a batch over thousands of graphs must not make its own
// trace record unbounded).
const maxSpans = 64

// SpanRecord is one completed span as stored on its trace: phase
// name, offset from the trace start, and duration, both in
// milliseconds (the natural unit at request scale, and what the
// debug ring serves as JSON).
type SpanRecord struct {
	Phase      string  `json:"phase"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// TraceRecord is one completed trace as retained by the ring.
type TraceRecord struct {
	// Trace is the 32-hex W3C trace id; Span is this service's root
	// span id (what an upstream would see as parent of our work), and
	// ParentSpan is the inbound parent id when the trace was adopted
	// from a traceparent header.
	Trace      string       `json:"trace"`
	Span       string       `json:"span"`
	ParentSpan string       `json:"parent_span,omitempty"`
	Route      string       `json:"route"`
	Status     int          `json:"status"`
	Start      time.Time    `json:"start"`
	DurationMS float64      `json:"duration_ms"`
	Spans      []SpanRecord `json:"spans,omitempty"`
	// DroppedSpans counts spans beyond the retention bound; they are
	// still observed in the phase histograms.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// Slow marks traces that crossed the slow-request threshold (the
	// ones the logger promoted to WARN).
	Slow bool `json:"slow,omitempty"`
}

// Trace is one request's in-flight trace. It is created by
// Tracer.Start, carried in the context, appended to by spans from
// any layer (mutex-guarded: batch items span concurrently), and
// sealed by Finish.
type Trace struct {
	tracer *Tracer
	id     string // 32 lowercase hex
	span   string // our root span id, 16 lowercase hex
	parent string // inbound parent span id, "" when fresh
	start  time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	sealed  bool
	// arr backs the first few spans inline so a typical request records
	// its spans with zero extra allocations; past cap the slice spills
	// to the heap as usual.
	arr [8]SpanRecord
}

// Start opens a trace. traceparent is the raw inbound header value:
// a valid one is adopted (same trace id, its parent-id recorded, a
// fresh root span id generated), anything else — including absence —
// starts a fresh trace. A nil Tracer returns a nil Trace, and every
// method on a nil Trace is a no-op, so callers never branch.
func (t *Tracer) Start(traceparent string) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{tracer: t, span: randHex(8), start: t.now()}
	if tp, ok := ParseTraceparent(traceparent); ok {
		tr.id = tp.TraceID
		tr.parent = tp.SpanID
	} else {
		tr.id = randHex(16)
	}
	return tr
}

// ID returns the 32-hex trace id ("" on nil), what X-Lph-Trace and
// the error bodies echo.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Traceparent renders the outbound header value for the next hop:
// same trace id, this service's root span as parent.
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	return FormatTraceparent(tr.id, tr.span)
}

// add appends one completed span and feeds the phase histogram.
func (tr *Trace) add(phase string, start time.Time, end time.Time) {
	d := end.Sub(start)
	tr.tracer.Observe(phase, d)
	tr.mu.Lock()
	switch {
	case tr.sealed:
		// A span that ends after Finish (detached work outliving the
		// response) must not mutate the record already pushed to the
		// ring; it still counted in the histograms above.
	case len(tr.spans) < maxSpans:
		if tr.spans == nil {
			tr.spans = tr.arr[:0]
		}
		tr.spans = append(tr.spans, SpanRecord{
			Phase:      phase,
			StartMS:    clampMS(start.Sub(tr.start)),
			DurationMS: clampMS(d),
		})
	default:
		tr.dropped++
	}
	tr.mu.Unlock()
}

// Finish seals the trace: computes the total duration, pushes the
// record onto the ring, and emits the request log line (WARN with
// the span dump when the slow threshold is crossed). Call exactly
// once, after the response is written. The route is the mux pattern
// ("POST /v1/verify"), which carries the method.
func (tr *Trace) Finish(route string, status int) {
	if tr == nil {
		return
	}
	if route == "" {
		route = "unmatched"
	}
	t := tr.tracer
	dur := t.now().Sub(tr.start)
	if dur < 0 {
		dur = 0
	}
	tr.mu.Lock()
	spans := tr.spans
	tr.spans = nil
	dropped := tr.dropped
	tr.sealed = true
	tr.mu.Unlock()
	rec := TraceRecord{
		Trace:        tr.id,
		Span:         tr.span,
		ParentSpan:   tr.parent,
		Route:        route,
		Status:       status,
		Start:        tr.start,
		DurationMS:   clampMS(dur),
		Spans:        spans,
		DroppedSpans: dropped,
		Slow:         t.slow > 0 && dur >= t.slow,
	}
	t.ring.push(rec)
	if t.logger == nil {
		return
	}
	// Five attrs on purpose: that is slog.Record's inline capacity, so
	// the hot-path INFO line copies without an overflow allocation. The
	// method is not a separate attr — the route pattern carries it.
	attrs := []slog.Attr{
		slog.String("trace", tr.id),
		slog.String("route", route),
		slog.Int("status", status),
		slog.Float64("duration_ms", rec.DurationMS),
		slog.String("phases", phaseBreakdown(spans)),
	}
	level := slog.LevelInfo
	msg := "request"
	if rec.Slow {
		// Past the slow threshold the one-liner is not enough: promote
		// to WARN and attach the full span dump for offline reading.
		level = slog.LevelWarn
		msg = "slow request"
		attrs = append(attrs, slog.Any("spans", spans), slog.Int("dropped_spans", dropped))
	}
	t.logger.LogAttrs(context.Background(), level, msg, attrs...)
}

// phaseBreakdown aggregates span durations per phase into the
// compact "engine=3.2ms cache=0.1ms" form the one-line log carries,
// phases in first-seen order.
func phaseBreakdown(spans []SpanRecord) string {
	if len(spans) == 0 {
		return ""
	}
	// Aggregated by linear scan over a small fixed-capacity slice: the
	// phase vocabulary is ~9 entries, and avoiding a map keeps the
	// per-request log line off the allocator's hot path.
	type agg struct {
		phase string
		ms    float64
	}
	totals := make([]agg, 0, 12)
	for _, sp := range spans {
		found := false
		for i := range totals {
			if totals[i].phase == sp.Phase {
				totals[i].ms += sp.DurationMS
				found = true
				break
			}
		}
		if !found {
			totals = append(totals, agg{phase: sp.Phase, ms: sp.DurationMS})
		}
	}
	buf := make([]byte, 0, 128)
	for i, t := range totals {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, t.phase...)
		buf = append(buf, '=')
		buf = strconv.AppendFloat(buf, t.ms, 'f', 3, 64)
		buf = append(buf, "ms"...)
	}
	return string(buf)
}

// Span is one in-flight phase measurement. A value type on purpose:
// starting a span on the hot path costs zero heap allocations, and
// the zero Span (no trace in the context) is valid and inert.
type Span struct {
	tr    *Trace
	phase string
	start time.Time
}

// StartSpan opens a span for the phase against the trace carried in
// ctx; returns the inert zero Span when the context has none. Every
// call must be matched by End on all paths — the spanend analyzer
// enforces it.
func StartSpan(ctx context.Context, phase string) Span {
	tr := FromContext(ctx)
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, phase: phase, start: tr.tracer.now()}
}

// End seals the span: records it on its trace and feeds the phase
// histogram. No-op on the zero Span; calling twice records twice —
// don't.
func (sp Span) End() {
	if sp.tr == nil {
		return
	}
	sp.tr.add(sp.phase, sp.start, sp.tr.tracer.now())
}

// ctxKey carries the trace through context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying the trace.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// clampMS renders a duration in (non-negative) milliseconds.
func clampMS(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return float64(d) / float64(time.Millisecond)
}

// randHex returns 2n lowercase hex chars of entropy (n <= 16). Reads
// are served from a buffered pool refilled from crypto/rand in bulk —
// one syscall per ~48 ids instead of one per id — and the scratch
// space is fixed-size stack arrays, so each id costs exactly one
// allocation (the returned string). The fallback counter keeps ids
// unique (not unguessable) if the system entropy source ever fails
// mid-flight.
func randHex(n int) string {
	var raw [16]byte
	var out [32]byte
	src := raw[:n]
	entropy.mu.Lock()
	if entropy.off+n > len(entropy.buf) {
		if _, err := rand.Read(entropy.buf); err != nil {
			entropy.mu.Unlock()
			v := fallback.Add(1)
			for i := range src {
				src[i] = byte(v >> (8 * (uint(i) % 8)))
			}
			src[0] |= 1 // never all-zero: all-zero ids are invalid in W3C terms
			hex.Encode(out[:2*n], src)
			return string(out[:2*n])
		}
		entropy.off = 0
	}
	copy(src, entropy.buf[entropy.off:])
	entropy.off += n
	entropy.mu.Unlock()
	hex.Encode(out[:2*n], src)
	return string(out[:2*n])
}

var entropy = struct {
	mu  sync.Mutex
	buf []byte
	off int
}{buf: make([]byte, 768), off: 768} // off at the end forces the first refill

var fallback atomic.Uint64

// ring is the bounded completed-trace buffer: a fixed slice written
// round-robin, snapshot newest-first.
type ring struct {
	mu   sync.Mutex
	recs []TraceRecord
	next int
	full bool
}

func newRing(size int) *ring {
	return &ring{recs: make([]TraceRecord, size)}
}

func (r *ring) push(rec TraceRecord) {
	r.mu.Lock()
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot returns up to limit records newest-first, optionally
// filtered by exact route pattern; limit <= 0 means no limit.
func (r *ring) snapshot(limit int, route string) []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.recs)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + len(r.recs)) % len(r.recs)
		rec := r.recs[idx]
		if rec.Trace == "" {
			continue
		}
		if route != "" && rec.Route != route {
			continue
		}
		out = append(out, rec)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}
