package obs

// W3C Trace Context traceparent handling. The wire form is
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -  32 lhex   -   16 lhex   -   2 lhex
//
// Parsing is strict where the spec is strict — lowercase hex only,
// all-zero trace or parent ids invalid, version ff invalid, version
// 00 admits no trailing data — and lenient where it mandates
// leniency: an unknown (higher) version parses as long as the 00
// prefix structure holds, ignoring any "-"-prefixed suffix, so this
// layer keeps interoperating when upstreams move to version 01.
// Invalid input is never an error surface: the caller starts a fresh
// trace (FuzzTraceparent pins "malformed never panics, invalid →
// fresh trace").

// Traceparent is a parsed traceparent header.
type Traceparent struct {
	Version string // 2 lhex
	TraceID string // 32 lhex, not all zero
	SpanID  string // 16 lhex, not all zero; the inbound parent id
	Flags   string // 2 lhex
}

// ParseTraceparent parses a raw header value; ok is false for
// anything that does not conform (including the empty string).
func ParseTraceparent(s string) (tp Traceparent, ok bool) {
	// Fixed layout: 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 chars minimum.
	if len(s) < 55 {
		return Traceparent{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return Traceparent{}, false
	}
	version, traceID, spanID, flags := s[0:2], s[3:35], s[36:52], s[53:55]
	if !isLowerHex(version) || !isLowerHex(traceID) || !isLowerHex(spanID) || !isLowerHex(flags) {
		return Traceparent{}, false
	}
	if version == "ff" || allZero(traceID) || allZero(spanID) {
		return Traceparent{}, false
	}
	switch {
	case len(s) == 55:
		// Exact fit: valid for every version.
	case version == "00":
		// Version 00 defines nothing past the flags.
		return Traceparent{}, false
	case s[55] != '-':
		// Future versions may append "-"-separated fields; anything
		// else glued to the flags is malformed.
		return Traceparent{}, false
	}
	return Traceparent{Version: version, TraceID: traceID, SpanID: spanID, Flags: flags}, true
}

// FormatTraceparent renders a version-00 header with the sampled
// flag set — every trace this service completes lands in the ring,
// so its outbound context is always "sampled".
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
