// Package obs is the request-scoped tracing layer: every request the
// service front end serves gets a Trace (fresh, or adopted from an
// inbound W3C traceparent header), the trace rides the
// context.Context through service → jobs → journal, and the layers
// mark their phases with spans — shed wait, cache lookup, Prepare,
// memo, engine evaluation, journal append/fsync, job queue wait and
// run. One Tracer owns all the derived views so they cannot drift
// from each other:
//
//   - a bounded ring of completed traces (GET /v1/debug/traces),
//   - one structured slog line per request (promoted to WARN with the
//     full span dump past the slow-request threshold),
//   - per-phase cumulative latency histograms, surfaced through the
//     service Snapshot() into /v1/stats and /metrics as
//     lphd_phase_duration_seconds{phase=...}.
//
// The clock is injectable (clockinject-compliant): production uses
// time.Now, tests inject a fake and get deterministic span timings.
// Spans are cheap and zero-safe — StartSpan on a context without a
// trace returns the inert zero Span (a value, no allocation), and
// End on it is a no-op — so the instrumented layers never branch on
// whether tracing is on. The
// spanend analyzer in internal/lint enforces that every Start* call
// is matched by End on all paths.
package obs

import (
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Canonical phase names. The Tracer pre-registers all of them so the
// phase histograms appear in /metrics from the first scrape, before
// any request has run.
const (
	PhaseShedWait      = "shed_wait"      // bounded wait for worker budget
	PhaseCache         = "cache"          // Prepared-cache lookup (hit or fill)
	PhasePrepare       = "prepare"        // graph preparation on a cache miss
	PhaseMemo          = "memo"           // request-level memo lookup + fill
	PhaseEngine        = "engine"         // game evaluation proper
	PhaseJournalAppend = "journal_append" // whole journal append (frame + fsync)
	PhaseJournalFsync  = "journal_fsync"  // the fsync inside the append
	PhaseQueueWait     = "queue_wait"     // async job: submit → worker pickup
	PhaseJobRun        = "job_run"        // async job: body execution
)

// Phases returns the canonical phase names in a fixed order.
func Phases() []string {
	return []string{
		PhaseShedWait, PhaseCache, PhasePrepare, PhaseMemo, PhaseEngine,
		PhaseJournalAppend, PhaseJournalFsync, PhaseQueueWait, PhaseJobRun,
	}
}

// PhaseBuckets are the per-phase histogram upper bounds in seconds;
// the implicit final bucket is +Inf. Finer than the request-level
// buckets at the fast end: individual phases (cache hit, fsync) are
// microseconds-to-milliseconds where whole requests are not.
var PhaseBuckets = []float64{0.0001, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Bucket is one cumulative histogram bucket, LE rendered the way
// Prometheus renders it ("0.005", "+Inf").
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// PhaseStats is the cumulative latency histogram of one phase.
type PhaseStats struct {
	Phase      string   `json:"phase"`
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
}

// phaseHist is the live (non-cumulative) histogram behind PhaseStats.
type phaseHist struct {
	buckets []uint64 // len(PhaseBuckets)+1, last is +Inf
	sum     float64
	count   uint64
}

func newPhaseHist() *phaseHist {
	return &phaseHist{buckets: make([]uint64, len(PhaseBuckets)+1)}
}

func (h *phaseHist) observe(secs float64) {
	i := sort.SearchFloat64s(PhaseBuckets, secs)
	h.buckets[i]++
	h.sum += secs
	h.count++
}

// TracerConfig configures a Tracer. The zero value is usable: wall
// clock, 128-trace ring, no logger, no slow threshold.
type TracerConfig struct {
	// Now is the injectable clock; nil means time.Now.
	Now func() time.Time
	// RingSize bounds the completed-trace ring; <= 0 means 128.
	RingSize int
	// Logger, when non-nil, gets one structured line per finished
	// trace (INFO, or WARN with the span dump past SlowRequest).
	Logger *slog.Logger
	// SlowRequest promotes traces at least this long to WARN with the
	// full span dump attached; 0 disables the promotion.
	SlowRequest time.Duration
}

// Tracer owns the trace lifecycle and every derived view: the
// completed-trace ring, the per-phase histograms, and the request
// log. One Tracer per Server.
type Tracer struct {
	now  func() time.Time
	ring *ring

	logger *slog.Logger
	slow   time.Duration

	mu     sync.Mutex
	phases map[string]*phaseHist
}

// NewTracer builds a Tracer; all canonical phases are pre-registered
// so their histograms render even before the first observation.
func NewTracer(cfg TracerConfig) *Tracer {
	now := cfg.Now
	if now == nil {
		now = time.Now //lint:wallclock production default; tests inject cfg.Now
	}
	size := cfg.RingSize
	if size <= 0 {
		size = 128
	}
	t := &Tracer{
		now:    now,
		ring:   newRing(size),
		logger: cfg.Logger,
		slow:   cfg.SlowRequest,
		phases: make(map[string]*phaseHist, len(Phases())),
	}
	for _, p := range Phases() {
		t.phases[p] = newPhaseHist()
	}
	return t
}

// Observe records one phase duration into the per-phase histogram.
// Unknown phases register lazily; negative durations clamp to zero
// (the injected clock may be frozen).
func (t *Tracer) Observe(phase string, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	h := t.phases[phase]
	if h == nil {
		h = newPhaseHist()
		t.phases[phase] = h
	}
	h.observe(d.Seconds())
	t.mu.Unlock()
}

// PhaseStats snapshots every phase histogram, cumulative buckets,
// sorted by phase name (deterministic exposition order).
func (t *Tracer) PhaseStats() []PhaseStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.phases))
	for name := range t.phases {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PhaseStats, 0, len(names))
	for _, name := range names {
		h := t.phases[name]
		st := PhaseStats{
			Phase:      name,
			Count:      h.count,
			SumSeconds: h.sum,
			Buckets:    make([]Bucket, len(h.buckets)),
		}
		cum := uint64(0)
		for i, c := range h.buckets {
			cum += c
			le := "+Inf"
			if i < len(PhaseBuckets) {
				le = strconv.FormatFloat(PhaseBuckets[i], 'g', -1, 64)
			}
			st.Buckets[i] = Bucket{LE: le, Count: cum}
		}
		out = append(out, st)
	}
	return out
}

// P50 estimates the phase's median latency in seconds as the upper
// bound of the cumulative bucket the median falls in — a safe
// (pessimistic within one bucket) hint for Retry-After. ok is false
// while the phase has no observations. A median in the +Inf bucket
// reports the largest finite bound.
func (t *Tracer) P50(phase string) (secs float64, ok bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.phases[phase]
	if h == nil || h.count == 0 {
		return 0, false
	}
	half := (h.count + 1) / 2
	cum := uint64(0)
	for i, c := range h.buckets {
		cum += c
		if cum >= half {
			if i < len(PhaseBuckets) {
				return PhaseBuckets[i], true
			}
			return PhaseBuckets[len(PhaseBuckets)-1], true
		}
	}
	return PhaseBuckets[len(PhaseBuckets)-1], true
}

// Traces returns up to limit completed traces, newest first,
// optionally filtered to one route pattern. limit <= 0 means all
// retained.
func (t *Tracer) Traces(limit int, route string) []TraceRecord {
	if t == nil {
		return nil
	}
	return t.ring.snapshot(limit, route)
}
