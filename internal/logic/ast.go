// Package logic implements the logical formalism of Section 5 of the
// paper: first-order logic FO, its bounded fragment BF (quantification only
// relative to already-fixed elements, ∃x −⇀↽− y), local first-order logic
// LFO (a single outer ∀x over a BF body), and the (local) second-order
// hierarchies obtained by prefixing blocks of second-order quantifiers.
//
// Formulas are evaluated on the relational structures of package structure
// (in particular on structural representations $G of labeled graphs), with
// second-order quantification resolved by exhaustive enumeration over
// configurable universes — exactly the locality-based restriction that the
// paper's proofs exploit (certificates encode only locally relevant parts
// of each relation; cf. Theorem 15 and Proposition 31).
package logic

import (
	"fmt"
	"strings"
)

// Var is a first-order variable.
type Var string

// Formula is a node of the formula AST. The constructors mirror Table 1.
type Formula interface {
	fmt.Stringer
	formula()
}

// Unary is ⊙_i x (line 1 of Table 1).
type Unary struct {
	I int // 1-based relation index
	X Var
}

// Edge is x ⇀_i y (line 2).
type Edge struct {
	I    int
	X, Y Var
}

// Eq is x ≐ y (line 3).
type Eq struct{ X, Y Var }

// Atom is R(x1,…,xk) (line 4), with R a second-order variable name.
type Atom struct {
	R    string
	Args []Var
}

// Not is ¬φ (line 5).
type Not struct{ F Formula }

// Or is φ1 ∨ φ2 (line 6).
type Or struct{ L, R Formula }

// And is φ1 ∧ φ2 (derived connective).
type And struct{ L, R Formula }

// Exists is unbounded ∃x φ (line 7). Not part of BF.
type Exists struct {
	X Var
	F Formula
}

// ExistsB is bounded ∃x −⇀↽− y φ (line 8): x ranges over elements connected
// to y by some binary relation or its inverse. Requires x ≠ y.
type ExistsB struct {
	X, Y Var
	F    Formula
}

// Forall is unbounded ∀x φ (derived).
type Forall struct {
	X Var
	F Formula
}

// ForallB is bounded ∀x −⇀↽− y φ (derived).
type ForallB struct {
	X, Y Var
	F    Formula
}

// SO is second-order quantification Qe R φ (line 9 and its dual), where R
// is a relation variable of the given arity.
type SO struct {
	Existential bool
	R           string
	Arity       int
	F           Formula
}

// Truth is a truth constant (⊤ or ⊥).
type Truth bool

func (Unary) formula()   {}
func (Edge) formula()    {}
func (Eq) formula()      {}
func (Atom) formula()    {}
func (Not) formula()     {}
func (Or) formula()      {}
func (And) formula()     {}
func (Exists) formula()  {}
func (ExistsB) formula() {}
func (Forall) formula()  {}
func (ForallB) formula() {}
func (SO) formula()      {}
func (Truth) formula()   {}

func (f Unary) String() string { return fmt.Sprintf("⊙%d %s", f.I, f.X) }
func (f Edge) String() string  { return fmt.Sprintf("%s ⇀%d %s", f.X, f.I, f.Y) }
func (f Eq) String() string    { return fmt.Sprintf("%s ≐ %s", f.X, f.Y) }
func (f Atom) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = string(a)
	}
	return fmt.Sprintf("%s(%s)", f.R, strings.Join(args, ","))
}
func (f Not) String() string     { return "¬" + paren(f.F) }
func (f Or) String() string      { return paren(f.L) + " ∨ " + paren(f.R) }
func (f And) String() string     { return paren(f.L) + " ∧ " + paren(f.R) }
func (f Exists) String() string  { return fmt.Sprintf("∃%s %s", f.X, paren(f.F)) }
func (f ExistsB) String() string { return fmt.Sprintf("∃%s−⇀↽−%s %s", f.X, f.Y, paren(f.F)) }
func (f Forall) String() string  { return fmt.Sprintf("∀%s %s", f.X, paren(f.F)) }
func (f ForallB) String() string { return fmt.Sprintf("∀%s−⇀↽−%s %s", f.X, f.Y, paren(f.F)) }
func (f SO) String() string {
	q := "∃"
	if !f.Existential {
		q = "∀"
	}
	return fmt.Sprintf("%s%s/%d %s", q, f.R, f.Arity, paren(f.F))
}
func (f Truth) String() string {
	if f {
		return "⊤"
	}
	return "⊥"
}

func paren(f Formula) string {
	switch f.(type) {
	case Unary, Eq, Atom, Not, Truth, Edge:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Convenience constructors.

// Implies builds φ → ψ as ¬φ ∨ ψ.
func Implies(a, b Formula) Formula { return Or{L: Not{F: a}, R: b} }

// Iff builds φ ↔ ψ.
func Iff(a, b Formula) Formula {
	return And{L: Implies(a, b), R: Implies(b, a)}
}

// Neq builds x ≠ y.
func Neq(x, y Var) Formula { return Not{F: Eq{X: x, Y: y}} }

// BigAnd conjoins formulas (⊤ for none).
func BigAnd(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth(true)
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = And{L: out, R: f}
	}
	return out
}

// BigOr disjoins formulas (⊥ for none).
func BigOr(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth(false)
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = Or{L: out, R: f}
	}
	return out
}

// ExistsWithin builds the shorthand ∃x ≤r−⇀↽− y φ of Section 5.1: an
// element x within distance r of y satisfies φ. It expands inductively:
//
//	∃x ≤0−⇀↽−y φ  ≡  φ[x↦y]
//	∃x ≤r+1−⇀↽−y φ ≡ ∃x ≤r−⇀↽−y (φ ∨ ∃x′−⇀↽−x φ[x↦x′])
//
// The implementation produces an equivalent right-linear expansion.
func ExistsWithin(x Var, r int, y Var, f Formula) Formula {
	if r == 0 {
		return Substitute(f, x, y)
	}
	inner := Or{
		L: f,
		R: ExistsB{X: x + "'", Y: x, F: Substitute(f, x, x+"'")},
	}
	return ExistsWithin(x, r-1, y, inner)
}

// ForallWithin is the universal dual of ExistsWithin.
func ForallWithin(x Var, r int, y Var, f Formula) Formula {
	return Not{F: ExistsWithin(x, r, y, Not{F: f})}
}

// Substitute returns f with every free occurrence of x replaced by y.
// Quantifiers binding x shadow the substitution.
func Substitute(f Formula, x, y Var) Formula {
	sub := func(v Var) Var {
		if v == x {
			return y
		}
		return v
	}
	switch g := f.(type) {
	case Unary:
		return Unary{I: g.I, X: sub(g.X)}
	case Edge:
		return Edge{I: g.I, X: sub(g.X), Y: sub(g.Y)}
	case Eq:
		return Eq{X: sub(g.X), Y: sub(g.Y)}
	case Atom:
		args := make([]Var, len(g.Args))
		for i, a := range g.Args {
			args[i] = sub(a)
		}
		return Atom{R: g.R, Args: args}
	case Not:
		return Not{F: Substitute(g.F, x, y)}
	case Or:
		return Or{L: Substitute(g.L, x, y), R: Substitute(g.R, x, y)}
	case And:
		return And{L: Substitute(g.L, x, y), R: Substitute(g.R, x, y)}
	case Exists:
		if g.X == x {
			return g
		}
		return Exists{X: g.X, F: Substitute(g.F, x, y)}
	case ExistsB:
		if g.X == x {
			return ExistsB{X: g.X, Y: sub(g.Y), F: g.F}
		}
		return ExistsB{X: g.X, Y: sub(g.Y), F: Substitute(g.F, x, y)}
	case Forall:
		if g.X == x {
			return g
		}
		return Forall{X: g.X, F: Substitute(g.F, x, y)}
	case ForallB:
		if g.X == x {
			return ForallB{X: g.X, Y: sub(g.Y), F: g.F}
		}
		return ForallB{X: g.X, Y: sub(g.Y), F: Substitute(g.F, x, y)}
	case SO:
		return SO{Existential: g.Existential, R: g.R, Arity: g.Arity, F: Substitute(g.F, x, y)}
	case Truth:
		return g
	default:
		panic(fmt.Sprintf("logic: unknown formula type %T", f))
	}
}
