package logic

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/structure"
)

func rep(g *graph.Graph) *structure.Rep { return structure.NewRep(g) }

func forEachLabeling(g *graph.Graph, f func(*graph.Graph)) {
	for mask := uint(0); mask < 1<<uint(g.N()); mask++ {
		f(g.MustWithLabels(graph.BitLabels(g.N(), mask)))
	}
}

func TestIsNodeAndBits(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"01", "1"})
	r := rep(g)
	asn := NewAssignment()
	check := func(f Formula, elem int, want bool) {
		t.Helper()
		asn.FO["x"] = elem
		got, err := Eval(r.Structure, f, asn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v at element %d = %v, want %v", f, elem, got, want)
		}
	}
	check(IsNode("x"), r.NodeElem(0), true)
	check(IsNode("x"), r.BitElem(0, 0), false)
	check(IsBit0("x"), r.BitElem(0, 0), true)
	check(IsBit1("x"), r.BitElem(0, 1), true)
	check(IsBit1("x"), r.BitElem(0, 0), false)
	check(IsBit0("x"), r.NodeElem(0), false)
}

func TestIsSelected(t *testing.T) {
	t.Parallel()
	g := graph.Path(3).MustWithLabels([]string{"1", "0", "11"})
	r := rep(g)
	asn := NewAssignment()
	want := []bool{true, false, false}
	for u := 0; u < 3; u++ {
		asn.FO["x"] = r.NodeElem(u)
		got, err := Eval(r.Structure, IsSelected("x"), asn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want[u] {
			t.Fatalf("IsSelected(node %d) = %v, want %v", u, got, want[u])
		}
	}
}

// TestAllSelectedFormula: the Example 4 LFO-sentence agrees with the
// ground truth on exhaustive single-bit labelings, and with multi-bit
// labels (where "11" and "" are not selected).
func TestAllSelectedFormula(t *testing.T) {
	t.Parallel()
	f := AllSelected()
	for _, base := range []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Single("")} {
		forEachLabeling(base, func(g *graph.Graph) {
			got, err := Sat(rep(g).Structure, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got != props.AllSelected(g) {
				t.Fatalf("%v: formula = %v, ground truth = %v", g, got, props.AllSelected(g))
			}
		})
	}
	// Multi-bit labels.
	for _, labels := range [][]string{
		{"1", "11"}, {"1", ""}, {"1", "10"}, {"1", "1"},
	} {
		g := graph.Path(2).MustWithLabels(labels)
		got, err := Sat(rep(g).Structure, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != props.AllSelected(g) {
			t.Fatalf("labels %v: formula = %v", labels, got)
		}
	}
}

// TestKColorableFormula: the Example 5 Σ^lfo_1-sentence matches the exact
// decider for k = 2, 3 on small graphs.
func TestKColorableFormula(t *testing.T) {
	t.Parallel()
	graphs := []*graph.Graph{
		graph.Path(3), graph.Cycle(3), graph.Cycle(4), graph.Cycle(5),
		graph.Complete(4), graph.Star(4),
	}
	for _, g := range graphs {
		r := rep(g)
		for k := 2; k <= 3; k++ {
			got, err := Sat(r.Structure, KColorable(k), Options{MaxEnumBits: 8})
			if err != nil {
				t.Fatal(err)
			}
			want := props.KColorable(g, k)
			if got != want {
				t.Fatalf("%v: %d-colorable formula = %v, want %v", g, k, got, want)
			}
		}
	}
}

func TestClassify(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name  string
		f     Formula
		level int
		sigma bool
		mon   bool
	}{
		{"all-selected", AllSelected(), 0, false, true},
		{"3-colorable", ThreeColorable(), 1, true, true},
		{"not-all-selected", NotAllSelected(), 3, true, false},
		{"one-selected", OneSelected(), 3, true, false},
		{"hamiltonian", Hamiltonian(), 3, true, false},
	}
	for _, tt := range tests {
		lvl, ok := Classify(tt.f)
		if !ok {
			t.Fatalf("%s: not in the local hierarchy", tt.name)
		}
		if lvl.Alternations != tt.level || (tt.level > 0 && lvl.FirstExistential != tt.sigma) || lvl.Monadic != tt.mon {
			t.Fatalf("%s: Classify = %+v", tt.name, lvl)
		}
	}
}

func TestIsBF(t *testing.T) {
	t.Parallel()
	if !IsBF(IsSelected("x")) || !IsBF(WellColored("x", []string{"C0"})) {
		t.Fatal("BF formulas misclassified")
	}
	if IsBF(Exists{X: "x", F: Truth(true)}) {
		t.Fatal("unbounded quantifier accepted as BF")
	}
	if IsBF(ExistsB{X: "x", Y: "x", F: Truth(true)}) {
		t.Fatal("ExistsB with x = y must be rejected")
	}
	if !IsLFO(AllSelected()) {
		t.Fatal("AllSelected should be LFO")
	}
	if IsLFO(ThreeColorable()) {
		t.Fatal("Σ^lfo_1 sentence is not plain LFO")
	}
}

// nodePairUniverse restricts a binary variable to node self-pairs and
// adjacent node pairs, and unary variables to node elements — the
// locality restriction of Theorem 15's certificates.
func nodeUniverses(r *structure.Rep) Options {
	g := r.Graph()
	var nodes []int
	for u := 0; u < g.N(); u++ {
		nodes = append(nodes, r.NodeElem(u))
	}
	var pairs []Pair
	for u := 0; u < g.N(); u++ {
		pairs = append(pairs, Pair{A: r.NodeElem(u), B: r.NodeElem(u)})
		for _, v := range g.Neighbors(u) {
			pairs = append(pairs, Pair{A: r.NodeElem(u), B: r.NodeElem(v)})
		}
	}
	return Options{
		UnaryUniverse:  map[string][]int{"X": nodes, "Y": nodes, "Z": nodes},
		BinaryUniverse: map[string][]Pair{"P": pairs},
		MaxEnumBits:    16,
	}
}

// TestNotAllSelectedFormula: the Σ^lfo_3 spanning-forest sentence of
// Example 6 agrees with the ground truth on exhaustive labelings of tiny
// graphs (the triple second-order enumeration is expensive).
func TestNotAllSelectedFormula(t *testing.T) {
	t.Parallel()
	f := NotAllSelected()
	for _, base := range []*graph.Graph{graph.Path(2), graph.Path(3), graph.Cycle(3)} {
		forEachLabeling(base, func(g *graph.Graph) {
			r := rep(g)
			got, err := Sat(r.Structure, f, nodeUniverses(r))
			if err != nil {
				t.Fatal(err)
			}
			if got != props.NotAllSelected(g) {
				t.Fatalf("%v: formula = %v, want %v", g, got, props.NotAllSelected(g))
			}
		})
	}
}

// TestOneSelectedFormula: Example 8's sentence on tiny instances.
func TestOneSelectedFormula(t *testing.T) {
	t.Parallel()
	f := OneSelected()
	for _, base := range []*graph.Graph{graph.Path(2), graph.Path(3)} {
		forEachLabeling(base, func(g *graph.Graph) {
			r := rep(g)
			got, err := Sat(r.Structure, f, nodeUniverses(r))
			if err != nil {
				t.Fatal(err)
			}
			if got != props.OneSelected(g) {
				t.Fatalf("%v: formula = %v, want %v", g, got, props.OneSelected(g))
			}
		})
	}
}

// TestHamiltonianFormula: Example 9's sentence on tiny instances. C3 is
// Hamiltonian; P3 and stars are not.
func TestHamiltonianFormula(t *testing.T) {
	t.Parallel()
	f := Hamiltonian()
	for _, tt := range []struct {
		g    *graph.Graph
		want bool
	}{
		{graph.Cycle(3), true},
		{graph.Path(3), false},
	} {
		r := rep(tt.g)
		got, err := Sat(r.Structure, f, nodeUniverses(r))
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("%v: hamiltonian formula = %v, want %v", tt.g, got, tt.want)
		}
	}
}

func TestSubstitute(t *testing.T) {
	t.Parallel()
	f := ExistsB{X: "y", Y: "x", F: Eq{X: "y", Y: "x"}}
	g := Substitute(f, "x", "z").(ExistsB)
	if g.Y != "z" {
		t.Fatal("free occurrence not substituted")
	}
	if g.F.(Eq).Y != "z" || g.F.(Eq).X != "y" {
		t.Fatalf("body substitution wrong: %v", g.F)
	}
	// Bound occurrences are untouched.
	h := Substitute(f, "y", "z").(ExistsB)
	if h.X != "y" || h.F.(Eq).X != "y" {
		t.Fatal("bound variable renamed")
	}
}

func TestExistsWithinRadius(t *testing.T) {
	t.Parallel()
	// On a path of 4 nodes with empty labels, "∃z within r of x with z a
	// node having degree 1" — check radius semantics from node 1.
	g := graph.Path(4)
	r := rep(g)
	// Degree-1 test: has exactly one connected element... node 0 and 3.
	deg1 := func(z Var) Formula {
		w1 := z + "_w1"
		w2 := z + "_w2"
		return ExistsB{X: w1, Y: z, F: ForallB{X: w2, Y: z, F: Eq{X: w1, Y: w2}}}
	}
	asn := NewAssignment()
	asn.FO["x"] = r.NodeElem(1)
	// Radius 1 from node 1 reaches node 0 (degree 1): true.
	got, err := Eval(r.Structure, ExistsWithin("z", 1, "x", deg1("z")), asn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("radius 1 from node 1 should reach the endpoint")
	}
	// From node 1, radius 0 is node 1 itself (degree 2): false.
	got, err = Eval(r.Structure, ExistsWithin("z", 0, "x", deg1("z")), asn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("radius 0 should not reach a degree-1 node")
	}
}

func TestEvalErrors(t *testing.T) {
	t.Parallel()
	g := graph.Single("1")
	r := rep(g)
	if _, err := Sat(r.Structure, Unary{I: 5, X: "x"}, Options{}); err == nil {
		t.Fatal("out-of-signature relation accepted")
	}
	if _, err := Sat(r.Structure, Atom{R: "Q", Args: []Var{"x"}}, Options{}); err == nil {
		t.Fatal("unbound variables accepted")
	}
	// Universe too large.
	big := graph.Cycle(25)
	if _, err := Sat(structure.NewRep(big).Structure, SO{Existential: true, R: "A", Arity: 1, F: Truth(true)}, Options{MaxEnumBits: 5}); err == nil {
		t.Fatal("oversized universe accepted")
	}
	// Arity 3 unsupported.
	if _, err := Sat(r.Structure, SO{Existential: true, R: "A", Arity: 3, F: Truth(true)}, Options{}); err == nil {
		t.Fatal("arity-3 enumeration should error")
	}
}

func TestTruthAndConnectives(t *testing.T) {
	t.Parallel()
	g := graph.Single("")
	s := rep(g).Structure
	cases := []struct {
		f    Formula
		want bool
	}{
		{Truth(true), true},
		{Truth(false), false},
		{Implies(Truth(false), Truth(false)), true},
		{Iff(Truth(true), Truth(false)), false},
		{BigAnd(), true},
		{BigOr(), false},
		{BigAnd(Truth(true), Truth(false)), false},
		{BigOr(Truth(false), Truth(true)), true},
	}
	for _, tt := range cases {
		got, err := Sat(s, tt.f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("%v = %v", tt.f, got)
		}
	}
}

func TestFormulaStrings(t *testing.T) {
	t.Parallel()
	if s := ThreeColorable().String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
	f := SO{Existential: false, R: "X", Arity: 1, F: Truth(true)}
	if s := f.String(); s != "∀X/1 ⊤" {
		t.Fatalf("String = %q", s)
	}
}
