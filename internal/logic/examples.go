package logic

// This file contains the example formulas of Section 5.2, built exactly as
// in the paper. On structural representations $G (signature (1,2)):
// ⇀1 carries graph edges and label-bit successors, ⇀2 carries ownership.

// IsNode states that x represents a node: no dotted (⇀2) arrow points to x.
func IsNode(x Var) Formula {
	y := x + "_n"
	return Not{F: ExistsB{X: y, Y: x, F: Edge{I: 2, X: y, Y: x}}}
}

// IsBit1 states that x is a labeling bit of value 1.
func IsBit1(x Var) Formula {
	return And{L: Not{F: IsNode(x)}, R: Unary{I: 1, X: x}}
}

// IsBit0 states that x is a labeling bit of value 0.
func IsBit0(x Var) Formula {
	return And{L: Not{F: IsNode(x)}, R: Not{F: Unary{I: 1, X: x}}}
}

// ExistsNode builds ∃◦x −⇀↽− y φ: a bounded node-quantifier.
func ExistsNode(x, y Var, f Formula) Formula {
	return ExistsB{X: x, Y: y, F: And{L: IsNode(x), R: f}}
}

// ForallNode builds ∀◦x −⇀↽− y φ.
func ForallNode(x, y Var, f Formula) Formula {
	return ForallB{X: x, Y: y, F: Implies(IsNode(x), f)}
}

// ForallNodes builds the LFO prefix ∀◦x φ = ∀x (IsNode(x) → φ).
func ForallNodes(x Var, f Formula) Formula {
	return Forall{X: x, F: Implies(IsNode(x), f)}
}

// IsSelected is the BF-formula of Example 4: the node represented by x is
// labeled with the string "1" — it owns a 1-bit with no successor bit and
// no predecessor bit.
func IsSelected(x Var) Formula {
	y := x + "_b"
	z := x + "_s"
	noSucc := Not{F: ExistsB{X: z, Y: y, F: Or{
		L: Edge{I: 1, X: z, Y: y},
		R: Edge{I: 1, X: y, Y: z},
	}}}
	return ExistsB{X: y, Y: x, F: BigAnd(
		// y must actually be x's labeling bit (not a graph neighbor).
		Edge{I: 2, X: x, Y: y},
		IsBit1(y),
		noSucc,
	)}
}

// AllSelected is the LFO-sentence of Example 4: ∀◦x IsSelected(x).
func AllSelected() Formula {
	return ForallNodes("x", IsSelected("x"))
}

// WellColored is the BF-formula of Example 5 for color set variables
// C[0..k-1]: x has exactly one color, differing from all neighbors'.
func WellColored(x Var, colors []string) Formula {
	someColor := make([]Formula, len(colors))
	for i, c := range colors {
		someColor[i] = Atom{R: c, Args: []Var{x}}
	}
	var exclusive []Formula
	for i := range colors {
		for j := range colors {
			if i != j {
				exclusive = append(exclusive,
					Not{F: And{
						L: Atom{R: colors[i], Args: []Var{x}},
						R: Atom{R: colors[j], Args: []Var{x}},
					}})
			}
		}
	}
	y := x + "_adj"
	var differs []Formula
	for _, c := range colors {
		differs = append(differs, Not{F: And{
			L: Atom{R: c, Args: []Var{x}},
			R: Atom{R: c, Args: []Var{y}},
		}})
	}
	// Neighbors of a node via ⇀1 among node elements.
	neighborsDiffer := ForallB{X: y, Y: x, F: Implies(
		And{L: IsNode(y), R: Edge{I: 1, X: x, Y: y}},
		BigAnd(differs...),
	)}
	return BigAnd(append([]Formula{BigOr(someColor...), BigAnd(exclusive...)}, neighborsDiffer)...)
}

// KColorable is the Σ^lfo_1-sentence of Example 5 generalized to k colors:
// ∃C0…∃C(k−1) ∀◦x WellColored(x).
func KColorable(k int) Formula {
	colors := make([]string, k)
	for i := range colors {
		colors[i] = colorName(i)
	}
	body := ForallNodes("x", WellColored("x", colors))
	f := Formula(body)
	for i := k - 1; i >= 0; i-- {
		f = SO{Existential: true, R: colors[i], Arity: 1, F: f}
	}
	return f
}

func colorName(i int) string {
	return "C" + string(rune('0'+i))
}

// ColorNames returns the second-order variable names used by KColorable,
// so that callers can restrict their enumeration universes (see
// NodeRestricted).
func ColorNames(k int) []string {
	names := make([]string, k)
	for i := range names {
		names[i] = colorName(i)
	}
	return names
}

// ThreeColorable is KColorable(3), the formula of Examples 2 and 5.
func ThreeColorable() Formula { return KColorable(3) }

// --- The spanning-forest schema of Example 6 ---------------------------

// Root abbreviates P(x,x).
func Root(x Var) Formula { return Atom{R: "P", Args: []Var{x, x}} }

// UniqueParent states that x has exactly one parent within distance 1
// (possibly itself).
func UniqueParent(x Var) Formula {
	y := x + "_p"
	z := x + "_q"
	unique := ForallWithin(z, 1, x, Implies(
		And{L: IsNode(z), R: Atom{R: "P", Args: []Var{x, z}}},
		Eq{X: z, Y: y},
	))
	return ExistsWithin(y, 1, x, BigAnd(
		IsNode(y),
		Atom{R: "P", Args: []Var{x, y}},
		unique,
	))
}

// RootCase states: if x is a root, it satisfies the target ϑ and is
// positively charged.
func RootCase(x Var, theta Formula) Formula {
	return Implies(Root(x), And{L: theta, R: Atom{R: "Y", Args: []Var{x}}})
}

// ChildCase states: if x is a child, its charge follows its parent's,
// flipped iff x is challenged.
func ChildCase(x Var) Formula {
	y := x + "_cp"
	return Implies(
		Not{F: Root(x)},
		ExistsNode(y, x, And{
			L: Atom{R: "P", Args: []Var{x, y}},
			R: Iff(
				Atom{R: "Y", Args: []Var{x}},
				Not{F: Iff(Atom{R: "Y", Args: []Var{y}}, Atom{R: "X", Args: []Var{x}})},
			),
		}),
	)
}

// PointsTo is the formula schema PointsTo[ϑ](x) of Example 6.
func PointsTo(x Var, theta Formula) Formula {
	return BigAnd(UniqueParent(x), RootCase(x, theta), ChildCase(x))
}

// NotAllSelected is the Σ^lfo_3-sentence of Example 6:
// ∃P ∀X ∃Y ∀◦x PointsTo[¬IsSelected](x).
func NotAllSelected() Formula {
	body := ForallNodes("x", PointsTo("x", Not{F: IsSelected("x")}))
	return SO{Existential: true, R: "P", Arity: 2,
		F: SO{Existential: false, R: "X", Arity: 1,
			F: SO{Existential: true, R: "Y", Arity: 1, F: body}}}
}

// BelievesInOne is the subformula of Example 8 tying the shared bit Z to
// the challenge membership of target nodes.
func BelievesInOne(x Var, theta Formula) Formula {
	y := x + "_z"
	agree := ForallNode(y, x, Iff(
		Atom{R: "Z", Args: []Var{x}},
		Atom{R: "Z", Args: []Var{y}},
	))
	tie := Implies(theta, Iff(
		Atom{R: "Z", Args: []Var{x}},
		Atom{R: "X", Args: []Var{x}},
	))
	return And{L: agree, R: tie}
}

// PointsToUnique is the schema of Example 8.
func PointsToUnique(x Var, theta Formula) Formula {
	return And{L: PointsTo(x, theta), R: BelievesInOne(x, theta)}
}

// OneSelected is the Σ^lfo_3-sentence of Example 8:
// ∃P ∀X ∃Y,Z ∀◦x PointsToUnique[IsSelected](x).
func OneSelected() Formula {
	body := ForallNodes("x", PointsToUnique("x", IsSelected("x")))
	return SO{Existential: true, R: "P", Arity: 2,
		F: SO{Existential: false, R: "X", Arity: 1,
			F: SO{Existential: true, R: "Y", Arity: 1,
				F: SO{Existential: true, R: "Z", Arity: 1, F: body}}}}
}

// MaxOneChild is the subformula of Example 9.
func MaxOneChild(x Var) Formula {
	y := x + "_c1"
	z := x + "_c2"
	return ForallNode(y, x, ForallNode(z, x, Implies(
		And{L: Atom{R: "P", Args: []Var{y, x}}, R: Atom{R: "P", Args: []Var{z, x}}},
		Eq{X: y, Y: z},
	)))
}

// SeesLeafIfRoot is the subformula of Example 9: the root is adjacent to
// the unique leaf, which is not the root's own child.
func SeesLeafIfRoot(x Var) Formula {
	y := x + "_lf"
	z := x + "_lc"
	leaf := ForallNode(z, y, Not{F: Atom{R: "P", Args: []Var{z, y}}})
	return Implies(Root(x), ExistsNode(y, x, And{
		L: Not{F: Atom{R: "P", Args: []Var{y, x}}},
		R: leaf,
	}))
}

// Hamiltonian is the Σ^lfo_3-sentence of Example 9.
func Hamiltonian() Formula {
	x := Var("x")
	body := ForallNodes(x, BigAnd(
		PointsToUnique(x, Root(x)),
		MaxOneChild(x),
		SeesLeafIfRoot(x),
	))
	return SO{Existential: true, R: "P", Arity: 2,
		F: SO{Existential: false, R: "X", Arity: 1,
			F: SO{Existential: true, R: "Y", Arity: 1,
				F: SO{Existential: true, R: "Z", Arity: 1, F: body}}}}
}
