package logic

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/structure"
)

// Relation is an interpretation of a second-order variable: a set of
// element tuples, keyed by their comma-joined encoding.
type Relation map[string]bool

// TupleKey encodes a tuple of elements.
func TupleKey(elems ...int) string {
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = strconv.Itoa(e)
	}
	return strings.Join(parts, ",")
}

// Assignment interprets the free variables of a formula.
type Assignment struct {
	FO map[Var]int
	SO map[string]Relation
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{FO: make(map[Var]int), SO: make(map[string]Relation)}
}

// clone-free scoped update helpers.
func (a *Assignment) withFO(x Var, e int, f func() bool) bool {
	old, had := a.FO[x]
	a.FO[x] = e
	out := f()
	if had {
		a.FO[x] = old
	} else {
		delete(a.FO, x)
	}
	return out
}

func (a *Assignment) withSO(r string, rel Relation, f func() bool) bool {
	old, had := a.SO[r]
	a.SO[r] = rel
	out := f()
	if had {
		a.SO[r] = old
	} else {
		delete(a.SO, r)
	}
	return out
}

// Pair is an ordered element pair.
type Pair struct{ A, B int }

// NodeRestricted returns evaluation options that restrict the named unary
// second-order variables to node elements of the structural representation
// rep. This is the locality restriction of Theorem 15: formulas such as
// the coloring sentences of Example 5 only ever query those variables at
// node elements, so excluding labeling-bit elements loses no generality
// while shrinking the enumeration space exponentially.
func NodeRestricted(rep interface{ NodeElems() []int }, names ...string) Options {
	nodes := rep.NodeElems()
	uni := make(map[string][]int, len(names))
	for _, n := range names {
		uni[n] = nodes
	}
	return Options{UnaryUniverse: uni}
}

// Options configure second-order enumeration during evaluation.
//
// The universes restrict which elements/pairs a quantified relation may
// contain. By the locality of BF-formulas this loses no generality as long
// as the universes cover every tuple the formula can inspect (Theorem 15's
// certificates perform exactly this restriction); the defaults cover all
// elements and all "local" pairs (equal or −⇀↽−-connected).
type Options struct {
	// UnaryUniverse[R] lists the candidate elements of unary variable R;
	// nil (or missing) means all elements.
	UnaryUniverse map[string][]int
	// BinaryUniverse[R] lists the candidate pairs of binary variable R;
	// nil means all pairs (a,a) and (a,b) with a −⇀↽− b.
	BinaryUniverse map[string][]Pair
	// MaxEnumBits caps the size of any single enumeration universe
	// (default 20, i.e. about a million interpretations per variable).
	MaxEnumBits int
}

func (o Options) maxBits() int {
	if o.MaxEnumBits == 0 {
		return 20
	}
	return o.MaxEnumBits
}

// Eval evaluates f on s under asn. Second-order quantifiers are resolved
// by exhaustive enumeration over their universes; an error is returned if
// a universe is too large or a variable is unbound.
func Eval(s *structure.Structure, f Formula, asn *Assignment, opt Options) (bool, error) {
	e := &evaluator{s: s, opt: opt}
	out := e.eval(f, asn)
	if e.err != nil {
		return false, e.err
	}
	return out, nil
}

// MustEval is Eval for well-formed inputs in tests and experiments.
func MustEval(s *structure.Structure, f Formula, asn *Assignment, opt Options) bool {
	out, err := Eval(s, f, asn, opt)
	if err != nil {
		panic(err)
	}
	return out
}

// Sat evaluates a sentence with an empty assignment.
func Sat(s *structure.Structure, f Formula, opt Options) (bool, error) {
	return Eval(s, f, NewAssignment(), opt)
}

type evaluator struct {
	s   *structure.Structure
	opt Options
	err error
}

func (e *evaluator) fail(format string, args ...any) bool {
	if e.err == nil {
		e.err = fmt.Errorf("logic: "+format, args...)
	}
	return false
}

func (e *evaluator) lookup(asn *Assignment, x Var) (int, bool) {
	v, ok := asn.FO[x]
	if !ok {
		e.fail("unbound first-order variable %s", x)
	}
	return v, ok
}

func (e *evaluator) eval(f Formula, asn *Assignment) bool {
	if e.err != nil {
		return false
	}
	switch g := f.(type) {
	case Truth:
		return bool(g)
	case Unary:
		x, ok := e.lookup(asn, g.X)
		if !ok {
			return false
		}
		m, _ := e.s.Signature()
		if g.I < 1 || g.I > m {
			return e.fail("unary relation ⊙%d out of signature", g.I)
		}
		return e.s.InUnary(g.I, x)
	case Edge:
		x, ok1 := e.lookup(asn, g.X)
		y, ok2 := e.lookup(asn, g.Y)
		if !ok1 || !ok2 {
			return false
		}
		_, n := e.s.Signature()
		if g.I < 1 || g.I > n {
			return e.fail("binary relation ⇀%d out of signature", g.I)
		}
		return e.s.InBinary(g.I, x, y)
	case Eq:
		x, ok1 := e.lookup(asn, g.X)
		y, ok2 := e.lookup(asn, g.Y)
		return ok1 && ok2 && x == y
	case Atom:
		rel, ok := asn.SO[g.R]
		if !ok {
			return e.fail("unbound second-order variable %s", g.R)
		}
		elems := make([]int, len(g.Args))
		for i, a := range g.Args {
			v, ok := e.lookup(asn, a)
			if !ok {
				return false
			}
			elems[i] = v
		}
		return rel[TupleKey(elems...)]
	case Not:
		return !e.eval(g.F, asn)
	case Or:
		return e.eval(g.L, asn) || e.eval(g.R, asn)
	case And:
		return e.eval(g.L, asn) && e.eval(g.R, asn)
	case Exists:
		for a := 0; a < e.s.Card(); a++ {
			if asn.withFO(g.X, a, func() bool { return e.eval(g.F, asn) }) {
				return true
			}
			if e.err != nil {
				return false
			}
		}
		return false
	case Forall:
		for a := 0; a < e.s.Card(); a++ {
			if !asn.withFO(g.X, a, func() bool { return e.eval(g.F, asn) }) {
				return false
			}
		}
		return true
	case ExistsB:
		y, ok := e.lookup(asn, g.Y)
		if !ok {
			return false
		}
		for _, a := range e.s.Connected(y) {
			if asn.withFO(g.X, a, func() bool { return e.eval(g.F, asn) }) {
				return true
			}
			if e.err != nil {
				return false
			}
		}
		return false
	case ForallB:
		y, ok := e.lookup(asn, g.Y)
		if !ok {
			return false
		}
		for _, a := range e.s.Connected(y) {
			if !asn.withFO(g.X, a, func() bool { return e.eval(g.F, asn) }) {
				return false
			}
		}
		return true
	case SO:
		return e.evalSO(g, asn)
	default:
		return e.fail("unknown formula type %T", f)
	}
}

func (e *evaluator) evalSO(g SO, asn *Assignment) bool {
	keys := e.universe(g)
	if e.err != nil {
		return false
	}
	if len(keys) > e.opt.maxBits() {
		return e.fail("universe of %s has %d tuples (cap %d); restrict Options universes",
			g.R, len(keys), e.opt.maxBits())
	}
	total := 1 << uint(len(keys))
	for mask := 0; mask < total; mask++ {
		rel := make(Relation, len(keys))
		for i, k := range keys {
			if mask&(1<<uint(i)) != 0 {
				rel[k] = true
			}
		}
		v := asn.withSO(g.R, rel, func() bool { return e.eval(g.F, asn) })
		if e.err != nil {
			return false
		}
		if g.Existential && v {
			return true
		}
		if !g.Existential && !v {
			return false
		}
	}
	return !g.Existential
}

func (e *evaluator) universe(g SO) []string {
	switch g.Arity {
	case 1:
		if elems, ok := e.opt.UnaryUniverse[g.R]; ok && elems != nil {
			keys := make([]string, len(elems))
			for i, a := range elems {
				keys[i] = TupleKey(a)
			}
			return keys
		}
		keys := make([]string, e.s.Card())
		for a := 0; a < e.s.Card(); a++ {
			keys[a] = TupleKey(a)
		}
		return keys
	case 2:
		if pairs, ok := e.opt.BinaryUniverse[g.R]; ok && pairs != nil {
			keys := make([]string, len(pairs))
			for i, p := range pairs {
				keys[i] = TupleKey(p.A, p.B)
			}
			return keys
		}
		var keys []string
		for a := 0; a < e.s.Card(); a++ {
			keys = append(keys, TupleKey(a, a))
			for _, b := range e.s.Connected(a) {
				keys = append(keys, TupleKey(a, b))
			}
		}
		return keys
	default:
		e.fail("second-order arity %d unsupported by the enumerating evaluator", g.Arity)
		return nil
	}
}
