package logic

// Syntactic classification of formulas into the fragments of Section 5.1:
// BF (bounded first-order), LFO (∀x over a BF body), and the local
// second-order hierarchy Σ^lfo_ℓ / Π^lfo_ℓ.

// IsBF reports whether f belongs to the bounded fragment: no unbounded
// first-order quantifiers and no second-order quantifiers. (Derived
// bounded quantifiers ForallB are allowed; they abbreviate ¬∃¬.)
func IsBF(f Formula) bool {
	switch g := f.(type) {
	case Unary, Edge, Eq, Atom, Truth:
		return true
	case Not:
		return IsBF(g.F)
	case Or:
		return IsBF(g.L) && IsBF(g.R)
	case And:
		return IsBF(g.L) && IsBF(g.R)
	case ExistsB:
		return g.X != g.Y && IsBF(g.F)
	case ForallB:
		return g.X != g.Y && IsBF(g.F)
	case Exists, Forall, SO:
		return false
	default:
		return false
	}
}

// IsLFO reports whether f is a local first-order sentence: a single outer
// unbounded universal quantifier over a BF body.
func IsLFO(f Formula) bool {
	g, ok := f.(Forall)
	if !ok {
		return false
	}
	return IsBF(g.F)
}

// Level describes a class of the local second-order hierarchy.
type Level struct {
	// Alternations is ℓ: the number of alternating second-order blocks.
	Alternations int
	// FirstExistential distinguishes Σ^lfo_ℓ from Π^lfo_ℓ.
	FirstExistential bool
	// Monadic reports whether all quantified relations are unary.
	Monadic bool
}

// Classify determines the lowest level of the local second-order hierarchy
// containing f: it strips alternating second-order blocks and requires an
// LFO core. ok is false when the core is not LFO (then f is outside the
// hierarchy as written).
func Classify(f Formula) (Level, bool) {
	var lvl Level
	lvl.Monadic = true
	first := true
	cur := f
	blocks := 0
	var lastExistential bool
	for {
		so, ok := cur.(SO)
		if !ok {
			break
		}
		if so.Arity != 1 {
			lvl.Monadic = false
		}
		if first {
			lvl.FirstExistential = so.Existential
			lastExistential = so.Existential
			blocks = 1
			first = false
		} else if so.Existential != lastExistential {
			blocks++
			lastExistential = so.Existential
		}
		cur = so.F
	}
	lvl.Alternations = blocks
	if blocks == 0 {
		lvl.Monadic = true
		return lvl, IsLFO(f)
	}
	return lvl, IsLFO(cur)
}
