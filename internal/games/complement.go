package games

import (
	"repro/internal/graph"
	"repro/internal/search"
)

// This file implements Example 7: the complementation technique that
// turns the Σ^lfo_1 property 3-colorable into the Π^lfo_4 property
// non-3-colorable. The sentence is
//
//	∀C0,C1,C2 ∃P ∀X ∃Y ∀◦x PointsTo[¬WellColored](x):
//
// Adam opens by proposing color sets; Eve replies with a spanning forest
// whose roots are badly colored nodes (the ExistsBadNode sub-game of
// Example 6); Adam challenges the forest; Eve answers with charges. The
// graph is non-k-colorable iff every Adam proposal leaves a bad node for
// Eve to point at.

// ColorSets assigns to every node a subset of k colors (Adam's opening
// move: the interpretations of C0, …, C(k-1) restricted to node elements,
// which is all the formula inspects).
type ColorSets [][]bool

// colorSetsSpace is the search space of all (2^k)^n color-set
// assignments: one binary position per (node, color) pair.
func colorSetsSpace(n, k int) search.Space { return search.Binary(n * k) }

// decodeColorSets writes the assignment encoded by a colorSetsSpace
// assignment into cs.
func decodeColorSets(asm []int, k int, cs ColorSets) {
	for pos, b := range asm {
		cs[pos/k][pos%k] = b == 1
	}
}

// newColorSets allocates an n-node, k-color ColorSets.
func newColorSets(n, k int) ColorSets {
	cs := make(ColorSets, n)
	for u := range cs {
		cs[u] = make([]bool, k)
	}
	return cs
}

// ForEachColorSets enumerates all (2^k)^n color-set assignments.
func ForEachColorSets(n, k int, yield func(ColorSets) bool) bool {
	cur := newColorSets(n, k)
	return search.ForEach(colorSetsSpace(n, k), func(asm []int) bool {
		decodeColorSets(asm, k, cur)
		return yield(cur)
	})
}

// badlyColored reports whether node u violates WellColored under the
// color sets: it has no color, more than one color, or shares a color
// with a neighbor (Example 5's three conjuncts, negated).
func badlyColored(g *graph.Graph, cs ColorSets, u int) bool {
	count := 0
	for _, has := range cs[u] {
		if has {
			count++
		}
	}
	if count != 1 {
		return true
	}
	for _, v := range g.Neighbors(u) {
		for c, has := range cs[u] {
			if has && cs[v][c] {
				return true
			}
		}
	}
	return false
}

// EveWinsNonKColorable evaluates the Example 7 game exactly: for every
// color-set proposal of Adam, Eve must win the PointsTo[¬WellColored]
// sub-game — i.e. some node must be badly colored and she must be able to
// anchor a refutation forest there. The value is true iff g is not
// k-colorable.
func EveWinsNonKColorable(g *graph.Graph, k int) bool {
	return EveWinsNonKColorableOpt(g, k, search.Default())
}

// EveWinsNonKColorableOpt is EveWinsNonKColorable under explicit search
// options: Adam's outermost color-set proposals are searched by the
// chosen engine, while each PointsTo sub-game runs sequentially inside
// its worker (parallelizing the outermost universal quantifier is what
// splits the (2^k)^n-sized space; nesting pools would only oversubscribe
// the CPUs). Do not set Options.Ctx here — see EveWinsPointsToOpt.
func EveWinsNonKColorableOpt(g *graph.Graph, k int, o search.Options) bool {
	n := g.N()
	inner := o
	inner.Workers = 1
	scratch := search.NewScratch(func() ColorSets { return newColorSets(n, k) })
	allHandled, _ := search.ForAll(o, colorSetsSpace(n, k), func(asm []int) bool {
		cs, put := scratch.Get()
		defer put()
		decodeColorSets(asm, k, cs)
		target := func(g *graph.Graph, u int) bool { return badlyColored(g, cs, u) }
		return EveWinsPointsToOpt(g, target, inner)
	})
	return allHandled
}
