package games

import "repro/internal/graph"

// This file implements Example 7: the complementation technique that
// turns the Σ^lfo_1 property 3-colorable into the Π^lfo_4 property
// non-3-colorable. The sentence is
//
//	∀C0,C1,C2 ∃P ∀X ∃Y ∀◦x PointsTo[¬WellColored](x):
//
// Adam opens by proposing color sets; Eve replies with a spanning forest
// whose roots are badly colored nodes (the ExistsBadNode sub-game of
// Example 6); Adam challenges the forest; Eve answers with charges. The
// graph is non-k-colorable iff every Adam proposal leaves a bad node for
// Eve to point at.

// ColorSets assigns to every node a subset of k colors (Adam's opening
// move: the interpretations of C0, …, C(k-1) restricted to node elements,
// which is all the formula inspects).
type ColorSets [][]bool

// ForEachColorSets enumerates all (2^k)^n color-set assignments.
func ForEachColorSets(n, k int, yield func(ColorSets) bool) bool {
	cur := make(ColorSets, n)
	for u := range cur {
		cur[u] = make([]bool, k)
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == n*k {
			return yield(cur)
		}
		u, c := pos/k, pos%k
		cur[u][c] = false
		if !rec(pos + 1) {
			return false
		}
		cur[u][c] = true
		ok := rec(pos + 1)
		cur[u][c] = false
		return ok
	}
	return rec(0)
}

// badlyColored reports whether node u violates WellColored under the
// color sets: it has no color, more than one color, or shares a color
// with a neighbor (Example 5's three conjuncts, negated).
func badlyColored(g *graph.Graph, cs ColorSets, u int) bool {
	count := 0
	for _, has := range cs[u] {
		if has {
			count++
		}
	}
	if count != 1 {
		return true
	}
	for _, v := range g.Neighbors(u) {
		for c, has := range cs[u] {
			if has && cs[v][c] {
				return true
			}
		}
	}
	return false
}

// EveWinsNonKColorable evaluates the Example 7 game exactly: for every
// color-set proposal of Adam, Eve must win the PointsTo[¬WellColored]
// sub-game — i.e. some node must be badly colored and she must be able to
// anchor a refutation forest there. The value is true iff g is not
// k-colorable.
func EveWinsNonKColorable(g *graph.Graph, k int) bool {
	allHandled := ForEachColorSets(g.N(), k, func(cs ColorSets) bool {
		target := func(g *graph.Graph, u int) bool { return badlyColored(g, cs, u) }
		return EveWinsPointsTo(g, target)
	})
	return allHandled
}
