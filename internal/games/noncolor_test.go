package games

import (
	"math/rand"
	"testing"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/props"
)

func TestOddCycle(t *testing.T) {
	t.Parallel()
	cycle, ok := OddCycle(graph.Cycle(5))
	if !ok || len(cycle)%2 == 0 {
		t.Fatalf("OddCycle(C5) = %v, %v", cycle, ok)
	}
	if _, ok := OddCycle(graph.Cycle(6)); ok {
		t.Fatal("even cycle reported as odd")
	}
	if _, ok := OddCycle(graph.Path(4)); ok {
		t.Fatal("tree reported non-bipartite")
	}
	// The returned sequence must be a genuine cycle in the graph.
	g := graph.Complete(4)
	cycle, ok = OddCycle(g)
	if !ok {
		t.Fatal("K4 has odd cycles")
	}
	for i, u := range cycle {
		v := cycle[(i+1)%len(cycle)]
		if !g.HasEdge(u, v) {
			t.Fatalf("cycle %v uses non-edge {%d,%d}", cycle, u, v)
		}
	}
}

func TestOddCycleRandomAgainstBipartite(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		g := graph.RandomConnected(2+rng.Intn(7), 0.4, rng)
		cycle, ok := OddCycle(g)
		if ok != props.NonTwoColorable(g) {
			t.Fatalf("OddCycle presence %v but bipartite test %v on %v", ok, !props.NonTwoColorable(g), g)
		}
		if ok {
			if len(cycle)%2 == 0 {
				t.Fatal("even cycle returned")
			}
			for i, u := range cycle {
				if !g.HasEdge(u, cycle[(i+1)%len(cycle)]) {
					t.Fatal("not a cycle")
				}
			}
		}
	}
}

// TestNonTwoColorableArbiter: the Σ^lp_3 odd-cycle machine decides
// non-2-colorability with Eve's strategy against all Adam challenges.
func TestNonTwoColorableArbiter(t *testing.T) {
	t.Parallel()
	arb := NonTwoColorableArbiter()
	graphs := []*graph.Graph{
		graph.Cycle(3), graph.Cycle(4), graph.Cycle(5),
		graph.Path(4), graph.Star(4), graph.Complete(4), graph.Grid(2, 3),
	}
	for _, g := range graphs {
		want := props.NonTwoColorable(g)
		id := graph.SmallLocallyUnique(g, 1)
		got, err := arb.StrategyGameValue(g, id,
			[]core.Strategy{NonTwoColorableStrategy(), nil, NonTwoColorChargeStrategy()},
			[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: non-2-colorable arbiter = %v, want %v", g, got, want)
		}
	}
}

// TestNonTwoColorableRejectsEvenCycleClaim: Eve cannot pass off an even
// cycle — the root's same-parity check fails on every parity labeling she
// could choose, because the machine checks *her* certificates, not her
// honesty.
func TestNonTwoColorableRejectsEvenCycleClaim(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4) // bipartite
	id := graph.SmallLocallyUnique(g, 1)
	cheat := core.Strategy(func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		// Claim the whole C4 as the "odd" cycle with some parity labels.
		p, _ := BFSForestTo(g, func(_ *graph.Graph, u int) bool { return u == 0 })
		parents := encodeParents(p, id)
		out := make(cert.Assignment, g.N())
		for u := 0; u < g.N(); u++ {
			prev := (u + 3) % 4
			par := "0"
			if u%2 == 1 {
				par = "1"
			}
			out[u] = parents[u] + "|1|" + id[prev] + "|" + par
		}
		return out, nil
	})
	ok, err := NonTwoColorableArbiter().StrategyGameValue(g, id,
		[]core.Strategy{cheat, nil, NonTwoColorChargeStrategy()},
		[]cert.Domain{{}, cert.UniformDomain(4, 1), {}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("even-cycle claim accepted")
	}
}
