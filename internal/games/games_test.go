package games

import (
	"math/rand"
	"testing"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/props"
)

// forEachLabeling runs f on g with every single-bit labeling.
func forEachLabeling(g *graph.Graph, f func(*graph.Graph)) {
	n := g.N()
	for mask := uint(0); mask < 1<<uint(n); mask++ {
		f(g.MustWithLabels(graph.BitLabels(n, mask)))
	}
}

func smallTopologies() []*graph.Graph {
	return []*graph.Graph{
		graph.Single(""),
		graph.Path(2), graph.Path(4),
		graph.Cycle(3), graph.Cycle(4), graph.Cycle(5),
		graph.Star(4),
		graph.Complete(4),
	}
}

func TestParentsValidAndRoots(t *testing.T) {
	t.Parallel()
	g := graph.Path(3)
	p := Parents{0, 0, 1}
	if !p.Valid(g) {
		t.Fatal("BFS-style parents should be valid")
	}
	if r := p.Roots(); len(r) != 1 || r[0] != 0 {
		t.Fatalf("Roots = %v", r)
	}
	bad := Parents{2, 0, 1} // 0 and 2 are not adjacent in P3
	if bad.Valid(g) {
		t.Fatal("non-neighbor parent accepted")
	}
}

func TestHasNonRootCycle(t *testing.T) {
	t.Parallel()
	// Cycle graph with parents going around: one big directed cycle.
	g := graph.Cycle(3)
	cyc := Parents{1, 2, 0}
	if !cyc.HasNonRootCycle() {
		t.Fatal("directed 3-cycle not detected")
	}
	tree := Parents{0, 0, 1}
	if tree.HasNonRootCycle() {
		t.Fatal("tree flagged as cyclic")
	}
	_ = g
}

func TestSolveChargesOnTree(t *testing.T) {
	t.Parallel()
	// Path 0<-1<-2 rooted at 0.
	p := Parents{0, 0, 1}
	// Empty challenge: all charges equal the root's (positive).
	y, ok := SolveCharges(p, Challenge{false, false, false})
	if !ok || !y[0] || !y[1] || !y[2] {
		t.Fatalf("charges = %v ok=%v", y, ok)
	}
	// Challenge node 1: it flips, and 2 follows 1.
	y, ok = SolveCharges(p, Challenge{false, true, false})
	if !ok || !y[0] || y[1] || y[2] {
		t.Fatalf("charges = %v ok=%v", y, ok)
	}
}

func TestSolveChargesOnCycle(t *testing.T) {
	t.Parallel()
	p := Parents{1, 2, 0} // directed 3-cycle, no root
	// Even challenge parity: solvable.
	if _, ok := SolveCharges(p, Challenge{false, false, false}); !ok {
		t.Fatal("even-parity challenge should be solvable")
	}
	if _, ok := SolveCharges(p, Challenge{true, true, false}); !ok {
		t.Fatal("two challenged nodes on the cycle should be solvable")
	}
	// Odd parity (Adam's singleton attack): unsolvable.
	if _, ok := SolveCharges(p, Challenge{true, false, false}); ok {
		t.Fatal("Adam's singleton challenge must be unanswerable")
	}
}

// TestSolveChargesMatchesBruteForce: SolveCharges finds a response iff one
// exists, across random parent assignments and challenges.
func TestSolveChargesMatchesBruteForce(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		g := graph.RandomConnected(n, 0.5, rng)
		p := make(Parents, n)
		for u := 0; u < n; u++ {
			nbrs := g.Neighbors(u)
			pick := rng.Intn(len(nbrs) + 1)
			if pick == len(nbrs) {
				p[u] = u
			} else {
				p[u] = nbrs[pick]
			}
		}
		x := make(Challenge, n)
		for u := range x {
			x[u] = rng.Intn(2) == 0
		}
		y, got := SolveCharges(p, x)
		want := bruteForceCharges(p, x)
		if got != want {
			t.Fatalf("SolveCharges=%v bruteforce=%v for p=%v x=%v", got, want, p, x)
		}
		if got && !chargesValid(p, x, y) {
			t.Fatalf("returned charges invalid: p=%v x=%v y=%v", p, x, y)
		}
	}
}

func chargesValid(p Parents, x Challenge, y []bool) bool {
	for u := range p {
		if p[u] == u {
			if !y[u] {
				return false
			}
		} else if y[u] != (y[p[u]] != x[u]) {
			return false
		}
	}
	return true
}

func bruteForceCharges(p Parents, x Challenge) bool {
	n := len(p)
	for mask := 0; mask < 1<<uint(n); mask++ {
		y := make([]bool, n)
		for u := 0; u < n; u++ {
			y[u] = mask&(1<<uint(u)) != 0
		}
		if chargesValid(p, x, y) {
			return true
		}
	}
	return false
}

// TestEveWinsPointsToMatchesGroundTruth: Example 6 semantics — Eve wins
// the PointsTo[¬IsSelected] game exactly on not-all-selected instances.
func TestEveWinsPointsToMatchesGroundTruth(t *testing.T) {
	t.Parallel()
	for _, base := range smallTopologies() {
		if base.N() > 5 {
			continue // keep the exhaustive double enumeration fast
		}
		forEachLabeling(base, func(g *graph.Graph) {
			want := props.NotAllSelected(g)
			if got := EveWinsPointsTo(g, IsUnselected); got != want {
				t.Fatalf("%v: EveWinsPointsTo = %v, want %v", g, got, want)
			}
		})
	}
}

// TestEveWinsPointsToUniqueMatchesGroundTruth: Example 8 semantics — the
// uniqueness game captures exactly one-selected.
func TestEveWinsPointsToUniqueMatchesGroundTruth(t *testing.T) {
	t.Parallel()
	for _, base := range smallTopologies() {
		if base.N() > 5 {
			continue
		}
		forEachLabeling(base, func(g *graph.Graph) {
			want := props.OneSelected(g)
			if got := EveWinsPointsToUnique(g, IsSelected); got != want {
				t.Fatalf("%v: EveWinsPointsToUnique = %v, want %v", g, got, want)
			}
		})
	}
}

// TestEveWinsHamiltonianMatchesGroundTruth: Example 9 semantics.
func TestEveWinsHamiltonianMatchesGroundTruth(t *testing.T) {
	t.Parallel()
	tops := []*graph.Graph{
		graph.Single(""),
		graph.Path(2), graph.Path(4), graph.Path(5),
		graph.Cycle(3), graph.Cycle(4), graph.Cycle(5),
		graph.Star(4), graph.Star(5),
		graph.Complete(4),
		graph.Grid(2, 3),
	}
	for _, g := range tops {
		want := props.Hamiltonian(g)
		if got := EveWinsHamiltonian(g); got != want {
			t.Fatalf("%v: EveWinsHamiltonian = %v, want %v", g, got, want)
		}
	}
}

func TestBFSForestTo(t *testing.T) {
	t.Parallel()
	g := graph.Path(4).MustWithLabels([]string{"1", "1", "0", "1"})
	p, ok := BFSForestTo(g, IsUnselected)
	if !ok {
		t.Fatal("target exists")
	}
	if !p.Valid(g) || p.HasNonRootCycle() {
		t.Fatal("BFS forest invalid")
	}
	for _, r := range p.Roots() {
		if !IsUnselected(g, r) {
			t.Fatal("root is not a target")
		}
	}
	// All-selected: no forest.
	if _, ok := BFSForestTo(g.MustWithLabels([]string{"1", "1", "1", "1"}), IsUnselected); ok {
		t.Fatal("no target should mean no forest")
	}
}

func TestHamiltonianPathParents(t *testing.T) {
	t.Parallel()
	p, ok := HamiltonianPathParents(graph.Cycle(5))
	if !ok {
		t.Fatal("C5 is Hamiltonian")
	}
	if p.HasNonRootCycle() || len(p.Roots()) != 1 {
		t.Fatal("parents are not a rooted path")
	}
	if _, ok := HamiltonianPathParents(graph.Star(4)); ok {
		t.Fatal("star is not Hamiltonian")
	}
}

// --- machine layer ------------------------------------------------------

// strategyVerdict evaluates a Σ^lp_3 arbiter with Eve's strategies against
// all of Adam's challenge bit assignments.
func strategyVerdict(t *testing.T, arb *core.Arbiter, g *graph.Graph, move1, move3 core.Strategy) bool {
	t.Helper()
	id := graph.SmallLocallyUnique(g, 1)
	ok, err := arb.StrategyGameValue(g, id,
		[]core.Strategy{move1, nil, move3},
		[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}})
	if err != nil {
		t.Fatalf("StrategyGameValue: %v", err)
	}
	return ok
}

// TestNotAllSelectedArbiter: the Σ^lp_3 machine with Eve's constructive
// strategies decides not-all-selected on exhaustive labelings.
func TestNotAllSelectedArbiter(t *testing.T) {
	t.Parallel()
	arb := NotAllSelectedArbiter()
	for _, base := range []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Star(4)} {
		forEachLabeling(base, func(g *graph.Graph) {
			want := props.NotAllSelected(g)
			got := strategyVerdict(t, arb, g, ForestStrategy(IsUnselected), ChargeStrategy(nil))
			if got != want {
				t.Fatalf("%v: arbiter = %v, want %v", g, got, want)
			}
		})
	}
}

// TestOneSelectedArbiter: the Σ^lp_3 uniqueness machine decides
// one-selected.
func TestOneSelectedArbiter(t *testing.T) {
	t.Parallel()
	arb := OneSelectedArbiter()
	for _, base := range []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Star(4)} {
		forEachLabeling(base, func(g *graph.Graph) {
			want := props.OneSelected(g)
			got := strategyVerdict(t, arb, g,
				ForestStrategy(IsSelected), ChargeStrategy(IsSelected))
			if got != want {
				t.Fatalf("%v: arbiter = %v, want %v", g, got, want)
			}
		})
	}
}

// TestHamiltonianArbiter: the Σ^lp_3 Hamiltonian machine with Eve's cycle
// strategy decides Hamiltonicity on small instances.
func TestHamiltonianArbiter(t *testing.T) {
	t.Parallel()
	arb := HamiltonianArbiter()
	tops := []*graph.Graph{
		graph.Single(""), graph.Path(2), graph.Path(4),
		graph.Cycle(3), graph.Cycle(5), graph.Star(4),
		graph.Complete(4), graph.Grid(2, 3),
	}
	for _, g := range tops {
		want := props.Hamiltonian(g)
		got := strategyVerdict(t, arb, g, HamiltonianStrategy(), RootChargeStrategy())
		if got != want {
			t.Fatalf("%v: arbiter = %v, want %v", g, got, want)
		}
	}
}

// TestAdamCatchesCheatingEve: if Eve claims a spanning forest with a
// directed cycle (pretending a target exists when none does), Adam's
// challenge refutes her on the machine level.
func TestAdamCatchesCheatingEve(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(3).MustWithLabels([]string{"1", "1", "1"}) // all selected
	arb := NotAllSelectedArbiter()
	id := graph.SmallLocallyUnique(g, 1)
	// Eve cheats: parent pointers around the cycle, no root at all.
	cheat := core.Strategy(func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		return encodeParents(Parents{1, 2, 0}, id), nil
	})
	ok, err := arb.StrategyGameValue(g, id,
		[]core.Strategy{cheat, nil, ChargeStrategy(nil)},
		[]cert.Domain{{}, cert.UniformDomain(3, 1), {}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Adam failed to refute Eve's cyclic forest")
	}
}

func TestEncodeDecodeParents(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4)
	id := graph.GloballyUnique(g)
	p := Parents{0, 0, 1, 0}
	enc := encodeParents(p, id)
	dec, ok := decodeParents(g, id, enc)
	if !ok {
		t.Fatal("decode failed")
	}
	for u := range p {
		if dec[u] != p[u] {
			t.Fatalf("roundtrip: %v vs %v", dec, p)
		}
	}
	// A pointer to a non-neighbor identifier fails to decode.
	bad := cert.Assignment{"1" + id[2], "0", "0", "0"} // 2 not adjacent to 0 in C4
	if _, ok := decodeParents(g, id, bad); ok {
		t.Fatal("non-neighbor pointer decoded")
	}
}
