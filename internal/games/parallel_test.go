package games

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/search"
)

// parityGraphs are the instances every game is evaluated on, sized so
// the full exhaustive evaluation stays fast under the race detector.
func parityGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"C4 selected": graph.Cycle(4).MustWithLabels(graph.AllSelectedLabels(4)),
		"C5 one hole": graph.Cycle(5).MustWithLabels([]string{"1", "1", "0", "1", "1"}),
		"P3 one sel":  graph.Path(3).MustWithLabels([]string{"0", "1", "0"}),
		"K4":          graph.Complete(4),
		"Figure 1a":   graph.Figure1NoInstance(),
		"Figure 1b":   graph.Figure1YesInstance(),
	}
}

// TestParallelGamesMatchSequential asserts, for every game of the
// package on every parity instance, that the parallel engine computes
// the same value as the strictly sequential one. Running it under
// -race additionally checks the engine's worker pool for data races.
func TestParallelGamesMatchSequential(t *testing.T) {
	seq := search.Sequential()
	par := search.Parallel(0)
	games := map[string]func(*graph.Graph, search.Options) bool{
		"PointsTo[unselected]": func(g *graph.Graph, o search.Options) bool {
			return EveWinsPointsToOpt(g, IsUnselected, o)
		},
		"PointsTo[selected]": func(g *graph.Graph, o search.Options) bool {
			return EveWinsPointsToOpt(g, IsSelected, o)
		},
		"PointsToUnique[selected]": func(g *graph.Graph, o search.Options) bool {
			return EveWinsPointsToUniqueOpt(g, IsSelected, o)
		},
		"Hamiltonian": EveWinsHamiltonianOpt,
	}
	for gname, g := range parityGraphs() {
		for name, game := range games {
			want := game(g, seq)
			if got := game(g, par); got != want {
				t.Errorf("%s on %s: parallel=%v sequential=%v", name, gname, got, want)
			}
		}
	}
}

// TestParallelNonKColorableMatchesSequential covers the Example 7
// complementation game, whose (2^k)^n outer space limits it to the
// smallest instances.
func TestParallelNonKColorableMatchesSequential(t *testing.T) {
	for gname, g := range map[string]*graph.Graph{
		"P2": graph.Path(2),
		"C3": graph.Cycle(3),
	} {
		for _, k := range []int{2, 3} {
			want := EveWinsNonKColorableOpt(g, k, search.Sequential())
			if got := EveWinsNonKColorableOpt(g, k, search.Parallel(0)); got != want {
				t.Errorf("NonKColorable(k=%d) on %s: parallel=%v sequential=%v", k, gname, got, want)
			}
			colorable := k >= 3 || gname == "P2"
			if want != !colorable {
				t.Errorf("NonKColorable(k=%d) on %s: got %v, expected %v", k, gname, want, !colorable)
			}
		}
	}
}

// TestForEachParentsOrderUnchanged pins the enumeration order of the
// sequential yield API (self first, then neighbors ascending) that the
// search-engine rewiring must preserve.
func TestForEachParentsOrderUnchanged(t *testing.T) {
	g := graph.Path(2)
	var got []Parents
	ForEachParents(g, func(p Parents) bool {
		got = append(got, append(Parents(nil), p...))
		return true
	})
	// Lexicographic with choice 0 = root: node 0's choices are (0, then
	// neighbor 1); node 1's are (1, then neighbor 0).
	want := []Parents{{0, 1}, {0, 0}, {1, 1}, {1, 0}}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d assignments, want %d", len(got), len(want))
	}
	for i := range want {
		for u := range want[i] {
			if got[i][u] != want[i][u] {
				t.Fatalf("assignment %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}
