package games

import (
	"strings"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulate"
)

// Machine-layer realization of the spanning-forest games as Σ^lp_3
// arbiters in the LOCAL model.
//
// Certificate encoding (three assignments κ1, κ2, κ3):
//
//	κ1(u): Eve's parent pointer — "0" marks u a root, "1"+id(parent)
//	       points to a neighbor (bounded: one bit + a local identifier).
//	κ2(u): Adam's challenge bit — "1" iff u ∈ X (anything else: u ∉ X).
//	κ3(u): Eve's response — two bits "YZ": the charge Y(u) and the shared
//	       uniqueness bit Z(u) (Z unused by the plain PointsTo arbiter).

// LocalTarget is a target condition evaluated from a node's local input,
// as the arbiter machine must do (e.g. label ≠ "1").
type LocalTarget func(in simulate.Input) bool

// UnselectedTarget is IsUnselected at machine level.
func UnselectedTarget(in simulate.Input) bool { return in.Label != "1" }

// SelectedTarget is IsSelected at machine level.
func SelectedTarget(in simulate.Input) bool { return in.Label == "1" }

type ptState struct {
	in       simulate.Input
	isRoot   bool
	parentID string
	x        bool
	y        bool
	z        bool
	ok       bool
	// learned in round 2
	parentSeen  bool
	parentY     bool
	unique      bool // running verdict for the uniqueness checks
	targetHolds bool
}

func parsePTState(in simulate.Input, target LocalTarget) *ptState {
	s := &ptState{in: in, ok: true, unique: true}
	s.targetHolds = target(in)
	k1, k2, k3 := "", "", ""
	if len(in.Certs) > 0 {
		k1 = in.Certs[0]
	}
	if len(in.Certs) > 1 {
		k2 = in.Certs[1]
	}
	if len(in.Certs) > 2 {
		k3 = in.Certs[2]
	}
	switch {
	case k1 == "0":
		s.isRoot = true
	case strings.HasPrefix(k1, "1"):
		s.parentID = k1[1:]
	default:
		s.ok = false // malformed Eve move: she loses locally
	}
	s.x = k2 == "1"
	if len(k3) == 2 {
		s.y = k3[0] == '1'
		s.z = k3[1] == '1'
	}
	return s
}

// round1Msg carries id, Y, Z, X and the parent claim to every neighbor.
func (s *ptState) round1Msg() string {
	parts := []string{s.in.ID, bit(s.y), bit(s.z), bit(s.x), bit(s.isRoot), s.parentID}
	return strings.Join(parts, ",")
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

type neighborInfo struct {
	id       string
	y, z, x  bool
	isRoot   bool
	parentID string
}

func parseNeighbor(msg string) (neighborInfo, bool) {
	parts := strings.SplitN(msg, ",", 6)
	if len(parts) != 6 {
		return neighborInfo{}, false
	}
	return neighborInfo{
		id:       parts[0],
		y:        parts[1] == "1",
		z:        parts[2] == "1",
		x:        parts[3] == "1",
		isRoot:   parts[4] == "1",
		parentID: parts[5],
	}, true
}

// checkPointsTo performs the round-2 local checks of the PointsTo schema.
func (s *ptState) checkPointsTo(neighbors []neighborInfo, unique bool) {
	if !s.ok {
		return
	}
	if s.isRoot {
		// RootCase[ϑ]: the root must satisfy the target and be positive.
		if !s.targetHolds || !s.y {
			s.ok = false
		}
	} else {
		// UniqueParent: the claimed parent must be exactly one neighbor.
		found := 0
		for _, nb := range neighbors {
			if nb.id == s.parentID {
				found++
				s.parentY = nb.y
			}
		}
		if found != 1 {
			s.ok = false
		} else {
			// ChildCase: Y(u) = Y(parent) XOR X(u).
			if s.y != (s.parentY != s.x) {
				s.ok = false
			}
		}
	}
	if unique && s.ok {
		// BelievesInOne[ϑ]: all nodes agree on Z; target nodes tie Z to
		// their own challenge membership.
		for _, nb := range neighbors {
			if nb.z != s.z {
				s.ok = false
			}
		}
		if s.targetHolds && s.z != s.x {
			s.ok = false
		}
	}
}

// newPointsToMachine builds the 2-round arbiter shared by the PointsTo and
// PointsToUnique games.
func newPointsToMachine(name string, target LocalTarget, unique bool) *simulate.Machine {
	return &simulate.Machine{
		Name: name,
		Init: func(in simulate.Input) any { return parsePTState(in, target) },
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*ptState)
			if round == 1 {
				out := make([]string, s.in.Degree)
				msg := s.round1Msg()
				for i := range out {
					out[i] = msg
				}
				return out, false
			}
			var neighbors []neighborInfo
			for _, m := range recv {
				nb, ok := parseNeighbor(m)
				if !ok {
					s.ok = false
					continue
				}
				neighbors = append(neighbors, nb)
			}
			s.checkPointsTo(neighbors, unique)
			return nil, true
		},
		Output: func(sv any) string { return bit(sv.(*ptState).ok) },
	}
}

// PointsToArbiter returns the Σ^lp_3 arbiter for the property
// "some node satisfies the target" (Example 6): Eve plays a spanning
// forest rooted at target nodes (κ1), Adam challenges with a set X (κ2),
// Eve responds with charges (κ3).
func PointsToArbiter(name string, target LocalTarget) *core.Arbiter {
	return &core.Arbiter{
		Machine:  newPointsToMachine(name, target, false),
		Level:    core.Sigma(3),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{2, 1}},
	}
}

// PointsToUniqueArbiter returns the Σ^lp_3 arbiter for "exactly one node
// satisfies the target" (Example 8).
func PointsToUniqueArbiter(name string, target LocalTarget) *core.Arbiter {
	return &core.Arbiter{
		Machine:  newPointsToMachine(name, target, true),
		Level:    core.Sigma(3),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{2, 1}},
	}
}

// NotAllSelectedArbiter is the Σ^lp_3 arbiter for not-all-selected.
func NotAllSelectedArbiter() *core.Arbiter {
	return PointsToArbiter("sigma3:not-all-selected", UnselectedTarget)
}

// OneSelectedArbiter is the Σ^lp_3 arbiter for one-selected.
func OneSelectedArbiter() *core.Arbiter {
	return PointsToUniqueArbiter("sigma3:one-selected", SelectedTarget)
}

// --- Eve's machine-level strategies -----------------------------------

// encodeParents converts a parent assignment into Eve's κ1 certificates.
func encodeParents(p Parents, id graph.IDAssignment) cert.Assignment {
	out := make(cert.Assignment, len(p))
	for u, v := range p {
		if u == v {
			out[u] = "0"
		} else {
			out[u] = "1" + id[v]
		}
	}
	return out
}

// decodeParents reconstructs the parent assignment from κ1 certificates
// (used by Eve's third-move strategy, which — being a strategy, not a
// distributed machine — may compute globally).
func decodeParents(g *graph.Graph, id graph.IDAssignment, k1 cert.Assignment) (Parents, bool) {
	p := make(Parents, g.N())
	for u := 0; u < g.N(); u++ {
		switch {
		case k1[u] == "0":
			p[u] = u
		case strings.HasPrefix(k1[u], "1"):
			pid := k1[u][1:]
			p[u] = -1
			for _, v := range g.Neighbors(u) {
				if id[v] == pid {
					p[u] = v
					break
				}
			}
			if p[u] < 0 {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return p, true
}

// decodeChallenge converts Adam's κ2 certificates into a challenge set.
func decodeChallenge(k2 cert.Assignment) Challenge {
	x := make(Challenge, len(k2))
	for u, s := range k2 {
		x[u] = s == "1"
	}
	return x
}

// ForestStrategy returns Eve's first-move strategy for PointsTo[target]:
// a BFS spanning forest toward target nodes. When no target node exists
// she has no winning move and plays all-roots (losing, as required).
func ForestStrategy(target Target) core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		p, ok := BFSForestTo(g, target)
		if !ok {
			p = make(Parents, g.N())
			for u := range p {
				p[u] = u
			}
		}
		return encodeParents(p, id), nil
	}
}

// HamiltonianStrategy returns Eve's first-move strategy for the
// Hamiltonian game: parent pointers along a Hamiltonian cycle.
func HamiltonianStrategy() core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		p, ok := HamiltonianPathParents(g)
		if !ok {
			p = make(Parents, g.N())
			for u := range p {
				p[u] = u
			}
		}
		return encodeParents(p, id), nil
	}
}

// ChargeStrategy returns Eve's third-move strategy: given her own κ1 and
// Adam's κ2 (moves[0] and moves[1]), solve for charges Y and the
// uniqueness bit Z. The target is needed to compute Z; pass nil for the
// plain PointsTo game (Z stays 0).
func ChargeStrategy(target Target) core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error) {
		out := make(cert.Assignment, g.N())
		for u := range out {
			out[u] = "00"
		}
		if len(moves) < 2 {
			return out, nil
		}
		p, ok := decodeParents(g, id, moves[0])
		if !ok {
			return out, nil
		}
		x := decodeChallenge(moves[1])
		y, ok := SolveCharges(p, x)
		if !ok {
			return out, nil // no consistent response exists
		}
		z := false
		if target != nil {
			var zok bool
			z, zok = SolveUniqueness(g, target, x)
			if !zok {
				z = false // inconsistent; Eve loses either way
			}
		}
		for u := range out {
			out[u] = bit(y[u]) + bit(z)
		}
		return out, nil
	}
}

// RootChargeStrategy is ChargeStrategy for games whose target is "is a
// root of Eve's own forest" (the Hamiltonian game): the target depends on
// Eve's first move, so it is resolved from moves[0].
func RootChargeStrategy() core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error) {
		out := make(cert.Assignment, g.N())
		for u := range out {
			out[u] = "00"
		}
		if len(moves) < 2 {
			return out, nil
		}
		p, ok := decodeParents(g, id, moves[0])
		if !ok {
			return out, nil
		}
		x := decodeChallenge(moves[1])
		y, ok := SolveCharges(p, x)
		if !ok {
			return out, nil
		}
		rootTarget := func(_ *graph.Graph, u int) bool { return p[u] == u }
		z, zok := SolveUniqueness(g, rootTarget, x)
		if !zok {
			z = false
		}
		for u := range out {
			out[u] = bit(y[u]) + bit(z)
		}
		return out, nil
	}
}

// --- Hamiltonian arbiter (3 rounds) ------------------------------------

type hamState struct {
	*ptState
	childCount int
	isLeaf     bool
	rootOK     bool
	neighbors  []neighborInfo
}

// HamiltonianArbiter returns the Σ^lp_3 arbiter of Example 9: the
// PointsToUnique[Root] checks plus MaxOneChild and SeesLeafIfRoot. It runs
// in three rounds (the third lets leaves announce themselves to the root).
func HamiltonianArbiter() *core.Arbiter {
	m := &simulate.Machine{
		Name: "sigma3:hamiltonian",
		Init: func(in simulate.Input) any {
			s := parsePTState(in, func(simulate.Input) bool { return false })
			// The target of the uniqueness game is "is a root", known
			// from the node's own κ1.
			s.targetHolds = s.isRoot
			return &hamState{ptState: s, rootOK: true}
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			h := sv.(*hamState)
			s := h.ptState
			switch round {
			case 1:
				out := make([]string, s.in.Degree)
				msg := s.round1Msg()
				for i := range out {
					out[i] = msg
				}
				return out, false
			case 2:
				for _, m := range recv {
					nb, ok := parseNeighbor(m)
					if !ok {
						s.ok = false
						continue
					}
					h.neighbors = append(h.neighbors, nb)
					if nb.parentID == s.in.ID && !nb.isRoot {
						h.childCount++
					}
				}
				s.checkPointsTo(h.neighbors, true)
				// MaxOneChild.
				if h.childCount > 1 {
					s.ok = false
				}
				h.isLeaf = h.childCount == 0
				// Announce leaf status (and echo the parent claim so the
				// root can verify the leaf is not its own child).
				out := make([]string, s.in.Degree)
				for i := range out {
					out[i] = bit(h.isLeaf) + "," + s.parentID
				}
				return out, false
			default:
				// SeesLeafIfRoot: the root needs an adjacent leaf that is
				// not its own child.
				if s.isRoot && s.ok {
					seen := false
					for _, m := range recv {
						parts := strings.SplitN(m, ",", 2)
						if len(parts) != 2 {
							continue
						}
						if parts[0] == "1" && parts[1] != s.in.ID {
							seen = true
						}
					}
					if !seen {
						s.ok = false
					}
				}
				return nil, true
			}
		},
		Output: func(sv any) string { return bit(sv.(*hamState).ok) },
	}
	return &core.Arbiter{
		Machine:  m,
		Level:    core.Sigma(3),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{2, 1}},
	}
}
