package games

import (
	"testing"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/props"
)

// TestEveWinsAcyclicMatchesGroundTruth: the acyclic spanning-tree game of
// Section 5.2 captures exactly the trees.
func TestEveWinsAcyclicMatchesGroundTruth(t *testing.T) {
	t.Parallel()
	graphs := []*graph.Graph{
		graph.Single(""), graph.Path(2), graph.Path(4), graph.Star(4),
		graph.Cycle(3), graph.Cycle(4), graph.Complete(4), graph.Grid(2, 2),
	}
	for _, g := range graphs {
		want := props.Acyclic(g)
		if got := EveWinsAcyclic(g); got != want {
			t.Fatalf("%v: EveWinsAcyclic = %v, want %v", g, got, want)
		}
	}
}

// TestEveWinsOddMatchesGroundTruth: the modulo-two counter game captures
// exactly the odd-cardinality graphs.
func TestEveWinsOddMatchesGroundTruth(t *testing.T) {
	t.Parallel()
	graphs := []*graph.Graph{
		graph.Single(""), graph.Path(2), graph.Path(3), graph.Path(4),
		graph.Cycle(3), graph.Cycle(4), graph.Cycle(5), graph.Star(4), graph.Star(5),
	}
	for _, g := range graphs {
		want := props.Odd(g)
		if got := EveWinsOdd(g); got != want {
			t.Fatalf("%v: EveWinsOdd = %v, want %v", g, got, want)
		}
	}
}

func TestSubtreeParities(t *testing.T) {
	t.Parallel()
	// Path 0<-1<-2: subtree sizes 3,2,1 → parities 1,0,1.
	p := Parents{0, 0, 1}
	parity, ok := subtreeParities(p)
	if !ok {
		t.Fatal("tree rejected")
	}
	want := []int{1, 0, 1}
	for u := range want {
		if parity[u] != want[u] {
			t.Fatalf("parities = %v, want %v", parity, want)
		}
	}
	// Star rooted at center: subtree sizes 4,1,1,1.
	p = Parents{0, 0, 0, 0}
	parity, ok = subtreeParities(p)
	if !ok || parity[0] != 0 || parity[1] != 1 {
		t.Fatalf("star parities = %v ok=%v", parity, ok)
	}
	// Cycles have no consistent parities.
	if _, ok := subtreeParities(Parents{1, 2, 0}); ok {
		t.Fatal("cycle accepted")
	}
	// Two roots are rejected too.
	if _, ok := subtreeParities(Parents{0, 1}); ok {
		t.Fatal("forest with two roots accepted")
	}
}

func sigma3Verdict(t *testing.T, arb *core.Arbiter, g *graph.Graph, move1, move3 core.Strategy) bool {
	t.Helper()
	id := graph.SmallLocallyUnique(g, 1)
	ok, err := arb.StrategyGameValue(g, id,
		[]core.Strategy{move1, nil, move3},
		[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}})
	if err != nil {
		t.Fatalf("StrategyGameValue: %v", err)
	}
	return ok
}

// oddChargeStrategy adapts RootChargeStrategy to κ1 values that carry the
// ":parity" suffix.
func oddChargeStrategy() core.Strategy {
	inner := RootChargeStrategy()
	return func(g *graph.Graph, id graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error) {
		if len(moves) >= 1 {
			stripped := make(cert.Assignment, len(moves[0]))
			for u, c := range moves[0] {
				for i := len(c) - 1; i >= 0; i-- {
					if c[i] == ':' {
						c = c[:i]
						break
					}
				}
				stripped[u] = c
			}
			moves = append([]cert.Assignment{stripped}, moves[1:]...)
		}
		return inner(g, id, moves)
	}
}

// TestAcyclicArbiter: the Σ^lp_3 machine decides tree-ness with Eve's
// strategy against all Adam challenges.
func TestAcyclicArbiter(t *testing.T) {
	t.Parallel()
	arb := AcyclicArbiter()
	graphs := []*graph.Graph{
		graph.Single(""), graph.Path(3), graph.Star(4),
		graph.Cycle(3), graph.Cycle(4), graph.Complete(4),
	}
	for _, g := range graphs {
		want := props.Acyclic(g)
		got := sigma3Verdict(t, arb, g, AcyclicStrategy(), RootChargeStrategy())
		if got != want {
			t.Fatalf("%v: acyclic arbiter = %v, want %v", g, got, want)
		}
	}
}

// TestOddArbiter: the Σ^lp_3 counter machine decides odd cardinality.
func TestOddArbiter(t *testing.T) {
	t.Parallel()
	arb := OddArbiter()
	graphs := []*graph.Graph{
		graph.Single(""), graph.Path(2), graph.Path(3), graph.Path(5),
		graph.Cycle(3), graph.Cycle(4), graph.Star(4), graph.Star(5),
	}
	for _, g := range graphs {
		want := props.Odd(g)
		got := sigma3Verdict(t, arb, g, OddStrategy(), oddChargeStrategy())
		if got != want {
			t.Fatalf("%v: odd arbiter = %v, want %v", g, got, want)
		}
	}
}

// TestOddArbiterRejectsForgedParity: Eve cannot fake oddness by lying
// about a subtree parity — the local aggregation check catches her.
func TestOddArbiterRejectsForgedParity(t *testing.T) {
	t.Parallel()
	g := graph.Path(2) // even: Eve should lose every play
	id := graph.SmallLocallyUnique(g, 1)
	forged := core.Strategy(func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		// Tree 1 -> 0, but both nodes claim parity 1.
		out := encodeParents(Parents{0, 0}, id)
		for u := range out {
			out[u] += ":1"
		}
		return out, nil
	})
	ok, err := OddArbiter().StrategyGameValue(g, id,
		[]core.Strategy{forged, nil, oddChargeStrategy()},
		[]cert.Domain{{}, cert.UniformDomain(2, 1), {}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("forged parity accepted")
	}
}
