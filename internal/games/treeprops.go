package games

import (
	"strings"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulate"
)

// This file implements the remaining Σ^lp_3 spanning-tree games listed at
// the end of Section 5.2 (and placed on the Figure 7 ladder):
//
//   - acyclic: Eve provides a spanning tree and each node checks that all
//     its incident edges belong to the tree;
//   - odd: Eve provides a spanning tree together with modulo-two subtree
//     counters aggregated from the leaves to the root; each node checks
//     its counter equals one plus the sum of its children's counters, and
//     the root checks its own counter is one.
//
// In both games the spanning tree is validated through the
// PointsToUnique[Root] machinery of Example 8 (Adam attacks cycles and
// root multiplicity), so the games sit at level Σ^lp_3.

// EveWinsAcyclic evaluates the acyclic game exactly: Eve wins iff she has
// a spanning tree containing every edge of the graph — i.e. iff the graph
// is a tree.
func EveWinsAcyclic(g *graph.Graph) bool {
	won := false
	ForEachParents(g, func(p Parents) bool {
		// Every incident edge must be a tree edge: {u,v} ∈ E implies
		// p[u] == v or p[v] == u.
		for _, e := range g.Edges() {
			if p[e.U] != e.V && p[e.V] != e.U {
				return true // try next P
			}
		}
		if !adamDefeats(g, p, func(_ *graph.Graph, u int) bool { return p[u] == u }) {
			won = true
			return false
		}
		return true
	})
	return won
}

// EveWinsOdd evaluates the odd game exactly: Eve wins iff the number of
// nodes is odd. Her counters are forced bottom-up by the tree, so only
// the tree choice is enumerated.
func EveWinsOdd(g *graph.Graph) bool {
	won := false
	ForEachParents(g, func(p Parents) bool {
		if p.HasNonRootCycle() || len(p.Roots()) != 1 {
			// Adam would win the charge/uniqueness game; and if he
			// cannot, the counters below are well defined.
			if adamDefeats(g, p, func(_ *graph.Graph, u int) bool { return p[u] == u }) {
				return true
			}
		}
		parity, ok := subtreeParities(p)
		if !ok {
			return true
		}
		root := p.Roots()[0]
		if parity[root]%2 != 1 {
			return true // the tree exists but witnesses even cardinality
		}
		if !adamDefeats(g, p, func(_ *graph.Graph, u int) bool { return p[u] == u }) {
			won = true
			return false
		}
		return true
	})
	return won
}

// adamDefeats reports whether Adam has a winning challenge against Eve's
// parent assignment in the PointsToUnique[target] sub-game.
func adamDefeats(g *graph.Graph, p Parents, target Target) bool {
	defeated := false
	ForEachChallenge(g.N(), func(x Challenge) bool {
		if _, ok := SolveCharges(p, x); !ok {
			defeated = true
			return false
		}
		if _, ok := SolveUniqueness(g, target, x); !ok {
			defeated = true
			return false
		}
		return true
	})
	return defeated
}

// subtreeParities computes, for an acyclic single-root parent assignment,
// the sizes mod 2 of all subtrees. ok is false when p has a non-root
// cycle (no consistent counters exist).
func subtreeParities(p Parents) ([]int, bool) {
	if p.HasNonRootCycle() || len(p.Roots()) != 1 {
		return nil, false
	}
	n := len(p)
	parity := make([]int, n)
	order := make([]int, 0, n)
	depth := make([]int, n)
	for u := 0; u < n; u++ {
		d := 0
		for v := u; p[v] != v; v = p[v] {
			d++
		}
		depth[u] = d
		order = append(order, u)
	}
	// Process deepest first so children precede parents.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && depth[order[j]] > depth[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for u := range parity {
		parity[u] = 1 // each node counts itself
	}
	for _, u := range order {
		if p[u] != u {
			parity[p[u]] = (parity[p[u]] + parity[u]) % 2
		}
	}
	return parity, true
}

// --- machine layer -------------------------------------------------------

// acyclicState extends the PointsToUnique checks with the all-edges-in-
// tree condition.
type acyclicState struct {
	*ptState
}

// AcyclicArbiter returns the Σ^lp_3 arbiter for acyclicity: the
// PointsToUnique[Root] checks plus "every incident edge is a tree edge".
// κ1(u) = parent pointer; κ2(u) = Adam's challenge bit; κ3(u) = "YZ".
func AcyclicArbiter() *core.Arbiter {
	m := &simulate.Machine{
		Name: "sigma3:acyclic",
		Init: func(in simulate.Input) any {
			s := parsePTState(in, func(simulate.Input) bool { return false })
			s.targetHolds = s.isRoot
			return &acyclicState{ptState: s}
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*acyclicState).ptState
			if round == 1 {
				out := make([]string, s.in.Degree)
				msg := s.round1Msg()
				for i := range out {
					out[i] = msg
				}
				return out, false
			}
			var neighbors []neighborInfo
			for _, m := range recv {
				nb, ok := parseNeighbor(m)
				if !ok {
					s.ok = false
					continue
				}
				neighbors = append(neighbors, nb)
			}
			s.checkPointsTo(neighbors, true)
			// Every incident edge must be in the tree: each neighbor is
			// either my parent or points to me.
			for _, nb := range neighbors {
				isMyParent := !s.isRoot && nb.id == s.parentID
				pointsToMe := !nb.isRoot && nb.parentID == s.in.ID
				if !isMyParent && !pointsToMe {
					s.ok = false
				}
			}
			return nil, true
		},
		Output: func(sv any) string { return bit(sv.(*acyclicState).ok) },
	}
	return &core.Arbiter{
		Machine:  m,
		Level:    core.Sigma(3),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{2, 1}},
	}
}

// oddState carries the parity counter parsed from κ1.
type oddState struct {
	*ptState
	parity       int
	childrenSum  int
	childParSeen int
}

// OddArbiter returns the Σ^lp_3 arbiter for "odd number of nodes": Eve's
// κ1(u) is the parent pointer followed by ':' and the subtree-parity bit
// (pointer and counter are both hers to choose); the nodes verify the
// modulo-two aggregation locally. κ2/κ3 are Adam's challenge and Eve's
// charges as usual.
func OddArbiter() *core.Arbiter {
	m := &simulate.Machine{
		Name: "sigma3:odd",
		Init: func(in simulate.Input) any {
			// Split κ1 = <pointer>:<parity>.
			base := in
			parity := -1
			if len(in.Certs) > 0 {
				if i := strings.LastIndexByte(in.Certs[0], ':'); i >= 0 {
					switch in.Certs[0][i+1:] {
					case "0":
						parity = 0
					case "1":
						parity = 1
					}
					base.Certs = append([]string{in.Certs[0][:i]}, in.Certs[1:]...)
				}
			}
			s := parsePTState(base, func(simulate.Input) bool { return false })
			s.targetHolds = s.isRoot
			if parity < 0 {
				s.ok = false
				parity = 0
			}
			return &oddState{ptState: s, parity: parity}
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			o := sv.(*oddState)
			s := o.ptState
			if round == 1 {
				// Message: the PointsTo fields plus the parity bit.
				out := make([]string, s.in.Degree)
				msg := s.round1Msg() + "," + bit(o.parity == 1)
				for i := range out {
					out[i] = msg
				}
				return out, false
			}
			var neighbors []neighborInfo
			sum := 0
			for _, m := range recv {
				i := strings.LastIndexByte(m, ',')
				if i < 0 {
					s.ok = false
					continue
				}
				nb, ok := parseNeighbor(m[:i])
				if !ok {
					s.ok = false
					continue
				}
				neighbors = append(neighbors, nb)
				// Children contribute their parity.
				if !nb.isRoot && nb.parentID == s.in.ID && m[i+1:] == "1" {
					sum++
				}
			}
			s.checkPointsTo(neighbors, true)
			// Counter check: my parity = 1 + Σ children parities (mod 2).
			if o.parity != (1+sum)%2 {
				s.ok = false
			}
			// The root's parity is the total cardinality mod 2.
			if s.isRoot && o.parity != 1 {
				s.ok = false
			}
			return nil, true
		},
		Output: func(sv any) string { return bit(sv.(*oddState).ok) },
	}
	return &core.Arbiter{
		Machine:  m,
		Level:    core.Sigma(3),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{3, 1}},
	}
}

// AcyclicStrategy returns Eve's first move for the acyclic game: the
// graph's own edge set as a tree rooted at node 0 (only winning when the
// graph is a tree).
func AcyclicStrategy() core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		p, ok := BFSForestTo(g, func(_ *graph.Graph, u int) bool { return u == 0 })
		if !ok {
			p = make(Parents, g.N())
			for u := range p {
				p[u] = u
			}
		}
		return encodeParents(p, id), nil
	}
}

// OddStrategy returns Eve's first move for the odd game: a BFS spanning
// tree rooted at node 0 with the true subtree parities attached.
func OddStrategy() core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		p, _ := BFSForestTo(g, func(_ *graph.Graph, u int) bool { return u == 0 })
		parity, ok := subtreeParities(p)
		out := encodeParents(p, id)
		for u := range out {
			b := "0"
			if ok && parity[u] == 1 {
				b = "1"
			}
			out[u] += ":" + b
		}
		return out, nil
	}
}
