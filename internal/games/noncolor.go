package games

import (
	"strings"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulate"
)

// This file implements the non-2-colorable game from the end of Section
// 5.2: a graph is non-2-colorable iff it contains an odd cycle, and Eve
// proves the existence of one by retracing it with an oriented relation R,
// anchoring a spanning tree at a node of that cycle, and propagating a
// modulo-two parity around it. The root checks it has the *same* parity as
// its R-predecessor — around a cycle of alternating parities this is
// possible exactly when the cycle is odd. The spanning tree (validated by
// the PointsToUnique machinery, with Adam's challenges as κ2/κ3)
// guarantees the root is unique, so exactly one cycle is forced odd.
//
// Certificate layout: κ1(u) = <parent>|<onCycle>|<predID>|<parity> where
// <parent> is the PointsTo pointer ("0" root / "1"+id), onCycle and parity
// are bits, and predID is the identifier of u's R-predecessor (empty when
// off-cycle).

type oddCycleState struct {
	*ptState
	onCycle bool
	predID  string
	parity  bool
}

func parseOddCycleState(in simulate.Input) *oddCycleState {
	// Split κ1 into the PointsTo pointer and the cycle fields.
	base := in
	s := &oddCycleState{}
	var fields []string
	if len(in.Certs) > 0 {
		fields = strings.Split(in.Certs[0], "|")
	}
	if len(fields) == 4 {
		base.Certs = append([]string{fields[0]}, in.Certs[1:]...)
	} else {
		base.Certs = append([]string{""}, in.Certs[1:]...) // malformed
	}
	s.ptState = parsePTState(base, func(simulate.Input) bool { return false })
	if len(fields) != 4 {
		s.ok = false
		return s
	}
	s.onCycle = fields[1] == "1"
	s.predID = fields[2]
	s.parity = fields[3] == "1"
	s.targetHolds = s.isRoot
	return s
}

// oddCycleMsg extends the PointsTo round-1 message with the cycle fields.
func (s *oddCycleState) oddCycleMsg() string {
	return s.round1Msg() + ";" + bit(s.onCycle) + ";" + s.predID + ";" + bit(s.parity)
}

type oddCycleNeighbor struct {
	neighborInfo
	onCycle bool
	predID  string
	parity  bool
}

func parseOddCycleNeighbor(m string) (oddCycleNeighbor, bool) {
	parts := strings.Split(m, ";")
	if len(parts) != 4 {
		return oddCycleNeighbor{}, false
	}
	nb, ok := parseNeighbor(parts[0])
	if !ok {
		return oddCycleNeighbor{}, false
	}
	return oddCycleNeighbor{
		neighborInfo: nb,
		onCycle:      parts[1] == "1",
		predID:       parts[2],
		parity:       parts[3] == "1",
	}, true
}

// NonTwoColorableArbiter returns the Σ^lp_3 arbiter for
// non-2-colorability.
func NonTwoColorableArbiter() *core.Arbiter {
	m := &simulate.Machine{
		Name: "sigma3:non-2-colorable",
		Init: func(in simulate.Input) any { return parseOddCycleState(in) },
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*oddCycleState)
			if round == 1 {
				out := make([]string, s.in.Degree)
				msg := s.oddCycleMsg()
				for i := range out {
					out[i] = msg
				}
				return out, false
			}
			var neighbors []neighborInfo
			var cyc []oddCycleNeighbor
			for _, m := range recv {
				nb, ok := parseOddCycleNeighbor(m)
				if !ok {
					s.ok = false
					continue
				}
				neighbors = append(neighbors, nb.neighborInfo)
				cyc = append(cyc, nb)
			}
			// Spanning-tree checks with uniqueness (root anchored).
			s.checkPointsTo(neighbors, true)
			// The root must lie on Eve's cycle.
			if s.isRoot && !s.onCycle {
				s.ok = false
			}
			if s.onCycle && s.ok {
				// Exactly one on-cycle neighbor is my predecessor, and it
				// must carry the right parity: equal for the root,
				// opposite for everyone else.
				pred := 0
				succ := 0
				for _, nb := range cyc {
					if nb.onCycle && nb.id == s.predID {
						pred++
						if s.isRoot {
							if nb.parity != s.parity {
								s.ok = false
							}
						} else if nb.parity == s.parity {
							s.ok = false
						}
					}
					// Successor: a neighbor naming me as its predecessor.
					if nb.onCycle && nb.predID == s.in.ID {
						succ++
					}
				}
				if pred != 1 || succ != 1 {
					s.ok = false
				}
			}
			return nil, true
		},
		Output: func(sv any) string { return bit(sv.(*oddCycleState).ok) },
	}
	return &core.Arbiter{
		Machine:  m,
		Level:    core.Sigma(3),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{4, 1}},
	}
}

// OddCycle finds an odd cycle in g, returned as a node sequence
// (c[0], c[1], …, c[k-1], back to c[0]) of odd length, or ok=false when g
// is bipartite. It uses the BFS parity argument: an edge between
// same-parity nodes closes an odd cycle through their BFS paths.
func OddCycle(g *graph.Graph) ([]int, bool) {
	n := g.N()
	parent := make([]int, n)
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	queue := []int{0}
	order := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if parent[v] < 0 {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
				order = append(order, v)
			}
		}
	}
	for _, e := range g.Edges() {
		if depth[e.U]%2 != depth[e.V]%2 {
			continue
		}
		// Odd cycle: paths from e.U and e.V up to their LCA, plus {U,V}.
		a, b := e.U, e.V
		var pa, pb []int
		for a != b {
			if depth[a] >= depth[b] {
				pa = append(pa, a)
				a = parent[a]
			} else {
				pb = append(pb, b)
				b = parent[b]
			}
		}
		cycle := make([]int, 0, len(pa)+len(pb)+1)
		cycle = append(cycle, pa...)
		cycle = append(cycle, a) // the LCA
		for i := len(pb) - 1; i >= 0; i-- {
			cycle = append(cycle, pb[i])
		}
		return cycle, true
	}
	return nil, false
}

// NonTwoColorableStrategy returns Eve's first move: retrace an odd cycle
// with alternating parities, rooted at its first node, with a BFS
// spanning tree anchored there. On bipartite graphs she has no winning
// move and plays an empty claim.
func NonTwoColorableStrategy() core.Strategy {
	return func(g *graph.Graph, id graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		n := g.N()
		out := make(cert.Assignment, n)
		cycle, ok := OddCycle(g)
		if !ok {
			for u := range out {
				out[u] = "0|0||0" // all roots, no cycle: loses, as it must
			}
			return out, nil
		}
		root := cycle[0]
		p, _ := BFSForestTo(g, func(_ *graph.Graph, u int) bool { return u == root })
		parents := encodeParents(p, id)
		onCycle := make([]bool, n)
		pred := make([]string, n)
		parity := make([]bool, n)
		for i, u := range cycle {
			onCycle[u] = true
			prev := cycle[(i-1+len(cycle))%len(cycle)]
			pred[u] = id[prev]
			parity[u] = i%2 == 1 // alternates; cycle[0] gets false and its
			// predecessor cycle[k-1] has parity (k-1)%2 = 0 for odd k:
			// equal parities at the root, as required.
		}
		for u := 0; u < n; u++ {
			out[u] = parents[u] + "|" + bit(onCycle[u]) + "|" + pred[u] + "|" + bit(parity[u])
		}
		return out, nil
	}
}

// nonTwoColorChargeStrategy strips the cycle fields before delegating to
// the root-targeted charge solver.
func NonTwoColorChargeStrategy() core.Strategy {
	inner := RootChargeStrategy()
	return func(g *graph.Graph, id graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error) {
		if len(moves) >= 1 {
			stripped := make(cert.Assignment, len(moves[0]))
			for u, c := range moves[0] {
				if i := strings.IndexByte(c, '|'); i >= 0 {
					c = c[:i]
				}
				stripped[u] = c
			}
			moves = append([]cert.Assignment{stripped}, moves[1:]...)
		}
		return inner(g, id, moves)
	}
}
