// Package games implements the Eve/Adam certificate games built from the
// spanning-forest constructions of Section 5.2: the PointsTo schema of
// Example 6 (a spanning forest whose roots satisfy a target condition,
// refutable by Adam through charge challenges), the PointsToUnique schema
// of Example 8 (a spanning tree rooted at the unique target node), and the
// Hamiltonian-cycle game of Example 9.
//
// The package has two layers:
//
//   - a semantic layer (this file) that evaluates the games exactly over
//     all of Eve's parent assignments and all of Adam's challenge sets,
//     with Eve's charge responses computed by constraint propagation; and
//   - a machine layer (machines.go) realizing the same games as Σ^lp_3
//     arbiters in the LOCAL model, with certificates carrying the parent
//     pointers, challenge bits and charges.
package games

import (
	"repro/internal/graph"
	"repro/internal/search"
)

// Target is a locally checkable node predicate ϑ(x) (it may inspect the
// node's label and degree; the formulas of Section 5.2 use exactly that).
type Target func(g *graph.Graph, u int) bool

// IsUnselected is the target of Example 6: the node's label is not "1".
func IsUnselected(g *graph.Graph, u int) bool { return g.Label(u) != "1" }

// IsSelected is the target of Example 8: the node's label is "1".
func IsSelected(g *graph.Graph, u int) bool { return g.Label(u) == "1" }

// Parents is Eve's first move: a parent pointer per node. Parents[u] == u
// marks u as a root; otherwise Parents[u] must be a neighbor of u
// (UniqueParent in Example 6 restricts pointers to distance 1).
type Parents []int

// Valid reports whether the parent assignment satisfies UniqueParent.
func (p Parents) Valid(g *graph.Graph) bool {
	if len(p) != g.N() {
		return false
	}
	for u, v := range p {
		if v != u && !g.HasEdge(u, v) {
			return false
		}
	}
	return true
}

// Roots returns the self-pointing nodes.
func (p Parents) Roots() []int {
	var out []int
	for u, v := range p {
		if u == v {
			out = append(out, u)
		}
	}
	return out
}

// HasNonRootCycle reports whether the functional graph of p contains a
// directed cycle that is not a root self-loop — exactly the defect Adam
// can expose with a singleton challenge set (Example 6).
func (p Parents) HasNonRootCycle() bool {
	n := len(p)
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	for s := 0; s < n; s++ {
		u := s
		var path []int
		for state[u] == 0 {
			state[u] = 1
			path = append(path, u)
			if p[u] == u {
				break // reached a root
			}
			u = p[u]
		}
		if state[u] == 1 && p[u] != u {
			// Found a cycle through u that is not a self-loop.
			return true
		}
		for _, v := range path {
			state[v] = 2
		}
	}
	return false
}

// parentsSpace is the search space of all parent assignments of g: one
// position per node, choice 0 meaning "root" (point to self) and choice
// i > 0 meaning the node's (i-1)-th neighbor. Every assignment in the
// space satisfies UniqueParent by construction.
func parentsSpace(g *graph.Graph) search.Space {
	degs := g.Degrees()
	return search.Space{Len: g.N(), Size: func(u int) int { return 1 + degs[u] }}
}

// decodeParentsAsm writes the parent assignment encoded by a parentsSpace
// assignment into p.
func decodeParentsAsm(g *graph.Graph, asm []int, p Parents) {
	for u, c := range asm {
		if c == 0 {
			p[u] = u
		} else {
			p[u] = g.Neighbors(u)[c-1]
		}
	}
}

// newParentsScratch pools Parents buffers so the exponentially many
// predicate calls of a parallel game evaluation reuse a handful of
// per-worker buffers instead of allocating one per assignment.
func newParentsScratch(n int) *search.Scratch[Parents] {
	return search.NewScratch(func() Parents { return make(Parents, n) })
}

// ForEachParents enumerates all parent assignments of g (each node points
// to itself or to one of its neighbors), invoking yield for each; stops
// early when yield returns false.
func ForEachParents(g *graph.Graph, yield func(Parents) bool) bool {
	p := make(Parents, g.N())
	return search.ForEach(parentsSpace(g), func(asm []int) bool {
		decodeParentsAsm(g, asm, p)
		return yield(p)
	})
}

// Challenge is Adam's move: the set X of challenged nodes.
type Challenge []bool

// ForEachChallenge enumerates all 2^n challenge sets.
func ForEachChallenge(n int, yield func(Challenge) bool) bool {
	cur := make(Challenge, n)
	return search.ForEach(search.Binary(n), func(asm []int) bool {
		for u, b := range asm {
			cur[u] = b == 1
		}
		return yield(cur)
	})
}

// SolveCharges computes Eve's charge response Y to Adam's challenge X:
// roots must be positively charged, children outside X share their
// parent's charge, children in X take the opposite charge (the ChildCase
// formula of Example 6). It returns the charges and whether a consistent
// response exists. Consistency fails exactly when some directed cycle of p
// that is not a root self-loop has an odd number of challenged nodes.
func SolveCharges(p Parents, x Challenge) ([]bool, bool) {
	n := len(p)
	y := make([]bool, n)
	det := make([]int8, n) // 0 undetermined, 1 determined, 2 visiting
	var visit func(u int) bool
	visit = func(u int) bool {
		if det[u] == 1 {
			return true
		}
		if det[u] == 2 {
			// Hit a cycle: seed u arbitrarily (positive), then verify the
			// cycle constraint when unwinding.
			y[u] = true
			det[u] = 1
			return true
		}
		if p[u] == u {
			y[u] = true // RootCase: roots are positive
			det[u] = 1
			return true
		}
		det[u] = 2
		if !visit(p[u]) {
			return false
		}
		want := y[p[u]] != x[u] // Y(u) = Y(parent) XOR X(u)
		if det[u] == 1 {
			// u was seeded as a cycle entry point: check consistency.
			return y[u] == want
		}
		y[u] = want
		det[u] = 1
		return true
	}
	for u := 0; u < n; u++ {
		if !visit(u) {
			return nil, false
		}
	}
	return y, true
}

// EveWinsPointsTo evaluates the PointsTo[target] game of Example 6
// exactly: Eve wins iff
//
//	∃P ∀X ∃Y : every node passes UniqueParent ∧ RootCase[ϑ] ∧ ChildCase.
//
// Adam's challenges are enumerated exhaustively; Eve's charge responses
// come from SolveCharges (which finds a response whenever one exists).
// Eve's parent assignments are searched by the package default engine
// (parallel across all CPUs); EveWinsPointsToOpt selects the engine.
func EveWinsPointsTo(g *graph.Graph, target Target) bool {
	return EveWinsPointsToOpt(g, target, search.Default())
}

// EveWinsPointsToOpt is EveWinsPointsTo under explicit search options.
// The target must be safe for concurrent calls when the engine is
// parallel (the paper's targets inspect only labels and degrees). Do
// not set Options.Ctx here: on cancellation the Boolean returned is
// meaningless, and this wrapper discards the error that would flag it —
// callers needing cancellation should drive search.Exists directly.
func EveWinsPointsToOpt(g *graph.Graph, target Target, o search.Options) bool {
	scratch := newParentsScratch(g.N())
	won, _ := search.Exists(o, parentsSpace(g), func(asm []int) bool {
		p, put := scratch.Get()
		defer put()
		decodeParentsAsm(g, asm, p)
		return parentsWinPointsTo(g, p, target)
	})
	return won
}

// parentsWinPointsTo reports whether Eve's parent assignment p survives
// RootCase[target] and every challenge of Adam.
func parentsWinPointsTo(g *graph.Graph, p Parents, target Target) bool {
	for _, r := range p.Roots() {
		if !target(g, r) {
			return false
		}
	}
	adamBreaks := false
	ForEachChallenge(g.N(), func(x Challenge) bool {
		if _, ok := SolveCharges(p, x); !ok {
			adamBreaks = true
			return false
		}
		return true
	})
	return !adamBreaks
}

// SolveUniqueness computes Eve's Z response in the PointsToUnique game of
// Example 8: Z is a global Boolean (all nodes must agree), and every node
// satisfying the target must set Z equal to its own challenge membership.
// It returns a consistent Z and whether one exists: it does iff all target
// nodes agree on membership in X.
func SolveUniqueness(g *graph.Graph, target Target, x Challenge) (bool, bool) {
	z := false
	seen := false
	for u := 0; u < g.N(); u++ {
		if !target(g, u) {
			continue
		}
		if !seen {
			z = x[u]
			seen = true
		} else if x[u] != z {
			return false, false
		}
	}
	return z, true
}

// EveWinsPointsToUnique evaluates the PointsToUnique[target] game of
// Example 8 exactly: PointsTo plus Adam's second line of attack on the
// uniqueness of the target node. Eve wins iff exactly one node satisfies
// the target (and she can then produce a spanning tree rooted there).
func EveWinsPointsToUnique(g *graph.Graph, target Target) bool {
	return EveWinsPointsToUniqueOpt(g, target, search.Default())
}

// EveWinsPointsToUniqueOpt is EveWinsPointsToUnique under explicit
// search options (same concurrency and Ctx caveats as
// EveWinsPointsToOpt).
func EveWinsPointsToUniqueOpt(g *graph.Graph, target Target, o search.Options) bool {
	scratch := newParentsScratch(g.N())
	won, _ := search.Exists(o, parentsSpace(g), func(asm []int) bool {
		p, put := scratch.Get()
		defer put()
		decodeParentsAsm(g, asm, p)
		for _, r := range p.Roots() {
			if !target(g, r) {
				return false
			}
		}
		return !adamDefeats(g, p, target)
	})
	return won
}

// EveWinsHamiltonian evaluates the Hamiltonian-cycle game of Example 9
// exactly: Eve proposes a spanning tree that must be a Hamiltonian path
// (unique root via PointsToUnique[Root], at most one child per node) whose
// root is adjacent to the unique leaf without being its parent.
func EveWinsHamiltonian(g *graph.Graph) bool {
	return EveWinsHamiltonianOpt(g, search.Default())
}

// EveWinsHamiltonianOpt is EveWinsHamiltonian under explicit search
// options (same Ctx caveat as EveWinsPointsToOpt).
func EveWinsHamiltonianOpt(g *graph.Graph, o search.Options) bool {
	n := g.N()
	scratch := newParentsScratch(n)
	won, _ := search.Exists(o, parentsSpace(g), func(asm []int) bool {
		p, put := scratch.Get()
		defer put()
		decodeParentsAsm(g, asm, p)
		// MaxOneChild: each node has at most one child.
		children := make([]int, n)
		for u, v := range p {
			if u != v {
				children[v]++
				if children[v] > 1 {
					return false
				}
			}
		}
		// SeesLeafIfRoot: every root is adjacent to a leaf that is not its
		// own child. (Leaves are nodes with no children.)
		for _, r := range p.Roots() {
			ok := false
			for _, v := range g.Neighbors(r) {
				if children[v] == 0 && p[v] != r {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		// The Root target: roots are exactly the self-pointing nodes.
		rootTarget := func(_ *graph.Graph, u int) bool { return p[u] == u }
		return !adamDefeats(g, p, rootTarget)
	})
	return won
}

// BFSForestTo returns Eve's canonical winning first move when some node
// satisfies the target: a BFS spanning forest in which every parent
// pointer leads one step closer to the nearest target node. All roots
// satisfy the target and the forest is acyclic.
func BFSForestTo(g *graph.Graph, target Target) (Parents, bool) {
	n := g.N()
	p := make(Parents, n)
	dist := make([]int, n)
	for u := range p {
		p[u] = -1
		dist[u] = -1
	}
	var queue []int
	for u := 0; u < n; u++ {
		if target(g, u) {
			p[u] = u
			dist[u] = 0
			queue = append(queue, u)
		}
	}
	if len(queue) == 0 {
		return nil, false
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if p[v] < 0 {
				p[v] = u
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return p, true
}

// HamiltonianPathParents returns Eve's canonical winning first move in the
// Hamiltonian game: parent pointers along a Hamiltonian cycle, rooted at
// one end (each node's parent is its predecessor on the path, the root
// points to itself, and the root is adjacent to the final leaf).
func HamiltonianPathParents(g *graph.Graph) (Parents, bool) {
	n := g.N()
	if n < 3 {
		return nil, false
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	visited[0] = true
	order = append(order, 0)
	var dfs func(u, count int) bool
	dfs = func(u, count int) bool {
		if count == n {
			return g.HasEdge(u, 0)
		}
		for _, v := range g.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				order = append(order, v)
				if dfs(v, count+1) {
					return true
				}
				order = order[:len(order)-1]
				visited[v] = false
			}
		}
		return false
	}
	if !dfs(0, 1) {
		return nil, false
	}
	p := make(Parents, n)
	p[order[0]] = order[0]
	for i := 1; i < n; i++ {
		p[order[i]] = order[i-1]
	}
	return p, true
}
