package games

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/props"
)

// TestEveWinsNonKColorable: the Example 7 complementation game captures
// exactly the non-k-colorable graphs. (Instances are tiny: the outer ∀
// ranges over (2^k)^n color-set proposals and the inner game over all of
// Eve's forests and Adam's challenges.)
func TestEveWinsNonKColorable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"P2 k=2", graph.Path(2), 2},
		{"P3 k=2", graph.Path(3), 2},
		{"C3 k=2", graph.Cycle(3), 2}, // odd cycle: non-2-colorable
		{"C4 k=2", graph.Cycle(4), 2},
		{"C3 k=3", graph.Cycle(3), 3},
		{"K4 k=3", graph.Complete(4), 3}, // non-3-colorable
	}
	for _, tt := range cases {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			want := !props.KColorable(tt.g, tt.k)
			if got := EveWinsNonKColorable(tt.g, tt.k); got != want {
				t.Fatalf("EveWinsNonKColorable = %v, want %v", got, want)
			}
		})
	}
}

func TestForEachColorSets(t *testing.T) {
	t.Parallel()
	count := 0
	ForEachColorSets(2, 2, func(ColorSets) bool {
		count++
		return true
	})
	if count != 16 {
		t.Fatalf("enumerated %d color-set assignments, want 16", count)
	}
}

func TestBadlyColored(t *testing.T) {
	t.Parallel()
	g := graph.Path(2)
	// Node 0 color 0, node 1 color 0: both bad (shared color).
	cs := ColorSets{{true, false}, {true, false}}
	if !badlyColored(g, cs, 0) || !badlyColored(g, cs, 1) {
		t.Fatal("conflict not detected")
	}
	// Proper coloring: no bad nodes.
	cs = ColorSets{{true, false}, {false, true}}
	if badlyColored(g, cs, 0) || badlyColored(g, cs, 1) {
		t.Fatal("proper coloring flagged")
	}
	// No color at all.
	cs = ColorSets{{false, false}, {false, true}}
	if !badlyColored(g, cs, 0) {
		t.Fatal("uncolored node not flagged")
	}
	// Two colors at once.
	cs = ColorSets{{true, true}, {false, true}}
	if !badlyColored(g, cs, 0) {
		t.Fatal("doubly colored node not flagged")
	}
}
