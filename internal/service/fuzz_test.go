package service

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graphio"
)

// FuzzDecodeRequest fuzzes the service's JSON request decoder. The seeds
// wrap the graphio fuzz corpus — well-formed graphs plus the
// malformed-JSON inputs behind cmd/lph's exit-2 handling — into request
// bodies, alongside request-specific malformations (unknown fields,
// trailing data, negative workers). The invariant: DecodeRequest never
// panics, never returns both a request and an error, never accepts
// negative workers, and any graph it accepts survives a graphio
// round trip unchanged.
func FuzzDecodeRequest(f *testing.F) {
	// The graphio corpus, embedded as request graph fields.
	for _, g := range []string{
		`{"n":3,"edges":[[0,1],[1,2]],"labels":["1","0","1"]}`,
		`{"n":1}`,
		`{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`,
		`{"n":2,"edges":[[0,1]]} trailing garbage`,
		`{"n":2,"edges":[[0,1]]}{"n":1}`,
		`{"n":2,"edges":[[0,1]`,
		`{"n":2,"edges":[[0,5]]}`,
		`{"n":0}`,
		`null`,
		`[[0,1]]`,
		`{"n":-1,"edges":[[0,1]]}`,
		`{"n":2,"edges":[[0,1]],"labels":["2",""]}`,
	} {
		f.Add([]byte(`{"graph":` + g + `,"property":"all-selected","workers":2}`))
		f.Add([]byte(`{"graph":` + g + `,"reduction":"eulerian"}`))
	}
	// Request-shaped malformations.
	for _, req := range []string{
		``,
		`not json`,
		`{}`,
		`{"game":"figure1"}`,
		`{"property":"all-selected"}`,
		`{"graph":{"n":1},"property":"x"} trailing`,
		`{"graph":{"n":1}}{"graph":{"n":1}}`,
		`{"graf":{"n":1}}`,
		`{"graph":{"n":1},"workers":-5}`,
		`{"graph":{"n":1},"workers":1e9}`,
		`{"graph":null,"property":"all-selected"}`,
		`{"graph":{"n":1},"property":"all-selected","workers":2,"property":"eulerian"}`,
		`[{"graph":{"n":1}}]`,
	} {
		f.Add([]byte(req))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatalf("DecodeRequest returned both a request and %v", err)
			}
			return
		}
		if req.Workers < 0 {
			t.Fatalf("decoder accepted negative workers %d", req.Workers)
		}
		g, err := req.DecodeGraph()
		if err != nil {
			if g != nil {
				t.Fatalf("DecodeGraph returned both a graph and %v", err)
			}
			return
		}
		// Accepted graphs must round-trip, mirroring FuzzReadGraph.
		var buf bytes.Buffer
		if err := graphio.Encode(&buf, g); err != nil {
			t.Fatalf("accepted graph does not re-encode: %v", err)
		}
		h, err := graphio.Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-encoded graph does not decode: %v", err)
		}
		if !g.Equal(h) {
			t.Fatalf("round trip changed the graph:\n%v\nvs\n%v", g, h)
		}
	})
}
