package service

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/graphio"
)

// FuzzDecodeRequest fuzzes the service's JSON request decoder. The seeds
// wrap the graphio fuzz corpus — well-formed graphs plus the
// malformed-JSON inputs behind cmd/lph's exit-2 handling — into request
// bodies, alongside request-specific malformations (unknown fields,
// trailing data, negative workers). The invariant: DecodeRequest never
// panics, never returns both a request and an error, never accepts
// negative workers, and any graph it accepts survives a graphio
// round trip unchanged.
func FuzzDecodeRequest(f *testing.F) {
	// The graphio corpus, embedded as request graph fields.
	for _, g := range []string{
		`{"n":3,"edges":[[0,1],[1,2]],"labels":["1","0","1"]}`,
		`{"n":1}`,
		`{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`,
		`{"n":2,"edges":[[0,1]]} trailing garbage`,
		`{"n":2,"edges":[[0,1]]}{"n":1}`,
		`{"n":2,"edges":[[0,1]`,
		`{"n":2,"edges":[[0,5]]}`,
		`{"n":0}`,
		`null`,
		`[[0,1]]`,
		`{"n":-1,"edges":[[0,1]]}`,
		`{"n":2,"edges":[[0,1]],"labels":["2",""]}`,
	} {
		f.Add([]byte(`{"graph":` + g + `,"property":"all-selected","workers":2}`))
		f.Add([]byte(`{"graph":` + g + `,"reduction":"eulerian"}`))
	}
	// Request-shaped malformations.
	for _, req := range []string{
		``,
		`not json`,
		`{}`,
		`{"game":"figure1"}`,
		`{"property":"all-selected"}`,
		`{"graph":{"n":1},"property":"x"} trailing`,
		`{"graph":{"n":1}}{"graph":{"n":1}}`,
		`{"graf":{"n":1}}`,
		`{"graph":{"n":1},"workers":-5}`,
		`{"graph":{"n":1},"workers":1e9}`,
		`{"graph":null,"property":"all-selected"}`,
		`{"graph":{"n":1},"property":"all-selected","workers":2,"property":"eulerian"}`,
		`[{"graph":{"n":1}}]`,
	} {
		f.Add([]byte(req))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatalf("DecodeRequest returned both a request and %v", err)
			}
			return
		}
		if req.Workers < 0 {
			t.Fatalf("decoder accepted negative workers %d", req.Workers)
		}
		g, err := req.DecodeGraph()
		if err != nil {
			if g != nil {
				t.Fatalf("DecodeGraph returned both a graph and %v", err)
			}
			return
		}
		// Accepted graphs must round-trip, mirroring FuzzReadGraph.
		var buf bytes.Buffer
		if err := graphio.Encode(&buf, g); err != nil {
			t.Fatalf("accepted graph does not re-encode: %v", err)
		}
		h, err := graphio.Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-encoded graph does not decode: %v", err)
		}
		if !g.Equal(h) {
			t.Fatalf("round trip changed the graph:\n%v\nvs\n%v", g, h)
		}
	})
}

// FuzzIdempotencyKey fuzzes the Idempotency-Key validator. The key is
// journaled verbatim and rebound at replay, so the contract is strict:
// accepted keys are non-empty visible ASCII of at most maxIdemKeyBytes
// bytes and come back unchanged (both from ValidateIdemKey and through
// a real http.Header), everything else is an ErrBadRequest — never a
// panic, never a silent truncation or normalization.
func FuzzIdempotencyKey(f *testing.F) {
	for _, key := range []string{
		"retry-1",
		strings.Repeat("k", maxIdemKeyBytes),   // exactly at the limit
		strings.Repeat("k", maxIdemKeyBytes+1), // one byte over
		"",
		" ",
		"has space",
		"tab\there",
		"new\nline",
		"café", // multi-byte UTF-8
		"\x7f", // DEL: first byte past visible ASCII
		"\x1f", // unit separator: last byte before it
		"!~",   // the visible-ASCII boundary characters
		"ключ", // non-Latin
		"null\x00byte",
	} {
		f.Add(key)
	}
	f.Fuzz(func(t *testing.T, key string) {
		got, err := ValidateIdemKey(key)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("reject of %q is not an ErrBadRequest: %v", key, err)
			}
			if got != "" {
				t.Fatalf("ValidateIdemKey(%q) returned both %q and %v", key, got, err)
			}
			return
		}
		if got != key {
			t.Fatalf("accepted key changed: %q -> %q", key, got)
		}
		if len(key) == 0 || len(key) > maxIdemKeyBytes {
			t.Fatalf("accepted key length %d outside (0,%d]", len(key), maxIdemKeyBytes)
		}
		for i := 0; i < len(key); i++ {
			if key[i] <= 0x20 || key[i] >= 0x7f {
				t.Fatalf("accepted key has non-visible byte %#x at %d", key[i], i)
			}
		}
		// The same key must survive a real header round trip — visible
		// ASCII is untouched by net/http's header handling.
		h := make(http.Header)
		h.Set("Idempotency-Key", key)
		if back, err := IdempotencyKey(h); err != nil || back != key {
			t.Fatalf("header round trip of %q: %q, %v", key, back, err)
		}
	})
}
