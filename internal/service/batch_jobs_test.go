package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/service"
)

// doJSON issues a request with a method and decodes the JSON body into v.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string, v any) (int, http.Header) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// waitJob polls GET /v1/jobs/{id} until the job reaches want.
func waitJob(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st jobs.Status
		code, _ := doJSON(t, ts, http.MethodGet, "/v1/jobs/"+id, "", &st)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State.Finished() {
			t.Fatalf("job %s finished as %s (want %s): %+v", id, st.State, want, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceBatch pins the /v1/batch contract: many graphs, one op,
// per-item verdicts and errors, cache progression across batches.
func TestServiceBatch(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 4, CacheSize: 8})
	mixed := `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","0","1"]}`
	body := `{"op":"decide","property":"all-selected","graphs":[` +
		triangleJSON + `,` + mixed + `,{"n":2,"edges":[]}],"workers":4}`

	var br service.BatchResponse
	if code, _ := doJSON(t, ts, http.MethodPost, "/v1/batch", body, &br); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if br.Op != "batch" || br.Verb != "decide" || br.Name != "all-selected" || br.Workers != 4 {
		t.Fatalf("batch header %+v", br)
	}
	if len(br.Results) != 3 || br.Failed != 1 {
		t.Fatalf("batch results %+v", br)
	}
	for i, want := range []struct {
		holds bool
		err   bool
	}{{true, false}, {false, false}, {false, true}} {
		item := br.Results[i]
		if item.Index != i || item.Holds != want.holds || (item.Error != "") != want.err || item.Cached {
			t.Fatalf("item %d: %+v", i, item)
		}
	}
	// The same batch again: both valid graphs must now be served warm.
	var br2 service.BatchResponse
	doJSON(t, ts, http.MethodPost, "/v1/batch", body, &br2)
	if !br2.Results[0].Cached || !br2.Results[1].Cached {
		t.Fatalf("second batch not cached: %+v", br2.Results)
	}
	// Verify ops run through the same route.
	var br3 service.BatchResponse
	if code, _ := doJSON(t, ts, http.MethodPost, "/v1/batch",
		`{"op":"verify","property":"3-colorable","graphs":[`+triangleJSON+`,`+c5JSON+`]}`, &br3); code != http.StatusOK {
		t.Fatal("verify batch failed")
	}
	if !br3.Results[0].Holds || !br3.Results[1].Holds || br3.Failed != 0 {
		t.Fatalf("verify batch %+v", br3.Results)
	}
}

// TestServiceBatchErrors pins the 400 contract of /v1/batch.
func TestServiceBatchErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
	var tooMany strings.Builder
	tooMany.WriteString(`{"op":"decide","property":"all-selected","graphs":[`)
	for i := 0; i < 257; i++ {
		if i > 0 {
			tooMany.WriteString(",")
		}
		tooMany.WriteString(triangleJSON)
	}
	tooMany.WriteString(`]}`)
	for _, tc := range []struct{ name, body string }{
		{"missing-op", `{"property":"all-selected","graphs":[` + triangleJSON + `]}`},
		{"bogus-op", `{"op":"reduce","property":"all-selected","graphs":[` + triangleJSON + `]}`},
		{"unknown-property", `{"op":"decide","property":"nope","graphs":[` + triangleJSON + `]}`},
		{"empty-graphs", `{"op":"decide","property":"all-selected","graphs":[]}`},
		{"oversized", tooMany.String()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var e map[string]string
			code, _ := doJSON(t, ts, http.MethodPost, "/v1/batch", tc.body, &e)
			if code != http.StatusBadRequest || e["error"] == "" {
				t.Fatalf("status %d, body %v", code, e)
			}
		})
	}
}

// TestServiceJobLifecycle drives an experiment job queued → running →
// done over the HTTP routes: 202 on submit, progress counters on GET,
// the TTL'd result payload, and 409 on cancelling a finished job.
func TestServiceJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
	var sub jobs.Status
	code, _ := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if sub.ID != "j1" || sub.Kind != "experiment" || sub.State != jobs.StateQueued {
		t.Fatalf("submit %+v", sub)
	}
	st := waitJob(t, ts, "j1", jobs.StateDone)
	if st.Done != 1 || st.Total != 1 || st.Error != "" {
		t.Fatalf("done status %+v", st)
	}
	res, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var sw service.SweepResult
	if err := json.Unmarshal(res, &sw); err != nil {
		t.Fatal(err)
	}
	if !sw.OK || len(sw.Experiments) != 1 || sw.Experiments[0].ID != "figure5" || !sw.Experiments[0].OK {
		t.Fatalf("sweep result %+v", sw)
	}
	// Cancelling a finished job conflicts, carrying the terminal state.
	var final jobs.Status
	if code, _ := doJSON(t, ts, http.MethodDelete, "/v1/jobs/j1", "", &final); code != http.StatusConflict {
		t.Fatalf("cancel finished: status %d", code)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("conflict body %+v", final)
	}
}

// TestServiceSweepJob runs the flagship job: the whole experiment suite
// through the sharded sweep engine, asynchronously, with per-experiment
// progress.
func TestServiceSweepJob(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
	var sub jobs.Status
	if code, _ := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"sweep","workers":2}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	st := waitJob(t, ts, sub.ID, jobs.StateDone)
	want := int64(len(experiments.Index()))
	if st.Done != want || st.Total != want {
		t.Fatalf("progress %d/%d, want %d/%d", st.Done, st.Total, want, want)
	}
	res, _ := json.Marshal(st.Result)
	var sw service.SweepResult
	if err := json.Unmarshal(res, &sw); err != nil {
		t.Fatal(err)
	}
	if !sw.OK || int64(len(sw.Experiments)) != want {
		t.Fatalf("sweep result ok=%v with %d experiments", sw.OK, len(sw.Experiments))
	}
	for _, line := range sw.Experiments {
		if !line.OK {
			t.Errorf("experiment %s failed in the sweep job", line.ID)
		}
	}
}

// TestServiceJobErrors pins the job routes' error contract: 400 for
// bogus submissions (never admitted), 404 for unknown ids.
func TestServiceJobErrors(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
	for _, tc := range []struct{ name, body string }{
		{"missing-kind", `{"workers":2}`},
		{"bogus-kind", `{"job":"nope"}`},
		{"bogus-experiment", `{"job":"experiment","name":"nope"}`},
		{"bogus-game", `{"job":"game","game":"nope"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var e map[string]string
			if code, _ := doJSON(t, ts, http.MethodPost, "/v1/jobs", tc.body, &e); code != http.StatusBadRequest {
				t.Fatalf("status %d, body %v", code, e)
			}
		})
	}
	if st := s.Jobs().Stats(); st.Totals.Submitted != 0 {
		t.Fatalf("bogus submissions were admitted: %+v", st.Totals)
	}
	if code, _ := doJSON(t, ts, http.MethodGet, "/v1/jobs/j99", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d", code)
	}
	if code, _ := doJSON(t, ts, http.MethodDelete, "/v1/jobs/j99", "", nil); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d", code)
	}
}

// blockingJob occupies a job worker until release is closed.
func blockingJob(started chan<- struct{}, release <-chan struct{}) jobs.Func {
	return func(ctx context.Context, _ *jobs.Progress) (any, error) {
		if started != nil {
			close(started)
		}
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestServiceJobQueueOverflow429: with the single worker occupied and
// the queue full, POST /v1/jobs must answer 429 with a Retry-After
// hint, and the throttled counter must move.
func TestServiceJobQueueOverflow429(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 1, JobQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Jobs().Submit("block", blockingJob(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Jobs().Submit("fill", blockingJob(nil, release)); err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	code, hdr := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &e)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %v)", code, e)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	st := getStats(t, ts)
	if st.Requests.Throttled != 1 || st.Jobs.Totals.Rejected != 1 {
		t.Fatalf("throttle bookkeeping: requests %+v, jobs %+v", st.Requests, st.Jobs.Totals)
	}
}

// TestServiceJobCancelWhileRunning cancels an in-flight job over HTTP
// and watches it reach the cancelled state.
func TestServiceJobCancelWhileRunning(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 1})
	started := make(chan struct{})
	if _, err := s.Jobs().Submit("block", blockingJob(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	var st jobs.Status
	if code, _ := doJSON(t, ts, http.MethodDelete, "/v1/jobs/j1", "", &st); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	if st.State != jobs.StateRunning || !st.CancelRequested {
		t.Fatalf("cancel response %+v", st)
	}
	final := waitJob(t, ts, "j1", jobs.StateCancelled)
	if final.Error == "" {
		t.Fatalf("cancelled without error: %+v", final)
	}
}

// TestServiceJobCancelWhileQueued cancels a job still in the admission
// queue: it must flip to cancelled immediately and never run.
func TestServiceJobCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 1, JobQueue: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Jobs().Submit("block", blockingJob(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	var sub jobs.Status
	if code, _ := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	var st jobs.Status
	if code, _ := doJSON(t, ts, http.MethodDelete, "/v1/jobs/"+sub.ID, "", &st); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	if st.State != jobs.StateCancelled {
		t.Fatalf("queued cancel left %+v", st)
	}
}

// metricValue extracts the value of a plain (unlabeled) sample from the
// Prometheus text body.
func metricValue(t *testing.T, body, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v in %q", name, err, line)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestStatsMetricsAgree drives known traffic over a journal-enabled
// server and asserts /metrics and /v1/stats report the same counters —
// both render one Snapshot, so a field present in one must equal the
// other. The journal gauges are part of the contract.
func TestStatsMetricsAgree(t *testing.T) {
	jnl, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })
	_, ts := newTestServer(t, service.Config{Workers: 3, CacheSize: 4, Journal: jnl})
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"all-selected"}`) // miss
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"all-equal"}`)    // hit
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"nope"}`)         // failure
	var sub jobs.Status
	doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &sub)
	waitJob(t, ts, sub.ID, jobs.StateDone)

	st := getStats(t, ts)
	if st.Jobs.Journal == nil || st.Jobs.Journal.Appends == 0 {
		t.Fatalf("journal-enabled server reports no journal stats: %+v", st.Jobs.Journal)
	}
	_, body := get(t, ts, "/metrics")
	for name, want := range map[string]uint64{
		"lphd_requests_total":                      st.Requests.Total,
		"lphd_request_failures_total":              st.Requests.Failures,
		"lphd_request_throttled_total":             st.Requests.Throttled,
		"lphd_cache_hits_total":                    st.Cache.Hits,
		"lphd_cache_misses_total":                  st.Cache.Misses,
		"lphd_cache_evictions_total":               st.Cache.Evictions,
		"lphd_cache_size":                          uint64(st.Cache.Size),
		"lphd_jobs_submitted_total":                st.Jobs.Totals.Submitted,
		"lphd_jobs_done_total":                     st.Jobs.Totals.Done,
		"lphd_jobs_rejected_total":                 st.Jobs.Totals.Rejected,
		"lphd_workers_budget":                      3,
		"lphd_journal_segments":                    uint64(st.Jobs.Journal.Segments),
		"lphd_journal_live_bytes":                  uint64(st.Jobs.Journal.LiveBytes),
		"lphd_journal_dead_bytes":                  uint64(st.Jobs.Journal.DeadBytes),
		"lphd_journal_appends_total":               st.Jobs.Journal.Appends,
		"lphd_journal_append_errors_total":         st.Jobs.Journal.AppendErrors,
		"lphd_journal_compactions_total":           st.Jobs.Journal.Compactions,
		"lphd_journal_replayed_total":              st.Jobs.Journal.Replay.Replayed,
		"lphd_journal_restarted_total":             st.Jobs.Journal.Replay.Restarted,
		"lphd_journal_expired_on_replay_total":     st.Jobs.Journal.Replay.Expired,
		fmt.Sprintf("lphd_jobs{state=%q}", "done"): uint64(st.Jobs.States[jobs.StateDone]),
	} {
		if got := metricValue(t, body, name); got != want {
			t.Errorf("%s = %d, stats say %d", name, got, want)
		}
	}
	// The histogram is present and internally consistent: the +Inf
	// bucket equals the sample count.
	inf := metricValue(t, body, `lphd_request_duration_seconds_bucket{le="+Inf"}`)
	cnt := metricValue(t, body, "lphd_request_duration_seconds_count")
	if inf != cnt || cnt == 0 {
		t.Fatalf("histogram inconsistent: +Inf %d, count %d", inf, cnt)
	}
	// The span-derived phase histograms agree with the stats snapshot
	// field-for-field; shed/cache/engine/journal phases are all present
	// (pre-registered at zero, counted by the traffic above).
	if len(st.Phases) == 0 {
		t.Fatal("stats report no phase histograms")
	}
	seen := make(map[string]bool)
	for _, p := range st.Phases {
		seen[p.Phase] = true
		got := metricValue(t, body, fmt.Sprintf("lphd_phase_duration_seconds_count{phase=%q}", p.Phase))
		if got != p.Count {
			t.Errorf("phase %s count: metrics %d, stats %d", p.Phase, got, p.Count)
		}
	}
	for _, phase := range []string{"shed_wait", "cache", "engine", "journal_append", "journal_fsync", "queue_wait", "job_run"} {
		if !seen[phase] {
			t.Errorf("phase %s missing from stats: %v", phase, seen)
		}
	}
	for _, phase := range []string{"cache", "engine", "journal_append", "queue_wait", "job_run"} {
		if n := metricValue(t, body, fmt.Sprintf("lphd_phase_duration_seconds_count{phase=%q}", phase)); n == 0 {
			t.Errorf("phase %s counted no observations after the traffic above", phase)
		}
	}
	// Build identity: present in both views with the same values.
	if !strings.Contains(body, fmt.Sprintf("lphd_build_info{go_version=%q,module=%q} 1", st.Build.GoVersion, st.Build.Module)) {
		t.Errorf("build info line missing or disagreeing with stats %+v", st.Build)
	}
	if got := metricValue(t, body, "lphd_process_start_time_seconds"); got != uint64(st.Build.StartUnixSeconds) {
		t.Errorf("start time: metrics %d, stats %d", got, st.Build.StartUnixSeconds)
	}
	// Routes are labeled by mux pattern, including unmatched traffic.
	get(t, ts, "/v1/bogus")
	st = getStats(t, ts)
	if st.Latency.ByRoute["POST /v1/decide"] != 3 {
		t.Fatalf("route counters %+v", st.Latency.ByRoute)
	}
	if st.Latency.ByRoute["unmatched"] == 0 {
		t.Fatalf("unmatched traffic not labeled: %+v", st.Latency.ByRoute)
	}
}
