package service

import (
	"context"
	"errors"
	"sync"
	"time"
)

// This file is the sync-route admission gate. The synchronous routes
// (/v1/decide, /v1/verify, /v1/reduce, /v1/game, /v1/batch) all run
// their evaluation on a worker pool clamped by the server-wide budget,
// but before this gate existed nothing bounded how many of them piled
// up: a burst of slow sync requests would oversubscribe the CPUs and
// starve every other route. Now each synchronous evaluation acquires
// its clamped worker count from a FIFO weighted semaphore over the
// budget, waits at most the configured bound for slots to free, and is
// shed with 429 + Retry-After when the budget stays saturated — the
// overload answer the async queue has always given.

// ErrSaturated is returned when the worker budget stays full for the
// whole bounded wait; the HTTP layer maps it to 429 + Retry-After.
var ErrSaturated = errors.New("service: worker budget saturated")

// defaultShedWait is the bounded wait applied when Config.ShedWait is
// zero: long enough to absorb a momentary burst, short enough that a
// saturated server answers 429 before clients give up on their own.
const defaultShedWait = time.Second

// shedder is a weighted FIFO semaphore. Grants are all-or-nothing — a
// request either gets its full worker count or keeps waiting — and
// strictly in arrival order, so a wide request at the head of the line
// is never starved by narrow ones slipping past it.
type shedder struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	waiters  []*shedWaiter
	acquired uint64 // successful acquisitions
	shed     uint64 // bounded waits that expired into a 429
}

type shedWaiter struct {
	need  int64
	ready chan struct{} // closed when the slots are granted
}

func newShedder(capacity int) *shedder {
	if capacity < 1 {
		capacity = 1
	}
	return &shedder{capacity: int64(capacity)}
}

// acquire takes need slots, waiting in FIFO order until they free or
// ctx expires. need is clamped to [1, capacity] — the same clamp the
// worker pool applies — so no request can wait for more slots than
// exist.
func (sh *shedder) acquire(ctx context.Context, need int64) error {
	need = sh.clamp(need)
	sh.mu.Lock()
	if len(sh.waiters) == 0 && sh.inUse+need <= sh.capacity {
		sh.inUse += need
		sh.acquired++
		sh.mu.Unlock()
		return nil
	}
	w := &shedWaiter{need: need, ready: make(chan struct{})}
	sh.waiters = append(sh.waiters, w)
	sh.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case <-w.ready:
		// Granted between the deadline firing and the lock: the slots are
		// ours, keep them rather than abandoning granted budget.
		return nil
	default:
	}
	for i, x := range sh.waiters {
		if x == w {
			sh.waiters = append(sh.waiters[:i], sh.waiters[i+1:]...)
			break
		}
	}
	sh.shed++
	// Abandoning a wide wait can unblock the narrower requests queued
	// behind it.
	sh.grantLocked()
	return ErrSaturated
}

// release returns need slots (the same value passed to acquire) and
// grants as many FIFO waiters as now fit.
func (sh *shedder) release(need int64) {
	need = sh.clamp(need)
	sh.mu.Lock()
	sh.inUse -= need
	sh.grantLocked()
	sh.mu.Unlock()
}

// grantLocked admits waiters strictly from the head of the line while
// their full demand fits.
func (sh *shedder) grantLocked() {
	for len(sh.waiters) > 0 {
		w := sh.waiters[0]
		if sh.inUse+w.need > sh.capacity {
			return
		}
		sh.inUse += w.need
		sh.acquired++
		sh.waiters = sh.waiters[1:]
		close(w.ready)
	}
}

func (sh *shedder) clamp(need int64) int64 {
	if need > sh.capacity {
		return sh.capacity
	}
	if need < 1 {
		return 1
	}
	return need
}

// ShedStats is the admission gate's corner of the stats snapshot.
type ShedStats struct {
	// Capacity is the worker budget the synchronous routes share.
	Capacity int64 `json:"capacity"`
	// InUse is the number of slots held by running sync evaluations.
	InUse int64 `json:"in_use"`
	// Waiting is the number of requests parked in the bounded wait.
	Waiting int `json:"waiting"`
	// WaitBoundMS is the bounded wait in milliseconds; a request that
	// cannot acquire within it is shed with 429.
	WaitBoundMS int64 `json:"wait_bound_ms"`
	// Acquired counts successful budget acquisitions.
	Acquired uint64 `json:"acquired"`
	// Shed counts requests answered 429 after the bounded wait expired.
	Shed uint64 `json:"shed"`
}

// stats snapshots the gate; the caller fills WaitBoundMS (the bound is
// server configuration, not semaphore state).
func (sh *shedder) stats() ShedStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ShedStats{
		Capacity: sh.capacity,
		InUse:    sh.inUse,
		Waiting:  len(sh.waiters),
		Acquired: sh.acquired,
		Shed:     sh.shed,
	}
}
