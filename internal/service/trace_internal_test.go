package service

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestShedRetryHint pins the honest Retry-After: the hint follows the
// observed p50 engine latency (rounded up to whole seconds, clamped to
// [1, 60]) and falls back to the static "1" while the histogram is
// empty or tracing is off.
func TestShedRetryHint(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1})
	defer s.Close()
	if got := s.shedRetryHint(); got != shedRetryAfter {
		t.Fatalf("empty histogram: hint %q, want the static fallback %q", got, shedRetryAfter)
	}
	// Sub-second evaluations round up to the 1-second floor.
	s.tracer.Observe(obs.PhaseEngine, 30*time.Millisecond)
	if got := s.shedRetryHint(); got != "1" {
		t.Fatalf("fast engine: hint %q, want \"1\"", got)
	}
	// Push the median into the 2.5s bucket: ceil(2.5) = 3.
	for i := 0; i < 8; i++ {
		s.tracer.Observe(obs.PhaseEngine, 2*time.Second)
	}
	if got := s.shedRetryHint(); got != "3" {
		t.Fatalf("2.5s-bucket median: hint %q, want \"3\"", got)
	}

	off := New(Config{Workers: 1, TraceRing: -1})
	defer off.Close()
	if got := off.shedRetryHint(); got != shedRetryAfter {
		t.Fatalf("tracing off: hint %q, want the static fallback %q", got, shedRetryAfter)
	}
}
