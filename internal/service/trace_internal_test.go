package service

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestShedRetryHint pins the honest Retry-After: the hint follows the
// observed p50 engine latency (rounded up to whole seconds, clamped to
// [1, 60]) and falls back to the static "1" while the histogram is
// empty or tracing is off.
func TestShedRetryHint(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1})
	defer s.Close()
	if got := s.shedRetryHint(); got != shedRetryAfter {
		t.Fatalf("empty histogram: hint %q, want the static fallback %q", got, shedRetryAfter)
	}
	// Sub-second evaluations round up to the 1-second floor.
	s.tracer.Observe(obs.PhaseEngine, 30*time.Millisecond)
	if got := s.shedRetryHint(); got != "1" {
		t.Fatalf("fast engine: hint %q, want \"1\"", got)
	}
	// Push the median into the 2.5s bucket: ceil(2.5) = 3.
	for i := 0; i < 8; i++ {
		s.tracer.Observe(obs.PhaseEngine, 2*time.Second)
	}
	if got := s.shedRetryHint(); got != "3" {
		t.Fatalf("2.5s-bucket median: hint %q, want \"3\"", got)
	}

	off := New(Config{Workers: 1, TraceRing: -1})
	defer off.Close()
	if got := off.shedRetryHint(); got != shedRetryAfter {
		t.Fatalf("tracing off: hint %q, want the static fallback %q", got, shedRetryAfter)
	}
}

// TestDrainRetryHint pins the honest drain-path Retry-After under a
// fake clock: the hint is the remaining drain budget rounded up to
// whole seconds and clamped to [1, 60] — never the old static "5" —
// and falls back to the static hint only before a drain has stamped
// its deadline.
func TestDrainRetryHint(t *testing.T) {
	t.Parallel()
	clock := time.Unix(1754600000, 0)
	now := func() time.Time { return clock }
	s := New(Config{Workers: 1, DrainTimeout: 12 * time.Second, Now: now})
	defer s.Close()
	if got := s.drainRetryHint(); got != drainRetryAfter {
		t.Fatalf("no drain yet: hint %q, want the static fallback %q", got, drainRetryAfter)
	}
	s.BeginDrain()
	if got := s.drainRetryHint(); got != "12" {
		t.Fatalf("at drain start: hint %q, want \"12\" (the full budget)", got)
	}
	clock = clock.Add(4500 * time.Millisecond)
	if got := s.drainRetryHint(); got != "8" {
		t.Fatalf("7.5s of budget left: hint %q, want \"8\" (rounded up)", got)
	}
	clock = clock.Add(time.Hour) // deadline long past: clamp to the 1s floor
	if got := s.drainRetryHint(); got != "1" {
		t.Fatalf("deadline passed: hint %q, want the \"1\" floor", got)
	}

	// A budget beyond the 60s ceiling clamps down: a client should not
	// be told to disappear for minutes.
	long := New(Config{Workers: 1, DrainTimeout: 5 * time.Minute, Now: now})
	defer long.Close()
	long.BeginDrain()
	if got := long.drainRetryHint(); got != "60" {
		t.Fatalf("5m budget: hint %q, want the \"60\" ceiling", got)
	}
}
