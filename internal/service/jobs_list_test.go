package service_test

import (
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/service"
)

// TestServiceJobsListPagination walks GET /v1/jobs over a mixed
// population: stable admission order, opaque cursor continuation,
// limit handling, and state filters.
func TestServiceJobsListPagination(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 1, JobQueue: 64})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Jobs().Submit("block", blockingJob(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 9; i++ {
		if _, err := s.Jobs().Submit("wait", blockingJob(nil, release)); err != nil {
			t.Fatal(err)
		}
	}

	var seen []string
	cursor := ""
	pages := 0
	for {
		q := url.Values{"limit": {"4"}}
		if cursor != "" {
			q.Set("cursor", cursor)
		}
		var page service.JobListResponse
		code, _ := doJSON(t, ts, http.MethodGet, "/v1/jobs?"+q.Encode(), "", &page)
		if code != http.StatusOK {
			t.Fatalf("list status %d", code)
		}
		pages++
		for _, st := range page.Jobs {
			seen = append(seen, st.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(seen) != 10 {
		t.Fatalf("walk yielded %d jobs over %d pages: %v", len(seen), pages, seen)
	}
	for i, id := range seen {
		if id != "j"+strconv.Itoa(i+1) {
			t.Fatalf("admission order broken at %d: %v", i, seen)
		}
	}

	// State filter: exactly one running job.
	var running service.JobListResponse
	doJSON(t, ts, http.MethodGet, "/v1/jobs?state=running", "", &running)
	if len(running.Jobs) != 1 || running.Jobs[0].ID != "j1" || running.NextCursor != "" {
		t.Fatalf("running filter: %+v", running)
	}
	var mixed service.JobListResponse
	doJSON(t, ts, http.MethodGet, "/v1/jobs?state=queued,running&limit=500", "", &mixed)
	if len(mixed.Jobs) != 10 {
		t.Fatalf("queued,running filter: %d jobs", len(mixed.Jobs))
	}

	// An empty store answers an empty (but present) jobs array.
	s2, ts2 := newTestServer(t, service.Config{Workers: 1})
	defer s2.Close()
	if code, body := get(t, ts2, "/v1/jobs"); code != http.StatusOK || body != "{\"jobs\":[]}\n" {
		t.Fatalf("empty list: %d %q", code, body)
	}
}

// TestServiceJobsListErrors pins the 400 contract of the listing
// route: malformed cursors, out-of-range limits, unknown states.
func TestServiceJobsListErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	for _, tc := range []struct{ name, query string }{
		{"bad-cursor-encoding", "cursor=%21%21%21"},
		{"bad-cursor-payload", "cursor=bm9wZQ"}, // base64("nope"), no v1: prefix
		{"zero-limit", "limit=0"},
		{"negative-limit", "limit=-3"},
		{"huge-limit", "limit=501"},
		{"limit-not-a-number", "limit=ten"},
		{"unknown-state", "state=zombie"},
		{"half-unknown-state", "state=done,zombie"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var e map[string]string
			code, _ := doJSON(t, ts, http.MethodGet, "/v1/jobs?"+tc.query, "", &e)
			if code != http.StatusBadRequest || e["error"] == "" {
				t.Fatalf("status %d, body %v", code, e)
			}
		})
	}
}

// TestServiceJobsListPropertyWalk is the HTTP half of the pagination
// property: random limits, churn between pages (jobs completing),
// every surviving job yielded exactly once in admission order.
func TestServiceJobsListPropertyWalk(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 2, JobQueue: 256})
	rng := rand.New(rand.NewSource(7))
	releases := make(map[string]chan struct{})
	var blocked []string
	for i := 0; i < 60; i++ {
		release := make(chan struct{})
		st, err := s.Jobs().Submit("slow", blockingJob(nil, release))
		if err != nil {
			t.Fatal(err)
		}
		releases[st.ID] = release
		blocked = append(blocked, st.ID)
	}
	defer func() {
		for _, ch := range releases {
			close(ch)
		}
	}()

	seen := make(map[string]int)
	lastSeq := int64(-1)
	cursor := ""
	for {
		q := url.Values{"limit": {strconv.Itoa(1 + rng.Intn(9))}}
		if cursor != "" {
			q.Set("cursor", cursor)
		}
		var page service.JobListResponse
		if code, _ := doJSON(t, ts, http.MethodGet, "/v1/jobs?"+q.Encode(), "", &page); code != http.StatusOK {
			t.Fatalf("list status %d", code)
		}
		for _, st := range page.Jobs {
			if st.Seq <= lastSeq {
				t.Fatalf("seq went backwards: %d after %d", st.Seq, lastSeq)
			}
			lastSeq = st.Seq
			seen[st.ID]++
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		// Churn: complete a couple of jobs between pages.
		for i := 0; i < 2 && len(blocked) > 0; i++ {
			k := rng.Intn(len(blocked))
			id := blocked[k]
			blocked = append(blocked[:k], blocked[k+1:]...)
			close(releases[id])
			delete(releases, id)
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %s yielded %d times", id, n)
		}
	}
	if len(seen) != 60 {
		// Nothing expires in this walk (default 15m TTL), so every job
		// must surface regardless of completing mid-walk.
		t.Fatalf("walk yielded %d of 60 jobs", len(seen))
	}
}

// TestServiceJournalReplay exercises the service-level durability loop
// in-process: a server with a journal finishes a job, a second server
// over the same journal serves the identical result and re-runs the
// interrupted one through the same buildJob catalog.
func TestServiceJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 1, Journal: jnl})
	var sub jobs.Status
	if code, _ := doJSON(t, ts1, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitJob(t, ts1, sub.ID, jobs.StateDone)
	_, doneBody := get(t, ts1, "/v1/jobs/"+sub.ID)
	// A second job is admitted and left hanging mid-run: it blocks on a
	// channel no one will release, exactly like work interrupted by a
	// crash. Submitted through the HTTP route so its spec is journaled.
	started := make(chan struct{})
	if _, err := s1.Jobs().Submit("poison", blockingJob(started, nil)); err == nil {
		<-started
	}
	var sub2 jobs.Status
	if code, _ := doJSON(t, ts1, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure4"}`, &sub2); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// "Crash": abandon s1 without Close (ts1 keeps serving nothing we
	// care about; its cleanup runs at test end).
	jnl.Close() // release the file handle before reopening the dir

	jnl2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl2.Close() })
	_, ts2 := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, JobWorkers: 1, Journal: jnl2})
	_, doneBody2 := get(t, ts2, "/v1/jobs/"+sub.ID)
	if doneBody2 != doneBody {
		t.Fatalf("restored result not byte-identical:\nbefore %s\nafter  %s", doneBody, doneBody2)
	}
	// The journaled-but-unfinished experiment re-runs to done; the
	// engine-submitted job without a spec surfaces as a durable failure
	// (never silently dropped).
	waitJob(t, ts2, sub2.ID, jobs.StateDone)
	st2 := getStats(t, ts2)
	if st2.Jobs.Journal.Replay.Replayed != 1 || st2.Jobs.Journal.Replay.Restarted != 1 {
		t.Fatalf("replay stats %+v", st2.Jobs.Journal.Replay)
	}
	var poisoned jobs.Status
	if code, _ := doJSON(t, ts2, http.MethodGet, "/v1/jobs/j2", "", &poisoned); code != http.StatusOK {
		t.Fatalf("spec-less job status %d", code)
	}
	if poisoned.State != jobs.StateFailed || poisoned.Error == "" {
		t.Fatalf("spec-less interrupted job: %+v", poisoned)
	}
}
