package service

import (
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/obs"
)

// TestLatenciesHistogram pins the bucket math: observations land in the
// right bucket, snapshots are cumulative, routes are counted, and the
// empty pattern is labeled "unmatched".
func TestLatenciesHistogram(t *testing.T) {
	t.Parallel()
	l := newLatencies()
	l.observe("POST /v1/decide", 500*time.Microsecond) // <= 0.001
	l.observe("POST /v1/decide", 50*time.Millisecond)  // <= 0.1
	l.observe("", 20*time.Second)                      // +Inf
	st := l.snapshot()
	if st.Count != 3 || st.SumSeconds < 20 {
		t.Fatalf("snapshot %+v", st)
	}
	if st.ByRoute["POST /v1/decide"] != 2 || st.ByRoute["unmatched"] != 1 {
		t.Fatalf("routes %+v", st.ByRoute)
	}
	wantCum := map[string]uint64{"0.001": 1, "0.005": 1, "0.025": 1, "0.1": 2, "0.5": 2, "2.5": 2, "10": 2, "+Inf": 3}
	for _, b := range st.Buckets {
		if b.Count != wantCum[b.LE] {
			t.Fatalf("bucket le=%s count %d, want %d", b.LE, b.Count, wantCum[b.LE])
		}
	}
	if st.Buckets[len(st.Buckets)-1].LE != "+Inf" {
		t.Fatalf("last bucket %+v", st.Buckets[len(st.Buckets)-1])
	}
}

// TestRenderMetricsGolden pins the exposition format on a synthetic
// snapshot: sample lines, label quoting, HELP/TYPE headers, and
// deterministic ordering.
func TestRenderMetricsGolden(t *testing.T) {
	t.Parallel()
	var st StatsResponse
	st.WorkersBudget = 4
	st.TimeoutMS = 1500
	st.Cache = CacheStats{Capacity: 8, Size: 2, Hits: 5, Misses: 3, Evictions: 1}
	st.Requests.Total = 9
	st.Requests.Failures = 2
	st.Requests.Canceled = 1
	st.Requests.Throttled = 4
	st.Jobs = jobs.Stats{
		Workers: 1, QueueDepth: 1, QueueCapacity: 16,
		States: map[jobs.State]int{
			jobs.StateQueued: 1, jobs.StateRunning: 0, jobs.StateDone: 2,
			jobs.StateFailed: 0, jobs.StateCancelled: 1,
		},
		Totals: jobs.LifetimeTotals{Submitted: 5, Rejected: 1, Done: 2, Failed: 0, Cancelled: 1, Expired: 1},
		Journal: &jobs.JournalStats{
			Stats:        journal.Stats{Segments: 2, LiveBytes: 4096, DeadBytes: 512, Appends: 17, Compactions: 3, Truncated: 9},
			Replay:       jobs.ReplayStats{Replayed: 4, Restarted: 2, Expired: 1},
			AppendErrors: 1,
		},
	}
	st.Latency = LatencyStats{
		Count: 9, SumSeconds: 1.25,
		Buckets: []LatencyBucket{{LE: "0.001", Count: 3}, {LE: "+Inf", Count: 9}},
		ByRoute: map[string]uint64{"POST /v1/decide": 6, "GET /v1/stats": 3},
	}
	st.Phases = []obs.PhaseStats{{
		Phase: "engine", Count: 7, SumSeconds: 0.875,
		Buckets: []obs.Bucket{{LE: "0.1", Count: 4}, {LE: "+Inf", Count: 7}},
	}}
	st.Build = BuildStats{GoVersion: "go1.99", Module: "example/repro", StartUnixSeconds: 1754600000}
	out := renderMetrics(st)
	for _, want := range []string{
		"# TYPE lphd_workers_budget gauge\nlphd_workers_budget 4\n",
		"lphd_request_timeout_seconds 1.5\n",
		"# TYPE lphd_cache_hits_total counter\nlphd_cache_hits_total 5\n",
		"lphd_cache_misses_total 3\n",
		"lphd_cache_evictions_total 1\n",
		"lphd_cache_size 2\n",
		"lphd_requests_total 9\n",
		"lphd_request_failures_total 2\n",
		"lphd_request_cancellations_total 1\n",
		"lphd_request_throttled_total 4\n",
		// Routes sorted lexicographically.
		"lphd_http_requests_total{route=\"GET /v1/stats\"} 3\nlphd_http_requests_total{route=\"POST /v1/decide\"} 6\n",
		// States sorted lexicographically.
		"lphd_jobs{state=\"cancelled\"} 1\nlphd_jobs{state=\"done\"} 2\nlphd_jobs{state=\"failed\"} 0\nlphd_jobs{state=\"queued\"} 1\nlphd_jobs{state=\"running\"} 0\n",
		"lphd_jobs_queue_depth 1\n",
		"lphd_jobs_queue_capacity 16\n",
		"lphd_jobs_submitted_total 5\n",
		"lphd_jobs_rejected_total 1\n",
		"lphd_jobs_expired_total 1\n",
		"# TYPE lphd_journal_segments gauge\nlphd_journal_segments 2\n",
		"lphd_journal_live_bytes 4096\n",
		"lphd_journal_dead_bytes 512\n",
		"# TYPE lphd_journal_appends_total counter\nlphd_journal_appends_total 17\n",
		"lphd_journal_append_errors_total 1\n",
		"lphd_journal_compactions_total 3\n",
		"lphd_journal_truncated_bytes_total 9\n",
		"lphd_journal_replayed_total 4\n",
		"lphd_journal_restarted_total 2\n",
		"lphd_journal_expired_on_replay_total 1\n",
		"# TYPE lphd_request_duration_seconds histogram\n" +
			"lphd_request_duration_seconds_bucket{le=\"0.001\"} 3\n" +
			"lphd_request_duration_seconds_bucket{le=\"+Inf\"} 9\n" +
			"lphd_request_duration_seconds_sum 1.25\n" +
			"lphd_request_duration_seconds_count 9\n",
		"# TYPE lphd_phase_duration_seconds histogram\n" +
			"lphd_phase_duration_seconds_bucket{phase=\"engine\",le=\"0.1\"} 4\n" +
			"lphd_phase_duration_seconds_bucket{phase=\"engine\",le=\"+Inf\"} 7\n" +
			"lphd_phase_duration_seconds_sum{phase=\"engine\"} 0.875\n" +
			"lphd_phase_duration_seconds_count{phase=\"engine\"} 7\n",
		"# TYPE lphd_build_info gauge\n" +
			"lphd_build_info{go_version=\"go1.99\",module=\"example/repro\"} 1\n",
		"lphd_process_start_time_seconds 1754600000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing:\n%s\n\nfull output:\n%s", want, out)
		}
	}
}
