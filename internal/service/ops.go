// Package service is the operation layer shared by cmd/lph and the lphd
// HTTP server: one catalog of decidable properties, verifiable
// properties, reductions, and games, with one implementation per
// operation, so the CLI and the service provably run identical code
// paths. Operations take an explicit search.Options — the per-request
// worker budget and cancellation context — and run against a
// simulate.Prepared instance, which the server amortizes across requests
// through the Cache and the CLI builds once per invocation via Prepare.
package service

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/search"
	"repro/internal/simulate"
)

// RadiusID is the identifier locality every operation runs under: all
// catalog machines and strategies require 1-locally unique identifiers.
const RadiusID = 1

// ErrUnknownName is wrapped by operations handed a name outside their
// catalog; callers map it to a usage error (CLI exit 2, HTTP 400).
var ErrUnknownName = errors.New("unknown name")

// Prepare computes the simulation instance the operations run against:
// the canonical RadiusID-locally unique identifier assignment plus the
// per-(graph, id) setup of simulate.Prepare. The server caches the
// result keyed by g.Hash() (see Cache); the identifier assignment is a
// deterministic function of the graph, so equal hashes yield
// interchangeable instances.
func Prepare(g *graph.Graph) (*simulate.Prepared, error) {
	return simulate.Prepare(g, graph.SmallLocallyUnique(g, RadiusID))
}

// ctxErr returns the engine context's error, if a context is set and
// already done. Operations whose machinery does not poll the context
// internally (Decide's single machine run, Reduce's transformation)
// check it up front so canceled requests fail fast and uniformly.
func ctxErr(o search.Options) error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// sortedKeys returns the catalog names in deterministic order for usage
// messages and the stats endpoint.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// decideMachines is the catalog behind Decide.
func decideMachines() map[string]*simulate.Machine {
	return map[string]*simulate.Machine{
		"all-selected": arbiters.AllSelected(),
		"eulerian":     arbiters.Eulerian(),
		"all-equal":    arbiters.AllEqual(),
	}
}

// DecideNames lists the decidable LP properties.
func DecideNames() []string { return sortedKeys(decideMachines()) }

// HasDecide reports whether name is in the decide catalog. The server
// consults it before paying for graph preparation, so requests with a
// bogus name never occupy a cache slot.
func HasDecide(name string) bool {
	_, ok := decideMachines()[name]
	return ok
}

// Decide runs the named locally polynomial decider on the prepared
// instance and reports unanimous acceptance. The engine options are
// honored as far as a single machine run can: Workers == 1 forces the
// sequential node schedule and a done context aborts before the run.
func Decide(prep *simulate.Prepared, name string, o search.Options) (bool, error) {
	m, ok := decideMachines()[name]
	if !ok {
		return false, fmt.Errorf("%w: LP property %q", ErrUnknownName, name)
	}
	if err := ctxErr(o); err != nil {
		return false, err
	}
	res, err := prep.Run(m, nil, simulate.Options{Sequential: o.Workers == 1})
	if err != nil {
		return false, err
	}
	return res.Accepted(), nil
}

// DecideMemo is Decide through the transposition table: the verdict is
// keyed by catalog name and graph content hash, which suffices because
// Prepare derives the identifier assignment deterministically from the
// graph and catalog machines are deterministic. A nil memo falls back
// to Decide; errors are never cached (see core.Memo).
func DecideMemo(prep *simulate.Prepared, name string, o search.Options, m *core.Memo) (bool, error) {
	if m == nil {
		return Decide(prep, name, o)
	}
	key := "decide/" + name + "/" + prep.Graph().Hash()
	return m.Do(o.Ctx, key, func() (bool, error) { return Decide(prep, name, o) })
}

// verifier bundles the arbiter and Eve's strategies behind one
// verifiable property.
type verifier struct {
	arb        func() *core.Arbiter
	strategies func() []core.Strategy
	domains    func(g *graph.Graph) []cert.Domain
}

// verifiers is the catalog behind Verify, one entry per certificate game
// the paper equips with an explicit Eve strategy.
func verifiers() map[string]verifier {
	kcol := func(k int) verifier {
		return verifier{
			arb: func() *core.Arbiter {
				return &core.Arbiter{Machine: arbiters.KColorable(k), Level: core.Sigma(1),
					RadiusID: RadiusID, Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 2}}}
			},
			strategies: func() []core.Strategy { return []core.Strategy{arbiters.ColoringStrategy(k)} },
			domains:    func(*graph.Graph) []cert.Domain { return []cert.Domain{{}} },
		}
	}
	uniform := func(g *graph.Graph) []cert.Domain {
		return []cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}}
	}
	return map[string]verifier{
		"2-colorable": kcol(2),
		"3-colorable": kcol(3),
		"4-colorable": kcol(4),
		"sat-graph": {
			arb: func() *core.Arbiter {
				return &core.Arbiter{Machine: arbiters.SatGraph(), Level: core.Sigma(1),
					RadiusID: RadiusID, Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 4}}}
			},
			strategies: func() []core.Strategy { return []core.Strategy{arbiters.SatGraphStrategy()} },
			domains:    func(*graph.Graph) []cert.Domain { return []cert.Domain{{}} },
		},
		"hamiltonian": {
			arb: games.HamiltonianArbiter,
			strategies: func() []core.Strategy {
				return []core.Strategy{games.HamiltonianStrategy(), nil, games.RootChargeStrategy()}
			},
			domains: uniform,
		},
		"not-all-selected": {
			arb: games.NotAllSelectedArbiter,
			strategies: func() []core.Strategy {
				return []core.Strategy{games.ForestStrategy(games.IsUnselected), nil, games.ChargeStrategy(nil)}
			},
			domains: uniform,
		},
		"one-selected": {
			arb: games.OneSelectedArbiter,
			strategies: func() []core.Strategy {
				return []core.Strategy{games.ForestStrategy(games.IsSelected), nil, games.ChargeStrategy(games.IsSelected)}
			},
			domains: uniform,
		},
	}
}

// VerifyNames lists the verifiable properties.
func VerifyNames() []string { return sortedKeys(verifiers()) }

// HasVerify reports whether name is in the verify catalog (see
// HasDecide).
func HasVerify(name string) bool {
	_, ok := verifiers()[name]
	return ok
}

// Verify plays the named certificate game on the prepared instance with
// Eve's strategy from the paper, fanning Adam's universal levels out
// across the engine's worker pool and aborting on context cancellation.
func Verify(prep *simulate.Prepared, name string, o search.Options) (bool, error) {
	return VerifyMemo(prep, name, o, nil)
}

// VerifyMemo is Verify through the transposition table: the whole-game
// verdict is memoized under the engine's salt "verify/<name>", which
// pins the catalog strategies the key cannot see (strategies are opaque
// closures; the catalog name determines them). A nil memo just plays
// the game.
func VerifyMemo(prep *simulate.Prepared, name string, o search.Options, m *core.Memo) (bool, error) {
	v, ok := verifiers()[name]
	if !ok {
		return false, fmt.Errorf("%w: verifiable property %q", ErrUnknownName, name)
	}
	arb := v.arb()
	e := core.Engine{Opts: o, Memo: m, Salt: "verify/" + name}
	return arb.StrategyGameValueEngine(prep, v.strategies(), v.domains(prep.Graph()), e)
}

// reductions is the catalog behind Reduce.
func reductions() map[string]reduce.Reduction {
	return map[string]reduce.Reduction{
		"eulerian":       reduce.AllSelectedToEulerian(),
		"hamiltonian":    reduce.AllSelectedToHamiltonian(),
		"co-hamiltonian": reduce.NotAllSelectedToHamiltonian(),
		"3color": reduce.Compose(
			reduce.SatGraphTo3SatGraph(), reduce.ThreeSatGraphToThreeColorable()),
	}
}

// ReduceNames lists the reductions.
func ReduceNames() []string { return sortedKeys(reductions()) }

// HasReduce reports whether name is in the reduce catalog (see
// HasDecide).
func HasReduce(name string) bool {
	_, ok := reductions()[name]
	return ok
}

// Reduce applies the named local reduction to g and validates the
// resulting cluster map. Reductions are deterministic transformations
// with no exhaustive search, so the engine contributes only its
// cancellation context (checked before the transformation and before
// the validation pass).
func Reduce(g *graph.Graph, name string, o search.Options) (*reduce.Result, error) {
	r, ok := reductions()[name]
	if !ok {
		return nil, fmt.Errorf("%w: reduction %q", ErrUnknownName, name)
	}
	if err := ctxErr(o); err != nil {
		return nil, err
	}
	var id graph.IDAssignment
	if r.RadiusID > 0 {
		id = graph.SmallLocallyUnique(g, r.RadiusID)
	}
	res, err := r.Apply(g, id)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(o); err != nil {
		return nil, err
	}
	if err := res.Validate(g); err != nil {
		return nil, fmt.Errorf("cluster map invalid: %w", err)
	}
	return res, nil
}

// GameResult is one line of a game operation: the instance played and
// the two verdicts of the Figure 1 comparison.
type GameResult struct {
	Graph               string `json:"graph"`
	ThreeColorable      bool   `json:"three_colorable"`
	ThreeRoundColorable bool   `json:"three_round_three_colorable"`
}

// GameNames lists the playable games.
func GameNames() []string { return []string{"figure1"} }

// HasGame reports whether name is in the game catalog (see HasDecide).
func HasGame(name string) bool {
	for _, n := range GameNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Game plays the named game on the engine. "figure1" replays the
// Example 1 minimax on both Figure 1 instances, reporting classical
// 3-colorability against the 3-round game value.
func Game(name string, o search.Options) ([]GameResult, error) {
	if name != "figure1" {
		return nil, fmt.Errorf("%w: game %q", ErrUnknownName, name)
	}
	if err := ctxErr(o); err != nil {
		return nil, err
	}
	var out []GameResult
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"Figure 1a", graph.Figure1NoInstance()},
		{"Figure 1b", graph.Figure1YesInstance()},
	} {
		out = append(out, GameResult{
			Graph:               tt.name,
			ThreeColorable:      props.ThreeColorable(tt.g),
			ThreeRoundColorable: props.ThreeRoundThreeColorableOpt(tt.g, o),
		})
	}
	return out, nil
}
