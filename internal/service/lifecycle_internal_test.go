package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests cover the zero-downtime lifecycle from inside the
// package: the shedder's semaphore discipline at the unit level, then
// the HTTP contracts — 429 + Retry-After under saturation, 503 +
// Retry-After during a drain, a health check that stays live through
// both, and idempotent submits answering with the original job. They
// hold the budget gate directly, so saturation is deterministic
// instead of depending on slow evaluations racing the assertions.

const triangleGraph = `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]}`

// expiredCtx returns an already-cancelled context: an acquire under it
// never waits, turning the bounded wait into an immediate verdict.
func expiredCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestShedderFIFOAllOrNothing(t *testing.T) {
	t.Parallel()
	sh := newShedder(4)
	if err := sh.acquire(context.Background(), 3); err != nil {
		t.Fatalf("uncontended acquire: %v", err)
	}

	// A wide request parks at the head of the line; a narrow one behind
	// it must NOT slip past (FIFO, not best-fit).
	wideDone := make(chan error, 1)
	var startedWG sync.WaitGroup
	startedWG.Add(1)
	go func() {
		startedWG.Done()
		wideDone <- sh.acquire(context.Background(), 4)
	}()
	startedWG.Wait()
	waitFor(t, func() bool { return sh.stats().Waiting == 1 })

	narrowDone := make(chan error, 1)
	go func() { narrowDone <- sh.acquire(context.Background(), 1) }()
	waitFor(t, func() bool { return sh.stats().Waiting == 2 })
	select {
	case err := <-narrowDone:
		t.Fatalf("narrow acquire jumped the FIFO line: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	// Releasing the 3 slots grants the wide head first, then the narrow
	// one once the wide releases — strict arrival order.
	sh.release(3)
	if err := <-wideDone; err != nil {
		t.Fatalf("wide acquire after release: %v", err)
	}
	select {
	case err := <-narrowDone:
		t.Fatalf("narrow acquire granted while the wide one holds everything: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	sh.release(4)
	if err := <-narrowDone; err != nil {
		t.Fatalf("narrow acquire after wide release: %v", err)
	}
	sh.release(1)

	st := sh.stats()
	if st.InUse != 0 || st.Waiting != 0 || st.Acquired != 3 || st.Shed != 0 {
		t.Fatalf("final stats %+v, want in_use=0 waiting=0 acquired=3 shed=0", st)
	}
}

func TestShedderBoundedWaitSheds(t *testing.T) {
	t.Parallel()
	sh := newShedder(2)
	if err := sh.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := sh.acquire(expiredCtx(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated acquire: %v, want ErrSaturated", err)
	}
	// Abandoning a wide waiter unblocks narrower requests queued behind
	// it: head needs 2 (never fits), the 1 behind it fits once the head
	// gives up.
	sh.release(2)
	if err := sh.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	headCtx, cancelHead := context.WithCancel(context.Background())
	headDone := make(chan error, 1)
	go func() { headDone <- sh.acquire(headCtx, 2) }()
	waitFor(t, func() bool { return sh.stats().Waiting == 1 })
	tailDone := make(chan error, 1)
	go func() { tailDone <- sh.acquire(context.Background(), 1) }()
	waitFor(t, func() bool { return sh.stats().Waiting == 2 })
	cancelHead()
	if err := <-headDone; !errors.Is(err, ErrSaturated) {
		t.Fatalf("abandoned head: %v, want ErrSaturated", err)
	}
	if err := <-tailDone; err != nil {
		t.Fatalf("tail after head abandoned: %v", err)
	}
	st := sh.stats()
	if st.Shed != 2 || st.InUse != 2 {
		t.Fatalf("stats %+v, want shed=2 in_use=2", st)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// do issues one request against the handler and returns the recorder.
func do(h http.Handler, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestSyncSaturationTable fills the worker budget and walks every
// synchronous route: each answers 429 with a sane Retry-After within
// the bounded wait, /v1/healthz stays live throughout, and once the
// budget frees the same requests succeed.
func TestSyncSaturationTable(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2, CacheSize: 4, ShedWait: 30 * time.Millisecond})
	defer s.Close()
	h := s.Handler()

	routes := []struct {
		name, path, body string
	}{
		{"decide", "/v1/decide", `{"graph":` + triangleGraph + `,"property":"all-selected"}`},
		{"verify", "/v1/verify", `{"graph":` + triangleGraph + `,"property":"one-selected"}`},
		{"reduce", "/v1/reduce", `{"graph":` + triangleGraph + `,"reduction":"eulerian"}`},
		{"game", "/v1/game", `{"game":"figure1","workers":1}`},
		{"batch", "/v1/batch", `{"op":"decide","property":"all-selected","graphs":[` + triangleGraph + `]}`},
	}

	// Saturate: the whole budget is held, so every sync route must shed.
	if err := s.shed.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	shedBefore := s.shed.stats().Shed
	for _, rt := range routes {
		t.Run("saturated-"+rt.name, func(t *testing.T) {
			start := time.Now()
			w := do(h, http.MethodPost, rt.path, rt.body, nil)
			elapsed := time.Since(start)
			if w.Code != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429; body %s", w.Code, w.Body)
			}
			if ra := w.Header().Get("Retry-After"); ra != shedRetryAfter {
				t.Fatalf("Retry-After %q, want %q", ra, shedRetryAfter)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("shed took %v, want the bounded wait (~30ms)", elapsed)
			}
		})
	}
	if got := s.shed.stats().Shed - shedBefore; got != uint64(len(routes)) {
		t.Fatalf("shed counter advanced %d, want %d", got, len(routes))
	}
	// Liveness under saturation: the health check never touches the
	// budget gate.
	if w := do(h, http.MethodGet, "/v1/healthz", "", nil); w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != `{"ok":true}` {
		t.Fatalf("healthz under saturation: %d %s", w.Code, w.Body)
	}
	// The saturation is visible on the snapshot and the scrape.
	if st := s.Snapshot(); st.Shed.InUse != 2 || st.Shed.Capacity != 2 || st.Shed.WaitBoundMS != 30 {
		t.Fatalf("snapshot shed %+v, want in_use=2 capacity=2 wait_bound_ms=30", st.Shed)
	}
	if w := do(h, http.MethodGet, "/metrics", "", nil); !strings.Contains(w.Body.String(), "lphd_shed_total 5") {
		t.Fatalf("metrics miss the shed counter:\n%s", w.Body)
	}

	// Release the budget: the same requests now run.
	s.shed.release(2)
	for _, rt := range routes {
		t.Run("freed-"+rt.name, func(t *testing.T) {
			if w := do(h, http.MethodPost, rt.path, rt.body, nil); w.Code != http.StatusOK {
				t.Fatalf("status %d after release, want 200; body %s", w.Code, w.Body)
			}
		})
	}
}

// TestDrainShedsWritesKeepsReads pins the drain contract at the HTTP
// layer: POST /v1/admin/drain flips the server, write routes answer
// 503 + Retry-After, reads and the (now flagged) health check stay
// live, and the lifecycle is visible in stats and metrics.
func TestDrainShedsWritesKeepsReads(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2, CacheSize: 4})
	defer s.Close()
	h := s.Handler()

	// Pre-drain: a keyed submission is admitted (and starts running).
	w := do(h, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`,
		map[string]string{"Idempotency-Key": "pre-drain"})
	if w.Code != http.StatusAccepted || !strings.Contains(w.Body.String(), `"id":"j1"`) {
		t.Fatalf("pre-drain submit: %d %s", w.Code, w.Body)
	}
	if w := do(h, http.MethodGet, "/v1/healthz", "", nil); strings.TrimSpace(w.Body.String()) != `{"ok":true}` {
		t.Fatalf("healthz before drain: %s", w.Body)
	}

	if w := do(h, http.MethodPost, "/v1/admin/drain", "", nil); w.Code != http.StatusAccepted ||
		strings.TrimSpace(w.Body.String()) != `{"draining":true}` {
		t.Fatalf("admin drain: %d %s", w.Code, w.Body)
	}
	if !s.Draining() {
		t.Fatal("server not draining after POST /v1/admin/drain")
	}
	select {
	case <-s.DrainRequested():
	default:
		t.Fatal("DrainRequested channel not closed")
	}

	// Write routes bounce with 503 + Retry-After.
	writes := []struct{ path, body string }{
		{"/v1/decide", `{"graph":` + triangleGraph + `,"property":"all-selected"}`},
		{"/v1/batch", `{"op":"decide","property":"all-selected","graphs":[` + triangleGraph + `]}`},
		{"/v1/jobs", `{"job":"experiment","name":"figure4"}`},
	}
	for _, wr := range writes {
		w := do(h, http.MethodPost, wr.path, wr.body, nil)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: %d %s, want 503", wr.path, w.Code, w.Body)
		}
		// The hint tracks the remaining drain budget (default 30s here),
		// so moments after the drain began it must sit just under it —
		// not at the old static "5".
		ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
		if err != nil || ra < 1 || ra > 30 {
			t.Fatalf("%s Retry-After %q, want an integer in [1,30]",
				wr.path, w.Header().Get("Retry-After"))
		}
	}
	// An idempotent retry of the pre-drain submission still answers with
	// the original job — 200 through the very same draining engine.
	w = do(h, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`,
		map[string]string{"Idempotency-Key": "pre-drain"})
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"id":"j1"`) {
		t.Fatalf("idempotent retry while draining: %d %s", w.Code, w.Body)
	}

	// Reads, health, and observability stay live; health reports the
	// lifecycle.
	if w := do(h, http.MethodGet, "/v1/jobs", "", nil); w.Code != http.StatusOK {
		t.Fatalf("job listing while draining: %d %s", w.Code, w.Body)
	}
	if w := do(h, http.MethodGet, "/v1/jobs/j1", "", nil); w.Code != http.StatusOK {
		t.Fatalf("job get while draining: %d %s", w.Code, w.Body)
	}
	if w := do(h, http.MethodGet, "/v1/healthz", "", nil); w.Code != http.StatusOK ||
		strings.TrimSpace(w.Body.String()) != `{"ok":true,"draining":true}` {
		t.Fatalf("healthz while draining: %d %s", w.Code, w.Body)
	}
	st := s.Snapshot()
	if st.Drain.Draining != 1 || st.Drain.Rejected < 3 || !st.Jobs.Draining {
		t.Fatalf("snapshot drain %+v jobs.draining=%v, want draining=1 rejected>=3 true", st.Drain, st.Jobs.Draining)
	}
	if w := do(h, http.MethodGet, "/metrics", "", nil); !strings.Contains(w.Body.String(), "lphd_draining 1") {
		t.Fatalf("metrics miss lphd_draining:\n%s", w.Body)
	}
}

// TestIdempotentSubmitHTTP pins the header contract: duplicate keys
// answer 200 with the original job, bad keys are 400 before any work,
// and distinct keys admit distinct jobs.
func TestIdempotentSubmitHTTP(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2, JobWorkers: 1})
	defer s.Close()
	h := s.Handler()
	body := `{"job":"experiment","name":"figure5"}`

	w := do(h, http.MethodPost, "/v1/jobs", body, map[string]string{"Idempotency-Key": "k1"})
	if w.Code != http.StatusAccepted || !strings.Contains(w.Body.String(), `"id":"j1"`) {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	w = do(h, http.MethodPost, "/v1/jobs", body, map[string]string{"Idempotency-Key": "k1"})
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"id":"j1"`) {
		t.Fatalf("duplicate submit: %d %s, want 200 with the original id", w.Code, w.Body)
	}
	w = do(h, http.MethodPost, "/v1/jobs", body, map[string]string{"Idempotency-Key": "k2"})
	if w.Code != http.StatusAccepted || !strings.Contains(w.Body.String(), `"id":"j2"`) {
		t.Fatalf("distinct key: %d %s, want a fresh 202 admission", w.Code, w.Body)
	}
	if hits := s.Jobs().Stats().Totals.IdemHits; hits != 1 {
		t.Fatalf("idempotent hits %d, want 1", hits)
	}

	for name, hdr := range map[string]map[string]string{
		"empty":     {"Idempotency-Key": ""},
		"too-long":  {"Idempotency-Key": strings.Repeat("k", maxIdemKeyBytes+1)},
		"space":     {"Idempotency-Key": "has space"},
		"non-ascii": {"Idempotency-Key": "café"},
	} {
		if w := do(h, http.MethodPost, "/v1/jobs", body, hdr); w.Code != http.StatusBadRequest {
			t.Fatalf("%s key: %d %s, want 400", name, w.Code, w.Body)
		}
	}
	// A repeated header is ambiguous and refused outright.
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	req.Header.Add("Idempotency-Key", "a")
	req.Header.Add("Idempotency-Key", "b")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("repeated header: %d %s, want 400", rec.Code, rec.Body)
	}
}

// TestAcquireBudgetClientGone: a client that disconnects during the
// bounded wait is reported as a cancellation (503 path), not as
// saturation — the 429 contract is reserved for genuine overload.
func TestAcquireBudgetClientGone(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1, ShedWait: time.Minute})
	defer s.Close()
	if err := s.shed.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer s.shed.release(1)
	if _, err := s.acquireBudget(expiredCtx(), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("client-gone acquire: %v, want context.Canceled", err)
	}
}

// BenchmarkShedding prices the admission gate itself: the uncontended
// acquire/release pair every healthy sync request pays, versus the
// cost of shedding a request off a saturated budget (which is the
// floor of every 429 the server returns under overload). See DESIGN.md
// for recorded numbers.
func BenchmarkShedding(b *testing.B) {
	b.Run("uncontended", func(b *testing.B) {
		sh := newShedder(8)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.acquire(ctx, 2); err != nil {
				b.Fatal(err)
			}
			sh.release(2)
		}
	})
	b.Run("saturated", func(b *testing.B) {
		sh := newShedder(8)
		if err := sh.acquire(context.Background(), 8); err != nil {
			b.Fatal(err)
		}
		ctx := expiredCtx() // the bounded wait is already over
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.acquire(ctx, 2); !errors.Is(err, ErrSaturated) {
				b.Fatalf("acquire on a full budget: %v, want ErrSaturated", err)
			}
		}
	})
}
