package service

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsRenderEveryStatsField is the runtime twin of the
// snapshotparity analyzer: it fills every numeric field reachable from
// StatsResponse with a distinct sentinel value via reflection and
// asserts the rendered exposition contains each one. A field added to
// the snapshot but forgotten in renderMetrics fails here even on a
// machine that never runs make lint. Strings and booleans are exempt
// (no canonical exposition rendering); maps and slices get one entry so
// their element fields are exercised too.
func TestMetricsRenderEveryStatsField(t *testing.T) {
	t.Parallel()
	var st StatsResponse

	sentinel := 100003
	type want struct {
		path  string
		forms []string // any acceptable rendering of the sentinel
	}
	var wants []want

	// intForms accepts the raw integer and its seconds rendering
	// (renderMetrics divides millisecond fields by 1000).
	intForms := func(n int) []string {
		return []string{
			strconv.Itoa(n),
			strconv.FormatFloat(float64(n)/1000, 'g', -1, 64),
		}
	}

	var hasNumeric func(t reflect.Type) bool
	hasNumeric = func(t reflect.Type) bool {
		switch t.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
			return true
		case reflect.Pointer, reflect.Slice, reflect.Map:
			return hasNumeric(t.Elem())
		case reflect.Struct:
			for i := 0; i < t.NumField(); i++ {
				if t.Field(i).IsExported() && hasNumeric(t.Field(i).Type) {
					return true
				}
			}
		}
		return false
	}

	var fill func(v reflect.Value, path string)
	fill = func(v reflect.Value, path string) {
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(int64(sentinel))
			wants = append(wants, want{path, intForms(sentinel)})
			sentinel += 2
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(uint64(sentinel))
			wants = append(wants, want{path, intForms(sentinel)})
			sentinel += 2
		case reflect.Float32, reflect.Float64:
			f := float64(sentinel) + 0.5
			v.SetFloat(f)
			wants = append(wants, want{path, []string{strconv.FormatFloat(f, 'g', -1, 64)}})
			sentinel += 2
		case reflect.Pointer:
			if !hasNumeric(v.Type()) {
				return
			}
			if v.IsNil() {
				v.Set(reflect.New(v.Type().Elem()))
			}
			fill(v.Elem(), path)
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				sf := v.Type().Field(i)
				if !sf.IsExported() {
					continue
				}
				fill(v.Field(i), path+"."+sf.Name)
			}
		case reflect.Map:
			if !hasNumeric(v.Type().Elem()) {
				return
			}
			key := reflect.New(v.Type().Key()).Elem()
			if key.Kind() == reflect.String {
				key.SetString("sentinel")
			}
			elem := reflect.New(v.Type().Elem()).Elem()
			fill(elem, path+"[sentinel]")
			v.Set(reflect.MakeMap(v.Type()))
			v.SetMapIndex(key, elem)
		case reflect.Slice:
			if !hasNumeric(v.Type().Elem()) {
				return
			}
			elem := reflect.New(v.Type().Elem()).Elem()
			fill(elem, path+"[0]")
			v.Set(reflect.Append(v, elem))
		}
	}
	fill(reflect.ValueOf(&st).Elem(), "StatsResponse")

	// Sanity-floor the walk itself: the snapshot currently carries well
	// over 30 numeric fields, so a collapse of the reflection traversal
	// must not silently pass an empty check.
	if len(wants) < 30 {
		t.Fatalf("reflection walk found only %d numeric fields, expected the full snapshot", len(wants))
	}

	out := renderMetrics(st)
	for _, w := range wants {
		found := false
		for _, form := range w.forms {
			if strings.Contains(out, form) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s (sentinel %s) is missing from the rendered metrics — renderMetrics does not cover it",
				w.path, strings.Join(w.forms, " / "))
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}
