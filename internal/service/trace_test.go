package service_test

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/service"
)

// fixedTraceparent is a valid W3C header with a recognizable trace id,
// used wherever a test needs to follow one id across surfaces.
const (
	fixedTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	fixedTraceparent = "00-" + fixedTraceID + "-00f067aa0ba902b7-01"
)

// logLines parses a JSON-lines slog buffer.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		m := make(map[string]any)
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestEveryRouteEmitsRootSpanAndLogLine holds each registered route to
// the tracing contract: one served request yields exactly one
// completed trace in the debug ring (labeled with the route pattern)
// and exactly one slog line carrying the same trace id. Requests are
// driven through the Handler directly (httptest.NewRecorder), so the
// middleware has finished — ring pushed, line logged — by the time the
// call returns; no polling, no races. Bodies are empty: an error
// response is still a served request and must trace like any other.
func TestEveryRouteEmitsRootSpanAndLogLine(t *testing.T) {
	t.Parallel()
	probe := service.New(service.Config{Workers: 1})
	routes := probe.Routes()
	probe.Close()
	if len(routes) < 10 {
		t.Fatalf("route enumeration collapsed: %v", routes)
	}
	for _, pattern := range routes {
		t.Run(strings.ReplaceAll(pattern, "/", "_"), func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			s := service.New(service.Config{
				Workers: 1,
				Logger:  slog.New(slog.NewJSONHandler(&buf, nil)),
			})
			defer s.Close()
			method, path, ok := strings.Cut(pattern, " ")
			if !ok {
				t.Fatalf("unparseable pattern %q", pattern)
			}
			path = strings.ReplaceAll(path, "{id}", "j1")
			req := httptest.NewRequest(method, path, strings.NewReader(""))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)

			id := rec.Header().Get("X-Lph-Trace")
			if id == "" {
				t.Fatal("response has no X-Lph-Trace header")
			}
			traces := s.Tracer().Traces(0, pattern)
			if len(traces) != 1 {
				t.Fatalf("ring holds %d traces for %q, want 1", len(traces), pattern)
			}
			if traces[0].Trace != id || traces[0].Status != rec.Code {
				t.Fatalf("ring trace %+v, want id %s status %d", traces[0], id, rec.Code)
			}
			lines := logLines(t, &buf)
			if len(lines) != 1 {
				t.Fatalf("logged %d lines, want 1:\n%s", len(lines), buf.String())
			}
			// The route pattern carries the method, so the line has no
			// separate method attr.
			if lines[0]["trace"] != id || lines[0]["route"] != pattern {
				t.Fatalf("log line %v, want trace %s route %q", lines[0], id, pattern)
			}
			if int(lines[0]["status"].(float64)) != rec.Code {
				t.Fatalf("log status %v, want %d", lines[0]["status"], rec.Code)
			}
		})
	}
}

// TestTraceIDPropagatesAcrossSurfaces is the acceptance walk: one
// request with a fixed traceparent yields the same trace id in the
// response header, the debug ring (with phase spans attached), and the
// request log line.
func TestTraceIDPropagatesAcrossSurfaces(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := service.New(service.Config{
		Workers: 2, CacheSize: 4, MemoSize: 16,
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	defer s.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/verify",
		strings.NewReader(`{"graph":`+triangleJSON+`,"property":"3-colorable"}`))
	req.Header.Set("traceparent", fixedTraceparent)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Lph-Trace"); got != fixedTraceID {
		t.Fatalf("X-Lph-Trace %q, want adopted %q", got, fixedTraceID)
	}
	traces := s.Tracer().Traces(0, "POST /v1/verify")
	if len(traces) != 1 || traces[0].Trace != fixedTraceID {
		t.Fatalf("ring traces %+v, want one with id %s", traces, fixedTraceID)
	}
	if traces[0].ParentSpan != "00f067aa0ba902b7" {
		t.Fatalf("parent span %q, want the inbound span id", traces[0].ParentSpan)
	}
	phases := make(map[string]bool)
	for _, sp := range traces[0].Spans {
		phases[sp.Phase] = true
	}
	for _, want := range []string{"shed_wait", "memo", "cache", "prepare", "engine"} {
		if !phases[want] {
			t.Errorf("trace is missing a %s span: %+v", want, traces[0].Spans)
		}
	}
	lines := logLines(t, &buf)
	if len(lines) != 1 || lines[0]["trace"] != fixedTraceID {
		t.Fatalf("log lines %v, want one carrying %s", lines, fixedTraceID)
	}
	// The cold verify ran the engine, so its phase histogram counted it.
	for _, p := range s.Snapshot().Phases {
		if p.Phase == "engine" && p.Count == 0 {
			t.Fatalf("engine phase histogram empty after a cold verify: %+v", p)
		}
	}
}

// TestErrorBodyCarriesTraceID: every error response names the trace
// that produced it, so a client report can be grepped straight into
// the log and the debug ring.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	t.Parallel()
	s := service.New(service.Config{Workers: 1})
	defer s.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(`{"not":"a request"}`))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Fatalf("error body %v has no message", body)
	}
	if body["trace"] != rec.Header().Get("X-Lph-Trace") {
		t.Fatalf("error body trace %q, header says %q", body["trace"], rec.Header().Get("X-Lph-Trace"))
	}
}

// TestMuxFallbackErrorContract pins the JSON 404/405 fallback: routes
// the mux has no handler for must still honor the error contract —
// a JSON body carrying {"error":…,"trace":…}, the X-Lph-Trace header
// agreeing with it, an adopted inbound trace id, and (on 405) the
// Allow header the mux computed — instead of ServeMux's plain-text
// defaults. These are exactly the responses a misrouted client or a
// router retry sees, so they must be greppable like any other error.
func TestMuxFallbackErrorContract(t *testing.T) {
	t.Parallel()
	s := service.New(service.Config{Workers: 1})
	defer s.Close()
	h := s.Handler()

	cases := []struct {
		name, method, path string
		status             int
		wantAllow          bool
	}{
		{"unknown-route", http.MethodGet, "/v1/nope", http.StatusNotFound, false},
		{"wrong-method", http.MethodPut, "/v1/decide", http.StatusMethodNotAllowed, true},
		{"wrong-method-healthz", http.MethodPost, "/v1/healthz", http.StatusMethodNotAllowed, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(""))
			req.Header.Set("traceparent", fixedTraceparent)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d; body %s", rec.Code, tc.status, rec.Body)
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type %q, want JSON (the mux default leaked through)", ct)
			}
			var body map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("non-JSON fallback body %q: %v", rec.Body, err)
			}
			if body["error"] == "" {
				t.Fatalf("fallback body %v has no error message", body)
			}
			if body["trace"] != fixedTraceID || rec.Header().Get("X-Lph-Trace") != fixedTraceID {
				t.Fatalf("trace %q / header %q, want the adopted %q",
					body["trace"], rec.Header().Get("X-Lph-Trace"), fixedTraceID)
			}
			if tc.wantAllow && rec.Header().Get("Allow") == "" {
				t.Fatal("405 without the Allow header the mux computed")
			}
		})
	}

	// A fallback response is still a served request: it lands in the
	// debug ring and counts as a failure on the snapshot.
	st := s.Snapshot()
	if st.Requests.Total < uint64(len(cases)) || st.Requests.Failures < uint64(len(cases)) {
		t.Fatalf("fallback requests invisible to the snapshot: %+v", st.Requests)
	}
}

// TestDebugTracesRoute exercises the ring endpoint: limit and route
// filters, the JSON shape, and the 400 on a malformed limit.
func TestDebugTracesRoute(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, service.Config{Workers: 1, CacheSize: 4})
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"all-selected"}`)
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"all-selected"}`)
	get(t, ts, "/v1/healthz")

	var resp service.DebugTracesResponse
	code, _ := doJSON(t, ts, http.MethodGet, "/v1/debug/traces?route=POST+/v1/decide", "", &resp)
	if code != http.StatusOK || !resp.Enabled {
		t.Fatalf("debug traces: code %d resp %+v", code, resp)
	}
	if resp.Count != 2 || len(resp.Traces) != 2 {
		t.Fatalf("route filter returned %d traces, want 2: %+v", resp.Count, resp.Traces)
	}
	for _, tr := range resp.Traces {
		if tr.Route != "POST /v1/decide" {
			t.Fatalf("filtered ring leaked route %q", tr.Route)
		}
	}
	code, _ = doJSON(t, ts, http.MethodGet, "/v1/debug/traces?limit=1", "", &resp)
	if code != http.StatusOK || len(resp.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces (code %d)", len(resp.Traces), code)
	}
	if code, body := get(t, ts, "/v1/debug/traces?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("limit=bogus: code %d body %s", code, body)
	}
}

// TestTracingDisabled: a negative ring turns the whole subsystem off —
// no header, no ring, an empty (but well-formed) debug response, and
// no phase histograms — while requests keep working.
func TestTracingDisabled(t *testing.T) {
	t.Parallel()
	s := service.New(service.Config{Workers: 1, TraceRing: -1})
	defer s.Close()
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Lph-Trace"); got != "" {
		t.Fatalf("disabled tracing still set X-Lph-Trace %q", got)
	}
	if s.Tracer() != nil {
		t.Fatal("disabled tracing still built a tracer")
	}
	if phases := s.Snapshot().Phases; len(phases) != 0 {
		t.Fatalf("disabled tracing still reports phases: %+v", phases)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/debug/traces", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var resp service.DebugTracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || resp.Count != 0 || resp.Traces == nil || len(resp.Traces) != 0 {
		t.Fatalf("disabled debug response %+v, want enabled=false and an empty list", resp)
	}
}

// TestJobEventTimeline pins the async surface: a journal-backed job
// reports its lifecycle as an ordered event timeline — submit, queued,
// running, journaled, done — with non-decreasing timestamps, and the
// same body (events included) survives a replayed restart, which the
// byte-identical recovery tests in batch_jobs_test.go then hold to.
func TestJobEventTimeline(t *testing.T) {
	jnl, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })
	_, ts := newTestServer(t, service.Config{Workers: 2, Journal: jnl})
	var sub jobs.Status
	doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &sub)
	st := waitJob(t, ts, sub.ID, jobs.StateDone)
	var phases []string
	for i, ev := range st.Events {
		phases = append(phases, ev.Phase)
		if i > 0 && ev.T.Before(st.Events[i-1].T) {
			t.Fatalf("event %d (%s) precedes its predecessor: %+v", i, ev.Phase, st.Events)
		}
	}
	want := []string{"submit", "queued", "running", "journaled", "done"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("event phases %v, want %v", phases, want)
	}
}

// TestJobEventTimelineInMemory: without a journal there is no
// journaled event — the timeline must not claim durability it does not
// have.
func TestJobEventTimelineInMemory(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2})
	var sub jobs.Status
	doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, &sub)
	st := waitJob(t, ts, sub.ID, jobs.StateDone)
	var phases []string
	for _, ev := range st.Events {
		phases = append(phases, ev.Phase)
	}
	want := []string{"submit", "queued", "running", "done"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("event phases %v, want %v", phases, want)
	}
}
