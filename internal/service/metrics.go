package service

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
)

// This file is the scrape side of the server's bookkeeping: a request
// latency histogram and the Prometheus text exposition of the full
// stats snapshot. /v1/stats and /metrics render the SAME Snapshot()
// value — one source of truth, two encodings — so the JSON stats and
// the scraped metrics can never drift (TestStatsMetricsAgree holds the
// two against each other).

// latencyBuckets are the histogram's cumulative upper bounds in
// seconds; the implicit final bucket is +Inf.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// latencies is the request-duration histogram plus per-route request
// counts, observed by the Handler middleware for every request the mux
// serves (including unmatched ones, labeled "unmatched").
type latencies struct {
	mu      sync.Mutex
	buckets []uint64 // len(latencyBuckets)+1, last is +Inf
	sum     float64
	count   uint64
	byRoute map[string]uint64
}

func newLatencies() *latencies {
	return &latencies{
		buckets: make([]uint64, len(latencyBuckets)+1),
		byRoute: make(map[string]uint64),
	}
}

func (l *latencies) observe(route string, d time.Duration) {
	if route == "" {
		route = "unmatched"
	}
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	l.mu.Lock()
	l.buckets[i]++
	l.sum += secs
	l.count++
	l.byRoute[route]++
	l.mu.Unlock()
}

// LatencyBucket is one cumulative histogram bucket; LE is the upper
// bound rendered as Prometheus renders it ("0.005", "+Inf") so the
// JSON shape needs no special case for infinity.
type LatencyBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// LatencyStats is a consistent snapshot of the latency bookkeeping.
type LatencyStats struct {
	Count      uint64            `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	Buckets    []LatencyBucket   `json:"buckets"`
	ByRoute    map[string]uint64 `json:"by_route"`
}

func (l *latencies) snapshot() LatencyStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := LatencyStats{
		Count:      l.count,
		SumSeconds: l.sum,
		Buckets:    make([]LatencyBucket, len(l.buckets)),
		ByRoute:    make(map[string]uint64, len(l.byRoute)),
	}
	cum := uint64(0)
	for i, c := range l.buckets {
		cum += c
		le := "+Inf"
		if i < len(latencyBuckets) {
			le = strconv.FormatFloat(latencyBuckets[i], 'g', -1, 64)
		}
		out.Buckets[i] = LatencyBucket{LE: le, Count: cum}
	}
	for route, n := range l.byRoute {
		out.ByRoute[route] = n
	}
	return out
}

// renderMetrics encodes the stats snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one sample per
// line, deterministic ordering so smoke tests can grep stable output.
func renderMetrics(st StatsResponse) string {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("lphd_workers_budget", "Server-wide worker budget clamping each request's pool.", st.WorkersBudget)
	gauge("lphd_request_timeout_seconds", "Per-request evaluation deadline (0 = none).", float64(st.TimeoutMS)/1000)

	gauge("lphd_cache_capacity", "Prepared-cache capacity in graphs.", st.Cache.Capacity)
	gauge("lphd_cache_size", "Prepared instances currently cached.", st.Cache.Size)
	counter("lphd_cache_hits_total", "Cache lookups served from the store.", st.Cache.Hits)
	counter("lphd_cache_misses_total", "Cache lookups that prepared fresh.", st.Cache.Misses)
	counter("lphd_cache_evictions_total", "Prepared instances evicted by the LRU bound.", st.Cache.Evictions)

	gauge("lphd_memo_capacity", "Game-verdict transposition table capacity in entries.", st.Memo.Capacity)
	gauge("lphd_memo_size", "Game verdicts currently memoized.", st.Memo.Size)
	counter("lphd_memo_hits_total", "Game evaluations served from the transposition table.", st.Memo.Hits)
	counter("lphd_memo_misses_total", "Game evaluations computed and stored.", st.Memo.Misses)
	counter("lphd_memo_singleflight_waits_total", "Callers that waited on another flight for the same key.", st.Memo.Waits)
	counter("lphd_memo_evictions_total", "Memo entries evicted by the capacity bound.", st.Memo.Evictions)

	counter("lphd_requests_total", "Operation requests handled (including failures).", st.Requests.Total)
	counter("lphd_request_failures_total", "Operation requests answered non-2xx.", st.Requests.Failures)
	counter("lphd_request_cancellations_total", "Evaluations aborted by disconnect or timeout.", st.Requests.Canceled)
	counter("lphd_request_throttled_total", "Submissions rejected by admission control (429).", st.Requests.Throttled)

	gauge("lphd_draining", "Whether the server is draining (1) or serving (0).", st.Drain.Draining)
	counter("lphd_drain_rejected_total", "Write requests answered 503 while draining.", st.Drain.Rejected)

	gauge("lphd_shed_capacity", "Worker-budget slots the synchronous routes share.", st.Shed.Capacity)
	gauge("lphd_shed_in_use", "Budget slots held by running sync evaluations.", st.Shed.InUse)
	gauge("lphd_shed_waiting", "Sync requests parked in the bounded budget wait.", st.Shed.Waiting)
	gauge("lphd_shed_wait_bound_seconds", "Bounded wait before a sync request is shed with 429.", float64(st.Shed.WaitBoundMS)/1000)
	counter("lphd_shed_acquired_total", "Successful sync budget acquisitions.", st.Shed.Acquired)
	counter("lphd_shed_total", "Sync requests shed with 429 after the bounded wait.", st.Shed.Shed)

	fmt.Fprintf(&b, "# HELP lphd_http_requests_total Requests served, by route pattern.\n# TYPE lphd_http_requests_total counter\n")
	routes := make([]string, 0, len(st.Latency.ByRoute))
	for route := range st.Latency.ByRoute {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		fmt.Fprintf(&b, "lphd_http_requests_total{route=%q} %d\n", route, st.Latency.ByRoute[route])
	}

	gauge("lphd_jobs_workers", "Job engine worker pool size.", st.Jobs.Workers)
	gauge("lphd_jobs_queue_depth", "Jobs waiting in the admission queue.", st.Jobs.QueueDepth)
	gauge("lphd_jobs_queue_capacity", "Admission queue capacity.", st.Jobs.QueueCapacity)
	fmt.Fprintf(&b, "# HELP lphd_jobs Live jobs in the store, by lifecycle state.\n# TYPE lphd_jobs gauge\n")
	states := make([]string, 0, len(st.Jobs.States))
	for state := range st.Jobs.States {
		states = append(states, string(state))
	}
	sort.Strings(states)
	for _, state := range states {
		fmt.Fprintf(&b, "lphd_jobs{state=%q} %d\n", state, st.Jobs.States[jobs.State(state)])
	}
	if jn := st.Jobs.Journal; jn != nil {
		gauge("lphd_journal_segments", "Journal segment files on disk.", jn.Segments)
		gauge("lphd_journal_live_bytes", "Journal bytes owned by live jobs.", jn.LiveBytes)
		gauge("lphd_journal_dead_bytes", "Journal bytes awaiting compaction.", jn.DeadBytes)
		counter("lphd_journal_appends_total", "Records fsynced to the journal.", jn.Appends)
		counter("lphd_journal_append_errors_total", "Lifecycle records that failed to persist.", jn.AppendErrors)
		counter("lphd_journal_compactions_total", "Completed journal compaction passes.", jn.Compactions)
		counter("lphd_journal_truncated_bytes_total", "Bytes dropped by torn-tail recovery at startup.", uint64(jn.Truncated))
		counter("lphd_journal_replayed_total", "Finished results restored by the startup replay.", jn.Replay.Replayed)
		counter("lphd_journal_restarted_total", "Interrupted jobs re-admitted by the startup replay.", jn.Replay.Restarted)
		counter("lphd_journal_expired_on_replay_total", "Results whose TTL elapsed while the server was down.", jn.Replay.Expired)
	}
	counter("lphd_jobs_submitted_total", "Jobs admitted to the queue.", st.Jobs.Totals.Submitted)
	counter("lphd_jobs_rejected_total", "Jobs rejected by the queue bound.", st.Jobs.Totals.Rejected)
	counter("lphd_jobs_done_total", "Jobs finished successfully.", st.Jobs.Totals.Done)
	counter("lphd_jobs_failed_total", "Jobs finished with an error.", st.Jobs.Totals.Failed)
	counter("lphd_jobs_cancelled_total", "Jobs cancelled while queued or running.", st.Jobs.Totals.Cancelled)
	counter("lphd_jobs_expired_total", "Finished jobs dropped by the result TTL.", st.Jobs.Totals.Expired)
	counter("lphd_jobs_idempotent_hits_total", "Submissions answered with an existing job via Idempotency-Key.", st.Jobs.Totals.IdemHits)

	fmt.Fprintf(&b, "# HELP lphd_request_duration_seconds Wall-clock duration of served requests.\n# TYPE lphd_request_duration_seconds histogram\n")
	for _, bucket := range st.Latency.Buckets {
		fmt.Fprintf(&b, "lphd_request_duration_seconds_bucket{le=%q} %d\n", bucket.LE, bucket.Count)
	}
	fmt.Fprintf(&b, "lphd_request_duration_seconds_sum %g\n", st.Latency.SumSeconds)
	fmt.Fprintf(&b, "lphd_request_duration_seconds_count %d\n", st.Latency.Count)

	// Per-phase latency histograms derived from the trace spans. The
	// canonical phases are pre-registered at zero, so the family is
	// present (and its label set stable) from the first scrape; with
	// tracing disabled the snapshot carries no phases and the family is
	// absent entirely.
	if len(st.Phases) > 0 {
		fmt.Fprintf(&b, "# HELP lphd_phase_duration_seconds Time spent per request phase, from trace spans.\n# TYPE lphd_phase_duration_seconds histogram\n")
		for _, p := range st.Phases {
			for _, bucket := range p.Buckets {
				fmt.Fprintf(&b, "lphd_phase_duration_seconds_bucket{phase=%q,le=%q} %d\n", p.Phase, bucket.LE, bucket.Count)
			}
			fmt.Fprintf(&b, "lphd_phase_duration_seconds_sum{phase=%q} %g\n", p.Phase, p.SumSeconds)
			fmt.Fprintf(&b, "lphd_phase_duration_seconds_count{phase=%q} %d\n", p.Phase, p.Count)
		}
	}

	fmt.Fprintf(&b, "# HELP lphd_build_info Build metadata; the value is always 1.\n# TYPE lphd_build_info gauge\n")
	fmt.Fprintf(&b, "lphd_build_info{go_version=%q,module=%q} 1\n", st.Build.GoVersion, st.Build.Module)
	gauge("lphd_process_start_time_seconds", "Unix time the server process started.", st.Build.StartUnixSeconds)
	return b.String()
}
