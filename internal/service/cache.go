package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/simulate"
)

// Cache is a bounded, concurrency-safe LRU of simulate.Prepared
// instances keyed by canonical graph hash (graph.Hash), so repeated
// requests on the same graph skip identifier assignment and simulation
// setup. All bookkeeping — hit, miss, and eviction counters — is kept
// under one lock with the store itself, so Stats always reconciles:
//
//	Size == live entries, Misses == inserts, Evictions == inserts - Size
//
// (with capacity > 0 and while every preparation succeeds: an entry
// whose preparation fails is dropped without counting as an eviction —
// unreachable in practice, since identifiers are derived from the graph
// itself, but kept for robustness. A zero or negative capacity disables
// the store and every lookup is a miss that prepares fresh.)
//
// Preparation runs outside the lock through a per-entry sync.Once:
// concurrent requests for the same graph share one preparation, and
// requests for different graphs never serialize on each other's setup.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // value: *cacheEntry
	order    *list.List               // front = most recently used
	hits     uint64
	misses   uint64
	evicted  uint64
}

// cacheEntry is one cached preparation. once guards the (single) Prepare
// call; ready flips when it has completed, so lookups can distinguish a
// genuinely warm entry from one whose preparation is still in flight.
// Holders that obtained the entry before an eviction keep using it
// safely — Prepared is immutable.
type cacheEntry struct {
	key   string
	once  sync.Once
	ready atomic.Bool
	prep  *simulate.Prepared
	err   error
}

// prepare runs the entry's single preparation (idempotent).
func (e *cacheEntry) prepare(g *graph.Graph) {
	e.once.Do(func() {
		e.prep, e.err = Prepare(g)
		e.ready.Store(true)
	})
}

// CacheStats is a consistent snapshot of the cache bookkeeping.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// NewCache returns an LRU cache holding at most capacity Prepared
// instances. A capacity <= 0 disables caching (every Get is a miss).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the Prepared instance for g, preparing and inserting it on
// a miss (evicting the least recently used entry when over capacity).
// The second result reports whether the instance was served warm: its
// preparation had already completed when the lookup happened. A lookup
// that finds an entry still being prepared by a concurrent request
// counts as a hit in the stats (the store held it) but reports false —
// the caller waited on the preparation rather than skipping it.
//
// ctx carries request attribution only: the whole lookup lands as a
// cache span on the request's trace, and any time spent preparing (or
// waiting on another request's in-flight preparation — this request
// pays for it either way) as a prepare span inside it. The context
// does not cancel the preparation: it is shared work other requests
// may be waiting on.
func (c *Cache) Get(ctx context.Context, g *graph.Graph) (*simulate.Prepared, bool, error) {
	sp := obs.StartSpan(ctx, obs.PhaseCache)
	defer sp.End()
	if c.capacity <= 0 {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		psp := obs.StartSpan(ctx, obs.PhasePrepare)
		prep, err := Prepare(g)
		psp.End()
		return prep, false, err
	}
	key := g.Hash()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		warm := e.ready.Load()
		if warm {
			e.prepare(g) // ready: returns immediately, nothing to measure
		} else {
			psp := obs.StartSpan(ctx, obs.PhasePrepare)
			e.prepare(g) // waits on (or performs) the racing miss's work
			psp.End()
		}
		if e.err != nil {
			return nil, false, e.err
		}
		return e.prep, warm, nil
	}
	c.misses++
	e := &cacheEntry{key: key}
	c.entries[key] = c.order.PushFront(e)
	for c.order.Len() > c.capacity {
		lru := c.order.Back()
		c.order.Remove(lru)
		delete(c.entries, lru.Value.(*cacheEntry).key)
		c.evicted++
	}
	c.mu.Unlock()

	psp := obs.StartSpan(ctx, obs.PhasePrepare)
	e.prepare(g)
	psp.End()
	if e.err != nil {
		// Preparation failed: drop the entry (if still present) so a
		// later request retries instead of replaying a stale error.
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, false, e.err
	}
	return e.prep, false, nil
}

// Keys returns the cached hashes from most to least recently used.
// Intended for tests asserting eviction order.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// Stats returns a consistent snapshot of the bookkeeping.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Size:      c.order.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
	}
}
