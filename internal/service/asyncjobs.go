package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/search"
)

// This file is the async half of the service: POST /v1/jobs admits
// long-running work — whole experiment sweeps, single experiments, the
// long games — into the bounded job engine (429 on queue overflow),
// GET /v1/jobs/{id} serves progress and the TTL'd result, and DELETE
// /v1/jobs/{id} cancels whether the job is still queued or already
// running (the job's context reaches every search engine).

// JobNames lists the submittable job kinds.
func JobNames() []string { return []string{"experiment", "game", "sweep"} }

// SweepResult is the result payload of a sweep/experiment job: one
// line per experiment plus the overall verdict.
type SweepResult struct {
	OK          bool        `json:"ok"`
	Experiments []SweepLine `json:"experiments"`
}

// SweepLine summarizes one experiment of a sweep job.
type SweepLine struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	OK    bool   `json:"ok"`
	Rows  int    `json:"rows"`
}

func sweepLine(id string, rep *experiments.Report) SweepLine {
	return SweepLine{ID: id, Title: rep.Title, OK: rep.OK(), Rows: len(rep.Rows)}
}

// buildJob validates the request and returns the job body to submit.
// Validation errors surface here as ErrBadRequest/ErrUnknownName — the
// job is never admitted, so bogus submissions cannot occupy queue
// slots (the same front-door discipline as the cache).
func (s *Server) buildJob(req *Request) (jobs.Func, error) {
	workers := s.budget
	if req.Workers > 0 && req.Workers < s.budget {
		workers = req.Workers
	}
	switch req.Job {
	case "sweep":
		return func(ctx context.Context, p *jobs.Progress) (any, error) {
			specs := experiments.Index()
			p.SetTotal(int64(len(specs)))
			o := search.Options{Workers: workers, Ctx: ctx}
			res := SweepResult{OK: true}
			for _, spec := range specs {
				// Experiments run in index order — their instance sweeps
				// are the parallel work — and a cancelled job stops
				// between experiments (the sweeps inside abort through
				// o.Ctx as well).
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				rep := spec.Run(o)
				p.Add(1)
				res.Experiments = append(res.Experiments, sweepLine(spec.ID, rep))
				res.OK = res.OK && rep.OK()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return res, nil
		}, nil
	case "experiment":
		spec, ok := experiments.FindSpec(req.Name)
		if !ok {
			return nil, fmt.Errorf("%w: experiment %q", ErrUnknownName, req.Name)
		}
		return func(ctx context.Context, p *jobs.Progress) (any, error) {
			p.SetTotal(1)
			rep := spec.Run(search.Options{Workers: workers, Ctx: ctx})
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p.Add(1)
			return SweepResult{OK: rep.OK(), Experiments: []SweepLine{sweepLine(spec.ID, rep)}}, nil
		}, nil
	case "game":
		if !HasGame(req.Game) {
			return nil, fmt.Errorf("%w: game %q", ErrUnknownName, req.Game)
		}
		game := req.Game
		return func(ctx context.Context, p *jobs.Progress) (any, error) {
			p.SetTotal(1)
			results, err := Game(game, search.Options{Workers: workers, Ctx: ctx})
			if err != nil {
				return nil, err
			}
			p.Add(1)
			return GameResponse{Op: "game", Name: game, Workers: workers, Results: results}, nil
		}, nil
	case "":
		return nil, fmt.Errorf("%w: missing job kind", ErrBadRequest)
	default:
		return nil, fmt.Errorf("%w: job kind %q", ErrUnknownName, req.Job)
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, err := DecodeRequest(r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	fn, err := s.buildJob(req)
	if err != nil {
		s.fail(w, err)
		return
	}
	st, err := s.jobs.Submit(req.Job, fn)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, jobs.ErrFinished) {
			// The conflict body carries the terminal state so clients can
			// tell "already done" from "already cancelled".
			s.failures.Add(1)
			writeJSON(w, http.StatusConflict, st)
			return
		}
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
