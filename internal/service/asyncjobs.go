package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/search"
)

// This file is the async half of the service: POST /v1/jobs admits
// long-running work — whole experiment sweeps, single experiments, the
// long games — into the bounded job engine (429 on queue overflow),
// GET /v1/jobs lists jobs in admission order behind an opaque cursor,
// GET /v1/jobs/{id} serves progress and the TTL'd result, and DELETE
// /v1/jobs/{id} cancels whether the job is still queued or already
// running (the job's context reaches every search engine). A submit
// may carry an Idempotency-Key header: a retry with the same key —
// concurrent, later, or on the other side of a crash or drain/restart
// — answers 200 with the original job instead of 202 with a duplicate.
//
// When the server runs with a journal, the validated request is
// re-marshaled and journaled as the job's spec; after a crash the
// engine replays it through rehydrateJob — the same buildJob catalog
// validation as a live submission — so interrupted jobs re-run from
// scratch with their original ids.

// JobNames lists the submittable job kinds.
func JobNames() []string { return []string{"experiment", "game", "sweep"} }

// SweepResult is the result payload of a sweep/experiment job: one
// line per experiment plus the overall verdict.
type SweepResult struct {
	OK          bool        `json:"ok"`
	Experiments []SweepLine `json:"experiments"`
}

// SweepLine summarizes one experiment of a sweep job.
type SweepLine struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	OK    bool   `json:"ok"`
	Rows  int    `json:"rows"`
}

func sweepLine(id string, rep *experiments.Report) SweepLine {
	return SweepLine{ID: id, Title: rep.Title, OK: rep.OK(), Rows: len(rep.Rows)}
}

// buildJob validates the request and returns the job body to submit.
// Validation errors surface here as ErrBadRequest/ErrUnknownName — the
// job is never admitted, so bogus submissions cannot occupy queue
// slots (the same front-door discipline as the cache).
func (s *Server) buildJob(req *Request) (jobs.Func, error) {
	workers := s.budget
	if req.Workers > 0 && req.Workers < s.budget {
		workers = req.Workers
	}
	switch req.Job {
	case "sweep":
		return func(ctx context.Context, p *jobs.Progress) (any, error) {
			specs := experiments.Index()
			p.SetTotal(int64(len(specs)))
			o := search.Options{Workers: workers, Ctx: ctx}
			res := SweepResult{OK: true}
			for _, spec := range specs {
				// Experiments run in index order — their instance sweeps
				// are the parallel work — and a cancelled job stops
				// between experiments (the sweeps inside abort through
				// o.Ctx as well).
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				rep := spec.Run(o)
				p.Add(1)
				res.Experiments = append(res.Experiments, sweepLine(spec.ID, rep))
				res.OK = res.OK && rep.OK()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return res, nil
		}, nil
	case "experiment":
		spec, ok := experiments.FindSpec(req.Name)
		if !ok {
			return nil, fmt.Errorf("%w: experiment %q", ErrUnknownName, req.Name)
		}
		return func(ctx context.Context, p *jobs.Progress) (any, error) {
			p.SetTotal(1)
			rep := spec.Run(search.Options{Workers: workers, Ctx: ctx})
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p.Add(1)
			return SweepResult{OK: rep.OK(), Experiments: []SweepLine{sweepLine(spec.ID, rep)}}, nil
		}, nil
	case "game":
		if !HasGame(req.Game) {
			return nil, fmt.Errorf("%w: game %q", ErrUnknownName, req.Game)
		}
		game := req.Game
		return func(ctx context.Context, p *jobs.Progress) (any, error) {
			p.SetTotal(1)
			results, err := Game(game, search.Options{Workers: workers, Ctx: ctx})
			if err != nil {
				return nil, err
			}
			p.Add(1)
			return GameResponse{Op: "game", Name: game, Workers: workers, Results: results}, nil
		}, nil
	case "":
		return nil, fmt.Errorf("%w: missing job kind", ErrBadRequest)
	default:
		return nil, fmt.Errorf("%w: job kind %q", ErrUnknownName, req.Job)
	}
}

// rehydrateJob rebuilds a journaled job body after a crash: the spec
// is the canonical re-marshal of the originally validated request, so
// it goes back through DecodeRequest and buildJob — catalog changes
// between restarts surface as a durable failed job, not a panic.
func (s *Server) rehydrateJob(kind string, spec json.RawMessage) (jobs.Func, error) {
	if len(spec) == 0 {
		return nil, errors.New("empty job spec")
	}
	req, err := DecodeRequest(bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	if req.Job != kind {
		return nil, fmt.Errorf("journaled kind %q does not match spec kind %q", kind, req.Job)
	}
	return s.buildJob(req)
}

// maxIdemKeyBytes bounds one Idempotency-Key header value; the key is
// journaled inside every submit record, so it must stay small.
const maxIdemKeyBytes = 128

// IdempotencyKey extracts and validates the Idempotency-Key header:
// absent means no key (""), present means exactly one value of 1 to
// 128 visible-ASCII bytes. The alphabet is pinned hard — no spaces, no
// control bytes, nothing multi-byte — because the key is persisted in
// JSON journal records and echoed in responses, and a permissive
// parser here would make every replay a parsing liability. Exported
// for the fuzz harness.
func IdempotencyKey(h http.Header) (string, error) {
	vals := h.Values("Idempotency-Key")
	switch len(vals) {
	case 0:
		return "", nil
	case 1:
		return ValidateIdemKey(vals[0])
	default:
		return "", fmt.Errorf("%w: repeated Idempotency-Key header", ErrBadRequest)
	}
}

// ValidateIdemKey enforces the key contract on one header value.
func ValidateIdemKey(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("%w: empty Idempotency-Key", ErrBadRequest)
	}
	if len(key) > maxIdemKeyBytes {
		return "", fmt.Errorf("%w: Idempotency-Key exceeds %d bytes", ErrBadRequest, maxIdemKeyBytes)
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= 0x20 || key[i] >= 0x7f {
			return "", fmt.Errorf("%w: Idempotency-Key byte %d is not visible ASCII", ErrBadRequest, i)
		}
	}
	return key, nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	key, err := IdempotencyKey(r.Header)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// No shedDraining check here: a draining engine still answers
	// idempotent duplicates of keys it already admitted — that is the
	// whole point of the key during a drain/restart — so the drain
	// rejection happens inside SubmitIdem, after the dedup lookup.
	req, err := DecodeRequest(r.Body)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	fn, err := s.buildJob(req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// The spec journaled for crash recovery is the re-marshal of the
	// decoded request — canonical, bounded, and guaranteed to decode.
	spec, err := json.Marshal(req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	st, dup, err := s.jobs.SubmitIdem(r.Context(), req.Job, key, spec, fn)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if dup {
		// The original admission's outcome, replayed: 200, not 202 — the
		// client can tell a dedup hit from a fresh admission.
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// cursorPrefix versions the opaque pagination token so its encoding
// can change without breaking old clients loudly.
const cursorPrefix = "v1:"

// encodeCursor wraps the last-seen admission sequence in an opaque
// token. Clients must treat it as a black box.
func encodeCursor(seq int64) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.FormatInt(seq, 10)))
}

// decodeCursor unwraps a pagination token; every malformation is a
// client error.
func decodeCursor(token string) (int64, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return 0, fmt.Errorf("%w: bad cursor", ErrBadRequest)
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("%w: bad cursor", ErrBadRequest)
	}
	seq, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("%w: bad cursor", ErrBadRequest)
	}
	return seq, nil
}

// jobListMaxLimit bounds one page of GET /v1/jobs.
const jobListMaxLimit = 500

// JobListResponse answers GET /v1/jobs: one page of jobs in admission
// order plus the cursor for the next page (absent on the last page).
type JobListResponse struct {
	Jobs       []jobs.Status `json:"jobs"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// handleJobList serves cursor-paginated job listings: stable admission
// order (by sequence number), an opaque cursor token, and optional
// state filters (?state=done,running). Walking the cursor yields every
// surviving job exactly once even as jobs complete or expire between
// pages — a job's position never changes, it can only disappear.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	q := r.URL.Query()
	after := int64(0)
	if token := q.Get("cursor"); token != "" {
		var err error
		if after, err = decodeCursor(token); err != nil {
			s.fail(w, r, err)
			return
		}
	}
	limit := 50
	if lv := q.Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n <= 0 || n > jobListMaxLimit {
			s.fail(w, r, fmt.Errorf("%w: limit must be in [1,%d]", ErrBadRequest, jobListMaxLimit))
			return
		}
		limit = n
	}
	var states map[jobs.State]bool
	if sv := q.Get("state"); sv != "" {
		states = make(map[jobs.State]bool)
		for _, name := range strings.Split(sv, ",") {
			st := jobs.State(name)
			if !knownState(st) {
				s.fail(w, r, fmt.Errorf("%w: unknown state %q", ErrBadRequest, name))
				return
			}
			states[st] = true
		}
	}
	items, next, more := s.jobs.Page(after, limit, states)
	resp := JobListResponse{Jobs: items}
	if more {
		resp.NextCursor = encodeCursor(next)
	}
	writeJSON(w, http.StatusOK, resp)
}

func knownState(st jobs.State) bool {
	for _, s := range jobs.States() {
		if s == st {
			return true
		}
	}
	return false
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, jobs.ErrFinished) {
			// The conflict body carries the terminal state so clients can
			// tell "already done" from "already cancelled".
			s.failures.Add(1)
			writeJSON(w, http.StatusConflict, st)
			return
		}
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
