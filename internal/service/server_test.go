package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graphio"
	"repro/internal/search"
	"repro/internal/service"
)

const (
	triangleJSON = `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]}`
	c5JSON       = `{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[4,0]]}`
)

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func getStats(t *testing.T, ts *httptest.Server) service.StatsResponse {
	t.Helper()
	_, body := get(t, ts, "/v1/stats")
	var st service.StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats: %v in %q", err, body)
	}
	return st
}

// TestServiceGolden runs golden request/response pairs through every
// verdict-shaped route, in a deliberate order so the cached flags also
// pin the cache behavior (decide warms the instance verify then hits).
func TestServiceGolden(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 4, CacheSize: 8})
	cases := []struct {
		name, path, body, want string
	}{
		{"decide-all-selected-cold", "/v1/decide",
			`{"graph":` + triangleJSON + `,"property":"all-selected"}`,
			`{"op":"decide","name":"all-selected","holds":true,"cached":false,"workers":4}`},
		{"verify-3col-triangle-warm", "/v1/verify",
			`{"graph":` + triangleJSON + `,"property":"3-colorable"}`,
			`{"op":"verify","name":"3-colorable","holds":true,"cached":true,"workers":4}`},
		{"verify-3col-c5-cold", "/v1/verify",
			`{"graph":` + c5JSON + `,"property":"3-colorable"}`,
			`{"op":"verify","name":"3-colorable","holds":true,"cached":false,"workers":4}`},
		{"verify-2col-c5-warm", "/v1/verify",
			`{"graph":` + c5JSON + `,"property":"2-colorable"}`,
			`{"op":"verify","name":"2-colorable","holds":false,"cached":true,"workers":4}`},
		{"decide-eulerian-c5-warm", "/v1/decide",
			`{"graph":` + c5JSON + `,"property":"eulerian"}`,
			`{"op":"decide","name":"eulerian","holds":true,"cached":true,"workers":4}`},
		{"workers-clamped-to-budget", "/v1/verify",
			`{"graph":` + c5JSON + `,"property":"3-colorable","workers":64}`,
			`{"op":"verify","name":"3-colorable","holds":true,"cached":true,"workers":4}`},
		{"workers-below-budget-honored", "/v1/verify",
			`{"graph":` + c5JSON + `,"property":"3-colorable","workers":2}`,
			`{"op":"verify","name":"3-colorable","holds":true,"cached":true,"workers":2}`},
		{"game-figure1", "/v1/game",
			`{"game":"figure1","workers":1}`,
			`{"op":"game","name":"figure1","workers":1,"results":[` +
				`{"graph":"Figure 1a","three_colorable":true,"three_round_three_colorable":false},` +
				`{"graph":"Figure 1b","three_colorable":true,"three_round_three_colorable":true}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts, tc.path, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			if body != tc.want+"\n" {
				t.Fatalf("body:\n%s\nwant:\n%s", body, tc.want)
			}
		})
	}
	t.Run("healthz", func(t *testing.T) {
		status, body := get(t, ts, "/v1/healthz")
		if status != http.StatusOK || body != `{"ok":true}`+"\n" {
			t.Fatalf("healthz: %d %q", status, body)
		}
	})
}

// TestServiceReduce covers /v1/reduce for every reduction: the response
// must be byte-identical to the one built from the shared ops layer,
// proving server and CLI run the same code path.
func TestServiceReduce(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 8})
	inputs := map[string]string{
		"eulerian":       triangleJSON,
		"hamiltonian":    triangleJSON,
		"co-hamiltonian": `{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","0","1"]}`,
	}
	for name, in := range inputs {
		t.Run(name, func(t *testing.T) {
			g, err := graphio.Decode(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			res, err := service.Reduce(g, name, search.Sequential())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := graphio.Encode(&buf, res.Out); err != nil {
				t.Fatal(err)
			}
			wantBytes, err := json.Marshal(service.ReduceResponse{
				Op: "reduce", Name: name, Graph: buf.Bytes(), ClusterOf: res.ClusterOf,
			})
			if err != nil {
				t.Fatal(err)
			}
			status, body := post(t, ts, "/v1/reduce", `{"graph":`+in+`,"reduction":"`+name+`"}`)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			if body != string(wantBytes)+"\n" {
				t.Fatalf("body:\n%s\nwant:\n%s", body, wantBytes)
			}
			// The reduced graph must decode and validate against the input.
			var rr service.ReduceResponse
			if err := json.Unmarshal([]byte(body), &rr); err != nil {
				t.Fatal(err)
			}
			out, err := graphio.Decode(bytes.NewReader(rr.Graph))
			if err != nil {
				t.Fatalf("reduced graph does not decode: %v", err)
			}
			if out.N() != len(rr.ClusterOf) {
				t.Fatalf("cluster map covers %d of %d nodes", len(rr.ClusterOf), out.N())
			}
		})
	}
}

// TestServiceErrors pins the HTTP error contract: 400 for client
// mistakes, 404/405 from routing, and an {"error":...} body throughout.
func TestServiceErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
	post400 := []struct{ name, path, body string }{
		{"not-json", "/v1/decide", `not json`},
		{"trailing-data", "/v1/decide", `{"graph":` + triangleJSON + `,"property":"all-selected"} extra`},
		{"unknown-field", "/v1/decide", `{"graf":` + triangleJSON + `}`},
		{"missing-graph", "/v1/decide", `{"property":"all-selected"}`},
		{"negative-workers", "/v1/decide", `{"graph":` + triangleJSON + `,"property":"all-selected","workers":-1}`},
		{"unknown-property", "/v1/decide", `{"graph":` + triangleJSON + `,"property":"nope"}`},
		{"unknown-verify", "/v1/verify", `{"graph":` + triangleJSON + `,"property":"nope"}`},
		{"unknown-reduction", "/v1/reduce", `{"graph":` + triangleJSON + `,"reduction":"nope"}`},
		{"unknown-game", "/v1/game", `{"game":"nope"}`},
		{"bad-graph", "/v1/verify", `{"graph":{"n":2,"edges":[]},"property":"2-colorable"}`},
	}
	for _, tc := range post400 {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts, tc.path, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", status, body)
			}
			var e map[string]string
			if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %q", body)
			}
		})
	}
	t.Run("unknown-name-skips-cache", func(t *testing.T) {
		// A bogus property must be rejected before graph preparation, so
		// it neither pays setup cost nor occupies a cache slot.
		_, ts2 := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
		fresh := `{"n":4,"edges":[[0,1],[1,2],[2,3]]}`
		if status, _ := post(t, ts2, "/v1/verify", `{"graph":`+fresh+`,"property":"nope"}`); status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
		if st := getStats(t, ts2); st.Cache.Size != 0 || st.Cache.Misses != 0 || st.Cache.Hits != 0 {
			t.Fatalf("bogus name touched the cache: %+v", st.Cache)
		}
	})
	t.Run("unknown-route", func(t *testing.T) {
		if status, _ := get(t, ts, "/v1/nope"); status != http.StatusNotFound {
			t.Fatalf("status %d, want 404", status)
		}
	})
	t.Run("wrong-method", func(t *testing.T) {
		if status, _ := get(t, ts, "/v1/decide"); status != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", status)
		}
	})
}

// TestServiceStats drives a known request sequence and asserts the full
// bookkeeping reconciles: request counters, cache hit/miss/size, and the
// operation catalog.
func TestServiceStats(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 3, CacheSize: 2})
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"all-selected"}`) // miss
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"all-equal"}`)    // hit
	post(t, ts, "/v1/verify", `{"graph":`+c5JSON+`,"property":"3-colorable"}`)        // miss
	post(t, ts, "/v1/decide", `{"graph":`+triangleJSON+`,"property":"nope"}`)         // failure, no cache lookup
	post(t, ts, "/v1/reduce", `{"graph":`+triangleJSON+`,"reduction":"eulerian"}`)    // no cache use
	st := getStats(t, ts)
	if st.WorkersBudget != 3 {
		t.Fatalf("budget %d", st.WorkersBudget)
	}
	if st.Requests.Total != 5 || st.Requests.Failures != 1 || st.Requests.Canceled != 0 {
		t.Fatalf("requests %+v", st.Requests)
	}
	if st.Cache.Capacity != 2 || st.Cache.Size != 2 || st.Cache.Misses != 2 || st.Cache.Hits != 1 || st.Cache.Evictions != 0 {
		t.Fatalf("cache %+v", st.Cache)
	}
	if int(st.Cache.Misses)-int(st.Cache.Evictions) != st.Cache.Size {
		t.Fatalf("cache bookkeeping does not reconcile: %+v", st.Cache)
	}
	for _, want := range []struct {
		kind string
		name string
	}{
		{"decide", "all-selected"}, {"verify", "hamiltonian"}, {"reduce", "3color"}, {"game", "figure1"},
	} {
		found := false
		for _, n := range st.Catalog[want.kind] {
			if n == want.name {
				found = true
			}
		}
		if !found {
			t.Fatalf("catalog[%s] = %v misses %s", want.kind, st.Catalog[want.kind], want.name)
		}
	}
}

// slowVerifyBody is a hamiltonian verification that takes several
// seconds uncanceled (C12: 3^12 universal challenges), used to prove
// cancellation reaches the game mid-search.
func slowVerifyBody() string {
	var b strings.Builder
	b.WriteString(`{"graph":{"n":12,"edges":[`)
	for i := 0; i < 12; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "[%d,%d]", i, (i+1)%12)
	}
	b.WriteString(`]},"property":"hamiltonian","workers":2}`)
	return b.String()
}

// TestServiceClientDisconnectCancels aborts the client connection
// mid-evaluation and asserts the server observes the cancellation (the
// canceled counter moves) far sooner than the uncanceled game would
// finish.
func TestServiceClientDisconnectCancels(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify",
		strings.NewReader(slowVerifyBody()))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite cancellation")
	}
	// The handler sees the disconnect asynchronously; it must record the
	// canceled evaluation well before the ~9s the full game would take.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStats(t, ts)
		if st.Requests.Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never moved; stats %+v", st.Requests)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("cancellation took %v — evaluation was not aborted", elapsed)
	}
}

// TestServiceTimeout bounds an evaluation by the server-wide deadline:
// the slow game must come back 503 quickly with the canceled counter up.
func TestServiceTimeout(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 2, Timeout: 200 * time.Millisecond})
	start := time.Now()
	status, body := post(t, ts, "/v1/verify", slowVerifyBody())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Fatalf("body %q does not name the deadline", body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout answered after %v", elapsed)
	}
	if st := getStats(t, ts); st.Requests.Canceled != 1 {
		t.Fatalf("canceled counter %d, want 1", st.Requests.Canceled)
	}
}

// TestServiceConcurrentClients hammers one cached graph from many
// goroutines mixing decide, verify, and stats — run under -race by make
// check — and reconciles the cache bookkeeping afterwards.
func TestServiceConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, service.Config{Workers: 2, CacheSize: 4})
	const clients, perClient = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var path, body, want string
				switch i % 3 {
				case 0:
					path, body = "/v1/verify", `{"graph":`+c5JSON+`,"property":"3-colorable","workers":2}`
					want = `"holds":true`
				case 1:
					path, body = "/v1/decide", `{"graph":`+c5JSON+`,"property":"eulerian"}`
					want = `"holds":true`
				case 2:
					path, body = "/v1/verify", `{"graph":`+c5JSON+`,"property":"2-colorable","workers":1}`
					want = `"holds":false`
				}
				resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), want) {
					errs <- fmt.Errorf("client %d req %d: %d %s", c, i, resp.StatusCode, b)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cs := s.Cache().Stats()
	if cs.Hits+cs.Misses != clients*perClient {
		t.Fatalf("cache lookups %d+%d, want %d", cs.Hits, cs.Misses, clients*perClient)
	}
	if cs.Size != 1 || cs.Evictions != 0 {
		t.Fatalf("one graph must occupy one slot: %+v", cs)
	}
	if cs.Misses < 1 || cs.Hits < uint64(clients*perClient-clients) {
		t.Fatalf("cache did not absorb the hammering: %+v", cs)
	}
}
