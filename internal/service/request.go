package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/graphio"
)

// maxRequestBytes bounds one request body; a production front door must
// not buffer unbounded client JSON.
const maxRequestBytes = 4 << 20

// Request is the JSON body shared by every POST route of the service:
//
//	{"graph": {"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]},
//	 "property": "all-selected", "workers": 4}
//
// The graph carries the graphio wire format. Exactly the field matching
// the route is consulted for the operation name — property for
// /v1/decide and /v1/verify, reduction for /v1/reduce, game for
// /v1/game — but the decoder is shared, so a body is either valid on
// every route or none.
type Request struct {
	Graph     json.RawMessage `json:"graph,omitempty"`
	Property  string          `json:"property,omitempty"`
	Reduction string          `json:"reduction,omitempty"`
	Game      string          `json:"game,omitempty"`
	// Graphs carries the instance list of /v1/batch: one op (Op +
	// Property) evaluated over every graph in a single request.
	Graphs []json.RawMessage `json:"graphs,omitempty"`
	// Op names the per-graph operation of /v1/batch: decide or verify.
	Op string `json:"op,omitempty"`
	// Job names the job kind for POST /v1/jobs (sweep, experiment,
	// game); Name carries the experiment slug for kind "experiment".
	Job  string `json:"job,omitempty"`
	Name string `json:"name,omitempty"`
	// Workers asks for a per-request worker budget; the server clamps it
	// to its own budget. 0 means "the server's budget", and negative
	// values are rejected at decode time.
	Workers int `json:"workers,omitempty"`
}

// ErrBadRequest is wrapped by every decode-side failure; handlers map it
// to HTTP 400.
var ErrBadRequest = errors.New("bad request")

// countingReader counts the bytes handed to the JSON decoder so the
// size bound rejects oversized bodies instead of silently truncating
// them (a bare LimitReader would cut trailing garbage off and let the
// request through).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// DecodeRequest reads one service request from r. Unknown fields,
// trailing data after the JSON object, bodies over maxRequestBytes, and
// negative worker counts are rejected — the strictness mirrors
// graphio.Decode so malformed traffic fails loudly at the door instead
// of defaulting its way into an evaluation.
func DecodeRequest(r io.Reader) (*Request, error) {
	// Read one byte past the limit: a fully-parsed request that consumed
	// more than maxRequestBytes is over the bound, and anything the
	// limit cut off mid-object fails the parse or the trailing check.
	cr := &countingReader{r: io.LimitReader(r, maxRequestBytes+1)}
	dec := json.NewDecoder(cr)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	switch _, err := dec.Token(); {
	case err == io.EOF:
		// Exactly one object, as required.
	case err == nil:
		return nil, fmt.Errorf("%w: trailing data after request JSON", ErrBadRequest)
	default:
		return nil, fmt.Errorf("%w: trailing data after request JSON: %v", ErrBadRequest, err)
	}
	if cr.n > maxRequestBytes {
		return nil, fmt.Errorf("%w: request body exceeds %d bytes", ErrBadRequest, maxRequestBytes)
	}
	if req.Workers < 0 {
		return nil, fmt.Errorf("%w: negative workers %d", ErrBadRequest, req.Workers)
	}
	return &req, nil
}

// DecodeGraph decodes the request's graph through graphio, inheriting
// its validation (simplicity, connectivity, label alphabet).
func (req *Request) DecodeGraph() (*graph.Graph, error) {
	if len(req.Graph) == 0 {
		return nil, fmt.Errorf("%w: missing graph", ErrBadRequest)
	}
	g, err := graphio.Decode(bytes.NewReader(req.Graph))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return g, nil
}
