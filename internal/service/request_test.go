package service

import (
	"strings"
	"testing"
)

// TestDecodeRequestSizeLimit: the 4MB bound must reject oversized
// bodies outright — a bare LimitReader would silently truncate trailing
// garbage and accept the request.
func TestDecodeRequestSizeLimit(t *testing.T) {
	t.Parallel()
	small := `{"graph":{"n":1},"property":"all-selected"}`
	if _, err := DecodeRequest(strings.NewReader(small)); err != nil {
		t.Fatalf("small request rejected: %v", err)
	}
	t.Run("garbage-past-limit", func(t *testing.T) {
		body := small + strings.Repeat(" ", maxRequestBytes) + "garbage"
		if _, err := DecodeRequest(strings.NewReader(body)); err == nil {
			t.Fatal("oversized body with trailing garbage accepted")
		}
	})
	t.Run("valid-object-past-limit", func(t *testing.T) {
		// A syntactically valid request whose sheer size exceeds the
		// bound: padding with a huge ignored... no field is ignored
		// (unknown fields are rejected), so pad inside the graph labels.
		var b strings.Builder
		b.WriteString(`{"graph":{"n":1,"labels":["`)
		b.WriteString(strings.Repeat("1", maxRequestBytes))
		b.WriteString(`"]},"property":"all-selected"}`)
		if _, err := DecodeRequest(strings.NewReader(b.String())); err == nil {
			t.Fatal("body over the size bound accepted")
		}
	})
	t.Run("whitespace-padding-under-limit", func(t *testing.T) {
		body := small + strings.Repeat(" ", 1024)
		if _, err := DecodeRequest(strings.NewReader(body)); err != nil {
			t.Fatalf("trailing whitespace within the limit rejected: %v", err)
		}
	})
}
