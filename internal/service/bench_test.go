package service_test

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// verifyBody builds a /v1/verify request for an n-cycle. Even n makes
// 2-colorable hold, so the game is one strategy-guided machine run and
// the per-request cost is dominated by setup — exactly what the
// Prepared cache amortizes.
func verifyBody(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"graph":{"n":%d,"edges":[`, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "[%d,%d]", i, (i+1)%n)
	}
	b.WriteString(`]},"property":"2-colorable","workers":1}`)
	return b.String()
}

// BenchmarkServiceVerify measures one full service round —
// decode, cache lookup, game evaluation, encode — through the handler,
// cold (cache and memo disabled: every request re-prepares and replays
// the game) versus warm (cache hit + transposition-table hit: the game
// verdict is a lookup and the request cost is decode/hash/encode). See
// DESIGN.md for recorded numbers.
func BenchmarkServiceVerify(b *testing.B) {
	body := verifyBody(256)
	run := func(b *testing.B, srv *service.Server) {
		b.Helper()
		h := srv.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(body))
			h.ServeHTTP(w, r)
			if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"holds":true`) {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		run(b, service.New(service.Config{Workers: 1, CacheSize: 0}))
	})
	b.Run("warm", func(b *testing.B) {
		srv := service.New(service.Config{Workers: 1, CacheSize: 8, MemoSize: 4096})
		// Prime the cache and the memo so every measured request hits.
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("warmup failed: %s", w.Body.String())
		}
		run(b, srv)
	})
}

// BenchmarkTracedVerify prices the tracing subsystem on the warm
// verify path — the request whose real work is cheapest, so the
// instrumentation share is largest. untraced runs with tracing
// disabled outright (TraceRing: -1: no trace, no spans, no phase
// histograms); traced runs the full pipeline — inbound traceparent
// parse, span starts/ends through shed/memo/cache, histogram
// observation, ring push, and a JSON log line to io.Discard. Both
// arms send the same traceparent header so the client-side cost of
// setting it cancels out and the delta is the server's tracing work.
// `make bench-delta` gates traced at most 10% over untraced within
// one recorded file. See DESIGN.md for recorded numbers.
func BenchmarkTracedVerify(b *testing.B) {
	body := verifyBody(256)
	run := func(b *testing.B, cfg service.Config) {
		b.Helper()
		srv := service.New(cfg)
		defer srv.Close()
		h := srv.Handler()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("warmup failed: %s", w.Body.String())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(body))
			r.Header.Set("traceparent", fixedTraceparent)
			h.ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("untraced", func(b *testing.B) {
		run(b, service.Config{Workers: 1, CacheSize: 8, MemoSize: 4096, TraceRing: -1})
	})
	b.Run("traced", func(b *testing.B) {
		run(b, service.Config{
			Workers: 1, CacheSize: 8, MemoSize: 4096,
			Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
		})
	})
}
