package service_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// verifyBody builds a /v1/verify request for an n-cycle. Even n makes
// 2-colorable hold, so the game is one strategy-guided machine run and
// the per-request cost is dominated by setup — exactly what the
// Prepared cache amortizes.
func verifyBody(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"graph":{"n":%d,"edges":[`, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "[%d,%d]", i, (i+1)%n)
	}
	b.WriteString(`]},"property":"2-colorable","workers":1}`)
	return b.String()
}

// BenchmarkServiceVerify measures one full service round —
// decode, cache lookup, game evaluation, encode — through the handler,
// cold (cache and memo disabled: every request re-prepares and replays
// the game) versus warm (cache hit + transposition-table hit: the game
// verdict is a lookup and the request cost is decode/hash/encode). See
// DESIGN.md for recorded numbers.
func BenchmarkServiceVerify(b *testing.B) {
	body := verifyBody(256)
	run := func(b *testing.B, srv *service.Server) {
		b.Helper()
		h := srv.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(body))
			h.ServeHTTP(w, r)
			if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"holds":true`) {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		run(b, service.New(service.Config{Workers: 1, CacheSize: 0}))
	})
	b.Run("warm", func(b *testing.B) {
		srv := service.New(service.Config{Workers: 1, CacheSize: 8, MemoSize: 4096})
		// Prime the cache and the memo so every measured request hits.
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("warmup failed: %s", w.Body.String())
		}
		run(b, srv)
	})
}
