package service

import (
	"context"
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestCacheLRUEvictionOrder walks a fixed access sequence through a
// 2-slot cache and asserts the recency order, the evicted victim, and
// every counter after each phase — the reconciliation invariant being
// misses - evictions == size.
func TestCacheLRUEvictionOrder(t *testing.T) {
	t.Parallel()
	a, b, d := graph.Path(3), graph.Cycle(3), graph.Star(4)
	ha, hb, hd := a.Hash(), b.Hash(), d.Hash()
	c := NewCache(2)

	mustGet := func(g *graph.Graph, wantCached bool) {
		t.Helper()
		prep, cached, err := c.Get(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if prep == nil || cached != wantCached {
			t.Fatalf("Get: prep=%v cached=%v, want cached=%v", prep != nil, cached, wantCached)
		}
	}
	assertKeys := func(want ...string) {
		t.Helper()
		got := c.Keys()
		if len(got) != len(want) {
			t.Fatalf("keys %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("keys %v, want %v", got, want)
			}
		}
	}
	assertStats := func(want CacheStats) {
		t.Helper()
		if got := c.Stats(); got != want {
			t.Fatalf("stats %+v, want %+v", got, want)
		}
		if got := c.Stats(); int(got.Misses)-int(got.Evictions) != got.Size {
			t.Fatalf("bookkeeping does not reconcile: %+v", got)
		}
	}

	mustGet(a, false) // miss: [a]
	mustGet(b, false) // miss: [b a]
	assertKeys(hb, ha)
	assertStats(CacheStats{Capacity: 2, Size: 2, Hits: 0, Misses: 2, Evictions: 0})

	mustGet(a, true) // hit refreshes a: [a b]
	assertKeys(ha, hb)
	assertStats(CacheStats{Capacity: 2, Size: 2, Hits: 1, Misses: 2, Evictions: 0})

	mustGet(d, false) // miss evicts the LRU, which is now b: [d a]
	assertKeys(hd, ha)
	assertStats(CacheStats{Capacity: 2, Size: 2, Hits: 1, Misses: 3, Evictions: 1})

	mustGet(b, false) // b was evicted: miss again, victim a
	assertKeys(hb, hd)
	assertStats(CacheStats{Capacity: 2, Size: 2, Hits: 1, Misses: 4, Evictions: 2})
}

// TestCacheDisabled: capacity 0 must store nothing and count every
// lookup as a miss while still serving fresh instances.
func TestCacheDisabled(t *testing.T) {
	t.Parallel()
	c := NewCache(0)
	g := graph.Cycle(4)
	for i := 0; i < 3; i++ {
		prep, cached, err := c.Get(context.Background(), g)
		if err != nil || prep == nil || cached {
			t.Fatalf("Get %d: prep=%v cached=%v err=%v", i, prep != nil, cached, err)
		}
	}
	want := CacheStats{Capacity: 0, Size: 0, Hits: 0, Misses: 3, Evictions: 0}
	if got := c.Stats(); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if len(c.Keys()) != 0 {
		t.Fatal("disabled cache retained keys")
	}
}

// TestCacheKeyIsContentHash: two constructions of the same graph (edges
// permuted and flipped) share one cache slot and one Prepared instance.
func TestCacheKeyIsContentHash(t *testing.T) {
	t.Parallel()
	g1 := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, []string{"1", "1", "1"})
	g2 := graph.MustNew(3, []graph.Edge{{U: 0, V: 2}, {U: 2, V: 1}, {U: 1, V: 0}}, []string{"1", "1", "1"})
	c := NewCache(4)
	p1, cached1, err := c.Get(context.Background(), g1)
	if err != nil || cached1 {
		t.Fatalf("first get: cached=%v err=%v", cached1, err)
	}
	p2, cached2, err := c.Get(context.Background(), g2)
	if err != nil || !cached2 {
		t.Fatalf("second get: cached=%v err=%v", cached2, err)
	}
	if p1 != p2 {
		t.Fatal("equal graphs yielded distinct Prepared instances")
	}
}

// TestCacheConcurrentSameGraph: exactly one miss no matter how many
// concurrent requesters, and everyone shares the single preparation.
func TestCacheConcurrentSameGraph(t *testing.T) {
	t.Parallel()
	c := NewCache(4)
	g := graph.Grid(3, 3)
	const n = 32
	var wg sync.WaitGroup
	preps := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prep, _, err := c.Get(context.Background(), g)
			if err != nil {
				t.Error(err)
				return
			}
			preps[i] = prep
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if preps[i] != preps[0] {
			t.Fatal("concurrent requesters saw distinct Prepared instances")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Size != 1 {
		t.Fatalf("stats %+v, want 1 miss / %d hits / size 1", st, n-1)
	}
}

// TestCacheConcurrentDistinctGraphs races misses and evictions under
// -race: the store must never exceed capacity and the books must
// reconcile at rest.
func TestCacheConcurrentDistinctGraphs(t *testing.T) {
	t.Parallel()
	c := NewCache(3)
	gs := []*graph.Graph{
		graph.Path(4), graph.Cycle(5), graph.Star(6), graph.Complete(4),
		graph.Grid(2, 3), graph.Cycle(7),
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := c.Get(context.Background(), gs[i%len(gs)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 3 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
	if st.Hits+st.Misses != 24 {
		t.Fatalf("lookups %d, want 24", st.Hits+st.Misses)
	}
	if int(st.Misses)-int(st.Evictions) != st.Size {
		t.Fatalf("bookkeeping does not reconcile: %+v", st)
	}
	if len(c.Keys()) != st.Size {
		t.Fatalf("keys %d vs size %d", len(c.Keys()), st.Size)
	}
}
