package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/simulate"
)

// Config configures a Server. The zero value is usable: worker budget of
// all CPUs, cache disabled, no evaluation deadline, one job worker over
// a 16-deep admission queue with 15-minute result retention.
type Config struct {
	// Workers is the server-wide worker budget: the hard upper bound on
	// any request's game-evaluation pool. 0 means one worker per CPU.
	Workers int
	// CacheSize is the capacity of the Prepared cache; <= 0 disables it.
	CacheSize int
	// MemoSize is the capacity (entries) of the game-verdict
	// transposition table shared by decide/verify/batch; <= 0 disables
	// memoization, making every request replay its game from scratch.
	MemoSize int
	// Timeout bounds each request's evaluation; 0 means no deadline
	// beyond the client's own connection lifetime.
	Timeout time.Duration
	// ShedWait bounds how long a synchronous request waits for worker
	// budget before being shed with 429 + Retry-After; 0 means 1 second.
	ShedWait time.Duration
	// DrainTimeout is the budget a graceful drain gives running jobs
	// before they are cancelled — cmd/lphd passes its -drain-timeout
	// here. The drain path's Retry-After hint is derived from what
	// remains of this budget, so a turned-away client waits roughly
	// until the restarted instance is back. 0 means 30 seconds (the
	// lphd flag default).
	DrainTimeout time.Duration
	// JobWorkers is the async job engine's worker pool (concurrently
	// running jobs); 0 means 1, so background sweeps serialize instead
	// of starving the synchronous path.
	JobWorkers int
	// JobQueue is the admission-queue depth of POST /v1/jobs; beyond it
	// submissions answer 429. 0 means 16; negative disables queueing.
	JobQueue int
	// JobTTL is how long finished job results stay retrievable; 0 means
	// 15 minutes.
	JobTTL time.Duration
	// Journal, when non-nil, makes the job engine durable: lifecycle
	// records are fsynced to it and replayed on startup (finished
	// results come back, interrupted jobs re-run). The journal's
	// lifetime belongs to the caller — Close does not close it.
	Journal *journal.Journal
	// Now is the injectable clock: it times request latencies and is
	// handed to the job engine for TTL/runtime accounting. nil means
	// time.Now; tests inject a fake to make timing deterministic.
	Now func() time.Time
	// TraceRing sizes the completed-trace ring behind
	// GET /v1/debug/traces. 0 means 128; negative disables tracing
	// entirely (no per-request traces, spans, or phase histograms — the
	// overhead benchmark's baseline).
	TraceRing int
	// Logger, when non-nil, receives one structured line per served
	// request (trace id, route, status, phase breakdown). nil means no
	// request logging; cmd/lphd wires a JSON slog handler here.
	Logger *slog.Logger
	// SlowRequest is the threshold past which a request's log line is
	// promoted to WARN with the full span dump attached; 0 disables
	// the promotion.
	SlowRequest time.Duration
}

// Server is the HTTP/JSON front end over the operation layer:
//
//	POST   /v1/decide     {"graph":…, "property":…,  "workers":N}
//	POST   /v1/verify     {"graph":…, "property":…,  "workers":N}
//	POST   /v1/reduce     {"graph":…, "reduction":…}
//	POST   /v1/game       {"game":"figure1", "workers":N}
//	POST   /v1/batch      {"op":"decide|verify", "property":…, "graphs":[…], "workers":N}
//	POST   /v1/jobs       {"job":"sweep|experiment|game", "name":…, "game":…, "workers":N}   (Idempotency-Key honored)
//	GET    /v1/jobs       ?cursor=…&limit=N&state=done,running  (admission order)
//	GET    /v1/jobs/{id}
//	DELETE /v1/jobs/{id}
//	POST   /v1/admin/drain
//	GET    /v1/healthz
//	GET    /v1/stats
//	GET    /metrics
//
// Every synchronous evaluation runs under the request's context — a
// client disconnect or the configured timeout cancels the game
// mid-search — and under a worker pool of min(request workers, server
// budget), acquired from the shared budget gate before the evaluation
// starts: when the budget stays saturated past the bounded wait the
// request is shed with 429 + Retry-After instead of queueing
// unboundedly. Batch requests fan their instance list out across that
// pool through the Prepared cache. Jobs run asynchronously on the
// bounded job engine: the admission queue answers 429 when full,
// progress and results are served from the TTL'd store, DELETE cancels
// queued and running jobs alike, and an Idempotency-Key header on the
// submit makes retries — including across a drain/restart — return the
// original job instead of double-running. POST /v1/admin/drain (or
// SIGTERM, in cmd/lphd) starts the graceful drain: write routes answer
// 503 + Retry-After while running jobs finish; /v1/healthz and the
// read routes stay live throughout. /v1/stats (JSON) and /metrics
// (Prometheus text) render the same Snapshot, so the two views cannot
// drift.
type Server struct {
	budget   int
	timeout  time.Duration
	shedWait time.Duration
	shed     *shedder
	cache    *Cache
	memo     *core.Memo
	jobs     *jobs.Engine
	lat      *latencies
	mux      *http.ServeMux
	now      func() time.Time
	tracer   *obs.Tracer // nil when tracing is disabled (TraceRing < 0)
	routes   []string    // every registered pattern, in registration order
	build    BuildStats  // process identity, stamped once at New

	requests  atomic.Uint64 // all operation requests handled (including failures)
	failures  atomic.Uint64 // requests answered with a non-2xx status
	canceled  atomic.Uint64 // evaluations aborted by cancellation/timeout
	throttled atomic.Uint64 // submissions rejected by admission control (429)

	draining      atomic.Bool   // set once a drain begins; never unset
	drainRejected atomic.Uint64 // write requests answered 503 while draining
	drainTimeout  time.Duration // budget a graceful drain gives running jobs
	drainDeadline atomic.Int64  // unix nanos when the drain budget lapses; 0 until a drain begins
	drainOnce     sync.Once
	drainCh       chan struct{} // closed when a drain is requested
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	budget := cfg.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	jobQueue := cfg.JobQueue
	if jobQueue == 0 {
		jobQueue = 16
	}
	now := cfg.Now
	if now == nil {
		now = time.Now //lint:wallclock production default; tests inject cfg.Now
	}
	shedWait := cfg.ShedWait
	if shedWait <= 0 {
		shedWait = defaultShedWait
	}
	drainTimeout := cfg.DrainTimeout
	if drainTimeout <= 0 {
		drainTimeout = defaultDrainTimeout
	}
	var memo *core.Memo // nil when disabled; every call site is nil-safe
	if cfg.MemoSize > 0 {
		memo = core.NewMemo(cfg.MemoSize)
	}
	s := &Server{
		budget:       budget,
		timeout:      cfg.Timeout,
		shedWait:     shedWait,
		drainTimeout: drainTimeout,
		shed:         newShedder(budget),
		cache:        NewCache(cfg.CacheSize),
		memo:         memo,
		lat:          newLatencies(),
		mux:          http.NewServeMux(),
		now:          now,
		build:        buildStats(now),
		drainCh:      make(chan struct{}),
	}
	if cfg.TraceRing >= 0 {
		s.tracer = obs.NewTracer(obs.TracerConfig{
			Now: now, RingSize: cfg.TraceRing,
			Logger: cfg.Logger, SlowRequest: cfg.SlowRequest,
		})
	}
	// The engine is built after s exists: the rehydrate hook replays
	// journaled specs through the same buildJob validation as live
	// submissions, and the observe hook lands queue-wait / run phases
	// in the same histograms the synchronous spans feed.
	s.jobs = jobs.New(jobs.Config{
		Workers: cfg.JobWorkers, Queue: jobQueue, TTL: cfg.JobTTL,
		Journal: cfg.Journal, Rehydrate: s.rehydrateJob, Now: now,
		Observe: s.tracer.Observe,
	})
	s.handle("POST /v1/decide", s.handleDecide)
	s.handle("POST /v1/verify", s.handleVerify)
	s.handle("POST /v1/reduce", s.handleReduce)
	s.handle("POST /v1/game", s.handleGame)
	s.handle("POST /v1/batch", s.handleBatch)
	s.handle("POST /v1/jobs", s.handleJobSubmit)
	s.handle("GET /v1/jobs", s.handleJobList)
	s.handle("GET /v1/jobs/{id}", s.handleJobGet)
	s.handle("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.handle("POST /v1/admin/drain", s.handleAdminDrain)
	s.handle("GET /v1/healthz", s.handleHealthz)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/debug/traces", s.handleDebugTraces)
	return s
}

// handle registers a route and records its pattern, so tests can
// enumerate every registered route (the mux keeps its own list
// private) and hold each one to the tracing contract.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// Routes returns every registered route pattern in registration
// order (for tests and debugging).
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// buildStats stamps the process identity served by /v1/stats and
// /metrics (lphd_build_info, lphd_process_start_time_seconds).
func buildStats(now func() time.Time) BuildStats {
	b := BuildStats{
		GoVersion:        runtime.Version(),
		Module:           "unknown",
		StartUnixSeconds: now().Unix(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		b.Module = bi.Main.Path
	}
	var id [8]byte
	if _, err := rand.Read(id[:]); err == nil {
		b.Instance = hex.EncodeToString(id[:])
	}
	return b
}

// Close stops the job engine: running jobs are cancelled and the
// workers drained. The synchronous routes stay usable.
func (s *Server) Close() { s.jobs.Close() }

// BeginDrain flips the server into drain mode: the write routes —
// synchronous evaluations and new job submissions — answer 503 +
// Retry-After, the job engine stops starting queued work, and
// DrainRequested's channel closes so the process's signal loop can run
// the exit sequence. Reads, health checks, observability routes, and
// idempotent duplicates of already-admitted submissions keep working.
// Idempotent; there is no way back short of a restart.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		// The deadline is stamped before the flag flips: any request that
		// observes draining==true can derive an honest Retry-After from it.
		s.drainDeadline.Store(s.now().Add(s.drainTimeout).UnixNano())
		s.draining.Store(true)
		s.jobs.BeginDrain()
		close(s.drainCh)
	})
}

// DrainRequested returns a channel closed once a drain has been
// requested — by POST /v1/admin/drain or a direct BeginDrain call — so
// cmd/lphd's signal loop and the admin route share one exit sequence.
func (s *Server) DrainRequested() <-chan struct{} { return s.drainCh }

// Draining reports whether a drain is in progress.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain winds the server down for a zero-downtime restart: BeginDrain,
// then wait (bounded by ctx) for running jobs to finish before closing
// the engine. Jobs that beat the deadline keep their journaled
// verdicts; stragglers re-run after restart exactly as if the process
// had crashed, and queued jobs replay as queued.
func (s *Server) Drain(ctx context.Context) jobs.DrainResult {
	s.BeginDrain()
	return s.jobs.Drain(ctx)
}

// Handler returns the route multiplexer wrapped in the tracing +
// latency middleware: every served request gets a trace (adopted from
// a valid inbound traceparent header, fresh otherwise) carried in its
// context, the trace id echoed in X-Lph-Trace, and — once the
// response is written — the completed trace lands in the debug ring,
// the request log, and the per-phase histograms, alongside the
// existing duration histogram and per-route counters. Ready for
// http.Server or httptest.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		tr := s.tracer.Start(r.Header.Get("traceparent"))
		if tr != nil {
			w.Header().Set("X-Lph-Trace", tr.ID())
			r = r.WithContext(obs.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Handler reports an empty pattern exactly when the mux would
		// fall back to its plain-text defaults (unknown path → 404,
		// known path with the wrong method → 405); those responses must
		// still honor the JSON error contract, so they detour through
		// the fallback. Everything else — including the mux's canonical-
		// path redirects, which carry the target's pattern — serves as
		// registered.
		if _, pattern := s.mux.Handler(r); pattern == "" {
			s.muxFallback(sw, r)
		} else {
			s.mux.ServeHTTP(sw, r)
		}
		// ServeMux stamps the matched pattern onto the request; an
		// unmatched request keeps Pattern empty and is labeled as such.
		s.lat.observe(r.Pattern, s.now().Sub(start))
		tr.Finish(r.Pattern, sw.status)
	})
}

// muxFallback re-shapes the mux's default unknown-route and
// wrong-method responses into the JSON error contract: every error
// body carries {"error":…,"trace":…} and the X-Lph-Trace header, and a
// 405 keeps the Allow header the mux computed. The mux itself renders
// the verdict into a body-discarding probe — it alone knows whether
// the path exists under another method — and only the shape of the
// response is replaced.
func (s *Server) muxFallback(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.failures.Add(1)
	probe := &headerProbe{header: make(http.Header), status: http.StatusOK}
	s.mux.ServeHTTP(probe, r)
	msg := "not found"
	if probe.status == http.StatusMethodNotAllowed {
		msg = "method not allowed"
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
	}
	writeJSON(w, probe.status, errorBody(r, msg))
}

// headerProbe is the ResponseWriter muxFallback hands the mux: it
// keeps the status and headers and drops the plain-text body.
type headerProbe struct {
	header http.Header
	status int
}

func (p *headerProbe) Header() http.Header         { return p.header }
func (p *headerProbe) Write(b []byte) (int, error) { return len(b), nil }
func (p *headerProbe) WriteHeader(code int)        { p.status = code }

// statusWriter captures the response status for the trace record and
// the request log (the handlers only hand status to WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Tracer exposes the tracing subsystem (nil when disabled), for tests
// and the debug route.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Cache exposes the Prepared cache (for tests and stats).
func (s *Server) Cache() *Cache { return s.cache }

// Memo exposes the game-verdict transposition table (nil when
// disabled), for tests and stats.
func (s *Server) Memo() *core.Memo { return s.memo }

// Jobs exposes the async job engine (for tests and stats).
func (s *Server) Jobs() *jobs.Engine { return s.jobs }

// engine derives the per-request search options: the request context
// (optionally bounded by the server timeout) and the clamped worker
// pool. The returned cancel must be called when the evaluation is done.
func (s *Server) engine(ctx context.Context, reqWorkers int) (search.Options, context.CancelFunc) {
	w := s.budget
	if reqWorkers > 0 && reqWorkers < s.budget {
		w = reqWorkers
	}
	cancel := context.CancelFunc(func() {})
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	return search.Options{Workers: w, Ctx: ctx}, cancel
}

// VerdictResponse answers /v1/decide and /v1/verify.
type VerdictResponse struct {
	Op   string `json:"op"`
	Name string `json:"name"`
	// Holds is the verdict: the property holds / Eve's strategy wins.
	Holds bool `json:"holds"`
	// Cached reports whether the request was served warm: the verdict
	// came from the request-level memo, or the Prepared instance came
	// from the cache.
	Cached bool `json:"cached"`
	// Workers echoes the effective (clamped) worker pool size.
	Workers int `json:"workers"`
}

// ReduceResponse answers /v1/reduce with the output graph in graphio
// wire format and its cluster map.
type ReduceResponse struct {
	Op        string          `json:"op"`
	Name      string          `json:"name"`
	Graph     json.RawMessage `json:"graph"`
	ClusterOf []int           `json:"cluster_of"`
}

// GameResponse answers /v1/game.
type GameResponse struct {
	Op      string       `json:"op"`
	Name    string       `json:"name"`
	Workers int          `json:"workers"`
	Results []GameResult `json:"results"`
}

// StatsResponse is the full state of the server's bookkeeping — worker
// budget, cache, request counters, job engine, latency histogram, and
// the operation catalog. It is the single source of truth behind both
// observability routes: /v1/stats serves it as JSON and /metrics
// renders the same snapshot in Prometheus text format, so a field
// reported by one is by construction the field reported by the other.
type StatsResponse struct {
	WorkersBudget int        `json:"workers_budget"`
	TimeoutMS     int64      `json:"timeout_ms"`
	Cache         CacheStats `json:"cache"`
	// Memo is the game-verdict transposition table; all-zero when the
	// table is disabled (MemoSize <= 0).
	Memo     core.MemoStats `json:"memo"`
	Requests struct {
		Total     uint64 `json:"total"`
		Failures  uint64 `json:"failures"`
		Canceled  uint64 `json:"canceled"`
		Throttled uint64 `json:"throttled"`
	} `json:"requests"`
	// Drain is the lifecycle corner of the snapshot. Draining is 0 or 1
	// — a gauge, not a bool, so it reaches /metrics.
	Drain struct {
		Draining uint64 `json:"draining"`
		Rejected uint64 `json:"rejected"`
	} `json:"drain"`
	// Shed is the sync-route admission gate over the worker budget.
	Shed    ShedStats    `json:"shed"`
	Jobs    jobs.Stats   `json:"jobs"`
	Latency LatencyStats `json:"latency"`
	// Phases are the span-derived per-phase latency histograms
	// (shed_wait, cache, prepare, memo, engine, journal_append,
	// journal_fsync, queue_wait, job_run); empty when tracing is
	// disabled.
	Phases []obs.PhaseStats `json:"phases,omitempty"`
	// Build is the process identity: Go toolchain, module, and start
	// time, constant for the process's lifetime.
	Build   BuildStats          `json:"build"`
	Catalog map[string][]string `json:"catalog"`
}

// BuildStats identifies the running build and process — the JSON
// shape behind lphd_build_info and the start-time gauge.
type BuildStats struct {
	GoVersion        string `json:"go_version"`
	Module           string `json:"module"`
	StartUnixSeconds int64  `json:"start_unix_seconds"`
	// Instance is a random per-process identity, fresh on every start.
	// Two observations of one address that disagree on it prove a
	// restart happened in between — the router's rolling restart waits
	// on exactly that before moving to the next node. JSON-only:
	// /metrics identifies the process by start time instead.
	Instance string `json:"instance,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

// Retry-After fallback hints, in seconds: a shed request retries as
// soon as the current evaluations release budget; a drained-away
// request retries against the restarted instance. The shed value
// covers an empty engine histogram (see shedRetryHint); the drain
// value covers the never-happens case of a drain rejection before
// BeginDrain stamped its deadline (see drainRetryHint).
const (
	shedRetryAfter  = "1"
	drainRetryAfter = "5"
)

// defaultDrainTimeout mirrors cmd/lphd's -drain-timeout default, so an
// embedded Server without explicit configuration derives the same
// Retry-After hints the binary would.
const defaultDrainTimeout = 30 * time.Second

// shedRetryHint derives the shed path's Retry-After from the observed
// p50 engine-phase latency — a client told to come back should wait
// about as long as a typical evaluation takes to release its budget —
// rounded up to whole seconds and clamped to [1s, 60s]. Falls back to
// the static hint while the histogram is empty (or tracing is off).
func (s *Server) shedRetryHint() string {
	p50, ok := s.tracer.P50(obs.PhaseEngine)
	if !ok {
		return shedRetryAfter
	}
	secs := int(math.Ceil(p50))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

// drainRetryHint derives the drain path's Retry-After from what
// remains of the drain budget: by then the running jobs have finished
// or been cancelled and (under cmd/lphd) the supervisor has restarted
// the instance, so a turned-away client should come back when the
// budget lapses — rounded up to whole seconds and clamped to
// [1s, 60s], the same discipline as shedRetryHint. A static hint here
// would be dishonest the moment -drain-timeout differs from it, and
// the router's retry-on-another-shard backoff trusts this value.
func (s *Server) drainRetryHint() string {
	dl := s.drainDeadline.Load()
	if dl == 0 {
		return drainRetryAfter
	}
	secs := int(math.Ceil(time.Unix(0, dl).Sub(s.now()).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

// errorBody shapes every error response: the message plus the request
// trace id, so a client error report carries the exact handle to grep
// the log and the debug ring with.
func errorBody(r *http.Request, msg string) map[string]string {
	body := map[string]string{"error": msg}
	if id := obs.FromContext(r.Context()).ID(); id != "" {
		body["trace"] = id
	}
	return body
}

// fail maps an operation error to its HTTP shape: decode and catalog
// errors are the client's fault (400), cancellation and timeout are
// accounted separately (503), a full admission queue or saturated
// worker budget throttles (429, with a Retry-After hint), a draining
// server turns work away (503 + Retry-After), job lookups miss (404),
// and anything else is a server error (500).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	s.failures.Add(1)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest) || errors.Is(err, ErrUnknownName):
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
		status = http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrQueueFull):
		s.throttled.Add(1)
		w.Header().Set("Retry-After", s.shedRetryHint())
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrSaturated):
		s.throttled.Add(1)
		w.Header().Set("Retry-After", s.shedRetryHint())
		status = http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrDraining):
		s.drainRejected.Add(1)
		w.Header().Set("Retry-After", s.drainRetryHint())
		status = http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrNotFound):
		status = http.StatusNotFound
	}
	writeJSON(w, status, errorBody(r, err.Error()))
}

// shedDraining answers 503 + Retry-After when a drain is in progress;
// the synchronous write handlers call it before doing any work, so a
// draining server turns evaluations away at the door while reads and
// health checks keep flowing.
func (s *Server) shedDraining(w http.ResponseWriter, r *http.Request) bool {
	if !s.draining.Load() {
		return false
	}
	s.drainRejected.Add(1)
	s.failures.Add(1)
	w.Header().Set("Retry-After", s.drainRetryHint())
	writeJSON(w, http.StatusServiceUnavailable,
		errorBody(r, "server draining; retry against the restarted instance"))
	return true
}

// acquireBudget takes the request's clamped worker count from the
// budget gate, waiting at most the configured shed bound. The wait
// runs on its own timeout derived from the request context — the bound
// must not eat into the evaluation's deadline — and the returned
// release must be called once the evaluation is done.
func (s *Server) acquireBudget(ctx context.Context, workers int) (release func(), err error) {
	need := int64(workers)
	waitCtx, cancel := context.WithTimeout(ctx, s.shedWait)
	defer cancel()
	sp := obs.StartSpan(ctx, obs.PhaseShedWait)
	acqErr := s.shed.acquire(waitCtx, need)
	sp.End()
	if acqErr != nil {
		if ctx.Err() != nil {
			// The client vanished (or its deadline passed) during the wait;
			// report that, not saturation.
			return nil, ctx.Err()
		}
		return nil, acqErr
	}
	return func() { s.shed.release(need) }, nil
}

// verdict runs one cached-instance operation (Decide or Verify) for the
// decoded request and writes the verdict. The two handlers differ only
// in the op label, the catalog membership test, and the evaluator — the
// same shared functions the CLI calls. The name is validated before the
// cache lookup so a stream of bogus-name requests never pays for graph
// preparation or evicts warm entries.
func (s *Server) verdict(w http.ResponseWriter, r *http.Request, op string,
	has func(name string) bool,
	eval func(prep *simulate.Prepared, name string, o search.Options) (bool, error)) {
	s.requests.Add(1)
	if s.shedDraining(w, r) {
		return
	}
	req, err := DecodeRequest(r.Body)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if !has(req.Property) {
		s.fail(w, r, fmt.Errorf("%w: %s property %q", ErrUnknownName, op, req.Property))
		return
	}
	// Derive the request context before the cache fill: a preparation is
	// shared work that runs to completion (other requests may be waiting
	// on it), but a request whose deadline passed during it aborts here
	// instead of starting the game.
	engine, cancel := s.engine(r.Context(), req.Workers)
	defer cancel()
	release, err := s.acquireBudget(r.Context(), engine.Workers)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	defer release()
	// run is the full pipeline — decode, prepare (through the cache),
	// play the game (through the game-level memo inside eval). With the
	// memo enabled it only executes when the request-level key below
	// misses; computed distinguishes the two so the cached flag is
	// truthful either way. The worker count is deliberately outside the
	// key: every engine configuration computes the same verdict (the
	// ProCoS equivalence the core tests pin), so a verdict computed under
	// one pool size answers requests under any other.
	computed := false
	prepCached := false
	run := func() (bool, error) {
		computed = true
		g, err := req.DecodeGraph()
		if err != nil {
			return false, err
		}
		prep, cached, err := s.cache.Get(engine.Ctx, g)
		if err != nil {
			return false, err
		}
		prepCached = cached
		if err := ctxErr(engine); err != nil {
			return false, err
		}
		esp := obs.StartSpan(engine.Ctx, obs.PhaseEngine)
		holds, err := eval(prep, req.Property, engine)
		esp.End()
		return holds, err
	}
	var holds bool
	if s.memo != nil {
		// Request-level memo: byte-identical graph payloads (retries,
		// pollers) short-circuit the whole pipeline to a table lookup.
		// Graphs serialized differently miss here and still hit the
		// canonical-hash game memo inside eval; errors are never cached.
		// The memo span covers the whole tier — a hit is microseconds,
		// a miss contains the cache/prepare/engine spans it triggered.
		sum := sha256.Sum256(req.Graph)
		key := "req/" + op + "/" + req.Property + "/" + hex.EncodeToString(sum[:])
		msp := obs.StartSpan(engine.Ctx, obs.PhaseMemo)
		holds, err = s.memo.Do(engine.Ctx, key, run)
		msp.End()
	} else {
		holds, err = run()
	}
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, VerdictResponse{
		Op: op, Name: req.Property, Holds: holds, Cached: prepCached || !computed, Workers: engine.Workers,
	})
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	s.verdict(w, r, "decide", HasDecide, s.decide)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.verdict(w, r, "verify", HasVerify, s.verify)
}

// decide and verify are the server-bound evaluators: the shared
// operations routed through the server's transposition table, so
// repeated requests on a warm graph short-circuit to a memo hit.
func (s *Server) decide(prep *simulate.Prepared, name string, o search.Options) (bool, error) {
	return DecideMemo(prep, name, o, s.memo)
}

func (s *Server) verify(prep *simulate.Prepared, name string, o search.Options) (bool, error) {
	return VerifyMemo(prep, name, o, s.memo)
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.shedDraining(w, r) {
		return
	}
	req, err := DecodeRequest(r.Body)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	g, err := req.DecodeGraph()
	if err != nil {
		s.fail(w, r, err)
		return
	}
	engine, cancel := s.engine(r.Context(), req.Workers)
	defer cancel()
	release, err := s.acquireBudget(r.Context(), engine.Workers)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	defer release()
	esp := obs.StartSpan(engine.Ctx, obs.PhaseEngine)
	res, err := Reduce(g, req.Reduction, engine)
	esp.End()
	if err != nil {
		s.fail(w, r, err)
		return
	}
	var buf bytes.Buffer
	if err := graphio.Encode(&buf, res.Out); err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ReduceResponse{
		Op: "reduce", Name: req.Reduction, Graph: buf.Bytes(), ClusterOf: res.ClusterOf,
	})
}

func (s *Server) handleGame(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.shedDraining(w, r) {
		return
	}
	req, err := DecodeRequest(r.Body)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	engine, cancel := s.engine(r.Context(), req.Workers)
	defer cancel()
	release, err := s.acquireBudget(r.Context(), engine.Workers)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	defer release()
	esp := obs.StartSpan(engine.Ctx, obs.PhaseEngine)
	results, err := Game(req.Game, engine)
	esp.End()
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, GameResponse{
		Op: "game", Name: req.Game, Workers: engine.Workers, Results: results,
	})
}

// HealthzResponse answers GET /v1/healthz. Draining is omitted while
// false, so the steady-state body stays the exact `{"ok":true}` the
// smoke tests pin; load balancers watching the drain flag can start
// moving traffic before the listener goes away.
type HealthzResponse struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining,omitempty"`
}

// handleHealthz stays live through saturation (it never touches the
// budget gate) and through a drain (liveness is not admission): a
// draining server is still healthy, just telling balancers where it is
// in its lifecycle.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{OK: true, Draining: s.draining.Load()})
}

// handleAdminDrain starts the graceful drain over HTTP — the same
// lifecycle SIGTERM triggers in cmd/lphd. It answers 202 immediately:
// the drain proceeds (and, under cmd/lphd, the process exits) in the
// background while this response is still in flight.
func (s *Server) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.BeginDrain()
	writeJSON(w, http.StatusAccepted, map[string]bool{"draining": true})
}

// Snapshot assembles the stats response — the one value both
// observability routes encode.
func (s *Server) Snapshot() StatsResponse {
	resp := StatsResponse{
		WorkersBudget: s.budget,
		TimeoutMS:     s.timeout.Milliseconds(),
		Cache:         s.cache.Stats(),
		Memo:          s.memo.Stats(),
		Jobs:          s.jobs.Stats(),
		Latency:       s.lat.snapshot(),
		Phases:        s.tracer.PhaseStats(),
		Build:         s.build,
		Catalog: map[string][]string{
			"decide": DecideNames(),
			"verify": VerifyNames(),
			"reduce": ReduceNames(),
			"game":   GameNames(),
			"job":    JobNames(),
		},
	}
	resp.Requests.Total = s.requests.Load()
	resp.Requests.Failures = s.failures.Load()
	resp.Requests.Canceled = s.canceled.Load()
	resp.Requests.Throttled = s.throttled.Load()
	if s.draining.Load() {
		resp.Drain.Draining = 1
	}
	resp.Drain.Rejected = s.drainRejected.Load()
	resp.Shed = s.shed.stats()
	resp.Shed.WaitBoundMS = s.shedWait.Milliseconds()
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, renderMetrics(s.Snapshot()))
}
