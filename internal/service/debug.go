package service

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// defaultTraceLimit bounds a /v1/debug/traces response when the
// client names no limit; the full ring is available with ?limit=0.
const defaultTraceLimit = 50

// DebugTracesResponse answers GET /v1/debug/traces: the retained
// completed traces, newest first.
type DebugTracesResponse struct {
	// Enabled is false when the server runs with tracing disabled
	// (TraceRing < 0) — the route still answers, with an empty list.
	Enabled bool              `json:"enabled"`
	Count   int               `json:"count"`
	Traces  []obs.TraceRecord `json:"traces"`
}

// handleDebugTraces serves the completed-trace ring as JSON.
// ?limit=N caps the result (default 50, 0 = everything retained);
// ?route=PATTERN filters to one route pattern, exact match (e.g.
// ?route=POST+/v1/verify). A read-only observability route: it never
// touches the shed gate and stays live through a drain.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	limit := defaultTraceLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.fail(w, r, fmt.Errorf("%w: limit %q (want a non-negative integer)", ErrBadRequest, raw))
			return
		}
		limit = n
	}
	traces := s.tracer.Traces(limit, r.URL.Query().Get("route"))
	if traces == nil {
		traces = []obs.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, DebugTracesResponse{
		Enabled: s.tracer != nil,
		Count:   len(traces),
		Traces:  traces,
	})
}
