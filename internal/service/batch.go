package service

import (
	"bytes"
	"fmt"
	"net/http"

	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/simulate"
)

// maxBatchGraphs bounds one /v1/batch instance list; a front door must
// not accept unbounded fan-out in a single request.
const maxBatchGraphs = 256

// BatchItem is one instance's outcome in a /v1/batch response. Error,
// when non-empty, wins: the holds/cached fields of a failed item are
// zero-valued filler.
type BatchItem struct {
	Index  int    `json:"index"`
	Holds  bool   `json:"holds"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse answers /v1/batch.
type BatchResponse struct {
	Op string `json:"op"`
	// Verb is the per-graph operation (decide or verify), Name the
	// property every graph was evaluated against.
	Verb    string      `json:"verb"`
	Name    string      `json:"name"`
	Workers int         `json:"workers"`
	Failed  int         `json:"failed"`
	Results []BatchItem `json:"results"`
}

// handleBatch evaluates one operation over many graphs in a single
// request: the instance list fans out across the request's worker pool
// (the instance is the unit of parallelism — each evaluation runs its
// game on the sequential inner engine, the same discipline as the
// experiment sweeps), every instance is served through the Prepared
// cache, and per-graph failures are reported per item instead of
// failing the whole batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.shedDraining(w, r) {
		return
	}
	req, err := DecodeRequest(r.Body)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	var eval func(prep *simulate.Prepared, name string, o search.Options) (bool, error)
	switch req.Op {
	case "decide":
		if !HasDecide(req.Property) {
			s.fail(w, r, fmt.Errorf("%w: decide property %q", ErrUnknownName, req.Property))
			return
		}
		eval = s.decide
	case "verify":
		if !HasVerify(req.Property) {
			s.fail(w, r, fmt.Errorf("%w: verify property %q", ErrUnknownName, req.Property))
			return
		}
		eval = s.verify
	default:
		s.fail(w, r, fmt.Errorf("%w: batch op %q (want decide or verify)", ErrBadRequest, req.Op))
		return
	}
	if len(req.Graphs) == 0 {
		s.fail(w, r, fmt.Errorf("%w: empty graphs list", ErrBadRequest))
		return
	}
	if len(req.Graphs) > maxBatchGraphs {
		s.fail(w, r, fmt.Errorf("%w: %d graphs exceed the batch bound of %d",
			ErrBadRequest, len(req.Graphs), maxBatchGraphs))
		return
	}
	engine, cancel := s.engine(r.Context(), req.Workers)
	defer cancel()
	release, err := s.acquireBudget(r.Context(), engine.Workers)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	defer release()
	inner := search.Options{Workers: 1, Ctx: engine.Ctx}
	// One engine span covers the whole fan-out: per-item spans would
	// dominate the trace's span budget on large batches, and the item
	// cache lookups still land as cache/prepare spans of their own.
	esp := obs.StartSpan(engine.Ctx, obs.PhaseEngine)
	results := search.Map(engine, len(req.Graphs), func(i int) BatchItem {
		item := BatchItem{Index: i}
		if err := ctxErr(inner); err != nil {
			item.Error = err.Error()
			return item
		}
		g, err := graphio.Decode(bytes.NewReader(req.Graphs[i]))
		if err != nil {
			item.Error = fmt.Sprintf("bad graph: %v", err)
			return item
		}
		prep, cached, err := s.cache.Get(inner.Ctx, g)
		if err != nil {
			item.Error = err.Error()
			return item
		}
		holds, err := eval(prep, req.Property, inner)
		if err != nil {
			item.Error = err.Error()
			return item
		}
		item.Holds, item.Cached = holds, cached
		return item
	})
	esp.End()
	// A cancelled request answers 503 like the synchronous routes; the
	// per-item errors above only cover instance-level failures.
	if err := ctxErr(engine); err != nil {
		s.fail(w, r, err)
		return
	}
	resp := BatchResponse{
		Op: "batch", Verb: req.Op, Name: req.Property, Workers: engine.Workers, Results: results,
	}
	for _, item := range results {
		if item.Error != "" {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
