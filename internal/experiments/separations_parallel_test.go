package experiments

import (
	"testing"

	"repro/internal/search"
)

// TestFigure2SeparationsParallelMatchesSequential asserts that the
// fanned-out separation experiments produce exactly the sequential
// report (same rows, same order, same verdicts) and still pass.
func TestFigure2SeparationsParallelMatchesSequential(t *testing.T) {
	seq := Figure2SeparationsOpt(search.Sequential())
	par := Figure2SeparationsOpt(search.Parallel(0))
	if !seq.OK() {
		t.Fatal("sequential Figure 2 report not OK:\n" + seq.String())
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: sequential %d, parallel %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		if seq.Rows[i] != par.Rows[i] {
			t.Errorf("row %d differs: sequential %+v, parallel %+v", i, seq.Rows[i], par.Rows[i])
		}
	}
}
