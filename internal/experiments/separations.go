package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arbiters"
	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/search"
	"repro/internal/simulate"
)

// This file executes the ground-level separation arguments of Section 9.1
// (Figure 2/13) against real machines:
//
//   - Proposition 24 (LP ⊊ NLP): any constant-round machine that works
//     under locally unique identifiers produces identical verdicts on an
//     odd cycle and on the even "glued double" cycle carrying duplicated
//     identifiers — so no LP machine decides 2-colorability.
//   - Proposition 26 (coLP ⋚ NLP): any (r,p)-bounded-certificate verifier
//     for not-all-selected is defeated by a pigeonhole/pumping argument:
//     an accepting run on a long cycle with one unselected node can be
//     spliced into an accepting run on an all-selected cycle.

// edgeGatherer floods explicit edge facts: in round 1 every node tells its
// neighbors its identifier; afterwards nodes know their incident edges as
// id pairs and flood them for `radius` more rounds, then decide
// bipartiteness of the reconstructed graph.
func edgeGatherer(radius int) *simulate.Machine {
	type st struct {
		deg   int
		id    string
		edges map[string]bool
		ok    bool
	}
	return &simulate.Machine{
		Name: fmt.Sprintf("edge-gatherer(r=%d)", radius),
		Init: func(in simulate.Input) any {
			return &st{deg: in.Degree, id: in.ID, edges: make(map[string]bool), ok: true}
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			if round == 1 {
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.id
				}
				return out, false
			}
			if round == 2 {
				for _, nid := range recv {
					a, b := s.id, nid
					if a > b {
						a, b = b, a
					}
					s.edges[a+">"+b] = true
				}
			} else {
				for _, m := range recv {
					for _, f := range strings.Split(m, "|") {
						if f != "" {
							s.edges[f] = true
						}
					}
				}
			}
			if round >= radius+2 {
				s.ok = bipartiteEdgeSet(s.edges)
				return nil, true
			}
			var all []string
			for f := range s.edges {
				all = append(all, f)
			}
			sort.Strings(all)
			msg := strings.Join(all, "|")
			out := make([]string, s.deg)
			for i := range out {
				out[i] = msg
			}
			return out, false
		},
		Output: func(sv any) string {
			if sv.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

// bipartiteEdgeSet 2-colors the graph given by "a>b" edge facts.
func bipartiteEdgeSet(edges map[string]bool) bool {
	adj := make(map[string][]string)
	for e := range edges {
		parts := strings.SplitN(e, ">", 2)
		if len(parts) != 2 {
			continue
		}
		adj[parts[0]] = append(adj[parts[0]], parts[1])
		adj[parts[1]] = append(adj[parts[1]], parts[0])
	}
	color := make(map[string]int)
	var names []string
	for v := range adj {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, src := range names {
		if _, done := color[src]; done {
			continue
		}
		color[src] = 0
		queue := []string{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if c, done := color[w]; done {
					if c == color[v] {
						return false
					}
				} else {
					color[w] = 1 - color[v]
					queue = append(queue, w)
				}
			}
		}
	}
	return true
}

// Proposition24 runs the gluing experiment: machines receive the odd cycle
// C_n with identifiers of period n, and the glued double cycle C_2n with
// the *same* identifiers duplicated (still locally unique because opposite
// copies are far apart). For every machine the verdict vectors agree —
// although 2-colorability differs — so none of them (and provably no LP
// machine) decides 2-colorability.
func Proposition24(n int, machines []*simulate.Machine) (*Report, error) {
	return Proposition24Opt(n, machines, search.Default())
}

// Proposition24Opt is Proposition24 with the machine runs batched
// through the simulation scheduler: each cycle is prepared once (one
// neighbor-order/slot-map computation per instance) and all machines run
// against it across the engine's worker pool. The report rows keep the
// machine order.
func Proposition24Opt(n int, machines []*simulate.Machine, o search.Options) (*Report, error) {
	if n%2 == 0 {
		return nil, fmt.Errorf("experiments: n must be odd, got %d", n)
	}
	r := &Report{ID: "Prop. 24", Title: fmt.Sprintf("LP ⊊ NLP: C%d vs glued C%d", n, 2*n)}
	odd := graph.Cycle(n)
	even := graph.GluedDoubleCycle(n)
	idOdd := graph.CyclicIDs(n, n)
	idEven := graph.CyclicIDs(2*n, n) // duplicates node i's id at node n+i
	r.Rows = append(r.Rows,
		row("2-colorable differs", true, props.TwoColorable(even) != props.TwoColorable(odd)),
		row("duplicated ids locally unique", true, idEven.IsLocallyUnique(even, (n-1)/2)),
	)
	jobs := make([]simulate.Job, len(machines))
	for i, m := range machines {
		jobs[i] = simulate.Job{Machine: m}
	}
	bopt := simulate.BatchOptions{Workers: o.Workers, Ctx: o.Ctx,
		Run: simulate.Options{Sequential: true}}
	prepOdd, err := simulate.Prepare(odd, idOdd)
	if err != nil {
		return nil, err
	}
	resOdd, err := prepOdd.Batch(jobs, bopt)
	if err != nil {
		return nil, fmt.Errorf("on C%d: %w", n, err)
	}
	prepEven, err := simulate.Prepare(even, idEven)
	if err != nil {
		return nil, err
	}
	resEven, err := prepEven.Batch(jobs, bopt)
	if err != nil {
		return nil, fmt.Errorf("on glued C%d: %w", 2*n, err)
	}
	//lint:coarse report assembly over already-computed batch results
	for i, m := range machines {
		a, b := resOdd[i], resEven[i]
		same := true
		for u := 0; u < n; u++ {
			if a.Outputs[u] != b.Outputs[u] || a.Outputs[u] != b.Outputs[n+u] {
				same = false
			}
		}
		r.Rows = append(r.Rows, row(m.Name+" verdicts identical", true, same))
	}
	return r, nil
}

// counterVerifier is the bounded-certificate verifier attacked by the
// Proposition 26 experiment: the certificate of each node is a counter
// value in [0, modulus); unselected nodes must carry 0, selected nodes
// must have some neighbor carrying their value minus one (mod modulus) —
// intuitively "someone closer to a witness". It accepts all yes-instances
// of not-all-selected on cycles, but pumping defeats it.
func counterVerifier(modulus int) *simulate.Machine {
	width := 1
	for 1<<uint(width) < modulus {
		width++
	}
	type st struct {
		deg   int
		label string
		val   int
		ok    bool
		enc   string
	}
	return &simulate.Machine{
		Name: fmt.Sprintf("counter-verifier(mod %d)", modulus),
		Init: func(in simulate.Input) any {
			s := &st{deg: in.Degree, label: in.Label, ok: true}
			if len(in.Certs) < 1 || len(in.Certs[0]) != width {
				s.ok = false
				return s
			}
			v, err := strconv.ParseInt(in.Certs[0], 2, 32)
			if err != nil || int(v) >= modulus {
				s.ok = false
				return s
			}
			s.val = int(v)
			s.enc = in.Certs[0]
			if s.label != "1" && s.val != 0 {
				s.ok = false
			}
			return s
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			if round == 1 {
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.enc
				}
				return out, false
			}
			if !s.ok || s.label != "1" {
				return nil, true
			}
			want := (s.val - 1 + modulus) % modulus
			seen := false
			for _, m := range recv {
				v, err := strconv.ParseInt(m, 2, 32)
				if err == nil && int(v) == want {
					seen = true
				}
			}
			if !seen {
				s.ok = false
			}
			return nil, true
		},
		Output: func(sv any) string {
			if sv.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

func widthOf(modulus int) int {
	w := 1
	for 1<<uint(w) < modulus {
		w++
	}
	return w
}

func encodeCounter(v, modulus int) string {
	s := strconv.FormatInt(int64(v), 2)
	for len(s) < widthOf(modulus) {
		s = "0" + s
	}
	return s
}

// Proposition26 runs the pumping experiment against counterVerifier:
//
//  1. On the cycle C_n with exactly one unselected node, Eve's
//     distance-mod-m certificates convince the verifier (completeness).
//  2. Two nodes on the all-selected arc have identical local views
//     (pigeonhole on labels × identifiers × certificates); splicing the
//     cycle between them yields an all-selected cycle whose inherited
//     certificates still convince the verifier — unsoundness, exactly as
//     in the proof that not-all-selected ∉ NLP.
func Proposition26(n, modulus, idPeriod int) (*Report, error) {
	r := &Report{ID: "Prop. 26", Title: "coLP ⋚ NLP: pumping a bounded-certificate verifier"}
	period := lcm(modulus, idPeriod)
	if n%period != 0 || n < 2*period {
		return nil, fmt.Errorf("experiments: need n a multiple of lcm(mod,idPeriod)=%d with room to pump", period)
	}
	labels := make([]string, n)
	certs := make([][]string, n)
	for i := 0; i < n; i++ {
		labels[i] = "1"
		certs[i] = []string{encodeCounter(i%modulus, modulus)}
	}
	labels[0] = "0"
	g := graph.Cycle(n).MustWithLabels(labels)
	id := graph.CyclicIDs(n, idPeriod)
	v := counterVerifier(modulus)

	res, err := simulate.Run(v, g, id, certs, simulate.Options{})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, row("verifier accepts the yes-instance", true, res.Accepted()))

	// Pigeonhole: nodes 1 and 1+period have identical (label, id, cert)
	// windows; splice out the arc containing node 0.
	a, b := 1, 1+period
	sameView := labels[a] == labels[b] && id[a] == id[b] && certs[a][0] == certs[b][0]
	r.Rows = append(r.Rows, row("repeated window found", true, sameView))

	m := b - a // length of the spliced all-selected cycle
	spliceLabels := make([]string, m)
	spliceCerts := make([][]string, m)
	spliceID := make(graph.IDAssignment, m)
	for i := 0; i < m; i++ {
		spliceLabels[i] = labels[a+i]
		spliceCerts[i] = certs[a+i]
		spliceID[i] = id[a+i]
	}
	pumped := graph.Cycle(m).MustWithLabels(spliceLabels)
	r.Rows = append(r.Rows,
		row("pumped cycle is all-selected", true, props.AllSelected(pumped)),
		row("pumped ids locally unique", true, spliceID.IsLocallyUnique(pumped, 1)),
	)
	res, err = simulate.Run(v, pumped, spliceID, spliceCerts, simulate.Options{})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows,
		row("verifier fooled on the no-instance", true, res.Accepted()),
	)
	return r, nil
}

func lcm(a, b int) int {
	g := a
	h := b
	for h != 0 {
		g, h = h, g%h
	}
	return a / g * b
}

// Figure2Separations bundles the two ground-level separation experiments,
// run concurrently on the package default engine (parallel across all
// CPUs); Figure2SeparationsOpt selects the engine.
func Figure2Separations() *Report {
	return Figure2SeparationsOpt(search.Default())
}

// Figure2SeparationsOpt is Figure2Separations under explicit search
// options: the two propositions are independent tasks, and Proposition
// 24's machine runs fan out through a nested Map of their own. Each Map
// spawns its own goroutines, so a parallel engine briefly runs up to
// pool()+1 tasks — a deliberate trade: these are a handful of
// coarse-grained runs, and GOMAXPROCS still bounds the running threads.
// The report is assembled in the fixed sequential order regardless of
// the engine.
func Figure2SeparationsOpt(o search.Options) *Report {
	out := &Report{ID: "Figure 2", Title: "hierarchy separations at ground level"}
	type result struct {
		r   *Report
		err error
	}
	results := search.Map(o, 2, func(i int) result {
		if i == 0 {
			r, err := Proposition24Opt(9, []*simulate.Machine{
				arbiters.Eulerian(),
				arbiters.AllEqual(),
				edgeGatherer(1),
				edgeGatherer(3),
				edgeGatherer(10), // even "full diameter" gathering is fooled
			}, o)
			return result{r: r, err: err}
		}
		r, err := Proposition26(24, 4, 3)
		return result{r: r, err: err}
	})
	for i, name := range []string{"Prop 24", "Prop 26"} {
		if results[i].err != nil {
			out.Rows = append(out.Rows, row(name, "no error", results[i].err))
		} else {
			out.Rows = append(out.Rows, results[i].r.Rows...)
		}
	}
	return out
}
