package experiments

import (
	"strings"
	"testing"
)

// TestAllExperiments asserts that every figure/example experiment in the
// repository's index reproduces the paper's claims.
func TestAllExperiments(t *testing.T) {
	t.Parallel()
	for _, rep := range All() {
		rep := rep
		t.Run(rep.ID, func(t *testing.T) {
			if !rep.OK() {
				t.Fatalf("experiment failed:\n%s", rep)
			}
		})
	}
}

func TestReportString(t *testing.T) {
	t.Parallel()
	r := &Report{ID: "X", Title: "demo"}
	r.Rows = append(r.Rows, row("a", 1, 1), row("b", true, false))
	s := r.String()
	if !strings.Contains(s, "MISMATCH") || !strings.Contains(s, "[ok]") {
		t.Fatalf("rendering wrong:\n%s", s)
	}
	if r.OK() {
		t.Fatal("OK must be false with a mismatching row")
	}
}

func TestProposition24RejectsEvenN(t *testing.T) {
	t.Parallel()
	if _, err := Proposition24(8, nil); err == nil {
		t.Fatal("even n accepted")
	}
}

func TestProposition26ParameterValidation(t *testing.T) {
	t.Parallel()
	if _, err := Proposition26(10, 4, 3); err == nil {
		t.Fatal("n not a multiple of the period accepted")
	}
}

// TestCounterVerifierSoundOnShortCycles: on cycles shorter than the
// modulus the counter verifier is actually sound — the pumping experiment
// needs the long cycle to defeat it, mirroring the asymptotic nature of
// Proposition 26.
func TestCounterVerifierIsNontrivial(t *testing.T) {
	t.Parallel()
	rep, err := Proposition26(24, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pumping experiment failed:\n%s", rep)
	}
}
