// Package experiments regenerates every figure and worked example of the
// paper as a machine-checked experiment (see DESIGN.md for the index).
// Each experiment returns a Report whose Rows are printable and whose OK
// flag is asserted by the integration tests and summarized by cmd/figures.
package experiments

import (
	"fmt"

	"repro/internal/search"
)

// Row is one printable line of an experiment report.
type Row struct {
	Name     string
	Expected string
	Measured string
	OK       bool
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string // e.g. "Figure 1"
	Title string
	Rows  []Row
}

// OK reports whether all rows match their expectation.
func (r *Report) OK() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	out := fmt.Sprintf("== %s — %s ==\n", r.ID, r.Title)
	width := 0
	for _, row := range r.Rows {
		if len(row.Name) > width {
			width = len(row.Name)
		}
	}
	for _, row := range r.Rows {
		status := "ok"
		if !row.OK {
			status = "MISMATCH"
		}
		out += fmt.Sprintf("  %-*s  expected %-22s measured %-22s [%s]\n",
			width, row.Name, row.Expected, row.Measured, status)
	}
	return out
}

func row(name string, expected, measured any) Row {
	e := fmt.Sprintf("%v", expected)
	m := fmt.Sprintf("%v", measured)
	return Row{Name: name, Expected: e, Measured: m, OK: e == m}
}

// All runs every experiment in the repository's index order on the
// default engine — the suite fans out across the pool via the sweep
// engine (see sweep.go); AllOpt selects the engine explicitly.
func All() []*Report {
	return AllOpt(search.Default())
}
