package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/search"
)

// TestAllOptEngineParity is the sharded-sweep correctness contract: the
// whole experiment suite through the sweep engine produces row-for-row
// identical reports on the sequential engine and on a sharded pool
// (run under -race by make check).
func TestAllOptEngineParity(t *testing.T) {
	t.Parallel()
	seq := AllOpt(search.Sequential())
	par := AllOpt(search.Parallel(4))
	if len(seq) != len(par) {
		t.Fatalf("suite sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("report %d: id %q vs %q", i, seq[i].ID, par[i].ID)
		}
		if !reflect.DeepEqual(seq[i].Rows, par[i].Rows) {
			t.Errorf("%s: rows diverge between engines:\nseq:\n%s\npar:\n%s",
				seq[i].ID, seq[i], par[i])
		}
		if !seq[i].OK() {
			t.Errorf("%s failed on the sequential engine:\n%s", seq[i].ID, seq[i])
		}
	}
}

// TestSweepFailuresParity checks the counting core on a synthetic work
// list: sharded == sequential, and the tick hook fires exactly once per
// instance.
func TestSweepFailuresParity(t *testing.T) {
	t.Parallel()
	s := Sweep{Len: 1000, Check: func(i int) bool { return i%7 != 0 }}
	want := 0
	for i := 0; i < 1000; i++ {
		if i%7 == 0 {
			want++
		}
	}
	var ticks atomic.Int64
	if got := s.Failures(search.Sequential(), nil); got != want {
		t.Fatalf("sequential failures %d, want %d", got, want)
	}
	if got := s.Failures(search.Parallel(8), func() { ticks.Add(1) }); got != want {
		t.Fatalf("sharded failures %d, want %d", got, want)
	}
	if ticks.Load() != 1000 {
		t.Fatalf("ticks %d, want 1000", ticks.Load())
	}
}

// TestLabelingSpace pins the flattened enumeration against the nested
// loops it replaced: bases outer, masks inner, lexicographic.
func TestLabelingSpace(t *testing.T) {
	t.Parallel()
	bases := []*graph.Graph{graph.Path(2), graph.Cycle(3)}
	n, instance := LabelingSpace(bases)
	if n != 4+8 {
		t.Fatalf("total %d, want 12", n)
	}
	i := 0
	for _, base := range bases {
		for mask := uint(0); mask < 1<<uint(base.N()); mask++ {
			want := base.MustWithLabels(graph.BitLabels(base.N(), mask))
			got := instance(i)
			if got.N() != want.N() {
				t.Fatalf("instance %d: %d nodes, want %d", i, got.N(), want.N())
			}
			for u := 0; u < want.N(); u++ {
				if got.Label(u) != want.Label(u) {
					t.Fatalf("instance %d node %d: label %q, want %q", i, u, got.Label(u), want.Label(u))
				}
			}
			i++
		}
	}
}

// TestSweepReductionMatchesHandRolledLoop pins SweepReduction's
// semantics against the literal sequential loop it replaced, on both
// engines.
func TestSweepReductionMatchesHandRolledLoop(t *testing.T) {
	t.Parallel()
	red := reduce.AllSelectedToEulerian()
	bases := []*graph.Graph{graph.Path(3), graph.Cycle(4)}
	want := 0
	for _, base := range bases {
		for mask := uint(0); mask < 1<<uint(base.N()); mask++ {
			g := base.MustWithLabels(graph.BitLabels(base.N(), mask))
			res, err := red.Apply(g, nil)
			if err != nil || res.Validate(g) != nil || props.AllSelected(g) != props.Eulerian(res.Out) {
				want++
			}
		}
	}
	for _, o := range []search.Options{search.Sequential(), search.Parallel(4)} {
		if got := SweepReduction(red, nil, props.AllSelected, props.Eulerian, bases, o); got != want {
			t.Fatalf("workers=%d: %d mismatches, want %d", o.Workers, got, want)
		}
	}
}

// TestIndexResolvesEveryID: every spec is findable by slug and ids are
// unique.
func TestIndexResolvesEveryID(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, s := range Index() {
		if seen[s.ID] {
			t.Fatalf("duplicate spec id %q", s.ID)
		}
		seen[s.ID] = true
		got, ok := FindSpec(s.ID)
		if !ok || got.Title != s.Title {
			t.Fatalf("FindSpec(%q) = %+v, %v", s.ID, got, ok)
		}
	}
	if _, ok := FindSpec("nope"); ok {
		t.Fatal("FindSpec accepted a bogus id")
	}
}
