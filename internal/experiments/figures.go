package experiments

import (
	"fmt"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/pictures"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/sat"
	"repro/internal/search"
	"repro/internal/simulate"
	"repro/internal/structure"
)

// Figure1 reproduces Example 1 / Figure 1: the left graph is 3-colorable
// but not 3-round 3-colorable (Adam wins), the right one is both (Eve
// wins).
func Figure1() *Report { return Figure1Opt(search.Default()) }

// Figure1Opt is Figure1 with the minimax evaluations on the given
// engine.
func Figure1Opt(o search.Options) *Report {
	r := &Report{ID: "Figure 1", Title: "3-round 3-colorability game"}
	no := graph.Figure1NoInstance()
	yes := graph.Figure1YesInstance()
	r.Rows = append(r.Rows,
		row("(a) 3-colorable", true, props.ThreeColorable(no)),
		row("(a) 3-round 3-colorable", false, props.ThreeRoundThreeColorableOpt(no, o)),
		row("(b) 3-colorable", true, props.ThreeColorable(yes)),
		row("(b) 3-round 3-colorable", true, props.ThreeRoundThreeColorableOpt(yes, o)),
	)
	return r
}

// Figure3Hamiltonian reproduces Figures 3/10 (Proposition 19): the
// all-selected → hamiltonian reduction on the figure's 4-node graph and on
// exhaustive labelings of small topologies.
func Figure3Hamiltonian() *Report { return Figure3HamiltonianOpt(search.Default()) }

// Figure3HamiltonianOpt is Figure3Hamiltonian with the labeling sweep
// sharded across the engine pool.
func Figure3HamiltonianOpt(o search.Options) *Report {
	r := &Report{ID: "Figure 3", Title: "all-selected ≤lp hamiltonian (Prop. 19)"}
	red := reduce.AllSelectedToHamiltonian()
	fig := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}, nil)
	for _, tt := range []struct {
		name   string
		labels []string
	}{
		{"figure labels (u2 unselected)", []string{"1", "0", "1", "1"}},
		{"all selected", []string{"1", "1", "1", "1"}},
	} {
		g := fig.MustWithLabels(tt.labels)
		res, err := red.Apply(g, nil)
		if err != nil {
			r.Rows = append(r.Rows, row(tt.name, "no error", err))
			continue
		}
		r.Rows = append(r.Rows,
			row(tt.name+": equivalence", props.AllSelected(g), props.Hamiltonian(res.Out)),
			row(tt.name+": cluster map valid", nil, res.Validate(g)),
		)
	}
	mismatches := SweepReduction(red, nil, props.AllSelected, props.Hamiltonian,
		[]*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Star(4)}, o)
	r.Rows = append(r.Rows, row("exhaustive sweep mismatches", 0, mismatches))
	return r
}

// Figure9Eulerian reproduces Figure 9 (Proposition 18).
func Figure9Eulerian() *Report { return Figure9EulerianOpt(search.Default()) }

// Figure9EulerianOpt is Figure9Eulerian with the labeling sweep sharded
// across the engine pool.
func Figure9EulerianOpt(o search.Options) *Report {
	r := &Report{ID: "Figure 9", Title: "all-selected ≤lp eulerian (Prop. 18)"}
	red := reduce.AllSelectedToEulerian()
	g := graph.Path(3).MustWithLabels([]string{"1", "1", "0"})
	res, err := red.Apply(g, nil)
	if err != nil {
		r.Rows = append(r.Rows, row("figure instance", "no error", err))
		return r
	}
	r.Rows = append(r.Rows,
		row("figure instance eulerian", false, props.Eulerian(res.Out)),
		row("cluster map valid", nil, res.Validate(g)),
	)
	mismatches := SweepReduction(red, nil, props.AllSelected, props.Eulerian,
		[]*graph.Graph{graph.Single(""), graph.Path(4), graph.Cycle(4), graph.Complete(4)}, o)
	r.Rows = append(r.Rows, row("exhaustive sweep mismatches", 0, mismatches))
	return r
}

// Figure11CoHamiltonian reproduces Figure 11 (Proposition 20).
func Figure11CoHamiltonian() *Report { return Figure11CoHamiltonianOpt(search.Default()) }

// Figure11CoHamiltonianOpt is Figure11CoHamiltonian with the labeling
// sweep sharded across the engine pool.
func Figure11CoHamiltonianOpt(o search.Options) *Report {
	r := &Report{ID: "Figure 11", Title: "not-all-selected ≤lp hamiltonian (Prop. 20)"}
	red := reduce.NotAllSelectedToHamiltonian()
	fig := graph.Path(3).MustWithLabels([]string{"1", "1", "0"})
	res, err := red.Apply(fig, nil)
	if err != nil {
		r.Rows = append(r.Rows, row("figure instance", "no error", err))
		return r
	}
	r.Rows = append(r.Rows,
		row("figure instance hamiltonian", true, props.Hamiltonian(res.Out)),
		row("cluster map valid", nil, res.Validate(fig)),
	)
	mismatches := SweepReduction(red, nil, props.NotAllSelected, props.Hamiltonian,
		[]*graph.Graph{graph.Single(""), graph.Path(2)}, o)
	r.Rows = append(r.Rows, row("exhaustive sweep mismatches", 0, mismatches))
	return r
}

// Figure4Colorability reproduces Figures 4/12 (Theorem 23): the chain
// sat-graph → 3-sat-graph → 3-colorable on the figure's two-node Boolean
// graph plus a sweep.
func Figure4Colorability() *Report {
	r := &Report{ID: "Figure 4", Title: "sat-graph ≤lp 3-colorable (Thm. 23)"}
	chain := reduce.Compose(reduce.SatGraphTo3SatGraph(), reduce.ThreeSatGraphToThreeColorable())
	mk := func(formulas ...string) *graph.Graph {
		fs := make([]sat.Formula, len(formulas))
		for i, s := range formulas {
			fs[i] = sat.MustParse(s)
		}
		bg, err := sat.NewBooleanGraph(pathOf(len(formulas)), fs)
		if err != nil {
			panic(err)
		}
		return bg.G
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"figure instance (satisfiable)", mk("P1|~P2|~P3", "P3|P4|~P5")},
		{"conflicting shared variable", mk("P", "~P")},
	}
	for _, tt := range cases {
		id := graph.SmallLocallyUnique(tt.g, 1)
		res, err := chain.Apply(tt.g, id)
		if err != nil {
			r.Rows = append(r.Rows, row(tt.name, "no error", err))
			continue
		}
		// The gadget graphs are sizable; decide colorability through the
		// DPLL encoding rather than naive backtracking.
		r.Rows = append(r.Rows,
			row(tt.name, props.SatGraph(tt.g), props.KColorableSAT(res.Out, 3)),
		)
	}
	// An unsatisfiable node formula, run through the second stage only
	// (already 3-CNF, so no Tseytin blow-up: refuting 3-colorability of
	// the gadget graph stays cheap).
	unsat := mk("(A|B)&(~A|B)&(A|~B)&(~A|~B)", "C")
	res, err := reduce.ThreeSatGraphToThreeColorable().Apply(unsat, nil)
	if err != nil {
		r.Rows = append(r.Rows, row("unsatisfiable node", "no error", err))
		return r
	}
	r.Rows = append(r.Rows,
		row("unsatisfiable node", false, props.KColorableSAT(res.Out, 3)),
	)
	return r
}

func pathOf(n int) *graph.Graph {
	if n == 1 {
		return graph.Single("")
	}
	return graph.Path(n)
}

// Figure5Structure reproduces Figure 5 and the neighborhood cardinalities
// quoted in Section 3.
func Figure5Structure() *Report {
	r := &Report{ID: "Figure 5", Title: "structural representation $G"}
	g := graph.Figure5Graph()
	rep := structure.NewRep(g)
	bits := 0
	for u := 0; u < g.N(); u++ {
		bits += len(g.Label(u))
	}
	r.Rows = append(r.Rows,
		row("card($G) = nodes + bits", g.N()+bits, rep.Card()),
		row("card(N_0(u)) for u=1101-node", 5, rep.NeighborhoodCard(2, 0)),
		row("N_2(u) covers $G", rep.Card(), rep.NeighborhoodCard(2, 2)),
	)
	return r
}

// Figure6Pictures reproduces Figures 6/14 and the tiling systems of
// Section 9.2.
func Figure6Pictures() *Report {
	r := &Report{ID: "Figure 6", Title: "pictures, $P, and tiling systems"}
	p := pictures.MustNew(2, [][]string{
		{"00", "01", "00", "01"},
		{"10", "11", "10", "11"},
		{"00", "01", "00", "01"},
	})
	s := p.Rep()
	r.Rows = append(r.Rows, row("card($P)", 12, s.Card()))

	squares := pictures.SquaresSystem()
	okCount, total := 0, 0
	for m := 1; m <= 5; m++ {
		for n := 1; n <= 5; n++ {
			got, err := squares.Accepts(pictures.Uniform(0, m, n, ""))
			if err != nil {
				r.Rows = append(r.Rows, row("squares system", "no error", err))
				return r
			}
			total++
			if got == (m == n) {
				okCount++
			}
		}
	}
	r.Rows = append(r.Rows, row("squares system correct on 5x5 sweep", total, okCount))

	// Picture-to-graph encoding sanity.
	g := p.ToGraph()
	// A 3×4 grid has 3·3 horizontal and 2·4 vertical edges.
	r.Rows = append(r.Rows,
		row("picture graph nodes", 12, g.N()),
		row("picture graph grid edges", 3*3+2*4, g.NumEdges()),
	)
	return r
}

// Figure8TuringMachine reproduces Figure 8: the faithful three-tape
// distributed TM, cross-validated against the functional engine.
func Figure8TuringMachine() *Report { return Figure8TuringMachineOpt(search.Default()) }

// Figure8TuringMachineOpt is Figure8TuringMachine with the exhaustive
// labeling cross-check sharded across the engine pool (one TM run plus
// one engine run per instance; errors count as mismatches).
func Figure8TuringMachineOpt(o search.Options) *Report {
	r := &Report{ID: "Figure 8", Title: "distributed Turing machines"}
	tm := dtm.AllSelectedMachine()
	fn := arbiters.AllSelected()
	bases := []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Star(4)}
	cases, _ := LabelingSpace(bases)
	mismatches := labelingSweep(bases, func(g *graph.Graph) bool {
		id := graph.SmallLocallyUnique(g, 1)
		e, err := tm.Run(g, id, nil, dtm.Options{})
		if err != nil {
			return false
		}
		ok, err := simulate.Decide(fn, g, id, simulate.Options{})
		if err != nil {
			return false
		}
		return e.Accepted() == ok && e.Accepted() == props.AllSelected(g)
	}).Failures(o, nil)
	r.Rows = append(r.Rows, row(fmt.Sprintf("TM vs engine vs ground truth (%d cases)", cases), 0, mismatches))

	// The all-equal TM exercises real message passing (2 rounds).
	eq := dtm.AllEqualMachine()
	g := graph.Cycle(4).MustWithLabels([]string{"10", "10", "10", "10"})
	e, err := eq.Run(g, graph.SmallLocallyUnique(g, 1), nil, dtm.Options{})
	if err != nil {
		r.Rows = append(r.Rows, row("all-equal TM", "no error", err))
		return r
	}
	r.Rows = append(r.Rows,
		row("all-equal TM accepts equal labels", true, e.Accepted()),
		row("all-equal TM rounds", 2, e.Rounds),
	)
	return r
}

// Figure7Ladder reproduces the locality ladder of Figure 7: each property
// is placed at its level by running the corresponding arbiter/game from
// the paper on instance sweeps.
func Figure7Ladder() *Report { return Figure7LadderOpt(search.Default()) }

// Figure7LadderOpt is Figure7Ladder with every sweep expressed as a
// Sweep sharded across the engine pool. The instance is the unit of
// parallelism: each check plays its whole game on the sequential inner
// engine (the Prepared.Batch discipline), so the pool is saturated by
// instances rather than by one game's quantifier levels.
func Figure7LadderOpt(o search.Options) *Report {
	r := &Report{ID: "Figure 7", Title: "locality ladder: properties at their levels"}
	inner := search.Sequential()

	// strategyCheck plays the three-level certificate game with Eve's
	// strategies on the uniform middle domain and compares against the
	// ground-truth property.
	strategyCheck := func(arb func() *core.Arbiter, strats func() []core.Strategy,
		truth func(*graph.Graph) bool) func(*graph.Graph) bool {
		return func(g *graph.Graph) bool {
			ok, err := arb().StrategyGameValueOpt(g, graph.SmallLocallyUnique(g, 1), strats(),
				[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}}, inner)
			return err == nil && ok == truth(g)
		}
	}

	sweeps := []struct {
		name  string
		sweep Sweep
	}{
		// eulerian ∈ LP: the even-degree decider matches ground truth.
		{"eulerian ∈ LP (decider sweep)", graphSweep(
			[]*graph.Graph{graph.Cycle(4), graph.Cycle(5), graph.Path(4), graph.Complete(5), graph.Star(4)},
			func(g *graph.Graph) bool {
				ok, err := simulate.Decide(arbiters.Eulerian(), g, graph.SmallLocallyUnique(g, 1), simulate.Options{})
				return err == nil && ok == props.Eulerian(g)
			})},
		// 3-colorable ∈ Σ^lp_1: verifier + Eve's coloring strategy.
		{"3-colorable ∈ Σ^lp_1 (verifier sweep)", graphSweep(
			[]*graph.Graph{graph.Cycle(5), graph.Complete(4), graph.Grid(2, 3), graph.Star(4)},
			func(g *graph.Graph) bool {
				arb := &core.Arbiter{Machine: arbiters.ThreeColorable(), Level: core.Sigma(1), RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 2}}}
				ok, err := arb.StrategyGameValueOpt(g, graph.SmallLocallyUnique(g, 1),
					[]core.Strategy{arbiters.ColoringStrategy(3)}, []cert.Domain{{}}, inner)
				return err == nil && ok == props.ThreeColorable(g)
			})},
		// hamiltonian ∈ Σ^lp_3: the Example 9 arbiter with Eve's strategies.
		{"hamiltonian ∈ Σ^lp_3 (game sweep)", graphSweep(
			[]*graph.Graph{graph.Cycle(4), graph.Path(4), graph.Star(4), graph.Complete(4)},
			strategyCheck(games.HamiltonianArbiter,
				func() []core.Strategy {
					return []core.Strategy{games.HamiltonianStrategy(), nil, games.RootChargeStrategy()}
				}, props.Hamiltonian))},
		// not-all-selected ∈ Σ^lp_3 but ∉ Σ^lp_1 (see Figure 2 experiment).
		{"not-all-selected ∈ Σ^lp_3 (game sweep)", labelingSweep(
			[]*graph.Graph{graph.Path(3), graph.Cycle(4)},
			strategyCheck(games.NotAllSelectedArbiter,
				func() []core.Strategy {
					return []core.Strategy{games.ForestStrategy(games.IsUnselected), nil, games.ChargeStrategy(nil)}
				}, props.NotAllSelected))},
		// one-selected ∈ Σ^lp_3 via the uniqueness game.
		{"one-selected ∈ Σ^lp_3 (uniqueness game sweep)", labelingSweep(
			[]*graph.Graph{graph.Path(3), graph.Star(4)},
			strategyCheck(games.OneSelectedArbiter,
				func() []core.Strategy {
					return []core.Strategy{games.ForestStrategy(games.IsSelected), nil, games.ChargeStrategy(games.IsSelected)}
				}, props.OneSelected))},
		// acyclic ∈ Σ^lp_3 via the spanning-tree game of Section 5.2.
		{"acyclic ∈ Σ^lp_3 (tree game sweep)", graphSweep(
			[]*graph.Graph{graph.Path(4), graph.Star(4), graph.Cycle(4), graph.Complete(4)},
			strategyCheck(games.AcyclicArbiter,
				func() []core.Strategy {
					return []core.Strategy{games.AcyclicStrategy(), nil, games.RootChargeStrategy()}
				}, props.Acyclic))},
		// odd ∈ Σ^lp_3 via the modulo-two counter game of Section 5.2
		// (exact game semantics; the machine variant is tested in the
		// games package).
		{"odd ∈ Σ^lp_3 (counter game sweep)", graphSweep(
			[]*graph.Graph{graph.Path(3), graph.Path(4), graph.Cycle(5), graph.Star(4)},
			func(g *graph.Graph) bool { return games.EveWinsOdd(g) == props.Odd(g) })},
		// non-2-colorable ∈ Σ^lp_3 via the odd-cycle retracing game.
		{"non-2-colorable ∈ Σ^lp_3 (odd-cycle game sweep)", graphSweep(
			[]*graph.Graph{graph.Cycle(4), graph.Cycle(5), graph.Complete(4), graph.Grid(2, 3)},
			strategyCheck(games.NonTwoColorableArbiter,
				func() []core.Strategy {
					return []core.Strategy{games.NonTwoColorableStrategy(), nil, games.NonTwoColorChargeStrategy()}
				}, props.NonTwoColorable))},
	}
	// One rung at a time: the instances within each rung are the
	// parallel work, so the ladder as a whole stays inside o's worker
	// budget instead of multiplying it.
	for _, s := range sweeps {
		r.Rows = append(r.Rows, row(s.name, 0, s.sweep.Failures(o, nil)))
	}
	return r
}
