package experiments

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/reduce"
	"repro/internal/search"
)

// This file is the sharded sweep engine: every exhaustive instance
// sweep in the experiment suite — the reduction sweeps over single-bit
// labelings, the Figure 7 game sweeps, the Figure 8 TM cross-check —
// is expressed as a Sweep, a flat work list of independent instance
// checks scheduled across the search worker pool. The unit of
// parallelism is the instance, and it is the ONLY fan-out level: each
// check runs its game on the sequential inner engine (exactly as
// Prepared.Batch runs one job per worker) and the suite (AllOpt) runs
// its experiments in index order, so a whole suite saturates the pool
// with instances while never exceeding the worker budget. Checks are
// pure and failure counting is order-independent, which makes the
// sharded result provably equal to the sequential one (asserted
// row-for-row by TestAllOptEngineParity under -race).

// Sweep is a first-class shardable experiment sweep: Len independent
// instances, instance i passing iff Check(i) is true. Check must be
// pure and safe for concurrent invocation.
type Sweep struct {
	Len   int
	Check func(i int) bool
}

// Failures counts the failing instances, sharding the work list across
// the engine's worker pool through the search scheduler's atomic
// cursor. tick, when non-nil, is invoked once per instance from
// whichever worker ran it (it must be concurrency-safe) — the hook the
// job engine uses for progress counters.
func (s Sweep) Failures(o search.Options, tick func()) int {
	fails := search.Map(o, s.Len, func(i int) bool {
		ok := s.Check(i)
		if tick != nil {
			tick()
		}
		return !ok
	})
	n := 0
	for _, f := range fails {
		if f {
			n++
		}
	}
	return n
}

// LabelingSpace flattens every single-bit labeling of the base
// topologies into one indexable work list: instance i is the (base,
// mask) pair in lexicographic order (bases outer, masks inner), the
// enumeration order of the old sequential loops. The returned instance
// function is pure, so shards can decode their items independently.
func LabelingSpace(bases []*graph.Graph) (int, func(i int) *graph.Graph) {
	offsets := make([]int, len(bases)+1)
	for b, g := range bases {
		offsets[b+1] = offsets[b] + 1<<uint(g.N())
	}
	total := offsets[len(bases)]
	return total, func(i int) *graph.Graph {
		b := sort.SearchInts(offsets[1:], i+1)
		g := bases[b]
		return g.MustWithLabels(graph.BitLabels(g.N(), uint(i-offsets[b])))
	}
}

// labelingSweep is the Sweep over every single-bit labeling of the
// bases, checked by check.
func labelingSweep(bases []*graph.Graph, check func(*graph.Graph) bool) Sweep {
	n, instance := LabelingSpace(bases)
	return Sweep{Len: n, Check: func(i int) bool { return check(instance(i)) }}
}

// graphSweep is the Sweep over a fixed instance list.
func graphSweep(gs []*graph.Graph, check func(*graph.Graph) bool) Sweep {
	return Sweep{Len: len(gs), Check: func(i int) bool { return check(gs[i]) }}
}

// SweepReduction applies the reduction to every single-bit labeling of
// the given topologies across the engine pool and counts mismatches
// between srcProp(G) and dstProp(G'): apply failures, invalid cluster
// maps, and property disagreements all count.
func SweepReduction(red reduce.Reduction, idGen func(*graph.Graph) graph.IDAssignment,
	srcProp, dstProp func(*graph.Graph) bool, bases []*graph.Graph, o search.Options) int {
	return labelingSweep(bases, func(g *graph.Graph) bool {
		var id graph.IDAssignment
		if idGen != nil {
			id = idGen(g)
		}
		res, err := red.Apply(g, id)
		if err != nil || res.Validate(g) != nil {
			return false
		}
		return srcProp(g) == dstProp(res.Out)
	}).Failures(o, nil)
}

// Spec is one experiment of the suite: a stable slug (the name used by
// `lph sweep`, the figures/exptimer `-only` filters, and the jobs API),
// a title, and an engine-aware runner.
type Spec struct {
	ID    string
	Title string
	Run   func(o search.Options) *Report
}

// ignoreEngine adapts an experiment with no internal enumeration (pure
// transformations, DPLL-backed checks) to the Spec runner shape.
func ignoreEngine(f func() *Report) func(search.Options) *Report {
	return func(search.Options) *Report { return f() }
}

// Index lists every experiment in the repository's canonical order.
func Index() []Spec {
	return []Spec{
		{"figure1", "3-round 3-colorability game", Figure1Opt},
		{"figure2", "hierarchy separations at ground level", Figure2SeparationsOpt},
		{"figure3", "all-selected ≤lp hamiltonian (Prop. 19)", Figure3HamiltonianOpt},
		{"figure4", "sat-graph ≤lp 3-colorable (Thm. 23)", ignoreEngine(Figure4Colorability)},
		{"figure5", "structural representation $G", ignoreEngine(Figure5Structure)},
		{"figure6", "pictures, $P, and tiling systems", ignoreEngine(Figure6Pictures)},
		{"figure7", "locality ladder: properties at their levels", Figure7LadderOpt},
		{"figure8", "distributed Turing machines", Figure8TuringMachineOpt},
		{"figure9", "all-selected ≤lp eulerian (Prop. 18)", Figure9EulerianOpt},
		{"figure11", "not-all-selected ≤lp hamiltonian (Prop. 20)", Figure11CoHamiltonianOpt},
		{"examples", "worked formula examples", ignoreEngine(ExampleFormulas)},
		{"fagin", "Fagin-style cross-validation (Thm. 14)", ignoreEngine(FaginCrossValidation)},
		{"cook-levin", "Cook–Levin τ-translation (Thm. 22)", ignoreEngine(CookLevin)},
		{"lemma13", "space-time envelope (Lemma 13)", ignoreEngine(Lemma13Envelope)},
	}
}

// FindSpec resolves an experiment slug against the index.
func FindSpec(id string) (Spec, bool) {
	for _, s := range Index() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// AllOpt runs the whole experiment suite on the engine, in index
// order. Exactly one level fans out: each experiment's instance sweeps
// shard across the pool, while the experiments themselves run one
// after another — so the pool never exceeds o's worker budget (nested
// Map calls would multiply it) and the reports come back in index
// order with rows identical to the sequential run's (every sweep is a
// Sweep of pure checks).
func AllOpt(o search.Options) []*Report {
	specs := Index()
	out := make([]*Report, len(specs))
	for i, s := range specs {
		out[i] = s.Run(o)
	}
	return out
}
