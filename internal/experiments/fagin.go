package experiments

import (
	"fmt"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/simulate"
	"repro/internal/structure"
)

// ExampleFormulas checks every Section 5.2 example formula against its
// ground truth on exhaustive small instances (Examples 4–9).
func ExampleFormulas() *Report {
	r := &Report{ID: "Examples 4–9", Title: "Section 5.2 formulas vs ground truths"}

	sweep := func(name string, f logic.Formula, truth func(*graph.Graph) bool,
		bases []*graph.Graph, opts func(*structure.Rep) logic.Options) {
		mismatches := 0
		cases := 0
		for _, base := range bases {
			for mask := uint(0); mask < 1<<uint(base.N()); mask++ {
				g := base.MustWithLabels(graph.BitLabels(base.N(), mask))
				rep := structure.NewRep(g)
				o := logic.Options{}
				if opts != nil {
					o = opts(rep)
				}
				got, err := logic.Sat(rep.Structure, f, o)
				cases++
				if err != nil || got != truth(g) {
					mismatches++
				}
			}
		}
		r.Rows = append(r.Rows, row(fmt.Sprintf("%s (%d cases)", name, cases), 0, mismatches))
	}

	sweep("Example 4: all-selected ∈ LFO", logic.AllSelected(), props.AllSelected,
		[]*graph.Graph{graph.Path(3), graph.Cycle(4)}, nil)
	sweep("Example 5: 3-colorable ∈ Σ^lfo_1", logic.ThreeColorable(), props.ThreeColorable,
		[]*graph.Graph{graph.Path(3), graph.Cycle(3)}, func(rep *structure.Rep) logic.Options {
			return logic.NodeRestricted(rep, logic.ColorNames(3)...)
		})
	sweep("Example 6: not-all-selected ∈ Σ^lfo_3", logic.NotAllSelected(), props.NotAllSelected,
		[]*graph.Graph{graph.Path(2), graph.Cycle(3)}, nodeUniverses)
	sweep("Example 8: one-selected ∈ Σ^lfo_3", logic.OneSelected(), props.OneSelected,
		[]*graph.Graph{graph.Path(3)}, nodeUniverses)

	// Example 7: the Π^lfo_4 complementation schema for non-3-colorable,
	// evaluated through the exact game semantics (∀ color proposals,
	// then the ExistsBadNode forest game).
	e7 := true
	for _, tt := range []struct {
		g *graph.Graph
		k int
	}{
		{graph.Cycle(3), 2}, {graph.Cycle(4), 2}, {graph.Complete(4), 3}, {graph.Cycle(3), 3},
	} {
		want := !props.KColorable(tt.g, tt.k)
		if games.EveWinsNonKColorable(tt.g, tt.k) != want {
			e7 = false
		}
	}
	r.Rows = append(r.Rows, row("Example 7: non-k-colorable ∈ Π^lfo_4 (complement game)", true, e7))

	// Example 9: hamiltonian formula on fixed instances (labels play no
	// role, so no labeling sweep).
	hamOK := true
	for _, tt := range []struct {
		g    *graph.Graph
		want bool
	}{
		{graph.Cycle(3), true}, {graph.Path(3), false},
	} {
		rep := structure.NewRep(tt.g)
		got, err := logic.Sat(rep.Structure, logic.Hamiltonian(), nodeUniverses(rep))
		if err != nil || got != tt.want {
			hamOK = false
		}
	}
	r.Rows = append(r.Rows, row("Example 9: hamiltonian ∈ Σ^lfo_3", true, hamOK))
	return r
}

// nodeUniverses restricts second-order enumeration to the tuples the
// spanning-forest formulas actually inspect: node elements for X, Y, Z and
// self/adjacent node pairs for P — the locality restriction justified by
// Theorem 15 (certificates encode only local fragments of each relation).
func nodeUniverses(rep *structure.Rep) logic.Options {
	g := rep.Graph()
	var nodes []int
	for u := 0; u < g.N(); u++ {
		nodes = append(nodes, rep.NodeElem(u))
	}
	var pairs []logic.Pair
	for u := 0; u < g.N(); u++ {
		pairs = append(pairs, logic.Pair{A: rep.NodeElem(u), B: rep.NodeElem(u)})
		for _, v := range g.Neighbors(u) {
			pairs = append(pairs, logic.Pair{A: rep.NodeElem(u), B: rep.NodeElem(v)})
		}
	}
	return logic.Options{
		UnaryUniverse:  map[string][]int{"X": nodes, "Y": nodes, "Z": nodes},
		BinaryUniverse: map[string][]logic.Pair{"P": pairs},
		MaxEnumBits:    16,
	}
}

// FaginCrossValidation reproduces Theorems 12/14: for each property, the
// Σ^lfo_1 formula (logic side) and the NLP verifier playing the
// certificate game (machine side) agree with the exact ground truth —
// the two sides of the distributed Fagin theorem evaluated against each
// other. The single-node rows are the classical Fagin theorem (NP = Σ¹₁).
func FaginCrossValidation() *Report {
	r := &Report{ID: "Theorem 14", Title: "Fagin cross-validation: formula ≡ machine ≡ truth"}
	type prop struct {
		name    string
		k       int
		formula logic.Formula
		machine *simulate.Machine
		eve     core.Strategy
		truth   func(*graph.Graph) bool
	}
	properties := []prop{
		{"2-colorable", 2, logic.KColorable(2), arbiters.TwoColorable(), arbiters.ColoringStrategy(2), props.TwoColorable},
		{"3-colorable", 3, logic.KColorable(3), arbiters.ThreeColorable(), arbiters.ColoringStrategy(3), props.ThreeColorable},
	}
	bases := []*graph.Graph{
		graph.Path(3), graph.Cycle(3), graph.Cycle(4), graph.Cycle(5),
		graph.Star(4), graph.Complete(4),
	}
	for _, p := range properties {
		mismatches := 0
		for _, g := range bases {
			rep := structure.NewRep(g)
			opts := logic.NodeRestricted(rep, logic.ColorNames(p.k)...)
			opts.MaxEnumBits = 18
			fval, err := logic.Sat(rep.Structure, p.formula, opts)
			if err != nil {
				mismatches++
				continue
			}
			arb := &core.Arbiter{Machine: p.machine, Level: core.Sigma(1), RadiusID: 1,
				Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 2}}}
			mval, err := arb.StrategyGameValue(g, graph.SmallLocallyUnique(g, 1),
				[]core.Strategy{p.eve}, []cert.Domain{{}})
			if err != nil {
				mismatches++
				continue
			}
			truth := p.truth(g)
			if fval != truth || mval != truth {
				mismatches++
			}
		}
		r.Rows = append(r.Rows, row(p.name+" formula ≡ machine ≡ truth", 0, mismatches))
	}

	// Single-node restriction: the classical Fagin theorem — on graphs in
	// `node`, the 3-colorability formula degenerates to the trivially true
	// property, matching the machine.
	single := graph.Single("1")
	rep := structure.NewRep(single)
	fval, err := logic.Sat(rep.Structure, logic.ThreeColorable(), logic.Options{})
	if err != nil {
		r.Rows = append(r.Rows, row("single-node restriction", "no error", err))
		return r
	}
	r.Rows = append(r.Rows, row("single-node graph 3-colorable", true, fval))
	return r
}

// CookLevin reproduces Theorem 22: the τ-translation of a Σ^lfo_1-sentence
// into a Boolean graph preserves the property — the distributed
// generalization of the Cook–Levin theorem.
func CookLevin() *Report {
	r := &Report{ID: "Theorem 22", Title: "Cook–Levin: Σ^lfo_1 sentence → sat-graph"}
	bases := []*graph.Graph{
		graph.Path(2), graph.Path(3), graph.Cycle(3), graph.Cycle(4), graph.Cycle(5),
		graph.Star(4), graph.Complete(4),
	}
	for k := 2; k <= 3; k++ {
		mismatches := 0
		for _, g := range bases {
			bg, err := reduce.FormulaToBooleanGraph(g, logic.KColorable(k))
			if err != nil {
				mismatches++
				continue
			}
			if bg.Satisfiable() != props.KColorable(g, k) {
				mismatches++
			}
		}
		r.Rows = append(r.Rows, row(fmt.Sprintf("τ(%d-colorable) equisatisfiable", k), 0, mismatches))
	}
	// The produced instance feeds the verifier chain sat-graph →
	// 3-sat-graph → 3-colorable — the completeness pipeline of Section 8,
	// run end-to-end. We run it on a single-node graph, which by
	// Remark 16 is exactly the *classical* Cook–Levin + 3-colorability
	// reduction chain recovered as the paper promises. (On multi-node
	// sources the gadget graphs grow into the hundreds of nodes and
	// exceed what the plain DPLL oracle refutes/solves quickly; the
	// multi-node chain is exercised on hand-sized Boolean graphs in the
	// Figure 4 experiment instead.)
	g := graph.Single("1")
	bg, err := reduce.FormulaToBooleanGraph(g, logic.KColorable(2))
	if err != nil {
		r.Rows = append(r.Rows, row("pipeline", "no error", err))
		return r
	}
	chain := reduce.Compose(reduce.SatGraphTo3SatGraph(), reduce.ThreeSatGraphToThreeColorable())
	res, err := chain.Apply(bg.G, graph.SmallLocallyUnique(bg.G, 1))
	if err != nil {
		r.Rows = append(r.Rows, row("pipeline", "no error", err))
		return r
	}
	r.Rows = append(r.Rows,
		row("pipeline: τ(2-colorable on K1) → gadget graph 3-colorable", true, props.ThreeColorable(res.Out)),
	)
	return r
}

// Lemma13Envelope measures the communication volume of real arbiters
// across growing cycles and checks it stays within a fixed polynomial of
// the local neighborhood size card(N^{$G}_{4r}(u)) — the space-time bound
// of Lemma 13.
func Lemma13Envelope() *Report {
	r := &Report{ID: "Lemma 13", Title: "polynomial space-time envelope"}
	bound := cert.Polynomial{4, 4, 1} // p(n) = 4 + 4n + n², a generous envelope
	for _, n := range []int{5, 9, 15, 25} {
		g := graph.Cycle(n).MustWithLabels(graph.AllSelectedLabels(n))
		id := graph.SmallLocallyUnique(g, 1)
		rep := structure.NewRep(g)
		// Run the Σ^lp_3 Hamiltonian arbiter under Eve's strategy and an
		// empty challenge; record per-node received bytes.
		k1, err := games.HamiltonianStrategy()(g, id, nil)
		if err != nil {
			r.Rows = append(r.Rows, row("strategy", "no error", err))
			return r
		}
		k2 := cert.Empty(n)
		k3, err := games.RootChargeStrategy()(g, id, []cert.Assignment{k1, k2})
		if err != nil {
			r.Rows = append(r.Rows, row("strategy", "no error", err))
			return r
		}
		res, err := simulate.Run(games.HamiltonianArbiter().Machine, g, id,
			cert.NodeLists(k1, k2, k3), simulate.Options{})
		if err != nil {
			r.Rows = append(r.Rows, row("arbiter", "no error", err))
			return r
		}
		within := true
		for u := 0; u < n; u++ {
			local := rep.NeighborhoodCard(u, 4)
			if res.RecvBits[u] > bound.Eval(local) {
				within = false
			}
		}
		r.Rows = append(r.Rows, row(
			fmt.Sprintf("C%d: recv bits ≤ p(card(N_4)) with p = %v", n, bound), true, within))
	}
	return r
}
