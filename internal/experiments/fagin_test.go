package experiments

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/reduce"
)

// TestTauTranslationRandomized widens the Theorem 22 coverage: the
// τ-translation must preserve the property on every labeling of small
// graphs too (labels add labeling-bit elements to $G, exercising the
// bit-successor paths of the translation).
func TestTauTranslationWithLabels(t *testing.T) {
	t.Parallel()
	for _, base := range []*graph.Graph{graph.Path(2), graph.Cycle(3)} {
		for mask := uint(0); mask < 1<<uint(base.N()); mask++ {
			g := base.MustWithLabels(graph.BitLabels(base.N(), mask))
			bg, err := reduce.FormulaToBooleanGraph(g, logic.KColorable(2))
			if err != nil {
				t.Fatal(err)
			}
			if bg.Satisfiable() != props.KColorable(g, 2) {
				t.Fatalf("τ mismatch on %v", g)
			}
		}
	}
}

// TestTauTranslationRejectsNonSigma1 checks input validation.
func TestTauTranslationRejectsNonSigma1(t *testing.T) {
	t.Parallel()
	g := graph.Path(2)
	// A universal second-order prefix is not Σ^lfo_1.
	bad := logic.SO{Existential: false, R: "X", Arity: 1,
		F: logic.Forall{X: "x", F: logic.Truth(true)}}
	if _, err := reduce.FormulaToBooleanGraph(g, bad); err == nil {
		t.Fatal("Π-prefix accepted")
	}
	// A non-BF core must be rejected.
	bad2 := logic.SO{Existential: true, R: "X", Arity: 1,
		F: logic.Forall{X: "x", F: logic.Exists{X: "y", F: logic.Truth(true)}}}
	if _, err := reduce.FormulaToBooleanGraph(g, bad2); err == nil {
		t.Fatal("unbounded core accepted")
	}
	// Missing the ∀x core entirely.
	if _, err := reduce.FormulaToBooleanGraph(g, logic.Truth(true)); err == nil {
		t.Fatal("missing ∀x accepted")
	}
}
