package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/simulate"
)

// countingAcceptor accepts everywhere and counts Init calls, so a test
// can measure how many leaf executions an engine configuration runs:
// leaves = count / n. All-accepting keeps a universal game from
// early-exiting, making the count deterministic.
func countingAcceptor(inits *atomic.Int64) *simulate.Machine {
	return &simulate.Machine{
		Name:   "test:counting-acceptor",
		Init:   func(simulate.Input) any { inits.Add(1); return nil },
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(any) string { return "1" },
	}
}

// TestSymmetryPrunes demonstrates the pruning layer actually skipping
// work on an instance with usable symmetry: C6 with period-3
// identifiers admits exactly the rotation by 3, so of the 3^6 = 729
// outer choice vectors only the 27 rotation-fixed ones lack a partner
// and enumeration shrinks to (729+27)/2 = 378 leaves.
func TestSymmetryPrunes(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(6)
	id := graph.IDAssignment{"0", "1", "10", "0", "1", "10"}
	prep, err := simulate.Prepare(g, id)
	if err != nil {
		t.Fatal(err)
	}
	domains := []cert.Domain{cert.UniformDomain(6, 1)}
	leaves := func(eng Engine) int64 {
		var inits atomic.Int64
		arb := &Arbiter{Machine: countingAcceptor(&inits), Level: Pi(1), RadiusID: 1}
		ok, err := arb.GameValueEngine(prep, domains, eng)
		if err != nil || !ok {
			t.Fatalf("all-accepting Π1 game: (%v, %v), want (true, nil)", ok, err)
		}
		return inits.Load() / int64(g.N())
	}
	full := leaves(Engine{Opts: search.Sequential(), NoSymmetry: true})
	pruned := leaves(Engine{Opts: search.Sequential()})
	if full != 729 {
		t.Fatalf("unpruned enumeration ran %d leaves, want 3^6 = 729", full)
	}
	if pruned != 378 {
		t.Fatalf("pruned enumeration ran %d leaves, want 378 orbit representatives", pruned)
	}
}

// TestSymmetryRequiresDistinctNeighborIDs: on C4 with period-2
// identifiers both neighbors of every node carry the same id, so the
// engine's neighbor order falls back to node indices — which
// automorphisms do not preserve — and initSymmetry must refuse to
// collect anything.
func TestSymmetryRequiresDistinctNeighborIDs(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4)
	prep, err := simulate.Prepare(g, graph.IDAssignment{"0", "1", "0", "1"})
	if err != nil {
		t.Fatal(err)
	}
	arb := &Arbiter{Machine: countingAcceptor(new(atomic.Int64)), Level: Pi(1), RadiusID: 1}
	ev := newGameEval(arb, prep, []cert.Domain{cert.UniformDomain(4, 1)}, Engine{Opts: search.Sequential()}, false)
	if len(ev.auts) != 0 || len(ev.autInv) != 0 {
		t.Fatalf("ambiguous neighborhood ids still collected %d automorphisms", len(ev.auts))
	}
	// C6 with period-3 ids keeps every neighborhood unambiguous and admits
	// the rotation by 3, so the guard above — not a lack of usable
	// symmetry — is what disabled pruning on the C4 instance.
	g6 := graph.Cycle(6)
	prep2, err := simulate.Prepare(g6, graph.IDAssignment{"0", "1", "10", "0", "1", "10"})
	if err != nil {
		t.Fatal(err)
	}
	ev2 := newGameEval(arb, prep2, []cert.Domain{cert.UniformDomain(6, 1)}, Engine{Opts: search.Sequential()}, false)
	if len(ev2.auts) == 0 {
		t.Fatal("period-3 C6 collected no automorphisms")
	}
}

// TestSymmetryNeverPrunesStrategyGames: strategies observe node indices
// directly, so permuting certificates under them is unsound and the
// strategic evaluator must not collect automorphisms even on a
// fully symmetric instance.
func TestSymmetryNeverPrunesStrategyGames(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4)
	prep, err := simulate.Prepare(g, graph.GloballyUnique(g))
	if err != nil {
		t.Fatal(err)
	}
	arb := &Arbiter{Machine: countingAcceptor(new(atomic.Int64)), Level: Pi(1), RadiusID: 1}
	ev := newGameEval(arb, prep, []cert.Domain{cert.UniformDomain(4, 1)}, Engine{Opts: search.Sequential()}, true)
	if len(ev.auts) != 0 {
		t.Fatalf("strategic evaluation collected %d automorphisms, want 0", len(ev.auts))
	}
}
