package core

import "repro/internal/graph"

// Symmetry reduction of the outermost quantifier level.
//
// A permutation π of the node indices is value-preserving for a game
// evaluation when it preserves everything the arbiter machines and the
// quantifier structure can observe: adjacency, labels, identifiers, and
// the per-node option count of every quantifier domain. For such a π,
// replacing every move κ_j by κ_j∘π⁻¹ maps executions to executions —
// message exchange is ordered by neighbor identifiers, which π
// preserves, so node π(u) in the permuted run behaves exactly as node u
// in the original — and therefore maps the subgame below any first move
// κ to the subgame below κ∘π⁻¹ with the same value. The outermost level
// may then restrict enumeration to one representative per orbit.
//
// The identifier-ordering step needs the neighbor order to be determined
// by identifiers alone: when two neighbors of some node share an id the
// engine's tie-break is by node index, which π does not preserve, so
// initSymmetry collects no automorphisms in that case. (rid-locally
// unique identifier assignments with rid >= 1 always satisfy the
// distinctness requirement.) DESIGN.md, "Game-engine optimization",
// spells out the full soundness argument, including why a truncated
// automorphism set — Automorphisms bounds both count and search steps —
// stays sound: skipping is a strict lexicographic descent within an
// orbit, so every skip chain ends at a vector that is evaluated.

// symAutLimit bounds how many automorphisms one evaluation collects.
// Pruning cost is |auts|·n per outer-level choice, so a small set keeps
// the check cheap; a subset of the group only makes the orbit partition
// coarser, never wrong.
const symAutLimit = 16

// initSymmetry collects the value-preserving automorphisms for the
// prepared (graph, id) under the compiled domains. No-op (no pruning)
// when identifiers are ambiguous within some neighborhood or the graph
// has no usable symmetry.
func (ev *gameEval) initSymmetry() {
	g, id := ev.prep.Graph(), ev.prep.ID()
	for u := 0; u < g.N(); u++ {
		nb := g.Neighbors(u)
		for x := 0; x < len(nb); x++ {
			for y := x + 1; y < len(nb); y++ {
				if id[nb[x]] == id[nb[y]] {
					return // index tie-break in neighbor order: unsound
				}
			}
		}
	}
	fix := func(u, v int) bool {
		if id[u] != id[v] {
			return false
		}
		for _, e := range ev.enums {
			// Strategy slots compile to empty enums with no per-node
			// bounds to preserve.
			if e.Len() == 0 {
				continue
			}
			if e.NumOptions(u) != e.NumOptions(v) {
				return false
			}
		}
		return true
	}
	ev.auts = graph.Automorphisms(g, fix, symAutLimit)
	ev.autInv = make([][]int, len(ev.auts))
	for k, phi := range ev.auts {
		inv := make([]int, len(phi))
		for x, y := range phi {
			inv[y] = x
		}
		ev.autInv[k] = inv
	}
}

// symSkip reports whether the outer-level choice vector has a strictly
// lexicographically smaller image under some collected automorphism —
// if so, the subgame value is duplicated at that smaller vector and
// this one may be skipped. The lex-minimal vector of each reachable
// chain is never skipped, so every orbit keeps a representative even
// when the collected set is not the full group.
func (ev *gameEval) symSkip(choices []int) bool {
	for _, inv := range ev.autInv {
		// The image vector is c′[v] = choices[π⁻¹(v)]; compare it to
		// choices lexicographically without materializing it.
		for v, c := range choices {
			ci := choices[inv[v]]
			if ci < c {
				return true
			}
			if ci > c {
				break
			}
		}
	}
	return false
}
