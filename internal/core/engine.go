package core

import "repro/internal/search"

// Engine configures one game evaluation: the search options of the
// worker pool plus the optimization layers added on top of it. The zero
// value of every knob selects the optimized default, so
// Engine{Opts: o} reproduces GameValuePrepared's behavior; Reference()
// turns every layer off and is the equivalence baseline the core parity
// and property tests compare against.
//
// Quantifier values are independent of visitation order and every layer
// below is value-preserving (see DESIGN.md, "Game-engine optimization"),
// so all Engine configurations compute the same game value; they differ
// only in how much of the game tree they actually visit.
type Engine struct {
	// Opts selects the search engine (worker pool, split depth, context).
	// Opts.Ctx is the evaluation's cancellation port: every enumeration
	// loop of the engine polls it, including the memo/bitset paths.
	Opts search.Options

	// Memo, when non-nil, memoizes subgame values at quantifier levels
	// 1..memoMaxLevel under single-flight semantics, keyed by graph
	// content, identifiers, machine name, level, domain shape, Salt, and
	// move prefix. Machines with an empty Name are never memoized (the
	// name stands in for the machine's semantics in the key; see Memo).
	Memo *Memo

	// Salt is mixed into every memo key. Callers memoizing
	// strategy-guided games must set it to something that identifies the
	// strategies (they are opaque closures, invisible to the key);
	// strategy games with an empty Salt are not memoized at all.
	Salt string

	// NoSymmetry disables automorphism-based pruning of the outermost
	// quantifier level. (Strategy-guided games never use the pruning:
	// strategies observe node indices, which breaks the equivariance the
	// soundness argument needs.)
	NoSymmetry bool

	// NoBitset disables the packed mixed-radix enumeration of the
	// innermost quantifier level.
	NoBitset bool

	// NoPool disables pooled leaf execution (simulate.RunAccepted) and
	// runs every leaf through the allocating simulate.Prepared.Run path.
	NoPool bool
}

// Reference returns the unoptimized engine: single-threaded search, no
// memo, no symmetry pruning, no packed enumeration, no buffer pooling.
// It is the trusted baseline every optimization layer is
// equivalence-tested against — in the ProCoS sense, the specification
// the optimized engine must provably refine.
func Reference() Engine {
	return Engine{
		Opts:       search.Sequential(),
		NoSymmetry: true,
		NoBitset:   true,
		NoPool:     true,
	}
}
