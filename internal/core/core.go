// Package core implements the paper's primary contribution: the locally
// polynomial hierarchy {Σ^lp_ℓ, Π^lp_ℓ} of Section 4. A graph property L
// belongs to Σ^lp_ℓ when some locally polynomial machine M (the arbiter)
// satisfies, for every graph G and rid-locally unique identifier
// assignment id,
//
//	G ∈ L  ⇔  ∃κ1 ∀κ2 … Qκℓ : M(G, id, κ1·…·κℓ) ≡ accept,
//
// with all quantifiers ranging over (r,p)-bounded certificate assignments.
// Π^lp_ℓ starts with a universal quantifier instead.
//
// The package provides:
//
//   - Arbiter: a machine together with its level, identifier radius and
//     certificate bound;
//   - exhaustive game evaluation over finite certificate domains (for the
//     small instances used in tests and experiments);
//   - strategy-guided evaluation, where Eve's moves are produced by the
//     constructive strategies from the paper's proofs;
//   - machine combinators (Product, WithPrecondition) used to realize the
//     constructions in the proof of Lemma 11 (restrictive arbiters).
package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/simulate"
)

// Class names for the lowest hierarchy levels, for display purposes.
const (
	ClassLP     = "LP"     // Σ^lp_0 = Π^lp_0
	ClassNLP    = "NLP"    // Σ^lp_1
	ClassCoLP   = "coLP"   // complement of LP
	ClassCoNLP  = "coNLP"  // complement of NLP
	ClassPi1Lp  = "Π^lp_1" // first universal level
	ClassSig3Lp = "Σ^lp_3"
)

// Level identifies a class of the locally polynomial hierarchy.
type Level struct {
	// Alternations is ℓ, the number of certificate assignments.
	Alternations int
	// FirstExistential selects Σ^lp_ℓ (true, Eve moves first) or Π^lp_ℓ
	// (false, Adam moves first). Irrelevant when Alternations == 0.
	FirstExistential bool
}

// Sigma returns the level Σ^lp_ℓ.
func Sigma(l int) Level { return Level{Alternations: l, FirstExistential: true} }

// Pi returns the level Π^lp_ℓ.
func Pi(l int) Level { return Level{Alternations: l, FirstExistential: false} }

// String renders the level, e.g. "Σ^lp_3".
func (l Level) String() string {
	if l.Alternations == 0 {
		return "LP"
	}
	if l.FirstExistential {
		return fmt.Sprintf("Σ^lp_%d", l.Alternations)
	}
	return fmt.Sprintf("Π^lp_%d", l.Alternations)
}

// ExistentialAt reports whether the i-th certificate assignment (1-based)
// is chosen by Eve (existentially quantified).
func (l Level) ExistentialAt(i int) bool {
	if l.FirstExistential {
		return i%2 == 1
	}
	return i%2 == 0
}

// Arbiter bundles a locally polynomial machine with the parameters under
// which it arbitrates a property: the level, the identifier radius rid,
// and the (r,p) certificate bound.
type Arbiter struct {
	Machine  *simulate.Machine
	Level    Level
	RadiusID int
	Bound    cert.Bound
}

// Run executes the arbiter's machine under the given certificate
// assignments and reports unanimous acceptance.
func (a *Arbiter) Run(g *graph.Graph, id graph.IDAssignment, assigns ...cert.Assignment) (bool, error) {
	res, err := simulate.Run(a.Machine, g, id, cert.NodeLists(assigns...), simulate.Options{})
	if err != nil {
		return false, err
	}
	return res.Accepted(), nil
}

// GameValue evaluates the alternating certificate game exhaustively over
// the given per-move domains (len(domains) must equal the level's number of
// alternations). It reports whether the first player to move — Eve for Σ
// levels, Adam for Π levels — achieves her/his objective: the game value is
// true iff
//
//	Q1 κ1 Q2 κ2 … : M(G, id, κ1·…·κℓ) ≡ accept
//
// with Q1 Q2 … the level's quantifier prefix.
func (a *Arbiter) GameValue(g *graph.Graph, id graph.IDAssignment, domains []cert.Domain) (bool, error) {
	if len(domains) != a.Level.Alternations {
		return false, fmt.Errorf("core: %d domains for level %v", len(domains), a.Level)
	}
	chosen := make([]cert.Assignment, 0, len(domains))
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i > len(domains) {
			return a.Run(g, id, chosen...)
		}
		existential := a.Level.ExistentialAt(i)
		// Existential: succeed if some choice works. Universal: fail if
		// some choice fails.
		found := existential // value if enumeration exhausts: ¬∃ => false, ∀ => true
		var innerErr error
		complete := domains[i-1].ForEach(func(k cert.Assignment) bool {
			cp := append(cert.Assignment(nil), k...)
			chosen = append(chosen, cp)
			v, err := rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			if err != nil {
				innerErr = err
				return false
			}
			if existential && v {
				found = true
				return false // short-circuit ∃
			}
			if !existential && !v {
				found = false
				return false // short-circuit ∀
			}
			return true
		})
		if innerErr != nil {
			return false, innerErr
		}
		if complete {
			// Enumeration exhausted: ∃ failed, or ∀ succeeded.
			return !existential, nil
		}
		return found, nil
	}
	return rec(1)
}

// Strategy produces a certificate assignment for a player given the
// opponent's previous moves (moves[0] = κ1, …). Eve's constructive
// strategies from the paper's proofs (spanning trees, charges, colorings)
// implement this type.
type Strategy func(g *graph.Graph, id graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error)

// StrategyGameValue evaluates the game with Eve's moves produced by
// strategies and Adam's moves enumerated exhaustively over domains.
// strategies[i] and domains[i] correspond to move i+1 and exactly one of
// them must be non-nil, matching the level's quantifier at that position
// (strategies for existential moves, domains for universal moves).
//
// The result true means Eve's strategies defeat every Adam play — which
// witnesses membership, since a winning strategy is in particular a
// witness for each ∃. The converse (false ⇒ non-membership) holds only
// when the strategies are optimal, as the paper's constructions are.
func (a *Arbiter) StrategyGameValue(g *graph.Graph, id graph.IDAssignment, strategies []Strategy, domains []cert.Domain) (bool, error) {
	l := a.Level.Alternations
	if len(strategies) != l || len(domains) != l {
		return false, fmt.Errorf("core: need %d strategy/domain slots", l)
	}
	chosen := make([]cert.Assignment, 0, l)
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i > l {
			return a.Run(g, id, chosen...)
		}
		if a.Level.ExistentialAt(i) {
			if strategies[i-1] == nil {
				return false, fmt.Errorf("core: move %d is existential but has no strategy", i)
			}
			k, err := strategies[i-1](g, id, append([]cert.Assignment(nil), chosen...))
			if err != nil {
				return false, err
			}
			chosen = append(chosen, k)
			v, err := rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			return v, err
		}
		if domains[i-1].MaxLen == nil {
			return false, fmt.Errorf("core: move %d is universal but has no domain", i)
		}
		ok := true
		var innerErr error
		domains[i-1].ForEach(func(k cert.Assignment) bool {
			cp := append(cert.Assignment(nil), k...)
			chosen = append(chosen, cp)
			v, err := rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			if err != nil {
				innerErr = err
				return false
			}
			if !v {
				ok = false
				return false
			}
			return true
		})
		if innerErr != nil {
			return false, innerErr
		}
		return ok, nil
	}
	return rec(1)
}

// encodeTuple/decodeTuple pack several machine messages into one (used by
// the Product combinator). JSON keeps the encoding unambiguous; the formal
// model would expand the alphabet encoding, which is immaterial here.
func encodeTuple(parts []string) string {
	b, err := json.Marshal(parts)
	if err != nil {
		// Unreachable: strings always marshal.
		panic(err)
	}
	return string(b)
}

func decodeTuple(s string, n int) []string {
	out := make([]string, n)
	if s == "" {
		return out
	}
	var parts []string
	if err := json.Unmarshal([]byte(s), &parts); err != nil {
		return out
	}
	copy(out, parts)
	return out
}

type productState struct {
	states []any
	halted []bool
	degree int
}

// Product runs several machines in lockstep on the same graph: each round,
// every component machine performs its round, and the component messages
// are packed into tuple messages. The product halts at a node when all
// components have halted there. combine merges the component outputs into
// the product's output; the default conjoins verdicts ("1" iff all "1").
func Product(name string, combine func(outputs []string) string, machines ...*simulate.Machine) *simulate.Machine {
	if combine == nil {
		combine = func(outputs []string) string {
			for _, o := range outputs {
				if o != "1" {
					return "0"
				}
			}
			return "1"
		}
	}
	return &simulate.Machine{
		Name: name,
		Init: func(in simulate.Input) any {
			ps := &productState{
				states: make([]any, len(machines)),
				halted: make([]bool, len(machines)),
				degree: in.Degree,
			}
			for i, m := range machines {
				ps.states[i] = m.Init(in)
			}
			return ps
		},
		Round: func(st any, round int, recv []string) ([]string, bool) {
			ps := st.(*productState)
			// Unpack tuple messages per component.
			perComp := make([][]string, len(machines))
			for i := range machines {
				perComp[i] = make([]string, len(recv))
			}
			for j, msg := range recv {
				parts := decodeTuple(msg, len(machines))
				for i := range machines {
					perComp[i][j] = parts[i]
				}
			}
			sends := make([][]string, len(machines))
			allHalt := true
			for i, m := range machines {
				if ps.halted[i] {
					sends[i] = make([]string, ps.degree)
					continue
				}
				out, halt := m.Round(ps.states[i], round, perComp[i])
				send := make([]string, ps.degree)
				copy(send, out)
				sends[i] = send
				ps.halted[i] = halt
				if !halt {
					allHalt = false
				}
			}
			// Pack tuples per neighbor.
			out := make([]string, ps.degree)
			for j := 0; j < ps.degree; j++ {
				parts := make([]string, len(machines))
				for i := range machines {
					parts[i] = sends[i][j]
				}
				out[j] = encodeTuple(parts)
			}
			return out, allHalt
		},
		Output: func(st any) string {
			ps := st.(*productState)
			outs := make([]string, len(machines))
			for i, m := range machines {
				outs[i] = m.Output(ps.states[i])
			}
			return combine(outs)
		},
	}
}

// WithPrecondition implements the first step of the Lemma 11 conversion:
// given a machine main operating on graphs of an LP-property K and an
// LP-decider kDecider for K, it returns a machine on arbitrary graphs that
// accepts iff both accept — so the combined machine accepts exactly
// L ∩ K when main arbitrates L on K.
func WithPrecondition(main, kDecider *simulate.Machine) *simulate.Machine {
	return Product(main.Name+"|pre:"+kDecider.Name, nil, main, kDecider)
}
