// Package core implements the paper's primary contribution: the locally
// polynomial hierarchy {Σ^lp_ℓ, Π^lp_ℓ} of Section 4. A graph property L
// belongs to Σ^lp_ℓ when some locally polynomial machine M (the arbiter)
// satisfies, for every graph G and rid-locally unique identifier
// assignment id,
//
//	G ∈ L  ⇔  ∃κ1 ∀κ2 … Qκℓ : M(G, id, κ1·…·κℓ) ≡ accept,
//
// with all quantifiers ranging over (r,p)-bounded certificate assignments.
// Π^lp_ℓ starts with a universal quantifier instead.
//
// The package provides:
//
//   - Arbiter: a machine together with its level, identifier radius and
//     certificate bound;
//   - exhaustive game evaluation over finite certificate domains (for the
//     small instances used in tests and experiments);
//   - strategy-guided evaluation, where Eve's moves are produced by the
//     constructive strategies from the paper's proofs;
//   - machine combinators (Product, WithPrecondition) used to realize the
//     constructions in the proof of Lemma 11 (restrictive arbiters).
package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/simulate"
)

// Class names for the lowest hierarchy levels, for display purposes.
const (
	ClassLP     = "LP"     // Σ^lp_0 = Π^lp_0
	ClassNLP    = "NLP"    // Σ^lp_1
	ClassCoLP   = "coLP"   // complement of LP
	ClassCoNLP  = "coNLP"  // complement of NLP
	ClassPi1Lp  = "Π^lp_1" // first universal level
	ClassSig3Lp = "Σ^lp_3"
)

// Level identifies a class of the locally polynomial hierarchy.
type Level struct {
	// Alternations is ℓ, the number of certificate assignments.
	Alternations int
	// FirstExistential selects Σ^lp_ℓ (true, Eve moves first) or Π^lp_ℓ
	// (false, Adam moves first). Irrelevant when Alternations == 0.
	FirstExistential bool
}

// Sigma returns the level Σ^lp_ℓ.
func Sigma(l int) Level { return Level{Alternations: l, FirstExistential: true} }

// Pi returns the level Π^lp_ℓ.
func Pi(l int) Level { return Level{Alternations: l, FirstExistential: false} }

// String renders the level, e.g. "Σ^lp_3".
func (l Level) String() string {
	if l.Alternations == 0 {
		return "LP"
	}
	if l.FirstExistential {
		return fmt.Sprintf("Σ^lp_%d", l.Alternations)
	}
	return fmt.Sprintf("Π^lp_%d", l.Alternations)
}

// ExistentialAt reports whether the i-th certificate assignment (1-based)
// is chosen by Eve (existentially quantified).
func (l Level) ExistentialAt(i int) bool {
	if l.FirstExistential {
		return i%2 == 1
	}
	return i%2 == 0
}

// Arbiter bundles a locally polynomial machine with the parameters under
// which it arbitrates a property: the level, the identifier radius rid,
// and the (r,p) certificate bound.
type Arbiter struct {
	Machine  *simulate.Machine
	Level    Level
	RadiusID int
	Bound    cert.Bound
}

// Run executes the arbiter's machine under the given certificate
// assignments and reports unanimous acceptance.
func (a *Arbiter) Run(g *graph.Graph, id graph.IDAssignment, assigns ...cert.Assignment) (bool, error) {
	res, err := simulate.Run(a.Machine, g, id, cert.NodeLists(assigns...), simulate.Options{})
	if err != nil {
		return false, err
	}
	return res.Accepted(), nil
}

// GameValue evaluates the alternating certificate game exhaustively over
// the given per-move domains (len(domains) must equal the level's number of
// alternations). It reports whether the first player to move — Eve for Σ
// levels, Adam for Π levels — achieves her/his objective: the game value is
// true iff
//
//	Q1 κ1 Q2 κ2 … : M(G, id, κ1·…·κℓ) ≡ accept
//
// with Q1 Q2 … the level's quantifier prefix.
//
// GameValue runs on the package default search engine (parallel across
// all CPUs); GameValueOpt selects the engine.
func (a *Arbiter) GameValue(g *graph.Graph, id graph.IDAssignment, domains []cert.Domain) (bool, error) {
	return a.GameValueOpt(g, id, domains, search.Default())
}

// GameValueOpt is GameValue under explicit search options: the outermost
// quantifier level whose space the engine considers worth splitting is
// handed to the worker pool (short-circuit Exists for Eve, ForAll for
// Adam), levels below it are enumerated sequentially within each worker,
// and every game leaf runs against a single simulate.Prepared instance
// so the per-(graph, id) setup is paid once for the whole game tree.
// Quantifier values are independent of visitation order, so
// GameValueOpt(…, Sequential()) and any parallel pool compute the same
// value — the core parity tests assert this under the race detector.
func (a *Arbiter) GameValueOpt(g *graph.Graph, id graph.IDAssignment, domains []cert.Domain, o search.Options) (bool, error) {
	prep, err := simulate.Prepare(g, id)
	if err != nil {
		return false, err
	}
	return a.GameValuePrepared(prep, domains, o)
}

// GameValuePrepared is GameValueOpt against an already-prepared
// simulation instance, so callers that evaluate many games on the same
// (graph, id) — notably the service layer's Prepared cache — skip the
// per-instance setup entirely. It runs the optimized engine without a
// memo table; GameValueEngine exposes the full configuration.
func (a *Arbiter) GameValuePrepared(prep *simulate.Prepared, domains []cert.Domain, o search.Options) (bool, error) {
	return a.GameValueEngine(prep, domains, Engine{Opts: o})
}

// GameValueEngine is the fully configurable evaluation entry point: the
// engine selects the worker pool, the memo table, and the optimization
// layers (see Engine). Every configuration computes the same game value.
func (a *Arbiter) GameValueEngine(prep *simulate.Prepared, domains []cert.Domain, e Engine) (bool, error) {
	if len(domains) != a.Level.Alternations {
		return false, fmt.Errorf("core: %d domains for level %v", len(domains), a.Level)
	}
	ev := newGameEval(a, prep, domains, e, false)
	if len(domains) == 0 {
		return ev.leaf(nil)
	}
	chosen := make([]cert.Assignment, len(ev.enums))
	//lint:coarse allocation pass bounded by the level's alternation depth
	for i, en := range ev.enums {
		chosen[i] = make(cert.Assignment, en.Len())
	}
	return ev.eval(chosen, 1, e, true)
}

// gameEval carries the state shared by every worker of one game
// evaluation: the prepared simulation instance, the compiled per-level
// domains, the optimization-layer state derived from the Engine (memo
// seed, collected automorphisms, packed innermost enumerator, pooled
// leaf buffers), and the first error raised by any leaf.
type gameEval struct {
	a     *Arbiter
	prep  *simulate.Prepared
	enums []*cert.Enum

	// seed is the memo key fingerprint ("" when memoization is off or
	// the machine is unnamed; see evalSeed).
	seed string
	// auts/autInv are the collected value-preserving automorphisms and
	// their inverses (nil when symmetry pruning is off; see sym.go).
	auts   [][]int
	autInv [][]int
	// packed enumerates the innermost quantifier domain as a mixed-radix
	// word (nil when the domain does not fit or bitsets are off).
	packed *cert.Packed
	// leafPool holds pooled per-worker leaf buffers (nil in reference
	// mode, which then runs leaves through simulate.Prepared.Run).
	leafPool *search.Scratch[*leafScratch]

	errOnce sync.Once
	err     error
}

// leafScratch is one worker's leaf-execution buffer set: the per-node
// certificate lists (lists[u] aliases flat) and the simulate scratch.
type leafScratch struct {
	lists [][]string
	flat  []string
	sim   *simulate.Scratch
}

// newGameEval compiles the domains and derives the optimization-layer
// state the engine enables. strategic marks a strategy-guided game,
// which never uses symmetry pruning: a Strategy observes node indices
// through the graph, so its replies need not be equivariant under the
// automorphisms, and orbit pruning of Adam's moves would be unsound.
func newGameEval(a *Arbiter, prep *simulate.Prepared, domains []cert.Domain, eng Engine, strategic bool) *gameEval {
	ev := &gameEval{a: a, prep: prep, enums: make([]*cert.Enum, len(domains))}
	//lint:coarse domain compilation bounded by the level's alternation depth
	for i, d := range domains {
		ev.enums[i] = d.Enum()
	}
	if l := len(ev.enums); l > 0 {
		if last := ev.enums[l-1]; !eng.NoBitset && last.Len() > 0 {
			ev.packed, _ = last.Pack()
		}
		if !eng.NoSymmetry && !strategic {
			ev.initSymmetry()
		}
		if eng.Memo != nil {
			ev.seed = evalSeed(a, prep, ev.enums, eng.Salt)
		}
	}
	if !eng.NoPool {
		n := prep.Graph().N()
		l := len(ev.enums)
		ev.leafPool = search.NewScratch(func() *leafScratch {
			ls := &leafScratch{
				lists: make([][]string, n),
				flat:  make([]string, n*l),
				sim:   prep.NewScratch(),
			}
			for u := 0; u < n; u++ {
				ls.lists[u] = ls.flat[u*l : (u+1)*l : (u+1)*l]
			}
			return ls
		})
	}
	return ev
}

func (ev *gameEval) fail(err error) {
	ev.errOnce.Do(func() { ev.err = err })
}

// leaf executes the arbiter's machine on fully chosen certificates. The
// game levels are the unit of parallelism, so each leaf runs its nodes
// sequentially (identical results either way; see simulate). With the
// pool enabled the run goes through simulate.Prepared.RunAccepted on
// checked-out buffers; reference mode pays the allocating Run path.
func (ev *gameEval) leaf(chosen []cert.Assignment) (bool, error) {
	if ev.leafPool == nil {
		res, err := ev.prep.Run(ev.a.Machine, cert.NodeLists(chosen...), simulate.Options{Sequential: true})
		if err != nil {
			return false, err
		}
		return res.Accepted(), nil
	}
	ls, release := ev.leafPool.Get()
	defer release()
	var lists [][]string
	if len(chosen) > 0 {
		lists = ls.lists
		for u := range lists {
			row := lists[u]
			for j, a := range chosen {
				row[j] = a[u]
			}
		}
	}
	return ev.prep.RunAccepted(ev.a.Machine, lists, 0, ls.sim)
}

// eval evaluates quantifier levels i..ℓ; chosen holds one assignment
// buffer per level, with chosen[0..i-2] the moves already decoded above.
// Subgames at the outer levels are served from the memo table when one
// is configured — the whole-game entry (i == 1, empty prefix) is the
// warm-path hit that makes repeated evaluations of the same game a
// single table lookup. par marks that no enclosing level has been fanned
// out yet (see evalLevel).
func (ev *gameEval) eval(chosen []cert.Assignment, i int, e Engine, par bool) (bool, error) {
	if i > len(ev.enums) {
		return ev.leaf(chosen)
	}
	if ev.seed != "" && i <= memoMaxLevel {
		return e.Memo.Do(e.Opts.Ctx, subkey(ev.seed, i, chosen[:i-1]), func() (bool, error) {
			return ev.evalLevel(chosen, i, e, par)
		})
	}
	return ev.evalLevel(chosen, i, e, par)
}

// evalLevel enumerates quantifier level i. par marks that no enclosing
// level has been fanned out yet, so the first level the engine considers
// splittable claims the worker pool (levels with tiny spaces pass the
// pool down to the bigger levels beneath them); everything below a
// fan-out runs sequentially within its worker. At the outermost level
// choices that are not the lexicographic minimum of their automorphism
// orbit are skipped (value-preserving; see sym.go), and the innermost
// level runs on the packed mixed-radix enumerator when the domain fits
// a word.
func (ev *gameEval) evalLevel(chosen []cert.Assignment, i int, e Engine, par bool) (bool, error) {
	existential := ev.a.Level.ExistentialAt(i)
	enum := ev.enums[i-1]
	space := enum.Space()
	sym := i == 1 && len(ev.autInv) > 0
	if par && search.Splittable(e.Opts, space) {
		// Fan this level out across the pool. chosen[0..i-2] are shared
		// read-only (the enclosing sequential enumerators only decode
		// again after the pool drains); each worker gets pooled buffers
		// for this level and the ones below it.
		prefix := chosen[:i-1]
		scratch := search.NewScratch(func() []cert.Assignment {
			suffix := make([]cert.Assignment, len(ev.enums)-(i-1))
			//lint:coarse allocation pass bounded by the level's alternation depth
			for j := range suffix {
				suffix[j] = make(cert.Assignment, ev.enums[i-1+j].Len())
			}
			return suffix
		})
		pred := func(choices []int) bool {
			if sym && ev.symSkip(choices) {
				// A pruned choice must not decide the quantifier: it
				// neither witnesses the ∃ nor refutes the ∀.
				return !existential
			}
			suffix, release := scratch.Get()
			defer release()
			child := make([]cert.Assignment, 0, len(ev.enums))
			child = append(append(child, prefix...), suffix...)
			enum.Decode(choices, child[i-1])
			v, err := ev.eval(child, i+1, e, false)
			if err != nil {
				ev.fail(err)
				// Short-circuit the enclosing quantifier so the pool
				// drains: a witness for ∃, a counterexample for ∀.
				return existential
			}
			return v
		}
		var val bool
		var err error
		if existential {
			val, err = search.Exists(e.Opts, space, pred)
		} else {
			val, err = search.ForAll(e.Opts, space, pred)
		}
		if ev.err != nil {
			return false, ev.err
		}
		if err != nil {
			return false, err
		}
		return val, nil
	}
	if i == len(ev.enums) && ev.packed != nil && !sym {
		return ev.evalPackedLeaves(chosen, i, e, existential)
	}
	// Existential: succeed if some choice works. Universal: fail if
	// some choice fails.
	found := existential // value if enumeration exhausts: ¬∃ => false, ∀ => true
	var innerErr error
	complete := search.ForEach(space, func(choices []int) bool {
		// Mirror the ctx polling of the parallel branch so cancellation
		// reaches sequential evaluations too.
		if e.Opts.Ctx != nil {
			if innerErr = e.Opts.Ctx.Err(); innerErr != nil {
				return false
			}
		}
		if sym && ev.symSkip(choices) {
			return true
		}
		enum.Decode(choices, chosen[i-1])
		v, err := ev.eval(chosen, i+1, e, par)
		if err != nil {
			innerErr = err
			return false
		}
		if existential && v {
			found = true
			return false // short-circuit ∃
		}
		if !existential && !v {
			found = false
			return false // short-circuit ∀
		}
		return true
	})
	if innerErr != nil {
		return false, innerErr
	}
	if complete {
		// Enumeration exhausted: ∃ failed, or ∀ succeeded.
		return !existential, nil
	}
	return found, nil
}

// evalPackedLeaves enumerates the innermost quantifier level with the
// packed mixed-radix counter: every step rewrites only the certificate
// strings touched by the carry and goes straight to a leaf run, which is
// where a game evaluation spends almost all of its time.
func (ev *gameEval) evalPackedLeaves(chosen []cert.Assignment, i int, e Engine, existential bool) (bool, error) {
	var innerErr error
	complete := ev.packed.ForEach(chosen[i-1], func(cert.Assignment) bool {
		// One cancellation poll per leaf, matching the unpacked walk (a
		// leaf is a full machine run, so the atomic load is noise).
		if e.Opts.Ctx != nil {
			if innerErr = e.Opts.Ctx.Err(); innerErr != nil {
				return false
			}
		}
		v, err := ev.leaf(chosen)
		if err != nil {
			innerErr = err
			return false
		}
		// Continue while the quantifier is undecided: ∃ until a witness,
		// ∀ until a counterexample.
		return v != existential
	})
	if innerErr != nil {
		return false, innerErr
	}
	if complete {
		return !existential, nil
	}
	return existential, nil
}

// Strategy produces a certificate assignment for a player given the
// opponent's previous moves (moves[0] = κ1, …). Eve's constructive
// strategies from the paper's proofs (spanning trees, charges, colorings)
// implement this type.
//
// Implementations must be pure functions of their arguments: under a
// parallel engine a strategy below Adam's fanned-out universal level is
// invoked concurrently from several workers, and the moves entries may
// alias pooled buffers that are overwritten once the call returns — so a
// strategy must not share mutable state across calls and must not retain
// moves or its entries.
type Strategy func(g *graph.Graph, id graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error)

// StrategyGameValue evaluates the game with Eve's moves produced by
// strategies and Adam's moves enumerated exhaustively over domains.
// strategies[i] and domains[i] correspond to move i+1 and exactly one of
// them must be non-nil, matching the level's quantifier at that position
// (strategies for existential moves, domains for universal moves).
//
// The result true means Eve's strategies defeat every Adam play — which
// witnesses membership, since a winning strategy is in particular a
// witness for each ∃. The converse (false ⇒ non-membership) holds only
// when the strategies are optimal, as the paper's constructions are.
//
// StrategyGameValue runs on the package default search engine (parallel
// across all CPUs); StrategyGameValueOpt selects the engine.
func (a *Arbiter) StrategyGameValue(g *graph.Graph, id graph.IDAssignment, strategies []Strategy, domains []cert.Domain) (bool, error) {
	return a.StrategyGameValueOpt(g, id, strategies, domains, search.Default())
}

// StrategyGameValueOpt is StrategyGameValue under explicit search
// options. Eve's strategy moves are deterministic, so the game tree only
// branches at Adam's universal levels: the outermost universal level
// whose domain the engine considers worth splitting is handed to the
// worker pool (short-circuit ForAll), everything below it runs
// sequentially within each worker, and all leaves share one
// simulate.Prepared instance.
func (a *Arbiter) StrategyGameValueOpt(g *graph.Graph, id graph.IDAssignment, strategies []Strategy, domains []cert.Domain, o search.Options) (bool, error) {
	prep, err := simulate.Prepare(g, id)
	if err != nil {
		return false, err
	}
	return a.StrategyGameValuePrepared(prep, strategies, domains, o)
}

// StrategyGameValuePrepared is StrategyGameValueOpt against an
// already-prepared simulation instance (the graph and identifier
// assignment are taken from it), so repeated verifications of the same
// graph — the service layer's cache hit path — pay the per-(graph, id)
// setup only once.
func (a *Arbiter) StrategyGameValuePrepared(prep *simulate.Prepared, strategies []Strategy, domains []cert.Domain, o search.Options) (bool, error) {
	return a.StrategyGameValueEngine(prep, strategies, domains, Engine{Opts: o})
}

// StrategyGameValueEngine is StrategyGameValuePrepared under a full
// engine configuration. Strategy-guided games are memoized only as a
// whole (quantifier-prefix subgames depend on the opaque strategy
// closures) and only when the engine carries a non-empty Salt naming
// the strategies; they never use symmetry pruning (see newGameEval).
func (a *Arbiter) StrategyGameValueEngine(prep *simulate.Prepared, strategies []Strategy, domains []cert.Domain, e Engine) (bool, error) {
	l := a.Level.Alternations
	if len(strategies) != l || len(domains) != l {
		return false, fmt.Errorf("core: need %d strategy/domain slots", l)
	}
	ev := newGameEval(a, prep, domains, e, true)
	run := func() (bool, error) {
		return ev.strategyRec(prep.Graph(), prep.ID(), strategies, make([]cert.Assignment, 0, l), 1, e, true)
	}
	if ev.seed != "" && e.Salt != "" {
		// Level index 0 is reserved for whole strategy games, so the key
		// can never collide with an exhaustive subgame key (i >= 1) of
		// the same seed.
		return e.Memo.Do(e.Opts.Ctx, subkey(ev.seed, 0, nil), run)
	}
	return run()
}

// strategyRec evaluates move i of the strategy-guided game with the
// prefix chosen already played. par marks that no enclosing universal
// level has been fanned out yet, so this one may claim the pool.
func (ev *gameEval) strategyRec(g *graph.Graph, id graph.IDAssignment, strategies []Strategy, chosen []cert.Assignment, i int, e Engine, par bool) (bool, error) {
	l := len(ev.enums)
	if i > l {
		return ev.leaf(chosen)
	}
	if ev.a.Level.ExistentialAt(i) {
		if strategies[i-1] == nil {
			return false, fmt.Errorf("core: move %d is existential but has no strategy", i)
		}
		k, err := strategies[i-1](g, id, append([]cert.Assignment(nil), chosen...))
		if err != nil {
			return false, err
		}
		return ev.strategyRec(g, id, strategies, append(chosen, k), i+1, e, par)
	}
	if ev.enums[i-1].Len() == 0 {
		return false, fmt.Errorf("core: move %d is universal but has no domain", i)
	}
	enum := ev.enums[i-1]
	space := enum.Space()
	if par && search.Splittable(e.Opts, space) {
		// Fan this universal level out across the pool. Workers below it
		// run sequentially, each on its own copy of the move prefix.
		prefix := append([]cert.Assignment(nil), chosen...)
		scratch := search.NewScratch(func() cert.Assignment {
			return make(cert.Assignment, enum.Len())
		})
		ok, err := search.ForAll(e.Opts, space, func(choices []int) bool {
			buf, release := scratch.Get()
			defer release()
			enum.Decode(choices, buf)
			child := make([]cert.Assignment, 0, l)
			child = append(append(child, prefix...), buf)
			v, err := ev.strategyRec(g, id, strategies, child, i+1, e, false)
			if err != nil {
				ev.fail(err)
				return false // a counterexample stops the ForAll
			}
			return v
		})
		if ev.err != nil {
			return false, ev.err
		}
		if err != nil {
			return false, err
		}
		return ok, nil
	}
	if i == l && ev.packed != nil {
		// Innermost universal level: packed enumeration straight to the
		// leaves, rewriting only the carry-touched certificate strings.
		buf := make(cert.Assignment, enum.Len())
		var innerErr error
		complete := ev.packed.ForEach(buf, func(cert.Assignment) bool {
			if e.Opts.Ctx != nil {
				if innerErr = e.Opts.Ctx.Err(); innerErr != nil {
					return false
				}
			}
			v, err := ev.strategyRec(g, id, strategies, append(chosen, buf), i+1, e, par)
			if err != nil {
				innerErr = err
				return false
			}
			return v // a counterexample stops the walk
		})
		if innerErr != nil {
			return false, innerErr
		}
		return complete, nil
	}
	buf := make(cert.Assignment, enum.Len())
	ok := true
	var innerErr error
	search.ForEach(space, func(choices []int) bool {
		// The parallel fan-out polls the engine ctx inside search.ForAll;
		// this sequential walk must poll it too so a canceled request
		// aborts regardless of the engine (leaves are machine runs, so
		// one check per iteration is cheap).
		if e.Opts.Ctx != nil {
			if innerErr = e.Opts.Ctx.Err(); innerErr != nil {
				return false
			}
		}
		enum.Decode(choices, buf)
		v, err := ev.strategyRec(g, id, strategies, append(chosen, buf), i+1, e, par)
		if err != nil {
			innerErr = err
			return false
		}
		if !v {
			ok = false
			return false
		}
		return true
	})
	if innerErr != nil {
		return false, innerErr
	}
	return ok, nil
}

// encodeTuple/decodeTuple pack several machine messages into one (used by
// the Product combinator). JSON keeps the encoding unambiguous; the formal
// model would expand the alphabet encoding, which is immaterial here.
func encodeTuple(parts []string) string {
	b, err := json.Marshal(parts)
	if err != nil {
		// Unreachable: strings always marshal.
		panic(err)
	}
	return string(b)
}

func decodeTuple(s string, n int) []string {
	out := make([]string, n)
	if s == "" {
		return out
	}
	var parts []string
	if err := json.Unmarshal([]byte(s), &parts); err != nil {
		return out
	}
	copy(out, parts)
	return out
}

type productState struct {
	states []any
	halted []bool
	degree int
}

// Product runs several machines in lockstep on the same graph: each round,
// every component machine performs its round, and the component messages
// are packed into tuple messages. The product halts at a node when all
// components have halted there. combine merges the component outputs into
// the product's output; the default conjoins verdicts ("1" iff all "1").
func Product(name string, combine func(outputs []string) string, machines ...*simulate.Machine) *simulate.Machine {
	if combine == nil {
		combine = func(outputs []string) string {
			for _, o := range outputs {
				if o != "1" {
					return "0"
				}
			}
			return "1"
		}
	}
	return &simulate.Machine{
		Name: name,
		Init: func(in simulate.Input) any {
			ps := &productState{
				states: make([]any, len(machines)),
				halted: make([]bool, len(machines)),
				degree: in.Degree,
			}
			for i, m := range machines {
				ps.states[i] = m.Init(in)
			}
			return ps
		},
		Round: func(st any, round int, recv []string) ([]string, bool) {
			ps := st.(*productState)
			// Unpack tuple messages per component.
			perComp := make([][]string, len(machines))
			for i := range machines {
				perComp[i] = make([]string, len(recv))
			}
			for j, msg := range recv {
				parts := decodeTuple(msg, len(machines))
				for i := range machines {
					perComp[i][j] = parts[i]
				}
			}
			sends := make([][]string, len(machines))
			allHalt := true
			for i, m := range machines {
				if ps.halted[i] {
					sends[i] = make([]string, ps.degree)
					continue
				}
				out, halt := m.Round(ps.states[i], round, perComp[i])
				send := make([]string, ps.degree)
				copy(send, out)
				sends[i] = send
				ps.halted[i] = halt
				if !halt {
					allHalt = false
				}
			}
			// Pack tuples per neighbor.
			out := make([]string, ps.degree)
			for j := 0; j < ps.degree; j++ {
				parts := make([]string, len(machines))
				for i := range machines {
					parts[i] = sends[i][j]
				}
				out[j] = encodeTuple(parts)
			}
			return out, allHalt
		},
		Output: func(st any) string {
			ps := st.(*productState)
			outs := make([]string, len(machines))
			for i, m := range machines {
				outs[i] = m.Output(ps.states[i])
			}
			return combine(outs)
		},
	}
}

// WithPrecondition implements the first step of the Lemma 11 conversion:
// given a machine main operating on graphs of an LP-property K and an
// LP-decider kDecider for K, it returns a machine on arbitrary graphs that
// accepts iff both accept — so the combined machine accepts exactly
// L ∩ K when main arbitrates L on K.
func WithPrecondition(main, kDecider *simulate.Machine) *simulate.Machine {
	return Product(main.Name+"|pre:"+kDecider.Name, nil, main, kDecider)
}
