package core

import (
	"strings"

	"repro/internal/simulate"
)

// This file implements the machine construction in the proof of Lemma 11:
// converting a *restrictive* arbiter — one that assumes each certificate
// assignment κ_i passes a certificate-restrictor machine M_i — into a
// *permissive* arbiter that quantifies over unrestricted certificates.
//
// The permissive machine simulates the restrictors and the main arbiter in
// lockstep, records a flag ok_i per restrictor, propagates flag violations
// to neighbors every round, and finally walks through the flags in move
// order: the first violated restriction decides the verdict by the
// polarity of the corresponding quantifier (reject for Eve's moves, accept
// for Adam's), and only if all restrictions hold does the main arbiter's
// verdict count.
//
// Soundness of the early-accept on Adam's moves relies on the restrictors
// being *locally repairable* (Section 6): a violation can always be fixed
// at the violating node without changing other verdicts, so a node unaware
// of a violation reaches a verdict it would also reach against some valid
// certificate. Local repairability is a semantic property of the
// restrictor; it is the caller's obligation, as in the paper.

// Restrictor pairs a certificate-restrictor machine with the index
// (1-based) of the certificate move it constrains.
type Restrictor struct {
	Machine *simulate.Machine
	Move    int
}

type relState struct {
	comps     []any // restrictor states..., then main state
	halted    []bool
	flags     []bool // flags[i]: restrictor i's check still believed OK
	degree    int
	level     Level
	moves     []int
	haltRound int // round in which all components had halted (0 = not yet)
}

// Relativize builds the permissive machine M_c of Lemma 11 from the main
// arbiter machine and its certificate restrictors. extraRounds adds flag
// propagation rounds after all component machines halt (the paper's
// construction propagates for the main machine's full round count; most
// machines in this repository run 1–3 rounds, so small values suffice).
func Relativize(main *simulate.Machine, level Level, restrictors []Restrictor, extraRounds int) *simulate.Machine {
	comps := make([]*simulate.Machine, 0, len(restrictors)+1)
	moves := make([]int, 0, len(restrictors))
	for _, r := range restrictors {
		comps = append(comps, r.Machine)
		moves = append(moves, r.Move)
	}
	comps = append(comps, main)
	name := main.Name + "|relativized"
	return &simulate.Machine{
		Name: name,
		Init: func(in simulate.Input) any {
			st := &relState{
				comps:  make([]any, len(comps)),
				halted: make([]bool, len(comps)),
				flags:  make([]bool, len(restrictors)),
				degree: in.Degree,
				level:  level,
				moves:  moves,
			}
			for i, m := range comps {
				st.comps[i] = m.Init(in)
			}
			for i := range st.flags {
				st.flags[i] = true
			}
			return st
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			st := sv.(*relState)
			// Unpack: component messages + flag vector.
			perComp := make([][]string, len(comps))
			for i := range comps {
				perComp[i] = make([]string, len(recv))
			}
			for j, msg := range recv {
				if msg == "" {
					continue
				}
				parts := decodeTuple(msg, len(comps)+1)
				for i := range comps {
					perComp[i][j] = parts[i]
				}
				// Merge neighbor flags: any '0' taints ours.
				nf := parts[len(comps)]
				for i := 0; i < len(st.flags) && i < len(nf); i++ {
					if nf[i] == '0' {
						st.flags[i] = false
					}
				}
			}
			sends := make([][]string, len(comps))
			allHalt := true
			for i, m := range comps {
				send := make([]string, st.degree)
				if !st.halted[i] {
					out, halt := m.Round(st.comps[i], round, perComp[i])
					copy(send, out)
					st.halted[i] = halt
					if halt && i < len(st.flags) && m.Output(st.comps[i]) != "1" {
						st.flags[i] = false
					}
					if !halt {
						allHalt = false
					}
				}
				sends[i] = send
			}
			// Halt only when all components have halted and flags were
			// propagated for extraRounds additional rounds.
			halt := false
			if allHalt {
				if st.haltRound == 0 {
					st.haltRound = round
				}
				if round >= st.haltRound+extraRounds {
					halt = true
				}
			}
			// Pack tuple: components + flag string.
			var fb strings.Builder
			for _, f := range st.flags {
				if f {
					fb.WriteByte('1')
				} else {
					fb.WriteByte('0')
				}
			}
			out := make([]string, st.degree)
			for j := 0; j < st.degree; j++ {
				parts := make([]string, len(comps)+1)
				for i := range comps {
					parts[i] = sends[i][j]
				}
				parts[len(comps)] = fb.String()
				out[j] = encodeTuple(parts)
			}
			return out, halt
		},
		Output: func(sv any) string {
			st := sv.(*relState)
			// Walk the flags in move order; the first violation decides.
			for idx := 0; idx < len(st.flags); idx++ {
				if st.flags[idx] {
					continue
				}
				if st.level.ExistentialAt(st.moves[idx]) {
					return "0" // Eve played an invalid certificate: reject
				}
				return "1" // Adam played an invalid certificate: accept
			}
			return comps[len(comps)-1].Output(st.comps[len(st.comps)-1])
		},
	}
}
