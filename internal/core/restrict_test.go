package core

import (
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/simulate"
)

// oneBitRestrictor accepts at a node iff its move-th certificate is a
// single bit. It is locally repairable: a violating certificate can be
// replaced by "0" without affecting other nodes.
func oneBitRestrictor(move int) Restrictor {
	type st struct{ ok bool }
	return Restrictor{
		Move: move,
		Machine: &simulate.Machine{
			Name: "restrict:one-bit",
			Init: func(in simulate.Input) any {
				ok := len(in.Certs) >= move && len(in.Certs[move-1]) == 1
				return &st{ok: ok}
			},
			Round:  func(any, int, []string) ([]string, bool) { return nil, true },
			Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
		},
	}
}

// matchMachine accepts at a node iff κ1(u) equals the node's label,
// assuming the restrictor guarantees κ1 is one bit.
func matchMachine() *simulate.Machine {
	type st struct{ ok bool }
	return &simulate.Machine{
		Name: "main:match",
		Init: func(in simulate.Input) any {
			ok := len(in.Certs) >= 1 && in.Certs[0] == in.Label
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
}

// TestRelativizeExistentialViolation: a violating Eve certificate makes
// the relativized machine reject (verdict 0 at the aware nodes), so the
// Σ^lp_1 game over unrestricted certificates equals the restricted game.
func TestRelativizeExistentialViolation(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"0", "1"})
	id := graph.GloballyUnique(g)
	mc := Relativize(matchMachine(), Sigma(1), []Restrictor{oneBitRestrictor(1)}, 1)

	// Valid certificates: main verdict decides.
	res, err := simulate.Run(mc, g, id, cert.NodeLists(cert.Assignment{"0", "1"}), simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatal("valid matching certificates should be accepted")
	}
	res, err = simulate.Run(mc, g, id, cert.NodeLists(cert.Assignment{"1", "1"}), simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("valid but mismatching certificates should be rejected")
	}
	// Invalid certificate (too long) on an otherwise-accepting play:
	// the violation is Eve's, so the machine must reject.
	res, err = simulate.Run(mc, g, id, cert.NodeLists(cert.Assignment{"00", "1"}), simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("Eve's invalid certificate must be rejected")
	}
}

// TestRelativizeUniversalViolation: at level Π^lp_1 the certificate is
// Adam's; his invalid certificates must be *accepted* so that they cannot
// help him win the universal quantification.
func TestRelativizeUniversalViolation(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"0", "1"})
	id := graph.GloballyUnique(g)
	mc := Relativize(matchMachine(), Pi(1), []Restrictor{oneBitRestrictor(1)}, 1)

	res, err := simulate.Run(mc, g, id, cert.NodeLists(cert.Assignment{"00", "1"}), simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatal("Adam's invalid certificate must be neutralized by acceptance")
	}
}

// TestRelativizedGameEqualsRestrictedGame: quantifying the relativized
// machine over a loose domain gives the same game value as quantifying
// the raw machine over the restricted domain — the statement of Lemma 11
// at our instance sizes.
func TestRelativizedGameEqualsRestrictedGame(t *testing.T) {
	t.Parallel()
	for mask := uint(0); mask < 4; mask++ {
		g := graph.Path(2).MustWithLabels(graph.BitLabels(2, mask))
		id := graph.GloballyUnique(g)
		loose := []cert.Domain{cert.UniformDomain(2, 2)}  // includes invalid lengths
		strict := []cert.Domain{cert.UniformDomain(2, 1)} // still includes "", rejected by main

		mc := Relativize(matchMachine(), Sigma(1), []Restrictor{oneBitRestrictor(1)}, 1)
		arbLoose := &Arbiter{Machine: mc, Level: Sigma(1), RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
		got, err := arbLoose.GameValue(g, id, loose)
		if err != nil {
			t.Fatal(err)
		}
		arbStrict := &Arbiter{Machine: matchMachine(), Level: Sigma(1), RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
		want, err := arbStrict.GameValue(g, id, strict)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("mask %b: relativized game = %v, restricted game = %v", mask, got, want)
		}
	}
}

// TestRelativizeFlagPropagation: a violation at one node must reach its
// neighbors' verdicts within the propagation rounds.
func TestRelativizeFlagPropagation(t *testing.T) {
	t.Parallel()
	g := graph.Path(3).MustWithLabels([]string{"1", "1", "1"})
	id := graph.GloballyUnique(g)
	mc := Relativize(matchMachine(), Sigma(1), []Restrictor{oneBitRestrictor(1)}, 2)
	// Node 2 plays an invalid certificate; all nodes play matching bits
	// otherwise. With propagation, nodes 1 (and 0 after 2 rounds) learn
	// about the violation; the graph is rejected.
	res, err := simulate.Run(mc, g, id, cert.NodeLists(cert.Assignment{"1", "1", "11"}), simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("violation must reject the graph")
	}
	// The violating node itself must reject (it is Eve's move).
	if res.Outputs[2] != "0" {
		t.Fatalf("node 2 verdict %q, want 0", res.Outputs[2])
	}
	// And its neighbor learned of it.
	if res.Outputs[1] != "0" {
		t.Fatalf("node 1 verdict %q, want 0 after propagation", res.Outputs[1])
	}
}
