package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/simulate"
)

// recordingMatcher accepts at a node iff its inner certificate equals
// its outer certificate, and records every (node, outer, inner) triple
// it is ever shown. The record is the detector: the engine's pooled
// per-worker buffers (the search.NewScratch suffix rows in evalLevel
// and the leafScratch certificate lists) are reused across choices, so
// a stale assignment-prefix byte surviving a reuse would surface here
// as a triple the lexicographic enumeration never generates — or as a
// missing one.
func recordingMatcher(rec *sync.Map, inits *atomic.Int64) *simulate.Machine {
	return &simulate.Machine{
		Name: "test:recording-matcher",
		Init: func(in simulate.Input) any {
			inits.Add(1)
			rec.Store(in.ID+"|"+in.Certs[0]+"|"+in.Certs[1], true)
			return in.Certs[1] == in.Certs[0]
		},
		Round: func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(state any) string {
			if state.(bool) {
				return "1"
			}
			return "0"
		},
	}
}

// TestPooledLeafPrefixIsolation is the -race regression test for the
// pooled leaf buffers: a Π2 (∀κ1 ∃κ2) game whose inner search succeeds
// only at κ2 = κ1 forces the outer universal level to fan out across
// workers while every worker's inner level walks a deterministic
// lexicographic prefix of the domain. Because the outer ∀ succeeds, the
// set of leaves evaluated is scheduling-independent, so the parallel
// pooled run must observe exactly the (node, outer, inner) triples and
// exactly the leaf count of the sequential pooled run. Run under
// -race (make check does), this fails loudly if buffer reuse ever
// bleeds assignment-prefix bytes across workers or across choices.
func TestPooledLeafPrefixIsolation(t *testing.T) {
	t.Parallel()
	g := graph.Path(4)
	prep, err := simulate.Prepare(g, graph.GloballyUnique(g))
	if err != nil {
		t.Fatal(err)
	}
	domains := []cert.Domain{cert.UniformDomain(4, 1), cert.UniformDomain(4, 1)}
	run := func(eng Engine) (map[string]bool, int64) {
		var rec sync.Map
		var inits atomic.Int64
		arb := &Arbiter{Machine: recordingMatcher(&rec, &inits), Level: Pi(2), RadiusID: 1}
		ok, err := arb.GameValueEngine(prep, domains, eng)
		if err != nil || !ok {
			t.Fatalf("∀κ1 ∃κ2=κ1 game: (%v, %v), want (true, nil)", ok, err)
		}
		seen := make(map[string]bool)
		rec.Range(func(k, _ any) bool {
			seen[k.(string)] = true
			return true
		})
		return seen, inits.Load()
	}
	// NoSymmetry pins determinism explicitly (unique ids already admit no
	// automorphisms); pooling is on in both configurations — the engine
	// under test — and only the worker count differs.
	seqSeen, seqInits := run(Engine{Opts: search.Sequential(), NoSymmetry: true})
	parSeen, parInits := run(Engine{Opts: search.Parallel(4), NoSymmetry: true})
	if parInits != seqInits {
		t.Errorf("parallel pooled run executed %d node inits, sequential %d", parInits, seqInits)
	}
	if len(parSeen) != len(seqSeen) {
		t.Errorf("parallel observed %d distinct (node, outer, inner) triples, sequential %d", len(parSeen), len(seqSeen))
	}
	for k := range seqSeen {
		if !parSeen[k] {
			t.Errorf("triple %q seen sequentially but not in the parallel pooled run", k)
		}
	}
	for k := range parSeen {
		if !seqSeen[k] {
			t.Errorf("triple %q fabricated by the parallel pooled run", k)
		}
	}
}
