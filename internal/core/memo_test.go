package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/simulate"
)

func TestMemoSingleFlight(t *testing.T) {
	t.Parallel()
	m := NewMemo(0)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do(context.Background(), "k", func() (bool, error) {
				calls.Add(1)
				<-gate // hold the flight open until all goroutines arrived
				return true, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	// Wait until the flight is claimed, then let everyone pile up on it.
	for m.Stats().Misses == 0 {
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("f ran %d times, want 1", got)
	}
	for i, v := range results {
		if !v {
			t.Fatalf("waiter %d got %v, want true", i, v)
		}
	}
	// Each waiter records a wait, then re-enters the loop and scores a hit
	// on the now-completed entry.
	st := m.Stats()
	if st.Misses != 1 || st.Waits != waiters-1 || st.Hits != waiters-1 {
		t.Fatalf("stats %+v: want 1 miss, %d waits, %d hits", st, waiters-1, waiters-1)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	t.Parallel()
	m := NewMemo(0)
	boom := errors.New("boom")
	if _, err := m.Do(nil, "k", func() (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := m.Do(nil, "k", func() (bool, error) { return true, nil })
	if err != nil || !v {
		t.Fatalf("retry after error: (%v, %v), want (true, nil) recomputed", v, err)
	}
	if st := m.Stats(); st.Misses != 2 || st.Size != 1 {
		t.Fatalf("stats %+v: want 2 misses (error never cached) and 1 entry", st)
	}
	// The stored success must now hit.
	if v, err := m.Do(nil, "k", func() (bool, error) { return false, nil }); err != nil || !v {
		t.Fatalf("hit returned (%v, %v), want cached true", v, err)
	}
	if st := m.Stats(); st.Hits != 1 {
		t.Fatalf("stats %+v: want 1 hit", st)
	}
}

func TestMemoEviction(t *testing.T) {
	t.Parallel()
	m := NewMemo(2)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := m.Do(nil, key, func() (bool, error) { return true, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Size > 2 {
		t.Fatalf("size %d exceeds capacity 2", st.Size)
	}
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
}

func TestMemoNilReceiver(t *testing.T) {
	t.Parallel()
	var m *Memo
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := m.Do(context.Background(), "k", func() (bool, error) { calls++; return true, nil })
		if err != nil || !v {
			t.Fatalf("nil memo Do = (%v, %v)", v, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil memo must always compute: %d calls, want 2", calls)
	}
	if st := m.Stats(); st != (MemoStats{}) {
		t.Fatalf("nil memo stats = %+v, want zero", st)
	}
}

func TestMemoWaiterHonorsContext(t *testing.T) {
	t.Parallel()
	m := NewMemo(0)
	started := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate)
	go func() {
		_, _ = m.Do(context.Background(), "k", func() (bool, error) {
			close(started)
			<-gate
			return true, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Do(ctx, "k", func() (bool, error) { return true, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
}

// engineConfigs is every optimization configuration the equivalence
// property quantifies over; all must agree with Reference().
func engineConfigs(memo *Memo) []struct {
	name string
	eng  Engine
} {
	return []struct {
		name string
		eng  Engine
	}{
		{"optimized sequential", Engine{Opts: search.Sequential()}},
		{"optimized parallel", Engine{Opts: search.Parallel(4)}},
		{"memo sequential", Engine{Opts: search.Sequential(), Memo: memo, Salt: "t"}},
		{"memo parallel", Engine{Opts: search.Parallel(4), Memo: memo, Salt: "t"}},
		{"memo no-bitset", Engine{Opts: search.Parallel(4), Memo: memo, Salt: "t", NoBitset: true}},
		{"memo no-symmetry", Engine{Opts: search.Parallel(4), Memo: memo, Salt: "t", NoSymmetry: true}},
		{"memo no-pool", Engine{Opts: search.Parallel(4), Memo: memo, Salt: "t", NoPool: true}},
	}
}

// TestMemoEnabledMatchesReference is the ProCoS equivalence property of
// the PR 8 optimization layers: for every core arbiter — Σ and Π levels
// with 1–3 alternations, including the relativized Lemma 11 machine —
// every engine configuration (memo on/off, bitset on/off, symmetry
// on/off, pool on/off, sequential/parallel) computes exactly the value
// of the unoptimized Reference() engine. Each memoized configuration
// runs twice against one shared table, so warm hits are checked to
// return the same verdict as the cold computation.
func TestMemoEnabledMatchesReference(t *testing.T) {
	t.Parallel()
	for _, tt := range coreParityCases() {
		id := graph.GloballyUnique(tt.g)
		prep, err := simulate.Prepare(tt.g, id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tt.arb.GameValueEngine(prep, tt.domains, Reference())
		if err != nil {
			t.Fatalf("%s reference: %v", tt.name, err)
		}
		memo := NewMemo(0)
		for _, cfg := range engineConfigs(memo) {
			for round := 0; round < 2; round++ {
				got, err := tt.arb.GameValueEngine(prep, tt.domains, cfg.eng)
				if err != nil {
					t.Fatalf("%s %s round %d: %v", tt.name, cfg.name, round, err)
				}
				if got != want {
					t.Errorf("%s %s round %d: got %v, reference %v", tt.name, cfg.name, round, got, want)
				}
			}
		}
		if st := memo.Stats(); st.Hits == 0 {
			t.Errorf("%s: repeated memoized evaluations recorded no hits (%+v)", tt.name, st)
		}
	}
}

// TestMemoSymmetricInstanceMatchesReference extends the equivalence
// property to instances with non-trivial value-preserving symmetry —
// C6 with period-3 identifiers admits the rotation by 3 — where the
// pruning layer actually skips work (TestSymmetryPrunes asserts that).
func TestMemoSymmetricInstanceMatchesReference(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(6).MustWithLabels([]string{"0", "1", "1", "0", "1", "1"})
	id := graph.IDAssignment{"0", "1", "10", "0", "1", "10"}
	prep, err := simulate.Prepare(g, id)
	if err != nil {
		t.Fatal(err)
	}
	one := []cert.Domain{cert.UniformDomain(6, 1)}
	two := []cert.Domain{cert.UniformDomain(6, 1), cert.UniformDomain(6, 1)}
	for _, tt := range []struct {
		name    string
		arb     *Arbiter
		domains []cert.Domain
	}{
		{"cert-equals-label Σ1", certEqualsLabel(Sigma(1)), one},
		{"cert-equals-label Π1", certEqualsLabel(Pi(1)), one},
		{"cert-parity Σ2", certParity(Sigma(2)), two},
		{"cert-parity Π2", certParity(Pi(2)), two},
	} {
		want, err := tt.arb.GameValueEngine(prep, tt.domains, Reference())
		if err != nil {
			t.Fatalf("%s reference: %v", tt.name, err)
		}
		memo := NewMemo(0)
		for _, cfg := range engineConfigs(memo) {
			got, err := tt.arb.GameValueEngine(prep, tt.domains, cfg.eng)
			if err != nil {
				t.Fatalf("%s %s: %v", tt.name, cfg.name, err)
			}
			if got != want {
				t.Errorf("%s %s: got %v, reference %v", tt.name, cfg.name, got, want)
			}
		}
	}
}

// maskGraph builds a small labeled graph from fuzz bytes: n in [2,5],
// the low bits of edges select from the n*(n-1)/2 possible edges.
func maskGraph(n uint8, edges uint16) *graph.Graph {
	nn := 2 + int(n%4)
	var es []graph.Edge
	bit := 0
	for u := 0; u < nn; u++ {
		for v := u + 1; v < nn; v++ {
			if edges&(1<<bit) != 0 {
				es = append(es, graph.Edge{U: u, V: v})
			}
			bit++
		}
	}
	g, err := graph.New(nn, es, nil)
	if err != nil {
		return nil
	}
	return g
}

// FuzzMemoKey fuzzes the memo key derivation across pairs of (graph,
// prefix choice) inputs: equal keys must imply identical graphs and
// identical decoded prefixes. A violation would let one graph's cached
// verdict answer another graph's game — the exact corruption the
// SHA-256 seed plus the separator encoding of subkey rule out.
func FuzzMemoKey(f *testing.F) {
	f.Add(uint8(1), uint16(0b011), uint8(2), uint16(0b111), uint16(0), uint16(1))
	f.Add(uint8(2), uint16(0b101), uint8(2), uint16(0b101), uint16(3), uint16(3))
	f.Fuzz(func(t *testing.T, n1 uint8, e1 uint16, n2 uint8, e2 uint16, c1, c2 uint16) {
		g1, g2 := maskGraph(n1, e1), maskGraph(n2, e2)
		if g1 == nil || g2 == nil {
			t.Skip()
		}
		key := func(g *graph.Graph, choice uint16) (string, string) {
			id := graph.SmallLocallyUnique(g, 1)
			prep, err := simulate.Prepare(g, id)
			if err != nil {
				t.Fatal(err)
			}
			arb := &Arbiter{Machine: &simulate.Machine{Name: "fuzz:memo-key"},
				Level: Sigma(2), RadiusID: 1}
			enums := []*cert.Enum{
				cert.UniformDomain(g.N(), 1).Enum(),
				cert.UniformDomain(g.N(), 1).Enum(),
			}
			seed := evalSeed(arb, prep, enums, "fuzz")
			if seed == "" {
				t.Fatal("named machine produced no seed")
			}
			// Decode the fuzzed choice into a level-1 move.
			e := enums[0]
			choices := make([]int, e.Len())
			rem := int(choice)
			for u := e.Len() - 1; u >= 0; u-- {
				choices[u] = rem % e.NumOptions(u)
				rem /= e.NumOptions(u)
			}
			move := make(cert.Assignment, e.Len())
			e.Decode(choices, move)
			return subkey(seed, 2, []cert.Assignment{move}), fmt.Sprint(move)
		}
		k1, m1 := key(g1, c1)
		k2, m2 := key(g2, c2)
		if k1 != k2 {
			return
		}
		// Equal keys: the graphs must be byte-identical and the moves equal.
		if g1.N() != g2.N() || g1.Hash() != g2.Hash() {
			t.Fatalf("cross-graph key collision: %q for n=%d/%d", k1, g1.N(), g2.N())
		}
		if m1 != m2 {
			t.Fatalf("same-graph prefix collision: %q for moves %s vs %s", k1, m1, m2)
		}
	})
}
