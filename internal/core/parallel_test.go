package core

import (
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/simulate"
)

// tripleParity accepts at a node iff all three certificates are single
// bits and κ1(u) XOR κ2(u) XOR κ3(u) equals the node's 1-bit label. Its
// exhaustive games exercise three alternations with non-trivial play at
// every level.
func tripleParity(level Level) *Arbiter {
	type st struct{ ok bool }
	m := &simulate.Machine{
		Name: "test:triple-parity",
		Init: func(in simulate.Input) any {
			ok := len(in.Certs) == 3 && len(in.Label) == 1
			for _, c := range in.Certs {
				if len(c) != 1 {
					ok = false
				}
			}
			if ok {
				// Four ASCII '0'/'1' bytes XOR'd: the 0x30 components
				// cancel, leaving the pure bit parity.
				ok = (in.Certs[0][0] ^ in.Certs[1][0] ^ in.Certs[2][0] ^ in.Label[0]) == 0
			}
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
	return &Arbiter{Machine: m, Level: level, RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
}

// coreParityCases collects every arbiter exercised by core_test.go and
// restrict_test.go — Σ and Π levels with 1–3 alternations — on instances
// whose outer space is big enough for the engine to split (3^4 = 81
// assignments clears the 64-leaf threshold).
func coreParityCases() []struct {
	name    string
	arb     *Arbiter
	g       *graph.Graph
	domains []cert.Domain
} {
	p4 := graph.Path(4).MustWithLabels([]string{"0", "1", "1", "0"})
	one := func(n int) []cert.Domain { return []cert.Domain{cert.UniformDomain(n, 1)} }
	two := func(n int) []cert.Domain {
		return []cert.Domain{cert.UniformDomain(n, 1), cert.UniformDomain(n, 1)}
	}
	three := func(n int) []cert.Domain {
		return []cert.Domain{cert.UniformDomain(n, 1), cert.UniformDomain(n, 1), cert.UniformDomain(n, 1)}
	}
	relativized := Relativize(matchMachine(), Sigma(1), []Restrictor{oneBitRestrictor(1)}, 1)
	return []struct {
		name    string
		arb     *Arbiter
		g       *graph.Graph
		domains []cert.Domain
	}{
		{"cert-equals-label Σ1", certEqualsLabel(Sigma(1)), p4, one(4)},
		{"cert-equals-label Π1", certEqualsLabel(Pi(1)), p4, one(4)},
		{"cert-parity Σ2", certParity(Sigma(2)), p4, two(4)},
		{"cert-parity Π2", certParity(Pi(2)), p4, two(4)},
		{"triple-parity Σ3", tripleParity(Sigma(3)), p4, three(4)},
		{"triple-parity Π3", tripleParity(Pi(3)), p4, three(4)},
		// The outer level offers a single assignment (below the split
		// threshold), so the pool must be claimed by the universal level
		// beneath it.
		{"triple-parity Σ3 deep split", tripleParity(Sigma(3)), p4,
			[]cert.Domain{cert.UniformDomain(4, 0), cert.UniformDomain(4, 1), cert.UniformDomain(4, 1)}},
		{"relativized match Σ1", &Arbiter{Machine: relativized, Level: Sigma(1), RadiusID: 1,
			Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}, p4,
			[]cert.Domain{cert.UniformDomain(4, 2)}},
	}
}

// TestGameValueParallelMatchesSequential asserts, for every core arbiter
// at every level, that the pooled engine computes exactly the value of
// the strictly sequential one. Running under -race additionally checks
// the game-tree fan-out for data races.
func TestGameValueParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, tt := range coreParityCases() {
		id := graph.GloballyUnique(tt.g)
		want, err := tt.arb.GameValueOpt(tt.g, id, tt.domains, search.Sequential())
		if err != nil {
			t.Fatalf("%s sequential: %v", tt.name, err)
		}
		for _, workers := range []int{0, 4} {
			got, err := tt.arb.GameValueOpt(tt.g, id, tt.domains, search.Parallel(workers))
			if err != nil {
				t.Fatalf("%s parallel(%d): %v", tt.name, workers, err)
			}
			if got != want {
				t.Errorf("%s: parallel(%d)=%v sequential=%v", tt.name, workers, got, want)
			}
		}
	}
}

// TestGameValueOptAgreesWithGroundTruth pins the expected values of the
// parity-style games so the parity test cannot silently compare two
// equally wrong engines.
func TestGameValueOptAgreesWithGroundTruth(t *testing.T) {
	t.Parallel()
	p4 := graph.Path(4).MustWithLabels([]string{"0", "1", "1", "0"})
	id := graph.GloballyUnique(p4)
	domains := []cert.Domain{cert.UniformDomain(4, 1)}
	for _, o := range []search.Options{search.Sequential(), search.Parallel(4)} {
		// Eve matches each label with a 1-bit certificate.
		ok, err := certEqualsLabel(Sigma(1)).GameValueOpt(p4, id, domains, o)
		if err != nil || !ok {
			t.Fatalf("Σ1 should hold: %v %v", ok, err)
		}
		// Adam exhibits a mismatching certificate.
		ok, err = certEqualsLabel(Pi(1)).GameValueOpt(p4, id, domains, o)
		if err != nil || ok {
			t.Fatalf("Π1 should fail: %v %v", ok, err)
		}
		// ∃κ1∀κ2∃κ3: Eve's κ3(u) = κ1(u)⊕κ2(u)⊕label(u) always exists
		// once κ1, κ2 are single bits — but Adam can play an invalid κ2
		// (e.g. the empty string), which no κ3 repairs, so Σ3 is false.
		ok, err = tripleParity(Sigma(3)).GameValueOpt(p4, id,
			[]cert.Domain{cert.UniformDomain(4, 1), cert.UniformDomain(4, 1), cert.UniformDomain(4, 1)}, o)
		if err != nil || ok {
			t.Fatalf("Σ3 triple parity should fail: %v %v", ok, err)
		}
	}
}

// TestStrategyGameValueParallelMatchesSequential covers the
// strategy-guided evaluator: Eve's moves are produced by strategies,
// Adam's universal level fans out across the pool.
func TestStrategyGameValueParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	p4 := graph.Path(4).MustWithLabels([]string{"0", "1", "1", "0"})
	id := graph.GloballyUnique(p4)

	// Π2 on the lenient parity machine: Adam opens with any κ1, Eve
	// answers κ2(u) = κ1(u)⊕label(u)⊕1 when κ1(u) is a bit and "" (an
	// invalid certificate the lenient machine forgives) otherwise, so the
	// game value is true.
	type st struct{ ok bool }
	lenient := &simulate.Machine{
		Name: "test:lenient-parity",
		Init: func(in simulate.Input) any {
			valid := len(in.Certs) == 2 && len(in.Certs[0]) == 1 && len(in.Certs[1]) == 1
			ok := !valid || (in.Certs[0][0]^in.Certs[1][0]^in.Label[0]) == '1'
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
	arb := &Arbiter{Machine: lenient, Level: Pi(2), RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
	answer := Strategy(func(g *graph.Graph, _ graph.IDAssignment, moves []cert.Assignment) (cert.Assignment, error) {
		out := make(cert.Assignment, g.N())
		for u := range out {
			k1 := moves[0][u]
			if len(k1) != 1 {
				out[u] = ""
				continue
			}
			out[u] = string([]byte{k1[0] ^ g.Label(u)[0] ^ '1'})
		}
		return out, nil
	})
	strategies := []Strategy{nil, answer}
	domains := []cert.Domain{cert.UniformDomain(4, 1), {}}

	want, err := arb.StrategyGameValueOpt(p4, id, strategies, domains, search.Sequential())
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if !want {
		t.Fatal("Eve's answering strategy should win the Π2 game")
	}
	for _, workers := range []int{0, 4} {
		got, err := arb.StrategyGameValueOpt(p4, id, strategies, domains, search.Parallel(workers))
		if err != nil {
			t.Fatalf("parallel(%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("parallel(%d)=%v sequential=%v", workers, got, want)
		}
	}
}
