package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cert"
	"repro/internal/simulate"
)

// Memo is a transposition table for certificate-game values: subgame
// results keyed by (graph, identifiers, machine, level, domains, salt,
// quantifier prefix), shared across quantifier levels of one evaluation
// and across evaluations — notably across the service layer's Prepared
// cache, where repeated decide/verify requests on the same graph
// short-circuit to a table lookup.
//
// Lookups are single-flight: when a key is being computed, later callers
// wait for that computation instead of duplicating it, honoring their own
// context while they wait. Errors are never cached — a failed flight is
// forgotten so the next caller retries. The table is bounded; once full
// it evicts a random completed entry per insertion (the standard lossy
// transposition-table policy: correctness never depends on an entry
// being present, eviction only costs a recomputation).
//
// Keys embed the machine's Name as a stand-in for its semantics, so two
// distinct machines sharing a Name on the same (graph, id, level,
// domains) would collide; the engine therefore never memoizes unnamed
// machines, and callers that memoize strategy games must disambiguate
// the strategies through Engine.Salt (see Engine). All catalog and
// benchmark machines in this repository carry unique names.
//
// A Memo is safe for concurrent use. The zero value is not usable; a
// nil *Memo is — every operation on nil reports a miss and computes
// directly, so plumbing can treat "no memo" uniformly.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	cap     int

	hits      uint64
	misses    uint64
	waits     uint64
	evictions uint64
}

// memoEntry is one table slot. done is closed when the computing flight
// finishes; ok reports that val holds a cached value (failed flights are
// removed from the table before done is closed, so waiters re-probe).
type memoEntry struct {
	done chan struct{}
	val  bool
	ok   bool
}

// DefaultMemoSize is the table capacity NewMemo uses for cap <= 0.
const DefaultMemoSize = 65536

// NewMemo returns a memo table holding at most cap entries; cap <= 0
// selects DefaultMemoSize.
func NewMemo(cap int) *Memo {
	if cap <= 0 {
		cap = DefaultMemoSize
	}
	return &Memo{entries: make(map[string]*memoEntry), cap: cap}
}

// MemoStats is a point-in-time snapshot of table occupancy and traffic,
// surfaced verbatim through the service layer's /v1/stats and /metrics.
type MemoStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Waits     uint64 `json:"singleflight_waits"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the table counters. Safe on a nil receiver (all zero).
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Capacity:  m.cap,
		Size:      len(m.entries),
		Hits:      m.hits,
		Misses:    m.misses,
		Waits:     m.waits,
		Evictions: m.evictions,
	}
}

// Do returns the memoized value for key, computing it via f on a miss.
// Concurrent callers of the same key share one flight; waiters abort
// with ctx.Err() if their context ends first (the flight itself keeps
// running for the callers that remain). A nil receiver computes
// directly. Errors from f propagate to every caller of the failed
// flight and leave the table unchanged.
func (m *Memo) Do(ctx context.Context, key string, f func() (bool, error)) (bool, error) {
	if m == nil {
		return f()
	}
	for {
		m.mu.Lock()
		if e, found := m.entries[key]; found {
			select {
			case <-e.done:
				if e.ok {
					m.hits++
					m.mu.Unlock()
					return e.val, nil
				}
				// A failed flight left a closed entry behind (it is
				// deleted before close, so this is unreachable, but a
				// stale entry must not wedge the key): fall through and
				// reclaim the slot below.
				delete(m.entries, key)
			default:
				m.waits++
				m.mu.Unlock()
				if ctx == nil {
					<-e.done
				} else {
					select {
					case <-e.done:
					case <-ctx.Done():
						return false, ctx.Err()
					}
				}
				continue // re-probe: hit on success, reclaim on failure
			}
		}
		m.misses++
		if len(m.entries) >= m.cap {
			m.evictOne()
		}
		e := &memoEntry{done: make(chan struct{})}
		m.entries[key] = e
		m.mu.Unlock()

		v, err := f()

		m.mu.Lock()
		if err != nil {
			delete(m.entries, key)
		} else {
			e.val, e.ok = v, true
		}
		m.mu.Unlock()
		close(e.done)
		return v, err
	}
}

// evictOne removes one completed entry (random map order), preferring
// never to touch in-flight computations. Called with mu held.
func (m *Memo) evictOne() {
	for k, e := range m.entries {
		select {
		case <-e.done:
			delete(m.entries, k)
			m.evictions++
			return
		default:
		}
	}
	// Every entry is in flight: allow the table to overflow transiently
	// rather than stall or drop live flights.
}

// memoMaxLevel bounds how deep into the quantifier prefix subgames are
// memoized. Outer levels repeat across evaluations (the whole-game entry
// is the warm-path hit) and across sibling branches; below level 2 the
// key-construction cost outruns the leaf work being saved, and the
// number of distinct prefixes explodes combinatorially.
const memoMaxLevel = 2

// evalSeed fingerprints everything a memo key must pin besides the
// quantifier prefix: graph content (via the collision-resistant
// graph.Hash), identifier assignment, machine name, level, the per-node
// option counts of every quantifier domain, and the caller's salt. An
// empty machine name returns "" — no fingerprint, no memoization.
func evalSeed(a *Arbiter, prep *simulate.Prepared, enums []*cert.Enum, salt string) string {
	if a.Machine == nil || a.Machine.Name == "" {
		return ""
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	writeStr(prep.Graph().Hash())
	id := prep.ID()
	writeInt(len(id))
	for _, s := range id {
		writeStr(s)
	}
	writeStr(a.Machine.Name)
	writeInt(a.Level.Alternations)
	if a.Level.FirstExistential {
		writeInt(1)
	} else {
		writeInt(0)
	}
	writeStr(salt)
	writeInt(len(enums))
	for _, e := range enums {
		writeInt(e.Len())
		for u := 0; u < e.Len(); u++ {
			writeInt(e.NumOptions(u))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// subkey derives the table key of the subgame rooted at quantifier
// level i under the given move prefix (prefix[j] is move j+1, fully
// decoded). The encoding is injective given the seed: the seed pins the
// node count and level structure, certificates are bit strings over
// {0,1}, and ',' terminates each node's string, so distinct prefixes
// render distinct keys. FuzzMemoKey exercises this cross-graph.
func subkey(seed string, i int, prefix []cert.Assignment) string {
	var b strings.Builder
	size := len(seed) + 4
	for _, a := range prefix {
		for _, s := range a {
			size += len(s) + 1
		}
		size++
	}
	b.Grow(size)
	b.WriteString(seed)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(i))
	for _, a := range prefix {
		b.WriteByte('/')
		for _, s := range a {
			b.WriteString(s)
			b.WriteByte(',')
		}
	}
	return b.String()
}
