package core

import (
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/simulate"
)

func TestLevelNames(t *testing.T) {
	t.Parallel()
	if Sigma(0).String() != "LP" || Sigma(1).String() != "Σ^lp_1" || Pi(2).String() != "Π^lp_2" {
		t.Fatal("level names wrong")
	}
}

func TestExistentialAt(t *testing.T) {
	t.Parallel()
	s3 := Sigma(3)
	if !s3.ExistentialAt(1) || s3.ExistentialAt(2) || !s3.ExistentialAt(3) {
		t.Fatal("Σ quantifier pattern wrong")
	}
	p2 := Pi(2)
	if p2.ExistentialAt(1) || !p2.ExistentialAt(2) {
		t.Fatal("Π quantifier pattern wrong")
	}
}

// certEqualsLabel accepts at a node iff its first certificate equals its
// label. Used to exercise the quantifier semantics.
func certEqualsLabel(level Level) *Arbiter {
	type st struct{ ok bool }
	m := &simulate.Machine{
		Name: "test:cert-equals-label",
		Init: func(in simulate.Input) any {
			ok := len(in.Certs) > 0 && in.Certs[0] == in.Label
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
	return &Arbiter{Machine: m, Level: level, RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
}

func TestGameValueExistential(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"0", "1"})
	id := graph.GloballyUnique(g)
	arb := certEqualsLabel(Sigma(1))
	// Eve can match each label with a 1-bit certificate.
	ok, err := arb.GameValue(g, id, []cert.Domain{cert.UniformDomain(2, 1)})
	if err != nil || !ok {
		t.Fatalf("∃ should succeed: %v %v", ok, err)
	}
	// With 0-length certificates only, Eve cannot match "0"/"1" labels.
	ok, err = arb.GameValue(g, id, []cert.Domain{cert.UniformDomain(2, 0)})
	if err != nil || ok {
		t.Fatalf("∃ over empty strings should fail: %v %v", ok, err)
	}
}

func TestGameValueUniversal(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"0", "1"})
	id := graph.GloballyUnique(g)
	arb := certEqualsLabel(Pi(1))
	// ∀κ1: the machine rejects for most certificates.
	ok, err := arb.GameValue(g, id, []cert.Domain{cert.UniformDomain(2, 1)})
	if err != nil || ok {
		t.Fatalf("∀ should fail: %v %v", ok, err)
	}
}

// certParity accepts iff κ1(u) XOR κ2(u) = label(u) bitwise on 1-bit
// strings. At level Σ2 (∃κ1∀κ2) Eve cannot win; at level Π2 (∀κ1∃κ2) Adam
// cannot prevent Eve from matching.
func certParity(level Level) *Arbiter {
	type st struct{ ok bool }
	m := &simulate.Machine{
		Name: "test:cert-parity",
		Init: func(in simulate.Input) any {
			ok := len(in.Certs) == 2 &&
				len(in.Certs[0]) == 1 && len(in.Certs[1]) == 1 && len(in.Label) == 1 &&
				(in.Certs[0][0]^in.Certs[1][0]^in.Label[0]) == '0'
			// XOR of ASCII '0'/'1' characters: equal chars give 0 = '0'^'0'.
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
	return &Arbiter{Machine: m, Level: level, RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
}

func TestGameValueAlternation(t *testing.T) {
	t.Parallel()
	g := graph.Single("1")
	id := graph.IDAssignment{""}
	domains := []cert.Domain{cert.UniformDomain(1, 1), cert.UniformDomain(1, 1)}

	// Σ2: ∃κ1∀κ2 — whatever Eve fixes, Adam can break parity.
	ok, err := certParity(Sigma(2)).GameValue(g, id, domains)
	if err != nil || ok {
		t.Fatalf("Σ2 game should be false: %v %v", ok, err)
	}
	// Π2: ∀κ1∃κ2 — Eve answers Adam's move.
	// Note κ1 may be "" (invalid), in which case the machine rejects for
	// every κ2, so the Π2 value is false as well. Restrict the domains to
	// exactly-one-bit strings... the domain always contains "". Instead
	// verify the dual machine: accept unless certificates are valid AND
	// parity fails.
	type st struct{ ok bool }
	lenient := &simulate.Machine{
		Name: "test:cert-parity-lenient",
		Init: func(in simulate.Input) any {
			valid := len(in.Certs) == 2 && len(in.Certs[0]) == 1 && len(in.Certs[1]) == 1
			ok := !valid || (in.Certs[0][0]^in.Certs[1][0]^in.Label[0]) == '0'
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
	arb := &Arbiter{Machine: lenient, Level: Pi(2), RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
	ok, err = arb.GameValue(g, id, domains)
	if err != nil || !ok {
		t.Fatalf("Π2 game should be true: %v %v", ok, err)
	}
}

func TestStrategyGameValue(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"0", "1"})
	id := graph.GloballyUnique(g)
	arb := certEqualsLabel(Sigma(1))
	copyLabels := Strategy(func(g *graph.Graph, _ graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		out := make(cert.Assignment, g.N())
		for u := range out {
			out[u] = g.Label(u)
		}
		return out, nil
	})
	ok, err := arb.StrategyGameValue(g, id, []Strategy{copyLabels}, []cert.Domain{{}})
	if err != nil || !ok {
		t.Fatalf("strategy should win: %v %v", ok, err)
	}
}

func TestProductConjoinsVerdicts(t *testing.T) {
	t.Parallel()
	accept := &simulate.Machine{
		Name:   "yes",
		Init:   func(simulate.Input) any { return nil },
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(any) string { return "1" },
	}
	rejectOn0 := &simulate.Machine{
		Name: "label-not-0",
		Init: func(in simulate.Input) any { return in.Label },
		Round: func(any, int, []string) ([]string, bool) {
			return nil, true
		},
		Output: func(s any) string {
			if s.(string) == "0" {
				return "0"
			}
			return "1"
		},
	}
	prod := Product("both", nil, accept, rejectOn0)
	g := graph.Path(2).MustWithLabels([]string{"1", "0"})
	res, err := simulate.Run(prod, g, graph.GloballyUnique(g), nil, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("product should reject when a component rejects")
	}
	if res.Outputs[0] != "1" || res.Outputs[1] != "0" {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

// TestProductMessaging: component machines exchanging messages through the
// product must behave as if run alone.
func TestProductMessaging(t *testing.T) {
	t.Parallel()
	// echoNeighborLabel: accepts iff all neighbor labels equal its own.
	mk := func() *simulate.Machine {
		type st struct {
			label string
			deg   int
			ok    bool
		}
		return &simulate.Machine{
			Name: "eq",
			Init: func(in simulate.Input) any { return &st{label: in.Label, deg: in.Degree, ok: true} },
			Round: func(sv any, round int, recv []string) ([]string, bool) {
				s := sv.(*st)
				if round == 1 {
					out := make([]string, s.deg)
					for i := range out {
						out[i] = s.label
					}
					return out, false
				}
				for _, m := range recv {
					if m != s.label {
						s.ok = false
					}
				}
				return nil, true
			},
			Output: func(sv any) string { return map[bool]string{true: "1", false: "0"}[sv.(*st).ok] },
		}
	}
	g := graph.Cycle(4).MustWithLabels([]string{"1", "1", "1", "1"})
	id := graph.GloballyUnique(g)
	solo, err := simulate.Run(mk(), g, id, nil, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := simulate.Run(Product("pair", nil, mk(), mk()), g, id, nil, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Accepted() != prod.Accepted() {
		t.Fatal("product changed component behavior")
	}
	bad := graph.Cycle(4).MustWithLabels([]string{"1", "1", "0", "1"})
	prodBad, err := simulate.Run(Product("pair", nil, mk(), mk()), bad, id, nil, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prodBad.Accepted() {
		t.Fatal("product must reject when components reject")
	}
}

func TestWithPrecondition(t *testing.T) {
	t.Parallel()
	always := &simulate.Machine{
		Name:   "always",
		Init:   func(simulate.Input) any { return nil },
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(any) string { return "1" },
	}
	evenDegree := &simulate.Machine{
		Name: "even-degree",
		Init: func(in simulate.Input) any { return in.Degree%2 == 0 },
		Round: func(any, int, []string) ([]string, bool) {
			return nil, true
		},
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(bool)] },
	}
	combined := WithPrecondition(always, evenDegree)
	cyc := graph.Cycle(4)
	path := graph.Path(3)
	okCyc, err := simulate.Decide(combined, cyc, graph.GloballyUnique(cyc), simulate.Options{})
	if err != nil || !okCyc {
		t.Fatalf("cycle should pass precondition: %v %v", okCyc, err)
	}
	okPath, err := simulate.Decide(combined, path, graph.GloballyUnique(path), simulate.Options{})
	if err != nil || okPath {
		t.Fatalf("path should fail precondition: %v %v", okPath, err)
	}
}

func TestTupleCodec(t *testing.T) {
	t.Parallel()
	parts := []string{"", "0,1", `quote"ms`}
	dec := decodeTuple(encodeTuple(parts), 3)
	for i := range parts {
		if dec[i] != parts[i] {
			t.Fatalf("tuple roundtrip: %v vs %v", dec, parts)
		}
	}
	empty := decodeTuple("", 2)
	if empty[0] != "" || empty[1] != "" {
		t.Fatal("empty tuple should decode to empty strings")
	}
}
