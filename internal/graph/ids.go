package graph

import (
	"fmt"
	"math/bits"
	"strconv"
)

// IDAssignment maps each node index to its identifier, a bit string.
// Identifiers are compared in the paper's identifier order (CompareID).
type IDAssignment []string

// CompareID compares two identifiers in the identifier order of Section 3:
// a < b if a is a proper prefix of b, or if a has the smaller bit at the
// first position where they differ. It returns -1, 0, or +1.
//
// This order coincides with Go's built-in string comparison on bit strings,
// but we keep an explicit implementation to document the contract.
func CompareID(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsLocallyUnique reports whether id is rid-locally unique on g: any two
// distinct nodes that lie in the rid-neighborhood of a common node (i.e.
// within distance 2*rid of each other) have distinct identifiers.
func (id IDAssignment) IsLocallyUnique(g *Graph, rid int) bool {
	if len(id) != g.N() {
		return false
	}
	for u := 0; u < g.N(); u++ {
		ball := g.Ball(u, 2*rid)
		for _, v := range ball {
			if v != u && id[u] == id[v] {
				return false
			}
		}
	}
	return true
}

// IsSmall reports whether the rid-locally unique identifier assignment is
// "small" in the sense of Section 3: len(id(u)) <= ceil(log2 card(N^G_{2rid}(u)))
// for every node u (with a minimum of 1 bit when the neighborhood has a
// single node, since the empty string is allowed there too; we accept both).
func (id IDAssignment) IsSmall(g *Graph, rid int) bool {
	for u := 0; u < g.N(); u++ {
		card := len(g.Ball(u, 2*rid))
		if len(id[u]) > ceilLog2(card) {
			return false
		}
	}
	return true
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// SmallLocallyUnique constructs an rid-locally unique identifier assignment
// of g that is small (Remark 3). It greedily assigns each node the smallest
// value not used within distance 2*rid among already-assigned nodes, then
// encodes the value in ceil(log2 card(N_{2rid}(u))) bits (at least 1 bit
// when the value is 0 but the neighborhood has more than one node).
func SmallLocallyUnique(g *Graph, rid int) IDAssignment {
	n := g.N()
	val := make([]int, n)
	for u := 0; u < n; u++ {
		val[u] = -1
	}
	id := make(IDAssignment, n)
	for u := 0; u < n; u++ {
		used := make(map[int]bool)
		for _, v := range g.Ball(u, 2*rid) {
			if v != u && val[v] >= 0 {
				used[val[v]] = true
			}
		}
		x := 0
		for used[x] {
			x++
		}
		val[u] = x
		width := ceilLog2(len(g.Ball(u, 2*rid)))
		if width == 0 {
			id[u] = "" // single node within radius: empty identifier suffices
			continue
		}
		id[u] = fixedWidthBits(x, width)
	}
	return id
}

// GloballyUnique constructs a globally unique identifier assignment where
// node u gets the binary representation of u, all padded to equal width.
func GloballyUnique(g *Graph) IDAssignment {
	n := g.N()
	width := ceilLog2(n)
	if width == 0 {
		width = 1
	}
	id := make(IDAssignment, n)
	for u := 0; u < n; u++ {
		id[u] = fixedWidthBits(u, width)
	}
	return id
}

// CyclicIDs assigns identifiers 0..period-1 cyclically around node indices,
// each encoded with the same fixed width. This is the assignment used in
// the pumping argument of Proposition 26 on cycle graphs: it is rid-locally
// unique on a cycle whenever period >= 2*rid+1 (consecutive indices are
// adjacent on the cycle).
func CyclicIDs(n, period int) IDAssignment {
	width := ceilLog2(period)
	if width == 0 {
		width = 1
	}
	id := make(IDAssignment, n)
	for u := 0; u < n; u++ {
		id[u] = fixedWidthBits(u%period, width)
	}
	return id
}

func fixedWidthBits(x, width int) string {
	s := strconv.FormatInt(int64(x), 2)
	for len(s) < width {
		s = "0" + s
	}
	if len(s) > width {
		panic(fmt.Sprintf("graph: value %d does not fit in %d bits", x, width))
	}
	return s
}

// SortByID returns the given node indices sorted in ascending identifier
// order. It does not modify its input.
func (id IDAssignment) SortByID(nodes []int) []int {
	out := append([]int(nil), nodes...)
	// Insertion sort: neighbor lists are short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && CompareID(id[out[j]], id[out[j-1]]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
