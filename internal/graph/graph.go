// Package graph implements the labeled graphs of Reiter's "A LOCAL View of
// the Polynomial Hierarchy" (PODC 2024), Section 3.
//
// All graphs are finite, simple, undirected, and connected. Every node
// carries a label, which is a bit string over {0,1}. Nodes are identified by
// dense integer indices 0..N-1; graph properties in this library are always
// invariant under relabeling of those indices (isomorphism).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Common validation errors returned by New.
var (
	// ErrEmptyGraph is returned when a graph has no nodes.
	ErrEmptyGraph = errors.New("graph: must have at least one node")
	// ErrNotConnected is returned when the edge set does not connect all nodes.
	ErrNotConnected = errors.New("graph: not connected")
	// ErrInvalidLabel is returned when a node label contains characters
	// other than '0' and '1'.
	ErrInvalidLabel = errors.New("graph: label must be a bit string over {0,1}")
)

// Edge is an undirected edge between two node indices.
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is a finite, simple, undirected, connected, labeled graph.
// The zero value is not a valid graph; use New or a generator.
type Graph struct {
	adj    [][]int  // adjacency lists, each sorted ascending
	labels []string // labels[u] is the bit-string label of node u

	// Derived read-only fast paths shared by all relabelings of the same
	// edge set: a packed adjacency bitset (row u occupies words
	// [u*stride, (u+1)*stride), bit v set iff {u,v} is an edge) giving
	// O(1) HasEdge, and the cached degree array behind Degrees. For
	// graphs above bitsetMaxNodes the bitset is skipped (quadratic
	// memory) and HasEdge falls back to binary search.
	bits    []uint64
	stride  int
	degrees []int

	// hashOnce/hashHex cache the canonical content hash (see Hash): the
	// graph is immutable after construction, so the digest never changes.
	hashOnce sync.Once
	hashHex  string
}

// bitsetMaxNodes bounds the O(n²/8) adjacency bitset; beyond it HasEdge
// falls back to binary-searching the adjacency list.
const bitsetMaxNodes = 1 << 12

// buildFastPaths computes the derived structures from g.adj.
func (g *Graph) buildFastPaths() {
	n := len(g.adj)
	g.degrees = make([]int, n)
	for u := range g.adj {
		g.degrees[u] = len(g.adj[u])
	}
	if n > bitsetMaxNodes {
		return
	}
	g.stride = (n + 63) / 64
	g.bits = make([]uint64, n*g.stride)
	for u := range g.adj {
		row := g.bits[u*g.stride : (u+1)*g.stride]
		for _, v := range g.adj[u] {
			row[v>>6] |= 1 << (uint(v) & 63)
		}
	}
}

// New constructs a labeled graph with n nodes, the given undirected edges,
// and the given labels (one per node; nil means all labels empty).
// It validates simplicity, connectivity, and label alphabet.
func New(n int, edges []Edge, labels []string) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if labels == nil {
		labels = make([]string, n)
	}
	if len(labels) != n {
		return nil, fmt.Errorf("graph: got %d labels for %d nodes", len(labels), n)
	}
	for u, l := range labels {
		if !IsBitString(l) {
			return nil, fmt.Errorf("node %d label %q: %w", u, l, ErrInvalidLabel)
		}
	}
	adj := make([][]int, n)
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
		ne := e.Normalize()
		if seen[ne] {
			continue // ignore duplicate edges
		}
		seen[ne] = true
		adj[ne.U] = append(adj[ne.U], ne.V)
		adj[ne.V] = append(adj[ne.V], ne.U)
	}
	for u := range adj {
		sort.Ints(adj[u])
	}
	g := &Graph{adj: adj, labels: append([]string(nil), labels...)}
	if !g.isConnected() {
		return nil, ErrNotConnected
	}
	g.buildFastPaths()
	return g, nil
}

// MustNew is New but panics on error. Intended for tests and fixed fixtures.
func MustNew(n int, edges []Edge, labels []string) *Graph {
	g, err := New(n, edges, labels)
	if err != nil {
		panic(err)
	}
	return g
}

// IsBitString reports whether s consists solely of '0' and '1' characters.
func IsBitString(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' && s[i] != '1' {
			return false
		}
	}
	return true
}

// N returns the number of nodes (the cardinality card(G)).
func (g *Graph) N() int { return len(g.adj) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Degrees returns the cached degree array, indexed by node. The returned
// slice must not be modified.
func (g *Graph) Degrees() []int { return g.degrees }

// Neighbors returns the neighbors of u in ascending index order.
// The returned slice must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Label returns the label of node u.
func (g *Graph) Label(u int) string { return g.labels[u] }

// Labels returns a copy of all node labels.
func (g *Graph) Labels() []string { return append([]string(nil), g.labels...) }

// HasEdge reports whether {u,v} is an edge of g. With the adjacency
// bitset built (every graph up to bitsetMaxNodes nodes) this is a single
// word probe; larger graphs binary-search the adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.bits != nil {
		return g.bits[u*g.stride+v>>6]&(1<<(uint(v)&63)) != 0
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Edges returns all edges, each normalized with U < V, sorted.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	m := 0
	for u := range g.adj {
		m += len(g.adj[u])
	}
	return m / 2
}

// WithLabels returns a copy of g carrying the given labels.
func (g *Graph) WithLabels(labels []string) (*Graph, error) {
	if len(labels) != g.N() {
		return nil, fmt.Errorf("graph: got %d labels for %d nodes", len(labels), g.N())
	}
	for u, l := range labels {
		if !IsBitString(l) {
			return nil, fmt.Errorf("node %d label %q: %w", u, l, ErrInvalidLabel)
		}
	}
	return &Graph{adj: g.adj, labels: append([]string(nil), labels...),
		bits: g.bits, stride: g.stride, degrees: g.degrees}, nil
}

// MustWithLabels is WithLabels but panics on error.
func (g *Graph) MustWithLabels(labels []string) *Graph {
	h, err := g.WithLabels(labels)
	if err != nil {
		panic(err)
	}
	return h
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, len(g.adj))
	for u := range g.adj {
		adj[u] = append([]int(nil), g.adj[u]...)
	}
	h := &Graph{adj: adj, labels: append([]string(nil), g.labels...)}
	h.buildFastPaths()
	return h
}

func (g *Graph) isConnected() bool {
	if len(g.adj) == 0 {
		return false
	}
	seen := make([]bool, len(g.adj))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(g.adj)
}

// BFS returns the distances from src to every node (in edges).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the hop distance between u and v.
func (g *Graph) Distance(u, v int) int { return g.BFS(u)[v] }

// Diameter returns the diameter of g (0 for a single node).
func (g *Graph) Diameter() int {
	d := 0
	for u := 0; u < g.N(); u++ {
		for _, x := range g.BFS(u) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// Ball returns the set of nodes at distance at most r from u, in ascending
// index order. For r = 0 it is {u}.
func (g *Graph) Ball(u, r int) []int {
	dist := g.BFS(u)
	var out []int
	for v, d := range dist {
		if d >= 0 && d <= r {
			out = append(out, v)
		}
	}
	return out
}

// Neighborhood returns the r-neighborhood N^G_r(u) as a new graph (the
// subgraph induced by Ball(u, r), with labels restricted), together with
// the mapping from new indices to original indices.
//
// Note that induced subgraphs of connected graphs are connected whenever
// they are balls around a node, so the result is always a valid Graph.
func (g *Graph) Neighborhood(u, r int) (*Graph, []int) {
	ball := g.Ball(u, r)
	idx := make(map[int]int, len(ball))
	for i, v := range ball {
		idx[v] = i
	}
	var edges []Edge
	labels := make([]string, len(ball))
	for i, v := range ball {
		labels[i] = g.labels[v]
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && i < j {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	sub, err := New(len(ball), edges, labels)
	if err != nil {
		// Unreachable: a ball around u is always nonempty and connected.
		panic(fmt.Sprintf("graph: invalid neighborhood: %v", err))
	}
	return sub, ball
}

// String renders the graph compactly, e.g. "G{n=3; 0-1 1-2; labels=[1 0 1]}".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G{n=%d;", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, " %d-%d", e.U, e.V)
	}
	fmt.Fprintf(&b, "; labels=%v}", g.labels)
	return b.String()
}

// Equal reports whether g and h are identical (same node indexing,
// edges, and labels) — not isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() {
		return false
	}
	for u := range g.adj {
		if g.labels[u] != h.labels[u] || len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for i := range g.adj[u] {
			if g.adj[u][i] != h.adj[u][i] {
				return false
			}
		}
	}
	return true
}
