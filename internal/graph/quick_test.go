package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on core graph invariants.

func randomGraphFromSeed(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	return RandomConnected(2+rng.Intn(8), 0.3, rng)
}

// Balls grow monotonically with the radius and eventually cover the graph.
func TestQuickBallMonotone(t *testing.T) {
	t.Parallel()
	f := func(seed int64, u8 uint8) bool {
		g := randomGraphFromSeed(seed)
		u := int(u8) % g.N()
		prev := 0
		for r := 0; r <= g.N(); r++ {
			cur := len(g.Ball(u, r))
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BFS distances are symmetric and satisfy the triangle inequality through
// any edge.
func TestQuickDistanceMetric(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed)
		for u := 0; u < g.N(); u++ {
			du := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				if du[v] != g.BFS(v)[u] {
					return false
				}
			}
			for _, e := range g.Edges() {
				if du[e.U]-du[e.V] > 1 || du[e.V]-du[e.U] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The identifier order is a strict total order on distinct bit strings.
func TestQuickIDOrderTotal(t *testing.T) {
	t.Parallel()
	f := func(a16, b16, c16 uint16) bool {
		mk := func(x uint16) string {
			s := ""
			for i := 0; i < int(x%8); i++ {
				if x&(1<<uint(i+3)) != 0 {
					s += "1"
				} else {
					s += "0"
				}
			}
			return s
		}
		a, b, c := mk(a16), mk(b16), mk(c16)
		// Antisymmetry.
		if CompareID(a, b) != -CompareID(b, a) {
			return false
		}
		// Reflexivity of equality.
		if CompareID(a, a) != 0 {
			return false
		}
		// Transitivity of <.
		if CompareID(a, b) < 0 && CompareID(b, c) < 0 && CompareID(a, c) >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// SmallLocallyUnique always satisfies both of its advertised properties,
// for every radius.
func TestQuickSmallIDs(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rid8 uint8) bool {
		g := randomGraphFromSeed(seed)
		rid := 1 + int(rid8)%3
		id := SmallLocallyUnique(g, rid)
		return id.IsLocallyUnique(g, rid) && id.IsSmall(g, rid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Neighborhood subgraphs embed isomorphically: taking the r-neighborhood
// twice is idempotent for r >= diameter of the ball.
func TestQuickNeighborhoodIdempotent(t *testing.T) {
	t.Parallel()
	f := func(seed int64, u8, r8 uint8) bool {
		g := randomGraphFromSeed(seed)
		u := int(u8) % g.N()
		r := int(r8) % 3
		sub, m := g.Neighborhood(u, r)
		// The center maps to index of u in m; its ball in sub matches.
		center := -1
		for i, orig := range m {
			if orig == u {
				center = i
			}
		}
		if center < 0 {
			return false
		}
		sub2, _ := sub.Neighborhood(center, r)
		return Isomorphic(sub, sub2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
