package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		n       int
		edges   []Edge
		labels  []string
		wantErr error
	}{
		{name: "empty", n: 0, wantErr: ErrEmptyGraph},
		{name: "disconnected", n: 2, wantErr: ErrNotConnected},
		{name: "bad label", n: 1, labels: []string{"2"}, wantErr: ErrInvalidLabel},
		{name: "single ok", n: 1, labels: []string{"101"}},
		{name: "triangle ok", n: 3, edges: []Edge{{0, 1}, {1, 2}, {2, 0}}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := New(tt.n, tt.edges, tt.labels)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("New: unexpected error %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("New: got error %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSelfLoopRejected(t *testing.T) {
	t.Parallel()
	if _, err := New(2, []Edge{{0, 0}, {0, 1}}, nil); err == nil {
		t.Fatal("New accepted a self-loop")
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	t.Parallel()
	g := MustNew(2, []Edge{{0, 1}, {1, 0}, {0, 1}}, nil)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestBasicAccessors(t *testing.T) {
	t.Parallel()
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, []string{"0", "1", "10", "11"})
	if g.N() != 4 || g.NumEdges() != 4 {
		t.Fatalf("N=%d m=%d", g.N(), g.NumEdges())
	}
	if g.Degree(0) != 2 || !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("adjacency wrong")
	}
	if g.Label(2) != "10" {
		t.Fatalf("Label(2) = %q", g.Label(2))
	}
	if d := g.Distance(0, 2); d != 2 {
		t.Fatalf("Distance(0,2) = %d, want 2", d)
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("Diameter = %d, want 2", d)
	}
}

func TestBallAndNeighborhood(t *testing.T) {
	t.Parallel()
	g := Path(5)
	ball := g.Ball(2, 1)
	if len(ball) != 3 || ball[0] != 1 || ball[1] != 2 || ball[2] != 3 {
		t.Fatalf("Ball(2,1) = %v", ball)
	}
	sub, m := g.Neighborhood(0, 2)
	if sub.N() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("Neighborhood(0,2): n=%d m=%d", sub.N(), sub.NumEdges())
	}
	if m[0] != 0 || m[2] != 2 {
		t.Fatalf("mapping = %v", m)
	}
}

func TestNeighborhoodPreservesLabels(t *testing.T) {
	t.Parallel()
	g := Path(4).MustWithLabels([]string{"00", "01", "10", "11"})
	sub, m := g.Neighborhood(1, 1)
	for i, orig := range m {
		if sub.Label(i) != g.Label(orig) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestGenerators(t *testing.T) {
	t.Parallel()
	if g := Cycle(5); g.N() != 5 || g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Fatal("Cycle(5) malformed")
	}
	if g := Complete(4); g.NumEdges() != 6 {
		t.Fatal("K4 malformed")
	}
	if g := Star(5); g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Fatal("Star(5) malformed")
	}
	if g := Grid(3, 4); g.N() != 12 || g.NumEdges() != 3*3+4*2 {
		t.Fatalf("Grid(3,4): m=%d", Grid(3, 4).NumEdges())
	}
	if g := Single("101"); g.N() != 1 || g.Label(0) != "101" {
		t.Fatal("Single malformed")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(10)
		if g := RandomTree(n, rng); g.NumEdges() != n-1 {
			t.Fatal("RandomTree not a tree")
		}
		g := RandomConnected(n, 0.3, rng)
		if g.N() != n {
			t.Fatal("RandomConnected wrong size")
		}
	}
}

func TestFigure1Instances(t *testing.T) {
	t.Parallel()
	no := Figure1NoInstance()
	yes := Figure1YesInstance()
	if no.NumEdges() != yes.NumEdges()+1 {
		t.Fatalf("figure 1: edge counts %d vs %d", no.NumEdges(), yes.NumEdges())
	}
	if !no.HasEdge(3, 5) || yes.HasEdge(3, 5) {
		t.Fatal("figure 1: the w1-w3 edge is wrong")
	}
	// Degrees per the paper: u has degree 1, v1 and v2 have degree 2.
	for _, g := range []*Graph{no, yes} {
		if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 2 {
			t.Fatal("figure 1: degree pattern wrong")
		}
	}
}

func TestGluedDoubleCycle(t *testing.T) {
	t.Parallel()
	g := GluedDoubleCycle(5)
	if g.N() != 10 || g.NumEdges() != 10 {
		t.Fatal("GluedDoubleCycle malformed")
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 2 {
			t.Fatal("not 2-regular")
		}
	}
}

func TestCompareID(t *testing.T) {
	t.Parallel()
	tests := []struct {
		a, b string
		want int
	}{
		{"", "0", -1},
		{"0", "00", -1},
		{"00", "01", -1},
		{"1", "01", 1},
		{"10", "10", 0},
	}
	for _, tt := range tests {
		if got := CompareID(tt.a, tt.b); got != tt.want {
			t.Errorf("CompareID(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareIDMatchesStringOrder(t *testing.T) {
	t.Parallel()
	f := func(a, b uint8) bool {
		// Random short bit strings.
		s := fixedWidthBits(int(a%16), 4)[:1+a%4]
		u := fixedWidthBits(int(b%16), 4)[:1+b%4]
		got := CompareID(s, u)
		want := 0
		if s < u {
			want = -1
		} else if s > u {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSmallLocallyUnique(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	graphs := []*Graph{
		Single(""), Path(7), Cycle(9), Complete(5), Grid(3, 3),
		RandomConnected(12, 0.2, rng),
	}
	for _, g := range graphs {
		for rid := 1; rid <= 3; rid++ {
			id := SmallLocallyUnique(g, rid)
			if !id.IsLocallyUnique(g, rid) {
				t.Fatalf("%v: not %d-locally unique: %v", g, rid, id)
			}
			if !id.IsSmall(g, rid) {
				t.Fatalf("%v: not small for rid=%d: %v", g, rid, id)
			}
		}
	}
}

func TestGloballyUnique(t *testing.T) {
	t.Parallel()
	g := Cycle(6)
	id := GloballyUnique(g)
	seen := make(map[string]bool)
	for _, s := range id {
		if seen[s] {
			t.Fatal("duplicate identifier")
		}
		seen[s] = true
	}
	if !id.IsLocallyUnique(g, 10) {
		t.Fatal("globally unique assignment should be locally unique at any radius")
	}
}

func TestCyclicIDsLocallyUniqueOnCycles(t *testing.T) {
	t.Parallel()
	for _, n := range []int{9, 12, 15} {
		g := Cycle(n)
		rid := 1
		id := CyclicIDs(n, 3) // period 3 = 2*rid+1
		if n%3 == 0 && !id.IsLocallyUnique(g, rid) {
			t.Fatalf("CyclicIDs(%d,3) not 1-locally unique", n)
		}
	}
}

func TestSortByID(t *testing.T) {
	t.Parallel()
	id := IDAssignment{"11", "0", "10", "01"}
	got := id.SortByID([]int{0, 1, 2, 3})
	want := []int{1, 3, 2, 0} // "0" < "01" < "10" < "11"
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortByID = %v, want %v", got, want)
		}
	}
}

func TestIsomorphic(t *testing.T) {
	t.Parallel()
	c5a := Cycle(5)
	// A relabeled C5.
	c5b := MustNew(5, []Edge{{0, 2}, {2, 4}, {4, 1}, {1, 3}, {3, 0}}, nil)
	if !Isomorphic(c5a, c5b) {
		t.Fatal("C5s should be isomorphic")
	}
	if Isomorphic(Cycle(5), Path(5)) {
		t.Fatal("C5 and P5 are not isomorphic")
	}
	// Labels matter.
	g1 := Path(3).MustWithLabels([]string{"1", "0", "1"})
	g2 := Path(3).MustWithLabels([]string{"0", "1", "1"})
	if Isomorphic(g1, g2) {
		t.Fatal("label multiset differs in position: 1-0-1 vs 0-1-1 are not isomorphic")
	}
	g3 := Path(3).MustWithLabels([]string{"1", "0", "1"})
	if !Isomorphic(g1, g3) {
		t.Fatal("identical labeled paths should be isomorphic")
	}
}

func TestIsomorphicInvariantUnderPermutation(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		g := RandomConnected(n, 0.4, rng)
		perm := rng.Perm(n)
		var edges []Edge
		for _, e := range g.Edges() {
			edges = append(edges, Edge{U: perm[e.U], V: perm[e.V]})
		}
		labels := make([]string, n)
		for u := 0; u < n; u++ {
			labels[perm[u]] = g.Label(u)
		}
		h := MustNew(n, edges, labels)
		if !Isomorphic(g, h) {
			t.Fatalf("permuted copy not isomorphic: %v vs %v", g, h)
		}
	}
}

func TestWithLabelsDoesNotMutate(t *testing.T) {
	t.Parallel()
	g := Path(3)
	h := g.MustWithLabels([]string{"1", "1", "1"})
	if g.Label(0) != "" || h.Label(0) != "1" {
		t.Fatal("WithLabels mutated the receiver")
	}
}

func TestBitLabels(t *testing.T) {
	t.Parallel()
	ls := BitLabels(4, 0b1010)
	want := []string{"0", "1", "0", "1"}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("BitLabels = %v", ls)
		}
	}
}
