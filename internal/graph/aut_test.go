package graph

import (
	"testing"
)

// permEqual reports whether the permutation list contains phi.
func containsPerm(perms [][]int, phi []int) bool {
	for _, p := range perms {
		if len(p) != len(phi) {
			continue
		}
		same := true
		for i := range p {
			if p[i] != phi[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// checkAut validates that every returned permutation is a genuine
// label-preserving automorphism and not the identity.
func checkAut(t *testing.T, g *Graph, perms [][]int) {
	t.Helper()
	for _, phi := range perms {
		identity := true
		seen := make([]bool, g.N())
		for u, v := range phi {
			if u != v {
				identity = false
			}
			if v < 0 || v >= g.N() || seen[v] {
				t.Fatalf("%v is not a permutation", phi)
			}
			seen[v] = true
			if g.Label(u) != g.Label(v) {
				t.Fatalf("%v breaks labels at %d", phi, u)
			}
		}
		if identity {
			t.Fatalf("identity returned: %v", phi)
		}
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if g.HasEdge(u, v) != g.HasEdge(phi[u], phi[v]) {
					t.Fatalf("%v breaks edge {%d,%d}", phi, u, v)
				}
			}
		}
	}
}

func TestAutomorphismsPath(t *testing.T) {
	t.Parallel()
	// P3's only non-identity automorphism is the reversal.
	g := Path(3)
	perms := Automorphisms(g, nil, 0)
	checkAut(t, g, perms)
	if len(perms) != 1 || !containsPerm(perms, []int{2, 1, 0}) {
		t.Fatalf("P3 automorphisms = %v, want exactly the reversal", perms)
	}
}

func TestAutomorphismsCycleGroup(t *testing.T) {
	t.Parallel()
	// C4's automorphism group is dihedral of order 8; minus the identity,
	// 7 permutations.
	g := Cycle(4)
	perms := Automorphisms(g, nil, 0)
	checkAut(t, g, perms)
	if len(perms) != 7 {
		t.Fatalf("C4 has %d non-identity automorphisms, want 7", len(perms))
	}
}

func TestAutomorphismsLimit(t *testing.T) {
	t.Parallel()
	perms := Automorphisms(Cycle(4), nil, 3)
	if len(perms) != 3 {
		t.Fatalf("limit 3 returned %d automorphisms", len(perms))
	}
	checkAut(t, Cycle(4), perms)
}

func TestAutomorphismsLabelConstraint(t *testing.T) {
	t.Parallel()
	// C4 with labels 0,1,0,1: only automorphisms preserving the 2-coloring
	// survive — the rotation by 2 and the two label-preserving
	// reflections (3 of the 7).
	g := Cycle(4).MustWithLabels([]string{"0", "1", "0", "1"})
	perms := Automorphisms(g, nil, 0)
	checkAut(t, g, perms)
	if len(perms) != 3 || !containsPerm(perms, []int{2, 3, 0, 1}) {
		t.Fatalf("labeled C4 automorphisms = %v, want 3 incl. rotation by 2", perms)
	}
}

func TestAutomorphismsFixConstraint(t *testing.T) {
	t.Parallel()
	// The fix callback stands in for identifier equality in the games: on
	// C6 with period-3 "identifiers", only the rotation by 3 survives.
	ids := []string{"a", "b", "c", "a", "b", "c"}
	fix := func(u, v int) bool { return ids[u] == ids[v] }
	g := Cycle(6)
	perms := Automorphisms(g, fix, 0)
	checkAut(t, g, perms)
	if len(perms) != 1 || !containsPerm(perms, []int{3, 4, 5, 0, 1, 2}) {
		t.Fatalf("fixed C6 automorphisms = %v, want exactly the rotation by 3", perms)
	}
	// A fix that pins every node kills the group entirely.
	if perms := Automorphisms(g, func(u, v int) bool { return u == v }, 0); len(perms) != 0 {
		t.Fatalf("fully pinned C6 returned %v", perms)
	}
}

func TestAutomorphismsBudget(t *testing.T) {
	t.Parallel()
	// K8 has 8!-1 = 40319 non-identity automorphisms; the default limit
	// and the step budget must both hold the result far below that.
	perms := Automorphisms(Complete(8), nil, 0)
	if len(perms) == 0 || len(perms) > 64 {
		t.Fatalf("K8 returned %d automorphisms, want 1..64", len(perms))
	}
	checkAut(t, Complete(8), perms)
}
