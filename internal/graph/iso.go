package graph

// Isomorphic reports whether g and h are isomorphic as labeled graphs, i.e.
// there is a bijection between their nodes preserving both adjacency and
// labels. It uses backtracking with degree/label pruning and is intended
// for the small graphs used in tests and experiments.
func Isomorphic(g, h *Graph) bool {
	n := g.N()
	if n != h.N() || g.NumEdges() != h.NumEdges() {
		return false
	}
	// Quick invariant: multiset of (degree, label) pairs must match.
	type sig struct {
		deg   int
		label string
	}
	count := make(map[sig]int)
	for u := 0; u < n; u++ {
		count[sig{g.Degree(u), g.Label(u)}]++
		count[sig{h.Degree(u), h.Label(u)}]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	phi := make([]int, n) // phi[u in g] = node in h
	used := make([]bool, n)
	for i := range phi {
		phi[i] = -1
	}
	var try func(u int) bool
	try = func(u int) bool {
		if u == n {
			return true
		}
		for v := 0; v < n; v++ {
			if used[v] || g.Degree(u) != h.Degree(v) || g.Label(u) != h.Label(v) {
				continue
			}
			ok := true
			for w := 0; w < u; w++ {
				if g.HasEdge(u, w) != h.HasEdge(v, phi[w]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			phi[u] = v
			used[v] = true
			if try(u + 1) {
				return true
			}
			phi[u] = -1
			used[v] = false
		}
		return false
	}
	return try(0)
}
