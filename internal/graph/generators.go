package graph

import (
	"fmt"
	"math/rand"
)

// Single returns the single-node graph with the given label. Single-node
// graphs are how the paper embeds classical string languages: the class
// `node` of Section 3.
func Single(label string) *Graph {
	return MustNew(1, nil, []string{label})
}

// Path returns the path graph on n nodes (0-1-2-...-(n-1)) with empty labels.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	return MustNew(n, edges, nil)
}

// Cycle returns the cycle graph on n >= 3 nodes with empty labels.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n})
	}
	return MustNew(n, edges, nil)
}

// Complete returns the complete graph K_n with empty labels.
func Complete(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	return MustNew(n, edges, nil)
}

// Star returns the star graph with one center (node 0) and n-1 leaves.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: i})
	}
	return MustNew(n, edges, nil)
}

// Grid returns the rows x cols grid graph with empty labels.
// Node (i,j) has index i*cols+j.
func Grid(rows, cols int) *Graph {
	var edges []Edge
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			u := i*cols + j
			if j+1 < cols {
				edges = append(edges, Edge{U: u, V: u + 1})
			}
			if i+1 < rows {
				edges = append(edges, Edge{U: u, V: u + cols})
			}
		}
	}
	return MustNew(rows*cols, edges, nil)
}

// RandomTree returns a uniformly random labeled tree on n nodes
// (via a random attachment process; not Prüfer-uniform, but well spread).
func RandomTree(n int, rng *rand.Rand) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: rng.Intn(i), V: i})
	}
	return MustNew(n, edges, nil)
}

// RandomConnected returns a random connected graph on n nodes: a random
// spanning tree plus each remaining pair added independently with
// probability p.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	edges := make([]Edge, 0, n-1)
	present := make(map[Edge]bool)
	for i := 1; i < n; i++ {
		e := Edge{U: rng.Intn(i), V: i}
		edges = append(edges, e)
		present[e.Normalize()] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e := Edge{U: i, V: j}
			if !present[e] && rng.Float64() < p {
				edges = append(edges, e)
				present[e] = true
			}
		}
	}
	return MustNew(n, edges, nil)
}

// AllSelectedLabels returns n copies of the label "1" (the all-selected
// labeling of Section 5.2).
func AllSelectedLabels(n int) []string {
	ls := make([]string, n)
	for i := range ls {
		ls[i] = "1"
	}
	return ls
}

// BitLabels converts a bit mask into single-bit labels: bit i set means
// node i is labeled "1", otherwise "0".
func BitLabels(n int, mask uint) []string {
	ls := make([]string, n)
	for i := range ls {
		if mask&(1<<uint(i)) != 0 {
			ls[i] = "1"
		} else {
			ls[i] = "0"
		}
	}
	return ls
}

// Figure1NoInstance returns the 6-node graph of Figure 1a, which is
// 3-colorable but NOT 3-round 3-colorable.
//
// Nodes: 0=u, 1=v1, 2=v2, 3=w1, 4=w2, 5=w3.
// u has degree 1 (attached to w1); v1, v2 have degree 2.
// The adjacency realizes Adam's winning strategy described in Example 1:
// after Eve colors u with i, Adam sets v1 := i and v2 := j ≠ i, forcing
// both w1 and w3 to the third color k although they are adjacent.
func Figure1NoInstance() *Graph {
	return MustNew(6, []Edge{
		{U: 0, V: 3},               // u - w1
		{U: 1, V: 4}, {U: 1, V: 5}, // v1 - w2, v1 - w3
		{U: 2, V: 3}, {U: 2, V: 5}, // v2 - w1, v2 - w3
		{U: 3, V: 4}, {U: 4, V: 5}, // w1 - w2, w2 - w3
		{U: 3, V: 5}, // w1 - w3  (the edge removed in Figure 1b)
	}, nil)
}

// Figure1YesInstance returns the 6-node graph of Figure 1b, obtained from
// Figure 1a by removing the edge {w1, w3}; it is 3-round 3-colorable.
func Figure1YesInstance() *Graph {
	return MustNew(6, []Edge{
		{U: 0, V: 3},
		{U: 1, V: 4}, {U: 1, V: 5},
		{U: 2, V: 3}, {U: 2, V: 5},
		{U: 3, V: 4}, {U: 4, V: 5},
	}, nil)
}

// Figure5Graph returns the 3-node labeled graph of Figure 5 (labels 010,
// 1101 and 001, with node 1 additionally labeled 10 in the figure's
// depiction; we follow the four-string version: 010, 10, 1101, 001 is a
// triangle plus pendant in the figure — here we reproduce the triangle of
// three labeled nodes plus one, as drawn).
//
// The exact figure shows four nodes labeled 010, 10, 1101, 001 with the
// 10-node adjacent to the other three forming a "triangle with center".
func Figure5Graph() *Graph {
	return MustNew(4, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 0, V: 2}, {U: 2, V: 3},
	}, []string{"010", "10", "1101", "001"})
}

// GluedDoubleCycle implements the construction in the proof of
// Proposition 24: given an odd cycle length n, it returns the even cycle
// of length 2n obtained by "gluing together" two copies of the n-cycle.
// Node i and node n+i of the result correspond to node i of the original.
func GluedDoubleCycle(n int) *Graph {
	edges := make([]Edge, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % (2 * n)})
	}
	return MustNew(2*n, edges, nil)
}
