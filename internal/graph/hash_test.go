package graph

import (
	"math/rand"
	"testing"
)

// TestHashEdgePermutationInvariant is the property the service cache
// depends on: the hash of a graph is a function of the graph, not of the
// edge-list order (or duplication) it was constructed from.
func TestHashEdgePermutationInvariant(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := RandomConnected(n, 0.4, rng)
		want := g.Hash()
		edges := g.Edges()
		labels := g.Labels()
		for p := 0; p < 10; p++ {
			perm := append([]Edge(nil), edges...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			// Randomly flip endpoint order and duplicate an edge: New
			// normalizes and dedups, so the hash must not move.
			for i := range perm {
				if rng.Intn(2) == 0 {
					perm[i] = Edge{U: perm[i].V, V: perm[i].U}
				}
			}
			if len(perm) > 0 {
				perm = append(perm, perm[rng.Intn(len(perm))])
			}
			h := MustNew(n, perm, labels)
			if got := h.Hash(); got != want {
				t.Fatalf("trial %d perm %d: hash moved under edge permutation:\n%s\nvs\n%s\non %v", trial, p, got, want, g)
			}
			if !g.Equal(h) {
				t.Fatalf("trial %d: permuted construction is not Equal", trial)
			}
		}
	}
}

// TestHashDistinguishesGenerators checks that every generator in
// generators.go produces a distinct hash on comparable sizes — labels,
// edge sets, and node counts all feed the hash.
func TestHashDistinguishesGenerators(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	gs := map[string]*Graph{
		"single":        Single("1"),
		"single-empty":  Single(""),
		"path6":         Path(6),
		"cycle6":        Cycle(6),
		"complete6":     Complete(6),
		"star6":         Star(6),
		"grid2x3":       Grid(2, 3),
		"grid3x2":       Grid(3, 2),
		"tree6":         RandomTree(6, rng),
		"fig1a":         Figure1NoInstance(),
		"fig1b":         Figure1YesInstance(),
		"fig5":          Figure5Graph(),
		"glued5":        GluedDoubleCycle(5), // C10; GluedDoubleCycle(3) IS Cycle(6)
		"path6-labeled": Path(6).MustWithLabels(AllSelectedLabels(6)),
		"path6-bits":    Path(6).MustWithLabels(BitLabels(6, 0b101010)),
	}
	seen := make(map[string]string)
	for name, g := range gs {
		h := g.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %s and %s: %s", name, prev, h)
		}
		seen[h] = name
		if g.Hash() != h {
			t.Fatalf("%s: hash not deterministic", name)
		}
	}
	// Label-only changes must move the hash (WithLabels shares adjacency).
	a := Path(4).MustWithLabels([]string{"1", "0", "1", "0"})
	b := Path(4).MustWithLabels([]string{"1", "0", "1", "1"})
	if a.Hash() == b.Hash() {
		t.Fatal("hash ignores labels")
	}
	// Length-prefix ambiguity: ["ab",""] vs ["a","b"]-style splits.
	c := Path(2).MustWithLabels([]string{"01", ""})
	d := Path(2).MustWithLabels([]string{"0", "1"})
	if c.Hash() == d.Hash() {
		t.Fatal("hash is ambiguous across label boundaries")
	}
}
