package graph

// Automorphisms enumerates (a bounded prefix of) the automorphism group
// of the labeled graph: permutations π of the node indices with
// {π(u),π(v)} an edge iff {u,v} is, and label(π(u)) == label(u). The
// optional fix constraint restricts the group further — fix(u, v) must
// report whether mapping u ↦ v is admissible (the certificate games pass
// identifier and domain-bound equality here, so only symmetries the
// arbiter machines cannot observe survive). The identity permutation is
// never returned.
//
// The search is the iso.go backtracking specialised to g == h, with two
// budgets so adversarial inputs stay cheap: at most limit automorphisms
// are collected (0 means 64) and at most autSearchBudget backtracking
// steps are spent. Truncation is sound for the symmetry pruning in
// internal/core — any subset of the group yields a coarser but still
// correct orbit partition (see DESIGN.md, "Symmetry pruning") — so
// callers need not know whether the returned set is the whole group.
func Automorphisms(g *Graph, fix func(u, v int) bool, limit int) [][]int {
	if limit <= 0 {
		limit = 64
	}
	n := g.N()
	phi := make([]int, n)
	used := make([]bool, n)
	for i := range phi {
		phi[i] = -1
	}
	var out [][]int
	budget := autSearchBudget
	var try func(u int) bool // false aborts the whole search (budget/limit)
	try = func(u int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if u == n {
			identity := true
			for i, v := range phi {
				if i != v {
					identity = false
					break
				}
			}
			if !identity {
				out = append(out, append([]int(nil), phi...))
			}
			return len(out) < limit
		}
		for v := 0; v < n; v++ {
			if used[v] || g.Degree(u) != g.Degree(v) || g.Label(u) != g.Label(v) {
				continue
			}
			if fix != nil && !fix(u, v) {
				continue
			}
			ok := true
			for w := 0; w < u; w++ {
				if g.HasEdge(u, w) != g.HasEdge(v, phi[w]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			phi[u] = v
			used[v] = true
			if !try(u + 1) {
				return false
			}
			phi[u] = -1
			used[v] = false
		}
		return true
	}
	try(0)
	return out
}

// autSearchBudget bounds the backtracking steps Automorphisms spends, so
// graphs with huge or hard-to-find symmetry groups cannot stall a game
// evaluation. Pruning with whatever was found inside the budget remains
// sound.
const autSearchBudget = 1 << 14
