package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Hash returns a canonical content hash of the graph: two graphs have
// equal hashes iff they are Equal (same node indexing, edge set, and
// labels). The hash is computed from the node count, the normalized
// sorted edge list, and the labels, so it is invariant under the order
// (and duplication) of the edge list handed to New — any construction of
// the same graph hashes identically. It is NOT an isomorphism invariant:
// relabeling node indices changes the hash.
//
// The service layer keys its Prepared-instance cache by this hash and
// the core game-engine memo table keys every transposition entry under
// it, so the hash must be collision-resistant against adversarial
// inputs; SHA-256 over an unambiguous (length-prefixed) encoding
// provides that. Graphs are immutable after construction, so the digest
// is computed once and cached — memo lookups on a warm graph pay a
// string copy, not a hash pass.
func (g *Graph) Hash() string {
	g.hashOnce.Do(func() { g.hashHex = g.computeHash() })
	return g.hashHex
}

func (g *Graph) computeHash() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeInt(g.N())
	// Edges() is already normalized (U < V) and sorted, independent of
	// input order.
	edges := g.Edges()
	writeInt(len(edges))
	for _, e := range edges {
		writeInt(e.U)
		writeInt(e.V)
	}
	// Labels are length-prefixed so ["ab",""] and ["a","b"] differ.
	for _, l := range g.labels {
		writeInt(len(l))
		h.Write([]byte(l))
	}
	return hex.EncodeToString(h.Sum(nil))
}
