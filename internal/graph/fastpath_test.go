package graph

import (
	"sort"
	"testing"
)

// TestHasEdgeBitsetAgreesWithLists cross-checks the bitset fast path of
// HasEdge against the adjacency lists on every node pair of assorted
// generators and relabelings.
func TestHasEdgeBitsetAgreesWithLists(t *testing.T) {
	gs := []*Graph{
		Cycle(3), Cycle(9), Path(5), Complete(6),
		Figure1NoInstance(), Figure1YesInstance(),
		GluedDoubleCycle(5),
		Cycle(4).MustWithLabels([]string{"1", "0", "1", "0"}),
		Complete(4).Clone(),
	}
	for gi, g := range gs {
		if g.bits == nil {
			t.Fatalf("graph %d: bitset not built for n=%d", gi, g.N())
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				a := g.adj[u]
				i := sort.SearchInts(a, v)
				want := u != v && i < len(a) && a[i] == v
				if got := g.HasEdge(u, v); got != want {
					t.Fatalf("graph %d: HasEdge(%d,%d) = %v, want %v", gi, u, v, got, want)
				}
			}
		}
	}
}

// TestDegreesCached checks the cached degree array against Degree on all
// construction paths (New, WithLabels, Clone).
func TestDegreesCached(t *testing.T) {
	for _, g := range []*Graph{
		Complete(5),
		Complete(5).MustWithLabels(BitLabels(5, 0b10101)),
		Complete(5).Clone(),
		Path(4),
	} {
		ds := g.Degrees()
		if len(ds) != g.N() {
			t.Fatalf("Degrees length %d, want %d", len(ds), g.N())
		}
		for u := 0; u < g.N(); u++ {
			if ds[u] != g.Degree(u) {
				t.Fatalf("Degrees()[%d] = %d, want %d", u, ds[u], g.Degree(u))
			}
		}
	}
}
