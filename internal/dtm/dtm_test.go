package dtm

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func runOn(t *testing.T, m *Machine, g *graph.Graph) *Exec {
	t.Helper()
	e, err := m.Run(g, graph.GloballyUnique(g), nil, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

func TestTapeBasics(t *testing.T) {
	t.Parallel()
	tp := newTape("10#")
	if tp.read() != LeftEnd {
		t.Fatal("cell 0 must hold the left-end marker")
	}
	tp.move(Left) // clamped at 0
	if tp.head != 0 {
		t.Fatal("head moved left of cell 0")
	}
	tp.move(Right)
	if tp.read() != '1' {
		t.Fatalf("cell 1 = %q", string(tp.read()))
	}
	tp.write(Any)
	if tp.read() != '1' {
		t.Fatal("Any-write must not change the cell")
	}
	tp.head = 10
	if tp.read() != Blank {
		t.Fatal("beyond content must read blank")
	}
	if tp.content() != "10#" {
		t.Fatalf("content = %q", tp.content())
	}
}

func TestSplitMessages(t *testing.T) {
	t.Parallel()
	tests := []struct {
		content string
		d       int
		want    []string
	}{
		{"10#0#", 2, []string{"10", "0"}},
		{"10#", 3, []string{"10", "", ""}},
		{"", 2, []string{"", ""}},
		{"1__0#1#", 2, []string{"10", "1"}}, // blanks ignored
		{"1#1#1#1#", 2, []string{"1", "1"}}, // extra messages dropped
		{"11", 1, []string{"11"}},           // missing trailing separator
	}
	for _, tt := range tests {
		got := splitMessages(tt.content, tt.d)
		if len(got) != len(tt.want) {
			t.Fatalf("splitMessages(%q,%d) = %v", tt.content, tt.d, got)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("splitMessages(%q,%d) = %v, want %v", tt.content, tt.d, got, tt.want)
			}
		}
	}
}

func TestAllSelectedMachine(t *testing.T) {
	t.Parallel()
	m := AllSelectedMachine()
	tests := []struct {
		labels []string
		want   bool
	}{
		{[]string{"1", "1", "1"}, true},
		{[]string{"1", "0", "1"}, false},
		{[]string{"1", "1", "11"}, false},
		{[]string{"1", "1", ""}, false},
		{[]string{"0", "0", "0"}, false},
	}
	for _, tt := range tests {
		g := graph.Path(3).MustWithLabels(tt.labels)
		e := runOn(t, m, g)
		if e.Accepted() != tt.want {
			t.Errorf("labels %v: accepted = %v, want %v (verdicts %v)",
				tt.labels, e.Accepted(), tt.want, e.Result.Labels())
		}
		if e.Rounds != 1 {
			t.Errorf("labels %v: rounds = %d, want 1", tt.labels, e.Rounds)
		}
	}
}

func TestAllSelectedVerdictsAreLocal(t *testing.T) {
	t.Parallel()
	m := AllSelectedMachine()
	g := graph.Cycle(5).MustWithLabels([]string{"1", "0", "1", "11", ""})
	e := runOn(t, m, g)
	want := []string{"1", "0", "1", "0", "0"}
	// Node 4's label is empty: the machine writes the explicit verdict "0".
	for u, w := range want {
		if e.Result.Label(u) != w {
			t.Errorf("node %d verdict %q, want %q", u, e.Result.Label(u), w)
		}
	}
}

func TestAllEqualMachine(t *testing.T) {
	t.Parallel()
	m := AllEqualMachine()
	tests := []struct {
		g    *graph.Graph
		want bool
	}{
		{graph.Path(3).MustWithLabels([]string{"10", "10", "10"}), true},
		{graph.Path(3).MustWithLabels([]string{"10", "10", "11"}), false},
		{graph.Cycle(4).MustWithLabels([]string{"0", "0", "0", "0"}), true},
		{graph.Cycle(4).MustWithLabels([]string{"0", "0", "1", "0"}), false},
		{graph.Single("101"), true},
		{graph.Path(2).MustWithLabels([]string{"", ""}), true},
		{graph.Path(2).MustWithLabels([]string{"", "1"}), false},
		{graph.Star(5).MustWithLabels([]string{"1", "1", "1", "1", "1"}), true},
		{graph.Star(5).MustWithLabels([]string{"1", "1", "1", "0", "1"}), false},
	}
	for _, tt := range tests {
		e := runOn(t, m, tt.g)
		if e.Accepted() != tt.want {
			t.Errorf("%v: accepted = %v, want %v (verdicts %v)",
				tt.g, e.Accepted(), tt.want, e.Result.Labels())
		}
		if e.Rounds != 2 {
			t.Errorf("%v: rounds = %d, want 2", tt.g, e.Rounds)
		}
	}
}

// TestAllEqualRandom cross-checks the TM against the trivial ground truth
// on random graphs with random short labels and small locally unique
// identifiers (not just globally unique ones).
func TestAllEqualRandom(t *testing.T) {
	t.Parallel()
	m := AllEqualMachine()
	rng := rand.New(rand.NewSource(21))
	labelsPool := []string{"", "0", "1", "01", "10"}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		g := graph.RandomConnected(n, 0.3, rng)
		labels := make([]string, n)
		same := rng.Intn(2) == 0
		base := labelsPool[rng.Intn(len(labelsPool))]
		for u := range labels {
			if same {
				labels[u] = base
			} else {
				labels[u] = labelsPool[rng.Intn(len(labelsPool))]
			}
		}
		lg := g.MustWithLabels(labels)
		want := true
		for u := 1; u < n; u++ {
			if labels[u] != labels[0] {
				want = false
			}
		}
		id := graph.SmallLocallyUnique(lg, 1)
		e, err := m.Run(lg, id, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if e.Accepted() != want {
			t.Fatalf("trial %d (%v): accepted = %v, want %v", trial, lg, e.Accepted(), want)
		}
	}
}

func TestRunRejectsNonLocallyUniqueIDs(t *testing.T) {
	t.Parallel()
	g := graph.Path(2)
	if _, err := AllSelectedMachine().Run(g, graph.IDAssignment{"0", "0"}, nil, Options{}); err == nil {
		t.Fatal("Run accepted duplicate identifiers on adjacent nodes")
	}
}

func TestRunNoTransitionError(t *testing.T) {
	t.Parallel()
	m := NewMachine() // no transitions at all
	_, err := m.Run(graph.Single("1"), graph.IDAssignment{""}, nil, Options{})
	var nt *ErrNoTransition
	if !errors.As(err, &nt) {
		t.Fatalf("want ErrNoTransition, got %v", err)
	}
}

func TestRunStepLimit(t *testing.T) {
	t.Parallel()
	// A machine that moves right forever.
	m := NewMachine()
	m.Add(Start, Any, Any, Any, act(Start, Any, Right))
	_, err := m.Run(graph.Single("1"), graph.IDAssignment{""}, nil, Options{MaxSteps: 100})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
}

func TestRunRoundLimit(t *testing.T) {
	t.Parallel()
	// A machine that pauses forever without stopping.
	m := NewMachine()
	m.Add(Start, Any, Any, Any, act(Pause, Any, Stay))
	_, err := m.Run(graph.Single("1"), graph.IDAssignment{""}, nil, Options{MaxRounds: 5})
	if err == nil {
		t.Fatal("non-terminating machine should error out")
	}
}

func TestStepAndSpaceAccounting(t *testing.T) {
	t.Parallel()
	m := AllSelectedMachine()
	g := graph.Single("1")
	e := runOn(t, m, g)
	if len(e.Steps) != 1 || len(e.Steps[0]) != 1 {
		t.Fatalf("steps shape: %v", e.Steps)
	}
	if e.Steps[0][0] <= 0 {
		t.Fatal("step count must be positive")
	}
	if e.Space[0][0] < 3 {
		t.Fatalf("space usage too small: %d", e.Space[0][0])
	}
}

// TestCertificatesOnInternalTape checks that certificate lists appear on
// the internal tape in the κ1#κ2 format.
func TestCertificatesOnInternalTape(t *testing.T) {
	t.Parallel()
	// A machine that stops immediately; the internal tape stays intact.
	m := NewMachine()
	m.Add(Start, Any, Any, Any, act(Stop, Any, Stay))
	g := graph.Single("10")
	e, err := m.Run(g, graph.IDAssignment{"0"}, [][]string{{"11", "01"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Internals[0] != "10#0#11#01" {
		t.Fatalf("internal tape = %q, want %q", e.Internals[0], "10#0#11#01")
	}
}

// TestMessageOrderFollowsIdentifiers: a node with two neighbors receives
// their messages sorted by identifier, not by node index.
func TestMessageOrderFollowsIdentifiers(t *testing.T) {
	t.Parallel()
	// Machine: round 1 pause (send nothing); we only inspect engine
	// plumbing via AllEqual on a path where the center compares with both.
	g := graph.Path(3).MustWithLabels([]string{"1", "1", "1"})
	// Give the endpoints inverted identifiers relative to their indices.
	id := graph.IDAssignment{"11", "0", "10"}
	e, err := AllEqualMachine().Run(g, id, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Accepted() {
		t.Fatal("equal labels must be accepted under any identifier order")
	}
}

func TestWildcardPrecedence(t *testing.T) {
	t.Parallel()
	m := NewMachine()
	m.Add(Start, Any, One, Any, act(Stop, One, Stay))       // specific
	m.Add(Start, Any, Any, Any, act(Stop, Zero, Stay))      // fallback
	m.Add(Start, Any, LeftEnd, Any, act(Start, Any, Right)) // step off ⊢
	g := graph.Single("1")
	// Empty identifier so the internal tape is "1##": the only 0/1 chars
	// left after the run are the label's own.
	e, err := m.Run(g, graph.IDAssignment{""}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The specific '1' rule should fire, leaving the '1' in place.
	if e.Result.Label(0) != "1" {
		t.Fatalf("verdict %q, want 1", e.Result.Label(0))
	}
}
