package dtm

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

// TestLemma13StepEnvelope measures the step running time and space usage
// of the faithful TM across growing cycles and checks they stay inside a
// fixed polynomial of card(N^{$G}_{4r}(u)) — Lemma 13 made executable on
// the formal model.
func TestLemma13StepEnvelope(t *testing.T) {
	t.Parallel()
	m := AllEqualMachine()
	// p(n) = 8 + 8n + n²: a generous fixed envelope; the point is that
	// ONE polynomial covers every instance size.
	p := func(n int) int { return 8 + 8*n + n*n }
	for _, n := range []int{4, 8, 16, 32} {
		labels := make([]string, n)
		for i := range labels {
			labels[i] = "10"
		}
		g := graph.Cycle(n).MustWithLabels(labels)
		id := graph.SmallLocallyUnique(g, 1)
		rep := structure.NewRep(g)
		e, err := m.Run(g, id, nil, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !e.Accepted() {
			t.Fatalf("n=%d: equal labels rejected", n)
		}
		for u := 0; u < n; u++ {
			local := rep.NeighborhoodCard(u, 4*e.Rounds)
			bound := p(local)
			for round := range e.Steps[u] {
				if e.Steps[u][round] > bound {
					t.Fatalf("n=%d node %d round %d: %d steps > p(%d) = %d",
						n, u, round, e.Steps[u][round], local, bound)
				}
				if e.Space[u][round] > bound {
					t.Fatalf("n=%d node %d round %d: space %d > p(%d) = %d",
						n, u, round, e.Space[u][round], local, bound)
				}
			}
		}
	}
}

// TestLemma13LocalityOfSteps: on a cycle, every node sees the same local
// structure, so step counts must be identical across nodes — the step
// time depends only on the local input, never on n.
func TestLemma13LocalityOfSteps(t *testing.T) {
	t.Parallel()
	m := AllEqualMachine()
	var reference []int
	for _, n := range []int{6, 12, 24} {
		labels := make([]string, n)
		for i := range labels {
			labels[i] = "1"
		}
		g := graph.Cycle(n).MustWithLabels(labels)
		// Same-width identifiers everywhere so local inputs really match.
		id := graph.CyclicIDs(n, 3)
		e, err := m.Run(g, id, nil, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Group nodes by identifier value: nodes with the same id string
		// have byte-identical local inputs and must take identical steps.
		byID := make(map[string][]int)
		for u := 0; u < n; u++ {
			byID[id[u]] = append(byID[id[u]], e.Steps[u][0])
		}
		for idv, steps := range byID {
			for _, s := range steps {
				if s != steps[0] {
					t.Fatalf("n=%d id=%s: differing step counts %v", n, idv, steps)
				}
			}
		}
		// Across sizes, the per-id step profile is stable (constant round
		// time + locally determined step time).
		var profile []int
		for _, u := range []int{0, 1, 2} {
			profile = append(profile, e.Steps[u][0], e.Steps[u][1])
		}
		if reference == nil {
			reference = profile
		} else {
			for i := range reference {
				if reference[i] != profile[i] {
					t.Fatalf("step profile changed with n: %v vs %v", reference, profile)
				}
			}
		}
	}
}
