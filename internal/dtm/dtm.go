// Package dtm implements the distributed Turing machines of Section 4 of
// the paper, faithfully: three one-way infinite tapes (receiving, internal,
// sending) over the alphabet {⊢, □, #, 0, 1}, a transition function
// δ: Q×Σ³ → Q×Σ³×{−1,0,1}³, and the three-phase synchronous round
// semantics (receive messages sorted by identifier order, compute locally
// until q_pause or q_stop, send the first d bit strings of the sending
// tape).
//
// This package is the formal reference model. The practical engine used by
// most arbiters lives in package simulate; the two are cross-validated in
// the tests and in the Figure 8 experiment.
package dtm

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Tape symbols. The paper's Σ = {⊢, □, #, 0, 1}; we use single ASCII bytes.
const (
	LeftEnd = byte('>') // ⊢, left-end marker
	Blank   = byte('_') // □, blank
	Sep     = byte('#') // separator
	Zero    = byte('0')
	One     = byte('1')
)

// Any is a wildcard symbol usable in transition patterns and actions (it is
// not a tape symbol): in a pattern it matches any scanned symbol on that
// tape, and as a written symbol it leaves the cell unchanged. Both are
// notational conveniences expressible in the strict model by enlarging the
// state set with one state per scanned symbol.
const Any = byte(0)

// State is a machine state. Three states are designated.
type State int

// Designated states required by the paper's model.
const (
	Start State = 0 // q_start
	Pause State = 1 // q_pause
	Stop  State = 2 // q_stop
)

// Move is a head movement.
type Move int8

// Head movements.
const (
	Left  Move = -1
	Stay  Move = 0
	Right Move = 1
)

// Key indexes the transition function: current state and the three scanned
// symbols (receiving, internal, sending).
type Key struct {
	Q       State
	R, I, S byte
}

// Action is the outcome of a transition: new state, symbols written on the
// three tapes, and head movements.
type Action struct {
	Q          State
	WR, WI, WS byte
	MR, MI, MS Move
}

// Machine is a distributed Turing machine M = (Q, δ). Q is implicit in the
// states mentioned by Delta. The zero value is an empty machine with no
// transitions (it halts immediately only if given explicit transitions).
type Machine struct {
	delta map[Key]Action
}

// NewMachine creates an empty machine.
func NewMachine() *Machine {
	return &Machine{delta: make(map[Key]Action)}
}

// Add registers δ(q, r, i, s) = action. The pattern symbols r, i, s may be
// Any; exact matches take precedence over wildcard matches, and patterns
// with fewer wildcards take precedence over patterns with more.
func (m *Machine) Add(q State, r, i, s byte, a Action) *Machine {
	m.delta[Key{Q: q, R: r, I: i, S: s}] = a
	return m
}

// lookup resolves the transition for the scanned symbols, trying patterns
// from most to least specific.
func (m *Machine) lookup(q State, r, i, s byte) (Action, bool) {
	// Order: exact; wildcards on S, R, I; then pairs; then all-wildcard.
	candidates := [...]Key{
		{q, r, i, s},
		{q, r, i, Any},
		{q, Any, i, s},
		{q, r, Any, s},
		{q, r, Any, Any},
		{q, Any, i, Any},
		{q, Any, Any, s},
		{q, Any, Any, Any},
	}
	for _, k := range candidates {
		if a, ok := m.delta[k]; ok {
			return a, true
		}
	}
	return Action{}, false
}

// tape is a one-way infinite tape with a left-end marker at cell 0.
type tape struct {
	cells []byte
	head  int
}

func newTape(content string) *tape {
	t := &tape{cells: make([]byte, 1, len(content)+2)}
	t.cells[0] = LeftEnd
	t.cells = append(t.cells, content...)
	return t
}

func (t *tape) read() byte {
	if t.head < len(t.cells) {
		return t.cells[t.head]
	}
	return Blank
}

func (t *tape) write(b byte) {
	if b == Any {
		return // Any as a written symbol means "leave unchanged".
	}
	for t.head >= len(t.cells) {
		t.cells = append(t.cells, Blank)
	}
	if t.head == 0 {
		// Cell 0 always holds the left-end marker; writes of other
		// symbols there are ignored to preserve the tape invariant.
		if b == LeftEnd {
			t.cells[0] = b
		}
		return
	}
	t.cells[t.head] = b
}

func (t *tape) move(m Move) {
	t.head += int(m)
	if t.head < 0 {
		t.head = 0
	}
}

// content returns the tape content in the paper's sense: the symbols
// ignoring leading/trailing ⊢ and □.
func (t *tape) content() string {
	s := t.cells
	// Drop the left-end marker and trailing blanks.
	start := 1
	end := len(s)
	for end > start && s[end-1] == Blank {
		end--
	}
	return string(s[start:end])
}

// ErrStepLimit is returned when a node exceeds the per-round step budget.
var ErrStepLimit = errors.New("dtm: step limit exceeded")

// ErrNoTransition is returned when δ is undefined for the current
// configuration before reaching q_pause or q_stop.
type ErrNoTransition struct {
	Q       State
	R, I, S byte
}

func (e *ErrNoTransition) Error() string {
	return fmt.Sprintf("dtm: no transition from state %d on (%q,%q,%q)",
		e.Q, string(e.R), string(e.I), string(e.S))
}

// nodeExec is the per-node execution state across rounds.
type nodeExec struct {
	state    State
	internal *tape
	sending  *tape
	// stats
	steps    []int // per round
	space    []int // per round: max total tape length
	outgoing []string
}

// Exec is the result of executing a machine on a graph.
type Exec struct {
	// Result is the result graph M(G, id, κ̄): same topology, labels are
	// the 0/1 characters of each node's final internal tape.
	Result *graph.Graph
	// Rounds is the number of rounds until all nodes reached q_stop.
	Rounds int
	// Steps[u][i] is the step running time of node u in round i (0-based).
	Steps [][]int
	// Space[u][i] is the space usage of node u in round i.
	Space [][]int
	// Internals[u] is the final internal tape content of node u.
	Internals []string
}

// Accepted reports acceptance by unanimity: every node's verdict is "1".
func (e *Exec) Accepted() bool {
	for u := 0; u < e.Result.N(); u++ {
		if e.Result.Label(u) != "1" {
			return false
		}
	}
	return true
}

// Options bound an execution.
type Options struct {
	MaxRounds int // default 64
	MaxSteps  int // per node per round; default 1 << 20
}

func (o Options) withDefaults() Options {
	if o.MaxRounds == 0 {
		o.MaxRounds = 64
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	return o
}

// Run executes the machine on graph g under identifier assignment id and
// certificate lists certs (certs[u] is the list of certificates of node u;
// nil means no certificates). The identifier assignment must be at least
// 1-locally unique; this is checked.
func (m *Machine) Run(g *graph.Graph, id graph.IDAssignment, certs [][]string, opt Options) (*Exec, error) {
	opt = opt.withDefaults()
	if !id.IsLocallyUnique(g, 1) {
		return nil, errors.New("dtm: identifier assignment is not 1-locally unique")
	}
	n := g.N()
	nodes := make([]*nodeExec, n)
	for u := 0; u < n; u++ {
		// Initial internal tape: label # id # κ̄(u) where κ̄ joins the
		// certificates with '#'.
		var kappa string
		if certs != nil {
			kappa = strings.Join(certs[u], "#")
		}
		init := g.Label(u) + "#" + id[u] + "#" + kappa
		nodes[u] = &nodeExec{state: Start, internal: newTape(init)}
	}
	// neighborOrder[u] lists u's neighbors in ascending identifier order.
	neighborOrder := make([][]int, n)
	for u := 0; u < n; u++ {
		neighborOrder[u] = id.SortByID(g.Neighbors(u))
	}
	// prevMsgs[u][j] is the message u sent to its j-th neighbor (in u's
	// own neighbor order) in the previous round.
	prevMsgs := make([][]string, n)
	for u := range prevMsgs {
		prevMsgs[u] = make([]string, len(neighborOrder[u]))
	}

	for round := 1; round <= opt.MaxRounds; round++ {
		allStopped := true
		nextMsgs := make([][]string, n)
		for u := 0; u < n; u++ {
			ne := nodes[u]
			// Phase 1: build receiving tape from neighbors' previous
			// messages, sorted by sender identifier.
			var recv strings.Builder
			for _, v := range neighborOrder[u] {
				// Find u's position in v's neighbor order.
				msg := ""
				if round > 1 {
					for j, w := range neighborOrder[v] {
						if w == u {
							msg = prevMsgs[v][j]
							break
						}
					}
				}
				recv.WriteString(msg)
				recv.WriteByte(Sep)
			}
			receiving := newTape(recv.String())

			// Phase 2: local computation.
			ne.sending = newTape("")
			steps := 0
			maxSpace := len(receiving.cells) + len(ne.internal.cells) + len(ne.sending.cells)
			if ne.state != Stop {
				ne.state = Start
				ne.internal.head = 0
				for ne.state != Pause && ne.state != Stop {
					a, ok := m.lookup(ne.state, receiving.read(), ne.internal.read(), ne.sending.read())
					if !ok {
						return nil, &ErrNoTransition{Q: ne.state, R: receiving.read(), I: ne.internal.read(), S: ne.sending.read()}
					}
					receiving.write(a.WR)
					ne.internal.write(a.WI)
					ne.sending.write(a.WS)
					receiving.move(a.MR)
					ne.internal.move(a.MI)
					ne.sending.move(a.MS)
					ne.state = a.Q
					steps++
					if sp := len(receiving.cells) + len(ne.internal.cells) + len(ne.sending.cells); sp > maxSpace {
						maxSpace = sp
					}
					if steps > opt.MaxSteps {
						return nil, fmt.Errorf("node %d round %d: %w", u, round, ErrStepLimit)
					}
				}
			}
			ne.steps = append(ne.steps, steps)
			ne.space = append(ne.space, maxSpace)

			// Phase 3: extract the first d messages from the sending tape.
			d := len(neighborOrder[u])
			msgs := splitMessages(ne.sending.content(), d)
			nextMsgs[u] = msgs
			if ne.state != Stop {
				allStopped = false
			}
		}
		prevMsgs = nextMsgs
		if allStopped {
			return m.finish(g, nodes, round), nil
		}
	}
	return nil, fmt.Errorf("dtm: execution did not terminate within %d rounds", opt.MaxRounds)
}

// splitMessages extracts the first d bit strings stored on the sending
// tape, using # as separator and ignoring blanks; missing messages default
// to the empty string.
func splitMessages(content string, d int) []string {
	msgs := make([]string, d)
	cur := 0
	var b strings.Builder
	for i := 0; i < len(content) && cur < d; i++ {
		switch content[i] {
		case Sep:
			msgs[cur] = b.String()
			b.Reset()
			cur++
		case Zero, One:
			b.WriteByte(content[i])
		default:
			// □ and stray symbols are ignored.
		}
	}
	if cur < d && b.Len() > 0 {
		msgs[cur] = b.String()
	}
	return msgs
}

func (m *Machine) finish(g *graph.Graph, nodes []*nodeExec, rounds int) *Exec {
	n := g.N()
	labels := make([]string, n)
	internals := make([]string, n)
	steps := make([][]int, n)
	space := make([][]int, n)
	for u := 0; u < n; u++ {
		content := nodes[u].internal.content()
		var b strings.Builder
		for i := 0; i < len(content); i++ {
			if content[i] == Zero || content[i] == One {
				b.WriteByte(content[i])
			}
		}
		labels[u] = b.String()
		internals[u] = content
		steps[u] = nodes[u].steps
		space[u] = nodes[u].space
	}
	result, err := g.WithLabels(labels)
	if err != nil {
		// Unreachable: labels are filtered to 0/1.
		panic(err)
	}
	return &Exec{Result: result, Rounds: rounds, Steps: steps, Space: space, Internals: internals}
}
