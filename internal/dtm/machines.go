package dtm

// This file contains hand-written distributed Turing machine programs used
// as reference implementations (Figure 8 experiments). They operate on the
// initial internal tape layout "label#id#certs" described in Section 4 and
// produce verdict labels "1" (accept) or "0"/"" (reject).

// act builds an Action that only manipulates the internal tape, leaving the
// receiving and sending tapes untouched (Any-writes are no-ops).
func act(q State, wi byte, mi Move) Action {
	return Action{Q: q, WR: Any, WI: wi, WS: Any, MR: Stay, MI: mi, MS: Stay}
}

// AllSelectedMachine returns a one-round LP-decider for the all-selected
// property: each node accepts iff its own label is exactly "1" (acceptance
// by unanimity then decides all-selected, cf. Remark 17).
//
// Plan: the head walks right from ⊢; cell 1 must hold '1' and cell 2 the
// separator '#'. On failure the machine writes '0' into cell 1. Either way
// it erases every cell to the right of the verdict so that the filtered
// (0/1-only) internal tape spells exactly "1" or "0".
func AllSelectedMachine() *Machine {
	const (
		chk1     = State(3) // at cell 1: expect '1'
		chk2     = State(4) // at cell 2: expect '#'
		failBack = State(5) // move back to cell 1 to write '0'
		erase    = State(6) // erase rightward until blank
	)
	m := NewMachine()
	// From the start state, step onto cell 1.
	m.Add(Start, Any, LeftEnd, Any, act(chk1, LeftEnd, Right))
	// chk1: '1' is promising; anything else means reject.
	m.Add(chk1, Any, One, Any, act(chk2, One, Right))
	m.Add(chk1, Any, Zero, Any, act(erase, Zero, Right)) // verdict 0 stays in cell 1
	m.Add(chk1, Any, Sep, Any, act(erase, Zero, Right))  // empty label: verdict 0
	// chk2: '#' confirms the label is exactly "1".
	m.Add(chk2, Any, Sep, Any, act(erase, Blank, Right))
	// A longer label ("10", "11", ...): back up and overwrite cell 1.
	m.Add(chk2, Any, Zero, Any, act(failBack, Zero, Left))
	m.Add(chk2, Any, One, Any, act(failBack, One, Left))
	m.Add(failBack, Any, Any, Any, act(erase, Zero, Right))
	// erase: blank out the rest of the tape, then stop.
	m.Add(erase, Any, Blank, Any, act(Stop, Blank, Stay))
	m.Add(erase, Any, Any, Any, act(erase, Blank, Right))
	return m
}

// AllEqualMachine returns a two-round LP-decider for the property "all
// nodes carry the same label": in round 1 each node broadcasts its label to
// every neighbor; in round 2 it compares each received message with its own
// label. Acceptance by unanimity then decides global label equality on
// connected graphs.
//
// Because the machine state resets to q_start every round, the round number
// is remembered on the internal tape: round 1 appends a third '#' marker
// after the initial "label#id#" content (the machine is meant to run
// without certificates).
func AllEqualMachine() *Machine {
	const (
		cnt0  = State(3)  // scanning label, before 1st '#'
		cnt1  = State(4)  // scanning id, before 2nd '#'
		cnt2  = State(5)  // after 2nd '#': blank = round 1, '#' = round 2
		rew1  = State(6)  // round 1: rewind internal before copying
		cpchk = State(7)  // round 1: one more neighbor to serve?
		cp    = State(8)  // round 1: copy label to sending tape
		rewi  = State(9)  // round 1: rewind internal between copies
		rew2  = State(10) // round 2: rewind internal before comparing
		cmp   = State(11) // round 2: compare receiving vs internal
		rewc  = State(12) // round 2: rewind internal between messages
		ckend = State(13) // round 2: more messages?
		acc   = State(14) // accept: rewind, erase, write 1
		era1  = State(15)
		bk1   = State(16)
		wr1   = State(17)
		rej   = State(18) // reject: rewind, erase, write 0
		era0  = State(19)
		bk0   = State(20)
		wr0   = State(21)
	)
	m := NewMachine()
	step := func(q State, wi byte, mi Move) Action { return act(q, wi, mi) }

	// --- Determine the round by counting '#'s on the internal tape. ---
	m.Add(Start, Any, LeftEnd, Any, step(cnt0, LeftEnd, Right))
	for _, b := range []byte{Zero, One} {
		m.Add(cnt0, Any, b, Any, step(cnt0, b, Right))
		m.Add(cnt1, Any, b, Any, step(cnt1, b, Right))
	}
	m.Add(cnt0, Any, Sep, Any, step(cnt1, Sep, Right))
	m.Add(cnt1, Any, Sep, Any, step(cnt2, Sep, Right))
	// Round 1: append the marker and go broadcast.
	m.Add(cnt2, Any, Blank, Any, step(rew1, Sep, Left))
	// Round 2: marker present; go compare.
	m.Add(cnt2, Any, Sep, Any, step(rew2, Sep, Left))

	// --- Round 1: copy the label to the sending tape once per neighbor.
	// The receiving tape holds "#"^d, so each '#' consumed = one neighbor.
	m.Add(rew1, Any, LeftEnd, Any, Action{Q: cpchk, WR: LeftEnd, WI: LeftEnd, WS: LeftEnd, MR: Right, MI: Right, MS: Right})
	for _, b := range []byte{Zero, One, Sep} {
		m.Add(rew1, Any, b, Any, step(rew1, b, Left))
	}
	m.Add(cpchk, Sep, Any, Any, step(cp, Any, Stay))
	m.Add(cpchk, Blank, Any, Any, step(Pause, Any, Stay))
	// cp copies internal label bits to the sending tape until '#'.
	for _, b := range []byte{Zero, One} {
		m.Add(cp, Any, b, Any, Action{Q: cp, WR: Sep, WI: b, WS: b, MR: Stay, MI: Right, MS: Right})
	}
	// End of label: emit '#', consume one receiving '#', rewind internal.
	m.Add(cp, Any, Sep, Any, Action{Q: rewi, WR: Sep, WI: Sep, WS: Sep, MR: Right, MI: Left, MS: Right})
	for _, b := range []byte{Zero, One} {
		m.Add(rewi, Any, b, Any, step(rewi, b, Left))
	}
	m.Add(rewi, Any, LeftEnd, Any, step(cpchk, LeftEnd, Right))

	// --- Round 2: compare each message against the label. ---
	m.Add(rew2, Any, LeftEnd, Any, Action{Q: cmp, WR: LeftEnd, WI: LeftEnd, WS: LeftEnd, MR: Right, MI: Right, MS: Stay})
	for _, b := range []byte{Zero, One, Sep} {
		m.Add(rew2, Any, b, Any, step(rew2, b, Left))
	}
	// Matching symbols advance both heads.
	for _, b := range []byte{Zero, One} {
		m.Add(cmp, b, b, Any, Action{Q: cmp, WR: b, WI: b, WS: LeftEnd, MR: Right, MI: Right, MS: Stay})
	}
	// Both at '#': message matches the whole label.
	m.Add(cmp, Sep, Sep, Any, Action{Q: rewc, WR: Sep, WI: Sep, WS: LeftEnd, MR: Right, MI: Left, MS: Stay})
	// No messages left at all (degree 0, or after ckend loops): accept.
	m.Add(cmp, Blank, Any, Any, step(acc, Any, Stay))
	// Any other combination is a mismatch.
	m.Add(cmp, Any, Any, Any, step(rej, Any, Stay))
	for _, b := range []byte{Zero, One} {
		m.Add(rewc, Any, b, Any, step(rewc, b, Left))
	}
	m.Add(rewc, Any, LeftEnd, Any, step(ckend, LeftEnd, Right))
	m.Add(ckend, Blank, Any, Any, step(acc, Any, Stay))
	m.Add(ckend, Any, Any, Any, step(cmp, Any, Stay))

	// --- Verdict writing: rewind, erase everything, write 1/0 in cell 1.
	addVerdict := func(entry, era, bk, wr State, verdict byte) {
		for _, b := range []byte{Zero, One, Sep} {
			m.Add(entry, Any, b, Any, step(entry, b, Left))
		}
		m.Add(entry, Any, Blank, Any, step(entry, Blank, Left))
		m.Add(entry, Any, LeftEnd, Any, step(era, LeftEnd, Right))
		m.Add(era, Any, Blank, Any, step(bk, Blank, Left))
		m.Add(era, Any, Any, Any, step(era, Blank, Right))
		m.Add(bk, Any, LeftEnd, Any, step(wr, LeftEnd, Right))
		m.Add(bk, Any, Any, Any, step(bk, Blank, Left))
		m.Add(wr, Any, Any, Any, step(Stop, verdict, Stay))
	}
	addVerdict(acc, era1, bk1, wr1, One)
	addVerdict(rej, era0, bk0, wr0, Zero)
	return m
}
