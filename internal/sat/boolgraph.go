package sat

import (
	"fmt"
	"strconv"

	"repro/internal/graph"
)

// BooleanGraph pairs a labeled graph with the decoded Boolean formula of
// each node (Section 8: "a Boolean graph is a graph whose nodes are labeled
// with (encodings of) Boolean formulas").
type BooleanGraph struct {
	G        *graph.Graph
	Formulas []Formula
}

// NewBooleanGraph builds a Boolean graph from per-node formulas on the
// topology of g. The labels of the returned graph's underlying Graph are
// the bit-string encodings of the formulas.
func NewBooleanGraph(g *graph.Graph, formulas []Formula) (*BooleanGraph, error) {
	if len(formulas) != g.N() {
		return nil, fmt.Errorf("sat: %d formulas for %d nodes", len(formulas), g.N())
	}
	labels := make([]string, g.N())
	for u, f := range formulas {
		labels[u] = EncodeLabel(f)
	}
	lg, err := g.WithLabels(labels)
	if err != nil {
		return nil, err
	}
	return &BooleanGraph{G: lg, Formulas: append([]Formula(nil), formulas...)}, nil
}

// DecodeBooleanGraph decodes the labels of g into formulas.
func DecodeBooleanGraph(g *graph.Graph) (*BooleanGraph, error) {
	formulas := make([]Formula, g.N())
	for u := 0; u < g.N(); u++ {
		f, err := DecodeLabel(g.Label(u))
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", u, err)
		}
		formulas[u] = f
	}
	return &BooleanGraph{G: g, Formulas: formulas}, nil
}

// nodeVar gives the joint-CNF name of Boolean variable name at node u.
func nodeVar(u int, name string) string {
	return "n" + strconv.Itoa(u) + "_" + name
}

// JointCNF builds a single CNF that is satisfiable if and only if the
// Boolean graph is satisfiable per Section 8: there is a per-node valuation
// val(u) satisfying each node's formula such that adjacent nodes agree on
// every variable they share.
//
// Variables are instantiated per node; equivalence clauses tie shared
// variables of adjacent nodes together. Tseytin auxiliaries are per-node
// and never shared.
func (bg *BooleanGraph) JointCNF() CNF {
	var out CNF
	vars := make([]map[string]bool, bg.G.N())
	for u, f := range bg.Formulas {
		vars[u] = make(map[string]bool)
		f.CollectVars(vars[u])
		cnf := Tseytin(f, fmt.Sprintf("_aux%d_", u))
		for _, cl := range cnf {
			ncl := make(Clause, len(cl))
			for i, l := range cl {
				name := l.Name
				if vars[u][name] {
					name = nodeVar(u, name)
				}
				ncl[i] = Literal{Name: name, Neg: l.Neg}
			}
			out = append(out, ncl)
		}
	}
	for _, e := range bg.G.Edges() {
		for name := range vars[e.U] {
			if !vars[e.V][name] {
				continue
			}
			a := Literal{Name: nodeVar(e.U, name)}
			b := Literal{Name: nodeVar(e.V, name)}
			out = append(out,
				Clause{Literal{Name: a.Name, Neg: true}, b},
				Clause{a, Literal{Name: b.Name, Neg: true}})
		}
	}
	return out
}

// Satisfiable decides the sat-graph property for the Boolean graph.
func (bg *BooleanGraph) Satisfiable() bool {
	return Solve(bg.JointCNF())
}

// Valuations returns per-node satisfying valuations (restricted to each
// node's own variables) if the Boolean graph is satisfiable.
func (bg *BooleanGraph) Valuations() ([]map[string]bool, bool) {
	model, ok := SolveModel(bg.JointCNF())
	if !ok {
		return nil, false
	}
	out := make([]map[string]bool, bg.G.N())
	for u, f := range bg.Formulas {
		out[u] = make(map[string]bool)
		for _, v := range Vars(f) {
			out[u][v] = model[nodeVar(u, v)]
		}
	}
	return out, true
}

// CheckValuations verifies the Section 8 conditions for a candidate family
// of per-node valuations: each valuation satisfies its node's formula, and
// adjacent nodes agree on shared variables. It is the specification against
// which Valuations and the distributed verifier are tested.
func (bg *BooleanGraph) CheckValuations(vals []map[string]bool) bool {
	if len(vals) != bg.G.N() {
		return false
	}
	for u, f := range bg.Formulas {
		if !f.Eval(vals[u]) {
			return false
		}
	}
	for _, e := range bg.G.Edges() {
		uVars := make(map[string]bool)
		bg.Formulas[e.U].CollectVars(uVars)
		vVars := make(map[string]bool)
		bg.Formulas[e.V].CollectVars(vVars)
		for name := range uVars {
			if vVars[name] && vals[e.U][name] != vals[e.V][name] {
				return false
			}
		}
	}
	return true
}
