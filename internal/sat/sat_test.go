package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestParseRoundTrip(t *testing.T) {
	t.Parallel()
	inputs := []string{
		"P1",
		"~P1",
		"P1|~P2|~P3",
		"(P1|P2)&(~P1|P3)",
		"T",
		"F",
		"~(A&B)|C",
	}
	for _, in := range inputs {
		f, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse(%q from %q): %v", f.String(), in, err)
		}
		// Semantic round trip over all valuations of <= 3 vars.
		vars := Vars(f)
		if len(vars) > 5 {
			t.Fatal("test formula too wide")
		}
		forAllValuations(vars, func(val map[string]bool) {
			if f.Eval(val) != g.Eval(val) {
				t.Fatalf("round trip changed semantics of %q at %v", in, val)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	for _, in := range []string{"", "P1|", "(P1", "P1)", "1P", "P1 P2", "&P"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func forAllValuations(vars []string, f func(map[string]bool)) {
	n := len(vars)
	for mask := 0; mask < 1<<uint(n); mask++ {
		val := make(map[string]bool, n)
		for i, v := range vars {
			val[v] = mask&(1<<uint(i)) != 0
		}
		f(val)
	}
}

func TestEncodeDecodeLabel(t *testing.T) {
	t.Parallel()
	f := MustParse("(P1|~P2)&P3")
	label := EncodeLabel(f)
	if !graph.IsBitString(label) {
		t.Fatal("label is not a bit string")
	}
	g, err := DecodeLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != f.String() {
		t.Fatalf("decode mismatch: %q vs %q", g.String(), f.String())
	}
}

func TestDecodeLabelErrors(t *testing.T) {
	t.Parallel()
	if _, err := DecodeLabel("0101010"); err == nil {
		t.Fatal("odd-length label accepted")
	}
}

func TestTseytinEquisatisfiable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   string
		want bool
	}{
		{"P1", true},
		{"P1&~P1", false},
		{"(P1|P2)&(~P1|P2)&(P1|~P2)&(~P1|~P2)", false},
		{"(P1|P2)&(~P1|P2)", true},
		{"F", false},
		{"T", true},
		{"~(A|B)&A", false},
		{"~(A&B)|(A&B)", true},
	}
	for _, tt := range cases {
		cnf := Tseytin(MustParse(tt.in), "x_")
		if got := Solve(cnf); got != tt.want {
			t.Errorf("Solve(Tseytin(%q)) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestTseytinAgainstBruteForce checks equisatisfiability on random formulas.
func TestTseytinAgainstBruteForce(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		f := randomFormula(rng, 3, 4)
		want := bruteForceSat(f)
		if got := Satisfiable(f); got != want {
			t.Fatalf("Satisfiable(%v) = %v, want %v", f, got, want)
		}
		if model, ok := SatisfiableModel(f); ok {
			if !f.Eval(model) {
				t.Fatalf("model %v does not satisfy %v", model, f)
			}
		} else if want {
			t.Fatalf("no model for satisfiable %v", f)
		}
	}
}

func bruteForceSat(f Formula) bool {
	sat := false
	forAllValuations(Vars(f), func(val map[string]bool) {
		if f.Eval(val) {
			sat = true
		}
	})
	return sat
}

func randomFormula(rng *rand.Rand, depth, nvars int) Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		v := Var("P" + string(rune('0'+rng.Intn(nvars))))
		if rng.Intn(2) == 0 {
			return Not{F: v}
		}
		return v
	}
	k := 1 + rng.Intn(3)
	parts := make([]Formula, k)
	for i := range parts {
		parts[i] = randomFormula(rng, depth-1, nvars)
	}
	if rng.Intn(2) == 0 {
		return And(parts)
	}
	return Or(parts)
}

func TestTo3CNF(t *testing.T) {
	t.Parallel()
	wide := CNF{{
		{Name: "A"}, {Name: "B"}, {Name: "C"}, {Name: "D"}, {Name: "E"},
	}}
	three := To3CNF(wide, "y_")
	if three.MaxClauseWidth() > 3 {
		t.Fatalf("To3CNF left a clause of width %d", three.MaxClauseWidth())
	}
	if Solve(wide) != Solve(three) {
		t.Fatal("To3CNF changed satisfiability")
	}
	// Unsatisfiable wide case: a wide clause of a single repeated variable
	// negated elsewhere.
	c := CNF{
		{{Name: "A"}, {Name: "A"}, {Name: "A"}, {Name: "A"}},
		{{Name: "A", Neg: true}},
	}
	if Solve(To3CNF(c, "z_")) != false {
		t.Fatal("To3CNF lost unsatisfiability")
	}
}

func TestTo3CNFRandomEquisat(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		f := randomFormula(rng, 3, 5)
		cnf := Tseytin(f, "t_")
		three := To3CNF(cnf, "u_")
		if three.MaxClauseWidth() > 3 {
			t.Fatal("clause too wide")
		}
		if Solve(cnf) != Solve(three) {
			t.Fatalf("3-CNF conversion changed satisfiability for %v", f)
		}
	}
}

func TestDPLLProperty(t *testing.T) {
	t.Parallel()
	// Property: for random small CNFs, DPLL agrees with brute force.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cnf CNF
		nv := 1 + rng.Intn(4)
		for i := 0; i < 1+rng.Intn(6); i++ {
			var cl Clause
			for j := 0; j <= rng.Intn(3); j++ {
				cl = append(cl, Literal{
					Name: "V" + string(rune('0'+rng.Intn(nv))),
					Neg:  rng.Intn(2) == 0,
				})
			}
			cnf = append(cnf, cl)
		}
		want := false
		forAllValuations(cnf.Vars(), func(val map[string]bool) {
			if cnf.Eval(val) {
				want = true
			}
		})
		return Solve(cnf) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanGraphPaperExample(t *testing.T) {
	t.Parallel()
	// The Figure 4 example: u labeled P1|~P2|~P3, v labeled P3|P4|~P5,
	// adjacent. Shared variable P3 must agree; the graph is satisfiable.
	g := graph.Path(2)
	bg, err := NewBooleanGraph(g, []Formula{
		MustParse("P1|~P2|~P3"),
		MustParse("P3|P4|~P5"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bg.Satisfiable() {
		t.Fatal("Figure 4 Boolean graph should be satisfiable")
	}
	vals, ok := bg.Valuations()
	if !ok || !bg.CheckValuations(vals) {
		t.Fatal("returned valuations are invalid")
	}
}

func TestBooleanGraphSharedVariableConflict(t *testing.T) {
	t.Parallel()
	// u forces P true, v forces P false; adjacency makes it unsatisfiable.
	g := graph.Path(2)
	bg, err := NewBooleanGraph(g, []Formula{MustParse("P"), MustParse("~P")})
	if err != nil {
		t.Fatal(err)
	}
	if bg.Satisfiable() {
		t.Fatal("conflicting shared variable should be unsatisfiable")
	}
	// On a path of length 3 with the conflicting nodes NOT adjacent but
	// linked through a middle node that also mentions P, consistency
	// propagates and it stays unsatisfiable.
	g3 := graph.Path(3)
	bg3, err := NewBooleanGraph(g3, []Formula{
		MustParse("P"), MustParse("P|~P"), MustParse("~P"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if bg3.Satisfiable() {
		t.Fatal("conflict through middle node sharing P should propagate")
	}
	// But if the middle node does not mention P, the endpoints may
	// disagree: consistency is only required between adjacent nodes.
	bgFree, err := NewBooleanGraph(g3, []Formula{
		MustParse("P"), MustParse("Q|~Q"), MustParse("~P"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bgFree.Satisfiable() {
		t.Fatal("non-adjacent nodes need not agree on P")
	}
}

func TestBooleanGraphDecode(t *testing.T) {
	t.Parallel()
	g := graph.Path(2)
	orig, err := NewBooleanGraph(g, []Formula{MustParse("A&B"), MustParse("~A")})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBooleanGraph(orig.G)
	if err != nil {
		t.Fatal(err)
	}
	for u := range dec.Formulas {
		if dec.Formulas[u].String() != orig.Formulas[u].String() {
			t.Fatal("decode mismatch")
		}
	}
	if dec.Satisfiable() {
		t.Fatal("A&B with adjacent ~A is unsatisfiable")
	}
}

func TestBooleanGraphRandomAgainstBruteForce(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		g := graph.RandomConnected(n, 0.5, rng)
		formulas := make([]Formula, n)
		for u := range formulas {
			formulas[u] = randomFormula(rng, 2, 3)
		}
		bg, err := NewBooleanGraph(g, formulas)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceBooleanGraph(bg)
		if got := bg.Satisfiable(); got != want {
			t.Fatalf("trial %d: Satisfiable = %v, want %v (graph %v)", trial, got, want, g)
		}
	}
}

// bruteForceBooleanGraph enumerates all per-node valuations.
func bruteForceBooleanGraph(bg *BooleanGraph) bool {
	n := bg.G.N()
	varsOf := make([][]string, n)
	total := 0
	for u, f := range bg.Formulas {
		varsOf[u] = Vars(f)
		total += len(varsOf[u])
	}
	vals := make([]map[string]bool, n)
	var rec func(u int) bool
	rec = func(u int) bool {
		if u == n {
			return bg.CheckValuations(vals)
		}
		ok := false
		forAllValuations(varsOf[u], func(val map[string]bool) {
			if ok {
				return
			}
			vals[u] = val
			if rec(u + 1) {
				ok = true
			}
		})
		return ok
	}
	return rec(0)
}

func TestCNFFormulaRoundTrip(t *testing.T) {
	t.Parallel()
	cnf := CNF{
		{{Name: "A"}, {Name: "B", Neg: true}},
		{{Name: "C"}},
	}
	f := cnf.Formula()
	forAllValuations([]string{"A", "B", "C"}, func(val map[string]bool) {
		if cnf.Eval(val) != f.Eval(val) {
			t.Fatal("CNF.Formula changed semantics")
		}
	})
	if !strings.Contains(f.String(), "~B") {
		t.Fatal("negation lost in Formula()")
	}
}

// TestSimplifyPreservesSemantics: constant folding must be an equivalence.
func TestSimplifyPreservesSemantics(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(41))
	mix := func(f Formula) Formula {
		// Inject constants at random positions.
		switch g := f.(type) {
		case And:
			return And(append(append(Or{}, g...), Const(true)))
		case Or:
			return Or(append(append(Or{}, g...), Const(false)))
		default:
			return f
		}
	}
	for trial := 0; trial < 150; trial++ {
		f := mix(randomFormula(rng, 3, 3))
		s := Simplify(f)
		forAllValuations(Vars(f), func(val map[string]bool) {
			if f.Eval(val) != s.Eval(val) {
				t.Fatalf("Simplify changed semantics of %v -> %v at %v", f, s, val)
			}
		})
	}
	// Folding identities.
	if Simplify(And{Const(true), Const(true)}).String() != "T" {
		t.Fatal("⊤∧⊤ should fold")
	}
	if Simplify(Or{Const(false), Var("A")}).String() != "A" {
		t.Fatal("⊥∨A should fold to A")
	}
	if Simplify(Not{F: Not{F: Var("A")}}).String() != "A" {
		t.Fatal("double negation should fold")
	}
	if Simplify(And{Var("A"), Const(false)}).String() != "F" {
		t.Fatal("A∧⊥ should fold to ⊥")
	}
}
