package sat

import (
	"fmt"
	"sort"
)

// Literal is a possibly negated variable.
type Literal struct {
	Name string
	Neg  bool
}

// String renders the literal, e.g. "~P1".
func (l Literal) String() string {
	if l.Neg {
		return "~" + l.Name
	}
	return l.Name
}

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses.
type CNF []Clause

// Formula converts the CNF back into a Formula value.
func (c CNF) Formula() Formula {
	and := make(And, 0, len(c))
	for _, cl := range c {
		or := make(Or, 0, len(cl))
		for _, l := range cl {
			if l.Neg {
				or = append(or, Not{F: Var(l.Name)})
			} else {
				or = append(or, Var(l.Name))
			}
		}
		and = append(and, or)
	}
	return and
}

// Vars returns the sorted variable names of the CNF.
func (c CNF) Vars() []string {
	set := make(map[string]bool)
	for _, cl := range c {
		for _, l := range cl {
			set[l.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates the CNF under a valuation (missing variables are false).
func (c CNF) Eval(val map[string]bool) bool {
	for _, cl := range c {
		sat := false
		for _, l := range cl {
			if val[l.Name] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// MaxClauseWidth returns the size of the largest clause (0 for empty CNF).
func (c CNF) MaxClauseWidth() int {
	w := 0
	for _, cl := range c {
		if len(cl) > w {
			w = len(cl)
		}
	}
	return w
}

// Tseytin converts an arbitrary formula into an equisatisfiable CNF using
// the Tseytin transformation. Auxiliary variables are named
// auxPrefix + "0", auxPrefix + "1", ... and must not clash with the
// formula's own variables (the caller chooses a fresh prefix; in the
// sat-graph → 3-sat-graph reduction of Theorem 23, the prefix embeds the
// node's locally unique identifier).
//
// Every satisfying valuation of f extends to one of the CNF, and every
// satisfying valuation of the CNF restricts to one of f.
func Tseytin(f Formula, auxPrefix string) CNF {
	t := &tseytin{prefix: auxPrefix}
	root := t.lit(f)
	t.cnf = append(t.cnf, Clause{root})
	return t.cnf
}

type tseytin struct {
	prefix string
	next   int
	cnf    CNF
}

func (t *tseytin) fresh() string {
	name := fmt.Sprintf("%s%d", t.prefix, t.next)
	t.next++
	return name
}

// lit returns a literal equivalent to f, adding defining clauses.
func (t *tseytin) lit(f Formula) Literal {
	switch g := f.(type) {
	case Var:
		return Literal{Name: string(g)}
	case Const:
		// Represent constants with a fresh forced variable.
		v := t.fresh()
		t.cnf = append(t.cnf, Clause{Literal{Name: v, Neg: !bool(g)}})
		return Literal{Name: v}
	case Not:
		l := t.lit(g.F)
		return Literal{Name: l.Name, Neg: !l.Neg}
	case And:
		if len(g) == 0 {
			return t.lit(Const(true))
		}
		lits := make([]Literal, len(g))
		for i, sub := range g {
			lits[i] = t.lit(sub)
		}
		v := t.fresh()
		pos := Literal{Name: v}
		neg := Literal{Name: v, Neg: true}
		// v -> each lit ; all lits -> v.
		back := Clause{pos}
		for _, l := range lits {
			t.cnf = append(t.cnf, Clause{neg, l})
			back = append(back, Literal{Name: l.Name, Neg: !l.Neg})
		}
		t.cnf = append(t.cnf, back)
		return pos
	case Or:
		if len(g) == 0 {
			return t.lit(Const(false))
		}
		lits := make([]Literal, len(g))
		for i, sub := range g {
			lits[i] = t.lit(sub)
		}
		v := t.fresh()
		pos := Literal{Name: v}
		neg := Literal{Name: v, Neg: true}
		// v -> some lit ; each lit -> v.
		fwd := Clause{neg}
		for _, l := range lits {
			fwd = append(fwd, l)
			t.cnf = append(t.cnf, Clause{pos, Literal{Name: l.Name, Neg: !l.Neg}})
		}
		t.cnf = append(t.cnf, fwd)
		return pos
	default:
		panic(fmt.Sprintf("sat: unknown formula type %T", f))
	}
}

// To3CNF splits clauses wider than 3 using chained auxiliary variables
// (auxPrefix + "s0", ...), yielding an equisatisfiable CNF whose clauses
// have at most three literals.
func To3CNF(c CNF, auxPrefix string) CNF {
	var out CNF
	next := 0
	fresh := func() Literal {
		l := Literal{Name: fmt.Sprintf("%ss%d", auxPrefix, next)}
		next++
		return l
	}
	for _, cl := range c {
		for len(cl) > 3 {
			s := fresh()
			out = append(out, Clause{cl[0], cl[1], s})
			rest := make(Clause, 0, len(cl)-1)
			rest = append(rest, Literal{Name: s.Name, Neg: true})
			rest = append(rest, cl[2:]...)
			cl = rest
		}
		out = append(out, append(Clause(nil), cl...))
	}
	return out
}

// Solve reports whether the CNF is satisfiable, using DPLL with unit
// propagation and pure-literal elimination.
func Solve(c CNF) bool {
	_, ok := SolveModel(c)
	return ok
}

// SolveModel returns a satisfying valuation if one exists.
func SolveModel(c CNF) (map[string]bool, bool) {
	names := c.Vars()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	clauses := make([][]int, 0, len(c))
	for _, cl := range c {
		ints := make([]int, 0, len(cl))
		for _, l := range cl {
			v := index[l.Name] + 1
			if l.Neg {
				v = -v
			}
			ints = append(ints, v)
		}
		clauses = append(clauses, ints)
	}
	asn := make([]int8, len(names)+1) // 0 unknown, 1 true, -1 false
	if !dpll(clauses, asn) {
		return nil, false
	}
	model := make(map[string]bool, len(names))
	for i, n := range names {
		model[n] = asn[i+1] == 1
	}
	return model, true
}

func dpll(clauses [][]int, asn []int8) bool {
	// Unit propagation loop. After it settles, `branch` holds a variable
	// from a shortest unsatisfied clause — branching there maximizes the
	// chance of immediate further propagation.
	var trail []int
	undo := func() {
		for _, v := range trail {
			asn[v] = 0
		}
	}
	branch := 0
	for {
		unit := 0
		allSat := true
		branch = 0
		best := int(^uint(0) >> 1)
		for _, cl := range clauses {
			sat := false
			unassigned := 0
			var last int
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				switch {
				case asn[v] == 0:
					unassigned++
					last = l
				case (asn[v] == 1) == (l > 0):
					sat = true
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			allSat = false
			if unassigned == 0 {
				undo()
				return false // conflict
			}
			if unassigned == 1 {
				unit = last
				break
			}
			if unassigned < best {
				best = unassigned
				branch = last // keep the sign: the first branch satisfies this clause
			}
		}
		if allSat {
			return true
		}
		if unit == 0 {
			break
		}
		v := unit
		val := int8(1)
		if v < 0 {
			v = -v
			val = -1
		}
		asn[v] = val
		trail = append(trail, v)
	}
	if branch == 0 {
		// All assigned but not all clauses satisfied: conflict.
		undo()
		return false
	}
	v := branch
	first := int8(1)
	if v < 0 {
		v = -v
		first = -1
	}
	for _, val := range []int8{first, -first} {
		asn[v] = val
		if dpll(clauses, asn) {
			return true
		}
		asn[v] = 0
	}
	undo()
	return false
}

// Satisfiable reports whether the formula f is satisfiable.
func Satisfiable(f Formula) bool {
	return Solve(Tseytin(f, "_t"))
}

// SatisfiableModel returns a satisfying valuation of f restricted to f's
// own variables, if one exists.
func SatisfiableModel(f Formula) (map[string]bool, bool) {
	model, ok := SolveModel(Tseytin(f, "_t"))
	if !ok {
		return nil, false
	}
	out := make(map[string]bool)
	for _, v := range Vars(f) {
		out[v] = model[v]
	}
	return out, true
}
