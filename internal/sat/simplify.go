package sat

// Simplify performs constant folding and flattening on a formula:
// ⊤/⊥ are propagated through ¬, ∧, ∨; nested conjunctions/disjunctions
// are flattened; empty connectives collapse to their units. The result is
// logically equivalent to the input.
//
// The τ-translation of Theorem 22 (package reduce) produces formulas in
// which most atoms are truth constants (the first-order part of the
// sentence evaluated on the concrete structure); folding them keeps the
// downstream Tseytin/gadget constructions small.
func Simplify(f Formula) Formula {
	switch g := f.(type) {
	case Var, Const:
		return g
	case Not:
		sub := Simplify(g.F)
		if c, ok := sub.(Const); ok {
			return Const(!bool(c))
		}
		if n, ok := sub.(Not); ok {
			return n.F // double negation
		}
		return Not{F: sub}
	case And:
		var parts []Formula
		for _, sub := range g {
			s := Simplify(sub)
			switch t := s.(type) {
			case Const:
				if !bool(t) {
					return Const(false)
				}
				// drop ⊤
			case And:
				parts = append(parts, t...)
			default:
				parts = append(parts, s)
			}
		}
		switch len(parts) {
		case 0:
			return Const(true)
		case 1:
			return parts[0]
		}
		return And(parts)
	case Or:
		var parts []Formula
		for _, sub := range g {
			s := Simplify(sub)
			switch t := s.(type) {
			case Const:
				if bool(t) {
					return Const(true)
				}
				// drop ⊥
			case Or:
				parts = append(parts, t...)
			default:
				parts = append(parts, s)
			}
		}
		switch len(parts) {
		case 0:
			return Const(false)
		case 1:
			return parts[0]
		}
		return Or(parts)
	default:
		return f
	}
}
