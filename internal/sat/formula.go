// Package sat implements Boolean formulas, a DPLL satisfiability solver,
// the Tseytin 3-CNF transformation, and the Boolean graphs of Section 8 of
// the paper (the sat-graph property generalizing SAT to the LOCAL setting).
package sat

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Formula is a Boolean formula over named variables.
type Formula interface {
	// Eval evaluates the formula under the given valuation; variables
	// absent from the map are treated as false.
	Eval(val map[string]bool) bool
	// CollectVars adds the variable names occurring in the formula to set.
	CollectVars(set map[string]bool)
	fmt.Stringer
}

// Var is a propositional variable.
type Var string

// Not negates a formula.
type Not struct{ F Formula }

// And is a conjunction (empty = true).
type And []Formula

// Or is a disjunction (empty = false).
type Or []Formula

// Const is a truth constant.
type Const bool

// Eval implements Formula.
func (v Var) Eval(val map[string]bool) bool { return val[string(v)] }

// Eval implements Formula.
func (n Not) Eval(val map[string]bool) bool { return !n.F.Eval(val) }

// Eval implements Formula.
func (a And) Eval(val map[string]bool) bool {
	for _, f := range a {
		if !f.Eval(val) {
			return false
		}
	}
	return true
}

// Eval implements Formula.
func (o Or) Eval(val map[string]bool) bool {
	for _, f := range o {
		if f.Eval(val) {
			return true
		}
	}
	return false
}

// Eval implements Formula.
func (c Const) Eval(map[string]bool) bool { return bool(c) }

// CollectVars implements Formula.
func (v Var) CollectVars(set map[string]bool) { set[string(v)] = true }

// CollectVars implements Formula.
func (n Not) CollectVars(set map[string]bool) { n.F.CollectVars(set) }

// CollectVars implements Formula.
func (a And) CollectVars(set map[string]bool) {
	for _, f := range a {
		f.CollectVars(set)
	}
}

// CollectVars implements Formula.
func (o Or) CollectVars(set map[string]bool) {
	for _, f := range o {
		f.CollectVars(set)
	}
}

// CollectVars implements Formula.
func (c Const) CollectVars(map[string]bool) {}

func (v Var) String() string { return string(v) }
func (n Not) String() string { return "~" + parenthesize(n.F) }
func (a And) String() string {
	if len(a) == 0 {
		return "T"
	}
	parts := make([]string, len(a))
	for i, f := range a {
		parts[i] = parenthesize(f)
	}
	return strings.Join(parts, "&")
}
func (o Or) String() string {
	if len(o) == 0 {
		return "F"
	}
	parts := make([]string, len(o))
	for i, f := range o {
		parts[i] = parenthesize(f)
	}
	return strings.Join(parts, "|")
}
func (c Const) String() string {
	if c {
		return "T"
	}
	return "F"
}

func parenthesize(f Formula) string {
	switch f.(type) {
	case Var, Const, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Vars returns the sorted variable names occurring in f.
func Vars(f Formula) []string {
	set := make(map[string]bool)
	f.CollectVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ErrParse is returned for malformed formula text.
var ErrParse = errors.New("sat: parse error")

// Parse parses a formula in the syntax
//
//	formula := or
//	or      := and ('|' and)*
//	and     := unary ('&' unary)*
//	unary   := '~' unary | '(' formula ')' | 'T' | 'F' | variable
//	variable: [A-Za-z_][A-Za-z0-9_]* except the reserved T and F
//
// Whitespace is ignored.
func Parse(s string) (Formula, error) {
	p := &parser{in: s}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input at %d in %q", ErrParse, p.pos, s)
	}
	return f, nil
}

// MustParse is Parse but panics on error; for fixtures.
func MustParse(s string) Formula {
	f, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) parseOr() (Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Formula{f}
	for p.peek() == '|' {
		p.pos++
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, g)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Or(parts), nil
}

func (p *parser) parseAnd() (Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []Formula{f}
	for p.peek() == '&' {
		p.pos++
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, g)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return And(parts), nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch c := p.peek(); {
	case c == '~':
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case c == '(':
		p.pos++
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("%w: missing ')' at %d in %q", ErrParse, p.pos, p.in)
		}
		p.pos++
		return f, nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.in) && isIdentPart(p.in[p.pos]) {
			p.pos++
		}
		name := p.in[start:p.pos]
		switch name {
		case "T":
			return Const(true), nil
		case "F":
			return Const(false), nil
		}
		return Var(name), nil
	default:
		return nil, fmt.Errorf("%w: unexpected %q at %d in %q", ErrParse, string(c), p.pos, p.in)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// EncodeLabel encodes a formula's text as a bit string (8 bits per ASCII
// byte, MSB first), suitable for use as a node label of a Boolean graph.
func EncodeLabel(f Formula) string {
	text := f.String()
	var b strings.Builder
	b.Grow(8 * len(text))
	for i := 0; i < len(text); i++ {
		c := text[i]
		for bit := 7; bit >= 0; bit-- {
			if c&(1<<uint(bit)) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// DecodeLabel decodes a bit-string node label back into a formula.
func DecodeLabel(label string) (Formula, error) {
	if len(label)%8 != 0 {
		return nil, fmt.Errorf("%w: label length %d not a multiple of 8", ErrParse, len(label))
	}
	text := make([]byte, 0, len(label)/8)
	for i := 0; i < len(label); i += 8 {
		var c byte
		for j := 0; j < 8; j++ {
			c <<= 1
			switch label[i+j] {
			case '1':
				c |= 1
			case '0':
			default:
				return nil, fmt.Errorf("%w: label is not a bit string", ErrParse)
			}
		}
		text = append(text, c)
	}
	return Parse(string(text))
}
