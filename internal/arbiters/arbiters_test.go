package arbiters

import (
	"math/rand"
	"testing"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/sat"
	"repro/internal/simulate"
)

func decide(t *testing.T, m *simulate.Machine, g *graph.Graph) bool {
	t.Helper()
	ok, err := simulate.Decide(m, g, graph.SmallLocallyUnique(g, 1), simulate.Options{})
	if err != nil {
		t.Fatalf("%s on %v: %v", m.Name, g, err)
	}
	return ok
}

func TestAllSelectedDecider(t *testing.T) {
	t.Parallel()
	m := AllSelected()
	for mask := uint(0); mask < 16; mask++ {
		g := graph.Path(4).MustWithLabels(graph.BitLabels(4, mask))
		if decide(t, m, g) != props.AllSelected(g) {
			t.Fatalf("mismatch on mask %b", mask)
		}
	}
}

func TestEulerianDecider(t *testing.T) {
	t.Parallel()
	m := Eulerian()
	graphs := []*graph.Graph{
		graph.Cycle(4), graph.Cycle(5), graph.Path(3), graph.Complete(5),
		graph.Complete(4), graph.Star(4), graph.Single(""),
	}
	for _, g := range graphs {
		if decide(t, m, g) != props.Eulerian(g) {
			t.Fatalf("mismatch on %v", g)
		}
	}
}

func TestAllEqualDecider(t *testing.T) {
	t.Parallel()
	m := AllEqual()
	eq := graph.Cycle(4).MustWithLabels([]string{"01", "01", "01", "01"})
	ne := graph.Cycle(4).MustWithLabels([]string{"01", "01", "11", "01"})
	if !decide(t, m, eq) || decide(t, m, ne) {
		t.Fatal("AllEqual wrong")
	}
}

// runNLP evaluates the Σ^lp_1 game with Eve's strategy.
func runNLP(t *testing.T, m *simulate.Machine, strat core.Strategy, g *graph.Graph) bool {
	t.Helper()
	arb := &core.Arbiter{
		Machine:  m,
		Level:    core.Sigma(1),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{0, 4}},
	}
	id := graph.SmallLocallyUnique(g, 1)
	ok, err := arb.StrategyGameValue(g, id, []core.Strategy{strat}, []cert.Domain{{}})
	if err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	return ok
}

// TestColoringVerifiers: the NLP machines accept with Eve's coloring
// certificates exactly on k-colorable instances. Soundness (rejecting
// every certificate on no-instances) is checked exhaustively for k=2.
func TestColoringVerifiers(t *testing.T) {
	t.Parallel()
	graphs := []*graph.Graph{
		graph.Cycle(4), graph.Cycle(5), graph.Complete(3), graph.Complete(4),
		graph.Star(4), graph.Path(4), graph.Grid(2, 3),
	}
	for _, g := range graphs {
		for k := 2; k <= 4; k++ {
			want := props.KColorable(g, k)
			got := runNLP(t, KColorable(k), ColoringStrategy(k), g)
			if got != want {
				t.Fatalf("%d-colorable on %v: got %v, want %v", k, g, got, want)
			}
		}
	}
}

// TestTwoColorableSoundness: on an odd cycle, NO certificate assignment
// makes the 2-colorability verifier accept (exhaustive Σ^lp_1 game).
func TestTwoColorableSoundness(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(5)
	arb := &core.Arbiter{
		Machine:  TwoColorable(),
		Level:    core.Sigma(1),
		RadiusID: 1,
		Bound:    cert.Bound{R: 1, P: cert.Polynomial{0, 4}},
	}
	id := graph.SmallLocallyUnique(g, 1)
	ok, err := arb.GameValue(g, id, []cert.Domain{cert.UniformDomain(5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("some certificate convinced the verifier that C5 is 2-colorable")
	}
	// And on C4 a certificate exists.
	g4 := graph.Cycle(4)
	ok, err = arb.GameValue(g4, graph.SmallLocallyUnique(g4, 1), []cert.Domain{cert.UniformDomain(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no certificate found for 2-colorable C4")
	}
}

func TestKColorableRejectsMalformedCertificates(t *testing.T) {
	t.Parallel()
	g := graph.Path(2)
	id := graph.GloballyUnique(g)
	m := KColorable(3)
	for _, certs := range [][]string{
		{"", ""},     // missing
		{"11", "00"}, // "11" = color 3 >= k
		{"0", "01"},  // wrong width
	} {
		lists := [][]string{{certs[0]}, {certs[1]}}
		res, err := simulate.Run(m, g, id, lists, simulate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted() {
			t.Fatalf("malformed certificates %v accepted", certs)
		}
	}
}

func TestSatGraphVerifier(t *testing.T) {
	t.Parallel()
	mk := func(topo *graph.Graph, formulas ...string) *graph.Graph {
		fs := make([]sat.Formula, len(formulas))
		for i, s := range formulas {
			fs[i] = sat.MustParse(s)
		}
		bg, err := sat.NewBooleanGraph(topo, fs)
		if err != nil {
			t.Fatal(err)
		}
		return bg.G
	}
	cases := []struct {
		g    *graph.Graph
		want bool
	}{
		{mk(graph.Path(2), "P1|~P2|~P3", "P3|P4|~P5"), true},
		{mk(graph.Path(2), "P", "~P"), false},
		{mk(graph.Path(3), "P", "P|~P", "~P"), false},
		{mk(graph.Cycle(3), "A", "A&B", "~B"), false},
		{mk(graph.Cycle(3), "A", "A&B", "B"), true},
		{mk(graph.Single(""), "A&~A"), false},
		{mk(graph.Single(""), "A|~A"), true},
	}
	for _, tt := range cases {
		got := runNLP(t, SatGraph(), SatGraphStrategy(), tt.g)
		if got != tt.want {
			t.Fatalf("sat-graph on %v: got %v, want %v", tt.g, got, tt.want)
		}
		if got != props.SatGraph(tt.g) {
			t.Fatal("verifier disagrees with ground truth")
		}
	}
}

func TestSatGraphRejectsGarbage(t *testing.T) {
	t.Parallel()
	// Labels that don't decode to formulas must be rejected regardless of
	// certificates.
	g := graph.Path(2).MustWithLabels([]string{"01", "1"})
	got := runNLP(t, SatGraph(), SatGraphStrategy(), g)
	if got {
		t.Fatal("garbage labels accepted")
	}
}

func TestSatGraphRandomAgainstGroundTruth(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(77))
	vars := []string{"A", "B", "C"}
	randFormula := func() sat.Formula {
		// Random 2-clause CNF over 3 vars.
		var and sat.And
		for i := 0; i < 1+rng.Intn(2); i++ {
			var or sat.Or
			for j := 0; j <= rng.Intn(2); j++ {
				var lit sat.Formula = sat.Var(vars[rng.Intn(len(vars))])
				if rng.Intn(2) == 0 {
					lit = sat.Not{F: lit}
				}
				or = append(or, lit)
			}
			and = append(and, or)
		}
		return and
	}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3)
		topo := graph.RandomConnected(n, 0.5, rng)
		fs := make([]sat.Formula, n)
		for i := range fs {
			fs[i] = randFormula()
		}
		bg, err := sat.NewBooleanGraph(topo, fs)
		if err != nil {
			t.Fatal(err)
		}
		want := props.SatGraph(bg.G)
		got := runNLP(t, SatGraph(), SatGraphStrategy(), bg.G)
		if got != want {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestValuationCodec(t *testing.T) {
	t.Parallel()
	val := map[string]bool{"P1": true, "A": false}
	enc := encodeValuation([]string{"P1", "A"}, val)
	if enc != "A:0;P1:1" {
		t.Fatalf("encodeValuation = %q", enc)
	}
	dec, ok := decodeValuation(enc)
	if !ok || dec["P1"] != true || dec["A"] != false {
		t.Fatalf("decodeValuation = %v, %v", dec, ok)
	}
	if _, ok := decodeValuation("garbage"); ok {
		t.Fatal("garbage decoded")
	}
	if v, ok := decodeValuation(""); !ok || len(v) != 0 {
		t.Fatal("empty valuation should decode to empty map")
	}
}
