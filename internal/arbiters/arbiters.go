// Package arbiters provides concrete locally polynomial machines (in the
// functional form of package simulate) for the graph properties studied in
// the paper: LP-deciders, NLP-verifiers, and the Eve strategies that
// produce their winning certificates (Sections 4, 5.2 and 8).
package arbiters

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/sat"
	"repro/internal/simulate"
)

func verdict(ok bool) string {
	if ok {
		return "1"
	}
	return "0"
}

// AllSelected returns the one-round LP-decider for all-selected: each node
// accepts iff its own label is "1" (Remark 17).
func AllSelected() *simulate.Machine {
	type st struct{ ok bool }
	return &simulate.Machine{
		Name: "lp:all-selected",
		Init: func(in simulate.Input) any { return &st{ok: in.Label == "1"} },
		Round: func(s any, _ int, _ []string) ([]string, bool) {
			return nil, true
		},
		Output: func(s any) string { return verdict(s.(*st).ok) },
	}
}

// Eulerian returns the LP-decider for Eulerianness: by Euler's theorem a
// connected graph is Eulerian iff every node has even degree, so each node
// accepts iff its own degree is even (Proposition 18).
func Eulerian() *simulate.Machine {
	type st struct{ ok bool }
	return &simulate.Machine{
		Name: "lp:eulerian",
		Init: func(in simulate.Input) any { return &st{ok: in.Degree%2 == 0} },
		Round: func(s any, _ int, _ []string) ([]string, bool) {
			return nil, true
		},
		Output: func(s any) string { return verdict(s.(*st).ok) },
	}
}

// AllEqual returns a two-round LP-decider for "all node labels are equal".
func AllEqual() *simulate.Machine {
	type st struct {
		label string
		deg   int
		ok    bool
	}
	return &simulate.Machine{
		Name: "lp:all-equal",
		Init: func(in simulate.Input) any {
			return &st{label: in.Label, deg: in.Degree, ok: true}
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			if round == 1 {
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.label
				}
				return out, false
			}
			for _, m := range recv {
				if m != s.label {
					s.ok = false
				}
			}
			return nil, true
		},
		Output: func(sv any) string { return verdict(sv.(*st).ok) },
	}
}

// colorBits is the fixed certificate width used by the coloring verifiers.
func colorBits(k int) int {
	w := 1
	for 1<<uint(w) < k {
		w++
	}
	return w
}

// KColorable returns the NLP-verifier for k-colorability: Eve's certificate
// κ1(u) is u's color, encoded as a fixed-width bit string; nodes exchange
// colors in one round and verify validity and properness in the next.
// This is the machine side of Example 5 / Theorem 23.
func KColorable(k int) *simulate.Machine {
	width := colorBits(k)
	type st struct {
		color string
		deg   int
		ok    bool
	}
	return &simulate.Machine{
		Name: fmt.Sprintf("nlp:%d-colorable", k),
		Init: func(in simulate.Input) any {
			s := &st{deg: in.Degree, ok: true}
			if len(in.Certs) >= 1 {
				s.color = in.Certs[0]
			}
			// The certificate must be a valid color.
			if len(s.color) != width {
				s.ok = false
				return s
			}
			v, err := strconv.ParseInt(s.color, 2, 32)
			if err != nil || int(v) >= k {
				s.ok = false
			}
			return s
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			if round == 1 {
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.color
				}
				return out, false
			}
			for _, m := range recv {
				if m == s.color {
					s.ok = false // a neighbor shares my color
				}
			}
			return nil, true
		},
		Output: func(sv any) string { return verdict(sv.(*st).ok) },
	}
}

// ColoringStrategy returns Eve's strategy for the k-colorability game: she
// computes a proper k-coloring centrally (she is an all-powerful prover)
// and hands each node its color as the certificate. The strategy fails
// (returns an error-free losing move of empty certificates) when the graph
// is not k-colorable, so that the verifier rejects.
func ColoringStrategy(k int) core.Strategy {
	width := colorBits(k)
	return func(g *graph.Graph, _ graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		colors, ok := props.KColoring(g, k)
		out := make(cert.Assignment, g.N())
		if !ok {
			return out, nil // losing move; no winning one exists
		}
		for u, c := range colors {
			s := strconv.FormatInt(int64(c), 2)
			for len(s) < width {
				s = "0" + s
			}
			out[u] = s
		}
		return out, nil
	}
}

// encodeValuation encodes a valuation of the given variables as
// "name:b" pairs joined by ";" in sorted order. (The formal model would
// bit-encode this string; the engine works with the readable form.)
func encodeValuation(vars []string, val map[string]bool) string {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	parts := make([]string, len(sorted))
	for i, v := range sorted {
		b := "0"
		if val[v] {
			b = "1"
		}
		parts[i] = v + ":" + b
	}
	return strings.Join(parts, ";")
}

// decodeValuation reverses encodeValuation. It reports ok=false for
// malformed certificates.
func decodeValuation(s string) (map[string]bool, bool) {
	out := make(map[string]bool)
	if s == "" {
		return out, true
	}
	for _, part := range strings.Split(s, ";") {
		i := strings.LastIndexByte(part, ':')
		if i < 0 || i+2 != len(part) {
			return nil, false
		}
		switch part[i+1] {
		case '0':
			out[part[:i]] = false
		case '1':
			out[part[:i]] = true
		default:
			return nil, false
		}
	}
	return out, true
}

// SatGraph returns the NLP-verifier for the Boolean graph satisfiability
// property sat-graph of Section 8 (the distributed Cook–Levin problem):
// Eve's certificate κ1(u) encodes a valuation of the variables of u's
// formula; each node checks in one communication round that its valuation
// satisfies its own formula and agrees with its neighbors' valuations on
// all shared variables.
func SatGraph() *simulate.Machine {
	type st struct {
		deg     int
		ok      bool
		formula sat.Formula
		val     map[string]bool
		enc     string
	}
	return &simulate.Machine{
		Name: "nlp:sat-graph",
		Init: func(in simulate.Input) any {
			s := &st{deg: in.Degree, ok: true}
			f, err := sat.DecodeLabel(in.Label)
			if err != nil {
				s.ok = false
				return s
			}
			s.formula = f
			if len(in.Certs) >= 1 {
				s.enc = in.Certs[0]
			}
			val, valid := decodeValuation(s.enc)
			if !valid {
				s.ok = false
				return s
			}
			s.val = val
			// The valuation must cover and satisfy the node's formula.
			for _, v := range sat.Vars(f) {
				if _, covered := val[v]; !covered {
					s.ok = false
					return s
				}
			}
			if !f.Eval(val) {
				s.ok = false
			}
			return s
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			if round == 1 {
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.enc
				}
				return out, false
			}
			if !s.ok {
				return nil, true
			}
			for _, m := range recv {
				nval, valid := decodeValuation(m)
				if !valid {
					s.ok = false
					continue
				}
				for name, b := range s.val {
					if nb, shared := nval[name]; shared && nb != b {
						s.ok = false
					}
				}
			}
			return nil, true
		},
		Output: func(sv any) string { return verdict(sv.(*st).ok) },
	}
}

// SatGraphStrategy returns Eve's strategy for the sat-graph game: she
// solves the joint satisfiability problem centrally and distributes the
// per-node valuations as certificates.
func SatGraphStrategy() core.Strategy {
	return func(g *graph.Graph, _ graph.IDAssignment, _ []cert.Assignment) (cert.Assignment, error) {
		out := make(cert.Assignment, g.N())
		bg, err := sat.DecodeBooleanGraph(g)
		if err != nil {
			return out, nil // undecodable: any move loses, as it should
		}
		vals, ok := bg.Valuations()
		if !ok {
			return out, nil
		}
		for u := range out {
			out[u] = encodeValuation(sat.Vars(bg.Formulas[u]), vals[u])
		}
		return out, nil
	}
}

// TwoColorable is KColorable(2); exported for readability at call sites.
func TwoColorable() *simulate.Machine { return KColorable(2) }

// ThreeColorable is KColorable(3).
func ThreeColorable() *simulate.Machine { return KColorable(3) }
