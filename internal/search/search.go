// Package search provides a deterministic parallel exhaustive-search
// engine for the finite enumeration spaces underlying the paper's game
// evaluations: Eve's parent assignments, Adam's challenge sets, the
// color-set proposals of Example 7, and the coloring blocks of the
// Figure 1 minimax.
//
// A Space describes the enumeration as a sequence of positions, each with
// a finite number of choices; an assignment is one choice per position.
// The engine splits the space by prefix across a worker pool: a short
// prefix of the position sequence is enumerated centrally (as a
// mixed-radix counter claimed through an atomic cursor) and each worker
// exhausts the suffix below its claimed prefix. Exists and ForAll
// short-circuit through an atomic stop flag the moment any worker finds a
// witness (respectively a counterexample), and honor context.Context
// cancellation between leaves.
//
// Because predicates are required to be pure, the Boolean value of
// Exists/ForAll is independent of visitation order, so the parallel
// engine is equivalent to the sequential one; Options{Workers: 1} (or
// Sequential()) forces the strictly lexicographic order, and the test
// suite asserts parallel == sequential on every game in the repository
// under the race detector.
package search

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Space is a finite enumeration space: Len positions, position p offering
// Size(p) choices numbered 0..Size(p)-1. Size must be pure and >= 1 for
// every position. The space with Len == 0 has exactly one (empty)
// assignment.
type Space struct {
	Len  int
	Size func(pos int) int
}

// Binary returns the space of n Boolean choices ({0,1}^n).
func Binary(n int) Space {
	return Space{Len: n, Size: func(int) int { return 2 }}
}

// Uniform returns the space of n choices from a k-element domain (k^n).
func Uniform(n, k int) Space {
	return Space{Len: n, Size: func(int) int { return k }}
}

// Pred is a predicate over one full assignment. It must be pure (no side
// effects observable by other calls), must not retain the slice, and —
// under a parallel engine — must be safe for concurrent invocation.
type Pred func(assignment []int) bool

// Options selects the engine. The zero value is the parallel default.
type Options struct {
	// Workers is the size of the worker pool: 0 means one worker per
	// available CPU, 1 forces the sequential engine (strict lexicographic
	// order), and larger values bound the pool explicitly.
	Workers int
	// SplitDepth overrides the prefix length used to split the space
	// across workers; 0 picks a depth automatically (enough prefixes to
	// keep the pool busy, capped so the central counter stays small).
	SplitDepth int
	// Ctx, when non-nil, cancels the search: Exists and ForAll return
	// ctx.Err() as soon as the cancellation is observed. Map does not
	// poll Ctx — its few coarse tasks always run to completion so the
	// result slice is never partially filled.
	Ctx context.Context
}

// Sequential returns options forcing the sequential engine.
func Sequential() Options { return Options{Workers: 1} }

// Parallel returns options for a pool of the given size (0 = all CPUs).
func Parallel(workers int) Options { return Options{Workers: workers} }

// Default returns the package default: the parallel engine sized to the
// available CPUs.
func Default() Options { return Options{} }

func (o Options) pool() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctxCheckStride is how many leaves a worker visits between context
// polls; a power of two so the check compiles to a mask.
const ctxCheckStride = 1024

// minParallelLeaves is the space size below which the parallel engine
// falls back to the sequential one: spawning a pool for a handful of
// assignments costs more than visiting them. Kept small deliberately —
// leaves can be arbitrarily expensive (a PointsTo leaf is itself an
// exponential challenge loop), so only trivially small spaces are
// exempted from fan-out.
const minParallelLeaves = 64

// maxPrefixes caps the size of the central prefix counter.
const maxPrefixes = 1 << 16

// ForEach enumerates every assignment of s in lexicographic order
// (position 0 most significant, choice 0 first), invoking yield with a
// shared cursor slice that callers must not retain; it stops early when
// yield returns false and reports whether every assignment was yielded.
func ForEach(s Space, yield func([]int) bool) bool {
	cur := make([]int, s.Len)
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == s.Len {
			return yield(cur)
		}
		for c := 0; c < s.Size(pos); c++ {
			cur[pos] = c
			if !rec(pos + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// Exists reports whether some assignment of s satisfies pred,
// short-circuiting on the first witness. With a cancelled context it
// returns false and the context's error; otherwise the error is nil and
// the value equals that of the sequential engine.
func Exists(o Options, s Space, pred Pred) (bool, error) {
	if o.pool() == 1 || smallSpace(s) {
		return existsSeq(o, s, pred)
	}
	return existsPar(o, s, pred)
}

// Splittable reports whether the engine would actually fan s out to a
// worker pool under the given options (false when the pool is a single
// worker or the space is below the small-space threshold). Callers that
// choose which quantifier level to hand the pool — e.g. the three-round
// coloring minimax — should consult this instead of hard-coding the
// threshold.
func Splittable(o Options, s Space) bool {
	return o.pool() > 1 && !smallSpace(s)
}

// smallSpace reports whether s has fewer than minParallelLeaves
// assignments (counting stops as soon as the bound is reached).
func smallSpace(s Space) bool {
	total := 1
	for p := 0; p < s.Len; p++ {
		total *= s.Size(p)
		if total >= minParallelLeaves {
			return false
		}
	}
	return true
}

// ForAll reports whether every assignment of s satisfies pred,
// short-circuiting on the first counterexample. Error semantics match
// Exists.
func ForAll(o Options, s Space, pred Pred) (bool, error) {
	some, err := Exists(o, s, func(a []int) bool { return !pred(a) })
	return !some && err == nil, err
}

func existsSeq(o Options, s Space, pred Pred) (bool, error) {
	found := false
	leaves := 0
	var err error
	ForEach(s, func(a []int) bool {
		leaves++
		if o.Ctx != nil && leaves%ctxCheckStride == 0 {
			if err = o.Ctx.Err(); err != nil {
				return false
			}
		}
		if pred(a) {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return false, err
		}
	}
	return found, nil
}

func existsPar(o Options, s Space, pred Pred) (bool, error) {
	depth, prefixes := splitDepth(o, s)
	if prefixes == 1 {
		// Too small to split (or a single giant first position): the
		// sequential engine is the parallel engine's only worker.
		return existsSeq(o, s, pred)
	}
	var (
		cursor  atomic.Int64 // next unclaimed prefix index
		stop    atomic.Bool  // a witness was found somewhere
		found   atomic.Bool
		errOnce sync.Once
		ctxErr  error
		wg      sync.WaitGroup
	)
	workers := o.pool()
	if workers > prefixes {
		workers = prefixes
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := make([]int, s.Len)
			leaves := 0
			var rec func(pos int) bool // false = abort this prefix's walk
			rec = func(pos int) bool {
				if stop.Load() {
					return false
				}
				if pos == s.Len {
					leaves++
					if o.Ctx != nil && leaves%ctxCheckStride == 0 && o.Ctx.Err() != nil {
						stop.Store(true)
						return false
					}
					if pred(cur) {
						found.Store(true)
						stop.Store(true)
						return false
					}
					return true
				}
				for c := 0; c < s.Size(pos); c++ {
					cur[pos] = c
					if !rec(pos + 1) {
						return false
					}
				}
				return true
			}
			for {
				if stop.Load() {
					return
				}
				if o.Ctx != nil {
					if err := o.Ctx.Err(); err != nil {
						errOnce.Do(func() { ctxErr = err })
						stop.Store(true)
						return
					}
				}
				i := cursor.Add(1) - 1
				if i >= int64(prefixes) {
					return
				}
				decodePrefix(s, depth, i, cur)
				rec(depth)
			}
		}()
	}
	wg.Wait()
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return false, err
		}
	}
	if ctxErr != nil {
		return false, ctxErr
	}
	return found.Load(), nil
}

// splitDepth picks the prefix length used to parcel the space out to the
// pool and returns it with the number of prefixes it generates. It grows
// the prefix until there are comfortably more chunks than workers, so the
// pool stays balanced even when the per-leaf cost is skewed.
func splitDepth(o Options, s Space) (depth, prefixes int) {
	target := o.pool() * 16
	prefixes = 1
	depth = 0
	if o.SplitDepth > 0 {
		//lint:coarse bounded by SplitDepth and maxPrefixes, no unbounded work
		for depth < s.Len && depth < o.SplitDepth && prefixes <= maxPrefixes {
			prefixes *= s.Size(depth)
			depth++
		}
		return depth, prefixes
	}
	//lint:coarse bounded by the prefix target and maxPrefixes, no unbounded work
	for depth < s.Len && prefixes < target && prefixes <= maxPrefixes {
		prefixes *= s.Size(depth)
		depth++
	}
	return depth, prefixes
}

// decodePrefix writes the i-th prefix (mixed radix, position 0 most
// significant) of length depth into cur[0:depth].
func decodePrefix(s Space, depth int, i int64, cur []int) {
	for pos := depth - 1; pos >= 0; pos-- {
		k := int64(s.Size(pos))
		cur[pos] = int(i % k)
		i /= k
	}
}

// Scratch pools decode buffers for predicate calls: a parallel
// evaluation visits exponentially many assignments but only ever needs a
// handful of buffers (one per worker) alive at once. Get returns a
// buffer and the release function that must run when the predicate is
// done with it; buffers are reused as-is, so predicates must overwrite
// (or restore) whatever state they read.
type Scratch[T any] struct{ pool sync.Pool }

// NewScratch returns a Scratch whose buffers are created by alloc.
func NewScratch[T any](alloc func() T) *Scratch[T] {
	s := &Scratch[T]{}
	s.pool.New = func() any { v := alloc(); return &v }
	return s
}

// Get returns a pooled buffer and its release function.
func (s *Scratch[T]) Get() (T, func()) {
	vp := s.pool.Get().(*T)
	return *vp, func() { s.pool.Put(vp) }
}

// Map evaluates f(0), …, f(n-1) across the worker pool and returns the
// results in index order. It is the engine's helper for coarse-grained
// independent tasks (e.g. running the separation experiments' machines);
// f must be safe for concurrent invocation under a parallel engine.
func Map[T any](o Options, n int, f func(int) T) []T {
	out := make([]T, n)
	if o.pool() == 1 || n <= 1 {
		//lint:coarse Map's contract: the result slice is never partially filled
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := o.pool()
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:coarse Map's contract: the result slice is never partially filled
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}
