package search

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestForEachLexOrder pins the enumeration order the sequential engine
// promises: lexicographic with position 0 most significant.
func TestForEachLexOrder(t *testing.T) {
	var got [][]int
	ForEach(Binary(3), func(a []int) bool {
		got = append(got, append([]int(nil), a...))
		return true
	})
	want := [][]int{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 1, 1},
		{1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d assignments, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("assignment %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	full := ForEach(Uniform(4, 3), func([]int) bool {
		count++
		return count < 5
	})
	if full || count != 5 {
		t.Fatalf("full=%v count=%d, want early stop after 5", full, count)
	}
}

// rank maps an assignment of s to its lexicographic index.
func rank(s Space, a []int) int64 {
	var r int64
	for pos := 0; pos < s.Len; pos++ {
		r = r*int64(s.Size(pos)) + int64(a[pos])
	}
	return r
}

// TestParallelMatchesSequential plants witnesses at the start, middle,
// end, and nowhere, over both uniform and ragged spaces, and asserts the
// two engines agree.
func TestParallelMatchesSequential(t *testing.T) {
	ragged := Space{Len: 7, Size: func(pos int) int { return 1 + pos%3 }}
	spaces := []Space{Binary(10), Uniform(6, 3), ragged, Binary(0), Uniform(1, 5)}
	for si, s := range spaces {
		total := int64(1)
		for p := 0; p < s.Len; p++ {
			total *= int64(s.Size(p))
		}
		for _, target := range []int64{-1, 0, total / 2, total - 1} {
			pred := func(a []int) bool { return rank(s, a) == target }
			seq, err := Exists(Sequential(), s, pred)
			if err != nil {
				t.Fatal(err)
			}
			par, err := Exists(Parallel(0), s, pred)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Fatalf("space %d target %d: sequential=%v parallel=%v", si, target, seq, par)
			}
			if want := target >= 0 && target < total; seq != want {
				t.Fatalf("space %d target %d: got %v, want %v", si, target, seq, want)
			}
		}
	}
}

func TestForAll(t *testing.T) {
	s := Uniform(5, 3)
	all, err := ForAll(Parallel(4), s, func(a []int) bool { return a[0] < 3 })
	if err != nil || !all {
		t.Fatalf("tautology: got %v, %v", all, err)
	}
	all, err = ForAll(Parallel(4), s, func(a []int) bool { return rank(s, a) != 100 })
	if err != nil || all {
		t.Fatalf("single counterexample: got %v, %v", all, err)
	}
	seq, _ := ForAll(Sequential(), s, func(a []int) bool { return rank(s, a) != 100 })
	if seq != all {
		t.Fatal("engines disagree on ForAll")
	}
}

// TestEmptySpace: the Len == 0 space has exactly one empty assignment.
func TestEmptySpace(t *testing.T) {
	for _, o := range []Options{Sequential(), Parallel(0)} {
		yes, err := Exists(o, Binary(0), func(a []int) bool { return len(a) == 0 })
		if err != nil || !yes {
			t.Fatalf("workers=%d: got %v, %v", o.Workers, yes, err)
		}
		no, err := Exists(o, Binary(0), func([]int) bool { return false })
		if err != nil || no {
			t.Fatalf("workers=%d: got %v, %v", o.Workers, no, err)
		}
	}
}

// TestCancellation: a cancelled context aborts a hopeless search in both
// engines and surfaces context.Canceled.
func TestCancellation(t *testing.T) {
	for _, o := range []Options{Sequential(), Parallel(0)} {
		ctx, cancel := context.WithCancel(context.Background())
		o.Ctx = ctx
		done := make(chan struct{})
		var found bool
		var err error
		go func() {
			defer close(done)
			// 2^40 assignments: unfinishable without cancellation.
			found, err = Exists(o, Binary(40), func([]int) bool { return false })
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: search did not stop after cancellation", o.Workers)
		}
		if found || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got found=%v err=%v, want context.Canceled", o.Workers, found, err)
		}
	}
}

// TestSmallSpaceFallback pins the tiny-space threshold: spaces under
// minParallelLeaves assignments skip the pool entirely.
func TestSmallSpaceFallback(t *testing.T) {
	if !smallSpace(Binary(5)) { // 32 < 64
		t.Fatal("Binary(5) should be below the parallel threshold")
	}
	if smallSpace(Binary(6)) { // 64 reaches it
		t.Fatal("Binary(6) should reach the parallel threshold")
	}
	yes, err := Exists(Parallel(8), Binary(5), func(a []int) bool { return rank(Binary(5), a) == 31 })
	if err != nil || !yes {
		t.Fatalf("tiny-space search broke: %v, %v", yes, err)
	}
}

func TestSplitDepthOverride(t *testing.T) {
	s := Uniform(6, 3)
	o := Parallel(4)
	o.SplitDepth = 2
	depth, prefixes := splitDepth(o, s)
	if depth != 2 || prefixes != 9 {
		t.Fatalf("depth=%d prefixes=%d, want 2, 9", depth, prefixes)
	}
	yes, err := Exists(o, s, func(a []int) bool { return rank(s, a) == 500 })
	if err != nil || !yes {
		t.Fatalf("got %v, %v", yes, err)
	}
}

func TestMapOrder(t *testing.T) {
	for _, o := range []Options{Sequential(), Parallel(0)} {
		out := Map(o, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", o.Workers, i, v)
			}
		}
	}
}
