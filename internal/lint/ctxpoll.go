package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxPoll enforces the cancellation invariant of the engine packages
// (internal/search, internal/core, internal/cert, internal/experiments):
// inside any function that receives a cancellation port (a
// context.Context or a search.Options), every for/range loop that does
// real work — calls module code or an opaque function value — must stay
// cancellable. A loop satisfies the invariant when its body
//
//   - polls the context (a .Err() or .Done() call on a context.Context,
//     e.g. o.Ctx.Err()), or
//   - delegates to a callee that itself accepts a context.Context or
//     search.Options (cancellation flows into the callee — the
//     search.Exists/ForAll/Map pattern), or
//   - calls a local closure whose body does either (the recursive
//     enumerator pattern: rec := func(...){ ... o.Ctx.Err() ... }),
//
// or when it is explicitly annotated //lint:coarse (deliberately
// uncancellable coarse-grained work, e.g. search.Map's contract that
// result slices are never partially filled).
//
// Loops ranging directly over a composite literal are exempt: their
// trip count is a visible constant, so they cannot run unbounded work
// by themselves.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "enumeration loops in engine packages must poll the cancellation context, delegate it, or be //lint:coarse",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *analysis.Pass) (any, error) {
	ann := gatherAnnotations(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Only functions that can see a cancellation port are in
			// scope: the repo's design is that cancellation enters the
			// engines exclusively through context/Options parameters.
			// FuncLits with their own port (experiment runners) count too.
			scopes := collectScopes(fn)
			if len(scopes) == 0 {
				continue
			}
			closures := collectClosures(pass.TypesInfo, fn)
			seen := make(map[ast.Stmt]bool)
			for _, scope := range scopes {
				ast.Inspect(scope, func(n ast.Node) bool {
					loop, ok := n.(ast.Stmt)
					if !ok {
						return true
					}
					switch loop.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
					default:
						return true
					}
					if seen[loop] {
						return true
					}
					seen[loop] = true
					checkLoop(pass, ann, closures, loop)
					return true
				})
			}
		}
	}
	return nil, nil
}

// collectScopes returns the function bodies in fn that have a
// cancellation port in their parameters: fn's own body if fn does, plus
// any nested FuncLit that declares one.
func collectScopes(fn *ast.FuncDecl) []ast.Node {
	var scopes []ast.Node
	if fieldListHasPort(fn.Type.Params) {
		scopes = append(scopes, fn.Body)
		return scopes // nested literals are inside this scope already
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && fieldListHasPort(lit.Type.Params) {
			scopes = append(scopes, lit.Body)
			return false
		}
		return true
	})
	return scopes
}

func fieldListHasPort(fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		if sel, ok := typeExprIsPort(f.Type); ok && sel {
			return true
		}
	}
	return false
}

// typeExprIsPort decides syntactically whether a parameter type is
// context.Context or (a pointer to) search.Options or core.Engine (the
// game engine's configuration, which carries search.Options inside it);
// syntax suffices because scope detection runs before any call
// resolution.
func typeExprIsPort(e ast.Expr) (bool, bool) {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		// An unqualified Options or Engine inside the engine packages
		// themselves.
		id, ok := e.(*ast.Ident)
		return ok && (id.Name == "Options" || id.Name == "Engine"), true
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false, true
	}
	return (pkg.Name == "context" && sel.Sel.Name == "Context") ||
		(pkg.Name == "search" && sel.Sel.Name == "Options") ||
		(pkg.Name == "core" && sel.Sel.Name == "Engine"), true
}

// collectClosures maps local func-typed variables to the FuncLit bodies
// assigned to them, so calls like rec(pos+1) can be expanded when
// looking for a poll.
func collectClosures(info *types.Info, fn *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// checkLoop reports the loop unless it is annotated, statically
// bounded, not suspect, or satisfied by a poll/delegation.
func checkLoop(pass *analysis.Pass, ann annotations, closures map[types.Object]*ast.FuncLit, loop ast.Stmt) {
	if ann.allowed(pass, loop.Pos(), "coarse", false) {
		return
	}
	if r, ok := loop.(*ast.RangeStmt); ok {
		if _, lit := ast.Unparen(r.X).(*ast.CompositeLit); lit {
			return
		}
	}
	s := &loopScan{pass: pass, ann: ann, closures: closures, visited: make(map[*ast.FuncLit]bool)}
	s.scan(loop, loop)
	if s.suspect && !s.polled {
		kind := "for"
		if _, ok := loop.(*ast.RangeStmt); ok {
			kind = "range"
		}
		pass.Reportf(loop.Pos(),
			"%s loop runs work without polling the cancellation context: poll Ctx.Err()/Ctx.Done(), delegate to a context-taking callee, or annotate //lint:coarse", kind)
	}
}

type loopScan struct {
	pass     *analysis.Pass
	ann      annotations
	closures map[types.Object]*ast.FuncLit
	visited  map[*ast.FuncLit]bool
	suspect  bool
	polled   bool
}

// scan walks the loop subtree. Goroutine bodies are excluded (their
// loops are separate schedulable work, checked on their own), as are
// nested loops already annotated //lint:coarse — their acknowledged
// work must not implicate the enclosing loop.
func (s *loopScan) scan(root ast.Node, loop ast.Stmt) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				s.visited[lit] = true // don't re-enter via a closure call
			}
			for _, arg := range n.Call.Args {
				s.scan(arg, loop)
			}
			return false
		case ast.Stmt:
			if n != loop {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					if _, ok := s.ann.find(s.pass.Fset, n.Pos(), "coarse"); ok {
						return false
					}
				}
			}
		case *ast.CallExpr:
			s.call(n, loop)
		}
		return true
	})
}

// call classifies one call: a context poll or a delegating callee
// satisfies the loop; a call into module code or through an opaque
// function value makes it suspect.
func (s *loopScan) call(call *ast.CallExpr, loop ast.Stmt) {
	info := s.pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && len(call.Args) == 0 {
			if tv, ok := info.Types[sel.X]; ok && isContext(tv.Type) {
				s.polled = true
				return
			}
		}
	}
	sig := calleeSignature(info, call)
	if sig == nil {
		return // conversion or builtin
	}
	if hasEnginePort(sig) {
		s.polled = true
		return
	}
	switch obj := calleeObject(info, call).(type) {
	case *types.Func:
		pkg := obj.Pkg()
		if pkg == nil {
			return
		}
		// Module code: the analyzed package itself or a sibling under
		// the same module root. Standard-library calls are not suspect.
		if pkg == s.pass.Pkg || firstSegment(pkg.Path()) == firstSegment(s.pass.Pkg.Path()) {
			s.suspect = true
		}
	case *types.Var:
		// An opaque function value (parameter, field, local). If it is
		// a local closure whose body we can see, its body speaks for
		// the loop; otherwise it is unbounded work we cannot vouch for.
		if lit, ok := s.closures[obj]; ok {
			s.suspect = true
			if !s.visited[lit] {
				s.visited[lit] = true
				s.scan(lit.Body, loop)
			}
			return
		}
		s.suspect = true
	}
}
