package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture package proves both a caught violation and an allowed
// (annotated or structurally satisfying) form of the same invariant.

func TestCtxPoll(t *testing.T) { linttest.Run(t, lint.CtxPoll, "ctxpoll") }

func TestClockInject(t *testing.T) { linttest.Run(t, lint.ClockInject, "clockinject") }

func TestSnapshotParity(t *testing.T) { linttest.Run(t, lint.SnapshotParity, "snapshotparity") }

func TestFsyncBeforeRename(t *testing.T) {
	linttest.Run(t, lint.FsyncBeforeRename, "fsyncbeforerename")
}

func TestGoroutineCtx(t *testing.T) { linttest.Run(t, lint.GoroutineCtx, "goroutinectx") }

func TestSpanEnd(t *testing.T) { linttest.Run(t, lint.SpanEnd, "spanend") }

func TestSuiteScopes(t *testing.T) {
	suite := lint.Suite()
	if len(suite) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(suite))
	}
	byName := make(map[string]lint.Rule)
	for _, r := range suite {
		byName[r.Analyzer.Name] = r
	}
	cases := []struct {
		analyzer string
		pkgPath  string
		want     bool
	}{
		{"ctxpoll", "repro/internal/search", true},
		{"ctxpoll", "repro/internal/simulate", true},
		{"ctxpoll", "repro/internal/service", false},
		{"clockinject", "repro/internal/jobs", true},
		{"clockinject", "repro/internal/core", false},
		{"snapshotparity", "repro/internal/service", true},
		{"fsyncbeforerename", "repro/internal/journal", true},
		{"fsyncbeforerename", "repro/internal/jobs", false},
		{"goroutinectx", "repro/cmd/lphsvc", true}, // unscoped: everywhere
		{"spanend", "repro/internal/obs", true},
		{"spanend", "repro/internal/service", true},
		{"spanend", "repro/internal/core", false},
	}
	for _, c := range cases {
		r, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("suite is missing analyzer %q", c.analyzer)
		}
		if got := r.InScope(c.pkgPath); got != c.want {
			t.Errorf("%s.InScope(%q) = %v, want %v", c.analyzer, c.pkgPath, got, c.want)
		}
	}
}
