package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// FsyncBeforeRename enforces the journal's durability discipline: an
// os.Rename (the atomic-publish step of write-tmp, fsync, rename) must
// be dominated by a (*os.File).Sync call — on every control-flow path
// from function entry to the rename, a Sync happens first. Without the
// fsync, a crash between rename and writeback can publish a file whose
// contents never reached the disk, which is exactly the corruption the
// journal's replay machinery assumes cannot happen.
//
// A rename that genuinely needs no fsync (renaming a file this process
// never wrote, say) carries //lint:unsynced <reason>.
//
// The check is intraprocedural over go/cfg: a path is "protected" once
// it passes a Sync call, and any rename reachable on an unprotected
// path is reported. Helper indirection (calling a function that itself
// syncs) is therefore not recognized — keep the Sync visible in the
// function that renames, as internal/journal already does.
var FsyncBeforeRename = &analysis.Analyzer{
	Name: "fsyncbeforerename",
	Doc:  "os.Rename in the journal must be dominated by a File.Sync (or carry //lint:unsynced <reason>)",
	Run:  runFsyncBeforeRename,
}

func runFsyncBeforeRename(pass *analysis.Pass) (any, error) {
	ann := gatherAnnotations(pass)
	check := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		g := cfg.New(body, func(*ast.CallExpr) bool { return true })
		reported := make(map[*ast.CallExpr]bool)
		visited := make(map[*cfg.Block]bool)
		var visit func(b *cfg.Block)
		visit = func(b *cfg.Block) {
			if visited[b] {
				return
			}
			visited[b] = true
			for _, n := range b.Nodes {
				protected := false
				ast.Inspect(n, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isFileSync(pass.TypesInfo, call) {
						protected = true
					}
					if !protected && isOSRename(pass.TypesInfo, call) && !reported[call] {
						reported[call] = true
						if !ann.allowed(pass, call.Pos(), "unsynced", true) {
							pass.Reportf(call.Pos(),
								"os.Rename not dominated by a File.Sync: fsync the temp file before publishing it (or annotate //lint:unsynced <reason>)")
						}
					}
					return true
				})
				if protected {
					return // every path through this node is now synced
				}
			}
			for _, succ := range b.Succs {
				visit(succ)
			}
		}
		if len(g.Blocks) > 0 {
			visit(g.Blocks[0])
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Body)
			case *ast.FuncLit:
				check(n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// isFileSync reports whether the call is (*os.File).Sync.
func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return isNamed(s.Recv(), "os", "File")
}

// isOSRename reports whether the call is os.Rename.
func isOSRename(info *types.Info, call *ast.CallExpr) bool {
	obj, ok := calleeObject(info, call).(*types.Func)
	if !ok || obj.Name() != "Rename" || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os"
}
