package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// SpanEnd enforces the tracing discipline of internal/obs: a span (or
// request trace) that is started must be closed on every control-flow
// path, or the phase histogram silently loses the observation and the
// trace record carries a span that never finished. Two shapes of start
// are tracked:
//
//	sp := obs.StartSpan(ctx, phase)   — must reach sp.End()
//	tr := tracer.Start(traceparent)   — must reach tr.Finish(...)
//
// on every path from the start to function exit. A `defer sp.End()`
// (or the chained one-liner `defer obs.StartSpan(ctx, p).End()`)
// satisfies every exit after the defer executes; paths that leave the
// function before registering the defer are still reported. A start
// whose result is discarded, or bound to something other than a plain
// variable, cannot be verified and is reported outright.
//
// A span deliberately handed off (returned to a caller that closes it,
// say) carries //lint:unspanned <reason>.
//
// The check is intraprocedural over go/cfg, like fsyncbeforerename: a
// path is closed once it passes a node containing the matching close
// call on the same variable. Close calls inside function literals
// count (covering `defer func() { sp.End() }()`), which is deliberate
// permissiveness — a closure that closes the span but never runs is
// not detected.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "obs spans/traces must be closed (End/Finish) on every path from their Start (or carry //lint:unspanned <reason>)",
	Run:  runSpanEnd,
}

// spanStart is one tracked Start call: the variable its result was
// bound to (nil when discarded or bound non-trivially) and the name of
// the close method that must dominate every exit.
type spanStart struct {
	call  *ast.CallExpr
	obj   types.Object
	close string
}

func runSpanEnd(pass *analysis.Pass) (any, error) {
	ann := gatherAnnotations(pass)
	report := func(st spanStart) {
		if ann.allowed(pass, st.call.Pos(), "unspanned", true) {
			return
		}
		if st.obj == nil {
			pass.Reportf(st.call.Pos(),
				"obs span result is not bound to a variable, so %s cannot be verified: bind it (or annotate //lint:unspanned <reason>)", st.close)
			return
		}
		pass.Reportf(st.call.Pos(),
			"obs span is not closed on every path: %s.%s() must be reached on all exits (or annotate //lint:unspanned <reason>)", st.obj.Name(), st.close)
	}
	check := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		g := cfg.New(body, func(*ast.CallExpr) bool { return true })
		for _, b := range g.Blocks {
			for i, n := range b.Nodes {
				bound, loose := startsIn(pass.TypesInfo, n)
				for _, st := range loose {
					report(st)
				}
				for _, st := range bound {
					if !allPathsClose(pass.TypesInfo, b, i+1, st, make(map[*cfg.Block]bool)) {
						report(st)
					}
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Body)
			case *ast.FuncLit:
				check(n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// startsIn scans one CFG node for Start calls, without descending into
// function literals (their bodies get their own CFG check). bound
// starts had their result assigned to a plain variable; loose starts
// discarded it or bound it non-trivially. Chained immediate closes
// (`obs.StartSpan(ctx, p).End()`, typically deferred) are already
// satisfied and appear in neither list.
func startsIn(info *types.Info, n ast.Node) (bound, loose []spanStart) {
	handled := make(map[*ast.CallExpr]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 || len(x.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			closeName := startClose(info, call)
			if closeName == "" {
				return true
			}
			handled[call] = true
			id, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident)
			if !ok || id.Name == "_" {
				bound = append(bound, spanStart{call: call, close: closeName})
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			bound = append(bound, spanStart{call: call, obj: obj, close: closeName})
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if closeName := startClose(info, inner); closeName != "" && sel.Sel.Name == closeName {
				handled[inner] = true
			}
		}
		return true
	})
	// Second pass: any remaining Start call was discarded or escapes.
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || handled[call] {
			return true
		}
		if closeName := startClose(info, call); closeName != "" {
			loose = append(loose, spanStart{call: call, close: closeName})
		}
		return true
	})
	// A bound start without a resolvable object cannot be tracked.
	tracked := bound[:0]
	for _, st := range bound {
		if st.obj == nil {
			loose = append(loose, st)
		} else {
			tracked = append(tracked, st)
		}
	}
	return tracked, loose
}

// startClose returns the close-method name a Start call must reach
// ("End" for obs.StartSpan, "Finish" for (*obs.Tracer).Start), or ""
// when the call starts nothing.
func startClose(info *types.Info, call *ast.CallExpr) string {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Name() {
	case "StartSpan":
		if sig != nil && sig.Recv() == nil {
			return "End"
		}
	case "Start":
		if sig != nil && isNamed(sig.Recv().Type(), "obs", "Tracer") {
			return "Finish"
		}
	}
	return ""
}

// closesIn reports whether the node contains the close call on the
// start's variable. Function literals are deliberately descended into:
// `defer func() { sp.End() }()` closes the span.
func closesIn(info *types.Info, n ast.Node, st spanStart) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != st.close {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == st.obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// allPathsClose walks the CFG forward from just after the start call
// and reports whether every path to an exit passes the close call. A
// block already on the walk (a loop back-edge) is treated as closed —
// its exits are checked through its other predecessors.
func allPathsClose(info *types.Info, b *cfg.Block, from int, st spanStart, visited map[*cfg.Block]bool) bool {
	for _, n := range b.Nodes[from:] {
		if closesIn(info, n, st) {
			return true
		}
	}
	if len(b.Succs) == 0 {
		return false
	}
	visited[b] = true
	for _, succ := range b.Succs {
		if visited[succ] {
			continue
		}
		if !allPathsClose(info, succ, 0, st, visited) {
			return false
		}
	}
	return true
}
