// Package linttest runs lint analyzers against fixture packages and
// checks their diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which is not part of the
// vendored x/tools subset).
//
// Fixtures live under testdata/src/<pkg>/ relative to the calling
// test's directory and are loaded in GOPATH mode (GOPATH=testdata,
// GO111MODULE=off), so a fixture tree can model the real engine
// packages — e.g. testdata/src/search stands in for internal/search.
//
// An expectation is a trailing comment on the line where a diagnostic
// must appear:
//
//	for i := 0; i < n; i++ { // want `polling the cancellation context`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match exactly one diagnostic on that line, and every diagnostic
// must be matched by some expectation; both directions are errors.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/driver"
)

// Run loads each fixture package and applies the analyzer, failing t on
// any mismatch between diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixturePkgs ...string) {
	t.Helper()
	gopath, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	env := append(os.Environ(),
		"GOPATH="+gopath,
		"GO111MODULE=off",
		"GOFLAGS=",
	)
	for _, fixture := range fixturePkgs {
		pkgs, err := driver.Load(driver.Config{Dir: gopath, Env: env}, fixture)
		if err != nil {
			t.Fatalf("%s: load fixture %s: %v", a.Name, fixture, err)
		}
		if len(pkgs) == 0 {
			t.Fatalf("%s: fixture %s matched no packages", a.Name, fixture)
		}
		for _, pkg := range pkgs {
			check(t, a, pkg)
		}
	}
}

// key identifies a source line.
type key struct {
	file string
	line int
}

func check(t *testing.T, a *analysis.Analyzer, pkg *driver.Package) {
	t.Helper()
	diags, err := driver.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
	}

	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %s: %v", a.Name, pkg.Fset.Position(c.Pos()), err)
				}
				if len(res) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, d.Pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s: missing diagnostic at %s:%d matching %q", a.Name, k.file, k.line, re)
			}
		}
	}
}

// parseWant extracts the expectation regexps from a comment, returning
// nil when the comment is not a want comment.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	for body = strings.TrimSpace(body); body != ""; body = strings.TrimSpace(body) {
		quote := body[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want expectation must be a quoted regexp, got %q", body)
		}
		end := strings.IndexByte(body[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want expectation %q", body)
		}
		re, err := regexp.Compile(body[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("bad want regexp: %v", err)
		}
		out = append(out, re)
		body = body[2+end:]
	}
	return out, nil
}
