package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// SnapshotParity keeps /v1/stats and /metrics from drifting: every
// exported numeric field reachable from the service's StatsResponse
// struct must be referenced inside renderMetrics, the function that
// formats the Prometheus exposition. A field that is deliberately not a
// metric (say, a build identifier) carries //lint:unmetered <reason> on
// its declaration.
//
// Reachability follows the snapshot shape: named/anonymous struct
// fields recurse; maps and slices of numeric element types count as one
// renderable unit (renderMetrics must mention the field itself);
// strings and booleans are exempt, since the exposition format has no
// canonical rendering for them.
var SnapshotParity = &analysis.Analyzer{
	Name: "snapshotparity",
	Doc:  "every numeric field reachable from StatsResponse must be rendered by renderMetrics (or carry //lint:unmetered <reason>)",
	Run:  runSnapshotParity,
}

const (
	statsTypeName   = "StatsResponse"
	renderFuncName  = "renderMetrics"
	snapshotMaxDeep = 8 // cycle/blowup guard; the snapshot shape is shallow
)

func runSnapshotParity(pass *analysis.Pass) (any, error) {
	root := pass.Pkg.Scope().Lookup(statsTypeName)
	if root == nil {
		return nil, nil // package doesn't define a snapshot; nothing to check
	}
	render := findFuncBody(pass, renderFuncName)
	if render == nil {
		pass.Reportf(root.Pos(), "%s exists but %s was not found in this package", statsTypeName, renderFuncName)
		return nil, nil
	}

	// Every field object whose selection appears in renderMetrics.
	rendered := make(map[*types.Var]bool)
	ast.Inspect(render, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				rendered[v] = true
			}
		}
		return true
	})

	ann := gatherAnnotations(pass)
	seen := make(map[*types.Struct]bool)
	var walk func(s *types.Struct, path string, depth int)
	walk = func(s *types.Struct, path string, depth int) {
		if seen[s] || depth > snapshotMaxDeep {
			return
		}
		seen[s] = true
		for i := 0; i < s.NumFields(); i++ {
			f := s.Field(i)
			if !f.Exported() {
				continue
			}
			name := path + f.Name()
			switch shape := fieldShape(f.Type()); shape {
			case shapeStruct:
				walk(structUnder(f.Type()), name+".", depth+1)
			case shapeNumeric, shapeContainer:
				if rendered[f] {
					continue
				}
				if ann.allowed(pass, f.Pos(), "unmetered", true) {
					continue
				}
				pass.Reportf(f.Pos(),
					"%s field %s is not rendered by %s: add it to the exposition or annotate //lint:unmetered <reason>",
					statsTypeName, name, renderFuncName)
			case shapeExempt:
			}
		}
	}
	st := structUnder(root.Type())
	if st == nil {
		return nil, nil
	}
	walk(st, "", 0)
	return nil, nil
}

type shape int

const (
	shapeExempt shape = iota
	shapeNumeric
	shapeStruct
	shapeContainer
)

// fieldShape classifies a snapshot field's type for the parity walk.
func fieldShape(t types.Type) shape {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsNumeric != 0 {
			return shapeNumeric
		}
		return shapeExempt
	case *types.Struct:
		return shapeStruct
	case *types.Pointer:
		return fieldShape(u.Elem())
	case *types.Map:
		if elementRenderable(u.Elem()) {
			return shapeContainer
		}
		return shapeExempt
	case *types.Slice:
		if elementRenderable(u.Elem()) {
			return shapeContainer
		}
		return shapeExempt
	}
	return shapeExempt
}

// elementRenderable reports whether a container element carries numbers
// (directly or as a struct holding some).
func elementRenderable(t types.Type) bool {
	switch fieldShape(t) {
	case shapeNumeric, shapeStruct, shapeContainer:
		return true
	}
	return false
}

// structUnder unwraps t (through pointers/aliases/named) to its struct
// underlying type, or nil.
func structUnder(t types.Type) *types.Struct {
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

// findFuncBody returns the body of the package-level function or method
// with the given name, or nil.
func findFuncBody(pass *analysis.Pass, name string) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name && fn.Body != nil {
				return fn.Body
			}
		}
	}
	return nil
}
