// Package driver loads Go packages with full type information and runs
// go/analysis analyzers over them, in process and offline.
//
// It is the repository's stand-in for golang.org/x/tools/go/packages +
// multichecker, which are not part of the vendored x/tools subset (the
// build is hermetic). The loader shells out to the already-installed go
// tool: `go list -e -export -json -deps` yields, for every dependency,
// the path of its compiled export data, and the target packages are
// then parsed and type-checked from source against that export data via
// go/importer's "gc" lookup mode — the same division of labor the real
// go/packages performs. Because the export data is produced by the very
// toolchain that runs the linter, the formats always agree.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Config adjusts a Load call.
type Config struct {
	// Dir is the working directory for the `go list` invocation
	// (defaults to the current directory). Patterns like ./... are
	// resolved relative to it.
	Dir string
	// Env, when non-nil, replaces the environment of the `go list`
	// invocation (linttest uses this to load GOPATH-mode fixture trees).
	Env []string
}

// Load resolves patterns to packages and type-checks each matched
// (non-dependency) package from source. Dependencies — standard
// library, module-internal, and vendored alike — are consumed as
// compiled export data, so loading N targets costs N typecheck passes
// regardless of the dependency graph's size.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = cfg.Env
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decode go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(a, b int) bool { return targets[a].ImportPath < targets[b].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(t.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("driver: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:        make(map[ast.Expr]types.TypeAndValue),
			Instances:    make(map[*ast.Ident]types.Instance),
			Defs:         make(map[*ast.Ident]types.Object),
			Uses:         make(map[*ast.Ident]types.Object),
			Implicits:    make(map[ast.Node]types.Object),
			Selections:   make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:       make(map[ast.Node]*types.Scope),
			FileVersions: make(map[*ast.File]string),
		}
		tc := &types.Config{Importer: imp}
		tpkg, err := tc.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("driver: typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// Diagnostic is one analyzer finding, positioned and attributed.
type Diagnostic struct {
	Analyzer *analysis.Analyzer
	Pkg      *Package
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer.Name)
}

// Run executes the analyzers (and, transitively, their Requires) on one
// package and returns the diagnostics in position order. Fact-based
// analyzers are not supported — none of the repository's suite uses
// facts — and requesting fact machinery panics rather than silently
// returning nothing.
func Run(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	results := make(map[*analysis.Analyzer]any)
	var diags []Diagnostic

	var run func(a *analysis.Analyzer) error
	run = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		deps := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			if err := run(req); err != nil {
				return err
			}
			deps[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   deps,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Analyzer: a,
					Pkg:      pkg,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { panic("driver: facts unsupported") },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { panic("driver: facts unsupported") },
			ExportObjectFact:  func(types.Object, analysis.Fact) { panic("driver: facts unsupported") },
			ExportPackageFact: func(analysis.Fact) { panic("driver: facts unsupported") },
			AllObjectFacts:    func() []analysis.ObjectFact { panic("driver: facts unsupported") },
			AllPackageFacts:   func() []analysis.PackageFact { panic("driver: facts unsupported") },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("driver: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		if a.ResultType != nil && res == nil {
			return fmt.Errorf("driver: %s on %s returned nil, want %v", a.Name, pkg.PkgPath, a.ResultType)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := run(a); err != nil {
			return nil, err
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
	return diags, nil
}
