package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// GoroutineCtx keeps goroutines from silently outliving shutdown: a go
// statement must be cancellable or supervised. A go statement passes
// when any of the following holds:
//
//   - its call receives a context.Context or search.Options (by
//     argument value or in the callee's signature), so cancellation
//     reaches the goroutine;
//   - its function-literal body references a context.Context or a
//     sync.WaitGroup (the worker selects on ctx.Done, or calls
//     wg.Done under defer);
//   - the immediately preceding statement in the same block is a
//     wg.Add call — the repo's worker-pool launch idiom
//     (wg.Add(1); go e.worker());
//
// and otherwise it needs //lint:detached <reason> to acknowledge that
// nothing can wait for or cancel it.
var GoroutineCtx = &analysis.Analyzer{
	Name: "goroutinectx",
	Doc:  "go statements must receive a context or register with a WaitGroup (or carry //lint:detached <reason>)",
	Run:  runGoroutineCtx,
}

func runGoroutineCtx(pass *analysis.Pass) (any, error) {
	ann := gatherAnnotations(pass)
	checkList := func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			gs, ok := stmt.(*ast.GoStmt)
			if !ok {
				continue
			}
			if goSupervised(pass.TypesInfo, gs) {
				continue
			}
			if i > 0 && isWaitGroupAdd(pass.TypesInfo, stmts[i-1]) {
				continue
			}
			if ann.allowed(pass, gs.Pos(), "detached", true) {
				continue
			}
			pass.Reportf(gs.Pos(),
				"goroutine is neither cancellable nor supervised: pass a context.Context, register with a sync.WaitGroup, or annotate //lint:detached <reason>")
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkList(n.List)
			case *ast.CaseClause:
				checkList(n.Body)
			case *ast.CommClause:
				checkList(n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// goSupervised reports whether the go statement's call visibly receives
// cancellation or supervision.
func goSupervised(info *types.Info, gs *ast.GoStmt) bool {
	call := gs.Call
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && (isContext(tv.Type) || isEngineOptions(tv.Type)) {
			return true
		}
	}
	if hasEnginePort(calleeSignature(info, call)) {
		return true
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && bodyReferencesSupervisor(info, lit.Body) {
		return true
	}
	return false
}

// bodyReferencesSupervisor reports whether the body mentions a value of
// type context.Context, search.Options, or sync.WaitGroup — captured
// supervision is supervision.
func bodyReferencesSupervisor(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := info.Types[e]
		if !ok {
			return true
		}
		if isContext(tv.Type) || isEngineOptions(tv.Type) || isNamed(tv.Type, "sync", "WaitGroup") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupAdd reports whether the statement is a wg.Add(...) call on
// a sync.WaitGroup.
func isWaitGroupAdd(info *types.Info, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return isNamed(s.Recv(), "sync", "WaitGroup")
}
