package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// ClockInject forbids direct wall-clock access in the packages whose
// tests depend on an injectable clock (internal/jobs, internal/journal,
// internal/service). Durations measured with time.Now/time.Since and
// waits via time.Sleep/time.After in those packages make behavior
// untestable and nondeterministic under replay; they must route through
// the injected `now func() time.Time` instead. A sanctioned access —
// e.g. the production default `now = time.Now` — carries
// //lint:wallclock <reason>.
//
// Pure value constructors (time.Unix, time.Date, time.Duration
// arithmetic) are fine: they do not read the clock.
var ClockInject = &analysis.Analyzer{
	Name: "clockinject",
	Doc:  "clock-sensitive packages must use the injectable clock; direct time.Now/Sleep/... needs //lint:wallclock <reason>",
	Run:  runClockInject,
}

// clockFuncs are the package-level functions of "time" that read or
// wait on the wall clock.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runClockInject(pass *analysis.Pass) (any, error) {
	ann := gatherAnnotations(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if ann.allowed(pass, sel.Pos(), "wallclock", true) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct time.%s in a clock-injected package: route through the injected clock or annotate //lint:wallclock <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
