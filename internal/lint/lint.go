// Package lint is the repository's custom static-analysis suite: six
// go/analysis analyzers that machine-enforce the invariants the engine
// packages otherwise state only in comments and runtime tests.
//
//   - ctxpoll: enumeration loops in the engine packages must stay
//     cancellable — poll Ctx.Err()/Ctx.Done(), delegate to a function
//     that takes the context/engine options, or carry //lint:coarse.
//   - clockinject: internal/jobs, internal/journal, internal/service
//     and internal/router must route all time through the injectable
//     clock; direct time.Now/Since/Sleep/... uses need
//     //lint:wallclock <reason>.
//   - snapshotparity: every exported numeric field reachable from
//     service.StatsResponse must be rendered by renderMetrics, so
//     /v1/stats and /metrics cannot drift at compile time.
//   - fsyncbeforerename: in internal/journal, os.Rename must be
//     dominated by a (*os.File).Sync — the tmp+fsync+rename discipline
//     that makes replay sound.
//   - goroutinectx: a go statement must receive a context.Context or
//     register with a sync.WaitGroup, so goroutines cannot silently
//     outlive drain/shutdown.
//   - spanend: an obs.StartSpan (or Tracer.Start) must be closed by
//     End (Finish) on every control-flow path, so phase histograms
//     and trace records cannot silently lose observations.
//
// The annotation vocabulary (documented in DESIGN.md) is a line
// comment on the flagged line or the line above:
//
//	//lint:coarse [reason]      — loop is deliberately not cancellable
//	//lint:wallclock <reason>   — sanctioned wall-clock access
//	//lint:unmetered <reason>   — stats field deliberately unrendered
//	//lint:unsynced <reason>    — rename deliberately without fsync
//	//lint:detached <reason>    — goroutine deliberately unsupervised
//	//lint:unspanned <reason>   — span close obligation handed off
//
// cmd/lphlint runs the suite (scoped per Suite) as a make-check gate;
// internal/lint/linttest runs each analyzer against testdata fixtures.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Rule pairs an analyzer with the import-path scope cmd/lphlint applies
// it under. An empty Paths list means every loaded package; otherwise a
// package is in scope when its import path equals an entry or ends with
// "/"+entry (so the scopes also match fixture and fork layouts).
type Rule struct {
	Analyzer *analysis.Analyzer
	Paths    []string
}

// Suite is the repository's analyzer catalog with the package scopes
// the invariants are stated over.
func Suite() []Rule {
	return []Rule{
		{CtxPoll, []string{"internal/search", "internal/core", "internal/cert", "internal/simulate", "internal/experiments"}},
		{ClockInject, []string{"internal/jobs", "internal/journal", "internal/service", "internal/router"}},
		{SnapshotParity, []string{"internal/service"}},
		{FsyncBeforeRename, []string{"internal/journal"}},
		{GoroutineCtx, nil},
		{SpanEnd, []string{"internal/obs", "internal/service", "internal/jobs", "internal/journal", "internal/router"}},
	}
}

// Analyzers returns just the analyzers of Suite, for drivers that apply
// their own scoping (the fixture tests).
func Analyzers() []*analysis.Analyzer {
	rules := Suite()
	out := make([]*analysis.Analyzer, len(rules))
	for i, r := range rules {
		out[i] = r.Analyzer
	}
	return out
}

// InScope reports whether a package import path falls under the rule's
// scope.
func (r Rule) InScope(pkgPath string) bool {
	if len(r.Paths) == 0 {
		return true
	}
	for _, p := range r.Paths {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// annotation is one parsed //lint: comment.
type annotation struct {
	verb   string
	reason string
}

// annotations indexes //lint: comments by file and line.
type annotations map[*token.File]map[int][]annotation

// gatherAnnotations scans every comment of the pass for the //lint:
// vocabulary. The index is cheap enough to rebuild per analyzer.
func gatherAnnotations(pass *analysis.Pass) annotations {
	out := make(annotations)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.FileStart)
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				verb, reason, _ := strings.Cut(text, " ")
				if out[tf] == nil {
					out[tf] = make(map[int][]annotation)
				}
				line := tf.Line(c.Pos())
				out[tf][line] = append(out[tf][line], annotation{verb: verb, reason: strings.TrimSpace(reason)})
			}
		}
	}
	return out
}

// find returns the annotation with the given verb attached to pos — on
// the same line or the line immediately above — and whether one exists.
func (a annotations) find(fset *token.FileSet, pos token.Pos, verb string) (annotation, bool) {
	tf := fset.File(pos)
	lines, ok := a[tf]
	if !ok {
		return annotation{}, false
	}
	line := tf.Line(pos)
	for _, l := range []int{line, line - 1} {
		for _, ann := range lines[l] {
			if ann.verb == verb {
				return ann, true
			}
		}
	}
	return annotation{}, false
}

// allowed reports whether pos carries the verb's annotation; when the
// verb requires a reason and the annotation has none, it reports the
// omission instead of honoring the annotation.
func (a annotations) allowed(pass *analysis.Pass, pos token.Pos, verb string, reasonRequired bool) bool {
	ann, ok := a.find(pass.Fset, pos, verb)
	if !ok {
		return false
	}
	if reasonRequired && ann.reason == "" {
		pass.Reportf(pos, "//lint:%s needs a reason (\"//lint:%s <why>\")", verb, verb)
		return true // the annotation still acknowledges the site
	}
	return true
}

// named unwraps t (through pointers and aliases) to its named type, or
// nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t is (a pointer to) the named type pkg.name,
// matching the package by name so engine fixtures can model the real
// packages.
func isNamed(t types.Type, pkgName, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && n.Obj().Pkg().Name() == pkgName
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return isNamed(t, "context", "Context") }

// isEngineOptions reports whether t is the search engine's Options
// carrier (which holds the cancellation context).
func isEngineOptions(t types.Type) bool { return isNamed(t, "search", "Options") }

// isGameEngine reports whether t is the core game engine's Engine
// configuration (which carries search.Options, and with it the
// cancellation context, into the memo/bitset enumeration loops).
func isGameEngine(t types.Type) bool { return isNamed(t, "core", "Engine") }

// hasEnginePort reports whether the signature accepts a cancellation
// port: a context.Context, a search.Options, or a core.Engine
// parameter. Calls through such signatures count as delegating
// cancellation.
func hasEnginePort(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isContext(t) || isEngineOptions(t) || isGameEngine(t) {
			return true
		}
	}
	return false
}

// calleeSignature returns the signature of a call's callee, or nil for
// conversions and builtins.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// calleeObject resolves the object a call's callee refers to (function,
// method, or func-typed variable/field), or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// firstSegment returns the first path element of an import path.
func firstSegment(path string) string {
	seg, _, _ := strings.Cut(path, "/")
	return seg
}
