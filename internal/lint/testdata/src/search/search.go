// Package search models the engine's search package for lint fixtures:
// Options is the cancellation port the analyzers recognize (by package
// and type name, so this stand-in behaves like internal/search).
package search

import "context"

// Options carries the cancellation context into engine enumerations.
type Options struct {
	Ctx context.Context
}
