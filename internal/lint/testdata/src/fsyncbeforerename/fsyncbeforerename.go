// Package fsyncbeforerename exercises the fsyncbeforerename analyzer:
// os.Rename must be dominated by a (*os.File).Sync.
package fsyncbeforerename

import "os"

// PublishSynced follows the write-tmp, fsync, rename discipline:
// allowed.
func PublishSynced(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// PublishUnsynced publishes without flushing: caught.
func PublishUnsynced(f *os.File, tmp, final string) error {
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `os.Rename not dominated by a File.Sync`
}

// PublishBranch syncs on only one control-flow path, so the rename is
// not dominated: caught.
func PublishBranch(f *os.File, tmp, final string, flush bool) error {
	if flush {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return os.Rename(tmp, final) // want `os.Rename not dominated by a File.Sync`
}

// MoveForeign relocates a file this process never wrote; the
// acknowledgment makes that explicit: allowed.
func MoveForeign(oldpath, newpath string) error {
	//lint:unsynced relocating a foreign file, no writes of ours to flush
	return os.Rename(oldpath, newpath)
}
