// Package goroutinectx exercises the goroutinectx analyzer: a go
// statement must be cancellable or supervised, or carry
// //lint:detached <reason>.
package goroutinectx

import (
	"context"
	"sync"
)

func work() {}

func worker(ctx context.Context) { <-ctx.Done() }

// Bare spawns a goroutine nothing can cancel or wait for: caught.
func Bare() {
	go work() // want `neither cancellable nor supervised`
}

// CtxArg hands the goroutine a context: allowed.
func CtxArg(ctx context.Context) {
	go worker(ctx)
}

// PoolLaunch uses the repo's worker-pool idiom — wg.Add immediately
// before the go statement: allowed.
func PoolLaunch(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			work()
		}()
	}
}

// CapturedWaitGroup registers completion inside the body: allowed even
// without a sibling Add.
func CapturedWaitGroup(wg *sync.WaitGroup) {
	work()
	go func() {
		defer wg.Done()
		work()
	}()
}

// Detached is an acknowledged fire-and-forget: allowed.
func Detached() {
	//lint:detached best-effort cleanup, droppable at process exit
	go work()
}
