// Package ctxpoll exercises the ctxpoll analyzer: enumeration loops in
// functions holding a cancellation port must poll, delegate, or be
// annotated //lint:coarse.
package ctxpoll

import (
	"context"

	"core"
	"search"
)

func work(i int) int { return i * i }

func sub(o search.Options, i int) int { return i }

func subEngine(e core.Engine, i int) int { return i }

// Unpolled runs module work in a loop without ever consulting the
// context: caught.
func Unpolled(o search.Options, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `without polling the cancellation context`
		total += work(i)
	}
	return total
}

// Polled checks o.Ctx.Err() each iteration: allowed.
func Polled(o search.Options, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if o.Ctx.Err() != nil {
			return total
		}
		total += work(i)
	}
	return total
}

// Delegating hands the Options port to its callee, so cancellation
// flows into the work: allowed.
func Delegating(o search.Options, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += sub(o, i)
	}
	return total
}

// Opaque calls a function value it cannot vouch for: caught.
func Opaque(ctx context.Context, f func(int) int, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `without polling the cancellation context`
		total += f(i)
	}
	return total
}

// Selecting polls via ctx.Done() in a select: allowed.
func Selecting(ctx context.Context, f func(int) int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += f(i)
	}
	return total
}

// Coarse is deliberately not cancellable and says so: allowed.
func Coarse(o search.Options, n int) int {
	total := 0
	//lint:coarse results must never be partially filled
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}

// Bounded ranges a composite literal — statically bounded trip count,
// exempt.
func Bounded(o search.Options) int {
	total := 0
	for _, v := range []int{1, 2, 3} {
		total += work(v)
	}
	return total
}

// Recursive drives a local closure whose body polls: the closure's body
// speaks for the loop, allowed.
func Recursive(o search.Options, n int) int {
	total := 0
	var rec func(int)
	rec = func(i int) {
		if o.Ctx.Err() != nil {
			return
		}
		total += work(i)
	}
	for i := 0; i < n; i++ {
		rec(i)
	}
	return total
}

// EngineUnpolled holds a core.Engine port — the game engine's
// configuration is a cancellation carrier too — but never consults it:
// caught. This is the shape of the memo/bitset enumeration loops.
func EngineUnpolled(e core.Engine, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `without polling the cancellation context`
		total += work(i)
	}
	return total
}

// EnginePolled polls the context carried inside the Engine: allowed.
func EnginePolled(e core.Engine, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if e.Opts.Ctx.Err() != nil {
			return total
		}
		total += work(i)
	}
	return total
}

// EngineDelegating hands the Engine port to its callee: allowed.
func EngineDelegating(e core.Engine, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += subEngine(e, i)
	}
	return total
}

// NotInScope holds no cancellation port, so its loops are out of scope
// by design (cancellation cannot reach them anyway).
func NotInScope(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}
