// Package snapshotparity exercises the snapshotparity analyzer: every
// numeric field reachable from StatsResponse must appear in
// renderMetrics or carry //lint:unmetered <reason>.
package snapshotparity

import (
	"fmt"
	"strings"
)

// CacheStats is a nested snapshot struct; its fields are reachable.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// StatsResponse is the fixture's stats snapshot.
type StatsResponse struct {
	Uptime   float64
	Requests int64 // want `field Requests is not rendered`
	Cache    CacheStats
	Jobs     map[string]int64
	Build    string // non-numeric: exempt
	//lint:unmetered transient debug counter, not part of the exposition
	Debug int64
}

func renderMetrics(s StatsResponse) string {
	var b strings.Builder
	fmt.Fprintf(&b, "uptime_seconds %v\n", s.Uptime)
	fmt.Fprintf(&b, "cache_hits %d\n", s.Cache.Hits)
	fmt.Fprintf(&b, "cache_misses %d\n", s.Cache.Misses)
	for state, n := range s.Jobs {
		fmt.Fprintf(&b, "jobs{state=%q} %d\n", state, n)
	}
	return b.String()
}
