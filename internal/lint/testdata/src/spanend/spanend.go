// Package spanend exercises the spanend analyzer: a started span or
// trace must be closed on every control-flow path.
package spanend

import (
	"context"
	"errors"

	"obs"
)

var errBoom = errors.New("boom")

func work() {}

// Deferred closes via defer immediately after the start: allowed.
func Deferred(ctx context.Context) {
	sp := obs.StartSpan(ctx, "engine")
	defer sp.End()
	work()
}

// StraightLine closes on the single path: allowed.
func StraightLine(ctx context.Context) {
	sp := obs.StartSpan(ctx, "cache")
	work()
	sp.End()
}

// Chained is the deferred one-liner: allowed.
func Chained(ctx context.Context) {
	defer obs.StartSpan(ctx, "journal_append").End()
	work()
}

// Branches closes on both arms before returning: allowed.
func Branches(ctx context.Context, fast bool) {
	sp := obs.StartSpan(ctx, "memo")
	if fast {
		sp.End()
		return
	}
	work()
	sp.End()
}

// ClosedInClosure ends the span inside a deferred closure: allowed
// (deliberate permissiveness — the analyzer trusts closures).
func ClosedInClosure(ctx context.Context) {
	sp := obs.StartSpan(ctx, "engine")
	defer func() { sp.End() }()
	work()
}

// EarlyReturn leaks the span on the error path: caught.
func EarlyReturn(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "engine") // want `obs span is not closed on every path`
	if fail {
		return errBoom
	}
	sp.End()
	return nil
}

// Discarded drops the span on the floor: caught.
func Discarded(ctx context.Context) {
	obs.StartSpan(ctx, "memo") // want `obs span result is not bound to a variable`
	work()
}

// Escapes passes the span somewhere the analyzer cannot follow: caught.
func Escapes(ctx context.Context, sink func(obs.Span)) {
	sink(obs.StartSpan(ctx, "cache")) // want `obs span result is not bound to a variable`
}

// HandedOff transfers the close obligation to the caller and says so:
// allowed.
func HandedOff(ctx context.Context) obs.Span {
	//lint:unspanned the caller owns this span and ends it
	sp := obs.StartSpan(ctx, "engine")
	return sp
}

// TraceFinished pairs Tracer.Start with Finish on the one path:
// allowed.
func TraceFinished(t *obs.Tracer) {
	tr := t.Start("")
	work()
	tr.Finish("POST /v1/verify", 200)
}

// TraceLeaked never finishes the trace on the early path: caught.
func TraceLeaked(t *obs.Tracer, skip bool) {
	tr := t.Start("") // want `obs span is not closed on every path`
	if skip {
		return
	}
	tr.Finish("GET /v1/stats", 200)
}
