// Package obs models the request-tracing API of repro/internal/obs for
// the spanend fixtures: StartSpan pairs with End, Tracer.Start with
// Finish. The analyzer matches by package name and method shape, so
// this stand-in exercises it exactly as the real package does.
package obs

import "context"

// Span is one phase measurement; End is its mandatory close. A value
// type, matching the real package (zero-allocation hot path).
type Span struct{}

// End closes the span.
func (sp Span) End() {}

// StartSpan opens a phase span on the context's trace.
func StartSpan(ctx context.Context, phase string) Span { return Span{} }

// Tracer starts request traces.
type Tracer struct{}

// Trace is one request trace; Finish is its mandatory close.
type Trace struct{}

// Start opens a trace, adopting the inbound traceparent.
func (t *Tracer) Start(traceparent string) *Trace { return &Trace{} }

// Finish completes the trace.
func (tr *Trace) Finish(route string, status int) {}
