// Package core models the game engine's core package for lint
// fixtures: Engine is the cancellation-carrying configuration the
// analyzers recognize (by package and type name, so this stand-in
// behaves like internal/core).
package core

import "search"

// Engine carries the search options — and through them the cancellation
// context — into game-engine enumerations.
type Engine struct {
	Opts search.Options
}
