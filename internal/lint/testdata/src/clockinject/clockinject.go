// Package clockinject exercises the clockinject analyzer: direct
// wall-clock access must route through the injected clock or carry
// //lint:wallclock <reason>.
package clockinject

import "time"

var now = time.Now //lint:wallclock production default, tests inject a fake

// T measures durations with the injected clock: allowed.
type T struct {
	start time.Time
}

func (t *T) Latency() time.Duration { return now().Sub(t.start) }

// Stamp reads the wall clock directly: caught.
func Stamp() time.Time {
	return time.Now() // want `direct time.Now in a clock-injected package`
}

// Wait sleeps on the real clock: caught.
func Wait() {
	time.Sleep(time.Second) // want `direct time.Sleep in a clock-injected package`
}

// Epoch constructs a time value without reading the clock: allowed.
func Epoch() time.Time { return time.Unix(0, 0) }

// Bare carries the annotation but no justification, which is itself
// reported.
func Bare() time.Time {
	//lint:wallclock
	return time.Now() // want `//lint:wallclock needs a reason`
}
