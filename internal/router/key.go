package router

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"

	"repro/internal/graphio"
)

// affinity computes the routing key and write-ness of a request from
// its method, path, headers, and (already buffered) body.
//
// The key is what Prepared-cache affinity hangs on: every request
// carrying the same canonical graph must land on the same node, so the
// key for the graph routes is the graph's canonical hash — extracted
// with a lenient partial decode that reads only the fields the router
// needs, never the full strict DecodeRequest (validation is the node's
// job, and a router that rejected bodies the node would accept could
// strand valid work). Requests whose body the router cannot make sense
// of hash the raw bytes instead: still deterministic, still balanced,
// and the node's own 400 comes back through the usual proxy path.
//
// Write-ness mirrors the node's drain contract: the routes a draining
// lphd sheds with 503 are writes (and skip draining members), while
// reads — including DELETE /v1/jobs/{id}, which a draining node still
// honors — may use them.
func affinity(r *http.Request, body []byte) (key string, write bool) {
	if r.Method != http.MethodPost {
		// Reads and DELETEs: no body-derived affinity. Job-id routes are
		// bound upstream in serveProxy before affinity is consulted.
		return "", false
	}
	switch r.URL.Path {
	case "/v1/decide", "/v1/verify", "/v1/reduce":
		return graphKey(body), true
	case "/v1/batch":
		return batchKey(body), true
	case "/v1/game":
		return gameKey(body), true
	case "/v1/jobs":
		// A keyed submission routes by its Idempotency-Key, so a retry —
		// even one the client re-sends after a shed — reaches the node
		// holding the original admission and dedups there.
		if k := r.Header.Get("Idempotency-Key"); k != "" {
			return "idem/" + k, true
		}
		return bodyKey(body), true
	case "/v1/admin/drain":
		// Draining through the router is pool-wide ambiguity the roll
		// endpoint exists to resolve; route it like an unkeyed write.
		return "", true
	}
	return "", true
}

// probeBody is the lenient partial view of a request body: just the
// fields that carry routing-relevant identity.
type probeBody struct {
	Graph  json.RawMessage   `json:"graph"`
	Graphs []json.RawMessage `json:"graphs"`
	Game   string            `json:"game"`
}

// graphKey keys a single-graph request by the graph's canonical hash —
// the same value the node's Prepared cache is keyed by, so affinity
// holds across every serialization of the same graph.
func graphKey(body []byte) string {
	var p probeBody
	if err := json.Unmarshal(body, &p); err != nil || len(p.Graph) == 0 {
		return bodyKey(body)
	}
	g, err := graphio.Decode(bytes.NewReader(p.Graph))
	if err != nil {
		return bodyKey(body)
	}
	return "graph/" + g.Hash()
}

// batchKey keys a batch by the hash of its graphs' canonical hashes:
// the same instance list in the same order lands on the same node and
// reuses its warm Prepared entries.
func batchKey(body []byte) string {
	var p probeBody
	if err := json.Unmarshal(body, &p); err != nil || len(p.Graphs) == 0 {
		return bodyKey(body)
	}
	h := sha256.New()
	for _, raw := range p.Graphs {
		g, err := graphio.Decode(bytes.NewReader(raw))
		if err != nil {
			return bodyKey(body)
		}
		_, _ = h.Write([]byte(g.Hash()))
	}
	return "batch/" + hex.EncodeToString(h.Sum(nil))
}

// gameKey keys a catalog-game request by the game name: the verdict
// memo on the node is warm per game, not per body.
func gameKey(body []byte) string {
	var p probeBody
	if err := json.Unmarshal(body, &p); err != nil || p.Game == "" {
		return bodyKey(body)
	}
	return "game/" + p.Game
}

// bodyKey is the fallback affinity: the raw body bytes. Byte-identical
// retries still stick to one node (and hit its request-level memo).
func bodyKey(body []byte) string {
	sum := sha256.Sum256(body)
	return "body/" + hex.EncodeToString(sum[:])
}
