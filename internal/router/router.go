// Package router is the pool front door: a reverse proxy that
// consistent-hashes requests across many lphd instances for
// Prepared-cache affinity, reconciles desired vs live membership
// through each node's health check, retries shed and drained hops on
// the next ring candidate, and drives rolling restarts through the
// per-instance drain lphd already has.
//
// Routing. Each request's affinity key is extracted from the body
// without a full decode (see affinity): graph routes key on the
// canonical graph.Hash(), batches on the hash of their graphs' hashes,
// games on the game name, job submissions on their Idempotency-Key (or
// body hash), and job-id routes (GET/DELETE /v1/jobs/{id}) on the
// job-id→instance binding recorded when the submit response passed
// through. Keys score members with rendezvous hashing, so membership
// changes remap only the departed member's keys (≤ K/N of K keys,
// property-tested in ring_test.go).
//
// Membership. A reconciler loop full-state-syncs the desired instance
// list against each node's GET /v1/healthz: healthy nodes are active,
// draining nodes are demoted to reads-only (an lphd that reports
// draining sheds writes itself), and nodes that miss the probe budget
// are evicted as ghosts — never a candidate, revived the moment they
// answer again (a restarted node rejoins with its journal replayed).
//
// Retries. A hop that fails at the transport level, or answers a
// shed/drain verdict (429, or 503 carrying Retry-After), moves on to
// the next ring candidate. When every candidate says backpressure, the
// last verdict is relayed untouched — its Retry-After is the honest
// one. The router's own traceparent rides every hop, so one trace id
// spans router and node, and appears in both debug rings.
//
// Router-owned routes (everything else proxies):
//
//	GET  /v1/router/healthz  router liveness: {"ok":true,...}
//	GET  /v1/router/pool     membership, counters, roll progress
//	POST /v1/admin/roll      rolling restart, one node at a time
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Router-local span phases; they register lazily in the router's own
// tracer, so the node-side canonical phase list is untouched.
const (
	phaseRouteKey = "route_key" // affinity-key extraction
	phaseProxyHop = "proxy_hop" // one proxied attempt against one node
)

// maxProxyBody bounds the request bytes the router will buffer for
// hashing and replay across retries — the node enforces its own 4 MiB
// decode bound, the router allows the same plus headroom so the node,
// not the proxy, is the authority on too-large.
const maxProxyBody = 5 << 20

// Config configures a Router. Only Nodes is required.
type Config struct {
	// Nodes is the desired pool: "host:port" listen addresses of the
	// lphd instances the router fronts. The reconciler full-state-syncs
	// live membership against this list.
	Nodes []string
	// Client issues every outbound request (proxy hops and probes).
	// nil means http.DefaultClient. Tests inject clients with short
	// timeouts; production wants sane transport-level bounds too.
	Client *http.Client
	// ProbeInterval is the reconciler cadence; 0 means 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe; 0 means 2s.
	ProbeTimeout time.Duration
	// MissBudget is how many consecutive failed probes evict a member
	// as a ghost; 0 means 3.
	MissBudget int
	// RollTimeout bounds how long the rolling restart waits for one
	// drained node to come back healthy with a fresh instance id before
	// the roll aborts; 0 means 60s.
	RollTimeout time.Duration
	// BindingCap bounds the job-id→instance table; 0 means 4096. At
	// capacity the oldest binding falls off and its job-id routes fall
	// back to the candidate walk.
	BindingCap int
	// Now is the injectable clock; nil means time.Now.
	Now func() time.Time
	// TraceRing sizes the router's completed-trace ring; 0 means 128;
	// negative disables router tracing.
	TraceRing int
	// Logger, when non-nil, receives one line per served request plus
	// membership transitions and roll progress.
	Logger *slog.Logger
}

// Router is the live pool front door. New starts its reconciler;
// Close stops it.
type Router struct {
	client      *http.Client
	ring        *ring
	bindings    *bindingMap
	missBudget  int
	probeEvery  time.Duration
	probeBound  time.Duration
	rollBound   time.Duration
	now         func() time.Time
	tracer      *obs.Tracer
	logger      *slog.Logger
	mux         *http.ServeMux
	lifeCtx     context.Context
	lifeCancel  context.CancelFunc
	wg          sync.WaitGroup
	desiredMu   sync.Mutex
	desired     []string
	rolling     atomic.Bool
	rollMu      sync.Mutex
	roll        RollStatus
	requests    atomic.Uint64 // every request the router served
	proxied     atomic.Uint64 // requests relayed from a node
	retried     atomic.Uint64 // hops abandoned for the next candidate
	unreachable atomic.Uint64 // requests that exhausted every candidate
	evictions   atomic.Uint64 // ghost evictions by the reconciler
}

// New builds a Router over the desired nodes and starts its reconciler
// loop. The nodes are seeded active — traffic flows before the first
// probe cycle, and a node that is actually dead costs one transport
// error and a retry until the reconciler demotes it.
func New(cfg Config) *Router {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	now := cfg.Now
	if now == nil {
		now = time.Now //lint:wallclock production default; tests inject cfg.Now
	}
	probeEvery := cfg.ProbeInterval
	if probeEvery <= 0 {
		probeEvery = 500 * time.Millisecond
	}
	probeBound := cfg.ProbeTimeout
	if probeBound <= 0 {
		probeBound = 2 * time.Second
	}
	missBudget := cfg.MissBudget
	if missBudget <= 0 {
		missBudget = 3
	}
	rollBound := cfg.RollTimeout
	if rollBound <= 0 {
		rollBound = 60 * time.Second
	}
	bindingCap := cfg.BindingCap
	if bindingCap <= 0 {
		bindingCap = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		client:     client,
		ring:       newRing(),
		bindings:   newBindingMap(bindingCap),
		missBudget: missBudget,
		probeEvery: probeEvery,
		probeBound: probeBound,
		rollBound:  rollBound,
		now:        now,
		logger:     cfg.Logger,
		mux:        http.NewServeMux(),
		lifeCtx:    ctx,
		lifeCancel: cancel,
		desired:    normalizeAddrs(cfg.Nodes),
	}
	if cfg.TraceRing >= 0 {
		rt.tracer = obs.NewTracer(obs.TracerConfig{
			Now: now, RingSize: cfg.TraceRing, Logger: cfg.Logger,
		})
	}
	for _, addr := range rt.desired {
		rt.ring.observe(addr, stateActive, true, rt.missBudget)
	}
	rt.mux.HandleFunc("GET /v1/router/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/router/pool", rt.handlePool)
	rt.mux.HandleFunc("POST /v1/admin/roll", rt.handleRoll)
	rt.wg.Add(1)
	go rt.runReconciler(ctx)
	return rt
}

// normalizeAddrs strips URL schemes so configuration may say either
// "127.0.0.1:8080" or "http://127.0.0.1:8080".
func normalizeAddrs(nodes []string) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		n = strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(n), "http://"), "/")
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Close stops the reconciler and any in-flight roll, then waits for
// both to exit. In-flight proxied requests are unaffected.
func (rt *Router) Close() {
	rt.lifeCancel()
	rt.wg.Wait()
}

// SetDesired replaces the desired node list; the next reconcile pass
// adopts additions and drops departures (full-state sync, not a diff).
func (rt *Router) SetDesired(nodes []string) {
	rt.desiredMu.Lock()
	rt.desired = normalizeAddrs(nodes)
	rt.desiredMu.Unlock()
}

// desiredNodes snapshots the desired list.
func (rt *Router) desiredNodes() []string {
	rt.desiredMu.Lock()
	defer rt.desiredMu.Unlock()
	return append([]string(nil), rt.desired...)
}

// Handler returns the router's HTTP surface: the router-owned routes,
// everything else proxied to the pool, all behind the same tracing
// middleware discipline as the node (X-Lph-Trace echoed, adopted
// traceparent honored, one trace per request in the debug ring).
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.requests.Add(1)
		tr := rt.tracer.Start(r.Header.Get("traceparent"))
		if tr != nil {
			w.Header().Set("X-Lph-Trace", tr.ID())
			r = r.WithContext(obs.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if _, pattern := rt.mux.Handler(r); pattern != "" {
			rt.mux.ServeHTTP(sw, r)
			tr.Finish(r.Pattern, sw.status)
			return
		}
		rt.serveProxy(sw, r)
		tr.Finish("proxy", sw.status)
	})
}

// statusWriter captures the response status for the trace record.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// fail answers a router-originated error (the proxied path relays node
// errors untouched) in the node's error-body shape: message + trace.
func (rt *Router) fail(w http.ResponseWriter, r *http.Request, status int, msg string) {
	body := map[string]string{"error": msg}
	if id := obs.FromContext(r.Context()).ID(); id != "" {
		body["trace"] = id
	}
	writeJSON(w, status, body)
}

// serveProxy routes one non-router request: pick the candidate order,
// walk it until a node answers with something other than transport
// failure or retryable backpressure, and relay that response.
func (rt *Router) serveProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		rt.fail(w, r, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) > maxProxyBody {
		rt.fail(w, r, http.StatusRequestEntityTooLarge, "request body exceeds the proxy bound")
		return
	}
	sp := obs.StartSpan(r.Context(), phaseRouteKey)
	candidates := rt.route(r, body)
	sp.End()
	if len(candidates) == 0 {
		rt.unreachable.Add(1)
		rt.fail(w, r, http.StatusServiceUnavailable, "no eligible instance in the pool")
		return
	}
	_, isJobRoute := jobID(r)
	var last *http.Response
	var lastAddr string
	for i, addr := range candidates {
		hop := obs.StartSpan(r.Context(), phaseProxyHop)
		resp, err := rt.forward(r, addr, body)
		hop.End()
		if err != nil {
			// Transport failure: the node is gone or going; the reconciler
			// will evict it, this request just moves on.
			rt.retried.Add(1)
			rt.logf("hop failed", "addr", addr, "path", r.URL.Path, "err", err.Error())
			continue
		}
		// Job-id routes walk 404s too: a router restart forgets its
		// bindings but the job did not move, so the walk asks each read
		// candidate in ring order until the owner answers. A genuinely
		// unknown id exhausts the walk and relays the last 404.
		if i < len(candidates)-1 && (retryable(resp) || (isJobRoute && resp.StatusCode == http.StatusNotFound)) {
			// Shed or draining verdict with candidates left: release the
			// connection and try the next shard. The last candidate's
			// verdict relays as-is — its Retry-After is the honest hint.
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			rt.retried.Add(1)
			continue
		}
		last, lastAddr = resp, addr
		break
	}
	if last == nil {
		rt.unreachable.Add(1)
		rt.fail(w, r, http.StatusBadGateway, "no reachable instance for this request")
		return
	}
	defer last.Body.Close()
	rt.proxied.Add(1)
	rt.relay(w, r, last, lastAddr)
}

// route computes the candidate order for a request. Job-id routes
// consult the binding table first: the job lives on exactly one node,
// so a bound id routes there (plus the read ring as fallback for the
// walk when the binding is gone — a router restart forgets bindings,
// the job does not move).
func (rt *Router) route(r *http.Request, body []byte) []string {
	if id, ok := jobID(r); ok {
		rest := rt.ring.candidates("job/"+id, false)
		if addr, ok := rt.bindings.get(id); ok {
			ordered := make([]string, 0, len(rest)+1)
			ordered = append(ordered, addr)
			for _, a := range rest {
				if a != addr {
					ordered = append(ordered, a)
				}
			}
			return ordered
		}
		return rest
	}
	key, write := affinity(r, body)
	return rt.ring.candidates(key, write)
}

// jobID extracts the id of a GET/DELETE /v1/jobs/{id} request.
func jobID(r *http.Request) (string, bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		return "", false
	}
	id, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs/")
	if !ok || id == "" || strings.Contains(id, "/") {
		return "", false
	}
	return id, true
}

// forward issues the request to one node, carrying the router's
// traceparent so the node's trace adopts the same trace id.
func (rt *Router) forward(r *http.Request, addr string, body []byte) (*http.Response, error) {
	url := "http://" + addr + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyProxyHeaders(req.Header, r.Header)
	if tp := obs.FromContext(r.Context()).Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	return rt.client.Do(req)
}

// hopByHop are the headers that describe this connection, not the
// request, and must not be forwarded.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

func copyProxyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append([]string(nil), vv...)
	}
}

// retryable reports whether a response is backpressure worth spending
// another hop on: a shed (429) or a drain verdict (503 carrying
// Retry-After). A 503 without Retry-After is a node-side cancellation
// or timeout verdict about this request, not about the node — another
// shard would only repeat the work.
func retryable(resp *http.Response) bool {
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return true
	case http.StatusServiceUnavailable:
		return resp.Header.Get("Retry-After") != ""
	}
	return false
}

// relay writes the node's response through. Submit responses are
// captured (bounded) on the way so the job-id→instance binding is
// recorded from the body the client actually received — a 202 fresh
// admission and a 200 idempotent replay both name the node that holds
// the job.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, resp *http.Response, addr string) {
	h := w.Header()
	for k, vv := range resp.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		h[k] = append([]string(nil), vv...)
	}
	isSubmit := r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" &&
		(resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK)
	if !isSubmit {
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		// The node's response died mid-flight; the client sees the truth.
		rt.fail(w, r, http.StatusBadGateway, "upstream response truncated")
		return
	}
	var sub struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &sub) == nil && sub.ID != "" {
		rt.bindings.put(sub.ID, addr)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// logf emits one structured line when a logger is configured.
func (rt *Router) logf(msg string, args ...any) {
	if rt.logger != nil {
		rt.logger.Info(msg, args...)
	}
}

// HealthzResponse answers GET /v1/router/healthz.
type HealthzResponse struct {
	OK     bool `json:"ok"`
	Active int  `json:"active"`
	Total  int  `json:"total"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := rt.ring.snapshot()
	active := 0
	for _, m := range members {
		if m.State == "active" {
			active++
		}
	}
	writeJSON(w, http.StatusOK, HealthzResponse{OK: true, Active: active, Total: len(members)})
}

// PoolResponse answers GET /v1/router/pool: the live membership, the
// desired list, the proxy counters, and the roll status.
type PoolResponse struct {
	Members     []MemberStatus `json:"members"`
	Desired     []string       `json:"desired"`
	Requests    uint64         `json:"requests"`
	Proxied     uint64         `json:"proxied"`
	Retried     uint64         `json:"retried"`
	Unreachable uint64         `json:"unreachable"`
	Evictions   uint64         `json:"evictions"`
	Bindings    int            `json:"bindings"`
	Roll        RollStatus     `json:"roll"`
}

func (rt *Router) handlePool(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, PoolResponse{
		Members:     rt.ring.snapshot(),
		Desired:     rt.desiredNodes(),
		Requests:    rt.requests.Load(),
		Proxied:     rt.proxied.Load(),
		Retried:     rt.retried.Load(),
		Unreachable: rt.unreachable.Load(),
		Evictions:   rt.evictions.Load(),
		Bindings:    rt.bindings.len(),
		Roll:        rt.rollStatus(),
	})
}

// bindingMap is the bounded job-id→instance table. FIFO eviction: at
// capacity the oldest binding falls off and its job-id routes fall
// back to the candidate walk (which finds the job by asking).
type bindingMap struct {
	mu    sync.Mutex
	m     map[string]string
	order []string
	cap   int
}

func newBindingMap(capacity int) *bindingMap {
	return &bindingMap{m: make(map[string]string, capacity), cap: capacity}
}

func (b *bindingMap) put(id, addr string) {
	b.mu.Lock()
	if _, ok := b.m[id]; !ok {
		if len(b.order) >= b.cap {
			delete(b.m, b.order[0])
			b.order = b.order[1:]
		}
		b.order = append(b.order, id)
	}
	b.m[id] = addr
	b.mu.Unlock()
}

func (b *bindingMap) get(id string) (string, bool) {
	b.mu.Lock()
	addr, ok := b.m[id]
	b.mu.Unlock()
	return addr, ok
}

func (b *bindingMap) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// Tracer exposes the router's tracer (nil when disabled), for tests.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }
