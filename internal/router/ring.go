package router

import (
	"hash/fnv"
	"io"
	"sort"
	"sync"
)

// memberState is where a pool member sits in its lifecycle, as the
// reconciler last observed it.
type memberState int

const (
	// stateActive members take writes and reads.
	stateActive memberState = iota
	// stateDraining members are demoted from the write side of the ring
	// — a draining lphd answers writes with 503 anyway — but still
	// serve reads (job gets, listings, stats) until the process exits.
	stateDraining
	// stateDown members failed their probe miss budget and are evicted
	// ghosts: never a candidate, retained only so the full-state sync
	// revives them the moment they answer a probe again.
	stateDown
)

func (st memberState) String() string {
	switch st {
	case stateActive:
		return "active"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// member is one pool instance as tracked by the ring.
type member struct {
	addr   string
	state  memberState
	misses int // consecutive failed probes; stateDown at the budget
}

// MemberStatus is the JSON view of one member (GET /v1/router/pool).
type MemberStatus struct {
	Addr   string `json:"addr"`
	State  string `json:"state"`
	Misses int    `json:"misses,omitempty"`
}

// ring is a rendezvous (highest-random-weight) hash ring: each request
// key is scored against every member and candidates are tried in
// descending score order. Rendezvous hashing gives the bounded-remap
// property the router needs with no virtual-node bookkeeping: when one
// of N members leaves, only the keys whose top candidate was that
// member move (≈ K/N of K keys), and every other key keeps its
// assignment — the property tests in ring_test.go hold both halves of
// that claim.
type ring struct {
	mu      sync.RWMutex
	members map[string]*member
}

func newRing() *ring {
	return &ring{members: make(map[string]*member)}
}

// hrwScore is the rendezvous weight of one (member, key) pair: FNV-1a
// over the member address, a separator that cannot appear in either
// string, and the key. Deterministic across processes and restarts —
// the assignment must survive a router restart unchanged.
func hrwScore(addr, key string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, addr)
	_, _ = h.Write([]byte{0xff})
	_, _ = io.WriteString(h, key)
	return h.Sum64()
}

// candidates returns the members eligible for the key in descending
// rendezvous-score order: the head is the key's home, the tail is the
// failover sequence. Down members never appear; draining members are
// excluded for writes (a draining lphd sheds them with 503) but stay
// eligible for reads. Ties break on address so the order is total.
func (rg *ring) candidates(key string, write bool) []string {
	rg.mu.RLock()
	type scored struct {
		addr  string
		score uint64
	}
	eligible := make([]scored, 0, len(rg.members))
	for addr, m := range rg.members {
		if m.state == stateDown || (write && m.state == stateDraining) {
			continue
		}
		eligible = append(eligible, scored{addr: addr, score: hrwScore(addr, key)})
	}
	rg.mu.RUnlock()
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].score != eligible[j].score {
			return eligible[i].score > eligible[j].score
		}
		return eligible[i].addr < eligible[j].addr
	})
	out := make([]string, len(eligible))
	for i, s := range eligible {
		out[i] = s.addr
	}
	return out
}

// observe records a probe verdict for addr, inserting the member if the
// full-state sync just learned of it. A success resets the miss count
// and adopts the probed state; a failure counts toward the miss budget
// and flips the member to stateDown once it is spent. It returns the
// state transition (old, new) so the reconciler can log only changes.
func (rg *ring) observe(addr string, st memberState, ok bool, missBudget int) (old, now memberState) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	m := rg.members[addr]
	if m == nil {
		// First sighting: a failed probe starts the member down (it has
		// never answered), a successful one adopts the probed state.
		m = &member{addr: addr, state: stateDown}
		rg.members[addr] = m
	}
	old = m.state
	if ok {
		m.misses = 0
		m.state = st
		return old, m.state
	}
	m.misses++
	if m.misses >= missBudget {
		m.state = stateDown
	}
	return old, m.state
}

// setState pins a member's state directly — the rolling restart demotes
// the node it is draining without waiting for the next probe cycle.
func (rg *ring) setState(addr string, st memberState) {
	rg.mu.Lock()
	if m := rg.members[addr]; m != nil {
		m.state = st
	}
	rg.mu.Unlock()
}

// retain drops every member not in the desired set — the shrink half of
// the full-state sync.
func (rg *ring) retain(desired map[string]bool) {
	rg.mu.Lock()
	for addr := range rg.members {
		if !desired[addr] {
			delete(rg.members, addr)
		}
	}
	rg.mu.Unlock()
}

// snapshot lists every member sorted by address.
func (rg *ring) snapshot() []MemberStatus {
	rg.mu.RLock()
	out := make([]MemberStatus, 0, len(rg.members))
	for _, m := range rg.members {
		out = append(out, MemberStatus{Addr: m.addr, State: m.state.String(), Misses: m.misses})
	}
	rg.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
