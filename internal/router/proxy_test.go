package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// These tests run the router against real in-process service nodes
// (httptest servers over service.New), so the whole proxied contract —
// affinity, drain demotion, retry hops, bindings, trace propagation —
// is exercised end to end without processes. The process-level walks
// (SIGKILL failover, journal replay, rolling restart) live in
// internal/routertest.

const (
	triangleBody = `{"graph":{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]},"property":"all-selected"}`

	fixedTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	fixedTraceparent = "00-" + fixedTraceID + "-00f067aa0ba902b7-01"
)

// cycleBody builds the decide request for the n-cycle with all-"1"
// labels — each n is a distinct affinity key.
func cycleBody(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"graph":{"n":%d,"edges":[`, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, (i+1)%n)
	}
	sb.WriteString(`],"labels":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`"1"`)
	}
	sb.WriteString(`]},"property":"all-selected"}`)
	return sb.String()
}

// pool is N in-process nodes behind one router.
type pool struct {
	svcs  []*service.Server
	nodes []*httptest.Server
	addrs []string
	rt    *Router
	front *httptest.Server
}

// newPool boots n nodes and a router over them. The reconciler runs on
// a one-hour tick, so tests drive Reconcile explicitly and every pass
// is deterministic.
func newPool(t *testing.T, n int, cfg service.Config) *pool {
	t.Helper()
	p := &pool{}
	for i := 0; i < n; i++ {
		svc := service.New(cfg)
		ts := httptest.NewServer(svc.Handler())
		p.svcs = append(p.svcs, svc)
		p.nodes = append(p.nodes, ts)
		p.addrs = append(p.addrs, strings.TrimPrefix(ts.URL, "http://"))
	}
	p.rt = New(Config{
		Nodes:         p.addrs,
		Client:        &http.Client{Timeout: 5 * time.Second},
		ProbeInterval: time.Hour,
		ProbeTimeout:  time.Second,
		MissBudget:    2,
	})
	p.front = httptest.NewServer(p.rt.Handler())
	t.Cleanup(func() {
		p.front.Close()
		p.rt.Close()
		for i := range p.svcs {
			p.nodes[i].Close()
			p.svcs[i].Close()
		}
	})
	return p
}

// do issues one request through the router front.
func (p *pool) do(t *testing.T, method, path, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, p.front.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// servingNode returns the index of the single node whose operation
// counter moved, failing if traffic spread.
func (p *pool) servingNode(t *testing.T, before []uint64) int {
	t.Helper()
	idx := -1
	for i, svc := range p.svcs {
		if svc.Snapshot().Requests.Total > before[i] {
			if idx != -1 {
				t.Fatalf("traffic spread across nodes %d and %d, want affinity to one", idx, i)
			}
			idx = i
		}
	}
	if idx == -1 {
		t.Fatal("no node saw the traffic")
	}
	return idx
}

func (p *pool) counters() []uint64 {
	out := make([]uint64, len(p.svcs))
	for i, svc := range p.svcs {
		out[i] = svc.Snapshot().Requests.Total
	}
	return out
}

// TestAffinityWarmCache: the same graph, posted repeatedly, lands on
// one node every time, and that node's Prepared-cache hit counter
// proves the repeats were served warm — the whole point of hashing on
// the canonical graph hash.
func TestAffinityWarmCache(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 2, CacheSize: 8})
	before := p.counters()
	const repeats = 5
	for i := 0; i < repeats; i++ {
		resp, body := p.do(t, http.MethodPost, "/v1/decide", triangleBody, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify %d: %d %s", i, resp.StatusCode, body)
		}
	}
	home := p.servingNode(t, before)
	cs := p.svcs[home].Cache().Stats()
	if cs.Misses != 1 || cs.Hits < repeats-1 {
		t.Fatalf("home node cache %+v, want 1 miss and >= %d hits", cs, repeats-1)
	}
	// A different serialization of the same graph (whitespace, edge
	// order is canonicalized by the hash) still reaches the same node.
	reordered := `{"graph":{"n":3,"edges":[[1,2],[0,1],[2,0]],"labels":["1","1","1"]},"property":"all-selected"}`
	mid := p.counters()
	if resp, body := p.do(t, http.MethodPost, "/v1/decide", reordered, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("reordered verify: %d %s", resp.StatusCode, body)
	}
	if got := p.servingNode(t, mid); got != home {
		t.Fatalf("reordered body routed to node %d, want the canonical home %d", got, home)
	}
}

// TestRetryOnDrainingNode: a write whose home node is draining but not
// yet demoted (the reconciler has not run) gets the node's 503 +
// Retry-After, and the router spends another hop instead of failing
// the client; after a reconcile pass the draining node is demoted and
// writes avoid it outright, while reads it still owns keep working.
func TestRetryOnDrainingNode(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 2, CacheSize: 8})

	// Find the triangle's home, then drain it.
	before := p.counters()
	if resp, body := p.do(t, http.MethodPost, "/v1/decide", triangleBody, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d %s", resp.StatusCode, body)
	}
	home := p.servingNode(t, before)

	// A job admitted on the home node before the drain, for the read
	// check below.
	resp, body := p.do(t, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`,
		map[string]string{"Idempotency-Key": "pin-home"})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}
	jobAddr, ok := p.rt.bindings.get(sub.ID)
	if !ok {
		t.Fatalf("no binding recorded for %s", sub.ID)
	}

	p.svcs[home].BeginDrain()

	// Ring still believes the node is active: the hop eats the 503 and
	// retries elsewhere; the client sees success.
	retriedBefore := p.rt.retried.Load()
	if resp, body := p.do(t, http.MethodPost, "/v1/decide", triangleBody, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("verify with draining home: %d %s, want a retried 200", resp.StatusCode, body)
	}
	if p.rt.retried.Load() == retriedBefore {
		t.Fatal("no retry recorded though the home node was draining")
	}

	// Reconcile: the drain is now visible and the node demoted.
	p.rt.Reconcile(context.Background())
	for _, m := range p.rt.ring.snapshot() {
		if m.Addr == p.addrs[home] && m.State != "draining" {
			t.Fatalf("home member %+v after reconcile, want draining", m)
		}
	}
	retriedBefore = p.rt.retried.Load()
	if resp, body := p.do(t, http.MethodPost, "/v1/decide", triangleBody, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("verify after demotion: %d %s", resp.StatusCode, body)
	}
	if p.rt.retried.Load() != retriedBefore {
		t.Fatal("demoted node still consumed a retry hop — it should not be a write candidate at all")
	}

	// The draining node still serves the reads it owns: the job bound
	// to it answers through the router.
	if jobAddr == p.addrs[home] {
		resp, body := p.do(t, http.MethodGet, "/v1/jobs/"+sub.ID, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job read from draining node: %d %s", resp.StatusCode, body)
		}
	}
}

// TestDrainVerdictRelayedHonestly: when every node is draining the
// router has no better shard to offer, so the client must receive the
// nodes' own 503 with its honest Retry-After (derived from the drain
// deadline, in [1, 30] for the default budget) and a JSON body naming
// the trace.
func TestDrainVerdictRelayedHonestly(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 2})
	for _, svc := range p.svcs {
		svc.BeginDrain()
	}
	resp, body := p.do(t, http.MethodPost, "/v1/decide", triangleBody,
		map[string]string{"traceparent": fixedTraceparent})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-draining write: %d %s, want 503", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %q, want an honest integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	var eb map[string]string
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("non-JSON drain verdict %s: %v", body, err)
	}
	if eb["trace"] != fixedTraceID {
		t.Fatalf("drain verdict trace %q, want the propagated %q", eb["trace"], fixedTraceID)
	}
}

// TestOneTraceSpansRouterAndNode is the tentpole's tracing acceptance:
// a single traceparent in produces the same trace id in the router's
// debug ring and in the serving node's, with the node's parent span
// pointing at the router's root span — one trace, two hops.
func TestOneTraceSpansRouterAndNode(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 2, CacheSize: 4})
	resp, body := p.do(t, http.MethodPost, "/v1/decide", triangleBody,
		map[string]string{"traceparent": fixedTraceparent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Lph-Trace"); got != fixedTraceID {
		t.Fatalf("X-Lph-Trace %q, want %q", got, fixedTraceID)
	}
	routerTraces := p.rt.Tracer().Traces(0, "proxy")
	if len(routerTraces) != 1 || routerTraces[0].Trace != fixedTraceID {
		t.Fatalf("router ring %+v, want one proxy trace with id %s", routerTraces, fixedTraceID)
	}
	found := false
	for _, svc := range p.svcs {
		for _, tr := range svc.Tracer().Traces(0, "POST /v1/decide") {
			if tr.Trace != fixedTraceID {
				continue
			}
			found = true
			if tr.ParentSpan != routerTraces[0].Span {
				t.Fatalf("node parent span %q, want the router's root span %q", tr.ParentSpan, routerTraces[0].Span)
			}
		}
	}
	if !found {
		t.Fatalf("no node trace carries %s — the traceparent did not cross the hop", fixedTraceID)
	}
	// The router's trace timed its phases.
	phases := make(map[string]bool)
	for _, sp := range routerTraces[0].Spans {
		phases[sp.Phase] = true
	}
	if !phases[phaseRouteKey] || !phases[phaseProxyHop] {
		t.Fatalf("router trace spans %+v, want %s and %s", routerTraces[0].Spans, phaseRouteKey, phaseProxyHop)
	}
}

// TestMuxFallbackThroughRouter: an unknown path proxies through and
// comes back as the node's JSON 404 carrying the router's trace id —
// the error contract holds across the hop.
func TestMuxFallbackThroughRouter(t *testing.T) {
	t.Parallel()
	p := newPool(t, 2, service.Config{Workers: 1})
	resp, body := p.do(t, http.MethodGet, "/v1/nope", "",
		map[string]string{"traceparent": fixedTraceparent})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: %d %s, want 404", resp.StatusCode, body)
	}
	var eb map[string]string
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("non-JSON 404 through the router %s: %v", body, err)
	}
	if eb["error"] == "" || eb["trace"] != fixedTraceID {
		t.Fatalf("404 body %v, want an error and trace %s", eb, fixedTraceID)
	}
}

// TestFailoverOnDeadNode: SIGKILL at the httptest scale — one node's
// listener closes without ceremony; requests keep succeeding on the
// survivors, the reconciler evicts the ghost after the miss budget,
// and the pool view says so.
func TestFailoverOnDeadNode(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 2, CacheSize: 8})
	dead := 1
	p.nodes[dead].Close()

	// Every write succeeds: hops onto the corpse burn a retry, never a
	// client failure. Distinct cycle sizes give distinct affinity keys,
	// so the dead node is somebody's home for at least one of them.
	for n := 3; n < 9; n++ {
		resp, b := p.do(t, http.MethodPost, "/v1/decide", cycleBody(n), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide on C_%d with a dead node: %d %s", n, resp.StatusCode, b)
		}
	}

	// Two reconcile passes spend the miss budget (2 here): ghost.
	p.rt.Reconcile(context.Background())
	p.rt.Reconcile(context.Background())
	var got MemberStatus
	for _, m := range p.rt.ring.snapshot() {
		if m.Addr == p.addrs[dead] {
			got = m
		}
	}
	if got.State != "down" {
		t.Fatalf("dead member %+v after the miss budget, want down", got)
	}
	if p.rt.evictions.Load() == 0 {
		t.Fatal("eviction counter never moved")
	}

	// Down members cost nothing anymore: no retries on further writes.
	retried := p.rt.retried.Load()
	if resp, b := p.do(t, http.MethodPost, "/v1/decide", triangleBody, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-eviction verify: %d %s", resp.StatusCode, b)
	}
	if p.rt.retried.Load() != retried {
		t.Fatal("an evicted ghost still received a hop")
	}
}

// TestRouterOwnRoutes: the router-owned surface — its health check and
// the pool view — answers locally with the shared JSON discipline.
func TestRouterOwnRoutes(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 1})
	resp, body := p.do(t, http.MethodGet, "/v1/router/healthz", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz: %d %s", resp.StatusCode, body)
	}
	var hz HealthzResponse
	if err := json.Unmarshal(body, &hz); err != nil || !hz.OK || hz.Active != 3 || hz.Total != 3 {
		t.Fatalf("router healthz body %s (%v), want ok with 3/3 active", body, err)
	}
	resp, body = p.do(t, http.MethodGet, "/v1/router/pool", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool: %d %s", resp.StatusCode, body)
	}
	var pr PoolResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("pool body %s: %v", body, err)
	}
	if len(pr.Members) != 3 || len(pr.Desired) != 3 || pr.Roll.Active {
		t.Fatalf("pool view %+v, want 3 members, 3 desired, no roll", pr)
	}
	if resp.Header.Get("X-Lph-Trace") == "" {
		t.Fatal("router-owned route without X-Lph-Trace")
	}
}

// TestJobBindingSurvivesAndWalksWithout: a submit records the binding;
// forgetting it (as a router restart would) still finds the job by
// walking the read candidates; a genuinely unknown id relays the 404.
func TestJobBindingSurvivesAndWalksWithout(t *testing.T) {
	t.Parallel()
	p := newPool(t, 3, service.Config{Workers: 2})
	resp, body := p.do(t, http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}
	if _, ok := p.rt.bindings.get(sub.ID); !ok {
		t.Fatalf("no binding for %s after submit", sub.ID)
	}
	if resp, b := p.do(t, http.MethodGet, "/v1/jobs/"+sub.ID, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("bound job get: %d %s", resp.StatusCode, b)
	}
	// Amnesiac router: drop the binding, the walk still finds the node
	// holding the job. The job-id keyspace walk asks nodes in ring
	// order; at most N-1 of them answer 404 before the owner answers.
	p.rt.bindings = newBindingMap(16)
	if resp, b := p.do(t, http.MethodGet, "/v1/jobs/"+sub.ID, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("unbound job get: %d %s, want the walk to find it", resp.StatusCode, b)
	}
	if resp, b := p.do(t, http.MethodGet, "/v1/jobs/j999", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s, want a relayed 404", resp.StatusCode, b)
	}
}
