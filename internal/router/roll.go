package router

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// RollStatus is the rolling restart's progress as served by
// GET /v1/router/pool. One roll at a time; Error carries why the last
// roll aborted, empty after a clean completion.
type RollStatus struct {
	Active  bool     `json:"active"`
	Current string   `json:"current,omitempty"`
	Done    []string `json:"done,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// handleRoll starts a rolling restart: every active node, one at a
// time, is drained and waited back to health under a fresh instance id
// before the next one is touched. The restart itself belongs to each
// node's supervisor — lphd exits 0 after its drain and whatever runs
// it (systemd, the smoke script, the test harness) brings it back on
// the same address and journal; the router's job is sequencing, so the
// pool never has more than one node out.
func (rt *Router) handleRoll(w http.ResponseWriter, r *http.Request) {
	if !rt.rolling.CompareAndSwap(false, true) {
		rt.fail(w, r, http.StatusConflict, "a rolling restart is already in progress")
		return
	}
	targets := activeAddrs(rt.ring.snapshot())
	rt.rollMu.Lock()
	rt.roll = RollStatus{Active: true}
	rt.rollMu.Unlock()
	rt.wg.Add(1)
	go rt.runRoll(rt.lifeCtx, targets)
	writeJSON(w, http.StatusAccepted, map[string]any{"rolling": true, "targets": targets})
}

// activeAddrs filters a membership snapshot to the active addresses
// (already sorted — snapshot sorts by address, which makes the roll
// order deterministic).
func activeAddrs(members []MemberStatus) []string {
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m.State == "active" {
			out = append(out, m.Addr)
		}
	}
	return out
}

// runRoll drains each target in turn and waits for its recovery.
func (rt *Router) runRoll(ctx context.Context, targets []string) {
	defer rt.wg.Done()
	defer rt.rolling.Store(false)
	for _, addr := range targets {
		rt.rollMu.Lock()
		rt.roll.Current = addr
		rt.rollMu.Unlock()
		if err := rt.rollOne(ctx, addr); err != nil {
			rt.logf("roll aborted", "addr", addr, "err", err.Error())
			rt.rollMu.Lock()
			rt.roll.Active = false
			rt.roll.Current = ""
			rt.roll.Error = fmt.Sprintf("rolling %s: %v", addr, err)
			rt.rollMu.Unlock()
			return
		}
		rt.rollMu.Lock()
		rt.roll.Done = append(rt.roll.Done, addr)
		rt.rollMu.Unlock()
		rt.logf("roll advanced", "addr", addr)
	}
	rt.rollMu.Lock()
	rt.roll.Active = false
	rt.roll.Current = ""
	rt.rollMu.Unlock()
}

// rollOne cycles a single node: record its identity, demote it from
// the write ring, ask it to drain, then poll until the same address
// answers healthy under a different instance id — the proof a new
// process is serving — and promote it back.
func (rt *Router) rollOne(ctx context.Context, addr string) error {
	oldInstance, err := rt.instance(ctx, addr)
	if err != nil {
		return fmt.Errorf("reading pre-roll identity: %w", err)
	}
	// Demote before the drain request: no new writes race the 503 flip.
	rt.ring.setState(addr, stateDraining)
	if err := rt.requestDrain(ctx, addr); err != nil {
		rt.ring.setState(addr, stateActive)
		return fmt.Errorf("requesting drain: %w", err)
	}
	deadline := rt.now().Add(rt.rollBound)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		hz, err := rt.probe(ctx, addr)
		if err == nil && hz.OK && !hz.Draining {
			inst, err := rt.instance(ctx, addr)
			if err == nil && inst != "" && inst != oldInstance {
				rt.ring.setState(addr, stateActive)
				return nil
			}
		}
		if deadline.Before(rt.now()) {
			return fmt.Errorf("node did not return with a fresh instance id within %s", rt.rollBound)
		}
		rt.sleep(ctx, rt.probeEvery)
	}
}

// requestDrain posts the node's own drain route. 202 is the only
// success; a draining or dead node fails the roll step loudly rather
// than being skipped silently.
func (rt *Router) requestDrain(ctx context.Context, addr string) error {
	ctx, cancel := context.WithTimeout(ctx, rt.probeBound)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/admin/drain", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("drain answered %d", resp.StatusCode)
	}
	return nil
}

// rollStatus snapshots the roll progress.
func (rt *Router) rollStatus() RollStatus {
	rt.rollMu.Lock()
	defer rt.rollMu.Unlock()
	st := rt.roll
	st.Done = append([]string(nil), rt.roll.Done...)
	return st
}

// sleep waits d or until ctx is done, whichever first.
func (rt *Router) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d) //lint:wallclock recovery polling paces on real time, bounded by ctx
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
