package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// runReconciler is the membership loop: one full-state sync per tick
// until the router closes. Tests drive Reconcile directly for
// deterministic single passes; the ticker only paces production.
func (rt *Router) runReconciler(ctx context.Context) {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.probeEvery) //lint:wallclock reconcile cadence is real time; tests call Reconcile directly
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.Reconcile(ctx)
		}
	}
}

// healthz is the partial view of a node's GET /v1/healthz body.
type healthz struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
}

// Reconcile runs one full-state sync of desired vs live membership:
// every desired node is probed (concurrently — a hung node must not
// stall the others' verdicts), probe results drive the member states,
// and members no longer desired are dropped. The sync is stateless
// over the desired list, not a diff: a node that was evicted as a
// ghost is probed every pass and rejoins the instant it answers —
// which is exactly how a SIGKILLed node returns after its supervisor
// restarts it and the journal replays.
func (rt *Router) Reconcile(ctx context.Context) {
	desired := rt.desiredNodes()
	want := make(map[string]bool, len(desired))
	var wg sync.WaitGroup
	for _, addr := range desired {
		want[addr] = true
		wg.Add(1)
		go func(ctx context.Context, addr string) {
			defer wg.Done()
			hz, err := rt.probe(ctx, addr)
			st := stateActive
			if hz.Draining {
				st = stateDraining
			}
			old, now := rt.ring.observe(addr, st, err == nil && hz.OK, rt.missBudget)
			if old != now {
				if now == stateDown {
					rt.evictions.Add(1)
				}
				rt.logf("member transition", "addr", addr, "from", old.String(), "to", now.String())
			}
		}(ctx, addr)
	}
	wg.Wait()
	rt.ring.retain(want)
}

// probe issues one bounded health check. Probes carry no traceparent:
// they are the router's own heartbeat, not part of any request's
// trace.
func (rt *Router) probe(ctx context.Context, addr string) (healthz, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.probeBound)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/healthz", nil)
	if err != nil {
		return healthz{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return healthz{}, err
	}
	defer resp.Body.Close()
	var hz healthz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hz); err != nil {
		return healthz{}, err
	}
	return hz, nil
}

// instance fetches a node's per-process identity from GET /v1/stats —
// the witness the rolling restart waits on: a changed instance id on
// the same address proves the process actually restarted rather than
// merely finishing its drain.
func (rt *Router) instance(ctx context.Context, addr string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.probeBound)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/stats", nil)
	if err != nil {
		return "", err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var st struct {
		Build struct {
			Instance string `json:"instance"`
		} `json:"build"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return "", err
	}
	return st.Build.Instance, nil
}
