package router

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// BenchmarkRouterHop measures what the front door costs: the same
// memo-warm decide request against a node directly and through the
// router (body buffering, affinity hashing, one extra HTTP round
// trip). The /direct-vs-/routed pair is gated by cmd/benchdelta's
// -hop budget, the router-hop analogue of the tracing-overhead gate.
func BenchmarkRouterHop(b *testing.B) {
	svc := service.New(service.Config{Workers: 2, CacheSize: 8, MemoSize: 64})
	defer svc.Close()
	node := httptest.NewServer(svc.Handler())
	defer node.Close()
	rt := New(Config{
		Nodes:         []string{strings.TrimPrefix(node.URL, "http://")},
		Client:        &http.Client{Timeout: 10 * time.Second},
		ProbeInterval: time.Hour,
	})
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := &http.Client{}
	post := func(url string) {
		resp, err := client.Post(url+"/v1/decide", "application/json", strings.NewReader(triangleBody))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("decide: %d", resp.StatusCode)
		}
	}
	post(node.URL) // warm the cache and memo so both arms measure the hop, not the game

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(node.URL)
		}
	})
	b.Run("routed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(front.URL)
		}
	})
}
