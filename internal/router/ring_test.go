package router

import (
	"fmt"
	"testing"
)

// The ring's contract is the bounded-remap property of rendezvous
// hashing plus the member-lifecycle eligibility rules. These tests
// state both as properties over synthetic key populations rather than
// golden assignments: the hash function may never change silently
// (stability across no-op reconciles), and membership changes may only
// move the departed member's keys.

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return out
}

func testKeys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("graph/%032x", i*2654435761)
	}
	return out
}

func seedRing(nodes []string) *ring {
	rg := newRing()
	for _, n := range nodes {
		rg.observe(n, stateActive, true, 3)
	}
	return rg
}

// assign maps every key to its top write candidate.
func assign(rg *ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		c := rg.candidates(k, true)
		if len(c) == 0 {
			out[k] = ""
			continue
		}
		out[k] = c[0]
	}
	return out
}

// TestRingStableUnderNoopReconcile: re-observing the same healthy
// membership any number of times must not move a single key — the
// assignment is a pure function of (members, key), with no hidden
// state accumulating across reconcile passes.
func TestRingStableUnderNoopReconcile(t *testing.T) {
	t.Parallel()
	nodes := testNodes(5)
	keys := testKeys(500)
	rg := seedRing(nodes)
	before := assign(rg, keys)
	for pass := 0; pass < 7; pass++ {
		for _, n := range nodes {
			rg.observe(n, stateActive, true, 3)
		}
	}
	after := assign(rg, keys)
	for k, home := range before {
		if after[k] != home {
			t.Fatalf("key %s moved %s -> %s across no-op reconciles", k, home, after[k])
		}
	}
}

// TestRingBoundedRemapOnRemoval: dropping one of N members may remap
// only the keys that lived on it — ≈ K/N of K keys, and zero keys that
// lived elsewhere. Rendezvous hashing gives the exact optimum (only
// the departed member's keys move); the assertion allows slack on the
// share size because hash balance is statistical, but none on the
// no-collateral-movement half, which is structural.
func TestRingBoundedRemapOnRemoval(t *testing.T) {
	t.Parallel()
	const n, k = 5, 2000
	nodes := testNodes(n)
	keys := testKeys(k)
	for _, victim := range nodes {
		rg := seedRing(nodes)
		before := assign(rg, keys)
		desired := make(map[string]bool, n)
		for _, node := range nodes {
			if node != victim {
				desired[node] = true
			}
		}
		rg.retain(desired)
		after := assign(rg, keys)

		moved := 0
		for _, key := range keys {
			if before[key] != after[key] {
				moved++
				if before[key] != victim {
					t.Fatalf("key %s moved %s -> %s though %s left — collateral remap",
						key, before[key], after[key], victim)
				}
			} else if before[key] == victim {
				t.Fatalf("key %s still assigned to the removed %s", key, victim)
			}
		}
		// The victim's share is ≈ K/N; allow 50% slack for hash variance
		// (a fixed population, so this is deterministic, but the bound
		// should hold for any population).
		limit := k/n + k/(2*n)
		if moved > limit {
			t.Fatalf("removing %s moved %d of %d keys, want <= %d (K/N + slack)", victim, moved, k, limit)
		}
		if moved == 0 {
			t.Fatalf("removing %s moved no keys — the victim held nothing, which is implausible for %d keys", victim, k)
		}
	}
}

// TestRingRejoinRestoresAssignment: a member that leaves and returns
// gets exactly its old keys back — the flip side of bounded remap that
// makes a SIGKILLed node useful again after its journal replays.
func TestRingRejoinRestoresAssignment(t *testing.T) {
	t.Parallel()
	nodes := testNodes(4)
	keys := testKeys(800)
	rg := seedRing(nodes)
	before := assign(rg, keys)
	// Down via spent miss budget, then a successful probe revives it.
	for i := 0; i < 3; i++ {
		rg.observe(nodes[2], stateActive, false, 3)
	}
	for _, key := range keys {
		if got := assign(rg, []string{key})[key]; got == nodes[2] {
			t.Fatalf("key %s assigned to the evicted ghost %s", key, nodes[2])
		}
	}
	rg.observe(nodes[2], stateActive, true, 3)
	after := assign(rg, keys)
	for k, home := range before {
		if after[k] != home {
			t.Fatalf("key %s at %s after rejoin, originally %s", k, after[k], home)
		}
	}
}

// TestRingDrainingServesReadsNotWrites: a draining member vanishes
// from every write candidate list but keeps its place on the read
// side, in home position.
func TestRingDrainingServesReadsNotWrites(t *testing.T) {
	t.Parallel()
	nodes := testNodes(3)
	keys := testKeys(300)
	rg := seedRing(nodes)
	drained := nodes[1]
	rg.observe(drained, stateDraining, true, 3)
	for _, key := range keys {
		for _, c := range rg.candidates(key, true) {
			if c == drained {
				t.Fatalf("draining %s still a write candidate for %s", drained, key)
			}
		}
	}
	// Reads keep the full membership — and the draining member keeps
	// its rendezvous position, so read affinity does not churn.
	sawHome := false
	for _, key := range keys {
		reads := rg.candidates(key, false)
		if len(reads) != len(nodes) {
			t.Fatalf("read candidates for %s are %v, want all %d members", key, reads, len(nodes))
		}
		if reads[0] == drained {
			sawHome = true
		}
	}
	if !sawHome {
		t.Fatal("the draining member is never a read home — it lost its ring position")
	}
}

// TestRingMissBudget: one or two failed probes keep the member
// serving (a slow probe must not flap the ring); the budget-th miss
// evicts, and any success resets the count.
func TestRingMissBudget(t *testing.T) {
	t.Parallel()
	rg := seedRing(testNodes(2))
	addr := testNodes(2)[0]
	for i := 0; i < 2; i++ {
		if _, now := rg.observe(addr, stateActive, false, 3); now == stateDown {
			t.Fatalf("evicted after %d misses, budget is 3", i+1)
		}
	}
	if _, now := rg.observe(addr, stateActive, true, 3); now != stateActive {
		t.Fatalf("success did not revive the member: %v", now)
	}
	for i := 0; i < 3; i++ {
		rg.observe(addr, stateActive, false, 3)
	}
	if snap := rg.snapshot(); snap[0].State != "down" {
		t.Fatalf("member %+v after a spent miss budget, want down", snap[0])
	}
}
