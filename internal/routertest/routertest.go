// Package routertest is the pool-level fault-injection harness: it
// boots N real lphd processes on :0 ports (re-execing the test binary
// through internal/lphdmain, exactly like internal/journaltest's
// single-node driver, so the whole pool runs under -race with no
// `go build` step), fronts them with an in-process internal/router,
// and lets tests subject the pool to the failures the router exists to
// absorb: SIGKILL mid-traffic, journal-replayed rejoins, and rolling
// restarts that must lose no in-flight request.
//
// The harness kills every process at test cleanup; journals live under
// t.TempDir() and the package guards tmpdir hygiene via
// journaltest.GuardTempDirs.
package routertest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journaltest"
	"repro/internal/lphdmain"
	"repro/internal/router"
)

// ChildEnv marks a re-exec of the test binary as an lphd child: when
// set to "1", Main runs lphdmain.Run instead of the test suite.
const ChildEnv = "LPH_ROUTERTEST_CHILD"

// Main is the TestMain body for packages using this harness:
//
//	func TestMain(m *testing.M) { os.Exit(routertest.Main(m)) }
//
// Re-exec'd children become real lphd nodes; the parent run is wrapped
// in the tmpdir-hygiene guard.
func Main(m *testing.M) int {
	if os.Getenv(ChildEnv) == "1" {
		return lphdmain.Run(os.Args[1:])
	}
	return journaltest.GuardTempDirs(m)
}

// nodeArgs is the per-node lphd configuration shared by every pool:
// small worker pools, a real Prepared cache (the affinity tests count
// its hits), no memo (so repeated requests exercise the cache, not the
// request-level memo), one job worker, and a short drain so rolling
// restarts finish inside test budgets.
func nodeArgs(journalDir string) []string {
	return []string{
		"-workers", "2", "-cache", "8", "-memo", "0",
		"-job-workers", "1", "-journal", journalDir,
		"-drain-timeout", "10s",
	}
}

// StartNode boots one lphd child on addr (":0" or "127.0.0.1:0" pick a
// free port) over the given journal directory. The returned Proc's
// Addr is normalized to a dialable host (a wildcard listen resolves to
// 127.0.0.1), which is what the port-discovery line exists for.
func StartNode(tb testing.TB, addr, journalDir string) *journaltest.Proc {
	tb.Helper()
	exe, err := os.Executable()
	if err != nil {
		tb.Fatal(err)
	}
	args := append([]string{"-addr", addr}, nodeArgs(journalDir)...)
	p := journaltest.Start(tb, exe, []string{ChildEnv + "=1"}, args...)
	p.Addr = normalizeAddr(tb, p.Addr)
	return p
}

// normalizeAddr rewrites wildcard listen hosts ("[::]", "0.0.0.0", "")
// to 127.0.0.1 so the scraped address is dialable as printed.
func normalizeAddr(tb testing.TB, addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		tb.Fatalf("routertest: unparseable listen address %q: %v", addr, err)
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// Pool is N managed lphd processes fronted by one router.
type Pool struct {
	tb     testing.TB
	mu     sync.Mutex
	nodes  []*journaltest.Proc
	dirs   []string
	Router *router.Router
	// Front serves Router.Handler(); clients talk to Front.URL.
	Front *httptest.Server
}

// StartPool boots n lphd children on random ports, each with its own
// journal directory, and a router over them. Zero-value fields of rcfg
// get e2e-suitable defaults: a 50ms probe cadence, a 1s probe bound,
// and a miss budget of 3, so the reconciler runs for real (tests
// observe membership through /v1/router/pool rather than driving
// Reconcile by hand — this harness is the live-loop counterpart to the
// in-process router tests).
func StartPool(tb testing.TB, n int, rcfg router.Config) *Pool {
	tb.Helper()
	p := &Pool{tb: tb}
	for i := 0; i < n; i++ {
		dir := filepath.Join(tb.TempDir(), fmt.Sprintf("journal%d", i))
		p.dirs = append(p.dirs, dir)
		p.nodes = append(p.nodes, StartNode(tb, "127.0.0.1:0", dir))
	}
	rcfg.Nodes = p.Addrs()
	if rcfg.Client == nil {
		rcfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if rcfg.ProbeInterval == 0 {
		rcfg.ProbeInterval = 50 * time.Millisecond
	}
	if rcfg.ProbeTimeout == 0 {
		rcfg.ProbeTimeout = time.Second
	}
	if rcfg.MissBudget == 0 {
		rcfg.MissBudget = 3
	}
	p.Router = router.New(rcfg)
	p.Front = httptest.NewServer(p.Router.Handler())
	tb.Cleanup(func() {
		p.Front.Close()
		p.Router.Close()
	})
	return p
}

// Node returns the current process of slot i (restarts replace it).
func (p *Pool) Node(i int) *journaltest.Proc {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes[i]
}

// Addrs lists the pool's node addresses by slot.
func (p *Pool) Addrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.nodes))
	for i, n := range p.nodes {
		out[i] = n.Addr
	}
	return out
}

// Slot maps a node address back to its slot index.
func (p *Pool) Slot(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, n := range p.nodes {
		if n.Addr == addr {
			return i
		}
	}
	p.tb.Fatalf("routertest: no pool slot for %q", addr)
	return -1
}

// Restart boots a fresh lphd in slot i on the same address and journal
// directory — the supervisor's move after a crash or a drain-exit. The
// address is pinned so the router's desired list stays valid and the
// ring assignment is unchanged; the journal replays whatever the old
// process made durable.
func (p *Pool) Restart(i int) *journaltest.Proc {
	p.tb.Helper()
	p.mu.Lock()
	addr, dir := p.nodes[i].Addr, p.dirs[i]
	p.mu.Unlock()
	np := StartNode(p.tb, addr, dir)
	p.mu.Lock()
	p.nodes[i] = np
	p.mu.Unlock()
	return np
}

// Do issues one request through the router front.
func (p *Pool) Do(method, path, body string, hdr map[string]string) (int, []byte) {
	p.tb.Helper()
	req, err := http.NewRequest(method, p.Front.URL+path, strings.NewReader(body))
	if err != nil {
		p.tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		p.tb.Fatalf("routertest: %s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		p.tb.Fatal(err)
	}
	return resp.StatusCode, b
}

// WaitJob polls GET /v1/jobs/{id} through the router until the body
// reports the wanted state, returning the matching raw body.
func (p *Pool) WaitJob(id, want string, timeout time.Duration) []byte {
	p.tb.Helper()
	needle := fmt.Sprintf("%q:%q", "state", want)
	deadline := time.Now().Add(timeout)
	for {
		code, body := p.Do(http.MethodGet, "/v1/jobs/"+id, "", nil)
		if code == http.StatusOK && strings.Contains(string(body), needle) {
			return body
		}
		if time.Now().After(deadline) {
			p.tb.Fatalf("routertest: job %s never reached %s via the router; last (status %d): %s",
				id, want, code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// WaitPool polls GET /v1/router/pool until ok accepts the view — how
// tests wait out the live reconciler instead of driving it by hand.
func (p *Pool) WaitPool(timeout time.Duration, ok func(router.PoolResponse) bool) router.PoolResponse {
	p.tb.Helper()
	deadline := time.Now().Add(timeout)
	var last router.PoolResponse
	for {
		code, body := p.Do(http.MethodGet, "/v1/router/pool", "", nil)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &last); err != nil {
				p.tb.Fatalf("routertest: pool body %s: %v", body, err)
			}
			if ok(last) {
				return last
			}
		}
		if time.Now().After(deadline) {
			p.tb.Fatalf("routertest: pool never reached the wanted state; last view %+v", last)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
