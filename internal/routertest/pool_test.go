package routertest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journaltest"
	"repro/internal/router"
)

// TestMain doubles as the lphd binary for the pool harness (see Main).
func TestMain(m *testing.M) { os.Exit(Main(m)) }

const triangleBody = `{"graph":{"n":3,"edges":[[0,1],[1,2],[2,0]],"labels":["1","1","1"]},"property":"all-selected"}`

// cycleBody is the decide request for the n-cycle — each n a distinct
// affinity key, so a handful of sizes spreads over the pool.
func cycleBody(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"graph":{"n":%d,"edges":[`, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, (i+1)%n)
	}
	sb.WriteString(`],"labels":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`"1"`)
	}
	sb.WriteString(`]},"property":"all-selected"}`)
	return sb.String()
}

// allActive is the WaitPool predicate for a fully healthy pool.
func allActive(n int) func(router.PoolResponse) bool {
	return func(pr router.PoolResponse) bool {
		if len(pr.Members) != n {
			return false
		}
		for _, m := range pr.Members {
			if m.State != "active" {
				return false
			}
		}
		return true
	}
}

// TestPoolAffinity: the same graph posted through the router lands on
// one real lphd every time, and that node's Prepared-cache counters
// (scraped off its own /v1/stats) prove the repeats were served warm.
func TestPoolAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("pool harness boots real processes; skipped in -short")
	}
	p := StartPool(t, 3, router.Config{})
	const repeats = 6
	for i := 0; i < repeats; i++ {
		if code, body := p.Do(http.MethodPost, "/v1/decide", triangleBody, nil); code != http.StatusOK {
			t.Fatalf("decide %d: %d %s", i, code, body)
		}
	}
	type cacheView struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	home, others := -1, uint64(0)
	for i := 0; i < 3; i++ {
		code, body := p.Node(i).Do(http.MethodGet, "/v1/stats", "")
		if code != http.StatusOK {
			t.Fatalf("stats on node %d: %d %s", i, code, body)
		}
		var cv cacheView
		if err := json.Unmarshal(body, &cv); err != nil {
			t.Fatalf("stats body %s: %v", body, err)
		}
		if cv.Cache.Hits > 0 || cv.Cache.Misses > 0 {
			if home != -1 {
				t.Fatalf("cache traffic on nodes %d and %d, want affinity to one", home, i)
			}
			home = i
			if cv.Cache.Misses != 1 || cv.Cache.Hits < repeats-1 {
				t.Fatalf("home cache hits=%d misses=%d, want 1 miss and >= %d hits",
					cv.Cache.Hits, cv.Cache.Misses, repeats-1)
			}
		} else {
			others += cv.Cache.Hits
		}
	}
	if home == -1 {
		t.Fatal("no node saw the cache traffic")
	}
}

// TestSIGKILLFailoverReplayRejoin is the chaos walk: the node holding
// a finished journaled job takes SIGKILL; client traffic through the
// router keeps succeeding; the reconciler evicts the corpse; a restart
// on the same address and journal replays the job and rejoins the
// ring, after which the job reads back byte-identically through the
// router.
func TestSIGKILLFailoverReplayRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("pool harness boots real processes; skipped in -short")
	}
	p := StartPool(t, 3, router.Config{})

	code, body := p.Do(http.MethodPost, "/v1/jobs", `{"job":"experiment","name":"figure5"}`, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}
	doneBody := p.WaitJob(sub.ID, "done", 2*time.Minute)

	// The job lives on exactly one node; ask them directly.
	owner := -1
	for i := 0; i < 3; i++ {
		if code, _ := p.Node(i).Do(http.MethodGet, "/v1/jobs/"+sub.ID, ""); code == http.StatusOK {
			if owner != -1 {
				t.Fatalf("job %s on nodes %d and %d", sub.ID, owner, i)
			}
			owner = i
		}
	}
	if owner == -1 {
		t.Fatalf("no node holds job %s", sub.ID)
	}
	ownerAddr := p.Node(owner).Addr

	p.Node(owner).Kill() // SIGKILL: only the journal survives

	// Chaos walk: client writes keep succeeding while a third of the
	// pool is a corpse — hops onto it burn router retries, never a
	// client failure.
	for n := 3; n < 9; n++ {
		if code, body := p.Do(http.MethodPost, "/v1/decide", cycleBody(n), nil); code != http.StatusOK {
			t.Fatalf("decide on C_%d with a dead node: %d %s", n, code, body)
		}
	}

	// The live reconciler spends the miss budget and evicts the ghost.
	p.WaitPool(30*time.Second, func(pr router.PoolResponse) bool {
		for _, m := range pr.Members {
			if m.Addr == ownerAddr && m.State == "down" {
				return true
			}
		}
		return false
	})

	// Supervisor move: same address, same journal. The journal replays
	// the finished job and the node rejoins the ring on its own.
	np := p.Restart(owner)
	p.WaitPool(30*time.Second, allActive(3))
	if !strings.Contains(np.Log(), "replayed=1") {
		t.Fatalf("restarted node did not replay the journaled job:\n%s", np.Log())
	}

	code, restored := p.Do(http.MethodGet, "/v1/jobs/"+sub.ID, "", nil)
	if code != http.StatusOK {
		t.Fatalf("job read after rejoin: %d %s", code, restored)
	}
	if string(restored) != string(doneBody) {
		t.Fatalf("job not byte-identical across the SIGKILL:\nbefore %s\nafter  %s", doneBody, restored)
	}
}

// TestRollingRestartZeroFailures drives POST /v1/admin/roll against a
// live pool while a client hammers writes through the router: every
// node restarts under a fresh process (the harness is the supervisor,
// restarting each drain-exited node on its address and journal), the
// roll completes cleanly, no client request fails, and every restart
// was graceful (restarted=0 — a drain re-runs nothing).
func TestRollingRestartZeroFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("pool harness boots real processes; skipped in -short")
	}
	p := StartPool(t, 3, router.Config{RollTimeout: 2 * time.Minute})

	// Background client: constant writes through the router for the
	// whole roll. Any non-200 is a failed in-flight request.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := cycleBody(3 + i%5)
			resp, err := client.Post(p.Front.URL+"/v1/decide", "application/json", strings.NewReader(body))
			if err != nil {
				mu.Lock()
				failures = append(failures, err.Error())
				mu.Unlock()
				continue
			}
			if resp.StatusCode != http.StatusOK {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("status %d", resp.StatusCode))
				mu.Unlock()
			}
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	if code, body := p.Do(http.MethodPost, "/v1/admin/roll", "", nil); code != http.StatusAccepted {
		t.Fatalf("roll: %d %s", code, body)
	}

	// The roll walks the active members in address order; supervise
	// each drain-exit in that same order.
	order := p.Addrs()
	sort.Strings(order)
	var restarted []*journaltest.Proc
	for _, addr := range order {
		slot := p.Slot(addr)
		if code := p.Node(slot).WaitExit(time.Minute); code != 0 {
			t.Fatalf("node %s exited %d after its drain, want 0", addr, code)
		}
		restarted = append(restarted, p.Restart(slot))
	}

	final := p.WaitPool(time.Minute, func(pr router.PoolResponse) bool {
		return !pr.Roll.Active && len(pr.Roll.Done) == len(order)
	})
	if final.Roll.Error != "" {
		t.Fatalf("roll aborted: %s", final.Roll.Error)
	}
	p.WaitPool(30*time.Second, allActive(3))

	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(failures) > 0 {
		t.Fatalf("%d client requests failed during the rolling restart: %v", len(failures), failures)
	}
	for i, np := range restarted {
		if !strings.Contains(np.Log(), "restarted=0") {
			t.Fatalf("restart %d replayed interrupted jobs (want restarted=0 after a graceful drain):\n%s", i, np.Log())
		}
	}
}
