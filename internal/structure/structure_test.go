package structure

import (
	"testing"

	"repro/internal/graph"
)

func TestRepCounts(t *testing.T) {
	t.Parallel()
	g := graph.Path(3).MustWithLabels([]string{"01", "1", ""})
	r := NewRep(g)
	// Elements: 3 nodes + 2 + 1 + 0 bits = 6.
	if r.Card() != 6 {
		t.Fatalf("card = %d, want 6", r.Card())
	}
	m, n := r.Signature()
	if m != 1 || n != 2 {
		t.Fatalf("signature = (%d,%d), want (1,2)", m, n)
	}
}

func TestRepRelations(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"01", "1"})
	r := NewRep(g)
	u0, u1 := r.NodeElem(0), r.NodeElem(1)
	// Edge is symmetric in ⇀_1.
	if !r.InBinary(1, u0, u1) || !r.InBinary(1, u1, u0) {
		t.Fatal("edge not symmetric in ⇀_1")
	}
	// Bit successor: bit 0 of node 0 ⇀_1 bit 1 of node 0.
	b00, b01 := r.BitElem(0, 0), r.BitElem(0, 1)
	if !r.InBinary(1, b00, b01) || r.InBinary(1, b01, b00) {
		t.Fatal("bit successor wrong")
	}
	// Ownership ⇀_2: node ⇀_2 its bits, asymmetric.
	if !r.InBinary(2, u0, b00) || r.InBinary(2, b00, u0) {
		t.Fatal("ownership wrong")
	}
	if r.InBinary(2, u0, r.BitElem(1, 0)) {
		t.Fatal("node owns foreign bit")
	}
	// ⊙_1 holds exactly the 1-valued bits: label "01" -> bit 1 only.
	if r.InUnary(1, b00) || !r.InUnary(1, b01) {
		t.Fatal("⊙_1 wrong for node 0")
	}
	if !r.InUnary(1, r.BitElem(1, 0)) {
		t.Fatal("⊙_1 wrong for node 1")
	}
	// Node elements are never in ⊙_1.
	if r.InUnary(1, u0) || r.InUnary(1, u1) {
		t.Fatal("node element in ⊙_1")
	}
}

func TestOwnerAndIsNode(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(3).MustWithLabels([]string{"1", "00", ""})
	r := NewRep(g)
	for u := 0; u < 3; u++ {
		if !r.IsNodeElem(r.NodeElem(u)) || r.Owner(r.NodeElem(u)) != u {
			t.Fatal("node element bookkeeping wrong")
		}
		for i := range g.Label(u) {
			a := r.BitElem(u, i)
			if r.IsNodeElem(a) || r.Owner(a) != u {
				t.Fatal("bit element bookkeeping wrong")
			}
		}
	}
}

// TestSection3NeighborhoodCards reproduces the cardinalities quoted at the
// end of Section 3 for the Figure 5 graph: if u is the upper-right node
// (label 1101), then card(N^{$G}_0(u)) = 4, card(N^{$G}_1(u)) = 8, and
// N^{$G}_2(u) = $G.
//
// Our Figure5Graph uses node 2 for the 1101-labeled node; its 1-ball must
// contain itself plus three 1-bit/0-bit neighbors totalling 8 elements, and
// its 2-ball all 4+3+2+4+3=... elements of $G.
func TestSection3NeighborhoodCards(t *testing.T) {
	t.Parallel()
	g := graph.Figure5Graph()
	r := NewRep(g)
	u := 2 // the node labeled "1101"
	if got := r.NeighborhoodCard(u, 0); got != 1+4 {
		t.Fatalf("card(N_0) = %d", got)
	}
	if got := r.NeighborhoodCard(u, 2); got != r.Card() {
		t.Fatalf("card(N_2) = %d, want %d", got, r.Card())
	}
}

func TestConnectedSymmetricClosure(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"0", ""})
	r := NewRep(g)
	u0 := r.NodeElem(0)
	b := r.BitElem(0, 0)
	// u0 is connected to u1 (edge) and to its bit (ownership).
	if !r.IsConnected(u0, b) || !r.IsConnected(b, u0) {
		t.Fatal("−⇀↽− not symmetric")
	}
	if r.Degree(u0) != 2 {
		t.Fatalf("structural degree of u0 = %d, want 2", r.Degree(u0))
	}
}

func TestStructuralDegreeBound(t *testing.T) {
	t.Parallel()
	// A cycle with single-bit labels has structural degree 3 everywhere:
	// two cycle neighbors plus one labeling bit.
	g := graph.Cycle(5).MustWithLabels([]string{"1", "0", "1", "0", "1"})
	r := NewRep(g)
	if r.MaxDegree() != 3 {
		t.Fatalf("max structural degree = %d, want 3", r.MaxDegree())
	}
}

func TestElementDistance(t *testing.T) {
	t.Parallel()
	g := graph.Path(3).MustWithLabels([]string{"", "", "11"})
	r := NewRep(g)
	dist := r.ElementDistance(r.NodeElem(0))
	if dist[r.NodeElem(2)] != 2 {
		t.Fatalf("dist to node 2 = %d", dist[r.NodeElem(2)])
	}
	// Second labeling bit of node 2 is 2 (node) + 1 (owns bit0)... note
	// ownership links node directly to *each* bit, so bit 1 is at
	// distance 3 via the node, or node->bit1 directly at distance 3? The
	// node owns both bits directly (⇀_2 from node to every bit), so both
	// bits are at distance 3 from node 0.
	if dist[r.BitElem(2, 1)] != 3 {
		t.Fatalf("dist to bit = %d, want 3", dist[r.BitElem(2, 1)])
	}
}

func TestBuilderIdempotentAdds(t *testing.T) {
	t.Parallel()
	b := NewBuilder(3, 1, 1)
	b.AddBinary(1, 0, 1).AddBinary(1, 0, 1).AddUnary(1, 2).AddUnary(1, 2)
	s := b.Build()
	if got := len(s.Successors(1, 0)); got != 1 {
		t.Fatalf("duplicate binary pair stored: %d", got)
	}
	if !s.InUnary(1, 2) || s.InUnary(1, 0) {
		t.Fatal("unary membership wrong")
	}
}
