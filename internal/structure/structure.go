// Package structure implements the relational structures of Section 3 of
// the paper and the structural representation $G of labeled graphs
// (Figure 5), on which the logical formulas of Section 5 are evaluated.
//
// A structure S = (D, ⊙_1..⊙_m, ⇀_1..⇀_n) has a finite nonempty domain of
// elements, m unary relations, and n binary relations. Elements are dense
// integer indices 0..|D|-1.
package structure

import (
	"fmt"

	"repro/internal/graph"
)

// Structure is a finite relational structure. Elements are 0..N-1.
type Structure struct {
	n      int
	unary  [][]bool    // unary[i][a]: a ∈ ⊙_{i+1}
	binary []([][]int) // binary[i][a]: sorted successors b with a ⇀_{i+1} b
	// connected[a] caches the symmetric closure of all binary relations
	// (the −⇀↽− relation of the paper), sorted, deduplicated.
	connected [][]int
}

// Signature returns (m, n): the number of unary and binary relations.
func (s *Structure) Signature() (m, n int) { return len(s.unary), len(s.binary) }

// Card returns the cardinality card(S) of the domain.
func (s *Structure) Card() int { return s.n }

// InUnary reports whether element a belongs to ⊙_i (1-based i).
func (s *Structure) InUnary(i, a int) bool { return s.unary[i-1][a] }

// InBinary reports whether a ⇀_i b (1-based i).
func (s *Structure) InBinary(i, a, b int) bool {
	for _, x := range s.binary[i-1][a] {
		if x == b {
			return true
		}
		if x > b {
			return false
		}
	}
	return false
}

// Successors returns the elements b with a ⇀_i b, sorted ascending.
func (s *Structure) Successors(i, a int) []int { return s.binary[i-1][a] }

// Connected returns all elements b with a −⇀↽− b (a related to b by some
// binary relation or its inverse), sorted ascending, without duplicates.
func (s *Structure) Connected(a int) []int { return s.connected[a] }

// IsConnected reports a −⇀↽− b.
func (s *Structure) IsConnected(a, b int) bool {
	for _, x := range s.connected[a] {
		if x == b {
			return true
		}
		if x > b {
			return false
		}
	}
	return false
}

// Degree returns the structural degree of element a: the number of elements
// connected to a by −⇀↽− (Section 9, "structural degree").
func (s *Structure) Degree(a int) int { return len(s.connected[a]) }

// MaxDegree returns the maximum structural degree over all elements.
func (s *Structure) MaxDegree() int {
	d := 0
	for a := 0; a < s.n; a++ {
		if len(s.connected[a]) > d {
			d = len(s.connected[a])
		}
	}
	return d
}

// Builder incrementally constructs a Structure.
type Builder struct {
	n      int
	unary  [][]bool
	binary []map[int]map[int]bool // binary[i][a] = set of b
}

// NewBuilder creates a builder for a structure with the given domain size
// and signature (m unary, n binary relations).
func NewBuilder(domain, m, n int) *Builder {
	b := &Builder{n: domain}
	b.unary = make([][]bool, m)
	for i := range b.unary {
		b.unary[i] = make([]bool, domain)
	}
	b.binary = make([]map[int]map[int]bool, n)
	for i := range b.binary {
		b.binary[i] = make(map[int]map[int]bool)
	}
	return b
}

// AddUnary puts element a into ⊙_i (1-based).
func (b *Builder) AddUnary(i, a int) *Builder {
	b.unary[i-1][a] = true
	return b
}

// AddBinary adds the pair a ⇀_i b (1-based).
func (b *Builder) AddBinary(i, a, bb int) *Builder {
	m := b.binary[i-1]
	if m[a] == nil {
		m[a] = make(map[int]bool)
	}
	m[a][bb] = true
	return b
}

// Build finalizes the structure.
func (b *Builder) Build() *Structure {
	s := &Structure{n: b.n, unary: b.unary}
	s.binary = make([][][]int, len(b.binary))
	conn := make([]map[int]bool, b.n)
	for a := range conn {
		conn[a] = make(map[int]bool)
	}
	for i, rel := range b.binary {
		s.binary[i] = make([][]int, b.n)
		for a, set := range rel {
			for x := range set {
				s.binary[i][a] = append(s.binary[i][a], x)
				conn[a][x] = true
				conn[x][a] = true
			}
		}
		for a := range s.binary[i] {
			sortInts(s.binary[i][a])
		}
	}
	s.connected = make([][]int, b.n)
	for a, set := range conn {
		for x := range set {
			s.connected[a] = append(s.connected[a], x)
		}
		sortInts(s.connected[a])
	}
	return s
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Rep is the structural representation $G of a labeled graph G: one element
// per node and one element per labeling bit. Signature (1, 2):
//
//	⊙_1  = labeling bits with value 1
//	⇀_1  = graph edges (symmetric) and the successor relation on each
//	       node's labeling bits
//	⇀_2  = node-owns-bit
type Rep struct {
	*Structure

	g *graph.Graph
	// nodeElem[u] is the element index of node u; bitElem[u][i] of its
	// (i+1)-th labeling bit.
	nodeElem []int
	bitElem  [][]int
	// owner[a] = node index whose element or labeling bit a is.
	owner []int
	// isNode[a] reports whether element a represents a node.
	isNode []bool
}

// NewRep builds the structural representation $G of g.
func NewRep(g *graph.Graph) *Rep {
	n := g.N()
	nodeElem := make([]int, n)
	bitElem := make([][]int, n)
	next := 0
	for u := 0; u < n; u++ {
		nodeElem[u] = next
		next++
	}
	for u := 0; u < n; u++ {
		l := g.Label(u)
		bitElem[u] = make([]int, len(l))
		for i := range l {
			bitElem[u][i] = next
			next++
		}
	}
	b := NewBuilder(next, 1, 2)
	for _, e := range g.Edges() {
		// ⇀_1 represents undirected edges symmetrically.
		b.AddBinary(1, nodeElem[e.U], nodeElem[e.V])
		b.AddBinary(1, nodeElem[e.V], nodeElem[e.U])
	}
	owner := make([]int, next)
	isNode := make([]bool, next)
	for u := 0; u < n; u++ {
		owner[nodeElem[u]] = u
		isNode[nodeElem[u]] = true
		l := g.Label(u)
		for i := range l {
			a := bitElem[u][i]
			owner[a] = u
			if l[i] == '1' {
				b.AddUnary(1, a)
			}
			if i+1 < len(l) {
				b.AddBinary(1, a, bitElem[u][i+1]) // bit successor
			}
			b.AddBinary(2, nodeElem[u], a) // ownership
		}
	}
	return &Rep{
		Structure: b.Build(),
		g:         g,
		nodeElem:  nodeElem,
		bitElem:   bitElem,
		owner:     owner,
		isNode:    isNode,
	}
}

// Graph returns the underlying labeled graph.
func (r *Rep) Graph() *graph.Graph { return r.g }

// NodeElem returns the element representing node u.
func (r *Rep) NodeElem(u int) int { return r.nodeElem[u] }

// NodeElems returns the elements representing nodes, in node order.
func (r *Rep) NodeElems() []int { return append([]int(nil), r.nodeElem...) }

// BitElem returns the element representing the (i+1)-th labeling bit of u
// (0-based i here).
func (r *Rep) BitElem(u, i int) int { return r.bitElem[u][i] }

// BitElems returns the elements of all labeling bits of u, in order.
func (r *Rep) BitElems(u int) []int { return r.bitElem[u] }

// Owner returns the node that element a represents or whose labeling bit
// a is.
func (r *Rep) Owner(a int) int { return r.owner[a] }

// IsNodeElem reports whether element a represents a node (rather than a
// labeling bit).
func (r *Rep) IsNodeElem(a int) bool { return r.isNode[a] }

// NeighborhoodCard returns card(N^{$G}_r(u)): the number of elements of the
// structural representation of u's r-neighborhood, i.e. the number of nodes
// and labeling bits within graph distance r of u (Section 3).
func (r *Rep) NeighborhoodCard(u, radius int) int {
	total := 0
	for _, v := range r.g.Ball(u, radius) {
		total += 1 + len(r.g.Label(v))
	}
	return total
}

// ElementDistance computes single-source distances from element a inside
// the structural representation, following −⇀↽− edges. Used by the bounded
// quantifier semantics of the logic package.
func (s *Structure) ElementDistance(a int) []int {
	dist := make([]int, s.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range s.connected[x] {
			if dist[y] < 0 {
				dist[y] = dist[x] + 1
				queue = append(queue, y)
			}
		}
	}
	return dist
}

// String gives a short description for debugging.
func (s *Structure) String() string {
	m, n := s.Signature()
	return fmt.Sprintf("S{card=%d, sig=(%d,%d)}", s.n, m, n)
}
