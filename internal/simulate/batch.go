package simulate

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the batched simulation scheduler: many executions —
// differing machines and/or certificate lists — against one Prepared
// instance, spread across a worker pool. It is the substrate for the
// exhaustive game evaluations of internal/core (thousands of certificate
// assignments on one (graph, id)) and for experiment sweeps that pit
// several machines against the same instance.

// Job is one execution of the batch: a machine plus the per-node
// certificate lists it receives (nil for none).
type Job struct {
	Machine *Machine
	Certs   [][]string
}

// BatchOptions configure a Batch call.
type BatchOptions struct {
	// Workers is the scheduler pool size: 0 means one worker per
	// available CPU, 1 runs the jobs strictly in order on the calling
	// goroutine.
	Workers int
	// Ctx, when non-nil, cancels the batch: jobs not yet started when the
	// cancellation is observed are skipped (their results stay nil) and
	// Batch returns the context's error.
	Ctx context.Context
	// Run holds the per-execution options. Within a multi-worker batch,
	// jobs are the unit of parallelism, so Run.Sequential = true (one
	// goroutine per job rather than per node) is usually the right
	// choice; both settings produce identical Results.
	Run Options
}

func (o BatchOptions) pool() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Batch executes every job against the prepared instance and returns the
// results in job order. The engine is deterministic, so results are
// byte-identical to running each job through a fresh Run call, whichever
// pool size is used — the batch correctness tests assert this. The error
// is the context's error if the batch was cancelled, otherwise the error
// of the lowest-indexed failing job; results of successful jobs are
// populated either way (nil marks skipped or failed jobs).
func (p *Prepared) Batch(jobs []Job, opt BatchOptions) ([]*Result, error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	workers := opt.pool()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			if opt.Ctx != nil {
				if err := opt.Ctx.Err(); err != nil {
					return results, err
				}
			}
			results[i], errs[i] = p.Run(j.Machine, j.Certs, opt.Run)
		}
		return results, firstError(jobs, errs)
	}
	var (
		cursor    atomic.Int64
		cancelled atomic.Bool
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				i := int(cursor.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				results[i], errs[i] = p.Run(jobs[i].Machine, jobs[i].Certs, opt.Run)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return results, opt.Ctx.Err()
	}
	return results, firstError(jobs, errs)
}

// firstError returns the lowest-indexed non-nil error, annotated with
// the job's index and machine so the failing run is identifiable.
func firstError(jobs []Job, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("simulate: batch job %d (%s): %w", i, jobs[i].Machine.Name, err)
		}
	}
	return nil
}
