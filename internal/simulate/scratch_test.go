package simulate

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

// neighborEcho is a two-round machine with real message traffic: round 1
// sends the node's id to every neighbor, round 2 checks the received
// ids arrive in ascending identifier order (the engine's port contract)
// and accepts iff they do. It copies nothing from recv across rounds,
// honoring the pooled-buffer contract.
func neighborEcho() *Machine {
	type st struct {
		id string
		ok bool
	}
	return &Machine{
		Name: "test:neighbor-echo",
		Init: func(in Input) any { return &st{id: in.ID, ok: true} },
		Round: func(state any, round int, recv []string) ([]string, bool) {
			s := state.(*st)
			if round == 1 {
				send := make([]string, len(recv))
				for j := range send {
					send[j] = s.id
				}
				return send, false
			}
			for j := 1; j < len(recv); j++ {
				if recv[j-1] >= recv[j] {
					s.ok = false
				}
			}
			return nil, true
		},
		Output: func(state any) string {
			if state.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

// certParityAccept accepts at a node iff its single certificate equals
// its label — the workload shape of the game leaves RunAccepted serves.
func certParityAccept() *Machine {
	type st struct{ ok bool }
	return &Machine{
		Name: "test:cert-equals-label",
		Init: func(in Input) any {
			return &st{ok: len(in.Certs) == 1 && in.Certs[0] == in.Label}
		},
		Round: func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(state any) string {
			if state.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

// TestRunAcceptedMatchesRun drives the pooled fast path and the
// allocating Run path over every certificate assignment of a labeled
// cycle and demands identical verdicts — including reusing ONE Scratch
// across all executions, which is exactly how the game engine holds it.
func TestRunAcceptedMatchesRun(t *testing.T) {
	t.Parallel()
	n := 5
	g := graph.Cycle(n).MustWithLabels([]string{"1", "0", "1", "1", "0"})
	prep, err := Prepare(g, graph.SmallLocallyUnique(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := certParityAccept()
	sc := prep.NewScratch()
	for mask := 0; mask < 1<<n; mask++ {
		certs := make([][]string, n)
		for u := 0; u < n; u++ {
			bit := "0"
			if mask&(1<<u) != 0 {
				bit = "1"
			}
			certs[u] = []string{bit}
		}
		res, err := prep.Run(m, certs, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := prep.RunAccepted(m, certs, 0, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Accepted() {
			t.Fatalf("mask %b: RunAccepted=%v Run.Accepted=%v", mask, got, res.Accepted())
		}
	}
}

// TestRunAcceptedMessageOrder checks the pooled path delivers real
// multi-round message traffic identically to Run: ids arrive sorted,
// on a graph where neighbor order matters.
func TestRunAcceptedMessageOrder(t *testing.T) {
	t.Parallel()
	g := graph.Complete(4)
	prep, err := Prepare(g, graph.SmallLocallyUnique(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := neighborEcho()
	sc := prep.NewScratch()
	for i := 0; i < 3; i++ { // reuse across runs must not leak state
		ok, err := prep.RunAccepted(m, nil, 0, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("run %d: messages not in identifier order on the pooled path", i)
		}
	}
	res, err := prep.Run(m, nil, Options{Sequential: true})
	if err != nil || !res.Accepted() {
		t.Fatalf("reference path disagrees: %v %v", res, err)
	}
}

// TestRunAcceptedTimeout pins the non-termination error of the pooled
// path to the same sentinel as Run's.
func TestRunAcceptedTimeout(t *testing.T) {
	t.Parallel()
	forever := &Machine{
		Name:   "test:never-halts",
		Init:   func(Input) any { return nil },
		Round:  func(any, int, []string) ([]string, bool) { return nil, false },
		Output: func(any) string { return "1" },
	}
	g := graph.Path(2)
	prep, err := Prepare(g, graph.SmallLocallyUnique(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = prep.RunAccepted(forever, nil, 3, prep.NewScratch())
	if !errors.Is(err, ErrDidNotTerminate) {
		t.Fatalf("err = %v, want ErrDidNotTerminate", err)
	}
	if !strings.Contains(err.Error(), "3 rounds") || !strings.Contains(err.Error(), forever.Name) {
		t.Fatalf("error %q must name the bound and the machine", err)
	}
}
