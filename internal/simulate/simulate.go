// Package simulate provides the practical synchronous LOCAL-model engine
// used by the arbiters in this repository. It executes a functional
// "machine" (Init/Round/Output closures) on every node of a labeled graph
// through fault-free synchronous rounds, exactly mirroring the three-phase
// round structure of the distributed Turing machines of Section 4:
// messages are exchanged with neighbors sorted in ascending identifier
// order, and acceptance is by unanimity.
//
// Rounds can be executed concurrently (one goroutine per node, barrier
// between rounds) or sequentially; both modes are deterministic and
// produce identical results, which the tests verify.
//
// The per-(graph, id) setup — identifier-sorted neighbor orders and the
// outbox slot map — can be amortized across many executions through
// Prepare; the Batch scheduler runs many (machine, certificates) jobs
// against one Prepared instance over a worker pool with context
// cancellation. See DESIGN.md for the lifecycle.
package simulate

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Input is the initial local information of a node: its label, identifier,
// certificate list, and degree (the number of neighbors, which in the TM
// model is visible as the number of separators on the receiving tape).
type Input struct {
	Node   int // node index; exposed for instrumentation only
	Degree int
	Label  string
	ID     string
	Certs  []string
}

// LocalSize returns len(label#id#κ̄): the size of the node's initial
// internal tape in the TM model, the reference quantity for the
// polynomial step-time bounds of Section 4.
func (in Input) LocalSize() int {
	n := len(in.Label) + 1 + len(in.ID) + 1
	for _, c := range in.Certs {
		n += len(c) + 1
	}
	return n
}

// Machine is a synchronous distributed algorithm. Implementations must be
// deterministic and must not share mutable state across nodes; the engine
// calls the three functions concurrently for different nodes.
type Machine struct {
	// Name identifies the machine in errors and experiment output.
	Name string
	// Init creates the per-node state from the node's local input.
	Init func(in Input) any
	// Round processes one communication round. recv holds the messages
	// received from the neighbors in ascending identifier order (empty
	// strings in round 1). It returns the messages to send to those same
	// neighbors (same order; nil means all empty) and whether the node
	// halts after this round. A halted node keeps sending empty messages.
	//
	// recv is only valid for the duration of the call: the pooled fast
	// path (Prepared.RunAccepted) reuses one buffer across nodes and
	// rounds, so implementations must copy any message they need to keep
	// rather than retaining recv or aliasing into it.
	Round func(st any, round int, recv []string) (send []string, halt bool)
	// Output extracts the node's final output label (its verdict when the
	// machine is used as a decision procedure: "1" accepts).
	Output func(st any) string
}

// Result is the outcome of an execution.
type Result struct {
	// Outputs[u] is node u's output label (verdict).
	Outputs []string
	// Rounds is the number of rounds executed until all nodes halted.
	Rounds int
	// RecvBits[u] totals the message bytes received by node u across all
	// rounds; SentBits likewise. These drive the Lemma 13 experiments.
	RecvBits []int
	SentBits []int
}

// Accepted reports acceptance by unanimity: all outputs are "1".
func (r *Result) Accepted() bool {
	for _, o := range r.Outputs {
		if o != "1" {
			return false
		}
	}
	return true
}

// Rejecters returns the indices of nodes whose verdict is not "1".
func (r *Result) Rejecters() []int {
	var out []int
	for u, o := range r.Outputs {
		if o != "1" {
			out = append(out, u)
		}
	}
	return out
}

// Options configure an execution.
type Options struct {
	// MaxRounds bounds the execution; 0 means 64. Machines in this
	// repository run in constant round time, so the bound only guards
	// against bugs.
	MaxRounds int
	// Sequential forces single-goroutine execution.
	Sequential bool
}

// ErrDidNotTerminate is returned when some node never halts.
var ErrDidNotTerminate = errors.New("simulate: machine did not terminate")

// Prepared is a simulation instance with the per-(graph, id) setup —
// identifier-sorted neighbor orders and the outbox slot map — computed
// once, so that many executions (differing machines and certificate
// lists) amortize it. A Prepared is immutable after Prepare and safe for
// concurrent Run calls; game evaluations and the Batch scheduler run
// thousands of executions against a single instance.
type Prepared struct {
	g  *graph.Graph
	id graph.IDAssignment
	// neighborOrder[u] lists u's neighbors sorted by identifier.
	neighborOrder [][]int
	// recvSlot[u][j] is u's slot in the outbox of its j-th neighbor
	// (neighborOrder[u][j]), so incoming messages are located by pure
	// slice indexing on the hot path.
	recvSlot [][]int
}

// Prepare computes the reusable setup for executions of machines on
// (g, id).
func Prepare(g *graph.Graph, id graph.IDAssignment) (*Prepared, error) {
	if len(id) != g.N() {
		return nil, fmt.Errorf("simulate: %d identifiers for %d nodes", len(id), g.N())
	}
	n := g.N()
	p := &Prepared{
		g:             g,
		id:            id,
		neighborOrder: make([][]int, n),
		recvSlot:      make([][]int, n),
	}
	// slotOf[v][w] is w's position in v's neighbor order.
	slotOf := make([]map[int]int, n)
	for u := 0; u < n; u++ {
		p.neighborOrder[u] = id.SortByID(g.Neighbors(u))
		slotOf[u] = make(map[int]int, len(p.neighborOrder[u]))
		for j, w := range p.neighborOrder[u] {
			slotOf[u][w] = j
		}
	}
	for u := 0; u < n; u++ {
		p.recvSlot[u] = make([]int, len(p.neighborOrder[u]))
		for j, v := range p.neighborOrder[u] {
			p.recvSlot[u][j] = slotOf[v][u]
		}
	}
	return p, nil
}

// Graph returns the prepared graph.
func (p *Prepared) Graph() *graph.Graph { return p.g }

// ID returns the prepared identifier assignment.
func (p *Prepared) ID() graph.IDAssignment { return p.id }

// Run executes m against the prepared instance under the per-node
// certificate lists certs (nil for none). It is equivalent to
// Run(m, p.Graph(), p.ID(), certs, opt) and safe for concurrent use.
func (p *Prepared) Run(m *Machine, certs [][]string, opt Options) (*Result, error) {
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64
	}
	n := p.g.N()
	states := make([]any, n)
	halted := make([]bool, n)
	//lint:coarse one machine execution is the engine's unit of cancellation; core polls between leaves
	for u := 0; u < n; u++ {
		var cs []string
		if certs != nil {
			cs = certs[u]
		}
		states[u] = m.Init(Input{
			Node:   u,
			Degree: p.g.Degree(u),
			Label:  p.g.Label(u),
			ID:     p.id[u],
			Certs:  cs,
		})
	}

	res := &Result{
		RecvBits: make([]int, n),
		SentBits: make([]int, n),
	}
	outbox := make([][]string, n) // outbox[u][j]: message to j-th neighbor
	for u := range outbox {
		outbox[u] = make([]string, len(p.neighborOrder[u]))
	}

	//lint:coarse round count is bounded by MaxRounds; core polls between leaves
	for round := 1; round <= maxRounds; round++ {
		next := make([][]string, n)
		runNode := func(u int) {
			recv := make([]string, len(p.neighborOrder[u]))
			if round > 1 {
				for j, v := range p.neighborOrder[u] {
					recv[j] = outbox[v][p.recvSlot[u][j]]
					res.RecvBits[u] += len(recv[j])
				}
			}
			send := make([]string, len(p.neighborOrder[u]))
			if !halted[u] {
				out, halt := m.Round(states[u], round, recv)
				for j := range out {
					if j < len(send) {
						send[j] = out[j]
					}
				}
				halted[u] = halt
			}
			for _, s := range send {
				res.SentBits[u] += len(s)
			}
			next[u] = send
		}
		if opt.Sequential {
			//lint:coarse one round over n nodes; core polls between leaves
			for u := 0; u < n; u++ {
				runNode(u)
			}
		} else {
			var wg sync.WaitGroup
			for u := 0; u < n; u++ {
				u := u
				wg.Add(1)
				go func() {
					defer wg.Done()
					runNode(u)
				}()
			}
			wg.Wait()
		}
		outbox = next
		all := true
		for u := 0; u < n; u++ {
			if !halted[u] {
				all = false
				break
			}
		}
		if all {
			res.Rounds = round
			res.Outputs = make([]string, n)
			//lint:coarse output collection over n nodes; core polls between leaves
			for u := 0; u < n; u++ {
				res.Outputs[u] = m.Output(states[u])
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w within %d rounds (%s)", ErrDidNotTerminate, maxRounds, m.Name)
}

// Run executes m on g under the identifier assignment id and per-node
// certificate lists certs (nil for none).
func Run(m *Machine, g *graph.Graph, id graph.IDAssignment, certs [][]string, opt Options) (*Result, error) {
	p, err := Prepare(g, id)
	if err != nil {
		return nil, err
	}
	return p.Run(m, certs, opt)
}

// Decide runs m without certificates and reports unanimous acceptance.
func Decide(m *Machine, g *graph.Graph, id graph.IDAssignment, opt Options) (bool, error) {
	res, err := Run(m, g, id, nil, opt)
	if err != nil {
		return false, err
	}
	return res.Accepted(), nil
}
