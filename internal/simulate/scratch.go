package simulate

import "fmt"

// Scratch holds the per-execution buffers of Prepared.RunAccepted so the
// exhaustive game evaluations in internal/core — which run the same
// machine on the same Prepared instance across thousands of leaves — do
// not pay one slice-allocation storm per leaf. A Scratch belongs to one
// execution at a time; internal/core checks instances out of a
// search.Scratch pool, one per worker. All buffers are fully overwritten
// before they are read in each run (the scratch regression tests pin
// this), so no clearing pass is needed between checkouts.
type Scratch struct {
	states []any
	halted []bool
	outbox [][]string // outbox[u][j]: message to u's j-th neighbor
	next   [][]string
	recv   []string // one max-degree buffer shared by all nodes of a round
}

// NewScratch allocates execution buffers sized for p.
func (p *Prepared) NewScratch() *Scratch {
	n := p.g.N()
	sc := &Scratch{
		states: make([]any, n),
		halted: make([]bool, n),
		outbox: make([][]string, n),
		next:   make([][]string, n),
	}
	total, maxDeg := 0, 0
	for u := 0; u < n; u++ {
		d := len(p.neighborOrder[u])
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	flat := make([]string, 2*total)
	off := 0
	for u := 0; u < n; u++ {
		d := len(p.neighborOrder[u])
		sc.outbox[u] = flat[off : off+d : off+d]
		sc.next[u] = flat[total+off : total+off+d : total+off+d]
		off += d
	}
	sc.recv = make([]string, maxDeg)
	return sc
}

// RunAccepted is the allocation-free fast path of Run for game leaves:
// it executes m sequentially against the prepared instance under the
// per-node certificate lists certs (nil for none) and reports unanimous
// acceptance, without materializing a Result or per-round message
// slices. maxRounds 0 means 64, as in Options. sc must come from
// p.NewScratch and must not be used by another execution concurrently.
//
// The recv slice handed to m.Round aliases a buffer reused across nodes
// and rounds, which is within the Machine contract: Round must not
// retain recv beyond the call (see Machine). Sequential execution makes
// RunAccepted equivalent to Run with Options{Sequential: true} followed
// by Result.Accepted; the simulate test suite pins the equivalence.
func (p *Prepared) RunAccepted(m *Machine, certs [][]string, maxRounds int, sc *Scratch) (bool, error) {
	if maxRounds == 0 {
		maxRounds = 64
	}
	n := p.g.N()
	for u := 0; u < n; u++ {
		var cs []string
		if certs != nil {
			cs = certs[u]
		}
		sc.states[u] = m.Init(Input{
			Node:   u,
			Degree: p.g.Degree(u),
			Label:  p.g.Label(u),
			ID:     p.id[u],
			Certs:  cs,
		})
		sc.halted[u] = false
	}
	outbox, next := sc.outbox, sc.next
	for round := 1; round <= maxRounds; round++ {
		allHalted := true
		for u := 0; u < n; u++ {
			order := p.neighborOrder[u]
			recv := sc.recv[:len(order)]
			if round > 1 {
				for j, v := range order {
					recv[j] = outbox[v][p.recvSlot[u][j]]
				}
			} else {
				for j := range recv {
					recv[j] = ""
				}
			}
			send := next[u]
			if sc.halted[u] {
				for j := range send {
					send[j] = ""
				}
				continue
			}
			out, halt := m.Round(sc.states[u], round, recv)
			for j := range send {
				if j < len(out) {
					send[j] = out[j]
				} else {
					send[j] = ""
				}
			}
			sc.halted[u] = halt
			if !halt {
				allHalted = false
			}
		}
		outbox, next = next, outbox
		if allHalted {
			for u := 0; u < n; u++ {
				if m.Output(sc.states[u]) != "1" {
					return false, nil
				}
			}
			return true, nil
		}
	}
	return false, fmt.Errorf("%w within %d rounds (%s)", ErrDidNotTerminate, maxRounds, m.Name)
}
