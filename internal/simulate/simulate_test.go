package simulate

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/graph"
)

// allSelected is the functional analogue of dtm.AllSelectedMachine.
func allSelected() *Machine {
	type st struct{ ok bool }
	return &Machine{
		Name: "all-selected",
		Init: func(in Input) any { return &st{ok: in.Label == "1"} },
		Round: func(s any, round int, recv []string) ([]string, bool) {
			return nil, true
		},
		Output: func(s any) string {
			if s.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

// broadcastLabelEq accepts iff all neighbors share the node's label
// (2 rounds: broadcast, then compare).
func broadcastLabelEq() *Machine {
	type st struct {
		label string
		deg   int
		ok    bool
	}
	return &Machine{
		Name: "all-equal",
		Init: func(in Input) any { return &st{label: in.Label, deg: in.Degree, ok: true} },
		Round: func(s any, round int, recv []string) ([]string, bool) {
			n := s.(*st)
			if round == 1 {
				out := make([]string, n.deg)
				for i := range out {
					out[i] = n.label
				}
				return out, false
			}
			for _, msg := range recv {
				if msg != n.label {
					n.ok = false
				}
			}
			return nil, true
		},
		Output: func(s any) string {
			if s.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

func TestAllSelectedMachine(t *testing.T) {
	t.Parallel()
	g := graph.Path(3).MustWithLabels([]string{"1", "1", "1"})
	res, err := Run(allSelected(), g, graph.GloballyUnique(g), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() || res.Rounds != 1 {
		t.Fatalf("accepted=%v rounds=%d", res.Accepted(), res.Rounds)
	}
	bad := g.MustWithLabels([]string{"1", "0", "1"})
	res, err = Run(allSelected(), bad, graph.GloballyUnique(bad), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("should reject")
	}
	if r := res.Rejecters(); len(r) != 1 || r[0] != 1 {
		t.Fatalf("rejecters = %v", r)
	}
}

func TestBroadcastEquality(t *testing.T) {
	t.Parallel()
	eq := graph.Cycle(5).MustWithLabels([]string{"10", "10", "10", "10", "10"})
	res, err := Run(broadcastLabelEq(), eq, graph.SmallLocallyUnique(eq, 1), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() || res.Rounds != 2 {
		t.Fatalf("accepted=%v rounds=%d", res.Accepted(), res.Rounds)
	}
	ne := graph.Cycle(5).MustWithLabels([]string{"10", "10", "11", "10", "10"})
	res, err = Run(broadcastLabelEq(), ne, graph.SmallLocallyUnique(ne, 1), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("should reject unequal labels")
	}
}

// TestParallelMatchesSequential: both execution modes must agree bit for bit.
func TestParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		g := graph.RandomConnected(n, 0.3, rng)
		labels := make([]string, n)
		for u := range labels {
			labels[u] = strconv.FormatInt(int64(rng.Intn(4)), 2)
		}
		lg := g.MustWithLabels(labels)
		id := graph.SmallLocallyUnique(lg, 1)
		a, err := Run(broadcastLabelEq(), lg, id, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(broadcastLabelEq(), lg, id, nil, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Accepted() != b.Accepted() || a.Rounds != b.Rounds {
			t.Fatalf("modes diverge on %v", lg)
		}
		for u := range a.Outputs {
			if a.Outputs[u] != b.Outputs[u] {
				t.Fatalf("output mismatch at node %d", u)
			}
		}
	}
}

// TestMessageOrdering: messages must arrive sorted by sender identifier.
func TestMessageOrdering(t *testing.T) {
	t.Parallel()
	type st struct {
		deg int
		id  string
		got []string
		out string
	}
	probe := &Machine{
		Name: "probe",
		Init: func(in Input) any { return &st{deg: in.Degree, id: in.ID} },
		Round: func(s any, round int, recv []string) ([]string, bool) {
			n := s.(*st)
			if round == 1 {
				out := make([]string, n.deg)
				for i := range out {
					out[i] = n.id // everyone sends its identifier
				}
				return out, false
			}
			n.got = recv
			return nil, true
		},
		Output: func(s any) string { return "1" },
	}
	// Star with center 0; leaves get identifiers in inverted order.
	g := graph.Star(4)
	id := graph.IDAssignment{"00", "11", "10", "01"}
	res, err := Run(probe, g, id, nil, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// We can't reach the states from here directly; re-run capturing them.
	var center *st
	probe2 := *probe
	probe2.Init = func(in Input) any {
		s := &st{deg: in.Degree, id: in.ID}
		if in.Node == 0 {
			center = s
		}
		return s
	}
	if _, err := Run(&probe2, g, id, nil, Options{Sequential: true}); err != nil {
		t.Fatal(err)
	}
	want := []string{"01", "10", "11"} // ascending identifier order
	for i, w := range want {
		if center.got[i] != w {
			t.Fatalf("center received %v, want %v", center.got, want)
		}
	}
}

func TestHaltedNodesSendNothing(t *testing.T) {
	t.Parallel()
	// Node halts in round 1 after sending; in round 2 neighbors must see
	// its message, in round 3 empty strings.
	type st struct {
		deg    int
		label  string
		round2 []string
		round3 []string
	}
	var states []*st
	m := &Machine{
		Name: "early-halt",
		Init: func(in Input) any {
			s := &st{deg: in.Degree, label: in.Label}
			states = append(states, s)
			return s
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			switch round {
			case 1:
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.label
				}
				// The "0"-labeled node halts immediately.
				return out, s.label == "0"
			case 2:
				s.round2 = recv
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.label
				}
				return out, false
			default:
				s.round3 = recv
				return nil, true
			}
		},
		Output: func(any) string { return "1" },
	}
	g := graph.Path(2).MustWithLabels([]string{"0", "1"})
	if _, err := Run(m, g, graph.GloballyUnique(g), nil, Options{Sequential: true}); err != nil {
		t.Fatal(err)
	}
	nodeB := states[1]
	if nodeB.round2[0] != "0" {
		t.Fatalf("round 2: got %q, want the halting node's last message", nodeB.round2[0])
	}
	if nodeB.round3[0] != "" {
		t.Fatalf("round 3: got %q, want empty from halted node", nodeB.round3[0])
	}
}

func TestNonTermination(t *testing.T) {
	t.Parallel()
	m := &Machine{
		Name:   "loop",
		Init:   func(Input) any { return nil },
		Round:  func(any, int, []string) ([]string, bool) { return nil, false },
		Output: func(any) string { return "" },
	}
	g := graph.Single("")
	_, err := Run(m, g, graph.IDAssignment{""}, nil, Options{MaxRounds: 7})
	if !errors.Is(err, ErrDidNotTerminate) {
		t.Fatalf("want ErrDidNotTerminate, got %v", err)
	}
}

func TestInputLocalSize(t *testing.T) {
	t.Parallel()
	in := Input{Label: "10", ID: "0", Certs: []string{"11", ""}}
	// "10#0#11#" + "" with separators: 2+1+1+1+2+1+0+1 = 9.
	if got := in.LocalSize(); got != 9 {
		t.Fatalf("LocalSize = %d, want 9", got)
	}
}

func TestBitAccounting(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"111", "111"})
	res, err := Run(broadcastLabelEq(), g, graph.GloballyUnique(g), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each node sends 3 bytes once and receives 3 bytes once.
	for u := 0; u < 2; u++ {
		if res.SentBits[u] != 3 || res.RecvBits[u] != 3 {
			t.Fatalf("node %d: sent=%d recv=%d", u, res.SentBits[u], res.RecvBits[u])
		}
	}
}

func TestDecide(t *testing.T) {
	t.Parallel()
	g := graph.Path(2).MustWithLabels([]string{"1", "1"})
	ok, err := Decide(allSelected(), g, graph.GloballyUnique(g), Options{})
	if err != nil || !ok {
		t.Fatalf("Decide = %v, %v", ok, err)
	}
}
